// Deterministic byte-level and structural mutators for fault-injection
// testing of the untrusted-input (SP → user) path.
//
// Every mutation is driven by a splitmix64 stream seeded explicitly, so a
// failing corpus entry is reproducible from (seed, iteration) alone — no
// dependency on the crypto Rng or on global state. The mutators model the
// tampering a hostile SP can perform on serialized VOs: truncation, bit
// flips, length-field inflation, span drop/duplicate/swap, and splicing
// bytes from a *different* valid VO (tag/type confusion).
//
// Header-only so both the gtest harness and the libFuzzer entry point can
// use it without linking extra objects.
#ifndef APQA_COMMON_MUTATE_H_
#define APQA_COMMON_MUTATE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace apqa::common {

// splitmix64 (Steele et al.); passes BigCrush, two ops per output, and —
// unlike std::mt19937 — identical output on every platform and standard
// library, which is what makes corpus entries reproducible.
class MutRng {
 public:
  explicit MutRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform-ish value in [0, n); n == 0 returns 0. Modulo bias is
  // irrelevant for fuzzing purposes.
  std::size_t Below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(Next() % n);
  }

 private:
  std::uint64_t state_;
};

enum class MutationKind {
  kTruncate,        // drop a suffix
  kBitFlip,         // flip 1..8 random bits
  kByteSet,         // overwrite 1..4 random bytes
  kLengthInflate,   // overwrite 4 bytes with a huge little-endian u32
  kSpanDrop,        // erase a random span (shifts field boundaries)
  kSpanDuplicate,   // re-insert a copy of a random span (entry duplication)
  kSpanSwap,        // exchange two equal-length spans (entry reorder)
  kSplice,          // copy a span from a donor buffer (cross-VO confusion)
};
inline constexpr int kNumMutationKinds = 8;

inline const char* MutationKindName(MutationKind k) {
  switch (k) {
    case MutationKind::kTruncate: return "truncate";
    case MutationKind::kBitFlip: return "bit-flip";
    case MutationKind::kByteSet: return "byte-set";
    case MutationKind::kLengthInflate: return "length-inflate";
    case MutationKind::kSpanDrop: return "span-drop";
    case MutationKind::kSpanDuplicate: return "span-duplicate";
    case MutationKind::kSpanSwap: return "span-swap";
    case MutationKind::kSplice: return "splice";
  }
  return "?";
}

// Applies one seeded mutation in place and returns what was done. `donor`
// (optional) supplies foreign bytes for kSplice; without one, splice
// degrades to kByteSet. An empty buffer only grows.
inline MutationKind Mutate(std::vector<std::uint8_t>* buf, MutRng* rng,
                           const std::vector<std::uint8_t>* donor = nullptr) {
  auto& b = *buf;
  if (b.empty()) {
    b.push_back(static_cast<std::uint8_t>(rng->Next()));
    return MutationKind::kByteSet;
  }
  auto kind = static_cast<MutationKind>(rng->Below(kNumMutationKinds));
  switch (kind) {
    case MutationKind::kTruncate: {
      b.resize(rng->Below(b.size()));
      break;
    }
    case MutationKind::kBitFlip: {
      std::size_t flips = 1 + rng->Below(8);
      for (std::size_t i = 0; i < flips; ++i) {
        b[rng->Below(b.size())] ^=
            static_cast<std::uint8_t>(1u << rng->Below(8));
      }
      break;
    }
    case MutationKind::kByteSet: {
      std::size_t n = 1 + rng->Below(4);
      for (std::size_t i = 0; i < n; ++i) {
        b[rng->Below(b.size())] = static_cast<std::uint8_t>(rng->Next());
      }
      break;
    }
    case MutationKind::kLengthInflate: {
      if (b.size() < 4) {
        b[0] = 0xff;
        break;
      }
      std::size_t off = rng->Below(b.size() - 3);
      std::uint32_t huge = 0x01000000u | static_cast<std::uint32_t>(rng->Next());
      for (int i = 0; i < 4; ++i) {
        b[off + i] = static_cast<std::uint8_t>(huge >> (8 * i));
      }
      break;
    }
    case MutationKind::kSpanDrop: {
      std::size_t len = 1 + rng->Below(std::min<std::size_t>(b.size(), 64));
      std::size_t off = rng->Below(b.size() - len + 1);
      b.erase(b.begin() + off, b.begin() + off + len);
      break;
    }
    case MutationKind::kSpanDuplicate: {
      std::size_t len = 1 + rng->Below(std::min<std::size_t>(b.size(), 64));
      std::size_t off = rng->Below(b.size() - len + 1);
      std::vector<std::uint8_t> span(b.begin() + off, b.begin() + off + len);
      b.insert(b.begin() + off + len, span.begin(), span.end());
      break;
    }
    case MutationKind::kSpanSwap: {
      std::size_t len = 1 + rng->Below(std::min<std::size_t>(b.size() / 2, 32));
      if (b.size() < 2 * len) {
        b[rng->Below(b.size())] ^= 0xff;
        break;
      }
      std::size_t a = rng->Below(b.size() - 2 * len + 1);
      std::size_t c = a + len + rng->Below(b.size() - a - 2 * len + 1);
      std::swap_ranges(b.begin() + a, b.begin() + a + len, b.begin() + c);
      break;
    }
    case MutationKind::kSplice: {
      if (donor == nullptr || donor->empty()) {
        b[rng->Below(b.size())] = static_cast<std::uint8_t>(rng->Next());
        kind = MutationKind::kByteSet;
        break;
      }
      std::size_t len =
          1 + rng->Below(std::min<std::size_t>(donor->size(), 64));
      std::size_t src = rng->Below(donor->size() - len + 1);
      std::size_t dst = rng->Below(b.size());
      // Overwrite up to the end of `b`; growing is the duplicator's job.
      std::size_t n = std::min(len, b.size() - dst);
      std::copy_n(donor->begin() + src, n, b.begin() + dst);
      break;
    }
  }
  return kind;
}

}  // namespace apqa::common

#endif  // APQA_COMMON_MUTATE_H_

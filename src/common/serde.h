// Minimal binary serialization used to materialize ADS entries and
// verification objects (VOs). VO byte size is one of the paper's reported
// metrics, so every protocol message in this library can be serialized.
//
// The reader side is the system's adversarial-input boundary: VOs come from
// an untrusted service provider, so every Deserialize must be *total* —
// arbitrary bytes either parse into a structurally valid object or leave the
// reader in a flagged error state. The reader records the first wire-level
// error (with a coarse classification) so verifiers can report *why* an
// input was rejected instead of a bare false.
#ifndef APQA_COMMON_SERDE_H_
#define APQA_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace apqa::common {

class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(v); }
  void PutU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void PutBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  void PutString(const std::string& s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Coarse classification of why a read failed. Deserializers set these via
// MarkBad; the verification layer maps them onto VerifyResult codes.
enum class WireError : std::uint8_t {
  kNone = 0,
  kTruncated,          // read past the end of the buffer
  kLengthOverflow,     // declared count/length exceeds the remaining bytes
  kUnknownTag,         // unrecognized discriminator byte
  kBadPolicy,          // policy text failed to parse or exceeds caps
  kPointNotOnCurve,    // group point fails the curve equation
  kPointNotInSubgroup, // on curve but outside the prime-order subgroup
  kNonCanonical,       // non-canonical encoding (unreduced field element...)
  kMalformed,          // other structural violation
};

inline const char* WireErrorName(WireError e) {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kTruncated: return "truncated";
    case WireError::kLengthOverflow: return "length-overflow";
    case WireError::kUnknownTag: return "unknown-tag";
    case WireError::kBadPolicy: return "bad-policy";
    case WireError::kPointNotOnCurve: return "point-not-on-curve";
    case WireError::kPointNotInSubgroup: return "point-not-in-subgroup";
    case WireError::kNonCanonical: return "non-canonical";
    case WireError::kMalformed: return "malformed";
  }
  return "unknown";
}

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : buf_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t n) : buf_(data), size_(n) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }
  // Lets deserializers flag semantic errors. The first error (and its
  // detail, a static string) is kept; later errors are usually cascades.
  void MarkBad(WireError e = WireError::kMalformed,
               const char* detail = nullptr) {
    if (ok_) {
      error_ = e;
      detail_ = detail;
    }
    ok_ = false;
  }
  WireError error() const { return error_; }
  // May be null; points to a static string describing the first error.
  const char* error_detail() const { return detail_; }
  std::size_t Remaining() const { return size_ - pos_; }

  // Guards element-count fields read off the wire: every element of the
  // announced collection occupies at least `min_elem_bytes`, so a count
  // that cannot fit in the remaining bytes is corrupt. Returns false (and
  // flags the reader) on a hostile count, so a 4-byte length field can
  // never drive allocation or loop iterations beyond the input size.
  bool CheckCount(std::uint64_t count, std::size_t min_elem_bytes) {
    if (count * min_elem_bytes > Remaining()) {  // count < 2^32, no overflow
      MarkBad(WireError::kLengthOverflow, "element count exceeds input size");
      return false;
    }
    return true;
  }

  std::uint8_t GetU8() {
    std::uint8_t v = 0;
    Get(&v, 1);
    return v;
  }
  std::uint32_t GetU32() {
    std::uint8_t b[4] = {};
    Get(b, 4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  std::uint64_t GetU64() {
    std::uint8_t b[8] = {};
    Get(b, 8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  void Get(void* out, std::size_t n) {
    if (n > size_ - pos_) {
      MarkBad(WireError::kTruncated, "input truncated");
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, buf_ + pos_, n);
    pos_ += n;
  }
  std::string GetString() {
    std::uint32_t n = GetU32();
    if (n > size_ - pos_) {
      MarkBad(WireError::kLengthOverflow, "string length exceeds input size");
      return {};
    }
    std::string s(reinterpret_cast<const char*>(buf_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  const std::uint8_t* buf_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  WireError error_ = WireError::kNone;
  const char* detail_ = nullptr;
};

}  // namespace apqa::common

#endif  // APQA_COMMON_SERDE_H_

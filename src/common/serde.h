// Minimal binary serialization used to materialize ADS entries and
// verification objects (VOs). VO byte size is one of the paper's reported
// metrics, so every protocol message in this library can be serialized.
#ifndef APQA_COMMON_SERDE_H_
#define APQA_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace apqa::common {

class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(v); }
  void PutU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void PutBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  void PutString(const std::string& s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : buf_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t n) : buf_(data), size_(n) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }
  // Lets deserializers flag semantic errors (e.g. absurd element counts).
  void MarkBad() { ok_ = false; }
  std::size_t Remaining() const { return size_ - pos_; }

  std::uint8_t GetU8() {
    std::uint8_t v = 0;
    Get(&v, 1);
    return v;
  }
  std::uint32_t GetU32() {
    std::uint8_t b[4] = {};
    Get(b, 4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  std::uint64_t GetU64() {
    std::uint8_t b[8] = {};
    Get(b, 8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  void Get(void* out, std::size_t n) {
    if (pos_ + n > size_) {
      ok_ = false;
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, buf_ + pos_, n);
    pos_ += n;
  }
  std::string GetString() {
    std::uint32_t n = GetU32();
    if (pos_ + n > size_) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(buf_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  const std::uint8_t* buf_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace apqa::common

#endif  // APQA_COMMON_SERDE_H_

#include "tpch/tpch.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "core/app_signature.h"
#include "crypto/serde.h"
#include "crypto/sha256.h"

namespace apqa::tpch {

namespace {

// Row-count reduction factor relative to real TPC-H (6,000,000 rows/SF):
// keeps the full-tree ADS buildable on a single core while preserving the
// scale *ratios* between the paper's configurations.
constexpr std::size_t kLineitemRowsPerScale = 6000;
constexpr std::size_t kOrdersRowsPerScale = 1500;

const char* kComments[] = {
    "carefully packed", "final deposits", "ironic requests", "quick theodolites",
    "pending platelets", "express accounts", "bold foxes", "silent pinto beans",
};

}  // namespace

TpchGen::TpchGen(double scale, std::uint64_t seed)
    : seed_(seed),
      lineitem_rows_(static_cast<std::size_t>(kLineitemRowsPerScale * scale)),
      orders_rows_(static_cast<std::size_t>(kOrdersRowsPerScale * scale)) {}

std::vector<LineitemRow> TpchGen::Lineitem() {
  Rng rng(seed_);
  std::vector<LineitemRow> rows;
  rows.reserve(lineitem_rows_);
  for (std::size_t i = 0; i < lineitem_rows_; ++i) {
    LineitemRow row;
    row.orderkey = 1 + rng.NextU64() % (orders_rows_ > 0 ? orders_rows_ * 4 : 4);
    row.shipdate = static_cast<std::uint32_t>(rng.NextU64() % 2526);
    row.discount = static_cast<std::uint32_t>(rng.NextU64() % 11);
    row.quantity = 1 + static_cast<std::uint32_t>(rng.NextU64() % 50);
    row.extendedprice =
        100.0 + static_cast<double>(rng.NextU64() % 900000) / 10.0;
    row.comment = kComments[rng.NextU64() % 8];
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<OrdersRow> TpchGen::Orders() {
  Rng rng(seed_ ^ 0x9e3779b97f4a7c15ULL);
  std::vector<OrdersRow> rows;
  rows.reserve(orders_rows_);
  for (std::size_t i = 0; i < orders_rows_; ++i) {
    OrdersRow row;
    row.orderkey = 1 + rng.NextU64() % (orders_rows_ * 4);
    row.orderdate = static_cast<std::uint32_t>(rng.NextU64() % 2406);
    row.clerk = "Clerk#" + std::to_string(rng.NextU64() % 1000);
    rows.push_back(std::move(row));
  }
  // orderkey must be unique in Orders.
  std::sort(rows.begin(), rows.end(),
            [](const OrdersRow& a, const OrdersRow& b) {
              return a.orderkey < b.orderkey;
            });
  rows.erase(std::unique(rows.begin(), rows.end(),
                         [](const OrdersRow& a, const OrdersRow& b) {
                           return a.orderkey == b.orderkey;
                         }),
             rows.end());
  return rows;
}

core::Point DiscretizeLineitem(const LineitemRow& row, const Domain& domain) {
  std::uint32_t side = domain.SideLength();
  core::Point p;
  p.reserve(domain.dims);
  // (shipdate, discount, quantity), truncated to the domain's dimensions.
  std::uint32_t attrs[3] = {row.shipdate, row.discount, row.quantity - 1};
  std::uint32_t limits[3] = {2526, 11, 50};
  for (int d = 0; d < domain.dims && d < 3; ++d) {
    p.push_back(static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(attrs[d]) * side / limits[d]));
  }
  while (static_cast<int>(p.size()) < domain.dims) p.push_back(0);
  return p;
}

namespace {

std::string ValueOf(const LineitemRow& row) {
  return "lineitem|" + std::to_string(row.orderkey) + "|" +
         std::to_string(row.extendedprice) + "|" + row.comment;
}

}  // namespace

std::vector<Record> LineitemRecords(const std::vector<LineitemRow>& rows,
                                    const Domain& domain,
                                    const std::vector<Policy>& policies) {
  std::map<core::Point, Record> by_key;
  for (const LineitemRow& row : rows) {
    core::Point key = DiscretizeLineitem(row, domain);
    if (by_key.count(key)) continue;  // drop key collisions
    Record r;
    r.key = key;
    r.value = ValueOf(row);
    // Same query key → same policy (paper §10).
    auto enc = core::EncodeKey(key);
    crypto::Fr h = crypto::HashToFr(enc.data(), enc.size());
    std::uint64_t idx = h.ToCanonical()[0] % policies.size();
    r.policy = policies[idx];
    by_key.emplace(key, std::move(r));
  }
  std::vector<Record> out;
  out.reserve(by_key.size());
  for (auto& [key, rec] : by_key) out.push_back(std::move(rec));
  return out;
}

namespace {

std::vector<Record> ByOrderKeyImpl(
    const std::vector<std::pair<std::uint64_t, std::string>>& kvs,
    const Domain& domain, const std::vector<Policy>& policies) {
  std::map<core::Point, Record> by_key;
  std::uint32_t side = domain.SideLength();
  for (const auto& [orderkey, value] : kvs) {
    core::Point key{static_cast<std::uint32_t>(orderkey % side)};
    if (by_key.count(key)) continue;
    Record r;
    r.key = key;
    r.value = value;
    auto enc = core::EncodeKey(key);
    crypto::Fr h = crypto::HashToFr(enc.data(), enc.size());
    r.policy = policies[h.ToCanonical()[0] % policies.size()];
    by_key.emplace(key, std::move(r));
  }
  std::vector<Record> out;
  for (auto& [key, rec] : by_key) out.push_back(std::move(rec));
  return out;
}

}  // namespace

std::vector<Record> LineitemByOrderKey(const std::vector<LineitemRow>& rows,
                                       const Domain& domain,
                                       const std::vector<Policy>& policies) {
  std::vector<std::pair<std::uint64_t, std::string>> kvs;
  kvs.reserve(rows.size());
  for (const auto& row : rows) kvs.emplace_back(row.orderkey, ValueOf(row));
  return ByOrderKeyImpl(kvs, domain, policies);
}

std::vector<Record> OrdersByOrderKey(const std::vector<OrdersRow>& rows,
                                     const Domain& domain,
                                     const std::vector<Policy>& policies) {
  std::vector<std::pair<std::uint64_t, std::string>> kvs;
  kvs.reserve(rows.size());
  for (const auto& row : rows) {
    kvs.emplace_back(row.orderkey,
                     "orders|" + std::to_string(row.orderdate) + "|" + row.clerk);
  }
  return ByOrderKeyImpl(kvs, domain, policies);
}

core::Box RandomRangeQuery(const Domain& domain, double selectivity,
                           Rng* rng) {
  // Per-dimension extent so the box volume is ~selectivity of the domain.
  double per_dim = std::pow(selectivity, 1.0 / domain.dims);
  std::uint32_t side = domain.SideLength();
  core::Box box;
  box.lo.resize(domain.dims);
  box.hi.resize(domain.dims);
  for (int d = 0; d < domain.dims; ++d) {
    std::uint32_t extent = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::lround(per_dim * side)));
    extent = std::min(extent, side);
    std::uint32_t lo =
        static_cast<std::uint32_t>(rng->NextU64() % (side - extent + 1));
    box.lo[d] = lo;
    box.hi[d] = lo + extent - 1;
  }
  return box;
}

PolicyGen::PolicyGen(int num_policies, int num_roles, int or_fan, int and_fan,
                     std::uint64_t seed) {
  for (int i = 0; i < num_roles; ++i) {
    role_names_.push_back("Role" + std::to_string(i));
    universe_.insert(role_names_.back());
  }
  Rng rng(seed);
  std::set<std::string> seen;
  while (static_cast<int>(policies_.size()) < num_policies) {
    int clauses = 1 + static_cast<int>(rng.NextU64() % or_fan);
    std::vector<policy::Clause> dnf;
    for (int c = 0; c < clauses; ++c) {
      int width = 1 + static_cast<int>(rng.NextU64() % and_fan);
      policy::Clause clause;
      while (static_cast<int>(clause.size()) < width) {
        clause.insert(role_names_[rng.NextU64() % role_names_.size()]);
      }
      dnf.push_back(std::move(clause));
    }
    Policy p = Policy::FromDnfClauses(dnf);
    if (seen.insert(p.ToString()).second) policies_.push_back(std::move(p));
  }
}

const Policy& PolicyGen::PolicyForKey(const core::Point& key) const {
  auto enc = core::EncodeKey(key);
  crypto::Fr h = crypto::HashToFr(enc.data(), enc.size());
  return policies_[h.ToCanonical()[0] % policies_.size()];
}

RoleSet PolicyGen::RolesForAccessFraction(double fraction) const {
  RoleSet roles;
  auto accessible = [&]() {
    std::size_t n = 0;
    for (const auto& p : policies_) n += p.Evaluate(roles) ? 1 : 0;
    return static_cast<double>(n) / policies_.size();
  };
  // Greedily add the role that most increases coverage.
  while (accessible() < fraction && roles.size() < universe_.size()) {
    std::string best;
    double best_gain = -1.0;
    for (const auto& r : role_names_) {
      if (roles.count(r)) continue;
      roles.insert(r);
      double f = accessible();
      roles.erase(r);
      if (f > best_gain) {
        best_gain = f;
        best = r;
      }
    }
    roles.insert(best);
  }
  return roles;
}

}  // namespace apqa::tpch

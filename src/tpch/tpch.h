// TPC-H-style workload substrate (paper §10).
//
// The paper evaluates on TPC-H Lineitem with query attributes
// (shipdate, discount, quantity), Q6-shaped range queries, and the Q12 join
// between Lineitem and Orders on orderkey. This module provides a
// deterministic, scaled-down generator with the same schema slice and query
// shapes: absolute cardinalities are reduced (full-tree ADS on one core),
// but the distributions and the policy-assignment rule ("records under the
// same query key share the same access policy") follow the paper.
#ifndef APQA_TPCH_TPCH_H_
#define APQA_TPCH_TPCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/record.h"
#include "crypto/rng.h"
#include "policy/policy.h"

namespace apqa::tpch {

using core::Domain;
using core::Record;
using crypto::Rng;
using policy::Policy;
using policy::RoleSet;

struct LineitemRow {
  std::uint64_t orderkey = 0;
  std::uint32_t shipdate = 0;   // days since 1992-01-01, [0, 2526)
  std::uint32_t discount = 0;   // percent, [0, 11)
  std::uint32_t quantity = 0;   // [1, 51)
  double extendedprice = 0.0;
  std::string comment;
};

struct OrdersRow {
  std::uint64_t orderkey = 0;
  std::uint32_t orderdate = 0;
  std::string clerk;
};

// Deterministic generator; `scale` mirrors the TPC-H scale factor with the
// row count reduced by a constant factor so the grid ADS stays tractable.
class TpchGen {
 public:
  TpchGen(double scale, std::uint64_t seed);

  std::vector<LineitemRow> Lineitem();
  std::vector<OrdersRow> Orders();

  std::size_t lineitem_rows() const { return lineitem_rows_; }

 private:
  std::uint64_t seed_;
  std::size_t lineitem_rows_;
  std::size_t orders_rows_;
};

// Discretizes the three query attributes into a d-dimensional grid domain
// (paper footnote 1 / [13]): each attribute is scaled into [0, 2^bits).
core::Point DiscretizeLineitem(const LineitemRow& row, const Domain& domain);

// Converts rows into records over `domain`, assigning policies with the
// paper's rule (same query key → same policy, chosen from `policies` by key
// hash). Rows that collide on the discretized key are dropped (the
// duplicates module covers the colliding case).
std::vector<Record> LineitemRecords(const std::vector<LineitemRow>& rows,
                                    const Domain& domain,
                                    const std::vector<Policy>& policies);

// 1-D records keyed by orderkey for the Q12 join (Lineitem ⋈ Orders).
std::vector<Record> LineitemByOrderKey(const std::vector<LineitemRow>& rows,
                                       const Domain& domain,
                                       const std::vector<Policy>& policies);
std::vector<Record> OrdersByOrderKey(const std::vector<OrdersRow>& rows,
                                     const Domain& domain,
                                     const std::vector<Policy>& policies);

// Q6-shaped query: a random range box covering ~`selectivity` of the domain
// volume.
core::Box RandomRangeQuery(const Domain& domain, double selectivity, Rng* rng);

// Random DNF policy generator with the paper's parameters: `or_fan` AND
// clauses of up to `and_fan` roles each, over `num_roles` distinct roles.
class PolicyGen {
 public:
  PolicyGen(int num_policies, int num_roles, int or_fan, int and_fan,
            std::uint64_t seed);

  const std::vector<Policy>& policies() const { return policies_; }
  const RoleSet& universe() const { return universe_; }

  // Deterministic policy for a query key (same key → same policy).
  const Policy& PolicyForKey(const core::Point& key) const;

  // A role set that can access roughly `fraction` of records whose policies
  // are drawn uniformly from `policies()`: roles are added greedily until
  // the fraction of satisfied policies reaches the target.
  RoleSet RolesForAccessFraction(double fraction) const;

 private:
  std::vector<Policy> policies_;
  RoleSet universe_;
  std::vector<std::string> role_names_;
};

}  // namespace apqa::tpch

#endif  // APQA_TPCH_TPCH_H_

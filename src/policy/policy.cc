#include "policy/policy.h"

#include <algorithm>
#include <stdexcept>

namespace apqa::policy {

namespace {

// Removes clauses that are supersets of other clauses (absorption) and
// duplicates. The result is sorted for canonical ordering.
std::vector<Clause> AbsorbClauses(std::vector<Clause> clauses) {
  std::sort(clauses.begin(), clauses.end(),
            [](const Clause& a, const Clause& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  std::vector<Clause> kept;
  for (const Clause& c : clauses) {
    bool absorbed = false;
    for (const Clause& k : kept) {
      if (std::includes(c.begin(), c.end(), k.begin(), k.end())) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) kept.push_back(c);
  }
  return kept;
}

}  // namespace

Policy Policy::Var(std::string name) {
  if (name.empty()) throw std::invalid_argument("empty role name");
  Policy p;
  p.kind_ = Kind::kVar;
  p.var_ = std::move(name);
  return p;
}

Policy Policy::And(std::vector<Policy> children) {
  if (children.empty()) throw std::invalid_argument("AND needs children");
  if (children.size() == 1) return children[0];
  Policy p;
  p.kind_ = Kind::kAnd;
  p.children_ = std::move(children);
  return p;
}

Policy Policy::Or(std::vector<Policy> children) {
  if (children.empty()) throw std::invalid_argument("OR needs children");
  if (children.size() == 1) return children[0];
  Policy p;
  p.kind_ = Kind::kOr;
  p.children_ = std::move(children);
  return p;
}

Policy Policy::OrOfRoles(const RoleSet& roles) {
  std::vector<Policy> vars;
  vars.reserve(roles.size());
  for (const auto& r : roles) vars.push_back(Var(r));
  return Or(std::move(vars));
}

Policy Policy::AndOfRoles(const RoleSet& roles) {
  std::vector<Policy> vars;
  vars.reserve(roles.size());
  for (const auto& r : roles) vars.push_back(Var(r));
  return And(std::move(vars));
}

namespace {

struct Parser {
  std::string_view s;
  std::size_t pos = 0;
  int depth = 0;

  // Policies arrive over the wire inside VO entries, so parsing must not be
  // able to exhaust the stack on deeply nested "((((..." input.
  static constexpr int kMaxDepth = 128;

  void SkipWs() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }

  bool Eat(char c) {
    SkipWs();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '@' || c == '-';
  }

  Policy ParseOr() {
    std::vector<Policy> terms;
    terms.push_back(ParseAnd());
    while (Eat('|')) terms.push_back(ParseAnd());
    return Policy::Or(std::move(terms));
  }

  Policy ParseAnd() {
    std::vector<Policy> terms;
    terms.push_back(ParseAtom());
    while (Eat('&')) terms.push_back(ParseAtom());
    return Policy::And(std::move(terms));
  }

  Policy ParseAtom() {
    SkipWs();
    if (Eat('(')) {
      if (++depth > kMaxDepth) {
        throw std::invalid_argument("policy nesting too deep");
      }
      Policy p = ParseOr();
      if (!Eat(')')) throw std::invalid_argument("expected ')'");
      --depth;
      return p;
    }
    std::size_t start = pos;
    while (pos < s.size() && IsIdentChar(s[pos])) ++pos;
    if (pos == start) {
      throw std::invalid_argument("expected role name at position " +
                                  std::to_string(start));
    }
    return Policy::Var(std::string(s.substr(start, pos - start)));
  }
};

}  // namespace

Policy Policy::Parse(std::string_view text) {
  Parser p{text};
  Policy result = p.ParseOr();
  p.SkipWs();
  if (p.pos != text.size()) {
    throw std::invalid_argument("trailing input in policy: " +
                                std::string(text));
  }
  return result;
}

std::optional<Policy> Policy::TryParse(std::string_view text) {
  try {
    return Parse(text);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

Policy Policy::FromDnfClauses(const std::vector<Clause>& clauses) {
  if (clauses.empty()) throw std::invalid_argument("empty DNF");
  std::vector<Policy> ors;
  for (const Clause& c : clauses) {
    if (c.empty()) throw std::invalid_argument("empty clause");
    ors.push_back(AndOfRoles(c));
  }
  return Or(std::move(ors));
}

std::size_t Policy::Length() const {
  if (kind_ == Kind::kVar) return 1;
  std::size_t n = 0;
  for (const Policy& c : children_) n += c.Length();
  return n;
}

RoleSet Policy::Roles() const {
  RoleSet out;
  if (kind_ == Kind::kVar) {
    out.insert(var_);
    return out;
  }
  for (const Policy& c : children_) {
    RoleSet sub = c.Roles();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

bool Policy::Evaluate(const RoleSet& roles) const {
  switch (kind_) {
    case Kind::kVar:
      return roles.count(var_) > 0;
    case Kind::kAnd:
      for (const Policy& c : children_) {
        if (!c.Evaluate(roles)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Policy& c : children_) {
        if (c.Evaluate(roles)) return true;
      }
      return false;
  }
  return false;
}

std::vector<Clause> Policy::DnfClauses() const {
  switch (kind_) {
    case Kind::kVar:
      return {Clause{var_}};
    case Kind::kOr: {
      std::vector<Clause> out;
      for (const Policy& c : children_) {
        std::vector<Clause> sub = c.DnfClauses();
        out.insert(out.end(), sub.begin(), sub.end());
      }
      return AbsorbClauses(std::move(out));
    }
    case Kind::kAnd: {
      // Distribute: cross product of children's clause sets.
      std::vector<Clause> acc = {Clause{}};
      for (const Policy& c : children_) {
        std::vector<Clause> sub = c.DnfClauses();
        std::vector<Clause> next;
        next.reserve(acc.size() * sub.size());
        for (const Clause& a : acc) {
          for (const Clause& b : sub) {
            Clause merged = a;
            merged.insert(b.begin(), b.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      return AbsorbClauses(std::move(acc));
    }
  }
  return {};
}

Policy Policy::ToDnf() const { return FromDnfClauses(DnfClauses()); }

std::string Policy::ToString() const {
  switch (kind_) {
    case Kind::kVar:
      return var_;
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return "";
}

Policy OrCombineDnf(const Policy& a, const Policy& b) {
  std::vector<Clause> clauses = a.DnfClauses();
  std::vector<Clause> more = b.DnfClauses();
  clauses.insert(clauses.end(), more.begin(), more.end());
  return Policy::FromDnfClauses(AbsorbClauses(std::move(clauses)));
}

}  // namespace apqa::policy

// Monotone span programs for monotone boolean policies (paper §5.2.1,
// Algorithms 5 and 6).
//
// The MSP of a policy Υ is an ℓ×t matrix M over Fr with a row-labeling by
// roles such that Υ(x)=1 iff the rows labeled by satisfied roles span
// e₁ = [1,0,…,0]. The construction is the recursive insertion technique:
//
//   * a leaf emits one row equal to the vector handed down by its parent;
//   * an OR node hands its vector to every child;
//   * an AND node with n children allocates n−1 fresh columns, hands
//     (vector | −1 … −1) to the first child and the fresh unit vector e_c to
//     each other child.
//
// All matrix entries are in {−1, 0, 1}.
//
// `Purge` (Algorithm 6) supports ABS.Relax: given a kept-attribute set 𝒜′ it
// finds 0/1 column-selection x (with x₀ = 1) and row set R with labels ⊆ 𝒜′
// such that M·x = 1_R — exactly when Υ(𝔸\𝒜′) = 0, i.e. when every satisfying
// set of Υ intersects 𝒜′.
#ifndef APQA_POLICY_MSP_H_
#define APQA_POLICY_MSP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "policy/policy.h"

namespace apqa::policy {

struct Msp {
  // Dense ℓ×t matrix with entries −1/0/+1; m[row][col].
  std::vector<std::vector<std::int8_t>> m;
  // Role label per row (the labeling function u : [ℓ] → 𝔸).
  std::vector<std::string> row_labels;

  std::size_t Rows() const { return m.size(); }
  std::size_t Cols() const { return m.empty() ? 0 : m[0].size(); }
};

// Algorithm 5: builds the monotone span program of a policy.
Msp BuildMsp(const Policy& policy);

// Computes the 0/1 row-combination vector v with v·M = e₁ whose support
// contains only rows labeled by roles in `attrs` (used by ABS.Sign).
// Returns std::nullopt iff the policy is not satisfied by `attrs`.
std::optional<std::vector<std::int8_t>> SatisfyingVector(const Policy& policy,
                                                         const RoleSet& attrs);

struct PurgeResult {
  bool ok = false;
  // Row indices to keep (coefficient 1 after column selection).
  std::vector<std::size_t> kept_rows;
  // Column indices with x_j = 1. Always contains column 0 when ok.
  std::vector<std::size_t> kept_cols;
};

// Algorithm 6: computes the row/column selection that turns a signature on
// `policy` into one on ∨_{a∈keep} a. Fails (ok=false) iff Υ(𝔸\keep) = 1,
// i.e. the policy can still be satisfied while avoiding `keep`.
PurgeResult Purge(const Policy& policy, const RoleSet& keep);

}  // namespace apqa::policy

#endif  // APQA_POLICY_MSP_H_

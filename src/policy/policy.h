// Monotone boolean access policies (paper §3).
//
// A policy is a monotone formula over role names, e.g. "(RoleA & RoleB) |
// RoleC". Policies annotate records; AP²G-tree internal nodes carry the OR of
// their children's policies. The library keeps formulas as explicit ASTs so
// the monotone-span-program construction (policy/msp.h) and the k-d-tree
// split objective (§9.1) can walk them.
#ifndef APQA_POLICY_POLICY_H_
#define APQA_POLICY_POLICY_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace apqa::policy {

// A set of roles held by a user (the paper's 𝒜) or mentioned by a policy.
using RoleSet = std::set<std::string>;

// One conjunctive clause of a DNF policy: the set of roles that must all be
// held.
using Clause = std::set<std::string>;

class Policy {
 public:
  enum class Kind { kVar, kAnd, kOr };

  Policy() : kind_(Kind::kVar) {}

  static Policy Var(std::string name);
  static Policy And(std::vector<Policy> children);
  static Policy Or(std::vector<Policy> children);
  // Convenience: OR of single roles (the super access policy ∨_{a∈𝒜'} a).
  static Policy OrOfRoles(const RoleSet& roles);
  // AND of single roles (used for CP-ABE transport policies ∧_{a∈𝒜} a).
  static Policy AndOfRoles(const RoleSet& roles);

  // Parses "(A & B) | C". Identifiers: [A-Za-z0-9_.@-]+. '&' binds tighter
  // than '|'. Throws std::invalid_argument on malformed input.
  static Policy Parse(std::string_view text);

  // Non-throwing variant for untrusted wire input.
  static std::optional<Policy> TryParse(std::string_view text);

  // Builds a policy from DNF clauses (OR of ANDs). Empty clause set is
  // invalid.
  static Policy FromDnfClauses(const std::vector<Clause>& clauses);

  Kind kind() const { return kind_; }
  const std::string& var() const { return var_; }
  const std::vector<Policy>& children() const { return children_; }

  // Number of leaves (the paper's "policy length").
  std::size_t Length() const;

  // All role names mentioned.
  RoleSet Roles() const;

  // Monotone evaluation: true iff the role set satisfies the formula.
  bool Evaluate(const RoleSet& roles) const;

  // Disjunctive normal form as clause sets, with absorption (no clause is a
  // superset of another) and deduplication.
  std::vector<Clause> DnfClauses() const;

  // A policy equivalent to this one, normalized to DNF.
  Policy ToDnf() const;

  // Canonical textual form, parseable by Parse. Used for hashing/signing and
  // as a serialization format.
  std::string ToString() const;

  bool operator==(const Policy& o) const { return ToString() == o.ToString(); }

 private:
  Kind kind_;
  std::string var_;
  std::vector<Policy> children_;
};

// OR of two policies expressed in DNF, with clause absorption. This is the
// internal-node policy rule of the AP²G-tree (Definition 6.1) — keeping the
// result in reduced DNF keeps span programs small near the root.
Policy OrCombineDnf(const Policy& a, const Policy& b);

}  // namespace apqa::policy

#endif  // APQA_POLICY_POLICY_H_

#include "policy/msp.h"

#include <map>

namespace apqa::policy {

namespace {

// Sparse row under construction: column index -> coefficient.
using SparseRow = std::map<std::size_t, std::int8_t>;

struct Builder {
  std::vector<SparseRow> rows;
  std::vector<std::string> labels;
  std::size_t next_col = 1;  // column 0 is the shared target column

  void Walk(const Policy& p, const SparseRow& u) {
    switch (p.kind()) {
      case Policy::Kind::kVar:
        rows.push_back(u);
        labels.push_back(p.var());
        return;
      case Policy::Kind::kOr:
        for (const Policy& c : p.children()) Walk(c, u);
        return;
      case Policy::Kind::kAnd: {
        std::size_t n = p.children().size();
        std::vector<std::size_t> fresh(n - 1);
        for (std::size_t i = 0; i + 1 < n; ++i) fresh[i] = next_col++;
        SparseRow first = u;
        for (std::size_t c : fresh) first[c] = -1;
        Walk(p.children()[0], first);
        for (std::size_t k = 1; k < n; ++k) {
          SparseRow unit;
          unit[fresh[k - 1]] = 1;
          Walk(p.children()[k], unit);
        }
        return;
      }
    }
  }
};

}  // namespace

Msp BuildMsp(const Policy& policy) {
  Builder b;
  SparseRow e1;
  e1[0] = 1;
  b.Walk(policy, e1);
  Msp msp;
  msp.row_labels = std::move(b.labels);
  msp.m.assign(b.rows.size(), std::vector<std::int8_t>(b.next_col, 0));
  for (std::size_t i = 0; i < b.rows.size(); ++i) {
    for (const auto& [col, val] : b.rows[i]) msp.m[i][col] = val;
  }
  return msp;
}

std::optional<std::vector<std::int8_t>> SatisfyingVector(const Policy& policy,
                                                         const RoleSet& attrs) {
  if (!policy.Evaluate(attrs)) return std::nullopt;
  // Emit one coefficient per leaf in Builder order. A leaf contributes 1
  // exactly when it lies on the active satisfied spine: AND nodes keep all
  // children active, OR nodes activate their first satisfied child only.
  std::vector<std::int8_t> v;
  struct Emit {
    const RoleSet& attrs;
    std::vector<std::int8_t>& v;
    void Walk(const Policy& p, bool active) {
      switch (p.kind()) {
        case Policy::Kind::kVar:
          v.push_back(static_cast<std::int8_t>(
              active && attrs.count(p.var()) > 0 ? 1 : 0));
          return;
        case Policy::Kind::kAnd: {
          bool sat = active && p.Evaluate(attrs);
          for (const Policy& c : p.children()) Walk(c, sat);
          return;
        }
        case Policy::Kind::kOr: {
          bool chosen = false;
          for (const Policy& c : p.children()) {
            bool take = active && !chosen && c.Evaluate(attrs);
            Walk(c, take);
            chosen = chosen || take;
          }
          return;
        }
      }
    }
  } emit{attrs, v};
  emit.Walk(policy, true);
  return v;
}

namespace {

struct Purger {
  const RoleSet& keep;
  std::size_t next_col = 1;
  std::size_t next_row = 0;

  struct NodeResult {
    bool flag = false;
    std::vector<std::size_t> rows;
    std::vector<std::size_t> cols;
  };

  // Walks in the same order as Builder so row/column indices line up.
  NodeResult Walk(const Policy& p) {
    switch (p.kind()) {
      case Policy::Kind::kVar: {
        NodeResult r;
        r.flag = keep.count(p.var()) > 0;
        r.rows = {next_row++};
        return r;
      }
      case Policy::Kind::kOr: {
        NodeResult r;
        r.flag = true;
        for (const Policy& c : p.children()) {
          NodeResult sub = Walk(c);
          r.flag = r.flag && sub.flag;
          r.rows.insert(r.rows.end(), sub.rows.begin(), sub.rows.end());
          r.cols.insert(r.cols.end(), sub.cols.begin(), sub.cols.end());
        }
        return r;
      }
      case Policy::Kind::kAnd: {
        std::size_t n = p.children().size();
        std::vector<std::size_t> fresh(n - 1);
        for (std::size_t i = 0; i + 1 < n; ++i) fresh[i] = next_col++;
        NodeResult r;
        bool picked = false;
        for (std::size_t k = 0; k < n; ++k) {
          NodeResult sub = Walk(p.children()[k]);
          if (!picked && sub.flag) {
            picked = true;
            r.flag = true;
            r.rows = std::move(sub.rows);
            r.cols = std::move(sub.cols);
            if (k > 0) r.cols.push_back(fresh[k - 1]);
          }
        }
        return r;
      }
    }
    return {};
  }
};

}  // namespace

PurgeResult Purge(const Policy& policy, const RoleSet& keep) {
  Purger purger{keep};
  Purger::NodeResult top = purger.Walk(policy);
  PurgeResult result;
  result.ok = top.flag;
  if (!result.ok) return result;
  result.kept_rows = std::move(top.rows);
  result.kept_cols = std::move(top.cols);
  result.kept_cols.push_back(0);  // the shared target column
  return result;
}

}  // namespace apqa::policy

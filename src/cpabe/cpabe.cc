#include "cpabe/cpabe.h"

#include "crypto/serde.h"
#include "crypto/sha256.h"
#include "policy/msp.h"

namespace apqa::cpabe {

using crypto::HashToFr;
using policy::BuildMsp;
using policy::Msp;
using policy::SatisfyingVector;

const PublicKey::Precomp& PublicKey::precomp() const {
  static std::mutex build_mu;
  std::lock_guard<std::mutex> lock(build_mu);
  if (!precomp_) {
    auto pc = std::make_shared<Precomp>();
    pc->g1_tab = crypto::FixedBaseTable<crypto::Fp>(g1);
    pc->g1a_tab = crypto::FixedBaseTable<crypto::Fp>(g1_a);
    pc->g2_tab = crypto::FixedBaseTable<crypto::Fp2>(g2);
    precomp_ = std::move(pc);
  }
  return *precomp_;
}

G1 PublicKey::HashG1(const std::string& attr) const {
  return precomp().g1_tab.Mul(HashToFr("cpabe-attr:" + attr));
}

G2 PublicKey::HashG2(const std::string& attr) const {
  return precomp().g2_tab.Mul(HashToFr("cpabe-attr:" + attr));
}

void CpAbe::Setup(Rng* rng, MasterKey* mk, PublicKey* pk) {
  mk->alpha = rng->NextNonZeroSecretFr();
  mk->a = rng->NextNonZeroSecretFr();
  pk->g1 = crypto::CtG1Mul(rng->NextNonZeroSecretFr());
  pk->g2 = crypto::CtG2Mul(rng->NextNonZeroSecretFr());
  pk->g1_a = crypto::CtScalarMul(pk->g1, mk->a);
  pk->egg_alpha = crypto::CtPow(crypto::Pairing(pk->g1, pk->g2), mk->alpha);
  pk->precomp();  // warm the fixed-base tables while setup owns the key
}

SecretKey CpAbe::KeyGen(const MasterKey& mk, const PublicKey& pk,
                        const RoleSet& attrs, Rng* rng) {
  const PublicKey::Precomp& pc = pk.precomp();
  SecretKey sk;
  SecretFr t = rng->NextNonZeroSecretFr();
  sk.k = pc.g2_tab.MulCt(mk.alpha + mk.a * t);
  sk.l = pc.g2_tab.MulCt(t);
  for (const auto& x : attrs) {
    // H2(x)^t = g2^{h_x t}: one fixed-base mul instead of two muls.
    sk.k_attr[x] = pc.g2_tab.MulCt(HashToFr("cpabe-attr:" + x) * t);
  }
  return sk;
}

Ciphertext CpAbe::Encrypt(const PublicKey& pk, const GT& m,
                          const Policy& policy, Rng* rng) {
  const PublicKey::Precomp& pc = pk.precomp();
  Msp msp = BuildMsp(policy);
  std::size_t rows = msp.Rows(), cols = msp.Cols();

  Ciphertext ct;
  ct.policy = policy;
  // The encryption randomness s, the share vector u and the per-row r_i
  // blind the session element; recovering any of them from a side channel
  // recovers the payload key, so they are taint-typed end to end.
  SecretFr s = rng->NextNonZeroSecretFr();
  std::vector<SecretFr> u(cols);
  u[0] = s;
  for (std::size_t j = 1; j < cols; ++j) u[j] = rng->NextSecretFr();

  ct.c_tilde = m * crypto::CtPow(pk.egg_alpha, s);
  ct.c_prime = pc.g1_tab.MulCt(s);

  ct.c.resize(rows);
  ct.d.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    SecretFr lambda;  // zero
    for (std::size_t j = 0; j < cols; ++j) {
      if (msp.m[i][j] == 1) {
        lambda = lambda + u[j];
      } else if (msp.m[i][j] == -1) {
        lambda = lambda - u[j];
      }
    }
    SecretFr ri = rng->NextNonZeroSecretFr();
    // g1^{a lambda_i} * H1(rho(i))^{-r_i} = g1a^{lambda_i} * g1^{-h r_i}:
    // every factor is a constant-pattern fixed-base table mul.
    Fr h = HashToFr("cpabe-attr:" + msp.row_labels[i]);
    ct.c[i] = pc.g1a_tab.MulCt(lambda) - pc.g1_tab.MulCt(h * ri);
    ct.d[i] = pc.g1_tab.MulCt(ri);
  }
  return ct;
}

std::optional<GT> CpAbe::Decrypt(const PublicKey& pk, const SecretKey& sk,
                                 const Ciphertext& ct) {
  (void)pk;
  Msp msp = BuildMsp(ct.policy);
  if (ct.c.size() != msp.Rows() || ct.d.size() != msp.Rows()) {
    return std::nullopt;
  }
  RoleSet owned;
  for (const auto& [attr, key] : sk.k_attr) owned.insert(attr);
  auto v = SatisfyingVector(ct.policy, owned);
  if (!v.has_value()) return std::nullopt;

  // e(C', K) / prod_{i: v_i=1} e(C_i, L) * e(D_i, K_{rho(i)})
  //   == e(g1, g2)^{alpha * s}.
  std::vector<std::pair<G1, G2>> pairs;
  pairs.emplace_back(ct.c_prime, sk.k);
  for (std::size_t i = 0; i < msp.Rows(); ++i) {
    if ((*v)[i] == 0) continue;
    pairs.emplace_back(-ct.c[i], sk.l);
    pairs.emplace_back(-ct.d[i], sk.k_attr.at(msp.row_labels[i]));
  }
  GT blind = crypto::MultiPairing(pairs);
  return ct.c_tilde * blind.Inverse();
}

void Ciphertext::Serialize(common::ByteWriter* w) const {
  w->PutString(policy.ToString());
  crypto::WriteGT(w, c_tilde);
  crypto::WriteG1(w, c_prime);
  w->PutU32(static_cast<std::uint32_t>(c.size()));
  for (const G1& e : c) crypto::WriteG1(w, e);
  w->PutU32(static_cast<std::uint32_t>(d.size()));
  for (const G1& e : d) crypto::WriteG1(w, e);
}

Ciphertext Ciphertext::Deserialize(common::ByteReader* r) {
  Ciphertext ct;
  // Malformed/truncated input must not throw out of deserialization; the
  // reader's ok() flag carries the error.
  auto parsed = Policy::TryParse(r->GetString());
  ct.policy = parsed.has_value() ? std::move(*parsed) : Policy::Var("?");
  ct.c_tilde = crypto::ReadGT(r);
  ct.c_prime = crypto::ReadG1(r);
  std::uint32_t nc = r->GetU32();
  for (std::uint32_t i = 0; i < nc && r->ok(); ++i) {
    ct.c.push_back(crypto::ReadG1(r));
  }
  std::uint32_t nd = r->GetU32();
  for (std::uint32_t i = 0; i < nd && r->ok(); ++i) {
    ct.d.push_back(crypto::ReadG1(r));
  }
  return ct;
}

std::size_t Ciphertext::SerializedSize() const {
  common::ByteWriter w;
  Serialize(&w);
  return w.size();
}

void Envelope::Serialize(common::ByteWriter* w) const {
  key_ct.Serialize(w);
  w->PutBytes(nonce.data(), nonce.size());
  w->PutU32(static_cast<std::uint32_t>(body.size()));
  w->PutBytes(body.data(), body.size());
}

Envelope Envelope::Deserialize(common::ByteReader* r) {
  Envelope env;
  env.key_ct = Ciphertext::Deserialize(r);
  r->Get(env.nonce.data(), env.nonce.size());
  std::uint32_t n = r->GetU32();
  if (!r->ok() || n > (1u << 28)) return env;  // reject absurd lengths
  env.body.resize(n);
  r->Get(env.body.data(), n);
  return env;
}

std::size_t Envelope::SerializedSize() const {
  common::ByteWriter w;
  Serialize(&w);
  return w.size();
}

namespace {

// Derives AES key material from a GT session element.
void DeriveKeyNonce(const GT& session, crypto::AesKey* key,
                    crypto::AesNonce* nonce) {
  common::ByteWriter w;
  // Serialize all twelve Fp coefficients in canonical form.
  const crypto::Fp* coeffs[12] = {
      &session.c0.c0.c0, &session.c0.c0.c1, &session.c0.c1.c0,
      &session.c0.c1.c1, &session.c0.c2.c0, &session.c0.c2.c1,
      &session.c1.c0.c0, &session.c1.c0.c1, &session.c1.c1.c0,
      &session.c1.c1.c1, &session.c1.c2.c0, &session.c1.c2.c1};
  for (const auto* c : coeffs) crypto::WriteFp(&w, *c);
  crypto::Digest d = crypto::Sha256::Hash(w.data().data(), w.size());
  std::copy(d.begin(), d.begin() + 16, key->begin());
  std::copy(d.begin() + 16, d.begin() + 28, nonce->begin());
}

}  // namespace

Envelope Seal(const PublicKey& pk, const Policy& policy,
              const std::vector<std::uint8_t>& plaintext, Rng* rng) {
  // Random GT session element: e(g1, g2)^rho for random rho. The exponent
  // determines the AES payload key, so it rides the constant-pattern
  // GT ladder.
  SecretFr rho = rng->NextNonZeroSecretFr();
  GT session = crypto::CtPow(pk.egg_alpha, rho);

  Envelope env;
  env.key_ct = CpAbe::Encrypt(pk, session, policy, rng);
  crypto::AesKey key;
  DeriveKeyNonce(session, &key, &env.nonce);
  env.body = crypto::AesCtr(key, env.nonce, plaintext);
  return env;
}

std::optional<std::vector<std::uint8_t>> Open(const PublicKey& pk,
                                              const SecretKey& sk,
                                              const Envelope& env) {
  std::optional<GT> session = CpAbe::Decrypt(pk, sk, env.key_ct);
  if (!session.has_value()) return std::nullopt;
  crypto::AesKey key;
  crypto::AesNonce nonce;
  DeriveKeyNonce(*session, &key, &nonce);
  // The derived nonce is key material (it shares a hash preimage with the
  // AES key), so the comparison must not early-exit on a matching prefix.
  if (!crypto::CtEq(nonce, env.nonce)) return std::nullopt;
  return crypto::AesCtr(key, env.nonce, env.body);
}

}  // namespace apqa::cpabe

// Ciphertext-policy attribute-based encryption (CP-ABE), Waters-style
// LSSS construction adapted to a type-3 pairing, plus the hybrid AES
// envelope the protocol uses to protect query responses (§3, §5.1).
//
// Type-3 note: attribute hashes are realized as H1(x) = g1^{h_x},
// H2(x) = g2^{h_x} with h_x = HashToFr(x), giving matching images in both
// source groups. This is a standard implementation device; the paper treats
// CP-ABE as an off-the-shelf component and excludes it from measured costs.
#ifndef APQA_CPABE_CPABE_H_
#define APQA_CPABE_CPABE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/serde.h"
#include "crypto/aes.h"
#include "crypto/msm.h"
#include "crypto/pairing.h"
#include "crypto/rng.h"
#include "policy/policy.h"

namespace apqa::cpabe {

using crypto::Fr;
using crypto::G1;
using crypto::G2;
using crypto::GT;
using crypto::Rng;
using crypto::SecretFr;
using policy::Policy;
using policy::RoleSet;

struct PublicKey {
  G1 g1;
  G2 g2;
  G1 g1_a;        // g1^a
  GT egg_alpha;   // e(g1, g2)^alpha

  G1 HashG1(const std::string& attr) const;
  G2 HashG2(const std::string& attr) const;

  // Fixed-base tables for the three group bases every KeyGen/Encrypt call
  // multiplies; built lazily on first use (see abs::VerifyKey::precomp).
  struct Precomp {
    crypto::FixedBaseTable<crypto::Fp> g1_tab, g1a_tab;
    crypto::FixedBaseTable<crypto::Fp2> g2_tab;
  };
  const Precomp& precomp() const;

 private:
  mutable std::shared_ptr<const Precomp> precomp_;
};

// Taint-typed master scalars: arithmetic and the constant-pattern ladders
// accept them, variable-time scalar paths reject them at compile time.
struct MasterKey {
  SecretFr alpha, a;
};

// Decryption key for an attribute set.
struct SecretKey {
  G2 k;  // g2^alpha * (g2^a)^t
  G2 l;  // g2^t
  std::map<std::string, G2> k_attr;  // H2(x)^t
};

// Encryption of a GT element under a monotone access policy.
struct Ciphertext {
  Policy policy;
  GT c_tilde;
  G1 c_prime;        // g1^s
  std::vector<G1> c;  // g1^{a*lambda_i} * H1(rho(i))^{-r_i}
  std::vector<G1> d;  // g1^{r_i}

  void Serialize(common::ByteWriter* w) const;
  static Ciphertext Deserialize(common::ByteReader* r);
  std::size_t SerializedSize() const;
};

class CpAbe {
 public:
  static void Setup(Rng* rng, MasterKey* mk, PublicKey* pk);
  static SecretKey KeyGen(const MasterKey& mk, const PublicKey& pk,
                          const RoleSet& attrs, Rng* rng);
  static Ciphertext Encrypt(const PublicKey& pk, const GT& m,
                            const Policy& policy, Rng* rng);
  // Returns nullopt when the key's attributes do not satisfy the policy.
  static std::optional<GT> Decrypt(const PublicKey& pk, const SecretKey& sk,
                                   const Ciphertext& ct);
};

// Hybrid envelope: a fresh GT session element is CP-ABE-encrypted, its hash
// keys AES-128-CTR for the payload.
struct Envelope {
  Ciphertext key_ct;
  crypto::AesNonce nonce;
  std::vector<std::uint8_t> body;

  void Serialize(common::ByteWriter* w) const;
  static Envelope Deserialize(common::ByteReader* r);
  std::size_t SerializedSize() const;
};

Envelope Seal(const PublicKey& pk, const Policy& policy,
              const std::vector<std::uint8_t>& plaintext, Rng* rng);
std::optional<std::vector<std::uint8_t>> Open(const PublicKey& pk,
                                              const SecretKey& sk,
                                              const Envelope& env);

}  // namespace apqa::cpabe

#endif  // APQA_CPABE_CPABE_H_

#include "core/verify_result.h"

namespace apqa::core {

const char* VerifyCodeName(VerifyCode code) {
  switch (code) {
    case VerifyCode::kOk: return "ok";
    case VerifyCode::kMalformedVo: return "malformed-vo";
    case VerifyCode::kUnknownEntryTag: return "unknown-entry-tag";
    case VerifyCode::kBadPolicyEncoding: return "bad-policy-encoding";
    case VerifyCode::kPointNotOnCurve: return "point-not-on-curve";
    case VerifyCode::kPointNotInSubgroup: return "point-not-in-subgroup";
    case VerifyCode::kNonCanonicalEncoding: return "non-canonical-encoding";
    case VerifyCode::kLengthOverflow: return "length-overflow";
    case VerifyCode::kBadQuery: return "bad-query";
    case VerifyCode::kWrongEntryCount: return "wrong-entry-count";
    case VerifyCode::kUnexpectedEntryType: return "unexpected-entry-type";
    case VerifyCode::kKeyMismatch: return "key-mismatch";
    case VerifyCode::kDimensionMismatch: return "dimension-mismatch";
    case VerifyCode::kRegionOutsideRange: return "region-outside-range";
    case VerifyCode::kOverlap: return "overlap";
    case VerifyCode::kCoverageGap: return "coverage-gap";
    case VerifyCode::kDuplicateBookkeeping: return "duplicate-bookkeeping";
    case VerifyCode::kPolicyNotSatisfied: return "policy-not-satisfied";
    case VerifyCode::kBadSignature: return "bad-signature";
  }
  return "unknown";
}

VerifyResult VerifyResult::FromReader(const common::ByteReader& reader) {
  VerifyCode code;
  switch (reader.error()) {
    case common::WireError::kUnknownTag:
      code = VerifyCode::kUnknownEntryTag;
      break;
    case common::WireError::kBadPolicy:
      code = VerifyCode::kBadPolicyEncoding;
      break;
    case common::WireError::kPointNotOnCurve:
      code = VerifyCode::kPointNotOnCurve;
      break;
    case common::WireError::kPointNotInSubgroup:
      code = VerifyCode::kPointNotInSubgroup;
      break;
    case common::WireError::kNonCanonical:
      code = VerifyCode::kNonCanonicalEncoding;
      break;
    case common::WireError::kLengthOverflow:
      code = VerifyCode::kLengthOverflow;
      break;
    case common::WireError::kNone:  // caller misuse; still report rejection
    case common::WireError::kTruncated:
    case common::WireError::kMalformed:
      code = VerifyCode::kMalformedVo;
      break;
    default:
      code = VerifyCode::kMalformedVo;
      break;
  }
  const char* detail = reader.error_detail();
  return Fail(code, detail != nullptr ? detail
                                      : common::WireErrorName(reader.error()));
}

std::string VerifyResult::ToString() const {
  std::string out = VerifyCodeName(code);
  if (entry_index >= 0) {
    out += " at entry ";
    out += std::to_string(entry_index);
  }
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

}  // namespace apqa::core

#include "core/thread_pool.h"

#include <stdexcept>

namespace apqa::core {

ThreadPool::ThreadPool(int threads, std::size_t max_queue)
    : max_queue_(max_queue) {
  if (threads > 1) {
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ThreadPool::~ThreadPool() { Stop(); }

void ThreadPool::Stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  task_cv_.notify_all();
  // workers_ is left populated (threads joined, not erased) so that
  // Submit/TrySubmit keep taking the queue path and report the stop error
  // instead of silently running inline.
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ is set and the queue is drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_) throw std::runtime_error("ThreadPool::Submit after Stop()");
    }
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) throw std::runtime_error("ThreadPool::Submit after Stop()");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  if (workers_.empty()) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_) return false;
    }
    task();
    return true;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return false;
    if (max_queue_ > 0 && tasks_.size() >= max_queue_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
  return true;
}

void ThreadPool::WaitAll() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::queued() const {
  std::unique_lock<std::mutex> lock(mu_);
  return tasks_.size();
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  WaitAll();
}

}  // namespace apqa::core

#include "core/thread_pool.h"

namespace apqa::core {

ThreadPool::ThreadPool(int threads) {
  if (threads > 1) {
    workers_.reserve(threads);
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::WaitAll() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  WaitAll();
}

}  // namespace apqa::core

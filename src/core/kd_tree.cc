#include "core/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>
#include <stdexcept>

#include "core/parallel_verify.h"
#include "core/range_query.h"

namespace apqa::core {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

using ClauseSet = std::set<policy::Clause>;

ClauseSet Clauses(const Policy& p) {
  auto v = p.DnfClauses();
  return ClauseSet(v.begin(), v.end());
}

std::size_t IntersectionSize(const ClauseSet& a, const ClauseSet& b) {
  std::size_t n = 0;
  for (const auto& c : a) n += b.count(c);
  return n;
}

ClauseSet Union(const ClauseSet& a, const ClauseSet& b) {
  ClauseSet u = a;
  u.insert(b.begin(), b.end());
  return u;
}

}  // namespace

std::vector<std::uint8_t> KdLeafMessage(const Box& region, const Point& key,
                                        const std::string& value) {
  return KdLeafMessageFromHash(region, key,
                               crypto::Sha256::Hash(value.data(), value.size()));
}

std::vector<std::uint8_t> KdLeafMessageFromHash(const Box& region,
                                                const Point& key,
                                                const Digest& value_hash) {
  std::vector<std::uint8_t> msg = BoxMessage(region);
  std::vector<std::uint8_t> rm = RecordMessageFromHash(key, value_hash);
  msg.insert(msg.end(), rm.begin(), rm.end());
  return msg;
}

std::size_t KdTree::SplitPosition(const std::vector<Policy>& policies) {
  std::size_t n = policies.size();
  std::vector<ClauseSet> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = Clauses(policies[i]);
  if (n <= 1) return 0;
  if (n == 2) return 1;
  if (n == 3) {
    return IntersectionSize(x[0], x[1]) < IntersectionSize(x[1], x[2]) ? 1 : 2;
  }
  // Algorithm 7 recursion, iterative form: maintain the best split of the
  // prefix and compare against splitting just before the new element.
  std::size_t split = IntersectionSize(x[0], x[1]) < IntersectionSize(x[1], x[2])
                          ? 1
                          : 2;
  // Prefix unions to evaluate the two candidate objectives cheaply.
  std::vector<ClauseSet> prefix(n);
  prefix[0] = x[0];
  for (std::size_t i = 1; i < n; ++i) prefix[i] = Union(prefix[i - 1], x[i]);
  for (std::size_t m = 4; m <= n; ++m) {
    // Candidate A: keep previous split x' of the first m-1 policies:
    //   a = |(X_1..x') ∩ (X_{x'+1}..m-1)|
    ClauseSet mid;
    for (std::size_t i = split; i + 1 <= m - 1; ++i) mid = Union(mid, x[i]);
    std::size_t a = IntersectionSize(prefix[split - 1], mid);
    // Candidate B: split before the last element: b = |mid' ∩ X_m| where
    // mid' = X_{x'+1}..m-1.
    std::size_t b = IntersectionSize(mid, x[m - 1]);
    if (a >= b) split = m - 1;
  }
  return split;
}

int KdTree::BuildNode(const VerifyKey& mvk, const SigningKey& sk_do,
                      const Box& region, std::vector<Record> records,
                      int depth, int max_policy_depth, Rng* rng) {
  int idx = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_[idx];
    node.region = region;

    if (records.size() <= 1) {
      node.is_leaf = true;
      if (records.empty()) {
        node.is_pseudo = true;
        node.record.key = region.lo;
        auto bytes = rng->Bytes(16);
        node.record.value.assign(bytes.begin(), bytes.end());
        node.record.policy = Policy::Var(kPseudoRole);
      } else {
        node.record = std::move(records[0]);
      }
      node.policy = node.record.policy;
      auto sig = abs::Abs::Sign(
          mvk, sk_do,
          KdLeafMessage(region, node.record.key, node.record.value),
          node.policy, rng);
      if (!sig.has_value()) {
        throw std::logic_error("DO key does not cover record policy");
      }
      node.sig = std::move(*sig);
      return idx;
    }
  }

  // Choose a split dimension (cycling) with at least two distinct
  // coordinates.
  int dims = domain_.dims;
  int dim = -1;
  for (int probe = 0; probe < dims; ++probe) {
    int d = (depth + probe) % dims;
    std::uint32_t lo = records[0].key[d], hi = records[0].key[d];
    for (const auto& r : records) {
      lo = std::min(lo, r.key[d]);
      hi = std::max(hi, r.key[d]);
    }
    if (lo != hi) {
      dim = d;
      break;
    }
  }
  if (dim < 0) {
    throw std::invalid_argument(
        "duplicate keys are not supported by the AP2kd-tree");
  }

  std::sort(records.begin(), records.end(),
            [dim](const Record& a, const Record& b) {
              return a.key[dim] < b.key[dim];
            });

  std::uint32_t split_coord;  // left half is [lo, split_coord - 1]
  std::size_t left_count;
  if (depth < max_policy_depth) {
    // Policy-aware split: group records by distinct coordinate, apply
    // Algorithm 7 over the groups' OR-policies, split between groups.
    std::vector<Policy> group_policies;
    std::vector<std::size_t> group_end;  // exclusive record index
    for (std::size_t i = 0; i < records.size();) {
      std::size_t j = i;
      Policy p = records[i].policy;
      while (++j < records.size() &&
             records[j].key[dim] == records[i].key[dim]) {
        p = policy::OrCombineDnf(p, records[j].policy);
      }
      group_policies.push_back(std::move(p));
      group_end.push_back(j);
      i = j;
    }
    std::size_t g = group_policies.size() == 1
                        ? 1
                        : SplitPosition(group_policies);  // 1-based group count
    left_count = group_end[g - 1];
    split_coord = records[left_count].key[dim];
  } else {
    // Midpoint (grid) split to bound depth.
    split_coord =
        region.lo[dim] + (region.hi[dim] - region.lo[dim]) / 2 + 1;
    left_count = 0;
    while (left_count < records.size() &&
           records[left_count].key[dim] < split_coord) {
      ++left_count;
    }
    if (left_count == 0 || left_count == records.size()) {
      // Degenerate midpoint: split at the distinct-coordinate boundary
      // closest to the median. At least one boundary exists because the
      // dimension was chosen to have two distinct coordinates.
      std::size_t best = 0;
      std::size_t median = records.size() / 2;
      for (std::size_t b = 1; b < records.size(); ++b) {
        if (records[b - 1].key[dim] == records[b].key[dim]) continue;
        std::size_t dist = b > median ? b - median : median - b;
        std::size_t best_dist =
            best > median ? best - median : median - best;
        if (best == 0 || dist < best_dist) best = b;
      }
      left_count = best;
      split_coord = records[best].key[dim];
    }
  }

  Box left_region = region, right_region = region;
  left_region.hi[dim] = split_coord - 1;
  right_region.lo[dim] = split_coord;
  std::vector<Record> left(records.begin(), records.begin() + left_count);
  std::vector<Record> right(records.begin() + left_count, records.end());

  int l = BuildNode(mvk, sk_do, left_region, std::move(left), depth + 1,
                    max_policy_depth, rng);
  int r = BuildNode(mvk, sk_do, right_region, std::move(right), depth + 1,
                    max_policy_depth, rng);

  Node& node = nodes_[idx];
  node.left = l;
  node.right = r;
  node.policy = policy::OrCombineDnf(nodes_[l].policy, nodes_[r].policy);
  auto sig = abs::Abs::Sign(mvk, sk_do, BoxMessage(region), node.policy, rng);
  if (!sig.has_value()) {
    throw std::logic_error("DO key does not cover node policy");
  }
  node.sig = std::move(*sig);
  return idx;
}

KdTree KdTree::Build(const VerifyKey& mvk, const SigningKey& sk_do,
                     const Domain& domain, const std::vector<Record>& records,
                     Rng* rng) {
  KdTree tree;
  tree.domain_ = domain;
  for (const auto& r : records) {
    if (!domain.ContainsPoint(r.key)) {
      throw std::invalid_argument("record key outside domain");
    }
  }
  // Depth bound log2(S) from §9.1 (S = area of the index space).
  int max_policy_depth = domain.bits * domain.dims;
  tree.root_ = tree.BuildNode(mvk, sk_do, domain.FullBox(), records, 0,
                              max_policy_depth, rng);
  return tree;
}

std::size_t KdTree::LeafCount() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.is_leaf ? 1 : 0;
  return n;
}

std::size_t KdTree::MaxDepth() const {
  // Depth via iterative traversal.
  std::size_t best = 0;
  std::deque<std::pair<int, std::size_t>> queue{{root_, 0}};
  while (!queue.empty()) {
    auto [idx, d] = queue.front();
    queue.pop_front();
    if (idx < 0) continue;
    best = std::max(best, d);
    queue.emplace_back(nodes_[idx].left, d + 1);
    queue.emplace_back(nodes_[idx].right, d + 1);
  }
  return best;
}

void KdTree::SerializedSize(std::size_t* structure_bytes,
                            std::size_t* signature_bytes) const {
  std::size_t structure = 0, sigs = 0;
  for (const auto& node : nodes_) {
    structure += 8 * node.region.lo.size() + node.policy.ToString().size();
    if (node.is_leaf) structure += node.record.value.size();
    sigs += node.sig.SerializedSize();
  }
  *structure_bytes = structure;
  *signature_bytes = sigs;
}

KdVo BuildKdRangeVo(const KdTree& tree, const VerifyKey& mvk, const Box& range,
                    const RoleSet& user_roles, const RoleSet& universe,
                    Rng* rng) {
  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  KdVo vo;
  std::deque<int> queue{tree.root()};
  while (!queue.empty()) {
    int idx = queue.front();
    queue.pop_front();
    const KdTree::Node& node = tree.nodes()[idx];
    if (!node.region.Intersects(range)) continue;
    if (!range.ContainsBox(node.region) && !node.is_leaf) {
      queue.push_back(node.left);
      queue.push_back(node.right);
      continue;
    }
    if (node.is_leaf) {
      // A leaf partially intersecting the range is returned whole; its
      // region clipped to the range still accounts for coverage. For
      // simplicity we return the leaf and let the verifier clip.
      if (node.policy.Evaluate(user_roles)) {
        vo.results.push_back(KdResultEntry{node.region, node.record.key,
                                           node.record.value,
                                           node.record.policy, node.sig});
      } else {
        Digest vh = crypto::Sha256::Hash(node.record.value.data(),
                                         node.record.value.size());
        auto msg = KdLeafMessageFromHash(node.region, node.record.key, vh);
        auto aps = abs::Abs::Relax(mvk, node.sig, node.policy, msg, lacked, rng);
        vo.leaves.push_back(
            KdInaccessibleLeafEntry{node.region, node.record.key, vh,
                                    std::move(*aps)});
      }
      continue;
    }
    if (node.policy.Evaluate(user_roles)) {
      queue.push_back(node.left);
      queue.push_back(node.right);
    } else {
      auto msg = BoxMessage(node.region);
      auto aps = abs::Abs::Relax(mvk, node.sig, node.policy, msg, lacked, rng);
      vo.boxes.push_back(InaccessibleBoxEntry{node.region, std::move(*aps)});
    }
  }
  return vo;
}

void KdVo::Serialize(common::ByteWriter* w) const {
  auto write_point = [w](const Point& p) {
    w->PutU32(static_cast<std::uint32_t>(p.size()));
    for (auto c : p) w->PutU32(c);
  };
  auto write_box = [&](const Box& b) {
    write_point(b.lo);
    write_point(b.hi);
  };
  w->PutU32(static_cast<std::uint32_t>(results.size()));
  for (const auto& e : results) {
    write_box(e.region);
    write_point(e.key);
    w->PutString(e.value);
    w->PutString(e.policy.ToString());
    e.app_sig.Serialize(w);
  }
  w->PutU32(static_cast<std::uint32_t>(leaves.size()));
  for (const auto& e : leaves) {
    write_box(e.region);
    write_point(e.key);
    w->PutBytes(e.value_hash.data(), e.value_hash.size());
    e.aps_sig.Serialize(w);
  }
  w->PutU32(static_cast<std::uint32_t>(boxes.size()));
  for (const auto& e : boxes) {
    write_box(e.box);
    e.aps_sig.Serialize(w);
  }
}

std::size_t KdVo::SerializedSize() const {
  common::ByteWriter w;
  Serialize(&w);
  return w.size();
}

KdVo KdVo::Deserialize(common::ByteReader* r) {
  KdVo vo;
  std::uint32_t nr = r->GetU32();
  if (!r->CheckCount(nr, kMinVoEntryBytes)) return vo;
  vo.results.reserve(nr);
  for (std::uint32_t i = 0; i < nr && r->ok(); ++i) {
    KdResultEntry e;
    e.region = ReadBox(r);
    e.key = ReadPoint(r);
    e.value = r->GetString();
    e.policy = ReadPolicy(r);
    e.app_sig = Signature::Deserialize(r);
    vo.results.push_back(std::move(e));
  }
  std::uint32_t nl = r->GetU32();
  if (!r->CheckCount(nl, kMinVoEntryBytes)) return vo;
  vo.leaves.reserve(nl);
  for (std::uint32_t i = 0; i < nl && r->ok(); ++i) {
    KdInaccessibleLeafEntry e;
    e.region = ReadBox(r);
    e.key = ReadPoint(r);
    r->Get(e.value_hash.data(), e.value_hash.size());
    e.aps_sig = Signature::Deserialize(r);
    vo.leaves.push_back(std::move(e));
  }
  std::uint32_t nb = r->GetU32();
  if (!r->CheckCount(nb, kMinVoEntryBytes)) return vo;
  vo.boxes.reserve(nb);
  for (std::uint32_t i = 0; i < nb && r->ok(); ++i) {
    InaccessibleBoxEntry e;
    e.box = ReadBox(r);
    e.aps_sig = Signature::Deserialize(r);
    vo.boxes.push_back(std::move(e));
  }
  return vo;
}

VerifyResult VerifyKdRangeVoEx(const VerifyKey& mvk, const Domain& domain,
                               const Box& range, const RoleSet& user_roles,
                               const RoleSet& universe, const KdVo& vo,
                               std::vector<Record>* results,
                               ThreadPool* pool) {
  if (!range.WellFormed() ||
      range.lo.size() != static_cast<std::size_t>(domain.dims) ||
      !domain.FullBox().ContainsBox(range)) {
    return VerifyResult::Fail(VerifyCode::kBadQuery,
                              "query range invalid for domain");
  }
  // Coverage: clip each region to the range; clipped regions must be
  // disjoint and tile the range.
  std::vector<Box> regions;
  for (const auto& e : vo.results) regions.push_back(e.region);
  for (const auto& e : vo.leaves) regions.push_back(e.region);
  for (const auto& e : vo.boxes) regions.push_back(e.box);
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    Box clipped = regions[i];
    std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
    if (clipped.lo.size() != range.lo.size()) {
      return VerifyResult::Fail(VerifyCode::kDimensionMismatch,
                                "region dimensionality mismatch", idx);
    }
    if (!clipped.WellFormed()) {
      return VerifyResult::Fail(VerifyCode::kMalformedVo,
                                "region not a well-formed box", idx);
    }
    for (std::size_t d = 0; d < clipped.lo.size(); ++d) {
      clipped.lo[d] = std::max(clipped.lo[d], range.lo[d]);
      if (clipped.hi[d] < range.lo[d] || clipped.lo[d] > range.hi[d]) {
        return VerifyResult::Fail(VerifyCode::kRegionOutsideRange,
                                  "region outside query range", idx);
      }
      clipped.hi[d] = std::min(clipped.hi[d], range.hi[d]);
    }
    regions[i] = clipped;
    for (std::size_t j = 0; j < i; ++j) {
      if (regions[j].Intersects(clipped)) {
        return VerifyResult::Fail(VerifyCode::kOverlap, "overlapping regions",
                                  idx);
      }
    }
    covered += clipped.Volume();
  }
  if (covered != range.Volume()) {
    return VerifyResult::Fail(VerifyCode::kCoverageGap,
                              "regions do not cover the query range");
  }

  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  Policy super_policy = Policy::OrOfRoles(lacked);

  // Structural pass in sequential order; signature checks run through a
  // SigBatch so a pool changes timing only (see core/parallel_verify.h).
  SigBatch batch(mvk, /*exact_pairings=*/false);
  VerifyResult struct_fail = VerifyResult::Ok();
  std::vector<std::ptrdiff_t> result_job(vo.results.size(), -1);
  for (std::size_t i = 0; i < vo.results.size(); ++i) {
    const KdResultEntry& e = vo.results[i];
    std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
    if (!domain.ContainsPoint(e.key) || !e.region.Contains(e.key)) {
      struct_fail = VerifyResult::Fail(VerifyCode::kKeyMismatch,
                                       "result key outside its region", idx);
      break;
    }
    // A record outside the range itself is acceptable when its leaf region
    // only partially overlaps: the region still proves emptiness, but the
    // record is not output as a result.
    if (!e.policy.Evaluate(user_roles)) {
      struct_fail = VerifyResult::Fail(VerifyCode::kPolicyNotSatisfied,
                                       "result policy not satisfied", idx);
      break;
    }
    result_job[i] = static_cast<std::ptrdiff_t>(batch.Add(
        KdLeafMessage(e.region, e.key, e.value), &e.policy, &e.app_sig,
        VerifyResult::Fail(VerifyCode::kBadSignature,
                           "kd APP signature verification failed", idx)));
  }
  if (struct_fail.ok()) {
    for (std::size_t i = 0; i < vo.leaves.size(); ++i) {
      const KdInaccessibleLeafEntry& e = vo.leaves[i];
      batch.Add(KdLeafMessageFromHash(e.region, e.key, e.value_hash),
                &super_policy, &e.aps_sig,
                VerifyResult::Fail(VerifyCode::kBadSignature,
                                   "kd leaf APS signature verification failed",
                                   static_cast<std::ptrdiff_t>(i)));
    }
    for (std::size_t i = 0; i < vo.boxes.size(); ++i) {
      const InaccessibleBoxEntry& e = vo.boxes[i];
      batch.Add(BoxMessage(e.box), &super_policy, &e.aps_sig,
                VerifyResult::Fail(VerifyCode::kBadSignature,
                                   "kd box APS signature verification failed",
                                   static_cast<std::ptrdiff_t>(i)));
    }
  }

  std::ptrdiff_t bad = batch.FirstFailure(pool);
  if (results != nullptr) {
    std::size_t emit = batch.EmitLimit(bad);
    for (std::size_t i = 0; i < vo.results.size(); ++i) {
      const KdResultEntry& e = vo.results[i];
      if (result_job[i] < 0) continue;
      if (static_cast<std::size_t>(result_job[i]) < emit &&
          range.Contains(e.key)) {
        results->push_back(Record{e.key, e.value, e.policy});
      }
    }
  }
  if (bad >= 0) return batch.failure(bad);
  return struct_fail;
}

bool VerifyKdRangeVo(const VerifyKey& mvk, const Domain& domain,
                     const Box& range, const RoleSet& user_roles,
                     const RoleSet& universe, const KdVo& vo,
                     std::vector<Record>* results, std::string* error,
                     ThreadPool* pool) {
  VerifyResult r = VerifyKdRangeVoEx(mvk, domain, range, user_roles, universe,
                                     vo, results, pool);
  if (!r.ok()) SetError(error, r.ToString());
  return r.ok();
}

}  // namespace apqa::core

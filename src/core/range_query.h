// Authenticated range queries over the AP²G-tree (paper §6.1, Algorithm 3).
#ifndef APQA_CORE_RANGE_QUERY_H_
#define APQA_CORE_RANGE_QUERY_H_

#include <string>

#include "core/grid_tree.h"
#include "core/verify_result.h"
#include "core/vo.h"

namespace apqa::core {

// SP side: breadth-first VO construction with policy pruning. Nodes fully
// inside the range that the user cannot access contribute a single APS
// signature (derived with ABS.Relax, parallelized over `pool` when given).
Vo BuildRangeVo(const GridTree& tree, const VerifyKey& mvk, const Box& range,
                const RoleSet& user_roles, const RoleSet& universe, Rng* rng,
                ThreadPool* pool = nullptr);

// Variant with an explicit relaxation target (the user's lacked-role set).
// Hierarchical role assignment (§8.1) passes the *reduced* lacked set here,
// shrinking every APS signature.
Vo BuildRangeVoWithLacked(const GridTree& tree, const VerifyKey& mvk,
                          const Box& range, const RoleSet& user_roles,
                          const RoleSet& lacked, Rng* rng,
                          ThreadPool* pool = nullptr);

// User side: soundness + completeness verification (Algorithm 3, bottom).
// On success, appends the accessible result records to `results` (if not
// null). `exact_pairings` selects per-column pairing checks instead of the
// batched verifier. When `pool` is given, the per-entry signature checks
// fan out across it; diagnostics and partial results are identical to the
// single-threaded path (see parallel_verify.h).
VerifyResult VerifyRangeVoEx(const VerifyKey& mvk, const Domain& domain,
                             const Box& range, const RoleSet& user_roles,
                             const RoleSet& universe, const Vo& vo,
                             std::vector<Record>* results,
                             bool exact_pairings = false,
                             ThreadPool* pool = nullptr);

// Variant with an explicit expected super-policy role set (§8.1).
VerifyResult VerifyRangeVoWithLackedEx(const VerifyKey& mvk,
                                       const Domain& domain, const Box& range,
                                       const RoleSet& user_roles,
                                       const RoleSet& lacked, const Vo& vo,
                                       std::vector<Record>* results,
                                       bool exact_pairings = false,
                                       ThreadPool* pool = nullptr);

// Legacy bool APIs; `error` (if not null) receives the stringified result.
bool VerifyRangeVo(const VerifyKey& mvk, const Domain& domain, const Box& range,
                   const RoleSet& user_roles, const RoleSet& universe,
                   const Vo& vo, std::vector<Record>* results,
                   std::string* error, bool exact_pairings = false,
                   ThreadPool* pool = nullptr);
bool VerifyRangeVoWithLacked(const VerifyKey& mvk, const Domain& domain,
                             const Box& range, const RoleSet& user_roles,
                             const RoleSet& lacked, const Vo& vo,
                             std::vector<Record>* results, std::string* error,
                             bool exact_pairings = false,
                             ThreadPool* pool = nullptr);

// Shared helper (also used by join verification): checks that the entry
// regions are well-formed, inside `range`, pairwise disjoint, and tile it
// exactly.
VerifyResult CheckCoverageEx(const Box& range, const Vo& vo);
bool CheckCoverage(const Box& range, const Vo& vo, std::string* error);

}  // namespace apqa::core

#endif  // APQA_CORE_RANGE_QUERY_H_

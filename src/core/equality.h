// Authenticated equality queries (paper §5.1, Algorithm 1).
//
// The ADS for equality queries is the leaf layer of the AP²G-tree: every
// possible key has a (real or pseudo) record with an APP signature, so every
// equality query has exactly one matching entry — accessible or not — and
// the two cases are the only distinguishable outcomes.
#ifndef APQA_CORE_EQUALITY_H_
#define APQA_CORE_EQUALITY_H_

#include <string>

#include "core/grid_tree.h"
#include "core/thread_pool.h"
#include "core/verify_result.h"
#include "core/vo.h"

namespace apqa::core {

// SP side: VO for an equality query on `key` by a user holding `user_roles`.
// Returns a single-entry VO: ResultEntry when accessible, otherwise an
// InaccessibleRecordEntry carrying only hash(v) and the APS signature.
Vo BuildEqualityVo(const GridTree& tree, const VerifyKey& mvk, const Point& key,
                   const RoleSet& user_roles, const RoleSet& universe,
                   Rng* rng);

// User side: verifies the VO against the queried key. On success, when the
// record is accessible, `result` (if not null) receives it and *accessible
// is set accordingly.
// The single signature check routes through SigBatch like every other Ex
// verifier (see core/parallel_verify.h); `pool` keeps the API uniform.
VerifyResult VerifyEqualityVoEx(const VerifyKey& mvk, const Domain& domain,
                                const Point& key, const RoleSet& user_roles,
                                const RoleSet& universe, const Vo& vo,
                                Record* result, bool* accessible,
                                bool exact_pairings = false,
                                ThreadPool* pool = nullptr);

// Legacy bool API; `error` (if not null) receives the stringified result.
bool VerifyEqualityVo(const VerifyKey& mvk, const Domain& domain,
                      const Point& key, const RoleSet& user_roles,
                      const RoleSet& universe, const Vo& vo, Record* result,
                      bool* accessible, std::string* error,
                      bool exact_pairings = false, ThreadPool* pool = nullptr);

}  // namespace apqa::core

#endif  // APQA_CORE_EQUALITY_H_

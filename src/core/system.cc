#include "core/system.h"

#include <stdexcept>

namespace apqa::core {

DataOwner::DataOwner(const RoleSet& role_universe, const Domain& domain,
                     std::uint64_t seed)
    : rng_(seed) {
  if (role_universe.count(kPseudoRole)) {
    throw std::invalid_argument("Role@NULL is reserved");
  }
  keys_.universe = role_universe;
  keys_.universe.insert(kPseudoRole);
  keys_.domain = domain;
  abs::Abs::Setup(&rng_, &msk_, &keys_.mvk);
  // The DO can sign for every policy over the universe, including Role_∅.
  sk_do_ = abs::Abs::KeyGen(msk_, keys_.universe, &rng_);
  cpabe::CpAbe::Setup(&rng_, &cmk_, &keys_.cpk);
}

UserCredentials DataOwner::EnrollUser(const RoleSet& roles) {
  for (const auto& r : roles) {
    if (r == kPseudoRole) throw std::invalid_argument("Role@NULL is reserved");
    if (!keys_.universe.count(r)) {
      throw std::invalid_argument("role outside universe: " + r);
    }
  }
  UserCredentials creds;
  creds.roles = roles;
  creds.cpabe_sk = cpabe::CpAbe::KeyGen(cmk_, keys_.cpk, roles, &rng_);
  return creds;
}

GridTree DataOwner::BuildAds(const std::vector<Record>& records,
                             ThreadPool* pool) {
  return GridTree::Build(keys_.mvk, sk_do_, keys_.domain, records, &rng_, pool);
}

ServiceProvider::ServiceProvider(SystemKeys keys, GridTree tree, int threads)
    : keys_(std::move(keys)), tree_(std::move(tree)), rng_(/*os seeded*/) {
  // Build the scalar-multiplication tables up front (no-op when the keys
  // came from a warm Setup in this process) so worker threads never race on
  // the first relaxation.
  WarmSignatureEngine(keys_.mvk);
  keys_.cpk.precomp();
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void ServiceProvider::AttachJoinTable(GridTree tree_s) {
  tree_s_ = std::move(tree_s);
}

Vo ServiceProvider::EqualityQuery(const Point& key, const RoleSet& roles) {
  return BuildEqualityVo(tree_, keys_.mvk, key, roles, keys_.universe, &rng_);
}

Vo ServiceProvider::RangeQuery(const Box& range, const RoleSet& roles) {
  return BuildRangeVo(tree_, keys_.mvk, range, roles, keys_.universe, &rng_,
                      pool_.get());
}

JoinVo ServiceProvider::JoinQuery(const Box& range, const RoleSet& roles) {
  if (!tree_s_.has_value()) {
    throw std::logic_error("no join table attached");
  }
  return BuildJoinVo(tree_, *tree_s_, keys_.mvk, range, roles, keys_.universe,
                     &rng_, pool_.get());
}

Vo ServiceProvider::BasicRangeQuery(const Box& range, const RoleSet& roles) {
  // Repeat the equality protocol for every discrete value in the range.
  Vo vo;
  Point cur = range.lo;
  for (;;) {
    Vo one = BuildEqualityVo(tree_, keys_.mvk, cur, roles, keys_.universe,
                             &rng_);
    vo.entries.push_back(std::move(one.entries[0]));
    // Advance the odometer.
    int d = static_cast<int>(cur.size()) - 1;
    while (d >= 0) {
      if (cur[d] < range.hi[d]) {
        ++cur[d];
        break;
      }
      cur[d] = range.lo[d];
      --d;
    }
    if (d < 0) break;
  }
  return vo;
}

JoinVo ServiceProvider::BasicJoinQuery(const Box& range, const RoleSet& roles) {
  if (!tree_s_.has_value()) {
    throw std::logic_error("no join table attached");
  }
  JoinVo vo;
  Point cur = range.lo;
  for (;;) {
    const GridTree::Node& leaf_r = tree_.GetNode(tree_.LeafAt(cur));
    if (!leaf_r.policy.Evaluate(roles)) {
      Vo one = BuildEqualityVo(tree_, keys_.mvk, cur, roles, keys_.universe,
                               &rng_);
      vo.r_aps.push_back(std::move(one.entries[0]));
    } else {
      const GridTree::Node& leaf_s = tree_s_->GetNode(tree_s_->LeafAt(cur));
      if (!leaf_s.policy.Evaluate(roles)) {
        Vo one = BuildEqualityVo(*tree_s_, keys_.mvk, cur, roles,
                                 keys_.universe, &rng_);
        vo.s_aps.push_back(std::move(one.entries[0]));
      } else {
        vo.pairs.push_back(JoinResultPair{
            ResultEntry{leaf_r.record.key, leaf_r.record.value,
                        leaf_r.record.policy, leaf_r.sig},
            ResultEntry{leaf_s.record.key, leaf_s.record.value,
                        leaf_s.record.policy, leaf_s.sig}});
      }
    }
    int d = static_cast<int>(cur.size()) - 1;
    while (d >= 0) {
      if (cur[d] < range.hi[d]) {
        ++cur[d];
        break;
      }
      cur[d] = range.lo[d];
      --d;
    }
    if (d < 0) break;
  }
  return vo;
}

cpabe::Envelope ServiceProvider::SealedRangeQuery(const Box& range,
                                                  const RoleSet& roles) {
  Vo vo = RangeQuery(range, roles);
  common::ByteWriter w;
  vo.Serialize(&w);
  // Seal under ∧_{a∈roles} a so only a user really holding the claimed role
  // set can open the response (Algorithm 1/3, last step).
  Policy transport = Policy::AndOfRoles(roles);
  return cpabe::Seal(keys_.cpk, transport, w.Take(), &rng_);
}

cpabe::Envelope ServiceProvider::SealedEqualityQuery(const Point& key,
                                                     const RoleSet& roles) {
  Vo vo = EqualityQuery(key, roles);
  common::ByteWriter w;
  vo.Serialize(&w);
  return cpabe::Seal(keys_.cpk, Policy::AndOfRoles(roles), w.Take(), &rng_);
}

User::User(SystemKeys keys, UserCredentials creds, int threads)
    : keys_(std::move(keys)), creds_(std::move(creds)) {
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  WarmSignatureEngine(keys_.mvk);
}

bool User::VerifyEquality(const Point& key, const Vo& vo, Record* result,
                          bool* accessible, std::string* error) const {
  return VerifyEqualityVo(keys_.mvk, keys_.domain, key, creds_.roles,
                          keys_.universe, vo, result, accessible, error);
}

bool User::VerifyRange(const Box& range, const Vo& vo,
                       std::vector<Record>* results, std::string* error) const {
  return VerifyRangeVo(keys_.mvk, keys_.domain, range, creds_.roles,
                       keys_.universe, vo, results, error,
                       /*exact_pairings=*/false, pool_.get());
}

bool User::VerifyJoin(const Box& range, const JoinVo& vo,
                      std::vector<std::pair<Record, Record>>* results,
                      std::string* error) const {
  return VerifyJoinVo(keys_.mvk, keys_.domain, range, creds_.roles,
                      keys_.universe, vo, results, error,
                      /*exact_pairings=*/false, pool_.get());
}

bool User::OpenAndVerifyRange(const Box& range, const cpabe::Envelope& env,
                              std::vector<Record>* results,
                              std::string* error) const {
  auto plain = cpabe::Open(keys_.cpk, creds_.cpabe_sk, env);
  if (!plain.has_value()) {
    if (error != nullptr) *error = "cannot open sealed response";
    return false;
  }
  common::ByteReader r(*plain);
  Vo vo = Vo::Deserialize(&r);
  if (!r.ok()) {
    if (error != nullptr) *error = "malformed sealed VO";
    return false;
  }
  return VerifyRange(range, vo, results, error);
}

bool User::OpenAndVerifyEquality(const Point& key, const cpabe::Envelope& env,
                                 Record* result, bool* accessible,
                                 std::string* error) const {
  auto plain = cpabe::Open(keys_.cpk, creds_.cpabe_sk, env);
  if (!plain.has_value()) {
    if (error != nullptr) *error = "cannot open sealed response";
    return false;
  }
  common::ByteReader r(*plain);
  Vo vo = Vo::Deserialize(&r);
  if (!r.ok()) {
    if (error != nullptr) *error = "malformed sealed VO";
    return false;
  }
  return VerifyEquality(key, vo, result, accessible, error);
}

}  // namespace apqa::core

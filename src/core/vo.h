// Verification-object (VO) entry types shared by equality, range, and join
// query authentication.
//
// A VO is a list of entries, each proving one disjoint piece of the query
// region:
//   * ResultEntry           — an accessible record with its APP signature;
//   * InaccessibleRecordEntry — a (possibly pseudo) record the user may not
//     access: only hash(v) and the APS signature under the user's super
//     access policy are revealed;
//   * InaccessibleBoxEntry  — an AP²G-tree node none of whose records are
//     accessible, proven with the node's APS signature.
#ifndef APQA_CORE_VO_H_
#define APQA_CORE_VO_H_

#include <string>
#include <variant>
#include <vector>

#include "common/serde.h"
#include "core/app_signature.h"
#include "core/record.h"

namespace apqa::core {

struct ResultEntry {
  Point key;
  std::string value;
  Policy policy;
  Signature app_sig;
};

struct InaccessibleRecordEntry {
  Point key;
  Digest value_hash;
  Signature aps_sig;
};

struct InaccessibleBoxEntry {
  Box box;
  Signature aps_sig;
};

using VoEntry =
    std::variant<ResultEntry, InaccessibleRecordEntry, InaccessibleBoxEntry>;

// The region of the query space that an entry accounts for.
Box EntryRegion(const VoEntry& entry);

// Conservative lower bound on the wire size of any VO entry (tag + point +
// minimum signature). Used to clamp declared entry counts against the
// remaining input bytes before any allocation.
inline constexpr std::size_t kMinVoEntryBytes = 32;

// Shared wire helpers, reused by the kd/dup/continuous VO serializers. The
// readers are strict: hostile input flags the reader (never silently
// coerces) — points are capped at 16 dimensions, boxes must be well-formed,
// and policies must parse and stay under a length cap (a short policy
// string can expand into a quadratically larger span-program matrix).
void WritePoint(common::ByteWriter* w, const Point& p);
Point ReadPoint(common::ByteReader* r);
void WriteBox(common::ByteWriter* w, const Box& b);
Box ReadBox(common::ByteReader* r);
Policy ReadPolicy(common::ByteReader* r);

void SerializeEntry(common::ByteWriter* w, const VoEntry& entry);
VoEntry DeserializeEntry(common::ByteReader* r);

struct Vo {
  std::vector<VoEntry> entries;

  void Serialize(common::ByteWriter* w) const;
  static Vo Deserialize(common::ByteReader* r);
  std::size_t SerializedSize() const;
};

}  // namespace apqa::core

#endif  // APQA_CORE_VO_H_

// Access-policy-preserving (APP) and access-policy-stripped (APS)
// signatures (Definitions 5.1 and 5.2).
//
// APP: σ = ABS.Sign(sk_DO, hash(o)|hash(v), Υ) for records, or
//      ABS.Sign(sk_DO, hash(gb), p) for AP²G-tree nodes.
// APS: the relaxation of an APP signature to the querying user's super
//      access policy ∨_{a ∈ 𝔸\𝒜} a.
//
// Side channels: the blinding scalars drawn inside ABS.Sign / ABS.Relax are
// taint-typed SecretFr and ride the constant-pattern ladders (crypto/ct.h);
// everything hashed or signed through this header — keys, boxes, value
// hashes, policies — is public VO material.
#ifndef APQA_CORE_APP_SIGNATURE_H_
#define APQA_CORE_APP_SIGNATURE_H_

#include <optional>
#include <vector>

#include "abs/abs.h"
#include "core/record.h"
#include "crypto/sha256.h"

namespace apqa::core {

using abs::Abs;
using abs::Signature;
using abs::SigningKey;
using abs::VerifyKey;
using crypto::Digest;
using crypto::Rng;

// Canonical byte encoding of a query key (little-endian u32 per dimension).
std::vector<std::uint8_t> EncodeKey(const Point& key);
// Canonical byte encoding of a grid box (lo then hi).
std::vector<std::uint8_t> EncodeBox(const Box& box);

// hash(o) | hash(v) — the signed message of a record APP signature.
std::vector<std::uint8_t> RecordMessage(const Point& key,
                                        const std::string& value);
// Same, from a precomputed value hash (the user of an APS signature only
// learns hash(v), never v).
std::vector<std::uint8_t> RecordMessageFromHash(const Point& key,
                                                const Digest& value_hash);
// hash(gb) — the signed message of a grid-node APP signature.
std::vector<std::uint8_t> BoxMessage(const Box& box);

// Forces construction of the verification key's fixed-base
// scalar-multiplication tables (crypto/msm.h). Keys produced by Setup are
// already warm; call this once for keys received over the wire so the first
// signature operation does not pay the table build.
void WarmSignatureEngine(const VerifyKey& mvk);

// The super access policy for a user holding `user_roles` within `universe`:
// the OR of every role the user lacks (always includes Role_∅).
policy::RoleSet SuperPolicyRoles(const policy::RoleSet& universe,
                                 const policy::RoleSet& user_roles);

// Signs a record (APP signature). Pseudo records use policy Role_∅ and a
// random value supplied by the caller.
std::optional<Signature> SignRecord(const VerifyKey& mvk,
                                    const SigningKey& sk_do,
                                    const Record& record, Rng* rng);

// Signs a grid node (APP signature over the grid box).
std::optional<Signature> SignBox(const VerifyKey& mvk, const SigningKey& sk_do,
                                 const Box& box, const Policy& node_policy,
                                 Rng* rng);

// Derives the APS signature for an inaccessible record/node with respect to
// a user's super policy roles (𝔸 \ 𝒜).
std::optional<Signature> DeriveAps(const VerifyKey& mvk, const Signature& app,
                                   const Policy& original_policy,
                                   const std::vector<std::uint8_t>& message,
                                   const policy::RoleSet& lacked_roles,
                                   Rng* rng);

}  // namespace apqa::core

#endif  // APQA_CORE_APP_SIGNATURE_H_

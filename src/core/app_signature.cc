#include "core/app_signature.h"

#include <algorithm>

namespace apqa::core {

using crypto::Sha256;

std::vector<std::uint8_t> EncodeKey(const Point& key) {
  std::vector<std::uint8_t> out;
  out.reserve(4 * key.size());
  for (std::uint32_t c : key) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(c >> (8 * i)));
    }
  }
  return out;
}

std::vector<std::uint8_t> EncodeBox(const Box& box) {
  std::vector<std::uint8_t> out = EncodeKey(box.lo);
  std::vector<std::uint8_t> hi = EncodeKey(box.hi);
  out.insert(out.end(), hi.begin(), hi.end());
  return out;
}

std::vector<std::uint8_t> RecordMessage(const Point& key,
                                        const std::string& value) {
  return RecordMessageFromHash(key,
                               Sha256::Hash(value.data(), value.size()));
}

std::vector<std::uint8_t> RecordMessageFromHash(const Point& key,
                                                const Digest& value_hash) {
  std::vector<std::uint8_t> enc = EncodeKey(key);
  Digest key_hash = Sha256::Hash(enc.data(), enc.size());
  // Sized up front; insert()'s reallocation path trips a GCC 12
  // -Warray-bounds false positive on the fixed-size Digest source.
  std::vector<std::uint8_t> msg(key_hash.size() + value_hash.size());
  auto mid = std::copy(key_hash.begin(), key_hash.end(), msg.begin());
  std::copy(value_hash.begin(), value_hash.end(), mid);
  return msg;
}

std::vector<std::uint8_t> BoxMessage(const Box& box) {
  std::vector<std::uint8_t> enc = EncodeBox(box);
  Digest h = Sha256::Hash(enc.data(), enc.size());
  return std::vector<std::uint8_t>(h.begin(), h.end());
}

void WarmSignatureEngine(const VerifyKey& mvk) {
  // precomp() builds the fixed-base and prepared-pairing tables;
  // GeneratorPairing() additionally memoizes the constant e(g, h) so the
  // first Verify pays no pairing-setup cost at all.
  mvk.precomp();
  mvk.GeneratorPairing();
}

policy::RoleSet SuperPolicyRoles(const policy::RoleSet& universe,
                                 const policy::RoleSet& user_roles) {
  policy::RoleSet lacked;
  for (const auto& r : universe) {
    if (!user_roles.count(r)) lacked.insert(r);
  }
  lacked.insert(kPseudoRole);
  return lacked;
}

std::optional<Signature> SignRecord(const VerifyKey& mvk,
                                    const SigningKey& sk_do,
                                    const Record& record, Rng* rng) {
  return Abs::Sign(mvk, sk_do, RecordMessage(record.key, record.value),
                   record.policy, rng);
}

std::optional<Signature> SignBox(const VerifyKey& mvk, const SigningKey& sk_do,
                                 const Box& box, const Policy& node_policy,
                                 Rng* rng) {
  return Abs::Sign(mvk, sk_do, BoxMessage(box), node_policy, rng);
}

std::optional<Signature> DeriveAps(const VerifyKey& mvk, const Signature& app,
                                   const Policy& original_policy,
                                   const std::vector<std::uint8_t>& message,
                                   const policy::RoleSet& lacked_roles,
                                   Rng* rng) {
  return Abs::Relax(mvk, app, original_policy, message, lacked_roles, rng);
}

}  // namespace apqa::core

// Structured verification outcomes.
//
// Every user-side verifier reports *why* a VO was rejected, not just that it
// was: a machine-readable code, the index of the offending entry when one
// can be named, and a human-readable detail string. The legacy bool-
// returning verifiers remain as thin wrappers that stringify the result.
//
// Codes split into three layers, mirroring where on the untrusted path the
// check lives:
//   * input boundary — the bytes did not deserialize into a structurally
//     valid VO (wire-level errors classified by common::WireError);
//   * structural     — the VO parsed but fails soundness/completeness
//     bookkeeping (coverage, disjointness, key/dimension agreement);
//   * cryptographic  — a signature or policy check failed.
#ifndef APQA_CORE_VERIFY_RESULT_H_
#define APQA_CORE_VERIFY_RESULT_H_

#include <cstddef>
#include <string>

#include "common/serde.h"

namespace apqa::core {

enum class VerifyCode : std::uint8_t {
  kOk = 0,

  // Input boundary (deserialization).
  kMalformedVo,            // truncated or otherwise structurally invalid bytes
  kUnknownEntryTag,        // unrecognized VO entry discriminator
  kBadPolicyEncoding,      // policy text failed to parse or exceeds caps
  kPointNotOnCurve,        // group point fails the curve equation
  kPointNotInSubgroup,     // on curve but outside the prime-order subgroup
  kNonCanonicalEncoding,   // unreduced field element / bad flag byte
  kLengthOverflow,         // declared count/length exceeds the input size

  // Structural (soundness/completeness bookkeeping).
  kBadQuery,               // the query itself is invalid for the domain
  kWrongEntryCount,        // entry count contradicts the query type
  kUnexpectedEntryType,    // entry type not allowed at this position
  kKeyMismatch,            // entry key disagrees with the query/peer entry
  kDimensionMismatch,      // point/box dimensionality disagrees with domain
  kRegionOutsideRange,     // entry region not contained in the query range
  kOverlap,                // two entry regions intersect
  kCoverageGap,            // entry regions do not tile the query range
  kDuplicateBookkeeping,   // dup_num/dup_id accounting inconsistent

  // Cryptographic.
  kPolicyNotSatisfied,     // result entry policy unsatisfied by user roles
  kBadSignature,           // APP/APS signature rejected
};

const char* VerifyCodeName(VerifyCode code);

struct VerifyResult {
  VerifyCode code = VerifyCode::kOk;
  // Index of the offending entry within its VO section; -1 when the error
  // is not attributable to a single entry.
  std::ptrdiff_t entry_index = -1;
  std::string detail;

  bool ok() const { return code == VerifyCode::kOk; }
  explicit operator bool() const { return ok(); }

  static VerifyResult Ok() { return {}; }
  static VerifyResult Fail(VerifyCode code, std::string detail,
                           std::ptrdiff_t entry_index = -1) {
    VerifyResult r;
    r.code = code;
    r.entry_index = entry_index;
    r.detail = std::move(detail);
    return r;
  }
  // Maps the wire-level error recorded by a failed ByteReader onto the
  // corresponding input-boundary code. The reader must be !ok().
  static VerifyResult FromReader(const common::ByteReader& reader);

  // "coverage-gap at entry 3: ranges covered 12 of 16 cells"
  std::string ToString() const;
};

}  // namespace apqa::core

#endif  // APQA_CORE_VERIFY_RESULT_H_

// Handling duplicate query keys (paper Appendix E).
//
// Zero-knowledge approach: records sharing a key and a policy are merged
// into a super-record, then a *virtual dimension* is appended to the key so
// all transformed keys are distinct; the standard AP²G-tree machinery runs
// over the extended domain, and query ranges are extended to cover the whole
// virtual dimension.
//
// Non-zero-knowledge approach: duplicate counts are embedded in the APP
// signature messages (hash(o)|hash(v)|dup_num|dup_id). The ADS is a grid
// tree whose leaves hold the duplicate group; the verifier checks that all
// dup_ids 0..dup_num-1 of every covered key are present.
#ifndef APQA_CORE_DUPLICATES_H_
#define APQA_CORE_DUPLICATES_H_

#include <map>
#include <string>
#include <vector>

#include "core/app_signature.h"
#include "core/record.h"
#include "core/thread_pool.h"
#include "core/verify_result.h"
#include "core/vo.h"

namespace apqa::core {

// --- Zero-knowledge path -------------------------------------------------

// Merges records sharing (key, policy) into super-records whose value is a
// length-prefixed concatenation of the member values.
std::vector<Record> MergeSuperRecords(const std::vector<Record>& records);

struct VirtualDimResult {
  std::vector<Record> records;  // keys extended by one trailing coordinate
  Domain extended_domain;
};

// Appends a virtual dimension of 2^vdim_bits values; same-key records get
// distinct random virtual coordinates. Throws if a key has more than
// 2^vdim_bits duplicates.
VirtualDimResult AddVirtualDimension(const Domain& domain,
                                     const std::vector<Record>& records,
                                     int vdim_bits, Rng* rng);

// Extends a query range to cover the whole virtual dimension.
Box ExtendRangeToVirtualDim(const Box& range, const Domain& extended_domain);

// --- Non-zero-knowledge path ---------------------------------------------

// Message with embedded duplicate info: hash(o)|hash(v)|dup_num|dup_id.
std::vector<std::uint8_t> DupRecordMessage(const Point& key,
                                           const std::string& value,
                                           std::uint32_t dup_num,
                                           std::uint32_t dup_id);
std::vector<std::uint8_t> DupRecordMessageFromHash(const Point& key,
                                                   const Digest& value_hash,
                                                   std::uint32_t dup_num,
                                                   std::uint32_t dup_id);

// Grid tree whose leaves hold duplicate groups.
class DupGridTree {
 public:
  struct DupEntry {
    Record record;
    std::uint32_t dup_id = 0;
    Signature sig;
  };
  struct Node {
    Box box;
    Policy policy;
    Signature sig;            // internal nodes only
    bool is_leaf = false;
    bool is_pseudo = false;   // leaf with no real records
    std::vector<DupEntry> dups;  // leaf group (size >= 1)
  };
  struct NodeId {
    int level = 0;
    std::uint64_t index = 0;
  };

  static DupGridTree Build(const VerifyKey& mvk, const SigningKey& sk_do,
                           const Domain& domain,
                           const std::vector<Record>& records, Rng* rng);

  const Domain& domain() const { return domain_; }
  NodeId Root() const { return {0, 0}; }
  const Node& GetNode(NodeId id) const { return levels_[id.level][id.index]; }
  bool IsLeafLevel(NodeId id) const { return id.level == domain_.bits; }
  std::vector<NodeId> Children(NodeId id) const;
  void SerializedSize(std::size_t* structure_bytes,
                      std::size_t* signature_bytes) const;

 private:
  std::vector<std::uint32_t> Coords(NodeId id) const;
  std::uint64_t IndexOf(int level, const std::vector<std::uint32_t>& c) const;

  Domain domain_;
  std::vector<std::vector<Node>> levels_;
};

// VO for non-ZK duplicate range queries.
struct DupVo {
  struct DupResultEntry {
    Point key;
    std::string value;
    Policy policy;
    std::uint32_t dup_num, dup_id;
    Signature app_sig;
  };
  struct DupInaccessibleEntry {
    Point key;
    Digest value_hash;
    std::uint32_t dup_num, dup_id;
    Signature aps_sig;
  };
  std::vector<DupResultEntry> results;
  std::vector<DupInaccessibleEntry> inaccessible;
  std::vector<InaccessibleBoxEntry> boxes;

  std::size_t SerializedSize() const;
  void Serialize(common::ByteWriter* w) const;
  static DupVo Deserialize(common::ByteReader* r);
};

DupVo BuildDupRangeVo(const DupGridTree& tree, const VerifyKey& mvk,
                      const Box& range, const RoleSet& user_roles,
                      const RoleSet& universe, Rng* rng);

// A non-null `pool` fans the signature checks out across its threads with
// diagnostics identical to the serial path (see core/parallel_verify.h).
VerifyResult VerifyDupRangeVoEx(const VerifyKey& mvk, const Domain& domain,
                                const Box& range, const RoleSet& user_roles,
                                const RoleSet& universe, const DupVo& vo,
                                std::vector<Record>* results,
                                ThreadPool* pool = nullptr);

bool VerifyDupRangeVo(const VerifyKey& mvk, const Domain& domain,
                      const Box& range, const RoleSet& user_roles,
                      const RoleSet& universe, const DupVo& vo,
                      std::vector<Record>* results, std::string* error,
                      ThreadPool* pool = nullptr);

}  // namespace apqa::core

#endif  // APQA_CORE_DUPLICATES_H_

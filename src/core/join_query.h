// Authenticated equi-join queries (paper §6.2, Algorithm 4).
//
// For R ⋈_{R.o=S.o} S with R.o ∈ [α,β], the SP walks the two AP²G-trees in
// lockstep. A region contributes no join results if it is inaccessible on
// the R side or on the S side; either way one APS signature proves it. Leaf
// pairs that are accessible on both sides are join results, proven by the
// two APP signatures.
#ifndef APQA_CORE_JOIN_QUERY_H_
#define APQA_CORE_JOIN_QUERY_H_

#include <string>

#include "core/grid_tree.h"
#include "core/verify_result.h"
#include "core/vo.h"

namespace apqa::core {

struct JoinResultPair {
  ResultEntry r;
  ResultEntry s;
};

struct JoinVo {
  std::vector<JoinResultPair> pairs;
  std::vector<VoEntry> r_aps;  // inaccessible covers from tree R
  std::vector<VoEntry> s_aps;  // blocking covers from tree S

  void Serialize(common::ByteWriter* w) const;
  static JoinVo Deserialize(common::ByteReader* r);
  std::size_t SerializedSize() const;
};

// SP side (Algorithm 4).
JoinVo BuildJoinVo(const GridTree& tree_r, const GridTree& tree_s,
                   const VerifyKey& mvk, const Box& range,
                   const RoleSet& user_roles, const RoleSet& universe,
                   Rng* rng, ThreadPool* pool = nullptr);

// User side: soundness (pair keys equal, signatures valid, policies
// satisfied) and completeness (pair cells plus APS regions tile the range).
// A non-null `pool` fans the signature checks out across its threads with
// diagnostics identical to the serial path (see core/parallel_verify.h).
VerifyResult VerifyJoinVoEx(const VerifyKey& mvk, const Domain& domain,
                            const Box& range, const RoleSet& user_roles,
                            const RoleSet& universe, const JoinVo& vo,
                            std::vector<std::pair<Record, Record>>* results,
                            bool exact_pairings = false,
                            ThreadPool* pool = nullptr);

// Legacy bool API; `error` (if not null) receives the stringified result.
bool VerifyJoinVo(const VerifyKey& mvk, const Domain& domain, const Box& range,
                  const RoleSet& user_roles, const RoleSet& universe,
                  const JoinVo& vo,
                  std::vector<std::pair<Record, Record>>* results,
                  std::string* error, bool exact_pairings = false,
                  ThreadPool* pool = nullptr);

// --- Multi-way equi-join (§6.2, "easily extended") -------------------------
//
// R1 ⋈ R2 ⋈ ... ⋈ Rk on the shared key, key ∈ [α,β]. A cell contributes a
// result tuple iff it is accessible in every tree; otherwise the first
// blocking tree (in table order) proves non-contribution with one APS
// signature.

struct MultiJoinVo {
  // One ResultEntry per table for each joining key.
  std::vector<std::vector<ResultEntry>> tuples;
  // aps[i]: blocking covers contributed by table i.
  std::vector<std::vector<VoEntry>> aps;

  std::size_t SerializedSize() const;
};

MultiJoinVo BuildMultiJoinVo(const std::vector<const GridTree*>& trees,
                             const VerifyKey& mvk, const Box& range,
                             const RoleSet& user_roles,
                             const RoleSet& universe, Rng* rng);

VerifyResult VerifyMultiJoinVoEx(const VerifyKey& mvk, const Domain& domain,
                                 const Box& range, const RoleSet& user_roles,
                                 const RoleSet& universe,
                                 std::size_t num_tables, const MultiJoinVo& vo,
                                 std::vector<std::vector<Record>>* results,
                                 ThreadPool* pool = nullptr);

bool VerifyMultiJoinVo(const VerifyKey& mvk, const Domain& domain,
                       const Box& range, const RoleSet& user_roles,
                       const RoleSet& universe, std::size_t num_tables,
                       const MultiJoinVo& vo,
                       std::vector<std::vector<Record>>* results,
                       std::string* error, ThreadPool* pool = nullptr);

}  // namespace apqa::core

#endif  // APQA_CORE_JOIN_QUERY_H_

// Authenticated aggregation over range queries (paper §11 future work).
//
// Given a *verified* range VO, the accessible result set is complete and
// sound, so any aggregate computed over it inherits those guarantees for
// the user's accessible view of the data: COUNT, SUM, MIN, MAX, AVG over a
// numeric field extracted from record values. The extraction function makes
// the module schema-agnostic.
//
// Note the semantics: aggregates are over the records *the user may
// access*. Zero-knowledge confidentiality forbids anything stronger — a
// COUNT over inaccessible records would reveal exactly the information the
// scheme is designed to hide.
#ifndef APQA_CORE_AGGREGATE_H_
#define APQA_CORE_AGGREGATE_H_

#include <functional>
#include <optional>
#include <string>

#include "core/range_query.h"

namespace apqa::core {

struct AggregateResult {
  std::uint64_t count = 0;
  double sum = 0;
  std::optional<double> min;
  std::optional<double> max;

  std::optional<double> Avg() const {
    if (count == 0) return std::nullopt;
    return sum / static_cast<double>(count);
  }
};

// Extracts the aggregated measure from a record; return nullopt to skip the
// record (e.g. non-numeric payloads).
using MeasureFn = std::function<std::optional<double>(const Record&)>;

// Verifies the VO and, on success, aggregates the accessible results.
// Returns nullopt if verification fails; `why` (if not null) receives the
// structured verification result either way. A non-null `pool` is passed
// through to the underlying range verification.
std::optional<AggregateResult> VerifyAndAggregateEx(
    const VerifyKey& mvk, const Domain& domain, const Box& range,
    const RoleSet& user_roles, const RoleSet& universe, const Vo& vo,
    const MeasureFn& measure, VerifyResult* why = nullptr,
    ThreadPool* pool = nullptr);

// Legacy bool-style API; `error` receives the stringified result.
std::optional<AggregateResult> VerifyAndAggregate(
    const VerifyKey& mvk, const Domain& domain, const Box& range,
    const RoleSet& user_roles, const RoleSet& universe, const Vo& vo,
    const MeasureFn& measure, std::string* error,
    ThreadPool* pool = nullptr);

// Convenience measure: parses the record value as a decimal number.
std::optional<double> NumericValueMeasure(const Record& record);

}  // namespace apqa::core

#endif  // APQA_CORE_AGGREGATE_H_

#include "core/join_query.h"

#include <deque>

#include "core/parallel_verify.h"
#include "core/range_query.h"

namespace apqa::core {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

// Smallest node of `tree` under `from` whose box still covers `box`
// (Algorithm 4). In a full grid tree this is the aligned node at the same
// level as `box` when the box is a grid box.
GridTree::NodeId DescendCovering(const GridTree& tree, GridTree::NodeId from,
                                 const Box& box) {
  GridTree::NodeId cur = from;
  for (;;) {
    if (tree.IsLeafLevel(cur)) return cur;
    bool descended = false;
    for (GridTree::NodeId c : tree.Children(cur)) {
      if (tree.GetNode(c).box.ContainsBox(box)) {
        cur = c;
        descended = true;
        break;
      }
    }
    if (!descended) return cur;
  }
}

}  // namespace

JoinVo BuildJoinVo(const GridTree& tree_r, const GridTree& tree_s,
                   const VerifyKey& mvk, const Box& range,
                   const RoleSet& user_roles, const RoleSet& universe,
                   Rng* rng, ThreadPool* pool) {
  RoleSet lacked = SuperPolicyRoles(universe, user_roles);

  JoinVo vo;
  struct RelaxJob {
    const GridTree* tree;
    GridTree::NodeId id;
    bool s_side;
  };
  std::vector<RelaxJob> jobs;

  std::deque<std::pair<GridTree::NodeId, GridTree::NodeId>> queue;
  queue.emplace_back(tree_r.Root(), tree_s.Root());
  while (!queue.empty()) {
    auto [nr, ns] = queue.front();
    queue.pop_front();
    const GridTree::Node& node_r = tree_r.GetNode(nr);
    if (!node_r.box.Intersects(range)) continue;
    if (!range.ContainsBox(node_r.box)) {
      for (GridTree::NodeId c : tree_r.Children(nr)) queue.emplace_back(c, ns);
      continue;
    }
    if (!node_r.policy.Evaluate(user_roles)) {
      jobs.push_back(RelaxJob{&tree_r, nr, /*s_side=*/false});
      continue;
    }
    GridTree::NodeId ns_small = DescendCovering(tree_s, ns, node_r.box);
    const GridTree::Node& node_s = tree_s.GetNode(ns_small);
    if (!node_s.policy.Evaluate(user_roles)) {
      jobs.push_back(RelaxJob{&tree_s, ns_small, /*s_side=*/true});
      continue;
    }
    if (tree_r.IsLeafLevel(nr)) {
      // Both sides are accessible leaves: a join result pair. Accessibility
      // excludes pseudo records (policy Role_∅).
      vo.pairs.push_back(JoinResultPair{
          ResultEntry{node_r.record.key, node_r.record.value,
                      node_r.record.policy, node_r.sig},
          ResultEntry{node_s.record.key, node_s.record.value,
                      node_s.record.policy, node_s.sig}});
    } else {
      for (GridTree::NodeId c : tree_r.Children(nr)) {
        queue.emplace_back(c, ns_small);
      }
    }
  }

  // Derive APS signatures for all blocking nodes.
  std::vector<VoEntry> relaxed(jobs.size());
  std::vector<bool> s_side(jobs.size());
  auto relax_one = [&](std::size_t i, Rng* r) {
    const RelaxJob& job = jobs[i];
    const GridTree::Node& node = job.tree->GetNode(job.id);
    s_side[i] = job.s_side;
    if (node.is_leaf) {
      Digest vh = crypto::Sha256::Hash(node.record.value.data(),
                                       node.record.value.size());
      auto msg = RecordMessageFromHash(node.record.key, vh);
      auto aps = DeriveAps(mvk, node.sig, node.policy, msg, lacked, r);
      relaxed[i] = InaccessibleRecordEntry{node.record.key, vh, std::move(*aps)};
    } else {
      auto msg = BoxMessage(node.box);
      auto aps = DeriveAps(mvk, node.sig, node.policy, msg, lacked, r);
      relaxed[i] = InaccessibleBoxEntry{node.box, std::move(*aps)};
    }
  };
  if (pool != nullptr && pool->thread_count() > 1 && jobs.size() > 1) {
    std::vector<Rng> rngs;
    for (int t = 0; t < pool->thread_count(); ++t) rngs.emplace_back(rng->NextU64());
    std::atomic<std::size_t> next{0};
    pool->ParallelFor(pool->thread_count(), [&](std::size_t t) {
      for (;;) {
        std::size_t i = next.fetch_add(1);
        if (i >= jobs.size()) break;
        relax_one(i, &rngs[t]);
      }
    });
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) relax_one(i, rng);
  }
  for (std::size_t i = 0; i < relaxed.size(); ++i) {
    (s_side[i] ? vo.s_aps : vo.r_aps).push_back(std::move(relaxed[i]));
  }
  return vo;
}

void JoinVo::Serialize(common::ByteWriter* w) const {
  w->PutU32(static_cast<std::uint32_t>(pairs.size()));
  for (const auto& p : pairs) {
    SerializeEntry(w, p.r);
    SerializeEntry(w, p.s);
  }
  w->PutU32(static_cast<std::uint32_t>(r_aps.size()));
  for (const auto& e : r_aps) SerializeEntry(w, e);
  w->PutU32(static_cast<std::uint32_t>(s_aps.size()));
  for (const auto& e : s_aps) SerializeEntry(w, e);
}

JoinVo JoinVo::Deserialize(common::ByteReader* r) {
  JoinVo vo;
  std::uint32_t np = r->GetU32();
  // Two entries per pair, each at least kMinVoEntryBytes on the wire.
  if (!r->CheckCount(np, 2 * kMinVoEntryBytes)) return vo;
  vo.pairs.reserve(np);
  for (std::uint32_t i = 0; i < np && r->ok(); ++i) {
    JoinResultPair pair;
    VoEntry er = DeserializeEntry(r);
    VoEntry es = DeserializeEntry(r);
    auto* a = std::get_if<ResultEntry>(&er);
    auto* b = std::get_if<ResultEntry>(&es);
    if (a == nullptr || b == nullptr) {
      r->MarkBad(common::WireError::kMalformed,
                 "join pair entry is not a result entry");
      return vo;
    }
    pair.r = std::move(*a);
    pair.s = std::move(*b);
    vo.pairs.push_back(std::move(pair));
  }
  std::uint32_t nr = r->GetU32();
  if (!r->CheckCount(nr, kMinVoEntryBytes)) return vo;
  vo.r_aps.reserve(nr);
  for (std::uint32_t i = 0; i < nr && r->ok(); ++i) {
    vo.r_aps.push_back(DeserializeEntry(r));
  }
  std::uint32_t ns = r->GetU32();
  if (!r->CheckCount(ns, kMinVoEntryBytes)) return vo;
  vo.s_aps.reserve(ns);
  for (std::uint32_t i = 0; i < ns && r->ok(); ++i) {
    vo.s_aps.push_back(DeserializeEntry(r));
  }
  return vo;
}

std::size_t JoinVo::SerializedSize() const {
  common::ByteWriter w;
  Serialize(&w);
  return w.size();
}

VerifyResult VerifyJoinVoEx(const VerifyKey& mvk, const Domain& domain,
                            const Box& range, const RoleSet& user_roles,
                            const RoleSet& universe, const JoinVo& vo,
                            std::vector<std::pair<Record, Record>>* results,
                            bool exact_pairings, ThreadPool* pool) {
  if (!range.WellFormed() ||
      range.lo.size() != static_cast<std::size_t>(domain.dims) ||
      !domain.FullBox().ContainsBox(range)) {
    return VerifyResult::Fail(VerifyCode::kBadQuery,
                              "query range invalid for domain");
  }
  // Completeness: pair cells plus APS regions tile the range.
  Vo coverage;
  for (const auto& p : vo.pairs) coverage.entries.push_back(p.r);
  for (const auto& e : vo.r_aps) coverage.entries.push_back(e);
  for (const auto& e : vo.s_aps) coverage.entries.push_back(e);
  if (VerifyResult r = CheckCoverageEx(range, coverage); !r.ok()) return r;

  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  Policy super_policy = Policy::OrOfRoles(lacked);

  // Structural pass in sequential order; signature checks are queued and a
  // pair emits iff its *second* (S-side) job precedes the first failure.
  SigBatch batch(mvk, exact_pairings);
  VerifyResult struct_fail = VerifyResult::Ok();
  std::vector<std::ptrdiff_t> pair_job(vo.pairs.size(), -1);
  for (std::size_t i = 0; i < vo.pairs.size() && struct_fail.ok(); ++i) {
    const JoinResultPair& pair = vo.pairs[i];
    std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
    if (pair.r.key != pair.s.key) {
      struct_fail = VerifyResult::Fail(VerifyCode::kKeyMismatch,
                                       "join pair keys differ", idx);
      break;
    }
    if (!domain.ContainsPoint(pair.r.key) || !range.Contains(pair.r.key)) {
      struct_fail = VerifyResult::Fail(VerifyCode::kRegionOutsideRange,
                                       "join pair key outside range", idx);
      break;
    }
    for (const ResultEntry* side : {&pair.r, &pair.s}) {
      if (!side->policy.Evaluate(user_roles)) {
        struct_fail = VerifyResult::Fail(VerifyCode::kPolicyNotSatisfied,
                                         "join pair policy not satisfied", idx);
        break;
      }
      pair_job[i] = static_cast<std::ptrdiff_t>(batch.Add(
          RecordMessage(side->key, side->value), &side->policy, &side->app_sig,
          VerifyResult::Fail(VerifyCode::kBadSignature,
                             "join pair APP signature verification failed",
                             idx)));
    }
    // An S-side structural failure after the R-side job was queued must not
    // leave the pair emittable: the sequential verifier never emits it.
    if (!struct_fail.ok()) pair_job[i] = -1;
  }

  if (struct_fail.ok()) {
    for (const auto* side : {&vo.r_aps, &vo.s_aps}) {
      for (std::size_t i = 0; i < side->size() && struct_fail.ok(); ++i) {
        const VoEntry& entry = (*side)[i];
        std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
        if (const auto* rec = std::get_if<InaccessibleRecordEntry>(&entry)) {
          batch.Add(RecordMessageFromHash(rec->key, rec->value_hash),
                    &super_policy, &rec->aps_sig,
                    VerifyResult::Fail(
                        VerifyCode::kBadSignature,
                        "join APS record signature verification failed", idx));
        } else if (const auto* boxe =
                       std::get_if<InaccessibleBoxEntry>(&entry)) {
          batch.Add(BoxMessage(boxe->box), &super_policy, &boxe->aps_sig,
                    VerifyResult::Fail(
                        VerifyCode::kBadSignature,
                        "join APS box signature verification failed", idx));
        } else {
          struct_fail =
              VerifyResult::Fail(VerifyCode::kUnexpectedEntryType,
                                 "unexpected result entry among join APS "
                                 "entries",
                                 idx);
        }
      }
      if (!struct_fail.ok()) break;
    }
  }

  std::ptrdiff_t bad = batch.FirstFailure(pool);
  if (results != nullptr) {
    std::size_t emit = batch.EmitLimit(bad);
    for (std::size_t i = 0; i < vo.pairs.size(); ++i) {
      const JoinResultPair& pair = vo.pairs[i];
      if (pair_job[i] < 0) continue;
      if (static_cast<std::size_t>(pair_job[i]) < emit) {
        results->emplace_back(Record{pair.r.key, pair.r.value, pair.r.policy},
                              Record{pair.s.key, pair.s.value, pair.s.policy});
      }
    }
  }
  if (bad >= 0) return batch.failure(bad);
  return struct_fail;
}

bool VerifyJoinVo(const VerifyKey& mvk, const Domain& domain, const Box& range,
                  const RoleSet& user_roles, const RoleSet& universe,
                  const JoinVo& vo,
                  std::vector<std::pair<Record, Record>>* results,
                  std::string* error, bool exact_pairings, ThreadPool* pool) {
  VerifyResult r = VerifyJoinVoEx(mvk, domain, range, user_roles, universe, vo,
                                  results, exact_pairings, pool);
  if (!r.ok()) SetError(error, r.ToString());
  return r.ok();
}

MultiJoinVo BuildMultiJoinVo(const std::vector<const GridTree*>& trees,
                             const VerifyKey& mvk, const Box& range,
                             const RoleSet& user_roles,
                             const RoleSet& universe, Rng* rng) {
  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  MultiJoinVo vo;
  vo.aps.resize(trees.size());

  auto emit_aps = [&](const GridTree& tree, GridTree::NodeId id,
                      std::vector<VoEntry>* out) {
    const GridTree::Node& node = tree.GetNode(id);
    if (node.is_leaf) {
      Digest vh = crypto::Sha256::Hash(node.record.value.data(),
                                       node.record.value.size());
      auto msg = RecordMessageFromHash(node.record.key, vh);
      auto aps = DeriveAps(mvk, node.sig, node.policy, msg, lacked, rng);
      out->push_back(InaccessibleRecordEntry{node.record.key, vh, *aps});
    } else {
      auto aps = DeriveAps(mvk, node.sig, node.policy, BoxMessage(node.box),
                           lacked, rng);
      out->push_back(InaccessibleBoxEntry{node.box, *aps});
    }
  };

  // BFS over the first tree; companions track the covering node per table.
  struct Item {
    GridTree::NodeId lead;
    std::vector<GridTree::NodeId> companions;  // trees[1..]
  };
  std::deque<Item> queue;
  Item root;
  root.lead = trees[0]->Root();
  for (std::size_t i = 1; i < trees.size(); ++i) {
    root.companions.push_back(trees[i]->Root());
  }
  queue.push_back(std::move(root));
  while (!queue.empty()) {
    Item item = std::move(queue.front());
    queue.pop_front();
    const GridTree::Node& lead = trees[0]->GetNode(item.lead);
    if (!lead.box.Intersects(range)) continue;
    if (!range.ContainsBox(lead.box)) {
      for (GridTree::NodeId c : trees[0]->Children(item.lead)) {
        queue.push_back(Item{c, item.companions});
      }
      continue;
    }
    if (!lead.policy.Evaluate(user_roles)) {
      emit_aps(*trees[0], item.lead, &vo.aps[0]);
      continue;
    }
    // Descend every companion to the node covering the lead box; the first
    // inaccessible one blocks the region.
    std::vector<GridTree::NodeId> next_companions;
    bool blocked = false;
    for (std::size_t i = 1; i < trees.size() && !blocked; ++i) {
      GridTree::NodeId small =
          DescendCovering(*trees[i], item.companions[i - 1], lead.box);
      if (!trees[i]->GetNode(small).policy.Evaluate(user_roles)) {
        emit_aps(*trees[i], small, &vo.aps[i]);
        blocked = true;
      }
      next_companions.push_back(small);
    }
    if (blocked) continue;
    if (trees[0]->IsLeafLevel(item.lead)) {
      std::vector<ResultEntry> tuple;
      tuple.push_back(ResultEntry{lead.record.key, lead.record.value,
                                  lead.record.policy, lead.sig});
      for (std::size_t i = 1; i < trees.size(); ++i) {
        const GridTree::Node& n = trees[i]->GetNode(next_companions[i - 1]);
        tuple.push_back(
            ResultEntry{n.record.key, n.record.value, n.record.policy, n.sig});
      }
      vo.tuples.push_back(std::move(tuple));
    } else {
      for (GridTree::NodeId c : trees[0]->Children(item.lead)) {
        queue.push_back(Item{c, next_companions});
      }
    }
  }
  return vo;
}

std::size_t MultiJoinVo::SerializedSize() const {
  common::ByteWriter w;
  for (const auto& tuple : tuples) {
    for (const auto& e : tuple) SerializeEntry(&w, e);
  }
  for (const auto& side : aps) {
    for (const auto& e : side) SerializeEntry(&w, e);
  }
  return w.size();
}

VerifyResult VerifyMultiJoinVoEx(const VerifyKey& mvk, const Domain& domain,
                                 const Box& range, const RoleSet& user_roles,
                                 const RoleSet& universe,
                                 std::size_t num_tables, const MultiJoinVo& vo,
                                 std::vector<std::vector<Record>>* results,
                                 ThreadPool* pool) {
  if (!range.WellFormed() ||
      range.lo.size() != static_cast<std::size_t>(domain.dims) ||
      !domain.FullBox().ContainsBox(range)) {
    return VerifyResult::Fail(VerifyCode::kBadQuery,
                              "query range invalid for domain");
  }
  if (vo.aps.size() != num_tables) {
    return VerifyResult::Fail(VerifyCode::kWrongEntryCount,
                              "wrong number of APS groups");
  }
  Vo coverage;
  for (std::size_t i = 0; i < vo.tuples.size(); ++i) {
    if (vo.tuples[i].size() != num_tables) {
      return VerifyResult::Fail(VerifyCode::kWrongEntryCount,
                                "tuple arity mismatch",
                                static_cast<std::ptrdiff_t>(i));
    }
    coverage.entries.push_back(vo.tuples[i][0]);
  }
  for (const auto& side : vo.aps) {
    for (const auto& e : side) coverage.entries.push_back(e);
  }
  if (VerifyResult r = CheckCoverageEx(range, coverage); !r.ok()) return r;

  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  Policy super_policy = Policy::OrOfRoles(lacked);

  // Structural pass in sequential order; a tuple emits iff its *last*
  // (num_tables-th) queued job precedes the first signature failure.
  SigBatch batch(mvk, /*exact_pairings=*/false);
  VerifyResult struct_fail = VerifyResult::Ok();
  std::vector<std::ptrdiff_t> tuple_job(vo.tuples.size(), -1);
  for (std::size_t i = 0; i < vo.tuples.size() && struct_fail.ok(); ++i) {
    const auto& tuple = vo.tuples[i];
    std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
    for (const auto& side : tuple) {
      if (side.key != tuple[0].key) {
        struct_fail = VerifyResult::Fail(VerifyCode::kKeyMismatch,
                                         "tuple keys differ", idx);
        break;
      }
      if (!domain.ContainsPoint(side.key) || !range.Contains(side.key)) {
        struct_fail = VerifyResult::Fail(VerifyCode::kRegionOutsideRange,
                                         "tuple key outside range", idx);
        break;
      }
      if (!side.policy.Evaluate(user_roles)) {
        struct_fail = VerifyResult::Fail(VerifyCode::kPolicyNotSatisfied,
                                         "tuple policy not satisfied", idx);
        break;
      }
      tuple_job[i] = static_cast<std::ptrdiff_t>(batch.Add(
          RecordMessage(side.key, side.value), &side.policy, &side.app_sig,
          VerifyResult::Fail(VerifyCode::kBadSignature,
                             "tuple APP signature verification failed", idx)));
    }
    // A mid-tuple structural failure leaves earlier sides queued but the
    // tuple must not be emittable (the sequential verifier never emits it).
    if (!struct_fail.ok()) tuple_job[i] = -1;
  }

  if (struct_fail.ok()) {
    for (const auto& side : vo.aps) {
      for (std::size_t i = 0; i < side.size() && struct_fail.ok(); ++i) {
        const VoEntry& entry = side[i];
        std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
        if (const auto* rec = std::get_if<InaccessibleRecordEntry>(&entry)) {
          batch.Add(RecordMessageFromHash(rec->key, rec->value_hash),
                    &super_policy, &rec->aps_sig,
                    VerifyResult::Fail(VerifyCode::kBadSignature,
                                       "multi-join record APS verification "
                                       "failed",
                                       idx));
        } else if (const auto* boxe =
                       std::get_if<InaccessibleBoxEntry>(&entry)) {
          batch.Add(BoxMessage(boxe->box), &super_policy, &boxe->aps_sig,
                    VerifyResult::Fail(
                        VerifyCode::kBadSignature,
                        "multi-join box APS verification failed", idx));
        } else {
          struct_fail =
              VerifyResult::Fail(VerifyCode::kUnexpectedEntryType,
                                 "unexpected entry type in multi-join APS "
                                 "group",
                                 idx);
        }
      }
      if (!struct_fail.ok()) break;
    }
  }

  std::ptrdiff_t bad = batch.FirstFailure(pool);
  if (results != nullptr) {
    std::size_t emit = batch.EmitLimit(bad);
    for (std::size_t i = 0; i < vo.tuples.size(); ++i) {
      if (tuple_job[i] < 0) continue;
      if (static_cast<std::size_t>(tuple_job[i]) < emit) {
        std::vector<Record> out;
        for (const auto& side : vo.tuples[i]) {
          out.push_back(Record{side.key, side.value, side.policy});
        }
        results->push_back(std::move(out));
      }
    }
  }
  if (bad >= 0) return batch.failure(bad);
  return struct_fail;
}

bool VerifyMultiJoinVo(const VerifyKey& mvk, const Domain& domain,
                       const Box& range, const RoleSet& user_roles,
                       const RoleSet& universe, std::size_t num_tables,
                       const MultiJoinVo& vo,
                       std::vector<std::vector<Record>>* results,
                       std::string* error, ThreadPool* pool) {
  VerifyResult r = VerifyMultiJoinVoEx(mvk, domain, range, user_roles,
                                       universe, num_tables, vo, results,
                                       pool);
  if (!r.ok()) SetError(error, r.ToString());
  return r.ok();
}

}  // namespace apqa::core

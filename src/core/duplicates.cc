#include "core/duplicates.h"

#include "core/parallel_verify.h"
#include "core/range_query.h"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

namespace apqa::core {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

void PutU32Bytes(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

std::vector<Record> MergeSuperRecords(const std::vector<Record>& records) {
  // Group by (key, canonical policy text).
  std::map<std::pair<Point, std::string>, std::vector<const Record*>> groups;
  for (const Record& r : records) {
    groups[{r.key, r.policy.ToString()}].push_back(&r);
  }
  std::vector<Record> merged;
  merged.reserve(groups.size());
  for (auto& [group_key, members] : groups) {
    Record super;
    super.key = members[0]->key;
    super.policy = members[0]->policy;
    for (const Record* m : members) {
      // Length-prefixed concatenation keeps member boundaries recoverable.
      std::uint32_t n = static_cast<std::uint32_t>(m->value.size());
      for (int i = 0; i < 4; ++i) {
        super.value.push_back(static_cast<char>(n >> (8 * i)));
      }
      super.value += m->value;
    }
    merged.push_back(std::move(super));
  }
  return merged;
}

VirtualDimResult AddVirtualDimension(const Domain& domain,
                                     const std::vector<Record>& records,
                                     int vdim_bits, Rng* rng) {
  VirtualDimResult out;
  out.extended_domain = domain;
  out.extended_domain.dims = domain.dims + 1;
  // All dimensions of a Domain share one bit width; the virtual dimension
  // uses the same grid resolution, so vdim_bits must not exceed it.
  if (vdim_bits > domain.bits) {
    throw std::invalid_argument("vdim_bits exceeds domain bits");
  }
  std::uint32_t vdim_size = std::uint32_t{1} << vdim_bits;

  std::map<Point, std::vector<const Record*>> by_key;
  for (const Record& r : records) by_key[r.key].push_back(&r);
  for (auto& [key, members] : by_key) {
    if (members.size() > vdim_size) {
      throw std::invalid_argument("more duplicates than virtual coordinates");
    }
    // Distinct random virtual coordinates.
    std::set<std::uint32_t> used;
    for (const Record* m : members) {
      std::uint32_t v;
      do {
        v = static_cast<std::uint32_t>(rng->NextU64()) % vdim_size;
      } while (!used.insert(v).second);
      Record r = *m;
      r.key.push_back(v);
      out.records.push_back(std::move(r));
    }
  }
  return out;
}

Box ExtendRangeToVirtualDim(const Box& range, const Domain& extended_domain) {
  Box out = range;
  out.lo.push_back(0);
  out.hi.push_back(extended_domain.SideLength() - 1);
  return out;
}

std::vector<std::uint8_t> DupRecordMessage(const Point& key,
                                           const std::string& value,
                                           std::uint32_t dup_num,
                                           std::uint32_t dup_id) {
  return DupRecordMessageFromHash(
      key, crypto::Sha256::Hash(value.data(), value.size()), dup_num, dup_id);
}

std::vector<std::uint8_t> DupRecordMessageFromHash(const Point& key,
                                                   const Digest& value_hash,
                                                   std::uint32_t dup_num,
                                                   std::uint32_t dup_id) {
  std::vector<std::uint8_t> msg = RecordMessageFromHash(key, value_hash);
  PutU32Bytes(&msg, dup_num);
  PutU32Bytes(&msg, dup_id);
  return msg;
}

std::vector<std::uint32_t> DupGridTree::Coords(NodeId id) const {
  std::vector<std::uint32_t> c(domain_.dims);
  std::uint64_t side = std::uint64_t{1} << id.level;
  std::uint64_t idx = id.index;
  for (int d = domain_.dims - 1; d >= 0; --d) {
    c[d] = static_cast<std::uint32_t>(idx % side);
    idx /= side;
  }
  return c;
}

std::uint64_t DupGridTree::IndexOf(int level,
                                   const std::vector<std::uint32_t>& c) const {
  std::uint64_t side = std::uint64_t{1} << level;
  std::uint64_t idx = 0;
  for (int d = 0; d < domain_.dims; ++d) idx = idx * side + c[d];
  return idx;
}

std::vector<DupGridTree::NodeId> DupGridTree::Children(NodeId id) const {
  std::vector<NodeId> out;
  if (IsLeafLevel(id)) return out;
  std::vector<std::uint32_t> c = Coords(id);
  int n = 1 << domain_.dims;
  for (int mask = 0; mask < n; ++mask) {
    std::vector<std::uint32_t> cc(domain_.dims);
    for (int d = 0; d < domain_.dims; ++d) cc[d] = 2 * c[d] + ((mask >> d) & 1);
    out.push_back(NodeId{id.level + 1, IndexOf(id.level + 1, cc)});
  }
  return out;
}

DupGridTree DupGridTree::Build(const VerifyKey& mvk, const SigningKey& sk_do,
                               const Domain& domain,
                               const std::vector<Record>& records, Rng* rng) {
  DupGridTree tree;
  tree.domain_ = domain;
  tree.levels_.resize(domain.bits + 1);

  std::map<Point, std::vector<const Record*>> by_key;
  for (const Record& r : records) {
    if (!domain.ContainsPoint(r.key)) {
      throw std::invalid_argument("record key outside domain");
    }
    by_key[r.key].push_back(&r);
  }

  int bits = domain.bits;
  std::uint64_t leaf_count = domain.CellCount();
  auto& leaves = tree.levels_[bits];
  leaves.resize(leaf_count);
  Policy pseudo = Policy::Var(kPseudoRole);
  for (std::uint64_t i = 0; i < leaf_count; ++i) {
    Node& node = leaves[i];
    node.is_leaf = true;
    auto c = tree.Coords(NodeId{bits, i});
    node.box = Box{Point(c.begin(), c.end()), Point(c.begin(), c.end())};
    auto it = by_key.find(node.box.lo);
    std::uint32_t dup_num = 0;
    if (it == by_key.end()) {
      node.is_pseudo = true;
      DupEntry e;
      e.record.key = node.box.lo;
      auto bytes = rng->Bytes(16);
      e.record.value.assign(bytes.begin(), bytes.end());
      e.record.policy = pseudo;
      e.dup_id = 0;
      node.dups.push_back(std::move(e));
      dup_num = 1;
      node.policy = pseudo;
    } else {
      dup_num = static_cast<std::uint32_t>(it->second.size());
      bool first = true;
      for (std::uint32_t d = 0; d < dup_num; ++d) {
        DupEntry e;
        e.record = *it->second[d];
        e.dup_id = d;
        node.dups.push_back(std::move(e));
        node.policy = first ? it->second[d]->policy.ToDnf()
                            : policy::OrCombineDnf(node.policy,
                                                   it->second[d]->policy);
        first = false;
      }
    }
    for (DupEntry& e : node.dups) {
      auto sig = abs::Abs::Sign(
          mvk, sk_do,
          DupRecordMessage(e.record.key, e.record.value, dup_num, e.dup_id),
          e.record.policy, rng);
      if (!sig.has_value()) {
        throw std::logic_error("DO key does not cover record policy");
      }
      e.sig = std::move(*sig);
    }
  }

  for (int level = bits - 1; level >= 0; --level) {
    std::uint64_t count = 1;
    for (int d = 0; d < domain.dims; ++d) count *= std::uint64_t{1} << level;
    auto& nodes = tree.levels_[level];
    nodes.resize(count);
    std::uint32_t cell_side = std::uint32_t{1} << (bits - level);
    for (std::uint64_t i = 0; i < count; ++i) {
      Node& node = nodes[i];
      NodeId id{level, i};
      auto c = tree.Coords(id);
      node.box.lo.resize(domain.dims);
      node.box.hi.resize(domain.dims);
      for (int d = 0; d < domain.dims; ++d) {
        node.box.lo[d] = c[d] * cell_side;
        node.box.hi[d] = node.box.lo[d] + cell_side - 1;
      }
      bool first = true;
      for (NodeId child : tree.Children(id)) {
        const Policy& cp = tree.GetNode(child).policy;
        node.policy =
            first ? cp.ToDnf() : policy::OrCombineDnf(node.policy, cp);
        first = false;
      }
      auto sig =
          abs::Abs::Sign(mvk, sk_do, BoxMessage(node.box), node.policy, rng);
      node.sig = std::move(*sig);
    }
  }
  return tree;
}

void DupGridTree::SerializedSize(std::size_t* structure_bytes,
                                 std::size_t* signature_bytes) const {
  std::size_t structure = 0, sigs = 0;
  for (const auto& level : levels_) {
    for (const Node& node : level) {
      structure += 8 * node.box.lo.size() + node.policy.ToString().size();
      if (node.is_leaf) {
        for (const auto& e : node.dups) {
          structure += e.record.value.size() + 8;
          sigs += e.sig.SerializedSize();
        }
      } else {
        sigs += node.sig.SerializedSize();
      }
    }
  }
  *structure_bytes = structure;
  *signature_bytes = sigs;
}

DupVo BuildDupRangeVo(const DupGridTree& tree, const VerifyKey& mvk,
                      const Box& range, const RoleSet& user_roles,
                      const RoleSet& universe, Rng* rng) {
  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  DupVo vo;
  std::deque<DupGridTree::NodeId> queue{tree.Root()};
  while (!queue.empty()) {
    DupGridTree::NodeId id = queue.front();
    queue.pop_front();
    const DupGridTree::Node& node = tree.GetNode(id);
    if (!node.box.Intersects(range)) continue;
    if (!range.ContainsBox(node.box)) {
      for (auto c : tree.Children(id)) queue.push_back(c);
      continue;
    }
    if (!node.policy.Evaluate(user_roles)) {
      if (node.is_leaf) {
        // Whole duplicate group inaccessible: one APS per member (the
        // member count dup_num is disclosed — non-ZK by design).
        std::uint32_t dup_num = static_cast<std::uint32_t>(node.dups.size());
        for (const auto& e : node.dups) {
          Digest vh = crypto::Sha256::Hash(e.record.value.data(),
                                           e.record.value.size());
          auto msg =
              DupRecordMessageFromHash(e.record.key, vh, dup_num, e.dup_id);
          auto aps =
              abs::Abs::Relax(mvk, e.sig, e.record.policy, msg, lacked, rng);
          vo.inaccessible.push_back(DupVo::DupInaccessibleEntry{
              e.record.key, vh, dup_num, e.dup_id, std::move(*aps)});
        }
      } else {
        auto aps = abs::Abs::Relax(mvk, node.sig, node.policy,
                                   BoxMessage(node.box), lacked, rng);
        vo.boxes.push_back(InaccessibleBoxEntry{node.box, std::move(*aps)});
      }
      continue;
    }
    if (!node.is_leaf) {
      for (auto c : tree.Children(id)) queue.push_back(c);
      continue;
    }
    // Accessible leaf: emit each duplicate individually.
    std::uint32_t dup_num = static_cast<std::uint32_t>(node.dups.size());
    for (const auto& e : node.dups) {
      if (e.record.policy.Evaluate(user_roles)) {
        vo.results.push_back(DupVo::DupResultEntry{e.record.key,
                                                   e.record.value,
                                                   e.record.policy, dup_num,
                                                   e.dup_id, e.sig});
      } else {
        Digest vh = crypto::Sha256::Hash(e.record.value.data(),
                                         e.record.value.size());
        auto msg =
            DupRecordMessageFromHash(e.record.key, vh, dup_num, e.dup_id);
        auto aps =
            abs::Abs::Relax(mvk, e.sig, e.record.policy, msg, lacked, rng);
        vo.inaccessible.push_back(DupVo::DupInaccessibleEntry{
            e.record.key, vh, dup_num, e.dup_id, std::move(*aps)});
      }
    }
  }
  return vo;
}

void DupVo::Serialize(common::ByteWriter* w) const {
  w->PutU32(static_cast<std::uint32_t>(results.size()));
  for (const auto& e : results) {
    WritePoint(w, e.key);
    w->PutString(e.value);
    w->PutString(e.policy.ToString());
    w->PutU32(e.dup_num);
    w->PutU32(e.dup_id);
    e.app_sig.Serialize(w);
  }
  w->PutU32(static_cast<std::uint32_t>(inaccessible.size()));
  for (const auto& e : inaccessible) {
    WritePoint(w, e.key);
    w->PutBytes(e.value_hash.data(), e.value_hash.size());
    w->PutU32(e.dup_num);
    w->PutU32(e.dup_id);
    e.aps_sig.Serialize(w);
  }
  w->PutU32(static_cast<std::uint32_t>(boxes.size()));
  for (const auto& e : boxes) {
    WriteBox(w, e.box);
    e.aps_sig.Serialize(w);
  }
}

DupVo DupVo::Deserialize(common::ByteReader* r) {
  DupVo vo;
  std::uint32_t nr = r->GetU32();
  if (!r->CheckCount(nr, kMinVoEntryBytes)) return vo;
  vo.results.reserve(nr);
  for (std::uint32_t i = 0; i < nr && r->ok(); ++i) {
    DupResultEntry e;
    e.key = ReadPoint(r);
    e.value = r->GetString();
    e.policy = ReadPolicy(r);
    e.dup_num = r->GetU32();
    e.dup_id = r->GetU32();
    e.app_sig = Signature::Deserialize(r);
    vo.results.push_back(std::move(e));
  }
  std::uint32_t ni = r->GetU32();
  if (!r->CheckCount(ni, kMinVoEntryBytes)) return vo;
  vo.inaccessible.reserve(ni);
  for (std::uint32_t i = 0; i < ni && r->ok(); ++i) {
    DupInaccessibleEntry e;
    e.key = ReadPoint(r);
    r->Get(e.value_hash.data(), e.value_hash.size());
    e.dup_num = r->GetU32();
    e.dup_id = r->GetU32();
    e.aps_sig = Signature::Deserialize(r);
    vo.inaccessible.push_back(std::move(e));
  }
  std::uint32_t nb = r->GetU32();
  if (!r->CheckCount(nb, kMinVoEntryBytes)) return vo;
  vo.boxes.reserve(nb);
  for (std::uint32_t i = 0; i < nb && r->ok(); ++i) {
    InaccessibleBoxEntry e;
    e.box = ReadBox(r);
    e.aps_sig = Signature::Deserialize(r);
    vo.boxes.push_back(std::move(e));
  }
  return vo;
}

std::size_t DupVo::SerializedSize() const {
  common::ByteWriter w;
  Serialize(&w);
  return w.size();
}

VerifyResult VerifyDupRangeVoEx(const VerifyKey& mvk, const Domain& domain,
                                const Box& range, const RoleSet& user_roles,
                                const RoleSet& universe, const DupVo& vo,
                                std::vector<Record>* results,
                                ThreadPool* pool) {
  if (!range.WellFormed() ||
      range.lo.size() != static_cast<std::size_t>(domain.dims) ||
      !domain.FullBox().ContainsBox(range)) {
    return VerifyResult::Fail(VerifyCode::kBadQuery,
                              "query range invalid for domain");
  }
  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  Policy super_policy = Policy::OrOfRoles(lacked);

  // Group per-record entries by key: each covered key must present dup_ids
  // 0..dup_num-1 exactly once with a consistent dup_num.
  struct KeyGroup {
    std::uint32_t dup_num = 0;
    std::set<std::uint32_t> ids;
  };
  std::map<Point, KeyGroup> groups;
  auto account = [&](const Point& key, std::uint32_t dup_num,
                     std::uint32_t dup_id) -> bool {
    if (!domain.ContainsPoint(key) || !range.Contains(key)) return false;
    KeyGroup& g = groups[key];
    if (g.dup_num == 0) g.dup_num = dup_num;
    if (g.dup_num != dup_num || dup_id >= dup_num) return false;
    return g.ids.insert(dup_id).second;
  };

  // Structural pass in sequential order; signature checks run through a
  // SigBatch so a pool changes timing only (see core/parallel_verify.h).
  // The group-completeness and coverage checks sit between the record and
  // box signature checks in the sequential verifier, so box jobs are only
  // queued once those structural checks pass.
  SigBatch batch(mvk, /*exact_pairings=*/false);
  VerifyResult struct_fail = VerifyResult::Ok();
  std::vector<std::ptrdiff_t> result_job(vo.results.size(), -1);
  for (std::size_t i = 0; i < vo.results.size(); ++i) {
    const DupVo::DupResultEntry& e = vo.results[i];
    std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
    if (!account(e.key, e.dup_num, e.dup_id)) {
      struct_fail = VerifyResult::Fail(
          VerifyCode::kDuplicateBookkeeping,
          "inconsistent duplicate bookkeeping (result)", idx);
      break;
    }
    if (!e.policy.Evaluate(user_roles)) {
      struct_fail = VerifyResult::Fail(VerifyCode::kPolicyNotSatisfied,
                                       "result policy not satisfied", idx);
      break;
    }
    result_job[i] = static_cast<std::ptrdiff_t>(batch.Add(
        DupRecordMessage(e.key, e.value, e.dup_num, e.dup_id), &e.policy,
        &e.app_sig,
        VerifyResult::Fail(VerifyCode::kBadSignature,
                           "dup APP signature verification failed", idx)));
  }
  if (struct_fail.ok()) {
    for (std::size_t i = 0; i < vo.inaccessible.size(); ++i) {
      const DupVo::DupInaccessibleEntry& e = vo.inaccessible[i];
      std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
      if (!account(e.key, e.dup_num, e.dup_id)) {
        struct_fail = VerifyResult::Fail(
            VerifyCode::kDuplicateBookkeeping,
            "inconsistent duplicate bookkeeping (inaccessible)", idx);
        break;
      }
      batch.Add(DupRecordMessageFromHash(e.key, e.value_hash, e.dup_num,
                                         e.dup_id),
                &super_policy, &e.aps_sig,
                VerifyResult::Fail(VerifyCode::kBadSignature,
                                   "dup APS signature verification failed",
                                   idx));
    }
  }
  if (struct_fail.ok()) {
    // Every key group must be complete.
    for (const auto& [key, g] : groups) {
      (void)key;
      if (g.ids.size() != g.dup_num) {
        struct_fail = VerifyResult::Fail(VerifyCode::kDuplicateBookkeeping,
                                         "missing duplicates for a key");
        break;
      }
    }
  }
  if (struct_fail.ok()) {
    // Coverage: key cells + boxes tile the range.
    Vo coverage;
    for (const auto& [key, g] : groups) {
      (void)g;
      coverage.entries.push_back(InaccessibleRecordEntry{key, Digest{}, {}});
    }
    for (const auto& e : vo.boxes) coverage.entries.push_back(e);
    struct_fail = CheckCoverageEx(range, coverage);
  }
  if (struct_fail.ok()) {
    for (std::size_t i = 0; i < vo.boxes.size(); ++i) {
      const InaccessibleBoxEntry& e = vo.boxes[i];
      batch.Add(BoxMessage(e.box), &super_policy, &e.aps_sig,
                VerifyResult::Fail(VerifyCode::kBadSignature,
                                   "dup box APS signature verification failed",
                                   static_cast<std::ptrdiff_t>(i)));
    }
  }

  std::ptrdiff_t bad = batch.FirstFailure(pool);
  if (results != nullptr) {
    std::size_t emit = batch.EmitLimit(bad);
    for (std::size_t i = 0; i < vo.results.size(); ++i) {
      const DupVo::DupResultEntry& e = vo.results[i];
      if (result_job[i] < 0) continue;
      if (static_cast<std::size_t>(result_job[i]) < emit) {
        results->push_back(Record{e.key, e.value, e.policy});
      }
    }
  }
  if (bad >= 0) return batch.failure(bad);
  return struct_fail;
}

bool VerifyDupRangeVo(const VerifyKey& mvk, const Domain& domain,
                      const Box& range, const RoleSet& user_roles,
                      const RoleSet& universe, const DupVo& vo,
                      std::vector<Record>* results, std::string* error,
                      ThreadPool* pool) {
  VerifyResult r = VerifyDupRangeVoEx(mvk, domain, range, user_roles, universe,
                                      vo, results, pool);
  if (!r.ok()) SetError(error, r.ToString());
  return r.ok();
}

}  // namespace apqa::core

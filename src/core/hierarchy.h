// Hierarchical role assignment (paper §8.1).
//
// When roles form a hierarchy (e.g. university → student/professor of that
// university), lacking an ancestor role implies lacking all of its
// descendants. Policies are *augmented* so each clause carries the full
// ancestor chain of every role; then the super access policy of a user only
// needs the top-most lacked roles, shrinking the inaccessible predicate and
// thus every APS signature.
#ifndef APQA_CORE_HIERARCHY_H_
#define APQA_CORE_HIERARCHY_H_

#include <map>
#include <string>

#include "policy/policy.h"

namespace apqa::core {

class RoleHierarchy {
 public:
  // Adds role `child` under `parent`. Roots are roles never added as a
  // child. Cycles are rejected.
  void AddEdge(const std::string& parent, const std::string& child);

  // All ancestors of a role (not including the role itself).
  policy::RoleSet Ancestors(const std::string& role) const;

  // Closes a user's role set upward: holding a role implies holding all of
  // its ancestors (a student of university A is a member of university A).
  policy::RoleSet Close(const policy::RoleSet& roles) const;

  // Augments a policy so that every clause lists the full ancestor chain of
  // each of its roles (the §8.1 example: Role_{A,P} becomes
  // Role_A ∧ Role_{A,P}).
  policy::Policy Augment(const policy::Policy& policy) const;

  // Reduces a lacked-role set to its top-most elements: a role is kept only
  // if none of its ancestors is also lacked. With augmented policies, the
  // reduced set is an equivalent relaxation target.
  policy::RoleSet ReduceLackedSet(const policy::RoleSet& lacked) const;

 private:
  std::map<std::string, std::string> parent_;
};

}  // namespace apqa::core

#endif  // APQA_CORE_HIERARCHY_H_

// AP²G-tree: the access-policy-preserving grid tree (paper §6.1).
//
// A *full* 2^d-ary tree over the power-of-two query-attribute domain. Every
// unit cell is a leaf — cells without a real record hold a pseudo record
// with policy Role_∅ — so the tree shape reveals nothing about the data
// distribution. Each leaf carries the APP signature of its record; each
// internal node carries the OR of its children's policies (in reduced DNF)
// and an APP signature over its grid box.
#ifndef APQA_CORE_GRID_TREE_H_
#define APQA_CORE_GRID_TREE_H_

#include <optional>
#include <vector>

#include "common/serde.h"
#include "core/app_signature.h"
#include "core/record.h"
#include "core/thread_pool.h"

namespace apqa::core {

class GridTree {
 public:
  struct Node {
    Box box;
    Policy policy;
    Signature sig;
    bool is_leaf = false;
    bool is_pseudo = false;  // leaf without a real record
    Record record;           // leaf payload (pseudo records hold a random value)
  };

  // Node address: level 0 is the root; level `bits` holds the unit cells.
  struct NodeId {
    int level = 0;
    std::uint64_t index = 0;  // row-major over the level's grid
  };

  // Builds and signs the tree (DO side). Duplicate keys are rejected
  // (Appendix E handles duplicates via a virtual dimension; see
  // core/duplicates.h). `pool` may be null for single-threaded signing.
  static GridTree Build(const VerifyKey& mvk, const SigningKey& sk_do,
                        const Domain& domain, const std::vector<Record>& records,
                        Rng* rng, ThreadPool* pool = nullptr);

  const Domain& domain() const { return domain_; }
  int depth() const { return domain_.bits; }

  NodeId Root() const { return {0, 0}; }
  const Node& GetNode(NodeId id) const { return levels_[id.level][id.index]; }
  bool IsLeafLevel(NodeId id) const { return id.level == domain_.bits; }
  std::vector<NodeId> Children(NodeId id) const;
  // Leaf node covering a unit cell.
  NodeId LeafAt(const Point& p) const;

  // DO → SP transfer of the outsourced ADS: full serialization including
  // every node policy and signature (boxes are implied by the grid shape).
  void Serialize(common::ByteWriter* w) const;
  static std::optional<GridTree> Deserialize(common::ByteReader* r);

  std::size_t NodeCount() const;
  std::size_t LeafCount() const { return levels_.back().size(); }
  // Serialized ADS size in bytes, split into tree structure (boxes +
  // policies) and signatures — the two components of Table 1.
  void SerializedSize(std::size_t* structure_bytes,
                      std::size_t* signature_bytes) const;

 private:
  // Grid coordinates of a node within its level.
  std::vector<std::uint32_t> Coords(NodeId id) const;
  std::uint64_t IndexOf(int level, const std::vector<std::uint32_t>& c) const;

  Domain domain_;
  std::vector<std::vector<Node>> levels_;  // levels_[L] has 2^(L*dims) nodes
};

}  // namespace apqa::core

#endif  // APQA_CORE_GRID_TREE_H_

#include "core/hierarchy.h"

#include <stdexcept>
#include <vector>

namespace apqa::core {

using policy::Policy;
using policy::RoleSet;

void RoleHierarchy::AddEdge(const std::string& parent,
                            const std::string& child) {
  if (parent == child) throw std::invalid_argument("self edge");
  // Reject cycles: parent must not be a descendant of child.
  std::string cur = parent;
  while (true) {
    auto it = parent_.find(cur);
    if (it == parent_.end()) break;
    if (it->second == child) throw std::invalid_argument("hierarchy cycle");
    cur = it->second;
  }
  if (!parent_.emplace(child, parent).second) {
    throw std::invalid_argument("role already has a parent: " + child);
  }
}

RoleSet RoleHierarchy::Ancestors(const std::string& role) const {
  RoleSet out;
  std::string cur = role;
  for (;;) {
    auto it = parent_.find(cur);
    if (it == parent_.end()) break;
    out.insert(it->second);
    cur = it->second;
  }
  return out;
}

RoleSet RoleHierarchy::Close(const RoleSet& roles) const {
  RoleSet out = roles;
  for (const auto& r : roles) {
    RoleSet anc = Ancestors(r);
    out.insert(anc.begin(), anc.end());
  }
  return out;
}

Policy RoleHierarchy::Augment(const Policy& policy) const {
  std::vector<policy::Clause> clauses = policy.DnfClauses();
  std::vector<policy::Clause> augmented;
  augmented.reserve(clauses.size());
  for (const auto& clause : clauses) {
    policy::Clause c = clause;
    for (const auto& role : clause) {
      RoleSet anc = Ancestors(role);
      c.insert(anc.begin(), anc.end());
    }
    augmented.push_back(std::move(c));
  }
  return Policy::FromDnfClauses(augmented);
}

RoleSet RoleHierarchy::ReduceLackedSet(const RoleSet& lacked) const {
  RoleSet out;
  for (const auto& r : lacked) {
    RoleSet anc = Ancestors(r);
    bool covered = false;
    for (const auto& a : anc) {
      if (lacked.count(a)) {
        covered = true;
        break;
      }
    }
    if (!covered) out.insert(r);
  }
  return out;
}

}  // namespace apqa::core

// Whole-VO signature batching with deterministic blame.
//
// Every verifier walks its VO once, doing the cheap structural checks
// (coverage, key agreement, policy evaluation) serially in the original
// order, and queues the expensive ABS signature checks into a SigBatch.
// By default the batch folds ALL queued signatures into one
// abs::BatchAccumulator — one G1 MSM per shared prepared G2 base, two
// shared message-side G2 MSMs, and a single final exponentiation for the
// entire VO — instead of running one multi-pairing per signature.
//
// Blame stays byte-identical to the sequential verifier. Jobs are queued in
// the exact order the sequential verifier would have evaluated them, and
// FirstFailure reports the *lowest* failing job index:
//   - structural failures (component counts, Y at infinity) are found
//     deterministically while accumulating and bound the batch to the jobs
//     before them;
//   - if the whole-batch check fails, a prefix bisection (log2 n re-batches,
//     each over ~half the remaining range) recovers the lowest
//     cryptographically failing index — same index the sequential verifier
//     would return, up to the 2^-128 batching soundness bound.
// The per-signature path is retained as the diagnostic fallback: exact-mode
// callers, single-job batches, and anything under a ScopedPerSignatureVerify
// guard run one Abs::Verify per job (serially short-circuiting, or fanned
// out over the ThreadPool with an atomic min-failure index so workers stop
// once every job below the best-known failure has been claimed).
//
// Thread-safety: jobs only read the VO, the verify key's prepared tables
// (immutable once built; the attribute memo is mutex-guarded), and
// per-call randomness. Pool workers write disjoint slots or claim jobs via
// monotonic fetch_add, so the fan-out is TSan-clean by construction.
#ifndef APQA_CORE_PARALLEL_VERIFY_H_
#define APQA_CORE_PARALLEL_VERIFY_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "abs/abs.h"
#include "abs/batch_verify.h"
#include "core/thread_pool.h"
#include "core/verify_result.h"

namespace apqa::core {

// RAII guard forcing SigBatch::FirstFailure onto the retained per-signature
// path for the current thread. Used by benches (to keep measuring the
// pre-batching baseline) and by tests comparing the two paths.
class ScopedPerSignatureVerify {
 public:
  ScopedPerSignatureVerify() { ++depth_; }
  ~ScopedPerSignatureVerify() { --depth_; }
  ScopedPerSignatureVerify(const ScopedPerSignatureVerify&) = delete;
  ScopedPerSignatureVerify& operator=(const ScopedPerSignatureVerify&) =
      delete;
  static bool Active() { return depth_ > 0; }

 private:
  static inline thread_local int depth_ = 0;
};

class SigBatch {
 public:
  SigBatch(const abs::VerifyKey& mvk, bool exact_pairings)
      : mvk_(mvk), exact_(exact_pairings) {}

  // Queues one ABS check in sequential-verifier order; returns its job
  // index. `policy` and `sig` must outlive FirstFailure (they point into
  // the VO or at a caller-owned super policy); `on_fail` is the exact
  // VerifyResult the sequential verifier would return if this check fails.
  std::size_t Add(std::vector<std::uint8_t> msg, const policy::Policy* policy,
                  const abs::Signature* sig, VerifyResult on_fail) {
    jobs_.push_back(Job{std::move(msg), policy, sig, std::move(on_fail)});
    return jobs_.size() - 1;
  }

  std::size_t size() const { return jobs_.size(); }

  // Runs the queued checks; returns the lowest failing job index, or -1 if
  // all pass. Default: whole-VO batch with bisect blame recovery; exact
  // mode, tiny batches, and ScopedPerSignatureVerify fall back to one
  // verify per job.
  std::ptrdiff_t FirstFailure(ThreadPool* pool) const {
    const std::size_t n = jobs_.size();
    if (exact_ || n <= 1 || ScopedPerSignatureVerify::Active()) {
      return PerSignatureFirstFailure(pool);
    }

    // Accumulate in sequential order until the first structural failure:
    // the sequential verifier never evaluates anything past it, so jobs
    // beyond `s` are irrelevant to blame and emission.
    abs::Rng rng;
    abs::BatchAccumulator acc(mvk_);
    std::size_t s = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!abs::Abs::AccumulateVerify(mvk_, jobs_[i].msg, *jobs_[i].policy,
                                      *jobs_[i].sig, &rng, &acc)) {
        s = i;
        break;
      }
    }
    if (acc.Check(MakeRunner(pool))) {
      // Everything before the structural failure (or everything, s == n)
      // verifies — whp the lowest failure is the structural one.
      return s == n ? -1 : static_cast<std::ptrdiff_t>(s);
    }
    return Bisect(pool, s);
  }

  const VerifyResult& failure(std::ptrdiff_t i) const {
    return jobs_[static_cast<std::size_t>(i)].on_fail;
  }

  // Jobs strictly below this index succeeded; used for partial-result
  // emission after a failure (matching the sequential verifier, which
  // emits an entry's results only once all its checks have passed).
  std::size_t EmitLimit(std::ptrdiff_t first_failure) const {
    return first_failure >= 0 ? static_cast<std::size_t>(first_failure)
                              : jobs_.size();
  }

 private:
  struct Job {
    std::vector<std::uint8_t> msg;
    const policy::Policy* policy;
    const abs::Signature* sig;
    VerifyResult on_fail;
  };

  bool Check(const Job& j) const {
    return abs::Abs::Verify(mvk_, j.msg, *j.policy, *j.sig, exact_);
  }

  static abs::BatchAccumulator::ParallelRunner MakeRunner(ThreadPool* pool) {
    if (pool == nullptr || pool->thread_count() <= 1) return {};
    return [pool](std::size_t n,
                  const std::function<void(std::size_t)>& task) {
      pool->ParallelFor(n, task);
    };
  }

  // Re-batches jobs [lo, hi) with fresh weights; true iff the range passes.
  // Structural validity of every job in the range is already established by
  // the first accumulation pass.
  bool RangePasses(ThreadPool* pool, std::size_t lo, std::size_t hi) const {
    abs::Rng rng;
    abs::BatchAccumulator acc(mvk_);
    for (std::size_t i = lo; i < hi; ++i) {
      abs::Abs::AccumulateVerify(mvk_, jobs_[i].msg, *jobs_[i].policy,
                                 *jobs_[i].sig, &rng, &acc);
    }
    return acc.Check(MakeRunner(pool));
  }

  // The batch over [0, hi) failed, so the lowest failing index lies in
  // [0, hi). Prefix bisection: checking [lo, mid) either clears it (lowest
  // failure moves to [mid, hi)) or tightens to [lo, mid). log2 n re-batches
  // totalling ~hi extra accumulations — paid only on the failure path.
  std::ptrdiff_t Bisect(ThreadPool* pool, std::size_t hi) const {
    std::size_t lo = 0;
    while (hi - lo > 1) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (RangePasses(pool, lo, mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return static_cast<std::ptrdiff_t>(lo);
  }

  // Retained diagnostic fallback: one Abs::Verify per job. Serial when
  // `pool` is null, single-threaded, or there is at most one job; the pool
  // path tracks the lowest known failure in an atomic so workers stop as
  // soon as every job below it has been claimed.
  std::ptrdiff_t PerSignatureFirstFailure(ThreadPool* pool) const {
    const std::size_t n = jobs_.size();
    if (pool == nullptr || pool->thread_count() <= 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!Check(jobs_[i])) return static_cast<std::ptrdiff_t>(i);
      }
      return -1;
    }
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> min_fail{n};
    pool->ParallelFor(
        static_cast<std::size_t>(pool->thread_count()), [&](std::size_t) {
          for (;;) {
            std::size_t i = next.fetch_add(1);
            // fetch_add claims indices in increasing order and min_fail
            // only ever decreases, so once a claim lands at or above the
            // best-known failure every later claim will too: stop. Every
            // index below the final min_fail was claimed before min_fail
            // could have dropped past it, hence evaluated — the minimum is
            // exact.
            if (i >= n || i >= min_fail.load(std::memory_order_relaxed)) {
              break;
            }
            if (!Check(jobs_[i])) {
              std::size_t cur = min_fail.load(std::memory_order_relaxed);
              while (i < cur && !min_fail.compare_exchange_weak(
                                    cur, i, std::memory_order_relaxed)) {
              }
            }
          }
        });
    std::size_t f = min_fail.load();
    return f == n ? -1 : static_cast<std::ptrdiff_t>(f);
  }

  const abs::VerifyKey& mvk_;
  bool exact_;
  std::vector<Job> jobs_;
};

}  // namespace apqa::core

#endif  // APQA_CORE_PARALLEL_VERIFY_H_

// Deterministic parallel fan-out for VO signature checks.
//
// Every verifier walks its VO once, doing the cheap structural checks
// (coverage, key agreement, policy evaluation) serially in the original
// order, and queues the expensive ABS signature checks into a SigBatch.
// The batch then runs them either serially (short-circuiting at the first
// failure) or fanned out over a ThreadPool — and in both cases reports the
// *lowest* failing job index. Because jobs are queued in the exact order
// the sequential verifier would have evaluated them, and any structural
// failure aborts queueing, the diagnostic a caller sees — which
// VerifyResult, with which entry index — is byte-identical regardless of
// the pool. Partial-result emission follows the same rule: an entry's
// results are emitted iff all its jobs precede the first failing job.
//
// Thread-safety: jobs only read the VO, the verify key's prepared tables
// (immutable once built; the attribute memo is mutex-guarded), and
// per-call randomness inside Abs::Verify. Workers write disjoint slots of
// the outcome vector, so the fan-out is TSan-clean by construction.
#ifndef APQA_CORE_PARALLEL_VERIFY_H_
#define APQA_CORE_PARALLEL_VERIFY_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "abs/abs.h"
#include "core/thread_pool.h"
#include "core/verify_result.h"

namespace apqa::core {

class SigBatch {
 public:
  SigBatch(const abs::VerifyKey& mvk, bool exact_pairings)
      : mvk_(mvk), exact_(exact_pairings) {}

  // Queues one ABS check in sequential-verifier order; returns its job
  // index. `policy` and `sig` must outlive FirstFailure (they point into
  // the VO or at a caller-owned super policy); `on_fail` is the exact
  // VerifyResult the sequential verifier would return if this check fails.
  std::size_t Add(std::vector<std::uint8_t> msg, const policy::Policy* policy,
                  const abs::Signature* sig, VerifyResult on_fail) {
    jobs_.push_back(Job{std::move(msg), policy, sig, std::move(on_fail)});
    return jobs_.size() - 1;
  }

  std::size_t size() const { return jobs_.size(); }

  // Runs the queued checks; returns the lowest failing job index, or -1 if
  // all pass. Serial when `pool` is null, single-threaded, or there is at
  // most one job.
  std::ptrdiff_t FirstFailure(ThreadPool* pool) const {
    const std::size_t n = jobs_.size();
    if (pool == nullptr || pool->thread_count() <= 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!Check(jobs_[i])) return static_cast<std::ptrdiff_t>(i);
      }
      return -1;
    }
    std::vector<char> ok(n, 0);
    std::atomic<std::size_t> next{0};
    pool->ParallelFor(static_cast<std::size_t>(pool->thread_count()),
                      [&](std::size_t) {
                        for (;;) {
                          std::size_t i = next.fetch_add(1);
                          if (i >= n) break;
                          ok[i] = Check(jobs_[i]) ? 1 : 0;
                        }
                      });
    for (std::size_t i = 0; i < n; ++i) {
      if (ok[i] == 0) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  }

  const VerifyResult& failure(std::ptrdiff_t i) const {
    return jobs_[static_cast<std::size_t>(i)].on_fail;
  }

  // Jobs strictly below this index succeeded; used for partial-result
  // emission after a failure (matching the sequential verifier, which
  // emits an entry's results only once all its checks have passed).
  std::size_t EmitLimit(std::ptrdiff_t first_failure) const {
    return first_failure >= 0 ? static_cast<std::size_t>(first_failure)
                              : jobs_.size();
  }

 private:
  struct Job {
    std::vector<std::uint8_t> msg;
    const policy::Policy* policy;
    const abs::Signature* sig;
    VerifyResult on_fail;
  };

  bool Check(const Job& j) const {
    return abs::Abs::Verify(mvk_, j.msg, *j.policy, *j.sig, exact_);
  }

  const abs::VerifyKey& mvk_;
  bool exact_;
  std::vector<Job> jobs_;
};

}  // namespace apqa::core

#endif  // APQA_CORE_PARALLEL_VERIFY_H_

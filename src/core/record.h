// Records and the discrete query-attribute space (paper §3).
//
// A record is ⟨o, v, Υ⟩: a d-dimensional discrete query key o, an opaque
// content attribute v, and a monotone access policy Υ. Keys live in a
// power-of-two grid domain so the AP²G-tree is a full 2^d-ary tree whose
// shape is independent of the data (a prerequisite for zero-knowledge).
#ifndef APQA_CORE_RECORD_H_
#define APQA_CORE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "policy/policy.h"

namespace apqa::core {

using policy::Policy;
using policy::RoleSet;

// The pseudo access role Role_∅: possessed by no user, assigned to pseudo
// (non-existent) records so that inaccessible and absent data are
// indistinguishable (§5).
inline const char kPseudoRole[] = "Role@NULL";

// A point in the discrete query-attribute space.
using Point = std::vector<std::uint32_t>;

// Axis-aligned box with inclusive bounds.
struct Box {
  Point lo, hi;

  bool Contains(const Point& p) const {
    for (std::size_t d = 0; d < lo.size(); ++d) {
      if (p[d] < lo[d] || p[d] > hi[d]) return false;
    }
    return true;
  }

  bool ContainsBox(const Box& o) const {
    for (std::size_t d = 0; d < lo.size(); ++d) {
      if (o.lo[d] < lo[d] || o.hi[d] > hi[d]) return false;
    }
    return true;
  }

  bool Intersects(const Box& o) const {
    for (std::size_t d = 0; d < lo.size(); ++d) {
      if (o.hi[d] < lo[d] || o.lo[d] > hi[d]) return false;
    }
    return true;
  }

  // A box read off the wire must satisfy this before any other Box method
  // is called on it: Contains/Intersects index lo/hi without size checks,
  // and Volume() on an inverted box wraps the u64 cell count — which would
  // let a hostile SP forge coverage sums. Verifiers reject entries whose
  // boxes are not well-formed.
  bool WellFormed() const {
    if (lo.size() != hi.size()) return false;
    for (std::size_t d = 0; d < lo.size(); ++d) {
      if (lo[d] > hi[d]) return false;
    }
    return true;
  }

  // Number of unit cells (assumes it fits in 64 bits).
  std::uint64_t Volume() const {
    std::uint64_t v = 1;
    for (std::size_t d = 0; d < lo.size(); ++d) {
      v *= static_cast<std::uint64_t>(hi[d] - lo[d]) + 1;
    }
    return v;
  }

  bool operator==(const Box& o) const { return lo == o.lo && hi == o.hi; }
};

// The query-attribute domain: `dims` dimensions, each coordinate in
// [0, 2^bits).
struct Domain {
  int dims = 1;
  int bits = 8;

  std::uint32_t SideLength() const { return std::uint32_t{1} << bits; }
  std::uint64_t CellCount() const {
    std::uint64_t n = 1;
    for (int d = 0; d < dims; ++d) n *= SideLength();
    return n;
  }
  Box FullBox() const {
    Box b;
    b.lo.assign(dims, 0);
    b.hi.assign(dims, SideLength() - 1);
    return b;
  }
  bool ContainsPoint(const Point& p) const {
    if (static_cast<int>(p.size()) != dims) return false;
    for (auto c : p) {
      if (c >= SideLength()) return false;
    }
    return true;
  }
};

struct Record {
  Point key;          // query attribute o
  std::string value;  // content attribute v (opaque bytes)
  Policy policy;      // access policy Υ
};

}  // namespace apqa::core

#endif  // APQA_CORE_RECORD_H_

#include "core/aggregate.h"

#include <cstdlib>

namespace apqa::core {

std::optional<AggregateResult> VerifyAndAggregateEx(
    const VerifyKey& mvk, const Domain& domain, const Box& range,
    const RoleSet& user_roles, const RoleSet& universe, const Vo& vo,
    const MeasureFn& measure, VerifyResult* why, ThreadPool* pool) {
  std::vector<Record> results;
  VerifyResult r = VerifyRangeVoEx(mvk, domain, range, user_roles, universe,
                                   vo, &results, /*exact_pairings=*/false,
                                   pool);
  if (why != nullptr) *why = r;
  if (!r.ok()) return std::nullopt;
  AggregateResult agg;
  for (const Record& rec : results) {
    std::optional<double> m = measure(rec);
    if (!m.has_value()) continue;
    ++agg.count;
    agg.sum += *m;
    if (!agg.min.has_value() || *m < *agg.min) agg.min = *m;
    if (!agg.max.has_value() || *m > *agg.max) agg.max = *m;
  }
  return agg;
}

std::optional<AggregateResult> VerifyAndAggregate(
    const VerifyKey& mvk, const Domain& domain, const Box& range,
    const RoleSet& user_roles, const RoleSet& universe, const Vo& vo,
    const MeasureFn& measure, std::string* error, ThreadPool* pool) {
  VerifyResult why;
  auto agg = VerifyAndAggregateEx(mvk, domain, range, user_roles, universe, vo,
                                  measure, &why, pool);
  if (!agg.has_value() && error != nullptr) *error = why.ToString();
  return agg;
}

std::optional<double> NumericValueMeasure(const Record& record) {
  const char* begin = record.value.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  return v;
}

}  // namespace apqa::core

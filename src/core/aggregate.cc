#include "core/aggregate.h"

#include <cstdlib>

namespace apqa::core {

std::optional<AggregateResult> VerifyAndAggregate(
    const VerifyKey& mvk, const Domain& domain, const Box& range,
    const RoleSet& user_roles, const RoleSet& universe, const Vo& vo,
    const MeasureFn& measure, std::string* error) {
  std::vector<Record> results;
  if (!VerifyRangeVo(mvk, domain, range, user_roles, universe, vo, &results,
                     error)) {
    return std::nullopt;
  }
  AggregateResult agg;
  for (const Record& r : results) {
    std::optional<double> m = measure(r);
    if (!m.has_value()) continue;
    ++agg.count;
    agg.sum += *m;
    if (!agg.min.has_value() || *m < *agg.min) agg.min = *m;
    if (!agg.max.has_value() || *m > *agg.max) agg.max = *m;
  }
  return agg;
}

std::optional<double> NumericValueMeasure(const Record& record) {
  const char* begin = record.value.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  return v;
}

}  // namespace apqa::core

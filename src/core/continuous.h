// Continuous query attributes under the relaxed (access-policy
// confidentiality) model (paper §9.2).
//
// Instead of one pseudo record per discrete key, the DO signs pseudo
// *regions* with policy Role_∅ for the gaps between consecutive keys:
// (-∞, o₁), (o₁, o₂), …, (o_n, +∞). An equality or range query is answered
// with the matching records plus APS signatures for the intersecting gap
// regions. This discloses the key distribution (acceptable once
// zero-knowledge is relaxed) but makes the ADS size proportional to the
// data instead of the domain.
#ifndef APQA_CORE_CONTINUOUS_H_
#define APQA_CORE_CONTINUOUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/serde.h"
#include "core/app_signature.h"
#include "core/record.h"
#include "core/thread_pool.h"
#include "core/verify_result.h"

namespace apqa::core {

struct ContinuousRecord {
  std::uint64_t key = 0;  // continuous attribute (must be in (0, 2^64-1))
  std::string value;
  Policy policy;
};

// An open interval (lo, hi) known to contain no records. lo == 0 encodes -∞
// and hi == UINT64_MAX encodes +∞.
struct GapRegion {
  std::uint64_t lo = 0, hi = 0;
};

std::vector<std::uint8_t> GapMessage(const GapRegion& gap);
std::vector<std::uint8_t> ContinuousRecordMessage(std::uint64_t key,
                                                  const std::string& value);
std::vector<std::uint8_t> ContinuousRecordMessageFromHash(
    std::uint64_t key, const Digest& value_hash);

class ContinuousAds {
 public:
  struct SignedRecord {
    ContinuousRecord record;
    Signature sig;
  };
  struct SignedGap {
    GapRegion gap;
    Signature sig;  // policy Role_∅
  };

  // Records must have distinct keys in (0, UINT64_MAX); sorted internally.
  static ContinuousAds Build(const VerifyKey& mvk, const SigningKey& sk_do,
                             std::vector<ContinuousRecord> records, Rng* rng);

  const std::vector<SignedRecord>& records() const { return records_; }
  const std::vector<SignedGap>& gaps() const { return gaps_; }
  std::size_t SerializedSizeBytes() const;

 private:
  std::vector<SignedRecord> records_;
  std::vector<SignedGap> gaps_;
};

// VO for continuous range queries.
struct ContinuousVo {
  struct ResultEntry {
    std::uint64_t key;
    std::string value;
    Policy policy;
    Signature app_sig;
  };
  struct InaccessibleEntry {
    std::uint64_t key;
    Digest value_hash;
    Signature aps_sig;
  };
  struct GapEntry {
    GapRegion gap;
    Signature aps_sig;
  };
  std::vector<ResultEntry> results;
  std::vector<InaccessibleEntry> inaccessible;
  std::vector<GapEntry> gaps;

  std::size_t SerializedSize() const;
  void Serialize(common::ByteWriter* w) const;
  static ContinuousVo Deserialize(common::ByteReader* r);
};

// SP side: range [alpha, beta] (inclusive).
ContinuousVo BuildContinuousRangeVo(const ContinuousAds& ads,
                                    const VerifyKey& mvk, std::uint64_t alpha,
                                    std::uint64_t beta,
                                    const RoleSet& user_roles,
                                    const RoleSet& universe, Rng* rng);

// User side: soundness + completeness (the points and open gaps must tile
// [alpha, beta] exactly). A non-null `pool` fans the signature checks out
// across its threads with diagnostics identical to the serial path (see
// core/parallel_verify.h).
VerifyResult VerifyContinuousRangeVoEx(const VerifyKey& mvk,
                                       std::uint64_t alpha, std::uint64_t beta,
                                       const RoleSet& user_roles,
                                       const RoleSet& universe,
                                       const ContinuousVo& vo,
                                       std::vector<ContinuousRecord>* results,
                                       ThreadPool* pool = nullptr);

bool VerifyContinuousRangeVo(const VerifyKey& mvk, std::uint64_t alpha,
                             std::uint64_t beta, const RoleSet& user_roles,
                             const RoleSet& universe, const ContinuousVo& vo,
                             std::vector<ContinuousRecord>* results,
                             std::string* error, ThreadPool* pool = nullptr);

// SP side: equality query. Either one record entry (result/inaccessible) or
// one gap entry proving absence.
ContinuousVo BuildContinuousEqualityVo(const ContinuousAds& ads,
                                       const VerifyKey& mvk, std::uint64_t key,
                                       const RoleSet& user_roles,
                                       const RoleSet& universe, Rng* rng);

// `pool` is accepted for API uniformity; an equality VO carries a single
// signature, so the check runs inline.
VerifyResult VerifyContinuousEqualityVoEx(
    const VerifyKey& mvk, std::uint64_t key, const RoleSet& user_roles,
    const RoleSet& universe, const ContinuousVo& vo,
    std::optional<ContinuousRecord>* result, ThreadPool* pool = nullptr);

bool VerifyContinuousEqualityVo(const VerifyKey& mvk, std::uint64_t key,
                                const RoleSet& user_roles,
                                const RoleSet& universe, const ContinuousVo& vo,
                                std::optional<ContinuousRecord>* result,
                                std::string* error,
                                ThreadPool* pool = nullptr);

}  // namespace apqa::core

#endif  // APQA_CORE_CONTINUOUS_H_

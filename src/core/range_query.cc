#include "core/range_query.h"

#include <deque>
#include <mutex>

#include "core/parallel_verify.h"

namespace apqa::core {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

Vo BuildRangeVo(const GridTree& tree, const VerifyKey& mvk, const Box& range,
                const RoleSet& user_roles, const RoleSet& universe, Rng* rng,
                ThreadPool* pool) {
  return BuildRangeVoWithLacked(tree, mvk, range, user_roles,
                                SuperPolicyRoles(universe, user_roles), rng,
                                pool);
}

Vo BuildRangeVoWithLacked(const GridTree& tree, const VerifyKey& mvk,
                          const Box& range, const RoleSet& user_roles,
                          const RoleSet& lacked, Rng* rng, ThreadPool* pool) {

  // Phase 1: BFS to find result leaves and inaccessible covers.
  struct RelaxJob {
    GridTree::NodeId id;
  };
  Vo vo;
  std::vector<RelaxJob> jobs;
  std::deque<GridTree::NodeId> queue;
  queue.push_back(tree.Root());
  while (!queue.empty()) {
    GridTree::NodeId id = queue.front();
    queue.pop_front();
    const GridTree::Node& node = tree.GetNode(id);
    if (!node.box.Intersects(range)) continue;
    if (!range.ContainsBox(node.box)) {
      // Partial overlap: explore the subtree.
      for (GridTree::NodeId c : tree.Children(id)) queue.push_back(c);
      continue;
    }
    // Node fully inside the query range.
    if (node.policy.Evaluate(user_roles)) {
      if (node.is_leaf) {
        vo.entries.push_back(ResultEntry{node.record.key, node.record.value,
                                         node.record.policy, node.sig});
      } else {
        for (GridTree::NodeId c : tree.Children(id)) queue.push_back(c);
      }
    } else {
      jobs.push_back(RelaxJob{id});
    }
  }

  // Phase 2: derive APS signatures (ABS.Relax), independently per node.
  std::vector<VoEntry> relaxed(jobs.size());
  auto relax_one = [&](std::size_t i, Rng* r) {
    const GridTree::Node& node = tree.GetNode(jobs[i].id);
    std::vector<std::uint8_t> msg;
    if (node.is_leaf) {
      Digest vh = crypto::Sha256::Hash(node.record.value.data(),
                                       node.record.value.size());
      msg = RecordMessageFromHash(node.record.key, vh);
      auto aps = DeriveAps(mvk, node.sig, node.policy, msg, lacked, r);
      relaxed[i] = InaccessibleRecordEntry{node.record.key, vh, std::move(*aps)};
    } else {
      msg = BoxMessage(node.box);
      auto aps = DeriveAps(mvk, node.sig, node.policy, msg, lacked, r);
      relaxed[i] = InaccessibleBoxEntry{node.box, std::move(*aps)};
    }
  };
  if (pool != nullptr && pool->thread_count() > 1 && jobs.size() > 1) {
    std::vector<Rng> rngs;
    for (int t = 0; t < pool->thread_count(); ++t) rngs.emplace_back(rng->NextU64());
    std::atomic<std::size_t> next{0};
    pool->ParallelFor(pool->thread_count(), [&](std::size_t t) {
      for (;;) {
        std::size_t i = next.fetch_add(1);
        if (i >= jobs.size()) break;
        relax_one(i, &rngs[t]);
      }
    });
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) relax_one(i, rng);
  }
  for (auto& e : relaxed) vo.entries.push_back(std::move(e));
  return vo;
}

VerifyResult CheckCoverageEx(const Box& range, const Vo& vo) {
  std::uint64_t covered = 0;
  std::vector<Box> boxes;
  boxes.reserve(vo.entries.size());
  for (std::size_t i = 0; i < vo.entries.size(); ++i) {
    Box b = EntryRegion(vo.entries[i]);
    std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
    if (b.lo.size() != range.lo.size()) {
      return VerifyResult::Fail(VerifyCode::kDimensionMismatch,
                                "entry region dimensionality mismatch", idx);
    }
    // An inverted box would wrap Volume() and could forge the covered-cell
    // sum, so reject before any arithmetic.
    if (!b.WellFormed()) {
      return VerifyResult::Fail(VerifyCode::kMalformedVo,
                                "entry region not a well-formed box", idx);
    }
    if (!range.ContainsBox(b)) {
      return VerifyResult::Fail(VerifyCode::kRegionOutsideRange,
                                "entry region outside query range", idx);
    }
    for (const Box& prev : boxes) {
      if (prev.Intersects(b)) {
        return VerifyResult::Fail(VerifyCode::kOverlap,
                                  "overlapping entry regions", idx);
      }
    }
    covered += b.Volume();
    boxes.push_back(b);
  }
  if (covered != range.Volume()) {
    return VerifyResult::Fail(VerifyCode::kCoverageGap,
                              "entry regions do not cover the query range");
  }
  return VerifyResult::Ok();
}

bool CheckCoverage(const Box& range, const Vo& vo, std::string* error) {
  VerifyResult r = CheckCoverageEx(range, vo);
  if (!r.ok()) SetError(error, r.ToString());
  return r.ok();
}

VerifyResult VerifyRangeVoEx(const VerifyKey& mvk, const Domain& domain,
                             const Box& range, const RoleSet& user_roles,
                             const RoleSet& universe, const Vo& vo,
                             std::vector<Record>* results, bool exact_pairings,
                             ThreadPool* pool) {
  return VerifyRangeVoWithLackedEx(mvk, domain, range, user_roles,
                                   SuperPolicyRoles(universe, user_roles), vo,
                                   results, exact_pairings, pool);
}

VerifyResult VerifyRangeVoWithLackedEx(const VerifyKey& mvk,
                                       const Domain& domain, const Box& range,
                                       const RoleSet& user_roles,
                                       const RoleSet& lacked, const Vo& vo,
                                       std::vector<Record>* results,
                                       bool exact_pairings, ThreadPool* pool) {
  if (!range.WellFormed() ||
      range.lo.size() != static_cast<std::size_t>(domain.dims) ||
      !domain.FullBox().ContainsBox(range)) {
    return VerifyResult::Fail(VerifyCode::kBadQuery,
                              "query range invalid for domain");
  }
  if (VerifyResult r = CheckCoverageEx(range, vo); !r.ok()) return r;
  Policy super_policy = Policy::OrOfRoles(lacked);

  // One serial structural pass in entry order, queueing signature checks;
  // SigBatch keeps the diagnostics and partial-result emission identical
  // to the sequential verifier regardless of the pool (parallel_verify.h).
  SigBatch batch(mvk, exact_pairings);
  VerifyResult struct_fail = VerifyResult::Ok();
  std::vector<std::ptrdiff_t> entry_job(vo.entries.size(), -1);
  for (std::size_t i = 0; i < vo.entries.size(); ++i) {
    const VoEntry& entry = vo.entries[i];
    std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
    if (const auto* res = std::get_if<ResultEntry>(&entry)) {
      if (!domain.ContainsPoint(res->key) || !range.Contains(res->key)) {
        struct_fail = VerifyResult::Fail(VerifyCode::kRegionOutsideRange,
                                         "result key outside range", idx);
        break;
      }
      if (!res->policy.Evaluate(user_roles)) {
        struct_fail = VerifyResult::Fail(
            VerifyCode::kPolicyNotSatisfied,
            "result policy not satisfied by user roles", idx);
        break;
      }
      entry_job[i] = static_cast<std::ptrdiff_t>(batch.Add(
          RecordMessage(res->key, res->value), &res->policy, &res->app_sig,
          VerifyResult::Fail(VerifyCode::kBadSignature,
                             "APP signature verification failed", idx)));
    } else if (const auto* rec = std::get_if<InaccessibleRecordEntry>(&entry)) {
      if (!domain.ContainsPoint(rec->key)) {
        struct_fail =
            VerifyResult::Fail(VerifyCode::kRegionOutsideRange,
                               "inaccessible record key outside domain", idx);
        break;
      }
      batch.Add(RecordMessageFromHash(rec->key, rec->value_hash), &super_policy,
                &rec->aps_sig,
                VerifyResult::Fail(VerifyCode::kBadSignature,
                                   "record APS signature verification failed",
                                   idx));
    } else {
      const auto& boxe = std::get<InaccessibleBoxEntry>(entry);
      batch.Add(BoxMessage(boxe.box), &super_policy, &boxe.aps_sig,
                VerifyResult::Fail(VerifyCode::kBadSignature,
                                   "box APS signature verification failed",
                                   idx));
    }
  }

  std::ptrdiff_t bad = batch.FirstFailure(pool);
  if (results != nullptr) {
    std::size_t emit = batch.EmitLimit(bad);
    for (std::size_t i = 0; i < vo.entries.size(); ++i) {
      const auto* res = std::get_if<ResultEntry>(&vo.entries[i]);
      if (res == nullptr || entry_job[i] < 0) continue;
      if (static_cast<std::size_t>(entry_job[i]) < emit) {
        results->push_back(Record{res->key, res->value, res->policy});
      }
    }
  }
  if (bad >= 0) return batch.failure(bad);
  return struct_fail;
}

bool VerifyRangeVo(const VerifyKey& mvk, const Domain& domain, const Box& range,
                   const RoleSet& user_roles, const RoleSet& universe,
                   const Vo& vo, std::vector<Record>* results,
                   std::string* error, bool exact_pairings, ThreadPool* pool) {
  VerifyResult r = VerifyRangeVoEx(mvk, domain, range, user_roles, universe,
                                   vo, results, exact_pairings, pool);
  if (!r.ok()) SetError(error, r.ToString());
  return r.ok();
}

bool VerifyRangeVoWithLacked(const VerifyKey& mvk, const Domain& domain,
                             const Box& range, const RoleSet& user_roles,
                             const RoleSet& lacked, const Vo& vo,
                             std::vector<Record>* results, std::string* error,
                             bool exact_pairings, ThreadPool* pool) {
  VerifyResult r = VerifyRangeVoWithLackedEx(mvk, domain, range, user_roles,
                                             lacked, vo, results,
                                             exact_pairings, pool);
  if (!r.ok()) SetError(error, r.ToString());
  return r.ok();
}

}  // namespace apqa::core

// Fixed-size thread pool (paper §8.2: acceleration by parallelism).
//
// The SP's dominant query-time cost is the set of independent ABS.Relax
// operations for inaccessible nodes; the pool maps them over worker threads.
// The DO uses the same pool to parallelize ADS signing, and the query
// service (net/server.h) uses it as a bounded request queue: TrySubmit
// rejects work once `max_queue` tasks are waiting, which is what lets the
// server shed load instead of building an unbounded backlog.
//
// Lifecycle: Stop() drains every queued task, then joins the workers
// (the destructor calls it). Submitting after Stop() is a defined error —
// Submit throws std::runtime_error, TrySubmit returns false — never a
// silent drop.
#ifndef APQA_CORE_THREAD_POOL_H_
#define APQA_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace apqa::core {

class ThreadPool {
 public:
  // threads == 0 or 1 degenerates to synchronous execution in Submit.
  // max_queue bounds the number of *waiting* tasks seen by TrySubmit;
  // 0 means unbounded.
  explicit ThreadPool(int threads, std::size_t max_queue = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues unconditionally (ignores max_queue). Throws std::runtime_error
  // after Stop().
  void Submit(std::function<void()> task);

  // Enqueues unless the pool is stopped or max_queue tasks are already
  // waiting; returns whether the task was accepted. With no worker threads
  // the task runs synchronously (there is no queue to fill).
  bool TrySubmit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void WaitAll();

  // Drains queued tasks, then joins the workers. Idempotent; called by the
  // destructor, so destroying a pool with pending tasks runs them first.
  void Stop();

  int thread_count() const { return static_cast<int>(workers_.size()); }
  std::size_t queued() const;

  // Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::size_t in_flight_ = 0;
  std::size_t max_queue_ = 0;
  bool stop_ = false;
};

}  // namespace apqa::core

#endif  // APQA_CORE_THREAD_POOL_H_

// Fixed-size thread pool (paper §8.2: acceleration by parallelism).
//
// The SP's dominant query-time cost is the set of independent ABS.Relax
// operations for inaccessible nodes; the pool maps them over worker threads.
// The DO uses the same pool to parallelize ADS signing.
#ifndef APQA_CORE_THREAD_POOL_H_
#define APQA_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace apqa::core {

class ThreadPool {
 public:
  // threads == 0 or 1 degenerates to synchronous execution in Submit.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);
  // Blocks until every submitted task has finished.
  void WaitAll();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace apqa::core

#endif  // APQA_CORE_THREAD_POOL_H_

#include "core/grid_tree.h"

#include <map>
#include <stdexcept>

#include "common/serde.h"
#include "crypto/serde.h"

namespace apqa::core {

std::vector<std::uint32_t> GridTree::Coords(NodeId id) const {
  std::vector<std::uint32_t> c(domain_.dims);
  std::uint64_t side = std::uint64_t{1} << id.level;
  std::uint64_t idx = id.index;
  for (int d = domain_.dims - 1; d >= 0; --d) {
    c[d] = static_cast<std::uint32_t>(idx % side);
    idx /= side;
  }
  return c;
}

std::uint64_t GridTree::IndexOf(int level,
                                const std::vector<std::uint32_t>& c) const {
  std::uint64_t side = std::uint64_t{1} << level;
  std::uint64_t idx = 0;
  for (int d = 0; d < domain_.dims; ++d) idx = idx * side + c[d];
  return idx;
}

std::vector<GridTree::NodeId> GridTree::Children(NodeId id) const {
  std::vector<NodeId> out;
  if (IsLeafLevel(id)) return out;
  std::vector<std::uint32_t> c = Coords(id);
  int n = 1 << domain_.dims;
  out.reserve(n);
  for (int mask = 0; mask < n; ++mask) {
    std::vector<std::uint32_t> cc(domain_.dims);
    for (int d = 0; d < domain_.dims; ++d) {
      cc[d] = 2 * c[d] + ((mask >> d) & 1);
    }
    out.push_back(NodeId{id.level + 1, IndexOf(id.level + 1, cc)});
  }
  return out;
}

GridTree::NodeId GridTree::LeafAt(const Point& p) const {
  std::vector<std::uint32_t> c(p.begin(), p.end());
  return NodeId{domain_.bits, IndexOf(domain_.bits, c)};
}

std::size_t GridTree::NodeCount() const {
  std::size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

void GridTree::SerializedSize(std::size_t* structure_bytes,
                              std::size_t* signature_bytes) const {
  std::size_t structure = 0, sigs = 0;
  for (const auto& level : levels_) {
    for (const Node& node : level) {
      structure += 8 * node.box.lo.size();  // box coordinates
      structure += node.policy.ToString().size();
      if (node.is_leaf) structure += node.record.value.size();
      sigs += node.sig.SerializedSize();
    }
  }
  *structure_bytes = structure;
  *signature_bytes = sigs;
}

void GridTree::Serialize(common::ByteWriter* w) const {
  w->PutU32(static_cast<std::uint32_t>(domain_.dims));
  w->PutU32(static_cast<std::uint32_t>(domain_.bits));
  for (const auto& level : levels_) {
    for (const Node& node : level) {
      w->PutString(node.policy.ToString());
      node.sig.Serialize(w);
      if (node.is_leaf) {
        w->PutU8(node.is_pseudo ? 1 : 0);
        w->PutString(node.record.value);
      }
    }
  }
}

std::optional<GridTree> GridTree::Deserialize(common::ByteReader* r) {
  GridTree tree;
  tree.domain_.dims = static_cast<int>(r->GetU32());
  tree.domain_.bits = static_cast<int>(r->GetU32());
  if (!r->ok() || tree.domain_.dims < 1 || tree.domain_.dims > 8 ||
      tree.domain_.bits < 1 || tree.domain_.bits > 16 ||
      tree.domain_.CellCount() > (1u << 22)) {
    return std::nullopt;
  }
  const Domain& domain = tree.domain_;
  tree.levels_.resize(domain.bits + 1);
  for (int level = 0; level <= domain.bits; ++level) {
    std::uint64_t count = 1;
    for (int d = 0; d < domain.dims; ++d) count *= std::uint64_t{1} << level;
    auto& nodes = tree.levels_[level];
    // A node costs at least a 4-byte policy length prefix plus a minimal
    // signature on the wire; refuse to allocate more nodes than the
    // remaining bytes could possibly encode (allocation-bomb guard).
    if (!r->CheckCount(count, 4 + Signature::kMinSerializedSize)) {
      return std::nullopt;
    }
    nodes.resize(count);
    std::uint32_t cell_side = std::uint32_t{1} << (domain.bits - level);
    for (std::uint64_t i = 0; i < count; ++i) {
      Node& node = nodes[i];
      auto parsed = Policy::TryParse(r->GetString());
      if (!parsed.has_value()) return std::nullopt;
      node.policy = std::move(*parsed);
      node.sig = Signature::Deserialize(r);
      std::vector<std::uint32_t> c = tree.Coords(NodeId{level, i});
      node.box.lo.resize(domain.dims);
      node.box.hi.resize(domain.dims);
      for (int d = 0; d < domain.dims; ++d) {
        node.box.lo[d] = c[d] * cell_side;
        node.box.hi[d] = node.box.lo[d] + cell_side - 1;
      }
      if (level == domain.bits) {
        node.is_leaf = true;
        node.is_pseudo = r->GetU8() != 0;
        node.record.key = node.box.lo;
        node.record.value = r->GetString();
        node.record.policy = node.policy;
      }
      if (!r->ok()) return std::nullopt;
    }
  }
  return tree;
}

GridTree GridTree::Build(const VerifyKey& mvk, const SigningKey& sk_do,
                         const Domain& domain,
                         const std::vector<Record>& records, Rng* rng,
                         ThreadPool* pool) {
  GridTree tree;
  tree.domain_ = domain;
  tree.levels_.resize(domain.bits + 1);

  std::map<Point, const Record*> by_key;
  for (const Record& r : records) {
    if (!domain.ContainsPoint(r.key)) {
      throw std::invalid_argument("record key outside domain");
    }
    if (!by_key.emplace(r.key, &r).second) {
      throw std::invalid_argument(
          "duplicate query key; use the duplicates module (Appendix E)");
    }
  }

  // Leaf level: one node per unit cell.
  int bits = domain.bits;
  std::uint64_t leaf_count = domain.CellCount();
  auto& leaves = tree.levels_[bits];
  leaves.resize(leaf_count);
  Policy pseudo_policy = Policy::Var(kPseudoRole);
  for (std::uint64_t i = 0; i < leaf_count; ++i) {
    Node& node = leaves[i];
    node.is_leaf = true;
    std::vector<std::uint32_t> c = tree.Coords(NodeId{bits, i});
    node.box = Box{Point(c.begin(), c.end()), Point(c.begin(), c.end())};
    auto it = by_key.find(node.box.lo);
    if (it != by_key.end()) {
      node.is_pseudo = false;
      node.record = *it->second;
    } else {
      node.is_pseudo = true;
      node.record.key = node.box.lo;
      auto bytes = rng->Bytes(16);
      node.record.value.assign(bytes.begin(), bytes.end());
      node.record.policy = pseudo_policy;
    }
    node.policy = node.record.policy;
  }

  // Internal levels bottom-up: policy = OR of children (reduced DNF).
  for (int level = bits - 1; level >= 0; --level) {
    std::uint64_t side = std::uint64_t{1} << level;
    std::uint64_t count = 1;
    for (int d = 0; d < domain.dims; ++d) count *= side;
    auto& nodes = tree.levels_[level];
    nodes.resize(count);
    std::uint32_t cell_side = std::uint32_t{1} << (bits - level);
    for (std::uint64_t i = 0; i < count; ++i) {
      Node& node = nodes[i];
      NodeId id{level, i};
      std::vector<std::uint32_t> c = tree.Coords(id);
      node.box.lo.resize(domain.dims);
      node.box.hi.resize(domain.dims);
      for (int d = 0; d < domain.dims; ++d) {
        node.box.lo[d] = c[d] * cell_side;
        node.box.hi[d] = node.box.lo[d] + cell_side - 1;
      }
      bool first = true;
      for (NodeId child : tree.Children(id)) {
        const Policy& cp = tree.GetNode(child).policy;
        node.policy = first ? cp.ToDnf() : policy::OrCombineDnf(node.policy, cp);
        first = false;
      }
    }
  }

  // Sign everything. Signing jobs are independent; fan out when a pool is
  // provided (each job gets its own RNG stream seeded from the caller's).
  struct Job {
    Node* node;
  };
  std::vector<Node*> jobs;
  jobs.reserve(tree.NodeCount());
  for (auto& level : tree.levels_) {
    for (auto& node : level) jobs.push_back(&node);
  }
  auto sign_one = [&](Node* node, Rng* r) {
    std::optional<Signature> sig;
    if (node->is_leaf) {
      sig = SignRecord(mvk, sk_do, node->record, r);
    } else {
      sig = SignBox(mvk, sk_do, node->box, node->policy, r);
    }
    if (!sig.has_value()) {
      throw std::logic_error("DO signing key does not cover a record policy");
    }
    node->sig = std::move(*sig);
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    std::vector<Rng> rngs;
    rngs.reserve(pool->thread_count());
    std::vector<std::uint64_t> seeds;
    for (int t = 0; t < pool->thread_count(); ++t) seeds.push_back(rng->NextU64());
    for (auto s : seeds) rngs.emplace_back(s);
    std::atomic<std::size_t> next{0};
    pool->ParallelFor(pool->thread_count(), [&](std::size_t t) {
      for (;;) {
        std::size_t i = next.fetch_add(1);
        if (i >= jobs.size()) break;
        sign_one(jobs[i], &rngs[t]);
      }
    });
  } else {
    for (Node* j : jobs) sign_one(j, rng);
  }
  return tree;
}

}  // namespace apqa::core

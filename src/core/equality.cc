#include "core/equality.h"

#include "core/parallel_verify.h"

namespace apqa::core {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

Vo BuildEqualityVo(const GridTree& tree, const VerifyKey& mvk, const Point& key,
                   const RoleSet& user_roles, const RoleSet& universe,
                   Rng* rng) {
  Vo vo;
  const GridTree::Node& leaf = tree.GetNode(tree.LeafAt(key));
  if (leaf.policy.Evaluate(user_roles)) {
    vo.entries.push_back(ResultEntry{leaf.record.key, leaf.record.value,
                                     leaf.record.policy, leaf.sig});
    return vo;
  }
  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  Digest vh =
      crypto::Sha256::Hash(leaf.record.value.data(), leaf.record.value.size());
  auto msg = RecordMessageFromHash(leaf.record.key, vh);
  auto aps = DeriveAps(mvk, leaf.sig, leaf.policy, msg, lacked, rng);
  vo.entries.push_back(InaccessibleRecordEntry{leaf.record.key, vh, *aps});
  return vo;
}

VerifyResult VerifyEqualityVoEx(const VerifyKey& mvk, const Domain& domain,
                                const Point& key, const RoleSet& user_roles,
                                const RoleSet& universe, const Vo& vo,
                                Record* result, bool* accessible,
                                bool exact_pairings, ThreadPool* pool) {
  if (!domain.ContainsPoint(key)) {
    return VerifyResult::Fail(VerifyCode::kBadQuery,
                              "query key outside domain");
  }
  if (vo.entries.size() != 1) {
    return VerifyResult::Fail(VerifyCode::kWrongEntryCount,
                              "equality VO must contain exactly one entry");
  }
  const VoEntry& entry = vo.entries[0];
  if (const auto* res = std::get_if<ResultEntry>(&entry)) {
    if (res->key != key) {
      return VerifyResult::Fail(VerifyCode::kKeyMismatch,
                                "result key does not match query", 0);
    }
    if (!res->policy.Evaluate(user_roles)) {
      return VerifyResult::Fail(VerifyCode::kPolicyNotSatisfied,
                                "result policy not satisfied by user roles",
                                0);
    }
    // A single signature, but routed through SigBatch like every other Ex
    // verifier so all paths share one checking engine (and its fallbacks).
    SigBatch batch(mvk, exact_pairings);
    batch.Add(RecordMessage(res->key, res->value), &res->policy, &res->app_sig,
              VerifyResult::Fail(VerifyCode::kBadSignature,
                                 "APP signature verification failed", 0));
    std::ptrdiff_t fail = batch.FirstFailure(pool);
    if (fail >= 0) return batch.failure(fail);
    if (result != nullptr) *result = Record{res->key, res->value, res->policy};
    if (accessible != nullptr) *accessible = true;
    return VerifyResult::Ok();
  }
  if (const auto* rec = std::get_if<InaccessibleRecordEntry>(&entry)) {
    if (rec->key != key) {
      return VerifyResult::Fail(VerifyCode::kKeyMismatch,
                                "inaccessible entry key does not match query",
                                0);
    }
    RoleSet lacked = SuperPolicyRoles(universe, user_roles);
    Policy super_policy = Policy::OrOfRoles(lacked);
    SigBatch batch(mvk, exact_pairings);
    batch.Add(RecordMessageFromHash(rec->key, rec->value_hash), &super_policy,
              &rec->aps_sig,
              VerifyResult::Fail(VerifyCode::kBadSignature,
                                 "APS signature verification failed", 0));
    std::ptrdiff_t fail = batch.FirstFailure(pool);
    if (fail >= 0) return batch.failure(fail);
    if (accessible != nullptr) *accessible = false;
    return VerifyResult::Ok();
  }
  return VerifyResult::Fail(VerifyCode::kUnexpectedEntryType,
                            "unexpected entry type in equality VO", 0);
}

bool VerifyEqualityVo(const VerifyKey& mvk, const Domain& domain,
                      const Point& key, const RoleSet& user_roles,
                      const RoleSet& universe, const Vo& vo, Record* result,
                      bool* accessible, std::string* error,
                      bool exact_pairings, ThreadPool* pool) {
  VerifyResult r = VerifyEqualityVoEx(mvk, domain, key, user_roles, universe,
                                      vo, result, accessible, exact_pairings,
                                      pool);
  if (!r.ok()) SetError(error, r.ToString());
  return r.ok();
}

}  // namespace apqa::core

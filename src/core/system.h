// Three-party system facade (paper §3, Figure 2): DataOwner, ServiceProvider,
// User.
//
//   * The DataOwner generates master keys, enrolls users (CP-ABE decryption
//     keys for their role sets), signs the ADS (AP²G-tree) and outsources it.
//   * The ServiceProvider answers equality/range/join queries, constructing
//     VOs, optionally sealing responses with CP-ABE+AES so only a user who
//     really holds the claimed roles can read them (impersonation defense).
//   * The User verifies soundness and completeness of every response.
//
// The paper's "Basic" baseline — repeating the equality protocol for every
// discrete value in a range — is provided for benchmark comparison.
#ifndef APQA_CORE_SYSTEM_H_
#define APQA_CORE_SYSTEM_H_

#include <memory>
#include <optional>

#include "core/equality.h"
#include "core/grid_tree.h"
#include "core/join_query.h"
#include "core/range_query.h"
#include "cpabe/cpabe.h"

namespace apqa::core {

// Public parameters every party knows.
struct SystemKeys {
  abs::VerifyKey mvk;
  cpabe::PublicKey cpk;
  RoleSet universe;  // the global role set 𝔸, including Role_∅
  Domain domain;
};

// Per-user secrets issued by the DO.
struct UserCredentials {
  RoleSet roles;
  cpabe::SecretKey cpabe_sk;
};

class DataOwner {
 public:
  // `role_universe` must not contain Role_∅ (added automatically).
  DataOwner(const RoleSet& role_universe, const Domain& domain,
            std::uint64_t seed);

  const SystemKeys& keys() const { return keys_; }
  UserCredentials EnrollUser(const RoleSet& roles);

  // Builds and signs the AP²G-tree for a table.
  GridTree BuildAds(const std::vector<Record>& records,
                    ThreadPool* pool = nullptr);

  // DO-side primitives for the auxiliary index structures (AP²kd-tree,
  // continuous-attribute ADS).
  const abs::SigningKey& signing_key() const { return sk_do_; }
  Rng* rng() { return &rng_; }

 private:
  Rng rng_;
  abs::MasterKey msk_;
  abs::SigningKey sk_do_;
  cpabe::MasterKey cmk_;
  SystemKeys keys_;
};

class ServiceProvider {
 public:
  // `threads` > 1 enables the §8.2 parallel relaxation path.
  ServiceProvider(SystemKeys keys, GridTree tree, int threads = 1);

  // Attaches a second table's ADS for join queries.
  void AttachJoinTable(GridTree tree_s);

  Vo EqualityQuery(const Point& key, const RoleSet& roles);
  Vo RangeQuery(const Box& range, const RoleSet& roles);
  JoinVo JoinQuery(const Box& range, const RoleSet& roles);

  // The paper's Basic baseline: per-cell equality authentication.
  Vo BasicRangeQuery(const Box& range, const RoleSet& roles);
  JoinVo BasicJoinQuery(const Box& range, const RoleSet& roles);

  // Full-protocol transport: the serialized VO sealed under ∧_{a∈roles} a
  // (Algorithm 1 / Algorithm 3, last step).
  cpabe::Envelope SealedRangeQuery(const Box& range, const RoleSet& roles);
  cpabe::Envelope SealedEqualityQuery(const Point& key, const RoleSet& roles);

  const GridTree& tree() const { return tree_; }
  // Public parameters (needed by the service runtime to validate inbound
  // queries against the domain before touching the ADS).
  const SystemKeys& keys() const { return keys_; }

 private:
  SystemKeys keys_;
  GridTree tree_;
  std::optional<GridTree> tree_s_;
  Rng rng_;
  std::unique_ptr<ThreadPool> pool_;
};

class User {
 public:
  // `threads` > 1 fans independent VO signature checks out over an internal
  // pool; verification diagnostics are identical to the serial path (see
  // core/parallel_verify.h). Construction also warms the mvk's
  // prepared-pairing tables so the first verification pays no setup cost.
  User(SystemKeys keys, UserCredentials creds, int threads = 1);

  const RoleSet& roles() const { return creds_.roles; }

  bool VerifyEquality(const Point& key, const Vo& vo, Record* result,
                      bool* accessible, std::string* error = nullptr) const;
  bool VerifyRange(const Box& range, const Vo& vo, std::vector<Record>* results,
                   std::string* error = nullptr) const;
  bool VerifyJoin(const Box& range, const JoinVo& vo,
                  std::vector<std::pair<Record, Record>>* results,
                  std::string* error = nullptr) const;

  // Opens a sealed range response and verifies it.
  bool OpenAndVerifyRange(const Box& range, const cpabe::Envelope& env,
                          std::vector<Record>* results,
                          std::string* error = nullptr) const;
  bool OpenAndVerifyEquality(const Point& key, const cpabe::Envelope& env,
                             Record* result, bool* accessible,
                             std::string* error = nullptr) const;

 private:
  SystemKeys keys_;
  UserCredentials creds_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace apqa::core

#endif  // APQA_CORE_SYSTEM_H_

// AP²kd-tree: the access-policy-preserving k-d tree for the relaxed
// (access-policy confidentiality) model (paper §9.1, Algorithm 7).
//
// Unlike the AP²G-tree, the structure adapts to the data: leaves are
// records, each covering the region of space it was split into, so empty
// space costs nothing. Splits are chosen to minimize the number of DNF
// clauses shared between the two half-spaces (maximizing the chance that an
// entire half-space is inaccessible and prunable); beyond depth log2(S) the
// build falls back to midpoint (grid) splits to bound imbalance.
//
// Implementation note: AP²kd-tree leaf APP signatures bind the leaf's region
// in addition to hash(o)|hash(v) — without this, coverage verification could
// not attribute a region to an accessible leaf. Internal-node signatures are
// identical to AP²G-tree nodes (hash(gb) under the children's OR policy).
#ifndef APQA_CORE_KD_TREE_H_
#define APQA_CORE_KD_TREE_H_

#include <string>
#include <vector>

#include "core/app_signature.h"
#include "core/record.h"
#include "core/thread_pool.h"
#include "core/verify_result.h"
#include "core/vo.h"

namespace apqa::core {

// Message bound by a kd-tree leaf signature: hash(gb) | hash(o) | hash(v).
std::vector<std::uint8_t> KdLeafMessage(const Box& region, const Point& key,
                                        const std::string& value);
std::vector<std::uint8_t> KdLeafMessageFromHash(const Box& region,
                                                const Point& key,
                                                const Digest& value_hash);

class KdTree {
 public:
  struct Node {
    Box region;
    Policy policy;
    Signature sig;
    bool is_leaf = false;
    bool is_pseudo = false;
    Record record;         // leaf payload
    int left = -1, right = -1;
  };

  static KdTree Build(const VerifyKey& mvk, const SigningKey& sk_do,
                      const Domain& domain, const std::vector<Record>& records,
                      Rng* rng);

  const Domain& domain() const { return domain_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  int root() const { return root_; }
  std::size_t LeafCount() const;
  std::size_t MaxDepth() const;
  void SerializedSize(std::size_t* structure_bytes,
                      std::size_t* signature_bytes) const;

  // Algorithm 7: split position (1-based count of policies in the left
  // half) minimizing shared DNF clause sets. Exposed for unit testing.
  static std::size_t SplitPosition(const std::vector<Policy>& policies);

 private:
  int BuildNode(const VerifyKey& mvk, const SigningKey& sk_do, const Box& region,
                std::vector<Record> records, int depth, int max_policy_depth,
                Rng* rng);

  Domain domain_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

// Leaf result entry for kd VOs: covers the leaf's whole region.
struct KdResultEntry {
  Box region;
  Point key;
  std::string value;
  Policy policy;
  Signature app_sig;
};

// Inaccessible leaf: region + key + hash(v) + APS.
struct KdInaccessibleLeafEntry {
  Box region;
  Point key;
  Digest value_hash;
  Signature aps_sig;
};

struct KdVo {
  std::vector<KdResultEntry> results;
  std::vector<KdInaccessibleLeafEntry> leaves;
  std::vector<InaccessibleBoxEntry> boxes;

  std::size_t EntryCount() const {
    return results.size() + leaves.size() + boxes.size();
  }
  std::size_t SerializedSize() const;
  void Serialize(common::ByteWriter* w) const;
  static KdVo Deserialize(common::ByteReader* r);
};

// SP side: Algorithm 3 adapted to the kd structure.
KdVo BuildKdRangeVo(const KdTree& tree, const VerifyKey& mvk, const Box& range,
                    const RoleSet& user_roles, const RoleSet& universe,
                    Rng* rng);

// User side: soundness + completeness. A non-null `pool` fans the signature
// checks out across its threads with diagnostics identical to the serial
// path (see core/parallel_verify.h).
VerifyResult VerifyKdRangeVoEx(const VerifyKey& mvk, const Domain& domain,
                               const Box& range, const RoleSet& user_roles,
                               const RoleSet& universe, const KdVo& vo,
                               std::vector<Record>* results,
                               ThreadPool* pool = nullptr);

bool VerifyKdRangeVo(const VerifyKey& mvk, const Domain& domain,
                     const Box& range, const RoleSet& user_roles,
                     const RoleSet& universe, const KdVo& vo,
                     std::vector<Record>* results, std::string* error,
                     ThreadPool* pool = nullptr);

}  // namespace apqa::core

#endif  // APQA_CORE_KD_TREE_H_

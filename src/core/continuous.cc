#include "core/continuous.h"

#include <algorithm>
#include <stdexcept>

#include "core/parallel_verify.h"
#include "core/vo.h"

namespace apqa::core {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

void PutU64Bytes(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

std::vector<std::uint8_t> GapMessage(const GapRegion& gap) {
  std::vector<std::uint8_t> buf = {'g', 'a', 'p', ':'};
  PutU64Bytes(&buf, gap.lo);
  PutU64Bytes(&buf, gap.hi);
  Digest d = crypto::Sha256::Hash(buf.data(), buf.size());
  return std::vector<std::uint8_t>(d.begin(), d.end());
}

std::vector<std::uint8_t> ContinuousRecordMessage(std::uint64_t key,
                                                  const std::string& value) {
  return ContinuousRecordMessageFromHash(
      key, crypto::Sha256::Hash(value.data(), value.size()));
}

std::vector<std::uint8_t> ContinuousRecordMessageFromHash(
    std::uint64_t key, const Digest& value_hash) {
  std::vector<std::uint8_t> kb;
  PutU64Bytes(&kb, key);
  Digest kh = crypto::Sha256::Hash(kb.data(), kb.size());
  std::vector<std::uint8_t> msg(kh.begin(), kh.end());
  msg.insert(msg.end(), value_hash.begin(), value_hash.end());
  return msg;
}

ContinuousAds ContinuousAds::Build(const VerifyKey& mvk,
                                   const SigningKey& sk_do,
                                   std::vector<ContinuousRecord> records,
                                   Rng* rng) {
  std::sort(records.begin(), records.end(),
            [](const ContinuousRecord& a, const ContinuousRecord& b) {
              return a.key < b.key;
            });
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].key == 0 || records[i].key == UINT64_MAX) {
      throw std::invalid_argument("continuous key out of range");
    }
    if (i > 0 && records[i].key == records[i - 1].key) {
      throw std::invalid_argument(
          "duplicate continuous keys; see core/duplicates.h");
    }
  }

  ContinuousAds ads;
  Policy pseudo = Policy::Var(kPseudoRole);
  std::uint64_t prev = 0;  // -inf sentinel
  for (const ContinuousRecord& r : records) {
    GapRegion gap{prev, r.key};
    auto gap_sig = abs::Abs::Sign(mvk, sk_do, GapMessage(gap), pseudo, rng);
    ads.gaps_.push_back(SignedGap{gap, std::move(*gap_sig)});
    auto rec_sig = abs::Abs::Sign(
        mvk, sk_do, ContinuousRecordMessage(r.key, r.value), r.policy, rng);
    if (!rec_sig.has_value()) {
      throw std::logic_error("DO key does not cover record policy");
    }
    ads.records_.push_back(SignedRecord{r, std::move(*rec_sig)});
    prev = r.key;
  }
  GapRegion last{prev, UINT64_MAX};
  auto gap_sig = abs::Abs::Sign(mvk, sk_do, GapMessage(last), pseudo, rng);
  ads.gaps_.push_back(SignedGap{last, std::move(*gap_sig)});
  return ads;
}

std::size_t ContinuousAds::SerializedSizeBytes() const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    n += 8 + r.record.value.size() + r.record.policy.ToString().size() +
         r.sig.SerializedSize();
  }
  for (const auto& g : gaps_) n += 16 + g.sig.SerializedSize();
  return n;
}

ContinuousVo BuildContinuousRangeVo(const ContinuousAds& ads,
                                    const VerifyKey& mvk, std::uint64_t alpha,
                                    std::uint64_t beta,
                                    const RoleSet& user_roles,
                                    const RoleSet& universe, Rng* rng) {
  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  ContinuousVo vo;
  for (const auto& sr : ads.records()) {
    if (sr.record.key < alpha || sr.record.key > beta) continue;
    if (sr.record.policy.Evaluate(user_roles)) {
      vo.results.push_back(ContinuousVo::ResultEntry{
          sr.record.key, sr.record.value, sr.record.policy, sr.sig});
    } else {
      Digest vh = crypto::Sha256::Hash(sr.record.value.data(),
                                       sr.record.value.size());
      auto msg = ContinuousRecordMessageFromHash(sr.record.key, vh);
      auto aps = abs::Abs::Relax(mvk, sr.sig, sr.record.policy, msg, lacked,
                                 rng);
      vo.inaccessible.push_back(
          ContinuousVo::InaccessibleEntry{sr.record.key, vh, std::move(*aps)});
    }
  }
  Policy pseudo = Policy::Var(kPseudoRole);
  for (const auto& sg : ads.gaps()) {
    // Open interval (lo, hi) covers keys lo+1 .. hi-1; adjacent keys leave
    // an empty gap that covers nothing. Include a gap iff it is non-empty
    // and hi-1 >= alpha and lo+1 <= beta.
    if (sg.gap.hi - sg.gap.lo < 2) continue;
    if (sg.gap.hi <= alpha || sg.gap.lo >= beta) continue;
    auto aps =
        abs::Abs::Relax(mvk, sg.sig, pseudo, GapMessage(sg.gap), lacked, rng);
    vo.gaps.push_back(ContinuousVo::GapEntry{sg.gap, std::move(*aps)});
  }
  return vo;
}

std::size_t ContinuousVo::SerializedSize() const {
  common::ByteWriter w;
  Serialize(&w);
  return w.size();
}

void ContinuousVo::Serialize(common::ByteWriter* w) const {
  w->PutU32(static_cast<std::uint32_t>(results.size()));
  for (const auto& e : results) {
    w->PutU64(e.key);
    w->PutString(e.value);
    w->PutString(e.policy.ToString());
    e.app_sig.Serialize(w);
  }
  w->PutU32(static_cast<std::uint32_t>(inaccessible.size()));
  for (const auto& e : inaccessible) {
    w->PutU64(e.key);
    w->PutBytes(e.value_hash.data(), e.value_hash.size());
    e.aps_sig.Serialize(w);
  }
  w->PutU32(static_cast<std::uint32_t>(gaps.size()));
  for (const auto& e : gaps) {
    w->PutU64(e.gap.lo);
    w->PutU64(e.gap.hi);
    e.aps_sig.Serialize(w);
  }
}

ContinuousVo ContinuousVo::Deserialize(common::ByteReader* r) {
  ContinuousVo vo;
  std::uint32_t nr = r->GetU32();
  if (!r->CheckCount(nr, kMinVoEntryBytes)) return vo;
  vo.results.reserve(nr);
  for (std::uint32_t i = 0; i < nr && r->ok(); ++i) {
    ResultEntry e;
    e.key = r->GetU64();
    e.value = r->GetString();
    e.policy = ReadPolicy(r);
    e.app_sig = Signature::Deserialize(r);
    vo.results.push_back(std::move(e));
  }
  std::uint32_t ni = r->GetU32();
  if (!r->CheckCount(ni, kMinVoEntryBytes)) return vo;
  vo.inaccessible.reserve(ni);
  for (std::uint32_t i = 0; i < ni && r->ok(); ++i) {
    InaccessibleEntry e;
    e.key = r->GetU64();
    r->Get(e.value_hash.data(), e.value_hash.size());
    e.aps_sig = Signature::Deserialize(r);
    vo.inaccessible.push_back(std::move(e));
  }
  std::uint32_t ng = r->GetU32();
  if (!r->CheckCount(ng, kMinVoEntryBytes)) return vo;
  vo.gaps.reserve(ng);
  for (std::uint32_t i = 0; i < ng && r->ok(); ++i) {
    GapEntry e;
    e.gap.lo = r->GetU64();
    e.gap.hi = r->GetU64();
    e.aps_sig = Signature::Deserialize(r);
    vo.gaps.push_back(std::move(e));
  }
  return vo;
}

VerifyResult VerifyContinuousRangeVoEx(
    const VerifyKey& mvk, std::uint64_t alpha, std::uint64_t beta,
    const RoleSet& user_roles, const RoleSet& universe, const ContinuousVo& vo,
    std::vector<ContinuousRecord>* results, ThreadPool* pool) {
  if (alpha > beta) {
    return VerifyResult::Fail(VerifyCode::kBadQuery,
                              "query range is inverted");
  }
  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  Policy super_policy = Policy::OrOfRoles(lacked);

  // Coverage: points and clipped open gaps must tile [alpha, beta].
  struct Interval {
    std::uint64_t lo, hi;
  };
  std::vector<Interval> intervals;
  for (std::size_t i = 0; i < vo.results.size(); ++i) {
    const auto& e = vo.results[i];
    if (e.key < alpha || e.key > beta) {
      return VerifyResult::Fail(VerifyCode::kRegionOutsideRange,
                                "result key outside range",
                                static_cast<std::ptrdiff_t>(i));
    }
    intervals.push_back({e.key, e.key});
  }
  for (std::size_t i = 0; i < vo.inaccessible.size(); ++i) {
    const auto& e = vo.inaccessible[i];
    if (e.key < alpha || e.key > beta) {
      return VerifyResult::Fail(VerifyCode::kRegionOutsideRange,
                                "inaccessible key outside range",
                                static_cast<std::ptrdiff_t>(i));
    }
    intervals.push_back({e.key, e.key});
  }
  for (std::size_t i = 0; i < vo.gaps.size(); ++i) {
    const auto& e = vo.gaps[i];
    std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
    if (e.gap.hi <= e.gap.lo || e.gap.hi - e.gap.lo < 2) {
      return VerifyResult::Fail(VerifyCode::kMalformedVo, "degenerate gap",
                                idx);
    }
    std::uint64_t lo = std::max(e.gap.lo + 1, alpha);
    std::uint64_t hi = std::min(e.gap.hi - 1, beta);
    if (lo > hi) {
      return VerifyResult::Fail(VerifyCode::kRegionOutsideRange,
                                "gap outside range", idx);
    }
    intervals.push_back({lo, hi});
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::uint64_t next = alpha;
  for (const auto& iv : intervals) {
    if (iv.lo != next) {
      return VerifyResult::Fail(iv.lo < next ? VerifyCode::kOverlap
                                             : VerifyCode::kCoverageGap,
                                "coverage hole or overlap");
    }
    next = iv.hi + 1;
  }
  if (next != beta + 1) {
    return VerifyResult::Fail(VerifyCode::kCoverageGap,
                              "range not fully covered");
  }

  // Structural pass in sequential order; signature checks run through a
  // SigBatch so a pool changes timing only (see core/parallel_verify.h).
  SigBatch batch(mvk, /*exact_pairings=*/false);
  VerifyResult struct_fail = VerifyResult::Ok();
  std::vector<std::ptrdiff_t> result_job(vo.results.size(), -1);
  for (std::size_t i = 0; i < vo.results.size(); ++i) {
    const auto& e = vo.results[i];
    std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i);
    if (!e.policy.Evaluate(user_roles)) {
      struct_fail = VerifyResult::Fail(VerifyCode::kPolicyNotSatisfied,
                                       "result policy not satisfied", idx);
      break;
    }
    result_job[i] = static_cast<std::ptrdiff_t>(batch.Add(
        ContinuousRecordMessage(e.key, e.value), &e.policy, &e.app_sig,
        VerifyResult::Fail(VerifyCode::kBadSignature,
                           "record APP signature verification failed", idx)));
  }
  if (struct_fail.ok()) {
    for (std::size_t i = 0; i < vo.inaccessible.size(); ++i) {
      const auto& e = vo.inaccessible[i];
      batch.Add(ContinuousRecordMessageFromHash(e.key, e.value_hash),
                &super_policy, &e.aps_sig,
                VerifyResult::Fail(VerifyCode::kBadSignature,
                                   "record APS signature verification failed",
                                   static_cast<std::ptrdiff_t>(i)));
    }
    for (std::size_t i = 0; i < vo.gaps.size(); ++i) {
      const auto& e = vo.gaps[i];
      batch.Add(GapMessage(e.gap), &super_policy, &e.aps_sig,
                VerifyResult::Fail(VerifyCode::kBadSignature,
                                   "gap APS signature verification failed",
                                   static_cast<std::ptrdiff_t>(i)));
    }
  }

  std::ptrdiff_t bad = batch.FirstFailure(pool);
  if (results != nullptr) {
    std::size_t emit = batch.EmitLimit(bad);
    for (std::size_t i = 0; i < vo.results.size(); ++i) {
      const auto& e = vo.results[i];
      if (result_job[i] < 0) continue;
      if (static_cast<std::size_t>(result_job[i]) < emit) {
        results->push_back(ContinuousRecord{e.key, e.value, e.policy});
      }
    }
  }
  if (bad >= 0) return batch.failure(bad);
  return struct_fail;
}

bool VerifyContinuousRangeVo(const VerifyKey& mvk, std::uint64_t alpha,
                             std::uint64_t beta, const RoleSet& user_roles,
                             const RoleSet& universe, const ContinuousVo& vo,
                             std::vector<ContinuousRecord>* results,
                             std::string* error, ThreadPool* pool) {
  VerifyResult r = VerifyContinuousRangeVoEx(mvk, alpha, beta, user_roles,
                                             universe, vo, results, pool);
  if (!r.ok()) SetError(error, r.ToString());
  return r.ok();
}

ContinuousVo BuildContinuousEqualityVo(const ContinuousAds& ads,
                                       const VerifyKey& mvk, std::uint64_t key,
                                       const RoleSet& user_roles,
                                       const RoleSet& universe, Rng* rng) {
  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  ContinuousVo vo;
  for (const auto& sr : ads.records()) {
    if (sr.record.key != key) continue;
    if (sr.record.policy.Evaluate(user_roles)) {
      vo.results.push_back(ContinuousVo::ResultEntry{
          sr.record.key, sr.record.value, sr.record.policy, sr.sig});
    } else {
      Digest vh = crypto::Sha256::Hash(sr.record.value.data(),
                                       sr.record.value.size());
      auto msg = ContinuousRecordMessageFromHash(sr.record.key, vh);
      auto aps =
          abs::Abs::Relax(mvk, sr.sig, sr.record.policy, msg, lacked, rng);
      vo.inaccessible.push_back(
          ContinuousVo::InaccessibleEntry{sr.record.key, vh, std::move(*aps)});
    }
    return vo;
  }
  Policy pseudo = Policy::Var(kPseudoRole);
  for (const auto& sg : ads.gaps()) {
    if (sg.gap.lo < key && key < sg.gap.hi) {
      auto aps =
          abs::Abs::Relax(mvk, sg.sig, pseudo, GapMessage(sg.gap), lacked, rng);
      vo.gaps.push_back(ContinuousVo::GapEntry{sg.gap, std::move(*aps)});
      return vo;
    }
  }
  return vo;  // key coincides with a sentinel; empty VO will fail verification
}

VerifyResult VerifyContinuousEqualityVoEx(
    const VerifyKey& mvk, std::uint64_t key, const RoleSet& user_roles,
    const RoleSet& universe, const ContinuousVo& vo,
    std::optional<ContinuousRecord>* result, ThreadPool* pool) {
  (void)pool;  // single signature: nothing to fan out
  RoleSet lacked = SuperPolicyRoles(universe, user_roles);
  Policy super_policy = Policy::OrOfRoles(lacked);
  std::size_t total = vo.results.size() + vo.inaccessible.size() +
                      vo.gaps.size();
  if (total != 1) {
    return VerifyResult::Fail(VerifyCode::kWrongEntryCount,
                              "equality VO must contain exactly one entry");
  }
  if (!vo.results.empty()) {
    const auto& e = vo.results[0];
    if (e.key != key) {
      return VerifyResult::Fail(VerifyCode::kKeyMismatch,
                                "result key does not match query", 0);
    }
    if (!e.policy.Evaluate(user_roles)) {
      return VerifyResult::Fail(VerifyCode::kPolicyNotSatisfied,
                                "result policy not satisfied", 0);
    }
    if (!abs::Abs::Verify(mvk, ContinuousRecordMessage(e.key, e.value),
                          e.policy, e.app_sig)) {
      return VerifyResult::Fail(VerifyCode::kBadSignature,
                                "APP signature verification failed", 0);
    }
    if (result != nullptr) *result = ContinuousRecord{e.key, e.value, e.policy};
    return VerifyResult::Ok();
  }
  if (!vo.inaccessible.empty()) {
    const auto& e = vo.inaccessible[0];
    if (e.key != key) {
      return VerifyResult::Fail(VerifyCode::kKeyMismatch,
                                "inaccessible key mismatch", 0);
    }
    auto msg = ContinuousRecordMessageFromHash(e.key, e.value_hash);
    if (!abs::Abs::Verify(mvk, msg, super_policy, e.aps_sig)) {
      return VerifyResult::Fail(VerifyCode::kBadSignature,
                                "APS signature verification failed", 0);
    }
    if (result != nullptr) result->reset();
    return VerifyResult::Ok();
  }
  const auto& e = vo.gaps[0];
  if (!(e.gap.lo < key && key < e.gap.hi)) {
    return VerifyResult::Fail(VerifyCode::kKeyMismatch,
                              "gap does not contain query key", 0);
  }
  if (!abs::Abs::Verify(mvk, GapMessage(e.gap), super_policy, e.aps_sig)) {
    return VerifyResult::Fail(VerifyCode::kBadSignature,
                              "gap APS signature verification failed", 0);
  }
  if (result != nullptr) result->reset();
  return VerifyResult::Ok();
}

bool VerifyContinuousEqualityVo(const VerifyKey& mvk, std::uint64_t key,
                                const RoleSet& user_roles,
                                const RoleSet& universe, const ContinuousVo& vo,
                                std::optional<ContinuousRecord>* result,
                                std::string* error, ThreadPool* pool) {
  VerifyResult r = VerifyContinuousEqualityVoEx(mvk, key, user_roles, universe,
                                                vo, result, pool);
  if (!r.ok()) SetError(error, r.ToString());
  return r.ok();
}

}  // namespace apqa::core

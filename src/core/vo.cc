#include "core/vo.h"

namespace apqa::core {

namespace {

void WritePoint(common::ByteWriter* w, const Point& p) {
  w->PutU32(static_cast<std::uint32_t>(p.size()));
  for (auto c : p) w->PutU32(c);
}

Point ReadPoint(common::ByteReader* r) {
  std::uint32_t n = r->GetU32();
  Point p;
  if (n > 16) return p;  // malformed
  p.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) p.push_back(r->GetU32());
  return p;
}

}  // namespace

Box EntryRegion(const VoEntry& entry) {
  if (const auto* res = std::get_if<ResultEntry>(&entry)) {
    return Box{res->key, res->key};
  }
  if (const auto* rec = std::get_if<InaccessibleRecordEntry>(&entry)) {
    return Box{rec->key, rec->key};
  }
  return std::get<InaccessibleBoxEntry>(entry).box;
}

void SerializeEntry(common::ByteWriter* w, const VoEntry& entry) {
  if (const auto* res = std::get_if<ResultEntry>(&entry)) {
    w->PutU8(0);
    WritePoint(w, res->key);
    w->PutString(res->value);
    w->PutString(res->policy.ToString());
    res->app_sig.Serialize(w);
  } else if (const auto* rec = std::get_if<InaccessibleRecordEntry>(&entry)) {
    w->PutU8(1);
    WritePoint(w, rec->key);
    w->PutBytes(rec->value_hash.data(), rec->value_hash.size());
    rec->aps_sig.Serialize(w);
  } else {
    const auto& box = std::get<InaccessibleBoxEntry>(entry);
    w->PutU8(2);
    WritePoint(w, box.box.lo);
    WritePoint(w, box.box.hi);
    box.aps_sig.Serialize(w);
  }
}

VoEntry DeserializeEntry(common::ByteReader* r) {
  std::uint8_t tag = r->GetU8();
  switch (tag) {
    case 0: {
      ResultEntry e;
      e.key = ReadPoint(r);
      e.value = r->GetString();
      auto parsed = Policy::TryParse(r->GetString());
      e.policy = parsed.has_value() ? std::move(*parsed)
                                    : Policy::Var(kPseudoRole);
      e.app_sig = Signature::Deserialize(r);
      return e;
    }
    case 1: {
      InaccessibleRecordEntry e;
      e.key = ReadPoint(r);
      r->Get(e.value_hash.data(), e.value_hash.size());
      e.aps_sig = Signature::Deserialize(r);
      return e;
    }
    default: {
      InaccessibleBoxEntry e;
      e.box.lo = ReadPoint(r);
      e.box.hi = ReadPoint(r);
      e.aps_sig = Signature::Deserialize(r);
      return e;
    }
  }
}

void Vo::Serialize(common::ByteWriter* w) const {
  w->PutU32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) SerializeEntry(w, e);
}

Vo Vo::Deserialize(common::ByteReader* r) {
  Vo vo;
  std::uint32_t n = r->GetU32();
  vo.entries.reserve(std::min<std::uint32_t>(n, 1u << 20));
  for (std::uint32_t i = 0; i < n && r->ok(); ++i) {
    vo.entries.push_back(DeserializeEntry(r));
  }
  return vo;
}

std::size_t Vo::SerializedSize() const {
  common::ByteWriter w;
  Serialize(&w);
  return w.size();
}

}  // namespace apqa::core

#include "core/vo.h"

namespace apqa::core {

void WritePoint(common::ByteWriter* w, const Point& p) {
  w->PutU32(static_cast<std::uint32_t>(p.size()));
  for (auto c : p) w->PutU32(c);
}

Point ReadPoint(common::ByteReader* r) {
  std::uint32_t n = r->GetU32();
  Point p;
  if (n > 16) {
    r->MarkBad(common::WireError::kLengthOverflow,
               "point dimensionality exceeds cap");
    return p;
  }
  p.reserve(n);
  for (std::uint32_t i = 0; i < n && r->ok(); ++i) p.push_back(r->GetU32());
  return p;
}

void WriteBox(common::ByteWriter* w, const Box& b) {
  WritePoint(w, b.lo);
  WritePoint(w, b.hi);
}

Box ReadBox(common::ByteReader* r) {
  Box b;
  b.lo = ReadPoint(r);
  b.hi = ReadPoint(r);
  if (r->ok() && !b.WellFormed()) {
    r->MarkBad(common::WireError::kMalformed, "box not well-formed");
  }
  return b;
}

namespace {

// A policy of L leaves expands into an L-row span-program matrix whose
// column count also grows with nesting, so a kilobyte of "a&a&..." could
// drive a multi-megabyte allocation at verification time. 512 leaves is an
// order of magnitude above anything the builders emit.
constexpr std::size_t kMaxPolicyLeaves = 512;

}  // namespace

Policy ReadPolicy(common::ByteReader* r) {
  std::string text = r->GetString();
  Policy fallback = Policy::Var(kPseudoRole);
  if (!r->ok()) return fallback;
  auto parsed = Policy::TryParse(text);
  if (!parsed.has_value()) {
    r->MarkBad(common::WireError::kBadPolicy, "policy failed to parse");
    return fallback;
  }
  if (parsed->Length() > kMaxPolicyLeaves) {
    r->MarkBad(common::WireError::kBadPolicy, "policy exceeds leaf cap");
    return fallback;
  }
  return std::move(*parsed);
}

Box EntryRegion(const VoEntry& entry) {
  if (const auto* res = std::get_if<ResultEntry>(&entry)) {
    return Box{res->key, res->key};
  }
  if (const auto* rec = std::get_if<InaccessibleRecordEntry>(&entry)) {
    return Box{rec->key, rec->key};
  }
  return std::get<InaccessibleBoxEntry>(entry).box;
}

void SerializeEntry(common::ByteWriter* w, const VoEntry& entry) {
  if (const auto* res = std::get_if<ResultEntry>(&entry)) {
    w->PutU8(0);
    WritePoint(w, res->key);
    w->PutString(res->value);
    w->PutString(res->policy.ToString());
    res->app_sig.Serialize(w);
  } else if (const auto* rec = std::get_if<InaccessibleRecordEntry>(&entry)) {
    w->PutU8(1);
    WritePoint(w, rec->key);
    w->PutBytes(rec->value_hash.data(), rec->value_hash.size());
    rec->aps_sig.Serialize(w);
  } else {
    const auto& box = std::get<InaccessibleBoxEntry>(entry);
    w->PutU8(2);
    WriteBox(w, box.box);
    box.aps_sig.Serialize(w);
  }
}

VoEntry DeserializeEntry(common::ByteReader* r) {
  std::uint8_t tag = r->GetU8();
  switch (tag) {
    case 0: {
      ResultEntry e;
      e.key = ReadPoint(r);
      e.value = r->GetString();
      e.policy = ReadPolicy(r);
      e.app_sig = Signature::Deserialize(r);
      return e;
    }
    case 1: {
      InaccessibleRecordEntry e;
      e.key = ReadPoint(r);
      r->Get(e.value_hash.data(), e.value_hash.size());
      e.aps_sig = Signature::Deserialize(r);
      return e;
    }
    case 2: {
      InaccessibleBoxEntry e;
      e.box = ReadBox(r);
      e.aps_sig = Signature::Deserialize(r);
      return e;
    }
    default:
      r->MarkBad(common::WireError::kUnknownTag, "unknown VO entry tag");
      return InaccessibleBoxEntry{};
  }
}

void Vo::Serialize(common::ByteWriter* w) const {
  w->PutU32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) SerializeEntry(w, e);
}

Vo Vo::Deserialize(common::ByteReader* r) {
  Vo vo;
  std::uint32_t n = r->GetU32();
  if (!r->CheckCount(n, kMinVoEntryBytes)) return vo;
  vo.entries.reserve(n);
  for (std::uint32_t i = 0; i < n && r->ok(); ++i) {
    vo.entries.push_back(DeserializeEntry(r));
  }
  return vo;
}

std::size_t Vo::SerializedSize() const {
  common::ByteWriter w;
  Serialize(&w);
  return w.size();
}

}  // namespace apqa::core

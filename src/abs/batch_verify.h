// Whole-VO batched ABS verification (ROADMAP open item 1).
//
// A verification object carries dozens of ABS signatures, and each
// Abs::Verify already folds its own column equations into one multi-pairing
// — but still pays its own Miller loops and its own ~3 ms final
// exponentiation. BatchAccumulator lifts the fold one level: every
// signature's weighted pairing equations are poured into a single
// PairingProductAccumulator, grouped by the shared prepared G2 bases the
// verification key caches (h, h0, a0, and the memoized attribute bases), so
// the whole VO costs one G1 MSM per base, two shared G2 MSMs for the
// message-side terms, and ONE final exponentiation.
//
// Soundness: each signature k draws its own fresh small-exponent weights
// delta_k, rho_{k,j} (128-bit, nonzero, from the caller's RNG). The grand
// product is then a random linear combination of all individual equations
// with independent coefficients, so a passing product implies every
// signature verifies except with probability <= n * 2^-128 — no nested
// outer weights are needed, and all MSM scalars stay ~128 bits (only the
// mu*rho message terms are full-width). Completeness is deterministic:
// valid signatures satisfy their equations identically, so the product of
// their weighted forms is exactly one.
//
// Message-side aggregation: signature k's fresh pair e(-(C g^{mu_k}),
// sum_j rho_{k,j} P_{k,j}) would need a fresh G2Prepared per signature
// (~0.8 ms each). Instead it is split over the shared G1 points C and g:
//   e(-C, sum_k sum_j rho_{k,j} P_{k,j}) * e(-g, sum_k mu_k sum_j ...)
// — two deferred G2 MSMs pairing against just two fresh G2 points. Those
// two MSMs fold the SAME points under different weights, as do the -Y
// folds against h (column-0 weight) and h0 (W-equation weight), so both
// run as shared-table multi-set MSMs (crypto::MsmShared): one table build,
// one accumulation chain per weight vector.
#ifndef APQA_ABS_BATCH_VERIFY_H_
#define APQA_ABS_BATCH_VERIFY_H_

#include <cstddef>
#include <vector>

#include "abs/abs.h"
#include "crypto/pairing_accumulator.h"

namespace apqa::abs {

class BatchAccumulator {
 public:
  using ParallelRunner = crypto::PairingProductAccumulator::ParallelRunner;

  // The key must outlive the accumulator (its precomp owns the prepared G2
  // tables the buckets point into).
  explicit BatchAccumulator(const VerifyKey& mvk) : mvk_(mvk) {}

  // Folds one signature's equations into the batch under fresh weights from
  // `rng`. Returns false — leaving the batch untouched — iff the signature
  // fails Verify's structural checks (component counts, Y != infinity);
  // those failures are deterministic, so callers can blame them without
  // running the batch. Prefer calling through Abs::AccumulateVerify.
  bool Accumulate(const std::vector<std::uint8_t>& msg,
                  const Policy& predicate, const Signature& sig, Rng* rng);

  // Number of signatures successfully accumulated.
  std::size_t Size() const { return count_; }

  // Evaluates the whole product: true iff (whp) every accumulated signature
  // is valid. The per-base G1 MSMs and the two message-side G2 MSMs fan out
  // over `runner` when provided. Single use: after Check the accumulator is
  // spent.
  bool Check(const ParallelRunner& runner = {});

 private:
  const VerifyKey& mvk_;
  crypto::PairingProductAccumulator acc_;
  // Deferred -Y folds: against h under the column-0 weight and against h0
  // under the W-equation weight — one shared-table multi-set G1 MSM.
  std::vector<G1> y_pts_;
  std::vector<Fr> y_rho0_;
  std::vector<Fr> y_delta_;
  // Deferred message-side terms: e(-C, sum rho_j P_j) and
  // e(-g, sum mu*rho_j P_j) across all signatures — one shared-table
  // multi-set G2 MSM.
  std::vector<G2> p_pts_;
  std::vector<Fr> p_rho_;
  std::vector<Fr> p_murho_;
  std::size_t count_ = 0;
};

}  // namespace apqa::abs

#endif  // APQA_ABS_BATCH_VERIFY_H_

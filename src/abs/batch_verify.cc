#include "abs/batch_verify.h"

namespace apqa::abs {

using policy::BuildMsp;
using policy::Msp;

bool BatchAccumulator::Accumulate(const std::vector<std::uint8_t>& msg,
                                  const Policy& predicate,
                                  const Signature& sig, Rng* rng) {
  // Structural checks mirror Abs::Verify exactly: the batch path must blame
  // the same signatures the sequential verifier would, and these failures
  // are deterministic (no algebra involved).
  Msp msp = BuildMsp(predicate);
  std::size_t rows = msp.Rows(), cols = msp.Cols();
  if (sig.s.size() != rows || sig.p.size() != cols) return false;
  if (sig.y.IsInfinity()) return false;

  Fr mu = internal::MessageScalar(sig.tau, msg);
  const VerifyKey::Precomp& pc = mvk_.precomp();

  // Fresh per-signature weights: delta for the W-equation, rho_j for each
  // column equation. Independence across signatures is what makes the grand
  // product a sound random linear combination — see the header comment.
  Fr delta = internal::SmallExponentWeight(rng);
  std::vector<Fr> rho(cols);
  for (auto& r : rho) r = internal::SmallExponentWeight(rng);

  // sum_j rho_j * [column j equation], fold weights kept on the scalar side:
  // the accumulator's per-base MSM absorbs (S_i, c_i) directly, so no G1
  // scalar multiplication happens here at all.
  for (std::size_t i = 0; i < rows; ++i) {
    Fr ci = Fr::Zero();
    for (std::size_t j = 0; j < cols; ++j) {
      if (msp.m[i][j] == 1) {
        ci = ci + rho[j];
      } else if (msp.m[i][j] == -1) {
        ci = ci - rho[j];
      }
    }
    if (!ci.IsZero()) {
      const crypto::G2Prepared& xi =
          mvk_.AttributeBasePrepared(RoleScalar(msp.row_labels[i]));
      acc_.Add(&xi, sig.s[i], ci);
    }
  }
  // e(Y, h)^{-rho_0} from column 0 and e(Y, h0)^{-delta} from the
  // W-equation share the point -Y: deferred to one multi-set MSM in Check.
  y_pts_.push_back(-sig.y);
  y_rho0_.push_back(rho[0]);
  y_delta_.push_back(delta);
  // delta * e(W, A0) side of the W-equation.
  acc_.Add(&pc.a0_prep, sig.w, delta);
  // Message side, deferred: e(-(C g^mu), sum_j rho_j P_j) splits into
  // e(-C, .)^{rho_j} and e(-g, .)^{mu rho_j} terms of two shared G2 MSMs.
  for (std::size_t j = 0; j < cols; ++j) {
    p_pts_.push_back(sig.p[j]);
    p_rho_.push_back(rho[j]);
    p_murho_.push_back(mu * rho[j]);
  }
  ++count_;
  return true;
}

bool BatchAccumulator::Check(const ParallelRunner& runner) {
  const VerifyKey::Precomp& pc = mvk_.precomp();
  // The two multi-set folds are independent of each other (and of the
  // per-base MSMs IsOne runs), so fan them out when a runner is supplied.
  std::vector<G1> yf;
  std::vector<G2> pf;
  auto fold = [&](std::size_t t) {
    if (t == 0) {
      std::vector<Fr> sets[] = {std::move(y_rho0_), std::move(y_delta_)};
      yf = crypto::G1MsmShared(std::span<const G1>(y_pts_),
                               std::span<const std::vector<Fr>>(sets, 2));
    } else {
      std::vector<Fr> sets[] = {std::move(p_rho_), std::move(p_murho_)};
      pf = crypto::G2MsmShared(std::span<const G2>(p_pts_),
                               std::span<const std::vector<Fr>>(sets, 2));
    }
  };
  if (runner) {
    runner(2, fold);
  } else {
    fold(0);
    fold(1);
  }
  if (!yf.empty()) {
    acc_.Add(&pc.h_prep, yf[0], Fr::One());
    acc_.Add(&pc.h0_prep, yf[1], Fr::One());
  }
  if (!pf.empty()) {
    acc_.AddFresh(-mvk_.c, pf[0]);
    acc_.AddFresh(-mvk_.g, pf[1]);
  }
  return acc_.IsOne(runner);
}

bool Abs::AccumulateVerify(const VerifyKey& mvk,
                           const std::vector<std::uint8_t>& msg,
                           const Policy& predicate, const Signature& sig,
                           Rng* rng, BatchAccumulator* acc) {
  (void)mvk;  // the accumulator is bound to its key at construction
  return acc->Accumulate(msg, predicate, sig, rng);
}

}  // namespace apqa::abs

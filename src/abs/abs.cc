#include "abs/abs.h"

#include "crypto/serde.h"
#include "crypto/sha256.h"

namespace apqa::abs {

using crypto::HashToFr;
using policy::BuildMsp;
using policy::Msp;
using policy::Purge;
using policy::PurgeResult;
using policy::SatisfyingVector;

namespace internal {

Fr MessageScalar(const std::array<std::uint8_t, 32>& tau,
                 const std::vector<std::uint8_t>& msg) {
  std::vector<std::uint8_t> buf;
  buf.reserve(tau.size() + msg.size());
  buf.insert(buf.end(), tau.begin(), tau.end());
  buf.insert(buf.end(), msg.begin(), msg.end());
  return HashToFr(buf.data(), buf.size());
}

G1 MessageBase(const VerifyKey& mvk, const Fr& mu) {
  return mvk.c + mvk.precomp().g_tab.Mul(mu);
}

Fr SmallExponentWeight(Rng* rng) {
  crypto::Limbs<4> l{};
  do {
    l[0] = rng->NextU64();
    l[1] = rng->NextU64();
  } while (l[0] == 0 && l[1] == 0);
  return Fr::FromCanonical(l);
}

}  // namespace internal

namespace {

using internal::MessageBase;
using internal::MessageScalar;

// Table-backed constant-pattern multiply with a fallback for keys assembled
// by hand (tests, deserialization paths) whose tables were never built. The
// scalar is a blinding secret, so both paths are constant-pattern ladders.
G1 MulCtByTable(const crypto::FixedBaseTable<crypto::Fp>& tab, const G1& base,
                const SecretFr& k) {
  return tab.Initialized() ? tab.MulCt(k) : crypto::CtScalarMul(base, k);
}

}  // namespace

Fr RoleScalar(const std::string& role) {
  std::string tagged = "apqa-role:" + role;
  return HashToFr(tagged);
}

const VerifyKey::Precomp& VerifyKey::precomp() const {
  static std::mutex build_mu;
  std::lock_guard<std::mutex> lock(build_mu);
  if (!precomp_) {
    auto pc = std::make_shared<Precomp>();
    pc->g_tab = crypto::FixedBaseTable<crypto::Fp>(g);
    pc->c_tab = crypto::FixedBaseTable<crypto::Fp>(c);
    pc->a_tab = crypto::FixedBaseTable<crypto::Fp2>(a);
    pc->b_tab = crypto::FixedBaseTable<crypto::Fp2>(b);
    pc->h0_prep = crypto::G2Prepared(h0);
    pc->h_prep = crypto::G2Prepared(h);
    pc->a0_prep = crypto::G2Prepared(a0);
    precomp_ = std::move(pc);
  }
  return *precomp_;
}

const crypto::G2Prepared& VerifyKey::AttributeBasePrepared(const Fr& u) const {
  const Precomp& pc = precomp();
  crypto::Limbs<4> key = u.ToCanonical();
  {
    std::lock_guard<std::mutex> lock(pc.attr_mu);
    auto it = pc.attr_prep.find(key);
    if (it != pc.attr_prep.end()) return it->second;
  }
  // Build outside the lock (table construction is the expensive part);
  // emplace keeps the first insertion on a race, and map-node stability
  // makes the returned reference long-lived.
  crypto::G2Prepared prep(a + pc.b_tab.Mul(u));
  std::lock_guard<std::mutex> lock(pc.attr_mu);
  return pc.attr_prep.emplace(key, std::move(prep)).first->second;
}

const crypto::GT& VerifyKey::GeneratorPairing() const {
  const Precomp& pc = precomp();
  std::call_once(pc.gen_pairing_once,
                 [&] { pc.gen_pairing = crypto::PairWith(g, pc.h_prep); });
  return pc.gen_pairing;
}

G2 VerifyKey::AttributeBase(const Fr& u) const {
  const Precomp& pc = precomp();
  crypto::Limbs<4> key = u.ToCanonical();
  {
    std::lock_guard<std::mutex> lock(pc.attr_mu);
    auto it = pc.attr_base.find(key);
    if (it != pc.attr_base.end()) return it->second;
  }
  G2 base = a + pc.b_tab.Mul(u);
  std::lock_guard<std::mutex> lock(pc.attr_mu);
  pc.attr_base.emplace(key, base);
  return base;
}

void VerifyKey::Serialize(common::ByteWriter* w) const {
  crypto::WriteG1(w, g);
  crypto::WriteG1(w, c);
  crypto::WriteG2(w, h0);
  crypto::WriteG2(w, h);
  crypto::WriteG2(w, a0);
  crypto::WriteG2(w, a);
  crypto::WriteG2(w, b);
}

VerifyKey VerifyKey::Deserialize(common::ByteReader* r) {
  VerifyKey k;
  k.g = crypto::ReadG1(r);
  k.c = crypto::ReadG1(r);
  k.h0 = crypto::ReadG2(r);
  k.h = crypto::ReadG2(r);
  k.a0 = crypto::ReadG2(r);
  k.a = crypto::ReadG2(r);
  k.b = crypto::ReadG2(r);
  return k;
}

bool SigningKey::Covers(const RoleSet& roles) const {
  for (const auto& r : roles) {
    if (k_attr.find(r) == k_attr.end()) return false;
  }
  return true;
}

void Signature::Serialize(common::ByteWriter* w_) const {
  w_->PutBytes(tau.data(), tau.size());
  crypto::WriteG1(w_, y);
  crypto::WriteG1(w_, w);
  w_->PutU32(static_cast<std::uint32_t>(s.size()));
  for (const G1& e : s) crypto::WriteG1(w_, e);
  w_->PutU32(static_cast<std::uint32_t>(p.size()));
  for (const G2& e : p) crypto::WriteG2(w_, e);
}

Signature Signature::Deserialize(common::ByteReader* r) {
  Signature sig;
  r->Get(sig.tau.data(), sig.tau.size());
  sig.y = crypto::ReadG1(r);
  sig.w = crypto::ReadG1(r);
  std::uint32_t ns = r->GetU32();
  // A G1 element takes at least one byte on the wire; element counts beyond
  // the remaining bytes are corrupt. Guards reserve() from hostile counts.
  if (!r->CheckCount(ns, 1)) return sig;
  sig.s.reserve(ns);
  for (std::uint32_t i = 0; i < ns && r->ok(); ++i) {
    sig.s.push_back(crypto::ReadG1(r));
  }
  std::uint32_t np = r->GetU32();
  if (!r->CheckCount(np, 1)) return sig;
  sig.p.reserve(np);
  for (std::uint32_t i = 0; i < np && r->ok(); ++i) {
    sig.p.push_back(crypto::ReadG2(r));
  }
  return sig;
}

std::size_t Signature::SerializedSize() const {
  common::ByteWriter bw;
  Serialize(&bw);
  return bw.size();
}

void Abs::Setup(Rng* rng, MasterKey* msk, VerifyKey* mvk) {
  // The ephemeral discrete logs of g/c/h0/h are never stored, but knowing
  // one would break soundness, so they take the constant-pattern generator
  // path too.
  msk->a0 = rng->NextNonZeroSecretFr();
  msk->a = rng->NextNonZeroSecretFr();
  msk->b = rng->NextNonZeroSecretFr();
  mvk->g = crypto::CtG1Mul(rng->NextNonZeroSecretFr());
  mvk->c = crypto::CtG1Mul(rng->NextNonZeroSecretFr());
  mvk->h0 = crypto::CtG2Mul(rng->NextNonZeroSecretFr());
  mvk->h = crypto::CtG2Mul(rng->NextNonZeroSecretFr());
  mvk->a0 = crypto::CtScalarMul(mvk->h0, msk->a0);
  mvk->a = crypto::CtScalarMul(mvk->h, msk->a);
  mvk->b = crypto::CtScalarMul(mvk->h, msk->b);
  mvk->precomp();  // warm the fixed-base tables while setup owns the key
}

SigningKey Abs::KeyGen(const MasterKey& msk, const RoleSet& attrs, Rng* rng) {
  SigningKey sk;
  sk.k_base = crypto::CtG1Mul(rng->NextNonZeroSecretFr());
  sk.k_base_tab = crypto::FixedBaseTable<crypto::Fp>(sk.k_base);
  sk.k0 = sk.k_base_tab.MulCt(crypto::CtInverse(msk.a0));
  sk.k0_tab = crypto::FixedBaseTable<crypto::Fp>(sk.k0);
  for (const auto& role : attrs) {
    Fr u = RoleScalar(role);
    SecretFr exp = crypto::CtInverse(msk.a + msk.b * u);
    sk.k_attr[role] = sk.k_base_tab.MulCt(exp);
  }
  return sk;
}

std::optional<Signature> Abs::Sign(const VerifyKey& mvk, const SigningKey& sk,
                                   const std::vector<std::uint8_t>& msg,
                                   const Policy& predicate, Rng* rng) {
  Msp msp = BuildMsp(predicate);
  RoleSet owned;
  for (const auto& [role, key] : sk.k_attr) owned.insert(role);
  auto v = SatisfyingVector(predicate, owned);
  if (!v.has_value()) return std::nullopt;

  Signature sig;
  rng->Fill(sig.tau.data(), sig.tau.size());
  Fr mu = MessageScalar(sig.tau, msg);
  const VerifyKey::Precomp& pc = mvk.precomp();

  SecretFr r0 = rng->NextNonZeroSecretFr();
  sig.y = MulCtByTable(sk.k_base_tab, sk.k_base, r0);
  sig.w = MulCtByTable(sk.k0_tab, sk.k0, r0);

  std::size_t rows = msp.Rows(), cols = msp.Cols();
  std::vector<SecretFr> ri(rows);
  for (auto& r : ri) r = rng->NextNonZeroSecretFr();

  sig.s.resize(rows);
  std::vector<G2> ti(rows);  // (A * B^{u_i})^{r_i}
  for (std::size_t i = 0; i < rows; ++i) {
    // (C g^mu)^{r_i} and (A B^{u_i})^{r_i}, each split over the fixed-base
    // tables of the key components; blinding scalars stay on the
    // constant-pattern ladder throughout. The (*v)[i] branch itself is
    // quarantined: it reveals which owned attributes satisfy the predicate
    // (an attribute-usage pattern), not key material — see DESIGN.md.
    G1 si = pc.c_tab.MulCt(ri[i]) + pc.g_tab.MulCt(mu * ri[i]);
    if ((*v)[i] != 0) {
      si = si + crypto::CtScalarMul(sk.k_attr.at(msp.row_labels[i]), r0);
    }
    sig.s[i] = si;
    Fr ui = RoleScalar(msp.row_labels[i]);
    ti[i] = pc.a_tab.MulCt(ri[i]) + pc.b_tab.MulCt(ui * ri[i]);
  }

  sig.p.assign(cols, G2::Infinity());
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < rows; ++i) {
      if (msp.m[i][j] == 1) {
        sig.p[j] = sig.p[j] + ti[i];
      } else if (msp.m[i][j] == -1) {
        sig.p[j] = sig.p[j] - ti[i];
      }
    }
  }
  return sig;
}

bool Abs::Verify(const VerifyKey& mvk, const std::vector<std::uint8_t>& msg,
                 const Policy& predicate, const Signature& sig, bool exact) {
  Msp msp = BuildMsp(predicate);
  std::size_t rows = msp.Rows(), cols = msp.Cols();
  if (sig.s.size() != rows || sig.p.size() != cols) return false;
  if (sig.y.IsInfinity()) return false;

  Fr mu = MessageScalar(sig.tau, msg);
  G1 cg = MessageBase(mvk, mu);

  // All fixed G2 pairing inputs come from cached line tables: h0/h/a0 from
  // the key's precomp, the per-row bases A * B^{u_i} from the prepared
  // memo. Only the signature's P_j components pair as fresh G2 points.
  const VerifyKey::Precomp& pc = mvk.precomp();
  std::vector<const crypto::G2Prepared*> xi(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    xi[i] = &mvk.AttributeBasePrepared(RoleScalar(msp.row_labels[i]));
  }

  if (exact) {
    // e(W, A0) == e(Y, h0)
    if (!crypto::MultiPairingPrepared(
             {{sig.w, &pc.a0_prep}, {-sig.y, &pc.h0_prep}})
             .IsOne()) {
      return false;
    }
    for (std::size_t j = 0; j < cols; ++j) {
      std::vector<crypto::PreparedPair> pairs;
      for (std::size_t i = 0; i < rows; ++i) {
        if (msp.m[i][j] == 1) {
          pairs.push_back({sig.s[i], xi[i]});
        } else if (msp.m[i][j] == -1) {
          pairs.push_back({-sig.s[i], xi[i]});
        }
      }
      if (j == 0) pairs.push_back({-sig.y, &pc.h_prep});
      if (!crypto::MultiPairingPrepared(pairs, {{-cg, sig.p[j]}}).IsOne()) {
        return false;
      }
    }
    return true;
  }

  // Batched verification: fold the W-equation (weight delta) and all t
  // column equations (weights rho_j) into a single pairing product. The
  // batching weights stay plain Fr (variable-time folds): they are drawn
  // fresh after the signature is fixed and protect only this call's
  // soundness, so leaking them post-hoc is harmless — quarantined in
  // DESIGN.md.
  //
  // Small-exponent batching (Bellare–Garay–Rabin): 128-bit nonzero weights
  // keep the per-call forgery bound at 2^-128 while halving every weight
  // multiplication, since the wNAF ladder length tracks the scalar
  // magnitude.
  Rng rng;  // fresh OS-seeded randomness for the batching weights
  Fr delta = internal::SmallExponentWeight(&rng);
  std::vector<Fr> rho(cols);
  for (auto& r : rho) r = internal::SmallExponentWeight(&rng);

  std::vector<crypto::PreparedPair> pairs;
  pairs.reserve(rows + 3);
  // sum_j rho_j * [column j equation], fold weights on the G1 side as in
  // VerifyUnprepared below.
  for (std::size_t i = 0; i < rows; ++i) {
    Fr ci = Fr::Zero();
    for (std::size_t j = 0; j < cols; ++j) {
      if (msp.m[i][j] == 1) {
        ci = ci + rho[j];
      } else if (msp.m[i][j] == -1) {
        ci = ci - rho[j];
      }
    }
    if (!ci.IsZero()) pairs.push_back({sig.s[i].ScalarMul(ci), xi[i]});
  }
  G2 psum = crypto::G2Msm(std::span<const G2>(sig.p.data(), cols),
                          std::span<const Fr>(rho.data(), cols));
  pairs.push_back({-sig.y.ScalarMul(rho[0]), &pc.h_prep});
  // delta * [e(W, A0) == e(Y, h0)]
  pairs.push_back({sig.w.ScalarMul(delta), &pc.a0_prep});
  pairs.push_back({-sig.y.ScalarMul(delta), &pc.h0_prep});
  return crypto::MultiPairingPrepared(pairs, {{-cg, psum}}).IsOne();
}

bool Abs::VerifyUnprepared(const VerifyKey& mvk,
                           const std::vector<std::uint8_t>& msg,
                           const Policy& predicate, const Signature& sig,
                           bool exact) {
  // Pre-engine path: on-the-fly MultiPairing, no cached line tables. Kept
  // as the same-run bench baseline and as the differential oracle against
  // the prepared path above.
  Msp msp = BuildMsp(predicate);
  std::size_t rows = msp.Rows(), cols = msp.Cols();
  if (sig.s.size() != rows || sig.p.size() != cols) return false;
  if (sig.y.IsInfinity()) return false;

  Fr mu = MessageScalar(sig.tau, msg);
  G1 cg = MessageBase(mvk, mu);

  std::vector<G2> xi(rows);  // A * B^{u_i}
  for (std::size_t i = 0; i < rows; ++i) {
    xi[i] = mvk.AttributeBase(RoleScalar(msp.row_labels[i]));
  }

  if (exact) {
    // e(W, A0) == e(Y, h0)
    if (!crypto::MultiPairing({{sig.w, mvk.a0}, {-sig.y, mvk.h0}}).IsOne()) {
      return false;
    }
    for (std::size_t j = 0; j < cols; ++j) {
      std::vector<std::pair<G1, G2>> pairs;
      for (std::size_t i = 0; i < rows; ++i) {
        if (msp.m[i][j] == 1) {
          pairs.emplace_back(sig.s[i], xi[i]);
        } else if (msp.m[i][j] == -1) {
          pairs.emplace_back(-sig.s[i], xi[i]);
        }
      }
      if (j == 0) pairs.emplace_back(-sig.y, mvk.h);
      pairs.emplace_back(-cg, sig.p[j]);
      if (!crypto::MultiPairing(pairs).IsOne()) return false;
    }
    return true;
  }

  // Batched verification: fold the W-equation (weight delta) and all t
  // column equations (weights rho_j) into a single pairing product. The
  // batching weights stay plain Fr (variable-time folds): they are drawn
  // fresh after the signature is fixed and protect only this call's
  // soundness, so leaking them post-hoc is harmless — quarantined in
  // DESIGN.md.
  Rng rng;  // fresh OS-seeded randomness for the batching weights
  Fr delta = rng.NextNonZeroFr();
  std::vector<Fr> rho(cols);
  for (auto& r : rho) r = rng.NextNonZeroFr();

  std::vector<std::pair<G1, G2>> pairs;
  pairs.reserve(rows + 4);
  // sum_j rho_j * [column j equation]:
  //   prod_i e(S_i, X_i)^{sum_j M_ij rho_j}
  //     == e(Y, h)^{rho_0} * e(cg, sum_j rho_j P_j)
  // The fold weight is applied on the G1 side (e(S_i^{c_i}, X_i)) where a
  // scalar multiplication is ~3x cheaper than in G2.
  for (std::size_t i = 0; i < rows; ++i) {
    Fr ci = Fr::Zero();
    for (std::size_t j = 0; j < cols; ++j) {
      if (msp.m[i][j] == 1) {
        ci = ci + rho[j];
      } else if (msp.m[i][j] == -1) {
        ci = ci - rho[j];
      }
    }
    if (!ci.IsZero()) pairs.emplace_back(sig.s[i].ScalarMul(ci), xi[i]);
  }
  G2 psum = crypto::G2Msm(std::span<const G2>(sig.p.data(), cols),
                          std::span<const Fr>(rho.data(), cols));
  pairs.emplace_back(-sig.y.ScalarMul(rho[0]), mvk.h);
  pairs.emplace_back(-cg, psum);
  // delta * [e(W, A0) == e(Y, h0)]
  pairs.emplace_back(sig.w.ScalarMul(delta), mvk.a0);
  pairs.emplace_back(-sig.y.ScalarMul(delta), mvk.h0);
  return crypto::MultiPairing(pairs).IsOne();
}

std::optional<Signature> Abs::Relax(const VerifyKey& mvk, const Signature& sig,
                                    const Policy& predicate,
                                    const std::vector<std::uint8_t>& msg,
                                    const RoleSet& relax_to, Rng* rng) {
  Msp msp = BuildMsp(predicate);
  if (sig.s.size() != msp.Rows() || sig.p.size() != msp.Cols()) {
    return std::nullopt;
  }
  // Step 1: purge attributes absent from relax_to.
  PurgeResult purge = Purge(predicate, relax_to);
  if (!purge.ok) return std::nullopt;

  Fr mu = MessageScalar(sig.tau, msg);
  const VerifyKey::Precomp& pc = mvk.precomp();

  G2 p1 = G2::Infinity();
  for (std::size_t j : purge.kept_cols) p1 = p1 + sig.p[j];

  // Step 2 (merge duplicates) + Step 3 (append missing attributes). The new
  // predicate ∨_{a∈relax_to} a has one row per role, ordered like RoleSet
  // (lexicographically) — the same order BuildMsp produces for
  // Policy::OrOfRoles(relax_to).
  Signature out;
  out.tau = sig.tau;
  out.y = sig.y;
  out.w = sig.w;
  out.s.reserve(relax_to.size());
  for (const auto& role : relax_to) {
    G1 merged = G1::Infinity();
    bool found = false;
    for (std::size_t k : purge.kept_rows) {
      if (msp.row_labels[k] == role) {
        merged = merged + sig.s[k];
        found = true;
      }
    }
    if (!found) {
      SecretFr r = rng->NextNonZeroSecretFr();
      // (C g^mu)^r and (A B^u)^r via the key-component tables.
      merged = pc.c_tab.MulCt(r) + pc.g_tab.MulCt(mu * r);
      Fr u = RoleScalar(role);
      p1 = p1 + pc.a_tab.MulCt(r) + pc.b_tab.MulCt(u * r);
    }
    out.s.push_back(merged);
  }

  // Step 4: re-randomize so the output is distributed like a fresh
  // signature on the relaxed predicate. Leaking rho would link the APS
  // signature back to the APP original, so the re-randomization stays on
  // the constant-pattern ladder.
  SecretFr rho = rng->NextNonZeroSecretFr();
  out.y = crypto::CtScalarMul(out.y, rho);
  out.w = crypto::CtScalarMul(out.w, rho);
  for (G1& si : out.s) si = crypto::CtScalarMul(si, rho);
  out.p = {crypto::CtScalarMul(p1, rho)};
  return out;
}

}  // namespace apqa::abs

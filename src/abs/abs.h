// Attribute-based signatures with predicate relaxation (paper §5.2).
//
// A variant of the Maji–Prabhakaran–Rosulek practical ABS instantiation in
// which the service provider, holding only a signature, can *relax* its
// claim-predicate Υ to a disjunction ∨_{a∈𝒜′} a — provided Υ(𝔸\𝒜′)=0 — and
// re-randomize, yielding a signature distributed identically to a fresh one
// (perfect privacy). This is the primitive behind APP → APS signature
// derivation.
//
// Groups: 𝔾 = G1, ℍ = G2 of BLS12-381; messages are arbitrary byte strings.
#ifndef APQA_ABS_ABS_H_
#define APQA_ABS_ABS_H_

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/serde.h"
#include "crypto/msm.h"
#include "crypto/pairing.h"
#include "crypto/pairing_prepared.h"
#include "crypto/rng.h"
#include "policy/msp.h"
#include "policy/policy.h"

namespace apqa::abs {

using crypto::Fr;
using crypto::G1;
using crypto::G2;
using crypto::Rng;
using crypto::SecretFr;
using policy::Policy;
using policy::RoleSet;

// Master verification key mvk = (g, h0, h, A0, A, B, C).
struct VerifyKey {
  G1 g, c;
  G2 h0, h, a0, a, b;

  void Serialize(common::ByteWriter* w) const;
  static VerifyKey Deserialize(common::ByteReader* r);

  // h^(a + b*u) for an attribute scalar u — the per-row base used by both
  // signing and verification. Served from the precomputed B table plus a
  // per-scalar memo (verification keys are long-lived and see the same
  // role scalars over and over).
  G2 AttributeBase(const Fr& u) const;

  // Prepared-pairing table for h^(a + b*u), memoized like AttributeBase.
  // The returned reference stays valid for the key's lifetime (map nodes
  // are stable) and the table is immutable once built, so it is safe to
  // share read-only across verifier threads.
  const crypto::G2Prepared& AttributeBasePrepared(const Fr& u) const;

  // Memoized constant e(g, h) — the generator pairing warmed alongside the
  // prepared tables so callers (warm-up paths, benches, tests) never
  // re-derive it.
  const crypto::GT& GeneratorPairing() const;

  // Fixed-base tables for the key components that every sign/relax/verify
  // multiplies: G = g, C = c over G1 and A = h^a, B = h^b over G2 — plus
  // prepared-pairing line tables for the fixed G2 pairing inputs h0/h/a0,
  // so verification never redoes their Miller-loop G2 arithmetic.
  // Built lazily on first use and shared by copies taken afterwards.
  struct Precomp {
    crypto::FixedBaseTable<crypto::Fp> g_tab, c_tab;
    crypto::FixedBaseTable<crypto::Fp2> a_tab, b_tab;
    crypto::G2Prepared h0_prep, h_prep, a0_prep;
    mutable std::mutex attr_mu;
    mutable std::map<crypto::Limbs<4>, G2> attr_base;  // keyed by canonical u
    mutable std::map<crypto::Limbs<4>, crypto::G2Prepared> attr_prep;
    mutable std::once_flag gen_pairing_once;
    mutable crypto::GT gen_pairing;  // e(g, h), built on first use
  };
  const Precomp& precomp() const;

 private:
  mutable std::shared_ptr<const Precomp> precomp_;
};

// Master signing key msk = (a0, a, b). The scalars are taint-typed: they
// can be combined arithmetically and fed to the constant-pattern ladders
// (MulCt / CtScalarMul / CtInverse), but passing one to a variable-time
// scalar path is a compile error without an explicit Declassify().
struct MasterKey {
  SecretFr a0, a, b;
};

// Per-attribute-set signing key.
struct SigningKey {
  G1 k_base;
  G1 k0;
  std::map<std::string, G1> k_attr;  // K_u = K_base^(1/(a+b*u)) by role name

  // Fixed-base tables for K_base and K_0, built by KeyGen: a signing key
  // typically signs an entire AP²G-tree, so both bases are multiplied once
  // per record/node.
  crypto::FixedBaseTable<crypto::Fp> k_base_tab, k0_tab;

  bool Covers(const RoleSet& roles) const;
};

// Signature sigma = (tau, Y, W, S_1..S_l, P_1..P_t) on a claim-predicate
// carried externally. Row labels of the predicate's span program order the
// S_i components.
struct Signature {
  std::array<std::uint8_t, 32> tau{};
  G1 y, w;
  std::vector<G1> s;
  std::vector<G2> p;

  void Serialize(common::ByteWriter* w_) const;
  static Signature Deserialize(common::ByteReader* r);
  std::size_t SerializedSize() const;

  // Smallest possible wire footprint: tau (32) + y, w as infinity flags
  // (1 each) + two empty vector counts (4 each). Used to clamp hostile
  // element counts before allocating.
  static constexpr std::size_t kMinSerializedSize = 32 + 1 + 1 + 4 + 4;
};

// Maps a role name to its attribute scalar (SHA-256 into Fr).
Fr RoleScalar(const std::string& role);

class BatchAccumulator;

namespace internal {

// mu = H(tau || msg) as an Fr scalar.
Fr MessageScalar(const std::array<std::uint8_t, 32>& tau,
                 const std::vector<std::uint8_t>& msg);

// C * g^mu, the message-binding base.
G1 MessageBase(const VerifyKey& mvk, const Fr& mu);

// A nonzero 128-bit batching weight (Bellare–Garay–Rabin small exponent):
// keeps the per-equation forgery bound at 2^-128 while halving the weight
// multiplications, since wNAF ladder length tracks scalar magnitude.
Fr SmallExponentWeight(Rng* rng);

}  // namespace internal

class Abs {
 public:
  // ABS.Setup.
  static void Setup(Rng* rng, MasterKey* msk, VerifyKey* mvk);

  // ABS.KeyGen: signing key able to sign for any predicate satisfied by
  // `attrs`.
  static SigningKey KeyGen(const MasterKey& msk, const RoleSet& attrs,
                           Rng* rng);

  // ABS.Sign: requires predicate(attrs of sk) = 1 (i.e. a satisfying vector
  // exists over the attributes present in sk). Returns nullopt otherwise.
  static std::optional<Signature> Sign(const VerifyKey& mvk,
                                       const SigningKey& sk,
                                       const std::vector<std::uint8_t>& msg,
                                       const Policy& predicate, Rng* rng);

  // ABS.Verify. `exact` checks every span-program column equation separately
  // (slower); the default folds them with random weights into a single
  // multi-pairing (standard batching, sound up to 2^-128). Both paths run
  // on the prepared-pairing engine: line tables for the fixed mvk
  // components and memoized attribute bases are reused across calls.
  static bool Verify(const VerifyKey& mvk, const std::vector<std::uint8_t>& msg,
                     const Policy& predicate, const Signature& sig,
                     bool exact = false);

  // Whole-VO batched verification: performs the same structural checks as
  // Verify, then accumulates this signature's pairing equations — weighted
  // with fresh 128-bit small exponents from `rng` — into `acc` instead of
  // evaluating them. Returns false (leaving `acc` untouched) on a structural
  // mismatch; a true return means the signature is valid iff the
  // accumulator's whole product later checks out (BatchAccumulator::Check).
  static bool AccumulateVerify(const VerifyKey& mvk,
                               const std::vector<std::uint8_t>& msg,
                               const Policy& predicate, const Signature& sig,
                               Rng* rng, BatchAccumulator* acc);

  // The pre-engine verifier (on-the-fly MultiPairing, no cached G2 tables).
  // Kept as the same-run baseline for benches and as a differential oracle
  // for tests, mirroring MillerLoopGeneric's role in the crypto layer.
  static bool VerifyUnprepared(const VerifyKey& mvk,
                               const std::vector<std::uint8_t>& msg,
                               const Policy& predicate, const Signature& sig,
                               bool exact = false);

  // ABS.Relax (Algorithm 2): derives a signature on ∨_{a∈relax_to} a from a
  // signature on `predicate`. Fails iff predicate(𝔸 \ relax_to) = 1.
  static std::optional<Signature> Relax(const VerifyKey& mvk,
                                        const Signature& sig,
                                        const Policy& predicate,
                                        const std::vector<std::uint8_t>& msg,
                                        const RoleSet& relax_to, Rng* rng);
};

}  // namespace apqa::abs

#endif  // APQA_ABS_ABS_H_

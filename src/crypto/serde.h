// Serialization of field and group elements.
//
// Group points are stored as affine coordinates in canonical (non-Montgomery)
// little-endian limb form with a leading infinity flag. Sizes:
//   Fr  32 bytes, Fp 48 bytes, G1 1+96 bytes, G2 1+192 bytes.
#ifndef APQA_CRYPTO_SERDE_H_
#define APQA_CRYPTO_SERDE_H_

#include "common/serde.h"
#include "crypto/curve.h"
#include "crypto/fp12.h"

namespace apqa::crypto {

void WriteFr(common::ByteWriter* w, const Fr& v);
Fr ReadFr(common::ByteReader* r);

void WriteFp(common::ByteWriter* w, const Fp& v);
Fp ReadFp(common::ByteReader* r);

void WriteG1(common::ByteWriter* w, const G1& p);
G1 ReadG1(common::ByteReader* r);

void WriteG2(common::ByteWriter* w, const G2& p);
G2 ReadG2(common::ByteReader* r);

void WriteGT(common::ByteWriter* w, const Fp12& v);
Fp12 ReadGT(common::ByteReader* r);

// Derives an Fr scalar from arbitrary bytes via SHA-256 (255-bit mask then
// reduce; bias is negligible for protocol purposes).
Fr HashToFr(const void* data, std::size_t n);
Fr HashToFr(const std::string& s);

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_SERDE_H_

// SHA-256 (FIPS 180-4).
#ifndef APQA_CRYPTO_SHA256_H_
#define APQA_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace apqa::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void Update(const void* data, std::size_t n);
  void Update(std::string_view s) { Update(s.data(), s.size()); }
  void Update(const std::vector<std::uint8_t>& v) { Update(v.data(), v.size()); }
  Digest Finish();

  static Digest Hash(std::string_view s);
  static Digest Hash(const void* data, std::size_t n);

 private:
  void Compress(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> h_;
  std::uint64_t total_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_;
};

std::string DigestToHex(const Digest& d);

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_SHA256_H_

// Scalar-multiplication engine: batched inversion, batch affine
// normalization, fixed-base windowed tables, and Pippenger multi-scalar
// multiplication. Everything APQA does — ABS sign/relax/verify, AP²G-tree
// signing, CP-ABE sealing — bottoms out in these kernels.
//
//   BatchInverse    — Montgomery's trick: n inversions for the price of one
//                     plus 3(n-1) multiplications. Zero entries stay zero
//                     (mirroring PrimeField::Inverse).
//   BatchToAffine   — normalizes many Jacobian points with one inversion.
//   FixedBaseTable  — radix-16 windowed table for a long-lived base: one
//                     mixed addition per 4 scalar bits, no doublings.
//   Msm / G1Msm / G2Msm — Pippenger's bucket method with a naive fallback
//                     below a size cutoff.
//
// The fast paths here are NOT constant time (wNAF digit skips, per-digit
// table indexing, Pippenger bucketing) and therefore take plain `Fr`
// scalars only: a `SecretFr` (crypto/ct.h) does not convert and hits a
// deleted overload, so secrets cannot reach them without an explicit
// `Declassify()`. Secret exponents use `FixedBaseTable::MulCt`, which walks
// the same precomputed tables with a full-scan masked select and complete
// addition formulas — identical memory-access pattern for every scalar.
#ifndef APQA_CRYPTO_MSM_H_
#define APQA_CRYPTO_MSM_H_

#include <span>
#include <vector>

#include "crypto/ct.h"
#include "crypto/curve.h"

namespace apqa::crypto {

// In-place batched inversion (Montgomery's trick). Zero entries are skipped
// and remain zero.
template <typename F>
void BatchInverse(F* xs, std::size_t n) {
  if (n == 0) return;
  std::vector<F> prefix(n);
  F acc = F::One();
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i].IsZero()) continue;
    prefix[i] = acc;
    acc = acc * xs[i];
  }
  F inv = acc.Inverse();
  for (std::size_t i = n; i-- > 0;) {
    if (xs[i].IsZero()) continue;
    F saved = xs[i];
    xs[i] = inv * prefix[i];
    inv = inv * saved;
  }
}

// Normalizes every point to Z = 1 (affine) in place, sharing a single field
// inversion across the whole span. Points at infinity are left untouched.
template <typename F>
void BatchToAffine(std::span<CurvePoint<F>> pts) {
  std::vector<F> zs(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) zs[i] = pts[i].z;
  BatchInverse(zs.data(), zs.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].IsInfinity()) continue;
    F zi2 = zs[i].Square();
    pts[i].x = pts[i].x * zi2;
    pts[i].y = pts[i].y * zi2 * zs[i];
    pts[i].z = F::One();
  }
}

// Fixed-base precomputation for a long-lived base point (a generator, an ABS
// verification-key component, a signing-key base). Stores the odd and even
// multiples d * 16^w * P (d = 1..15) for each of the 64 radix-16 windows of
// an Fr scalar, normalized to affine with one shared inversion. A multiply
// is then at most 64 mixed additions — no doublings, no per-call table
// build. ~450 KB for G2, half that for G1; worth it only for bases that are
// multiplied many times.
template <typename F>
class FixedBaseTable {
 public:
  static constexpr std::size_t kWindowBits = 4;
  static constexpr std::size_t kWindows = 64;   // ceil(256 / 4)
  static constexpr std::size_t kEntries = 15;   // digits 1..15

  FixedBaseTable() = default;

  explicit FixedBaseTable(const CurvePoint<F>& base) {
    if (base.IsInfinity()) {
      infinity_base_ = true;
      return;
    }
    std::vector<CurvePoint<F>> pts(kWindows * kEntries);
    CurvePoint<F> window_base = base;  // 16^w * P
    for (std::size_t w = 0; w < kWindows; ++w) {
      CurvePoint<F> acc = CurvePoint<F>::Infinity();
      for (std::size_t d = 1; d <= kEntries; ++d) {
        acc = acc + window_base;
        pts[w * kEntries + (d - 1)] = acc;
      }
      window_base = acc + window_base;  // 16 * (16^w * P)
    }
    // For a base in the prime-order subgroup no entry can be infinity
    // (d * 16^w is never divisible by r), so affine coordinates are total.
    BatchToAffine<F>(pts);
    ax_.resize(pts.size());
    ay_.resize(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      ax_[i] = pts[i].x;
      ay_[i] = pts[i].y;
    }
  }

  bool Initialized() const { return infinity_base_ || !ax_.empty(); }

  // Variable-time multiply: skips zero windows and indexes the table by the
  // scalar digit. Public scalars only — SecretFr hits the deleted overload.
  CurvePoint<F> Mul(const Fr& k) const {
    if (infinity_base_) return CurvePoint<F>::Infinity();
    Limbs<4> e = k.ToCanonical();
    CurvePoint<F> acc = CurvePoint<F>::Infinity();
    for (std::size_t w = 0; w < kWindows; ++w) {
      unsigned d =
          static_cast<unsigned>(e[w / 16] >> (kWindowBits * (w % 16))) & 15u;
      if (d == 0) continue;
      std::size_t idx = w * kEntries + (d - 1);
      acc = acc.AddMixed(ax_[idx], ay_[idx]);
    }
    return acc;
  }
  CurvePoint<F> Mul(const SecretFr&) const = delete;

  // Constant-pattern multiply for secret scalars: every window scans all 15
  // table entries with masked selects (digit 0 selects the identity) and
  // performs one complete addition — 64 complete additions and the same
  // loads for every scalar.
  CurvePoint<F> MulCt(const SecretFr& k) const {
    if (infinity_base_) return CurvePoint<F>::Infinity();
    const F& b3 = CtCurveB3<F>::Get();
    const Limbs<4> e = k.ct_ref().ToCanonical();
    CtPoint<F> acc = CtPoint<F>::Identity();
    for (std::size_t w = 0; w < kWindows; ++w) {
      const u64 digit =
          (e[w / 16] >> (kWindowBits * (w % 16))) & 15u;
      CtPoint<F> sel = CtPoint<F>::Identity();
      for (u64 d = 1; d <= kEntries; ++d) {
        const std::size_t idx = w * kEntries + static_cast<std::size_t>(d - 1);
        CtPoint<F> cand{ax_[idx], ay_[idx], F::One()};
        CtCondAssignObj(&sel, cand, CtEqMask64(digit, d));
      }
      ct_trace::Emit('T', static_cast<unsigned>(w));
      acc = CtCompleteAdd(acc, sel, b3);
    }
    return CtToJacobian(acc);
  }

 private:
  std::vector<F> ax_, ay_;
  bool infinity_base_ = false;
};

namespace msm_internal {

// Reads `bits` bits of the canonical scalar starting at bit `pos`.
inline unsigned ExtractWindow(const Limbs<4>& e, std::size_t pos,
                              unsigned bits) {
  std::size_t limb = pos / 64, off = pos % 64;
  u64 v = e[limb] >> off;
  if (off + bits > 64 && limb + 1 < 4) v |= e[limb + 1] << (64 - off);
  return static_cast<unsigned>(v & ((u64{1} << bits) - 1));
}

// Pippenger window width: roughly log2(n) - 1, clamped to practical sizes.
inline unsigned PippengerWindow(std::size_t n) {
  if (n < 32) return 4;
  if (n < 128) return 6;
  if (n < 512) return 8;
  if (n < 2048) return 10;
  return 12;
}

}  // namespace msm_internal

// Multi-scalar multiplication: sum_i scalars[i] * pts[i]. Sizes must match.
// Below `kMsmNaiveCutoff` terms the plain per-term wNAF loop wins; above it
// Pippenger's bucket method is used (points batch-normalized to affine so
// bucket accumulation runs on mixed additions).
inline constexpr std::size_t kMsmNaiveCutoff = 8;

template <typename F>
CurvePoint<F> Msm(std::span<const CurvePoint<F>> pts,
                  std::span<const Fr> scalars) {
  std::size_t n = pts.size() < scalars.size() ? pts.size() : scalars.size();

  // Drop degenerate terms once, up front.
  std::vector<CurvePoint<F>> ps;
  std::vector<Limbs<4>> es;
  ps.reserve(n);
  es.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (pts[i].IsInfinity()) continue;
    Limbs<4> e = scalars[i].ToCanonical();
    if (IsZeroLimbs<4>(e)) continue;
    ps.push_back(pts[i]);
    es.push_back(e);
  }
  if (ps.empty()) return CurvePoint<F>::Infinity();

  if (ps.size() < kMsmNaiveCutoff) {
    CurvePoint<F> acc = CurvePoint<F>::Infinity();
    for (std::size_t i = 0; i < ps.size(); ++i) {
      acc = acc + ps[i].ScalarMul(Fr::FromCanonical(es[i]));
    }
    return acc;
  }

  BatchToAffine<F>(std::span<CurvePoint<F>>(ps));

  const unsigned c = msm_internal::PippengerWindow(ps.size());
  const std::size_t scalar_bits = 255;
  const std::size_t windows = (scalar_bits + c - 1) / c;
  std::vector<CurvePoint<F>> buckets((std::size_t{1} << c) - 1);

  CurvePoint<F> result = CurvePoint<F>::Infinity();
  for (std::size_t w = windows; w-- > 0;) {
    if (w + 1 != windows) {
      for (unsigned b = 0; b < c; ++b) result = result.Double();
    }
    for (auto& b : buckets) b = CurvePoint<F>::Infinity();
    for (std::size_t i = 0; i < ps.size(); ++i) {
      unsigned d = msm_internal::ExtractWindow(es[i], w * c, c);
      if (d != 0) buckets[d - 1] = buckets[d - 1].AddMixed(ps[i].x, ps[i].y);
    }
    // Suffix sums: sum_d d * bucket[d] via two running additions.
    CurvePoint<F> running = CurvePoint<F>::Infinity();
    CurvePoint<F> window_sum = CurvePoint<F>::Infinity();
    for (std::size_t b = buckets.size(); b-- > 0;) {
      running = running + buckets[b];
      window_sum = window_sum + running;
    }
    result = result + window_sum;
  }
  return result;
}

G1 G1Msm(std::span<const G1> pts, std::span<const Fr> scalars);
G2 G2Msm(std::span<const G2> pts, std::span<const Fr> scalars);

// Fixed-base tables for the standard G1/G2 generators (built on first use;
// G1Mul/G2Mul in curve.cc route through these).
const FixedBaseTable<Fp>& G1GeneratorTable();
const FixedBaseTable<Fp2>& G2GeneratorTable();

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_MSM_H_

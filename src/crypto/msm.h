// Scalar-multiplication engine: batched inversion, batch affine
// normalization, fixed-base windowed tables, and Pippenger multi-scalar
// multiplication. Everything APQA does — ABS sign/relax/verify, AP²G-tree
// signing, CP-ABE sealing — bottoms out in these kernels.
//
//   BatchInverse    — Montgomery's trick: n inversions for the price of one
//                     plus 3(n-1) multiplications. Zero entries stay zero
//                     (mirroring PrimeField::Inverse).
//   BatchToAffine   — normalizes many Jacobian points with one inversion.
//   FixedBaseTable  — radix-16 windowed table for a long-lived base: one
//                     mixed addition per 4 scalar bits, no doublings.
//   Msm / G1Msm / G2Msm — Pippenger's bucket method with a naive fallback
//                     below a size cutoff.
//
// The fast paths here are NOT constant time (wNAF digit skips, per-digit
// table indexing, Pippenger bucketing) and therefore take plain `Fr`
// scalars only: a `SecretFr` (crypto/ct.h) does not convert and hits a
// deleted overload, so secrets cannot reach them without an explicit
// `Declassify()`. Secret exponents use `FixedBaseTable::MulCt`, which walks
// the same precomputed tables with a full-scan masked select and complete
// addition formulas — identical memory-access pattern for every scalar.
#ifndef APQA_CRYPTO_MSM_H_
#define APQA_CRYPTO_MSM_H_

#include <array>
#include <span>
#include <vector>

#include "crypto/ct.h"
#include "crypto/curve.h"

namespace apqa::crypto {

// In-place batched inversion (Montgomery's trick). Zero entries are skipped
// and remain zero.
template <typename F>
void BatchInverse(F* xs, std::size_t n) {
  if (n == 0) return;
  std::vector<F> prefix(n);
  F acc = F::One();
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i].IsZero()) continue;
    prefix[i] = acc;
    acc = acc * xs[i];
  }
  F inv = acc.Inverse();
  for (std::size_t i = n; i-- > 0;) {
    if (xs[i].IsZero()) continue;
    F saved = xs[i];
    xs[i] = inv * prefix[i];
    inv = inv * saved;
  }
}

// Normalizes every point to Z = 1 (affine) in place, sharing a single field
// inversion across the whole span. Points at infinity are left untouched.
template <typename F>
void BatchToAffine(std::span<CurvePoint<F>> pts) {
  std::vector<F> zs(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) zs[i] = pts[i].z;
  BatchInverse(zs.data(), zs.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].IsInfinity()) continue;
    F zi2 = zs[i].Square();
    pts[i].x = pts[i].x * zi2;
    pts[i].y = pts[i].y * zi2 * zs[i];
    pts[i].z = F::One();
  }
}

// Fixed-base precomputation for a long-lived base point (a generator, an ABS
// verification-key component, a signing-key base). Stores the odd and even
// multiples d * 16^w * P (d = 1..15) for each of the 64 radix-16 windows of
// an Fr scalar, normalized to affine with one shared inversion. A multiply
// is then at most 64 mixed additions — no doublings, no per-call table
// build. ~450 KB for G2, half that for G1; worth it only for bases that are
// multiplied many times.
template <typename F>
class FixedBaseTable {
 public:
  static constexpr std::size_t kWindowBits = 4;
  static constexpr std::size_t kWindows = 64;   // ceil(256 / 4)
  static constexpr std::size_t kEntries = 15;   // digits 1..15

  FixedBaseTable() = default;

  explicit FixedBaseTable(const CurvePoint<F>& base) {
    if (base.IsInfinity()) {
      infinity_base_ = true;
      return;
    }
    std::vector<CurvePoint<F>> pts(kWindows * kEntries);
    CurvePoint<F> window_base = base;  // 16^w * P
    for (std::size_t w = 0; w < kWindows; ++w) {
      CurvePoint<F> acc = CurvePoint<F>::Infinity();
      for (std::size_t d = 1; d <= kEntries; ++d) {
        acc = acc + window_base;
        pts[w * kEntries + (d - 1)] = acc;
      }
      window_base = acc + window_base;  // 16 * (16^w * P)
    }
    // For a base in the prime-order subgroup no entry can be infinity
    // (d * 16^w is never divisible by r), so affine coordinates are total.
    BatchToAffine<F>(pts);
    ax_.resize(pts.size());
    ay_.resize(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      ax_[i] = pts[i].x;
      ay_[i] = pts[i].y;
    }
  }

  bool Initialized() const { return infinity_base_ || !ax_.empty(); }

  // Variable-time multiply: skips zero windows and indexes the table by the
  // scalar digit. Public scalars only — SecretFr hits the deleted overload.
  CurvePoint<F> Mul(const Fr& k) const {
    if (infinity_base_) return CurvePoint<F>::Infinity();
    Limbs<4> e = k.ToCanonical();
    CurvePoint<F> acc = CurvePoint<F>::Infinity();
    for (std::size_t w = 0; w < kWindows; ++w) {
      unsigned d =
          static_cast<unsigned>(e[w / 16] >> (kWindowBits * (w % 16))) & 15u;
      if (d == 0) continue;
      std::size_t idx = w * kEntries + (d - 1);
      acc = acc.AddMixed(ax_[idx], ay_[idx]);
    }
    return acc;
  }
  CurvePoint<F> Mul(const SecretFr&) const = delete;

  // Constant-pattern multiply for secret scalars: every window scans all 15
  // table entries with masked selects (digit 0 selects the identity) and
  // performs one complete addition — 64 complete additions and the same
  // loads for every scalar.
  CurvePoint<F> MulCt(const SecretFr& k) const {
    if (infinity_base_) return CurvePoint<F>::Infinity();
    const F& b3 = CtCurveB3<F>::Get();
    const Limbs<4> e = k.ct_ref().ToCanonical();
    CtPoint<F> acc = CtPoint<F>::Identity();
    for (std::size_t w = 0; w < kWindows; ++w) {
      const u64 digit =
          (e[w / 16] >> (kWindowBits * (w % 16))) & 15u;
      CtPoint<F> sel = CtPoint<F>::Identity();
      for (u64 d = 1; d <= kEntries; ++d) {
        const std::size_t idx = w * kEntries + static_cast<std::size_t>(d - 1);
        CtPoint<F> cand{ax_[idx], ay_[idx], F::One()};
        CtCondAssignObj(&sel, cand, CtEqMask64(digit, d));
      }
      ct_trace::Emit('T', static_cast<unsigned>(w));
      acc = CtCompleteAdd(acc, sel, b3);
    }
    return CtToJacobian(acc);
  }

 private:
  std::vector<F> ax_, ay_;
  bool infinity_base_ = false;
};

namespace msm_internal {

// Reads `bits` bits of the canonical scalar starting at bit `pos`.
inline unsigned ExtractWindow(const Limbs<4>& e, std::size_t pos,
                              unsigned bits) {
  std::size_t limb = pos / 64, off = pos % 64;
  u64 v = e[limb] >> off;
  if (off + bits > 64 && limb + 1 < 4) v |= e[limb + 1] << (64 - off);
  return static_cast<unsigned>(v & ((u64{1} << bits) - 1));
}

// Longest bit length over the (canonical) scalars. Whole-VO batch
// verification folds with 128-bit small-exponent weights, so sizing the
// window loop to the actual scalar width instead of a fixed 255 bits halves
// both the bucket passes and the collapse work.
inline std::size_t MaxBitLength(const std::vector<Limbs<4>>& es) {
  std::size_t bits = 0;
  for (const auto& e : es) {
    std::size_t b = BitLengthLimbs<4>(e);
    if (b > bits) bits = b;
  }
  return bits == 0 ? 1 : bits;
}

// Pippenger window width: minimizes windows * (bucket adds + collapse adds)
// for the given term count and scalar width.
inline unsigned PippengerWindow(std::size_t n, std::size_t bits) {
  unsigned best_c = 2;
  double best = 0;
  for (unsigned c = 2; c <= 13; ++c) {
    double windows = static_cast<double>((bits + c - 1) / c);
    double cost =
        windows * (static_cast<double>(n) + 2.0 * ((1u << c) - 1));
    if (best_c == c || cost < best) {
      best = cost;
      best_c = c;
    }
  }
  return best_c;
}

// Width-w wNAF recoding of a canonical scalar: odd digits in
// {±1, ±3, ..., ±(2^w - 1)}, nonzero density ~1/(w + 1.3). One extra limb
// absorbs the carry out of the top bit, so the recoded length can reach
// 256 + 1.
inline constexpr std::size_t kWnafMaxLen = 257;

inline std::size_t WnafRecode(const Limbs<4>& e, unsigned width,
                              signed char out[kWnafMaxLen]) {
  const int window = 1 << (width + 1);
  Limbs<5> n{};
  for (int i = 0; i < 4; ++i) n[i] = e[i];
  std::size_t len = 0;
  while (!IsZeroLimbs<5>(n)) {
    int d = 0;
    if (n[0] & 1) {
      d = static_cast<int>(n[0] & static_cast<u64>(window - 1));
      if (d >= window / 2) d -= window;
      Limbs<5> v{};
      if (d > 0) {
        v[0] = static_cast<u64>(d);
        SubLimbs<5>(n, v, &n);
      } else {
        v[0] = static_cast<u64>(-d);
        AddLimbs<5>(n, v, &n);
      }
    }
    out[len++] = static_cast<signed char>(d);
    Shr1Limbs<5>(&n);
  }
  return len;
}

// wNAF width minimizing table-build plus chain additions for one point
// carrying `chain_bits` total scalar bits (summed over every scalar set the
// table serves). Costs in mixed-add units: a table holds 2^(w-1) - 1
// additions (~1.45x a mixed add before the batch normalization discount)
// plus one doubling; the chain contributes one mixed add per nonzero digit.
inline unsigned StrausWidth(std::size_t chain_bits) {
  unsigned best_w = 2;
  double best = 0;
  for (unsigned w = 2; w <= 6; ++w) {
    double table = ((1u << (w - 1)) - 1) * 1.45 + 0.7;
    double chain = static_cast<double>(chain_bits) / (w + 1.3);
    if (w == 2 || table + chain < best) {
      best = table + chain;
      best_w = w;
    }
  }
  return best_w;
}

// Affine tables of the odd multiples {1, 3, ..., 2^width - 1} * P for every
// point, laid out point-major. Two batch normalizations keep everything on
// mixed additions: {P, 2P} first, then the odd-multiple ladder built from
// the affine 2P.
template <typename F>
std::vector<CurvePoint<F>> StrausTables(const std::vector<CurvePoint<F>>& ps,
                                        unsigned width) {
  const std::size_t n = ps.size();
  const std::size_t odd = std::size_t{1} << (width - 1);
  std::vector<CurvePoint<F>> base(2 * n);
  for (std::size_t k = 0; k < n; ++k) {
    base[2 * k] = ps[k];
    base[2 * k + 1] = ps[k].Double();
  }
  // Prime-order inputs: no multiple below 2^width * P can be infinity, so
  // the affine tables are total.
  BatchToAffine<F>(std::span<CurvePoint<F>>(base));
  std::vector<CurvePoint<F>> tab(n * odd);
  for (std::size_t k = 0; k < n; ++k) {
    tab[k * odd] = base[2 * k];
    for (std::size_t i = 1; i < odd; ++i) {
      tab[k * odd + i] =
          tab[k * odd + i - 1].AddMixed(base[2 * k + 1].x, base[2 * k + 1].y);
    }
  }
  BatchToAffine<F>(std::span<CurvePoint<F>>(tab));
  return tab;
}

// One interleaved-wNAF accumulation pass over precomputed odd-multiple
// tables: a single doubling chain shared by every term, one mixed addition
// per nonzero digit.
template <typename F>
CurvePoint<F> StrausChain(const std::vector<CurvePoint<F>>& tab,
                          unsigned width,
                          const std::vector<Limbs<4>>& es) {
  const std::size_t n = es.size();
  const std::size_t odd = std::size_t{1} << (width - 1);
  std::vector<std::array<signed char, kWnafMaxLen>> naf(n);
  std::size_t maxlen = 0;
  for (std::size_t k = 0; k < n; ++k) {
    naf[k].fill(0);
    std::size_t len = WnafRecode(es[k], width, naf[k].data());
    if (len > maxlen) maxlen = len;
  }
  CurvePoint<F> acc = CurvePoint<F>::Infinity();
  for (std::size_t i = maxlen; i-- > 0;) {
    acc = acc.Double();
    for (std::size_t k = 0; k < n; ++k) {
      int d = naf[k][i];
      if (d == 0) continue;
      std::size_t idx =
          k * odd + static_cast<std::size_t>((d < 0 ? -d : d) >> 1);
      acc = d > 0 ? acc.AddMixed(tab[idx].x, tab[idx].y)
                  : acc.AddMixed(tab[idx].x, -tab[idx].y);
    }
  }
  return acc;
}

// Interleaved wNAF (Straus): per-point affine odd-multiple tables plus one
// shared doubling chain. For the dozens-of-terms, short-scalar MSMs
// produced by whole-VO batch verification this beats Pippenger, whose
// per-window bucket collapse dominates at such sizes; Pippenger takes over
// once the term count amortizes its buckets (see kMsmStrausCutoff).
template <typename F>
CurvePoint<F> StrausMsm(const std::vector<CurvePoint<F>>& ps,
                        const std::vector<Limbs<4>>& es) {
  const unsigned width = StrausWidth(MaxBitLength(es));
  return StrausChain<F>(StrausTables<F>(ps, width), width, es);
}

}  // namespace msm_internal

// Multi-scalar multiplication: sum_i scalars[i] * pts[i]. Sizes must match.
// A single term is a plain wNAF multiply; from 2 up to `kMsmStrausCutoff`
// terms the shared-doubling interleaved wNAF (StrausMsm) wins; above it
// Pippenger's bucket method is used (points batch-normalized to affine so
// bucket accumulation runs on mixed additions). Both multi-term paths size
// their window loops to the widest actual scalar, so 128-bit batching
// weights cost roughly half of full-width folds.
inline constexpr std::size_t kMsmStrausCutoff = 128;

template <typename F>
CurvePoint<F> Msm(std::span<const CurvePoint<F>> pts,
                  std::span<const Fr> scalars) {
  std::size_t n = pts.size() < scalars.size() ? pts.size() : scalars.size();

  // Drop degenerate terms once, up front.
  std::vector<CurvePoint<F>> ps;
  std::vector<Limbs<4>> es;
  ps.reserve(n);
  es.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (pts[i].IsInfinity()) continue;
    Limbs<4> e = scalars[i].ToCanonical();
    if (IsZeroLimbs<4>(e)) continue;
    ps.push_back(pts[i]);
    es.push_back(e);
  }
  if (ps.empty()) return CurvePoint<F>::Infinity();

  if (ps.size() == 1) return ps[0].ScalarMulCanonical(es[0]);
  if (ps.size() < kMsmStrausCutoff) {
    return msm_internal::StrausMsm<F>(ps, es);
  }

  BatchToAffine<F>(std::span<CurvePoint<F>>(ps));

  const std::size_t scalar_bits = msm_internal::MaxBitLength(es);
  const unsigned c = msm_internal::PippengerWindow(ps.size(), scalar_bits);
  const std::size_t windows = (scalar_bits + c - 1) / c;
  std::vector<CurvePoint<F>> buckets((std::size_t{1} << c) - 1);

  CurvePoint<F> result = CurvePoint<F>::Infinity();
  for (std::size_t w = windows; w-- > 0;) {
    if (w + 1 != windows) {
      for (unsigned b = 0; b < c; ++b) result = result.Double();
    }
    for (auto& b : buckets) b = CurvePoint<F>::Infinity();
    for (std::size_t i = 0; i < ps.size(); ++i) {
      unsigned d = msm_internal::ExtractWindow(es[i], w * c, c);
      if (d != 0) buckets[d - 1] = buckets[d - 1].AddMixed(ps[i].x, ps[i].y);
    }
    // Suffix sums: sum_d d * bucket[d] via two running additions.
    CurvePoint<F> running = CurvePoint<F>::Infinity();
    CurvePoint<F> window_sum = CurvePoint<F>::Infinity();
    for (std::size_t b = buckets.size(); b-- > 0;) {
      running = running + buckets[b];
      window_sum = window_sum + running;
    }
    result = result + window_sum;
  }
  return result;
}

G1 G1Msm(std::span<const G1> pts, std::span<const Fr> scalars);
G2 G2Msm(std::span<const G2> pts, std::span<const Fr> scalars);

// Multi-set MSM: folds the SAME points under several scalar sets, returning
// one result per set. The per-point odd-multiple tables — the fixed cost of
// the interleaved-wNAF path — are built once and shared by every set, so k
// folds over n points cost one table build plus k accumulation chains
// instead of k full MSMs. Whole-VO batch verification leans on this twice:
// the signature Y components fold under both the column-0 and W-equation
// weights, and the message-side G2 points fold under both the rho and
// mu*rho weight vectors. Every set must have exactly pts.size() scalars.
template <typename F>
std::vector<CurvePoint<F>> MsmShared(
    std::span<const CurvePoint<F>> pts,
    std::span<const std::vector<Fr>> scalar_sets) {
  const std::size_t sets = scalar_sets.size();
  std::vector<CurvePoint<F>> out(sets, CurvePoint<F>::Infinity());
  if (sets == 0) return out;

  // Drop points at infinity from every set (they contribute the identity);
  // zero scalars recode to an empty wNAF and cost nothing, so they stay.
  std::vector<CurvePoint<F>> ps;
  std::vector<std::vector<Limbs<4>>> es(sets);
  ps.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].IsInfinity()) continue;
    ps.push_back(pts[i]);
    for (std::size_t s = 0; s < sets; ++s) {
      es[s].push_back(scalar_sets[s][i].ToCanonical());
    }
  }
  if (ps.empty()) return out;
  if (ps.size() == 1) {
    for (std::size_t s = 0; s < sets; ++s) {
      if (!IsZeroLimbs<4>(es[s][0])) out[s] = ps[0].ScalarMulCanonical(es[s][0]);
    }
    return out;
  }
  std::size_t chain_bits = 0;
  for (const auto& e : es) chain_bits += msm_internal::MaxBitLength(e);
  const unsigned width = msm_internal::StrausWidth(chain_bits);
  std::vector<CurvePoint<F>> tab = msm_internal::StrausTables<F>(ps, width);
  for (std::size_t s = 0; s < sets; ++s) {
    out[s] = msm_internal::StrausChain<F>(tab, width, es[s]);
  }
  return out;
}

std::vector<G1> G1MsmShared(std::span<const G1> pts,
                            std::span<const std::vector<Fr>> scalar_sets);
std::vector<G2> G2MsmShared(std::span<const G2> pts,
                            std::span<const std::vector<Fr>> scalar_sets);

// Fixed-base tables for the standard G1/G2 generators (built on first use;
// G1Mul/G2Mul in curve.cc route through these).
const FixedBaseTable<Fp>& G1GeneratorTable();
const FixedBaseTable<Fp2>& G2GeneratorTable();

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_MSM_H_

// Quadratic extension Fp2 = Fp[i] / (i^2 + 1).
//
// The non-residue used to build Fp6 on top of Fp2 is xi = 1 + i.
#ifndef APQA_CRYPTO_FP2_H_
#define APQA_CRYPTO_FP2_H_

#include <span>

#include "crypto/fields.h"

namespace apqa::crypto {

struct Fp2 {
  Fp c0, c1;

  static Fp2 Zero() { return {Fp::Zero(), Fp::Zero()}; }
  static Fp2 One() { return {Fp::One(), Fp::Zero()}; }
  // xi = 1 + i, the cubic non-residue for the Fp6 tower.
  static Fp2 Xi() { return {Fp::One(), Fp::One()}; }

  bool IsZero() const { return c0.IsZero() && c1.IsZero(); }
  bool operator==(const Fp2& o) const { return c0 == o.c0 && c1 == o.c1; }
  bool operator!=(const Fp2& o) const { return !(*this == o); }

  Fp2 operator+(const Fp2& o) const { return {c0 + o.c0, c1 + o.c1}; }
  Fp2 operator-(const Fp2& o) const { return {c0 - o.c0, c1 - o.c1}; }
  Fp2 operator-() const { return {-c0, -c1}; }
  Fp2 Double() const { return {c0 + c0, c1 + c1}; }

  Fp2 operator*(const Fp2& o) const {
    // Karatsuba: 3 base multiplications.
    Fp t0 = c0 * o.c0;
    Fp t1 = c1 * o.c1;
    Fp t2 = (c0 + c1) * (o.c0 + o.c1);
    return {t0 - t1, t2 - t0 - t1};
  }

  Fp2 Square() const {
    Fp t0 = (c0 + c1) * (c0 - c1);
    Fp t1 = c0 * c1;
    return {t0, t1 + t1};
  }

  Fp2 MulByFp(const Fp& s) const { return {c0 * s, c1 * s}; }

  // Multiplication by xi = 1 + i: (c0 - c1) + (c0 + c1) i.
  Fp2 MulByXi() const { return {c0 - c1, c0 + c1}; }

  Fp2 Conjugate() const { return {c0, -c1}; }

  Fp2 Inverse() const {
    Fp d = (c0 * c0 + c1 * c1).Inverse();
    return {c0 * d, -(c1 * d)};
  }

  Fp2 Pow(std::span<const u64> e) const {
    Fp2 acc = One();
    std::size_t bits = e.size() * 64;
    for (std::size_t i = bits; i-- > 0;) {
      acc = acc.Square();
      if ((e[i / 64] >> (i % 64)) & 1) acc = acc * *this;
    }
    return acc;
  }
};

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_FP2_H_

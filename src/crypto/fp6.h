// Cubic extension Fp6 = Fp2[v] / (v^3 - xi), xi = 1 + i.
#ifndef APQA_CRYPTO_FP6_H_
#define APQA_CRYPTO_FP6_H_

#include "crypto/fp2.h"

namespace apqa::crypto {

struct Fp6 {
  Fp2 c0, c1, c2;

  static Fp6 Zero() { return {Fp2::Zero(), Fp2::Zero(), Fp2::Zero()}; }
  static Fp6 One() { return {Fp2::One(), Fp2::Zero(), Fp2::Zero()}; }

  bool IsZero() const { return c0.IsZero() && c1.IsZero() && c2.IsZero(); }
  bool operator==(const Fp6& o) const {
    return c0 == o.c0 && c1 == o.c1 && c2 == o.c2;
  }
  bool operator!=(const Fp6& o) const { return !(*this == o); }

  Fp6 operator+(const Fp6& o) const {
    return {c0 + o.c0, c1 + o.c1, c2 + o.c2};
  }
  Fp6 operator-(const Fp6& o) const {
    return {c0 - o.c0, c1 - o.c1, c2 - o.c2};
  }
  Fp6 operator-() const { return {-c0, -c1, -c2}; }

  Fp6 operator*(const Fp6& o) const {
    // Toom-style interpolation with 6 Fp2 multiplications
    // (Devegili et al., "Multiplication and Squaring on Pairing-Friendly
    // Fields").
    Fp2 t0 = c0 * o.c0;
    Fp2 t1 = c1 * o.c1;
    Fp2 t2 = c2 * o.c2;
    Fp2 r0 = t0 + ((c1 + c2) * (o.c1 + o.c2) - t1 - t2).MulByXi();
    Fp2 r1 = (c0 + c1) * (o.c0 + o.c1) - t0 - t1 + t2.MulByXi();
    Fp2 r2 = (c0 + c2) * (o.c0 + o.c2) - t0 - t2 + t1;
    return {r0, r1, r2};
  }

  Fp6 Square() const { return *this * *this; }

  // Multiplication by v (shifts coefficients, wrapping through xi).
  Fp6 MulByV() const { return {c2.MulByXi(), c0, c1}; }

  // Multiplication by the sparse element b0 + b1*v (b2 = 0): 5 Fp2
  // multiplications instead of 6. Used by the sparse pairing-line product.
  Fp6 MulBy01(const Fp2& b0, const Fp2& b1) const {
    Fp2 a_a = c0 * b0;
    Fp2 b_b = c1 * b1;
    Fp2 r0 = ((c1 + c2) * b1 - b_b).MulByXi() + a_a;
    Fp2 r1 = (c0 + c1) * (b0 + b1) - a_a - b_b;
    Fp2 r2 = (c0 + c2) * b0 - a_a + b_b;
    return {r0, r1, r2};
  }

  // Multiplication by the sparse element b1*v (b0 = b2 = 0): 3 Fp2
  // multiplications.
  Fp6 MulBy1(const Fp2& b1) const {
    return {(c2 * b1).MulByXi(), c0 * b1, c1 * b1};
  }

  Fp6 MulByFp2(const Fp2& s) const { return {c0 * s, c1 * s, c2 * s}; }

  Fp6 Inverse() const {
    Fp2 a = c0.Square() - (c1 * c2).MulByXi();
    Fp2 b = c2.Square().MulByXi() - c0 * c1;
    Fp2 c = c1.Square() - c0 * c2;
    Fp2 t = (c0 * a + (c2 * b + c1 * c).MulByXi()).Inverse();
    return {a * t, b * t, c * t};
  }
};

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_FP6_H_

// Secret-taint discipline and constant-pattern primitives.
//
// Three things live here:
//
//   1. `Secret<T>` / `SecretFr` — a compile-time taint wrapper. Key material
//      and blinding scalars are carried as `SecretFr`; the variable-time
//      entry points of the curve layer (wNAF ScalarMul, Pippenger Msm,
//      FixedBaseTable::Mul, Fp12::Pow, EGCD Inverse) take plain `Fr` and
//      refuse `SecretFr` (deleted overloads), so a secret cannot reach a
//      data-dependent fast path without an explicit, greppable
//      `Declassify()`. `scripts/lint.py --list-declassify` audits every
//      call site.
//
//   2. Constant-pattern kernels — complete-addition point arithmetic
//      (Renes–Costello–Batina 2016, Alg. 7 for a = 0) driven by fixed-window
//      ladders whose table lookups scan every entry with masked selects.
//      Combined with the branch-free field reductions in prime_field.h these
//      execute the same instruction and memory-access sequence for every
//      scalar. `FixedBaseTable::MulCt` (msm.h) is the fixed-base variant.
//
//   3. A ctgrind-style dynamic oracle. Under MemorySanitizer the
//      CtPoison/CtUnpoison/CtDeclassifyMem macros mark secret bytes as
//      uninitialized, so any secret-dependent branch or table index aborts
//      the run (tests/ct_check_test.cc). Without MSan they are no-ops and
//      the same test falls back to a trace-equivalence oracle fed by
//      `ct_trace::hook`, which must record identical ladder traces for
//      distinct secrets.
#ifndef APQA_CRYPTO_CT_H_
#define APQA_CRYPTO_CT_H_

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "crypto/curve.h"
#include "crypto/fp12.h"

// --- MSan poisoning harness (ctgrind-style) --------------------------------
//
// Build with clang and -fsanitize=memory (cmake -DAPQA_SANITIZE=memory) to
// turn these into real shadow-memory operations; under any other compiler
// or sanitizer they compile to nothing.
#if defined(__has_feature)
#if __has_feature(memory_sanitizer)
#define APQA_CT_MSAN 1
#endif
#endif

#ifdef APQA_CT_MSAN
#include <sanitizer/msan_interface.h>
// Marks n bytes at p as secret: any branch or index derived from them traps.
#define CtPoison(p, n) __msan_poison((p), (n))
// Clears the secret mark (e.g. on a buffer about to be reused publicly).
#define CtUnpoison(p, n) __msan_unpoison((p), (n))
// Declassification point for the dynamic oracle: the bytes may now flow into
// branches. Pair with a `// declassify:` comment for the static audit.
#define CtDeclassifyMem(p, n) __msan_unpoison((p), (n))
#else
#define CtPoison(p, n) ((void)(p), (void)(n))
#define CtUnpoison(p, n) ((void)(p), (void)(n))
#define CtDeclassifyMem(p, n) ((void)(p), (void)(n))
#endif

namespace apqa::crypto {

// --- Byte- and object-level constant-time helpers --------------------------

// Constant-time byte-equality: accumulates the XOR of every byte pair before
// the single final comparison, so unequal inputs cost exactly as much as
// equal ones (unlike memcmp's early exit). The bool result itself is public.
inline bool CtEqBytes(const void* a, const void* b, std::size_t n) {
  const unsigned char* pa = static_cast<const unsigned char*>(a);
  const unsigned char* pb = static_cast<const unsigned char*>(b);
  unsigned acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc |= static_cast<unsigned>(pa[i] ^ pb[i]);
  }
  return acc == 0;
}

template <typename T, std::size_t N>
inline bool CtEq(const std::array<T, N>& a, const std::array<T, N>& b) {
  static_assert(std::is_trivially_copyable_v<T>);
  return CtEqBytes(a.data(), b.data(), N * sizeof(T));
}

// *dst = mask ? src : *dst for any trivially-copyable value type whose size
// is a multiple of 8 (field elements, curve points, Fp12 — all arrays of
// u64 under the hood). Works word-wise through memcpy, so there is no
// aliasing UB and no per-byte branch.
template <typename T>
inline void CtCondAssignObj(T* dst, const T& src, u64 mask) {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(sizeof(T) % sizeof(u64) == 0);
  constexpr std::size_t kWords = sizeof(T) / sizeof(u64);
  u64 d[kWords], s[kWords];
  std::memcpy(d, dst, sizeof(T));
  std::memcpy(s, &src, sizeof(T));
  for (std::size_t i = 0; i < kWords; ++i) {
    d[i] = (s[i] & mask) | (d[i] & ~mask);
  }
  std::memcpy(dst, d, sizeof(T));
}

// --- Secret taint wrapper ---------------------------------------------------

// A value of type T that must not influence control flow or memory access
// patterns. There is no implicit conversion back to T; the only exits are
//
//   Declassify() — the audited escape hatch. Call sites carry a
//                  `// declassify: <reason>` comment (scripts/lint.py).
//   ct_ref()     — restricted to the constant-pattern kernels in
//                  src/crypto/ (also enforced by scripts/lint.py); the
//                  kernels guarantee the value stays pattern-free.
//
// Arithmetic on secrets forwards to T's operators, which are constant-time
// for the prime fields (see prime_field.h); mixing with public values
// yields a Secret.
template <typename T>
class Secret {
 public:
  Secret() = default;
  explicit Secret(const T& v) : v_(v) {}

  Secret operator+(const Secret& o) const { return Secret(v_ + o.v_); }
  Secret operator-(const Secret& o) const { return Secret(v_ - o.v_); }
  Secret operator*(const Secret& o) const { return Secret(v_ * o.v_); }
  Secret operator-() const { return Secret(-v_); }

  Secret operator+(const T& pub) const { return Secret(v_ + pub); }
  Secret operator-(const T& pub) const { return Secret(v_ - pub); }
  Secret operator*(const T& pub) const { return Secret(v_ * pub); }
  friend Secret operator+(const T& pub, const Secret& s) {
    return Secret(pub + s.v_);
  }
  friend Secret operator*(const T& pub, const Secret& s) {
    return Secret(pub * s.v_);
  }

  const T& Declassify() const { return v_; }
  const T& ct_ref() const { return v_; }

 private:
  T v_;
};

using SecretFr = Secret<Fr>;

// Constant-pattern inverse of a secret scalar (Fermat; public exponent).
inline SecretFr CtInverse(const SecretFr& x) {
  return SecretFr(x.ct_ref().CtInverse());
}

// --- Trace-equivalence oracle ----------------------------------------------

// Optional instrumentation hook for the ladder kernels. When set, every
// ladder step reports (op, step-index) — values that are public by
// construction. tests/ct_check_test.cc records the trace for distinct
// secrets and requires byte-identical sequences; a data-dependent skip or
// extra operation shows up as a trace mismatch even without MSan.
namespace ct_trace {
extern void (*hook)(char op, unsigned step);
inline void Emit(char op, unsigned step) {
  if (hook != nullptr) hook(op, step);
}
}  // namespace ct_trace

// --- Complete-formula point arithmetic --------------------------------------

// 3*b for the curve y^2 = x^3 + b a point coordinate field lives on;
// specialized for Fp (G1, b = 4) and Fp2 (G2, b = 4(1+i)) in ct.cc.
template <typename F>
struct CtCurveB3;
template <>
struct CtCurveB3<Fp> {
  static const Fp& Get();
};
template <>
struct CtCurveB3<Fp2> {
  static const Fp2& Get();
};

// Homogeneous projective point (X : Y : Z); identity is (0 : 1 : 0). The
// complete formulas below are total on the odd-order BLS12-381 groups —
// doubling, identity operands and inverses all take the same code path.
template <typename F>
struct CtPoint {
  F x, y, z;
  static CtPoint Identity() { return {F::Zero(), F::One(), F::Zero()}; }
};

// Renes–Costello–Batina 2016, Algorithm 7 (a = 0): 12M + 2*mult-by-3b + 19
// additions, no branches, complete for groups without 2-torsion.
template <typename F>
CtPoint<F> CtCompleteAdd(const CtPoint<F>& p, const CtPoint<F>& q,
                         const F& b3) {
  F t0 = p.x * q.x;
  F t1 = p.y * q.y;
  F t2 = p.z * q.z;
  F t3 = (p.x + p.y) * (q.x + q.y) - t0 - t1;  // X1Y2 + X2Y1
  F t4 = (p.y + p.z) * (q.y + q.z) - t1 - t2;  // Y1Z2 + Y2Z1
  F t5 = (p.x + p.z) * (q.x + q.z) - t0 - t2;  // X1Z2 + X2Z1
  F three_t0 = t0 + t0 + t0;
  F b3t2 = b3 * t2;
  F b3t5 = b3 * t5;
  F s = t1 + b3t2;   // Y1Y2 + 3bZ1Z2
  F d = t1 - b3t2;   // Y1Y2 - 3bZ1Z2
  CtPoint<F> r;
  r.x = t3 * d - t4 * b3t5;
  r.y = d * s + b3t5 * three_t0;
  r.z = s * t4 + three_t0 * t3;
  return r;
}

// Jacobian (X, Y, Z) = (x Z^2, y Z^3, Z) -> homogeneous (x Z^3 : y Z^3 : Z^3)
// = (X Z : Y : Z^3). Inversion-free and branch-free; Jacobian infinity
// (Z = 0) maps to a representative of the projective identity.
template <typename F>
CtPoint<F> CtFromJacobian(const CurvePoint<F>& p) {
  return {p.x * p.z, p.y, p.z.Square() * p.z};
}

// Homogeneous (X : Y : Z) -> Jacobian (X Z, Y Z^2, Z); identity maps to the
// Jacobian infinity encoding (Z = 0). Branch-free.
template <typename F>
CurvePoint<F> CtToJacobian(const CtPoint<F>& p) {
  F z2 = p.z.Square();
  return {p.x * p.z, p.y * z2, p.z};
}

// Constant-pattern variable-base scalar multiplication: fixed 4-bit windows
// MSB-first, 16-entry table scanned in full with masked selects, one
// complete addition per window, four complete doublings between windows —
// 320 complete additions for every scalar, zero data-dependent skips.
template <typename F>
CurvePoint<F> CtScalarMul(const CurvePoint<F>& base, const SecretFr& k) {
  const F& b3 = CtCurveB3<F>::Get();
  CtPoint<F> table[16];
  table[0] = CtPoint<F>::Identity();
  CtPoint<F> p = CtFromJacobian(base);
  for (int i = 1; i < 16; ++i) table[i] = CtCompleteAdd(table[i - 1], p, b3);

  const Limbs<4> e = k.ct_ref().ToCanonical();
  CtPoint<F> acc = CtPoint<F>::Identity();
  for (unsigned w = 64; w-- > 0;) {
    if (w != 63) {
      for (int i = 0; i < 4; ++i) {
        ct_trace::Emit('D', w);
        acc = CtCompleteAdd(acc, acc, b3);
      }
    }
    const u64 digit = (e[w / 16] >> (4 * (w % 16))) & 15u;
    CtPoint<F> sel = table[0];
    for (u64 d = 1; d < 16; ++d) {
      CtCondAssignObj(&sel, table[d], CtEqMask64(digit, d));
    }
    ct_trace::Emit('A', w);
    acc = CtCompleteAdd(acc, sel, b3);
  }
  return CtToJacobian(acc);
}

// Generator multiplications with a secret exponent, routed through the
// shared fixed-base tables' constant-pattern path (FixedBaseTable::MulCt).
G1 CtG1Mul(const SecretFr& k);
G2 CtG2Mul(const SecretFr& k);

// Constant-pattern Fp12 exponentiation (square-and-multiply-always over the
// fixed 255-bit scalar width, masked accumulator update). Used for the GT
// blinding exponents of CP-ABE encryption and envelope sealing.
Fp12 CtPow(const Fp12& base, const SecretFr& k);

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_CT_H_

// Quadratic extension Fp12 = Fp6[w] / (w^2 - v).
//
// This is the target field of the BLS12-381 pairing. In addition to generic
// tower arithmetic it provides the Frobenius endomorphism (used by the final
// exponentiation) computed against the alternative representation
// Fp12 = Fp2[w] / (w^6 - xi).
#ifndef APQA_CRYPTO_FP12_H_
#define APQA_CRYPTO_FP12_H_

#include <span>

#include "crypto/fp6.h"

namespace apqa::crypto {

struct Fp12 {
  Fp6 c0, c1;

  static Fp12 Zero() { return {Fp6::Zero(), Fp6::Zero()}; }
  static Fp12 One() { return {Fp6::One(), Fp6::Zero()}; }

  bool IsZero() const { return c0.IsZero() && c1.IsZero(); }
  bool IsOne() const { return *this == One(); }
  bool operator==(const Fp12& o) const { return c0 == o.c0 && c1 == o.c1; }
  bool operator!=(const Fp12& o) const { return !(*this == o); }

  Fp12 operator+(const Fp12& o) const { return {c0 + o.c0, c1 + o.c1}; }
  Fp12 operator-(const Fp12& o) const { return {c0 - o.c0, c1 - o.c1}; }
  Fp12 operator-() const { return {-c0, -c1}; }

  Fp12 operator*(const Fp12& o) const {
    Fp6 t0 = c0 * o.c0;
    Fp6 t1 = c1 * o.c1;
    Fp6 t2 = (c0 + c1) * (o.c0 + o.c1);
    return {t0 + t1.MulByV(), t2 - t0 - t1};
  }

  Fp12 Square() const {
    // Complex squaring over the quadratic extension.
    Fp6 t = c0 * c1;
    Fp6 a = (c0 + c1) * (c0 + c1.MulByV()) - t - t.MulByV();
    return {a, t + t};
  }

  // Conjugation over Fp6; equals the p^6-power Frobenius.
  Fp12 Conjugate() const { return {c0, -c1}; }

  Fp12 Inverse() const {
    Fp6 d = (c0.Square() - c1.Square().MulByV()).Inverse();
    return {c0 * d, -(c1 * d)};
  }

  // Multiplication by a sparse Miller-loop line. In the alternative
  // representation Fp12 = Fp2[w] / (w^6 - xi) a line evaluation occupies
  // exactly three slots,
  //
  //     a0 + a2*w^2 + a3*w^3,
  //
  // which in the tower layout is (a0, a2, 0) + (0, a3, 0)*w. Karatsuba over
  // Fp6::MulBy01 / MulBy1 costs 13 Fp2 multiplications vs 18 for a full
  // Fp12 product; equivalence with the dense product is unit-tested.
  Fp12 MulBySparseLine(const Fp2& a0, const Fp2& a2, const Fp2& a3) const {
    Fp6 aa = c0.MulBy01(a0, a2);
    Fp6 bb = c1.MulBy1(a3);
    Fp6 r1 = (c0 + c1).MulBy01(a0, a2 + a3) - aa - bb;
    return {bb.MulByV() + aa, r1};
  }

  // The dense Fp12 element a0 + a2*w^2 + a3*w^3 (reference for tests and
  // benches comparing sparse vs full products).
  static Fp12 FromSparseLine(const Fp2& a0, const Fp2& a2, const Fp2& a3) {
    return {Fp6{a0, a2, Fp2::Zero()}, Fp6{Fp2::Zero(), a3, Fp2::Zero()}};
  }

  // p-power Frobenius endomorphism.
  Fp12 Frobenius() const;

  // Granger-Scott squaring, valid only for elements of the cyclotomic
  // subgroup (everything after the easy part of the final exponentiation).
  // ~2x faster than the generic Square(); equivalence with Square() on
  // cyclotomic elements is unit-tested.
  Fp12 CyclotomicSquare() const;

  // Exponentiation using cyclotomic squarings; requires *this to be in the
  // cyclotomic subgroup.
  Fp12 PowCyclotomic(std::span<const u64> e) const;

  // Generic exponentiation by a little-endian limb span, MSB first with a
  // 4-bit window.
  Fp12 Pow(std::span<const u64> e) const;

  // Exponentiation by the curve parameter |u| = kBlsParamAbs.
  Fp12 PowBlsParam() const;
};

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_FP12_H_

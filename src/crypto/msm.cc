#include "crypto/msm.h"

namespace apqa::crypto {

G1 G1Msm(std::span<const G1> pts, std::span<const Fr> scalars) {
  return Msm<Fp>(pts, scalars);
}

G2 G2Msm(std::span<const G2> pts, std::span<const Fr> scalars) {
  return Msm<Fp2>(pts, scalars);
}

std::vector<G1> G1MsmShared(std::span<const G1> pts,
                            std::span<const std::vector<Fr>> scalar_sets) {
  return MsmShared<Fp>(pts, scalar_sets);
}

std::vector<G2> G2MsmShared(std::span<const G2> pts,
                            std::span<const std::vector<Fr>> scalar_sets) {
  return MsmShared<Fp2>(pts, scalar_sets);
}

const FixedBaseTable<Fp>& G1GeneratorTable() {
  static const FixedBaseTable<Fp> t(G1Generator());
  return t;
}

const FixedBaseTable<Fp2>& G2GeneratorTable() {
  static const FixedBaseTable<Fp2> t(G2Generator());
  return t;
}

}  // namespace apqa::crypto

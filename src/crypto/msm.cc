#include "crypto/msm.h"

namespace apqa::crypto {

G1 G1Msm(std::span<const G1> pts, std::span<const Fr> scalars) {
  return Msm<Fp>(pts, scalars);
}

G2 G2Msm(std::span<const G2> pts, std::span<const Fr> scalars) {
  return Msm<Fp2>(pts, scalars);
}

const FixedBaseTable<Fp>& G1GeneratorTable() {
  static const FixedBaseTable<Fp> t(G1Generator());
  return t;
}

const FixedBaseTable<Fp2>& G2GeneratorTable() {
  static const FixedBaseTable<Fp2> t(G2Generator());
  return t;
}

}  // namespace apqa::crypto

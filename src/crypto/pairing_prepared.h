// Prepared optimal ate pairing: cached G2 line coefficients.
//
// Verification pairs the same handful of G2 points (master-verify-key
// components, memoized attribute bases) against many G1 points. `G2Prepared`
// runs the Miller-loop G2 arithmetic once — with inversion-free homogeneous
// projective step formulas — and stores the three Fp2 line coefficients of
// every doubling/addition step. A subsequent pairing against any G1 point
// only evaluates the cached lines at P and folds them into the accumulator
// with the sparse Fp12 product; no G2 arithmetic and no Fp2 inversions
// remain on the per-pairing path.
//
// Thread-safety contract: a fully-constructed `G2Prepared` is immutable and
// safe to share read-only across threads without synchronization. All
// functions here only read the tables.
//
// Identity semantics (matching `Pairing`/`MultiPairing`): a pair whose G1
// side is infinity or whose G2 side was prepared from infinity contributes
// the neutral element — `PairWith` returns GT::One() and
// `MultiPairingPrepared` skips the pair.
#ifndef APQA_CRYPTO_PAIRING_PREPARED_H_
#define APQA_CRYPTO_PAIRING_PREPARED_H_

#include <utility>
#include <vector>

#include "crypto/pairing.h"

namespace apqa::crypto {

// Coefficients of one Miller-loop line on the M-twist. Evaluated at an
// affine G1 point P = (x, y), the (w^3-scaled) line value is
//   c0 + (c1 * x) w^2 + (c2 * y) w^3,
// i.e. exactly the sparse shape Fp12::MulBySparseLine consumes.
struct G2LineCoeffs {
  Fp2 c0, c1, c2;
};

// Line-coefficient table for a fixed G2 point, one entry per step of the
// shared |u|-bit Miller schedule (63 doublings + 5 additions for BLS12-381,
// in schedule order).
class G2Prepared {
 public:
  // Prepared infinity: pairs against it are neutral.
  G2Prepared() = default;
  explicit G2Prepared(const G2& q);

  bool IsInfinity() const { return coeffs_.empty(); }
  const std::vector<G2LineCoeffs>& coeffs() const { return coeffs_; }

 private:
  std::vector<G2LineCoeffs> coeffs_;
};

// Miller loop f_{|u|,Q}(P) from cached coefficients (conjugated for the
// negative curve parameter). GT::One() if either side is the identity.
GT MillerLoopPrepared(const G1& p, const G2Prepared& q);

// e(p, q) from cached coefficients.
GT PairWith(const G1& p, const G2Prepared& q);

// One pairing input whose G2 side is prepared. The pointed-to table must
// outlive the call; it is only read.
struct PreparedPair {
  G1 p;
  const G2Prepared* q;
};

// prod e(p_i, q_i) over prepared pairs plus optional on-the-fly `fresh`
// pairs, with one shared final exponentiation. Fresh G2 points are prepared
// internally (inversion-free), so mixing cached and per-query G2 points
// costs no extra Fp2 inversions. Pairs with an identity side are skipped;
// if every pair is skipped the result is GT::One().
GT MultiPairingPrepared(const std::vector<PreparedPair>& prepared,
                        const std::vector<std::pair<G1, G2>>& fresh = {});

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_PAIRING_PREPARED_H_

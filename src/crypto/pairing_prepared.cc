#include "crypto/pairing_prepared.h"

#include "crypto/msm.h"

namespace apqa::crypto {

namespace {

// Folds one cached line, evaluated at the affine G1 point (xp, yp), into
// the Miller accumulator via the sparse product.
inline void FoldLine(Fp12* f, const G2LineCoeffs& c, const Fp& xp,
                     const Fp& yp) {
  *f = f->MulBySparseLine(c.c0, c.c1.MulByFp(xp), c.c2.MulByFp(yp));
}

int ParamMsb() {
  int msb = 63;
  while (!((kBlsParamAbs >> msb) & 1)) --msb;
  return msb;
}

}  // namespace

G2Prepared::G2Prepared(const G2& q) {
  if (q.IsInfinity()) return;
  Fp2 xq, yq;
  q.ToAffine(&xq, &yq);

  // Homogeneous projective running point T = (X : Y : Z), x = X/Z, y = Y/Z.
  // The step formulas below are inversion-free; each stored line differs
  // from the affine line MillerLoop would compute by an Fp2 scale factor
  // (-2YZ on a doubling, X - x_Q Z on an addition), which the final
  // exponentiation kills: gcd of the hard-part exponent with p^2 - 1 is 1.
  Fp2 x = xq, y = yq, z = Fp2::One();
  static const Fp kTwoInv = (Fp::One() + Fp::One()).Inverse();
  const Fp2 b_twist = G2CurveB();

  const int msb = ParamMsb();
  coeffs_.reserve(static_cast<std::size_t>(msb) +
                  static_cast<std::size_t>(__builtin_popcountll(kBlsParamAbs)) -
                  1);
  for (int i = msb - 1; i >= 0; --i) {
    {
      // Doubling step: line coefficients (e - b, 3X^2, -h), the affine
      // tangent scaled by -2YZ.
      Fp2 a = (x * y).MulByFp(kTwoInv);
      Fp2 b = y.Square();
      Fp2 c = z.Square();
      Fp2 e = b_twist * (c + c + c);
      Fp2 e3 = e + e + e;
      Fp2 g = (b + e3).MulByFp(kTwoInv);
      Fp2 h = (y + z).Square() - (b + c);
      Fp2 j = x.Square();
      Fp2 e2 = e.Square();
      coeffs_.push_back({e - b, j + j + j, -h});
      x = a * (b - e3);
      y = g.Square() - (e2 + e2 + e2);
      z = b * h;
    }
    if ((kBlsParamAbs >> i) & 1) {
      // Mixed addition T += Q with Q affine: line coefficients
      // (theta x_Q - lambda y_Q, -theta, lambda), the affine chord scaled
      // by lambda = X - x_Q Z.
      Fp2 theta = y - yq * z;
      Fp2 lambda = x - xq * z;
      Fp2 c = theta.Square();
      Fp2 d = lambda.Square();
      Fp2 e = lambda * d;
      Fp2 f = z * c;
      Fp2 g = x * d;
      Fp2 h = e + f - (g + g);
      coeffs_.push_back({theta * xq - lambda * yq, -theta, lambda});
      x = lambda * h;
      y = theta * (g - h) - e * y;
      z = z * e;
    }
  }
}

GT MillerLoopPrepared(const G1& p, const G2Prepared& q) {
  if (p.IsInfinity() || q.IsInfinity()) return GT::One();
  Fp xp, yp;
  p.ToAffine(&xp, &yp);

  const auto& cs = q.coeffs();
  Fp12 f = Fp12::One();
  std::size_t idx = 0;
  const int msb = ParamMsb();
  for (int i = msb - 1; i >= 0; --i) {
    f = f.Square();
    FoldLine(&f, cs[idx++], xp, yp);
    if ((kBlsParamAbs >> i) & 1) FoldLine(&f, cs[idx++], xp, yp);
  }
  // u < 0: conjugate.
  return f.Conjugate();
}

GT PairWith(const G1& p, const G2Prepared& q) {
  return FinalExponentiation(MillerLoopPrepared(p, q));
}

GT MultiPairingPrepared(const std::vector<PreparedPair>& prepared,
                        const std::vector<std::pair<G1, G2>>& fresh) {
  // Fresh G2 points get a locally-built table so every pair walks the same
  // coefficient schedule; reserve up front so &local.back() stays stable.
  std::vector<G2Prepared> local;
  local.reserve(fresh.size());

  std::vector<G1> g1s;
  std::vector<const G2Prepared*> tabs;
  g1s.reserve(prepared.size() + fresh.size());
  tabs.reserve(prepared.size() + fresh.size());
  for (const auto& pp : prepared) {
    // e(P, O) = e(O, Q) = 1: skip.
    if (pp.p.IsInfinity() || pp.q == nullptr || pp.q->IsInfinity()) continue;
    g1s.push_back(pp.p);
    tabs.push_back(pp.q);
  }
  for (const auto& [p, q] : fresh) {
    if (p.IsInfinity() || q.IsInfinity()) continue;
    local.emplace_back(q);
    g1s.push_back(p);
    tabs.push_back(&local.back());
  }

  const std::size_t n = g1s.size();
  if (n == 0) return GT::One();
  BatchToAffine<Fp>(std::span<G1>(g1s));

  Fp12 f = Fp12::One();
  std::size_t idx = 0;
  const int msb = ParamMsb();
  for (int i = msb - 1; i >= 0; --i) {
    f = f.Square();
    for (std::size_t k = 0; k < n; ++k) {
      FoldLine(&f, tabs[k]->coeffs()[idx], g1s[k].x, g1s[k].y);
    }
    ++idx;
    if ((kBlsParamAbs >> i) & 1) {
      for (std::size_t k = 0; k < n; ++k) {
        FoldLine(&f, tabs[k]->coeffs()[idx], g1s[k].x, g1s[k].y);
      }
      ++idx;
    }
  }
  // u < 0: conjugate once for the lockstep product.
  return FinalExponentiation(f.Conjugate());
}

}  // namespace apqa::crypto

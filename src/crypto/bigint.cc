#include "crypto/bigint.h"

#include <stdexcept>

namespace apqa::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

BigInt::BigInt(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

BigInt BigInt::FromLimbs(const u64* limbs, std::size_t n) {
  BigInt r;
  r.limbs_.assign(limbs, limbs + n);
  r.Trim();
  return r;
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  u64 top = limbs_.back();
  std::size_t b = 0;
  while (top != 0) {
    top >>= 1;
    ++b;
  }
  return (limbs_.size() - 1) * 64 + b;
}

int BigInt::Bit(std::size_t i) const {
  std::size_t w = i / 64;
  if (w >= limbs_.size()) return 0;
  return static_cast<int>((limbs_[w] >> (i % 64)) & 1);
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt r;
  std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  r.limbs_.resize(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 t = carry;
    if (i < limbs_.size()) t += limbs_[i];
    if (i < o.limbs_.size()) t += o.limbs_[i];
    r.limbs_[i] = static_cast<u64>(t);
    carry = static_cast<u64>(t >> 64);
  }
  r.limbs_[n] = carry;
  r.Trim();
  return r;
}

BigInt BigInt::operator-(const BigInt& o) const {
  if (Compare(o) < 0) throw std::invalid_argument("BigInt underflow");
  BigInt r;
  r.limbs_.resize(limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u128 t = static_cast<u128>(limbs_[i]) -
             (i < o.limbs_.size() ? o.limbs_[i] : 0) - borrow;
    r.limbs_[i] = static_cast<u64>(t);
    borrow = static_cast<u64>(t >> 64) & 1;
  }
  r.Trim();
  return r;
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (IsZero() || o.IsZero()) return BigInt();
  BigInt r;
  r.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      u128 t = static_cast<u128>(limbs_[i]) * o.limbs_[j] +
               r.limbs_[i + j] + carry;
      r.limbs_[i + j] = static_cast<u64>(t);
      carry = static_cast<u64>(t >> 64);
    }
    r.limbs_[i + o.limbs_.size()] += carry;
  }
  r.Trim();
  return r;
}

BigInt BigInt::ShiftLeft(std::size_t bits) const {
  if (IsZero()) return BigInt();
  std::size_t words = bits / 64, rem = bits % 64;
  BigInt r;
  r.limbs_.assign(limbs_.size() + words + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i + words] |= rem == 0 ? limbs_[i] : (limbs_[i] << rem);
    if (rem != 0 && i + words + 1 < r.limbs_.size()) {
      r.limbs_[i + words + 1] |= limbs_[i] >> (64 - rem);
    }
  }
  r.Trim();
  return r;
}

int BigInt::Compare(const BigInt& o) const {
  if (limbs_.size() != o.limbs_.size()) {
    return limbs_.size() < o.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* q, BigInt* r) {
  if (b.IsZero()) throw std::invalid_argument("BigInt division by zero");
  *q = BigInt();
  *r = BigInt();
  if (a.Compare(b) < 0) {
    *r = a;
    return;
  }
  // Simple shift-subtract long division; only used at init time.
  std::size_t shift = a.BitLength() - b.BitLength();
  BigInt cur = b.ShiftLeft(shift);
  BigInt rem = a;
  BigInt quotient;
  quotient.limbs_.assign(shift / 64 + 1, 0);
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (rem.Compare(cur) >= 0) {
      rem = rem - cur;
      quotient.limbs_[i / 64] |= (u64{1} << (i % 64));
    }
    if (i > 0) {
      // Shift cur right by 1.
      for (std::size_t w = 0; w + 1 < cur.limbs_.size(); ++w) {
        cur.limbs_[w] = (cur.limbs_[w] >> 1) | (cur.limbs_[w + 1] << 63);
      }
      if (!cur.limbs_.empty()) cur.limbs_.back() >>= 1;
      cur.Trim();
    }
  }
  quotient.Trim();
  *q = quotient;
  *r = rem;
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt q, r;
  DivMod(*this, o, &q, &r);
  return q;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt q, r;
  DivMod(*this, o, &q, &r);
  return r;
}

void BigInt::ToLimbs(u64* out, std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = i < limbs_.size() ? limbs_[i] : 0;
  }
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int sh = 60; sh >= 0; sh -= 4) {
      s.push_back(kDigits[(limbs_[i] >> sh) & 0xf]);
    }
  }
  std::size_t nz = s.find_first_not_of('0');
  return s.substr(nz);
}

}  // namespace apqa::crypto

// ChaCha20-based cryptographic pseudo-random generator.
//
// A deterministic stream cipher core keyed either from the OS entropy pool
// (default) or from an explicit seed (tests and reproducible benchmarks).
#ifndef APQA_CRYPTO_RNG_H_
#define APQA_CRYPTO_RNG_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "crypto/ct.h"
#include "crypto/fields.h"

namespace apqa::crypto {

class Rng {
 public:
  // Seeds from the OS entropy pool.
  Rng();
  // Deterministic stream for tests/benchmarks.
  explicit Rng(u64 seed);

  u64 NextU64();
  void Fill(void* out, std::size_t n);
  std::vector<std::uint8_t> Bytes(std::size_t n);

  // Uniform scalar in [0, r); rejection-free near-uniform sampling by
  // masking to 255 bits and a single masked (branch-free) reduction.
  Fr NextFr();
  // Non-zero scalar. The rejection loop branches only on "was the draw
  // exactly zero" (probability 2^-255) — quarantined as acceptable
  // (see DESIGN.md, secret-taint discipline).
  Fr NextNonZeroFr();

  // Taint-typed draws for key material and blinding scalars: identical
  // stream to NextFr/NextNonZeroFr (same number of ChaCha blocks consumed),
  // wrapped as SecretFr so downstream code cannot reach a variable-time
  // scalar path without Declassify().
  SecretFr NextSecretFr() { return SecretFr(NextFr()); }
  SecretFr NextNonZeroSecretFr() { return SecretFr(NextNonZeroFr()); }

 private:
  void Refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t pos_;
};

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_RNG_H_

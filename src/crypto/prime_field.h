// Generic prime field with Montgomery-form arithmetic.
//
// `Tag` supplies the modulus as little-endian 64-bit limbs:
//
//   struct MyTag {
//     static constexpr std::size_t kLimbs = 6;
//     static constexpr Limbs<6> kModulus = {...};
//   };
//
// All derived Montgomery constants (R mod p, R^2 mod p, -p^-1 mod 2^64) are
// computed once at first use from the modulus alone, so there is a single
// source of truth for each field.
#ifndef APQA_CRYPTO_PRIME_FIELD_H_
#define APQA_CRYPTO_PRIME_FIELD_H_

#include <cstddef>
#include <span>

#include "crypto/limbs.h"

namespace apqa::crypto {

template <typename Tag>
class PrimeField {
 public:
  static constexpr std::size_t kLimbs = Tag::kLimbs;
  using L = Limbs<kLimbs>;

  constexpr PrimeField() : v_{} {}

  static const L& Modulus() { return Tag::kModulus; }

  static PrimeField Zero() { return PrimeField(); }
  static PrimeField One() {
    PrimeField r;
    r.v_ = Consts().r1;
    return r;
  }

  static PrimeField FromU64(u64 x) {
    L l{};
    l[0] = x;
    return FromCanonical(l);
  }

  // Interprets `l` as a canonical integer; it must already be < modulus.
  static PrimeField FromCanonical(const L& l) {
    PrimeField r;
    r.v_ = MontMul(l, Consts().r2);
    return r;
  }

  // Reduces an arbitrary N-limb value, then converts to Montgomery form.
  static PrimeField FromCanonicalReduce(L l) {
    while (CompareLimbs<kLimbs>(l, Tag::kModulus) >= 0) {
      SubLimbs<kLimbs>(l, Tag::kModulus, &l);
    }
    return FromCanonical(l);
  }

  L ToCanonical() const {
    L one{};
    one[0] = 1;
    return MontMul(v_, one);
  }

  // Comparisons accumulate over every limb (no early exit) so equality and
  // zero tests on secret field elements do not leak a matching prefix.
  bool IsZero() const { return CtIsZeroMaskLimbs<kLimbs>(v_) != 0; }
  bool operator==(const PrimeField& o) const {
    return CtEqMaskLimbs<kLimbs>(v_, o.v_) != 0;
  }
  bool operator!=(const PrimeField& o) const { return !(*this == o); }

  // Addition/subtraction/multiplication run a fixed instruction sequence:
  // the final reduction always computes the conditional subtraction (or
  // addition) and selects the result with a mask, never a branch. Secret
  // field elements therefore flow through +, -, * without a data-dependent
  // branch or access pattern (crypto/ct.h relies on this).
  PrimeField operator+(const PrimeField& o) const {
    PrimeField r;
    u64 carry = AddLimbs<kLimbs>(v_, o.v_, &r.v_);
    L reduced;
    u64 borrow = SubLimbs<kLimbs>(r.v_, Tag::kModulus, &reduced);
    // Subtract p when the raw sum overflowed 64*kLimbs bits or is >= p
    // (i.e. the trial subtraction did not borrow).
    u64 use = u64{0} - (carry | (borrow ^ 1));
    CtSelectLimbs<kLimbs>(use, reduced, r.v_, &r.v_);
    return r;
  }

  PrimeField operator-(const PrimeField& o) const {
    PrimeField r;
    u64 borrow = SubLimbs<kLimbs>(v_, o.v_, &r.v_);
    L lifted;
    AddLimbs<kLimbs>(r.v_, Tag::kModulus, &lifted);
    CtSelectLimbs<kLimbs>(u64{0} - borrow, lifted, r.v_, &r.v_);
    return r;
  }

  PrimeField operator-() const { return Zero() - *this; }

  PrimeField operator*(const PrimeField& o) const {
    PrimeField r;
    r.v_ = MontMul(v_, o.v_);
    return r;
  }

  PrimeField Square() const { return *this * *this; }

  PrimeField Double() const { return *this + *this; }

  // Exponentiation by an arbitrary little-endian limb span (canonical int).
  PrimeField Pow(std::span<const u64> e) const {
    std::size_t bits = 0;
    for (std::size_t i = e.size(); i-- > 0;) {
      if (e[i] != 0) {
        u64 t = e[i];
        bits = i * 64;
        while (t) {
          t >>= 1;
          ++bits;
        }
        break;
      }
    }
    PrimeField acc = One();
    for (std::size_t i = bits; i-- > 0;) {
      acc = acc.Square();
      if ((e[i / 64] >> (i % 64)) & 1) acc = acc * *this;
    }
    return acc;
  }

  // Constant-pattern multiplicative inverse via Fermat: a^(p-2). The
  // exponent is the public modulus, so the square-and-multiply branch
  // pattern is data-independent; only the (constant-time) field
  // multiplications see the secret base. ~3x slower than the EGCD
  // Inverse() below — use this for secret inputs, Inverse() for public
  // ones. Returns zero for zero input.
  PrimeField CtInverse() const {
    L e = Tag::kModulus;
    L two{};
    two[0] = 2;
    SubLimbs<kLimbs>(e, two, &e);
    return Pow(std::span<const u64>(e.data(), kLimbs));
  }

  // Multiplicative inverse via binary extended GCD (HAC 14.61 style).
  // VARIABLE TIME in the value being inverted: the GCD iteration count and
  // branch pattern depend on the operand. Only public data may flow here;
  // secret inversions go through CtInverse() (enforced by the Secret<T>
  // taint wrapper in crypto/ct.h). Returns zero for zero input.
  PrimeField Inverse() const {
    if (IsZero()) return Zero();
    const L& p = Tag::kModulus;
    L u = ToCanonical();
    L v = p;
    L x1{}, x2{};
    x1[0] = 1;
    auto halve_mod = [&p](L* x) {
      if ((*x)[0] & 1) {
        u64 carry = AddLimbs<kLimbs>(*x, p, x);
        Shr1Limbs<kLimbs>(x);
        (*x)[kLimbs - 1] |= carry << 63;
      } else {
        Shr1Limbs<kLimbs>(x);
      }
    };
    auto sub_mod = [&p](L* a, const L& b) {
      if (SubLimbs<kLimbs>(*a, b, a)) AddLimbs<kLimbs>(*a, p, a);
    };
    L one{};
    one[0] = 1;
    while (u != one && v != one) {
      while (!(u[0] & 1)) {
        Shr1Limbs<kLimbs>(&u);
        halve_mod(&x1);
      }
      while (!(v[0] & 1)) {
        Shr1Limbs<kLimbs>(&v);
        halve_mod(&x2);
      }
      if (CompareLimbs<kLimbs>(u, v) >= 0) {
        SubLimbs<kLimbs>(u, v, &u);
        sub_mod(&x1, x2);
      } else {
        SubLimbs<kLimbs>(v, u, &v);
        sub_mod(&x2, x1);
      }
    }
    PrimeField r;
    r.v_ = (u == one) ? x1 : x2;
    // r.v_ currently holds the canonical inverse; lift to Montgomery form.
    r.v_ = MontMul(r.v_, Consts().r2);
    return r;
  }

  // Raw Montgomery representation (for serialization of field elements the
  // canonical form should be used; this accessor exists for hashing state).
  const L& MontgomeryRepr() const { return v_; }

 private:
  struct MontConsts {
    L r1;   // 2^(64*kLimbs) mod p  == Montgomery form of 1
    L r2;   // 2^(2*64*kLimbs) mod p
    u64 inv;  // -p^-1 mod 2^64
  };

  static const MontConsts& Consts() {
    static const MontConsts c = [] {
      MontConsts mc{};
      const L& p = Tag::kModulus;
      // r1 = 2^(64N) mod p by repeated doubling of 1.
      L x{};
      x[0] = 1;
      for (std::size_t i = 0; i < 64 * kLimbs; ++i) {
        u64 carry = AddLimbs<kLimbs>(x, x, &x);
        if (carry || CompareLimbs<kLimbs>(x, p) >= 0) {
          SubLimbs<kLimbs>(x, p, &x);
        }
      }
      mc.r1 = x;
      // r2 = 2^(2*64N) mod p: double r1 another 64N times.
      for (std::size_t i = 0; i < 64 * kLimbs; ++i) {
        u64 carry = AddLimbs<kLimbs>(x, x, &x);
        if (carry || CompareLimbs<kLimbs>(x, p) >= 0) {
          SubLimbs<kLimbs>(x, p, &x);
        }
      }
      mc.r2 = x;
      // inv = -p^-1 mod 2^64 by Newton iteration.
      u64 inv = 1;
      for (int i = 0; i < 6; ++i) inv *= 2 - p[0] * inv;
      mc.inv = ~inv + 1;  // negate mod 2^64
      return mc;
    }();
    return c;
  }

  // CIOS Montgomery multiplication: returns a*b*R^-1 mod p.
  static L MontMul(const L& a, const L& b) {
    const L& p = Tag::kModulus;
    const u64 inv = Consts().inv;
    u64 t[kLimbs + 2] = {0};
    for (std::size_t i = 0; i < kLimbs; ++i) {
      u64 carry = 0;
      for (std::size_t j = 0; j < kLimbs; ++j) {
        u128 s = static_cast<u128>(a[j]) * b[i] + t[j] + carry;
        t[j] = static_cast<u64>(s);
        carry = static_cast<u64>(s >> 64);
      }
      u128 s = static_cast<u128>(t[kLimbs]) + carry;
      t[kLimbs] = static_cast<u64>(s);
      t[kLimbs + 1] = static_cast<u64>(s >> 64);

      u64 m = t[0] * inv;
      u128 s2 = static_cast<u128>(m) * p[0] + t[0];
      carry = static_cast<u64>(s2 >> 64);
      for (std::size_t j = 1; j < kLimbs; ++j) {
        s2 = static_cast<u128>(m) * p[j] + t[j] + carry;
        t[j - 1] = static_cast<u64>(s2);
        carry = static_cast<u64>(s2 >> 64);
      }
      s2 = static_cast<u128>(t[kLimbs]) + carry;
      t[kLimbs - 1] = static_cast<u64>(s2);
      t[kLimbs] = t[kLimbs + 1] + static_cast<u64>(s2 >> 64);
      t[kLimbs + 1] = 0;
    }
    L r;
    std::memcpy(r.data(), t, sizeof(r));
    // Branch-free final reduction: subtract p when the product carried into
    // the extra limb or the low limbs are >= p.
    L reduced;
    u64 borrow = SubLimbs<kLimbs>(r, p, &reduced);
    u64 use = CtNonZeroMask64(t[kLimbs]) | (u64{0} - (borrow ^ 1));
    CtSelectLimbs<kLimbs>(use, reduced, r, &r);
    return r;
  }

  L v_;
};

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_PRIME_FIELD_H_

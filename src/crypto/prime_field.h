// Generic prime field with Montgomery-form arithmetic.
//
// `Tag` supplies the modulus as little-endian 64-bit limbs:
//
//   struct MyTag {
//     static constexpr std::size_t kLimbs = 6;
//     static constexpr Limbs<6> kModulus = {...};
//   };
//
// All derived Montgomery constants (R mod p, R^2 mod p, -p^-1 mod 2^64) are
// computed once at first use from the modulus alone, so there is a single
// source of truth for each field.
#ifndef APQA_CRYPTO_PRIME_FIELD_H_
#define APQA_CRYPTO_PRIME_FIELD_H_

#include <cstddef>
#include <span>

#include "crypto/limbs.h"

namespace apqa::crypto {

template <typename Tag>
class PrimeField {
 public:
  static constexpr std::size_t kLimbs = Tag::kLimbs;
  using L = Limbs<kLimbs>;

  constexpr PrimeField() : v_{} {}

  static const L& Modulus() { return Tag::kModulus; }

  static PrimeField Zero() { return PrimeField(); }
  static PrimeField One() {
    PrimeField r;
    r.v_ = Consts().r1;
    return r;
  }

  static PrimeField FromU64(u64 x) {
    L l{};
    l[0] = x;
    return FromCanonical(l);
  }

  // Interprets `l` as a canonical integer; it must already be < modulus.
  static PrimeField FromCanonical(const L& l) {
    PrimeField r;
    r.v_ = MontMul(l, Consts().r2);
    return r;
  }

  // Reduces an arbitrary N-limb value, then converts to Montgomery form.
  static PrimeField FromCanonicalReduce(L l) {
    while (CompareLimbs<kLimbs>(l, Tag::kModulus) >= 0) {
      SubLimbs<kLimbs>(l, Tag::kModulus, &l);
    }
    return FromCanonical(l);
  }

  L ToCanonical() const {
    L one{};
    one[0] = 1;
    return MontMul(v_, one);
  }

  bool IsZero() const { return IsZeroLimbs<kLimbs>(v_); }
  bool operator==(const PrimeField& o) const { return v_ == o.v_; }
  bool operator!=(const PrimeField& o) const { return !(v_ == o.v_); }

  PrimeField operator+(const PrimeField& o) const {
    PrimeField r;
    u64 carry = AddLimbs<kLimbs>(v_, o.v_, &r.v_);
    if (carry || CompareLimbs<kLimbs>(r.v_, Tag::kModulus) >= 0) {
      SubLimbs<kLimbs>(r.v_, Tag::kModulus, &r.v_);
    }
    return r;
  }

  PrimeField operator-(const PrimeField& o) const {
    PrimeField r;
    u64 borrow = SubLimbs<kLimbs>(v_, o.v_, &r.v_);
    if (borrow) AddLimbs<kLimbs>(r.v_, Tag::kModulus, &r.v_);
    return r;
  }

  PrimeField operator-() const { return Zero() - *this; }

  PrimeField operator*(const PrimeField& o) const {
    PrimeField r;
    r.v_ = MontMul(v_, o.v_);
    return r;
  }

  PrimeField Square() const { return *this * *this; }

  PrimeField Double() const { return *this + *this; }

  // Exponentiation by an arbitrary little-endian limb span (canonical int).
  PrimeField Pow(std::span<const u64> e) const {
    std::size_t bits = 0;
    for (std::size_t i = e.size(); i-- > 0;) {
      if (e[i] != 0) {
        u64 t = e[i];
        bits = i * 64;
        while (t) {
          t >>= 1;
          ++bits;
        }
        break;
      }
    }
    PrimeField acc = One();
    for (std::size_t i = bits; i-- > 0;) {
      acc = acc.Square();
      if ((e[i / 64] >> (i % 64)) & 1) acc = acc * *this;
    }
    return acc;
  }

  // Multiplicative inverse via binary extended GCD (HAC 14.61 style).
  // Returns zero for zero input.
  PrimeField Inverse() const {
    if (IsZero()) return Zero();
    const L& p = Tag::kModulus;
    L u = ToCanonical();
    L v = p;
    L x1{}, x2{};
    x1[0] = 1;
    auto halve_mod = [&p](L* x) {
      if ((*x)[0] & 1) {
        u64 carry = AddLimbs<kLimbs>(*x, p, x);
        Shr1Limbs<kLimbs>(x);
        (*x)[kLimbs - 1] |= carry << 63;
      } else {
        Shr1Limbs<kLimbs>(x);
      }
    };
    auto sub_mod = [&p](L* a, const L& b) {
      if (SubLimbs<kLimbs>(*a, b, a)) AddLimbs<kLimbs>(*a, p, a);
    };
    L one{};
    one[0] = 1;
    while (u != one && v != one) {
      while (!(u[0] & 1)) {
        Shr1Limbs<kLimbs>(&u);
        halve_mod(&x1);
      }
      while (!(v[0] & 1)) {
        Shr1Limbs<kLimbs>(&v);
        halve_mod(&x2);
      }
      if (CompareLimbs<kLimbs>(u, v) >= 0) {
        SubLimbs<kLimbs>(u, v, &u);
        sub_mod(&x1, x2);
      } else {
        SubLimbs<kLimbs>(v, u, &v);
        sub_mod(&x2, x1);
      }
    }
    PrimeField r;
    r.v_ = (u == one) ? x1 : x2;
    // r.v_ currently holds the canonical inverse; lift to Montgomery form.
    r.v_ = MontMul(r.v_, Consts().r2);
    return r;
  }

  // Raw Montgomery representation (for serialization of field elements the
  // canonical form should be used; this accessor exists for hashing state).
  const L& MontgomeryRepr() const { return v_; }

 private:
  struct MontConsts {
    L r1;   // 2^(64*kLimbs) mod p  == Montgomery form of 1
    L r2;   // 2^(2*64*kLimbs) mod p
    u64 inv;  // -p^-1 mod 2^64
  };

  static const MontConsts& Consts() {
    static const MontConsts c = [] {
      MontConsts c{};
      const L& p = Tag::kModulus;
      // r1 = 2^(64N) mod p by repeated doubling of 1.
      L x{};
      x[0] = 1;
      for (std::size_t i = 0; i < 64 * kLimbs; ++i) {
        u64 carry = AddLimbs<kLimbs>(x, x, &x);
        if (carry || CompareLimbs<kLimbs>(x, p) >= 0) {
          SubLimbs<kLimbs>(x, p, &x);
        }
      }
      c.r1 = x;
      // r2 = 2^(2*64N) mod p: double r1 another 64N times.
      for (std::size_t i = 0; i < 64 * kLimbs; ++i) {
        u64 carry = AddLimbs<kLimbs>(x, x, &x);
        if (carry || CompareLimbs<kLimbs>(x, p) >= 0) {
          SubLimbs<kLimbs>(x, p, &x);
        }
      }
      c.r2 = x;
      // inv = -p^-1 mod 2^64 by Newton iteration.
      u64 inv = 1;
      for (int i = 0; i < 6; ++i) inv *= 2 - p[0] * inv;
      c.inv = ~inv + 1;  // negate mod 2^64
      return c;
    }();
    return c;
  }

  // CIOS Montgomery multiplication: returns a*b*R^-1 mod p.
  static L MontMul(const L& a, const L& b) {
    const L& p = Tag::kModulus;
    const u64 inv = Consts().inv;
    u64 t[kLimbs + 2] = {0};
    for (std::size_t i = 0; i < kLimbs; ++i) {
      u64 carry = 0;
      for (std::size_t j = 0; j < kLimbs; ++j) {
        u128 s = static_cast<u128>(a[j]) * b[i] + t[j] + carry;
        t[j] = static_cast<u64>(s);
        carry = static_cast<u64>(s >> 64);
      }
      u128 s = static_cast<u128>(t[kLimbs]) + carry;
      t[kLimbs] = static_cast<u64>(s);
      t[kLimbs + 1] = static_cast<u64>(s >> 64);

      u64 m = t[0] * inv;
      u128 s2 = static_cast<u128>(m) * p[0] + t[0];
      carry = static_cast<u64>(s2 >> 64);
      for (std::size_t j = 1; j < kLimbs; ++j) {
        s2 = static_cast<u128>(m) * p[j] + t[j] + carry;
        t[j - 1] = static_cast<u64>(s2);
        carry = static_cast<u64>(s2 >> 64);
      }
      s2 = static_cast<u128>(t[kLimbs]) + carry;
      t[kLimbs - 1] = static_cast<u64>(s2);
      t[kLimbs] = t[kLimbs + 1] + static_cast<u64>(s2 >> 64);
      t[kLimbs + 1] = 0;
    }
    L r;
    std::memcpy(r.data(), t, sizeof(r));
    L tmp;
    if (t[kLimbs] != 0 || CompareLimbs<kLimbs>(r, p) >= 0) {
      SubLimbs<kLimbs>(r, p, &tmp);
      r = tmp;
    }
    return r;
  }

  L v_;
};

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_PRIME_FIELD_H_

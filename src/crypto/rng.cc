#include "crypto/rng.h"

#include <fstream>

namespace apqa::crypto {

namespace {

inline std::uint32_t Rotl(std::uint32_t v, int c) {
  return (v << c) | (v >> (32 - c));
}

inline void QuarterRound(std::uint32_t* a, std::uint32_t* b, std::uint32_t* c,
                         std::uint32_t* d) {
  *a += *b;
  *d = Rotl(*d ^ *a, 16);
  *c += *d;
  *b = Rotl(*b ^ *c, 12);
  *a += *b;
  *d = Rotl(*d ^ *a, 8);
  *c += *d;
  *b = Rotl(*b ^ *c, 7);
}

void ChaChaBlock(const std::array<std::uint32_t, 16>& in,
                 std::array<std::uint8_t, 64>* out) {
  std::array<std::uint32_t, 16> x = in;
  for (int round = 0; round < 10; ++round) {
    QuarterRound(&x[0], &x[4], &x[8], &x[12]);
    QuarterRound(&x[1], &x[5], &x[9], &x[13]);
    QuarterRound(&x[2], &x[6], &x[10], &x[14]);
    QuarterRound(&x[3], &x[7], &x[11], &x[15]);
    QuarterRound(&x[0], &x[5], &x[10], &x[15]);
    QuarterRound(&x[1], &x[6], &x[11], &x[12]);
    QuarterRound(&x[2], &x[7], &x[8], &x[13]);
    QuarterRound(&x[3], &x[4], &x[9], &x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = x[i] + in[i];
    (*out)[4 * i + 0] = static_cast<std::uint8_t>(v);
    (*out)[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    (*out)[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    (*out)[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

}  // namespace

Rng::Rng() : pos_(64) {
  state_ = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  std::ifstream urandom("/dev/urandom", std::ios::binary);
  std::uint8_t key[32];
  urandom.read(reinterpret_cast<char*>(key), sizeof(key));
  for (int i = 0; i < 8; ++i) {
    std::memcpy(&state_[4 + i], key + 4 * i, 4);
  }
}

Rng::Rng(u64 seed) : pos_(64) {
  state_ = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  state_[4] = static_cast<std::uint32_t>(seed);
  state_[5] = static_cast<std::uint32_t>(seed >> 32);
  state_[6] = 0x9e3779b9;
  state_[7] = 0x7f4a7c15;
}

void Rng::Refill() {
  ChaChaBlock(state_, &block_);
  pos_ = 0;
  // 64-bit block counter in words 12/13.
  if (++state_[12] == 0) ++state_[13];
}

void Rng::Fill(void* out, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(out);
  while (n > 0) {
    if (pos_ == 64) Refill();
    std::size_t take = std::min<std::size_t>(64 - pos_, n);
    std::memcpy(p, block_.data() + pos_, take);
    pos_ += take;
    p += take;
    n -= take;
  }
}

u64 Rng::NextU64() {
  u64 v;
  Fill(&v, sizeof(v));
  return v;
}

std::vector<std::uint8_t> Rng::Bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  Fill(v.data(), n);
  return v;
}

Fr Rng::NextFr() {
  Limbs<4> l;
  Fill(l.data(), sizeof(l));
  l[3] &= 0x7fffffffffffffffULL;  // < 2^255 < 2r, so one subtraction suffices
  // Branch-free single reduction: always compute l - r and select by the
  // borrow, so the expanded seed bytes never steer a branch.
  Limbs<4> reduced;
  u64 borrow = SubLimbs<4>(l, Fr::Modulus(), &reduced);
  CtSelectLimbs<4>(u64{0} - borrow, l, reduced, &l);
  return Fr::FromCanonical(l);
}

Fr Rng::NextNonZeroFr() {
  for (;;) {
    Fr f = NextFr();
    if (!f.IsZero()) return f;
  }
}

}  // namespace apqa::crypto

// Optimal ate pairing e : G1 x G2 -> GT for BLS12-381.
//
// The Miller loop is computed over the untwisted image of G2 in E(Fp12) with
// affine line functions — a deliberately simple, easily-audited formulation.
// Products of pairings share a single final exponentiation via
// `MultiPairing`, which is the dominant cost saver for ABS verification.
#ifndef APQA_CRYPTO_PAIRING_H_
#define APQA_CRYPTO_PAIRING_H_

#include <utility>
#include <vector>

#include "crypto/curve.h"
#include "crypto/fp12.h"

namespace apqa::crypto {

using GT = Fp12;

// Miller loop f_{|u|,Q}(P), conjugated for the negative curve parameter.
// Returns GT::One() if either input is infinity (so that degenerate terms
// drop out of pairing products).
GT MillerLoop(const G1& p, const G2& q);

// Generic reference Miller loop over the untwisted image of G2 in E(Fp12).
// Slower than MillerLoop (which works on the twist with Fp2 line
// arithmetic); kept for cross-validation.
GT MillerLoopGeneric(const G1& p, const G2& q);

// Final exponentiation. Computes f^(3 (p^12 - 1) / r) via the BLS12
// parameter addition chain; the fixed cube is coprime to r, so the result
// is still a non-degenerate bilinear pairing (the convention production
// BLS12-381 libraries use) and IsOne checks are unaffected. Every pairing
// path in this library shares this one function.
GT FinalExponentiation(const GT& f);

// Audit oracle: the exact exponent f^((p^12 - 1) / r) computed by generic
// windowed exponentiation against an integer-arithmetic-derived hard part.
// FinalExponentiation(f) == FinalExponentiationGeneric(f)^3 is unit-tested.
GT FinalExponentiationGeneric(const GT& f);

// e(p, q).
GT Pairing(const G1& p, const G2& q);

// prod_i e(p_i, q_i) with one shared final exponentiation. The Miller loops
// run in lockstep so that each doubling/addition step merges the per-pair
// affine-slope inversions into a single batched inversion (Montgomery's
// trick), and the inputs are affine-normalized with one inversion per side.
GT MultiPairing(const std::vector<std::pair<G1, G2>>& pairs);

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_PAIRING_H_

#include "crypto/ct.h"

#include "crypto/msm.h"

namespace apqa::crypto {

namespace ct_trace {
void (*hook)(char op, unsigned step) = nullptr;
}  // namespace ct_trace

const Fp& CtCurveB3<Fp>::Get() {
  static const Fp b3 = [] {
    Fp b = G1CurveB();
    return b + b + b;
  }();
  return b3;
}

const Fp2& CtCurveB3<Fp2>::Get() {
  static const Fp2 b3 = [] {
    Fp2 b = G2CurveB();
    return b + b + b;
  }();
  return b3;
}

G1 CtG1Mul(const SecretFr& k) { return G1GeneratorTable().MulCt(k); }

G2 CtG2Mul(const SecretFr& k) { return G2GeneratorTable().MulCt(k); }

Fp12 CtPow(const Fp12& base, const SecretFr& k) {
  const Limbs<4> e = k.ct_ref().ToCanonical();
  Fp12 acc = Fp12::One();
  // Fixed 255 iterations (Fr < 2^255): square always, multiply always,
  // keep the product only when the exponent bit is set.
  for (unsigned i = 255; i-- > 0;) {
    ct_trace::Emit('P', i);
    acc = acc.Square();
    Fp12 with_mul = acc * base;
    u64 bit = (e[i / 64] >> (i % 64)) & 1u;
    CtCondAssignObj(&acc, with_mul, u64{0} - bit);
  }
  return acc;
}

}  // namespace apqa::crypto

// Short Weierstrass curve arithmetic (a = 0) in Jacobian coordinates,
// generic over the coordinate field. Instantiated for G1 (over Fp) and
// G2 (over Fp2) of BLS12-381, and for the untwisted image of G2 over Fp12
// inside the Miller loop.
#ifndef APQA_CRYPTO_CURVE_H_
#define APQA_CRYPTO_CURVE_H_

#include "crypto/fp2.h"

namespace apqa::crypto {

// Taint wrapper for secret scalars (crypto/ct.h). Forward-declared here so
// the variable-time entry points below can delete their Secret overloads:
// passing a SecretFr to ScalarMul is a compile error, not a silent leak.
template <typename T>
class Secret;

template <typename F>
struct CurvePoint {
  // Jacobian coordinates (X/Z^2, Y/Z^3); Z == 0 encodes infinity.
  F x, y, z;

  static CurvePoint Infinity() { return {F::Zero(), F::One(), F::Zero()}; }

  static CurvePoint FromAffine(const F& ax, const F& ay) {
    return {ax, ay, F::One()};
  }

  bool IsInfinity() const { return z.IsZero(); }

  CurvePoint operator-() const { return {x, -y, z}; }

  CurvePoint Double() const {
    if (IsInfinity()) return *this;
    // dbl-2009-l formulas for a = 0.
    F a = x.Square();
    F b = y.Square();
    F c = b.Square();
    F t = (x + b).Square() - a - c;
    F d = t + t;
    F e = a + a + a;
    F f = e.Square();
    F x3 = f - (d + d);
    F c8 = c + c;
    c8 = c8 + c8;
    c8 = c8 + c8;
    F y3 = e * (d - x3) - c8;
    F yz = y * z;
    F z3 = yz + yz;
    return {x3, y3, z3};
  }

  CurvePoint operator+(const CurvePoint& o) const {
    if (IsInfinity()) return o;
    if (o.IsInfinity()) return *this;
    // add-2007-bl general Jacobian addition.
    F z1z1 = z.Square();
    F z2z2 = o.z.Square();
    F u1 = x * z2z2;
    F u2 = o.x * z1z1;
    F s1 = y * o.z * z2z2;
    F s2 = o.y * z * z1z1;
    if (u1 == u2) {
      if (s1 == s2) return Double();
      return Infinity();
    }
    F h = u2 - u1;
    F i = (h + h).Square();
    F j = h * i;
    F rr = (s2 - s1);
    rr = rr + rr;
    F v = u1 * i;
    F x3 = rr.Square() - j - (v + v);
    F s1j = s1 * j;
    F y3 = rr * (v - x3) - (s1j + s1j);
    F z3 = ((z + o.z).Square() - z1z1 - z2z2) * h;
    return {x3, y3, z3};
  }

  CurvePoint operator-(const CurvePoint& o) const { return *this + (-o); }

  // Mixed addition with an affine point (implicit Z2 = 1); madd-2007-bl.
  // Saves 4 field multiplications over the general addition, which is what
  // makes precomputed affine tables (msm.h) pay off.
  CurvePoint AddMixed(const F& bx, const F& by) const {
    if (IsInfinity()) return FromAffine(bx, by);
    F z1z1 = z.Square();
    F u2 = bx * z1z1;
    F s2 = by * z * z1z1;
    if (x == u2) {
      if (y == s2) return Double();
      return Infinity();
    }
    F h = u2 - x;
    F hh = h.Square();
    F i = hh + hh;
    i = i + i;
    F j = h * i;
    F rr = s2 - y;
    rr = rr + rr;
    F v = x * i;
    F x3 = rr.Square() - j - (v + v);
    F yj = y * j;
    F y3 = rr * (v - x3) - (yj + yj);
    F z3 = (z + h).Square() - z1z1 - hh;
    return {x3, y3, z3};
  }

  // Scalar multiplication by a canonical Fr scalar. Uses a width-4 wNAF
  // (≈25% fewer additions than double-and-add). NOT constant time — the
  // recoding loop, digit skips and table indices all depend on the scalar —
  // so it accepts public scalars only; secret scalars are rejected at
  // compile time and go through CtScalarMul / FixedBaseTable::MulCt
  // (crypto/ct.h, crypto/msm.h) instead.
  CurvePoint ScalarMul(const Fr& k) const {
    return ScalarMulCanonical(k.ToCanonical());
  }
  CurvePoint ScalarMul(const Secret<Fr>&) const = delete;

  // Same, by an arbitrary 4-limb integer that need not be reduced mod r.
  // Needed for the subgroup membership check, which multiplies by r itself.
  CurvePoint ScalarMulCanonical(const Limbs<4>& e) const {
    if (IsZeroLimbs<4>(e)) return Infinity();

    // Recode into width-4 non-adjacent form: digits in {±1, ±3, ..., ±15}.
    // One extra limb absorbs the possible carry out of the top bit.
    Limbs<5> n{};
    for (int i = 0; i < 4; ++i) n[i] = e[i];
    signed char digits[5 * 64 + 1] = {0};
    int len = 0;
    while (!IsZeroLimbs<5>(n)) {
      int d = 0;
      if (n[0] & 1) {
        d = static_cast<int>(n[0] & 15);
        if (d >= 8) d -= 16;
        if (d > 0) {
          Limbs<5> v{};
          v[0] = static_cast<u64>(d);
          SubLimbs<5>(n, v, &n);
        } else {
          Limbs<5> v{};
          v[0] = static_cast<u64>(-d);
          AddLimbs<5>(n, v, &n);
        }
      }
      digits[len++] = static_cast<signed char>(d);
      Shr1Limbs<5>(&n);
    }

    // Precompute odd multiples P, 3P, ..., 15P.
    CurvePoint table[8];
    table[0] = *this;
    CurvePoint twice = Double();
    for (int i = 1; i < 8; ++i) table[i] = table[i - 1] + twice;

    CurvePoint acc = Infinity();
    for (int i = len; i-- > 0;) {
      acc = acc.Double();
      int d = digits[i];
      if (d > 0) {
        acc = acc + table[d / 2];
      } else if (d < 0) {
        acc = acc - table[(-d) / 2];
      }
    }
    return acc;
  }

  // Reference double-and-add implementation (kept for cross-validation in
  // tests).
  CurvePoint ScalarMulBinary(const Fr& k) const {
    Limbs<4> e = k.ToCanonical();
    CurvePoint acc = Infinity();
    std::size_t bits = BitLengthLimbs<4>(e);
    for (std::size_t i = bits; i-- > 0;) {
      acc = acc.Double();
      if (BitLimbs<4>(e, i)) acc = acc + *this;
    }
    return acc;
  }

  // Normalizes to affine coordinates; infinity maps to (0, 0, 0).
  void ToAffine(F* ax, F* ay) const {
    if (IsInfinity()) {
      *ax = F::Zero();
      *ay = F::Zero();
      return;
    }
    F zi = z.Inverse();
    F zi2 = zi.Square();
    *ax = x * zi2;
    *ay = y * zi2 * zi;
  }

  bool operator==(const CurvePoint& o) const {
    if (IsInfinity() || o.IsInfinity()) {
      return IsInfinity() == o.IsInfinity();
    }
    // Cross-multiplied comparison avoids inversions.
    F z1z1 = z.Square();
    F z2z2 = o.z.Square();
    if (x * z2z2 != o.x * z1z1) return false;
    return y * o.z * z2z2 == o.y * z * z1z1;
  }
  bool operator!=(const CurvePoint& o) const { return !(*this == o); }

  // Checks y^2 == x^3 + b (affine form) for a given curve constant.
  bool OnCurve(const F& b) const {
    if (IsInfinity()) return true;
    F ax, ay;
    ToAffine(&ax, &ay);
    return ay.Square() == ax.Square() * ax + b;
  }

  // Prime-order-subgroup membership: r·P = ∞. Both BLS12-381 curves have
  // composite order h·r, and a signature forged from a small-cofactor
  // component would survive the curve-equation check, so every point read
  // from untrusted bytes must pass this too. Costs one scalar
  // multiplication; a cofactor/endomorphism check (Scott 2021) would be
  // ~2x faster if deserialization ever becomes a measured bottleneck.
  bool InPrimeOrderSubgroup() const {
    if (IsInfinity()) return true;
    return ScalarMulCanonical(Fr::Modulus()).IsInfinity();
  }
};

using G1 = CurvePoint<Fp>;
using G2 = CurvePoint<Fp2>;

// Standard generators and curve constants.
const G1& G1Generator();
const G2& G2Generator();
Fp G1CurveB();    // 4
Fp2 G2CurveB();   // 4 * (1 + i)

// g^k for the standard generators, via fixed-base tables (msm.h) built on
// first use. Variable time — public exponents only; CtG1Mul/CtG2Mul
// (crypto/ct.h) are the constant-pattern versions for secret exponents.
G1 G1Mul(const Fr& k);
G2 G2Mul(const Fr& k);
G1 G1Mul(const Secret<Fr>&) = delete;
G2 G2Mul(const Secret<Fr>&) = delete;

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_CURVE_H_

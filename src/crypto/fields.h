// Concrete prime fields of the BLS12-381 pairing-friendly curve.
//
//   Fp — 381-bit base field (6 limbs)
//   Fr — 255-bit scalar field (4 limbs), the order of G1/G2/GT
//
// The curve constants are validated at test time: the standard generators
// must satisfy the curve equations and be annihilated by the group order r.
#ifndef APQA_CRYPTO_FIELDS_H_
#define APQA_CRYPTO_FIELDS_H_

#include "crypto/prime_field.h"

namespace apqa::crypto {

struct FpTag {
  static constexpr std::size_t kLimbs = 6;
  static constexpr Limbs<6> kModulus = {
      0xb9feffffffffaaab, 0x1eabfffeb153ffff, 0x6730d2a0f6b0f624,
      0x64774b84f38512bf, 0x4b1ba7b6434bacd7, 0x1a0111ea397fe69a};
};

struct FrTag {
  static constexpr std::size_t kLimbs = 4;
  static constexpr Limbs<4> kModulus = {
      0xffffffff00000001, 0x53bda402fffe5bfe, 0x3339d80809a1d805,
      0x73eda753299d7d48};
};

using Fp = PrimeField<FpTag>;
using Fr = PrimeField<FrTag>;

// |u| for the BLS12-381 curve parameter u = -0xd201000000010000.
inline constexpr u64 kBlsParamAbs = 0xd201000000010000ULL;

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_FIELDS_H_

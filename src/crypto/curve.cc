#include "crypto/curve.h"

#include "crypto/msm.h"

namespace apqa::crypto {

namespace {

Fp FpFromLimbs(const Limbs<6>& l) { return Fp::FromCanonical(l); }

}  // namespace

const G1& G1Generator() {
  static const G1 g = [] {
    Fp x = FpFromLimbs({0xfb3af00adb22c6bb, 0x6c55e83ff97a1aef,
                        0xa14e3a3f171bac58, 0xc3688c4f9774b905,
                        0x2695638c4fa9ac0f, 0x17f1d3a73197d794});
    Fp y = FpFromLimbs({0x0caa232946c5e7e1, 0xd03cc744a2888ae4,
                        0x00db18cb2c04b3ed, 0xfcf5e095d5d00af6,
                        0xa09e30ed741d8ae4, 0x08b3f481e3aaa0f1});
    return G1::FromAffine(x, y);
  }();
  return g;
}

const G2& G2Generator() {
  static const G2 g = [] {
    Fp2 x{FpFromLimbs({0xd48056c8c121bdb8, 0x0bac0326a805bbef,
                       0xb4510b647ae3d177, 0xc6e47ad4fa403b02,
                       0x260805272dc51051, 0x024aa2b2f08f0a91}),
          FpFromLimbs({0xe5ac7d055d042b7e, 0x334cf11213945d57,
                       0xb5da61bbdc7f5049, 0x596bd0d09920b61a,
                       0x7dacd3a088274f65, 0x13e02b6052719f60})};
    Fp2 y{FpFromLimbs({0xe193548608b82801, 0x923ac9cc3baca289,
                       0x6d429a695160d12c, 0xadfd9baa8cbdd3a7,
                       0x8cc9cdc6da2e351a, 0x0ce5d527727d6e11}),
          FpFromLimbs({0xaaa9075ff05f79be, 0x3f370d275cec1da1,
                       0x267492ab572e99ab, 0xcb3e287e85a763af,
                       0x32acd2b02bc28b99, 0x0606c4a02ea734cc})};
    return G2::FromAffine(x, y);
  }();
  return g;
}

Fp G1CurveB() { return Fp::FromU64(4); }

Fp2 G2CurveB() { return {Fp::FromU64(4), Fp::FromU64(4)}; }

G1 G1Mul(const Fr& k) { return G1GeneratorTable().Mul(k); }

G2 G2Mul(const Fr& k) { return G2GeneratorTable().Mul(k); }

}  // namespace apqa::crypto

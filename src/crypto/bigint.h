// Minimal arbitrary-precision unsigned integer.
//
// Used only at library-initialization time to derive pairing constants (for
// example the hard part of the BLS12-381 final exponentiation,
// (p^4 - p^2 + 1) / r) by exact integer arithmetic, so that no hand-copied
// multi-hundred-digit constant can silently be wrong. Not used on any hot
// path.
#ifndef APQA_CRYPTO_BIGINT_H_
#define APQA_CRYPTO_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace apqa::crypto {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t v);
  // Little-endian 64-bit limbs.
  static BigInt FromLimbs(const std::uint64_t* limbs, std::size_t n);

  bool IsZero() const { return limbs_.empty(); }
  std::size_t BitLength() const;
  int Bit(std::size_t i) const;

  BigInt operator+(const BigInt& o) const;
  // Requires *this >= o.
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  // Exact or flooring division; remainder available via DivMod.
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* q, BigInt* r);

  BigInt ShiftLeft(std::size_t bits) const;
  int Compare(const BigInt& o) const;
  bool operator==(const BigInt& o) const { return Compare(o) == 0; }

  // Copies min(n, limbs) little-endian limbs into out, zero padding the rest.
  void ToLimbs(std::uint64_t* out, std::size_t n) const;

  std::string ToHex() const;

 private:
  void Trim();
  // Little-endian, no trailing zero limbs.
  std::vector<std::uint64_t> limbs_;
};

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_BIGINT_H_

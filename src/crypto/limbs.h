// Fixed-width multi-limb (64-bit) integer primitives.
//
// These are the low-level building blocks for the prime fields used by the
// BLS12-381 pairing implementation. All routines operate on little-endian
// limb arrays (limb 0 is least significant) of a compile-time size N and are
// branch-light so that the compiler can keep everything in registers.
#ifndef APQA_CRYPTO_LIMBS_H_
#define APQA_CRYPTO_LIMBS_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace apqa::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

template <std::size_t N>
using Limbs = std::array<u64, N>;

// r = a + b, returns carry-out (0 or 1).
template <std::size_t N>
inline u64 AddLimbs(const Limbs<N>& a, const Limbs<N>& b, Limbs<N>* r) {
  u64 carry = 0;
  for (std::size_t i = 0; i < N; ++i) {
    u128 t = static_cast<u128>(a[i]) + b[i] + carry;
    (*r)[i] = static_cast<u64>(t);
    carry = static_cast<u64>(t >> 64);
  }
  return carry;
}

// r = a - b, returns borrow-out (0 or 1).
template <std::size_t N>
inline u64 SubLimbs(const Limbs<N>& a, const Limbs<N>& b, Limbs<N>* r) {
  u64 borrow = 0;
  for (std::size_t i = 0; i < N; ++i) {
    u128 t = static_cast<u128>(a[i]) - b[i] - borrow;
    (*r)[i] = static_cast<u64>(t);
    borrow = static_cast<u64>(t >> 64) & 1;
  }
  return borrow;
}

// Returns -1, 0, +1 for a < b, a == b, a > b.
template <std::size_t N>
inline int CompareLimbs(const Limbs<N>& a, const Limbs<N>& b) {
  for (std::size_t i = N; i-- > 0;) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

template <std::size_t N>
inline bool IsZeroLimbs(const Limbs<N>& a) {
  for (std::size_t i = 0; i < N; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

// Shifts right by one bit in place.
template <std::size_t N>
inline void Shr1Limbs(Limbs<N>* a) {
  for (std::size_t i = 0; i + 1 < N; ++i) {
    (*a)[i] = ((*a)[i] >> 1) | ((*a)[i + 1] << 63);
  }
  (*a)[N - 1] >>= 1;
}

// Returns bit `i` (0 = least significant).
template <std::size_t N>
inline int BitLimbs(const Limbs<N>& a, std::size_t i) {
  return static_cast<int>((a[i / 64] >> (i % 64)) & 1);
}

// ---------------------------------------------------------------------------
// Constant-time (branch-free) primitives. Every helper below runs the same
// instruction sequence regardless of data values; masks are all-zeros or
// all-ones u64 words. These are the building blocks for the secret-handling
// discipline in crypto/ct.h and for the branch-free final reductions in
// prime_field.h.
// ---------------------------------------------------------------------------

// All-ones if x != 0, all-zeros otherwise.
inline u64 CtNonZeroMask64(u64 x) {
  return u64{0} - ((x | (u64{0} - x)) >> 63);
}

// All-ones if x == 0, all-zeros otherwise.
inline u64 CtIsZeroMask64(u64 x) { return ~CtNonZeroMask64(x); }

// All-ones if a == b, all-zeros otherwise.
inline u64 CtEqMask64(u64 a, u64 b) { return CtIsZeroMask64(a ^ b); }

// mask ? a : b, for an all-ones/all-zeros mask.
inline u64 CtSelectU64(u64 mask, u64 a, u64 b) {
  return (a & mask) | (b & ~mask);
}

// *r = mask ? a : b, element-wise, for an all-ones/all-zeros mask. `r` may
// alias either input.
template <std::size_t N>
inline void CtSelectLimbs(u64 mask, const Limbs<N>& a, const Limbs<N>& b,
                          Limbs<N>* r) {
  for (std::size_t i = 0; i < N; ++i) {
    (*r)[i] = (a[i] & mask) | (b[i] & ~mask);
  }
}

// All-ones if a == 0, all-zeros otherwise; no early exit.
template <std::size_t N>
inline u64 CtIsZeroMaskLimbs(const Limbs<N>& a) {
  u64 acc = 0;
  for (std::size_t i = 0; i < N; ++i) acc |= a[i];
  return CtIsZeroMask64(acc);
}

// All-ones if a == b, all-zeros otherwise; no early exit.
template <std::size_t N>
inline u64 CtEqMaskLimbs(const Limbs<N>& a, const Limbs<N>& b) {
  u64 acc = 0;
  for (std::size_t i = 0; i < N; ++i) acc |= a[i] ^ b[i];
  return CtIsZeroMask64(acc);
}

// Number of significant bits (0 for zero).
template <std::size_t N>
inline std::size_t BitLengthLimbs(const Limbs<N>& a) {
  for (std::size_t i = N; i-- > 0;) {
    if (a[i] != 0) {
      std::size_t b = 64;
      u64 v = a[i];
      while (!(v >> 63)) {
        v <<= 1;
        --b;
      }
      return i * 64 + b;
    }
  }
  return 0;
}

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_LIMBS_H_

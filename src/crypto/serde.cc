#include "crypto/serde.h"

#include "crypto/sha256.h"

namespace apqa::crypto {

void WriteFr(common::ByteWriter* w, const Fr& v) {
  Limbs<4> l = v.ToCanonical();
  for (u64 x : l) w->PutU64(x);
}

Fr ReadFr(common::ByteReader* r) {
  Limbs<4> l;
  for (auto& x : l) x = r->GetU64();
  if (!r->ok()) return Fr::Zero();
  if (CompareLimbs<4>(l, Fr::Modulus()) >= 0) {
    r->MarkBad(common::WireError::kNonCanonical, "Fr element not reduced");
    return Fr::Zero();
  }
  return Fr::FromCanonical(l);
}

void WriteFp(common::ByteWriter* w, const Fp& v) {
  Limbs<6> l = v.ToCanonical();
  for (u64 x : l) w->PutU64(x);
}

Fp ReadFp(common::ByteReader* r) {
  Limbs<6> l;
  for (auto& x : l) x = r->GetU64();
  if (!r->ok()) return Fp::Zero();
  if (CompareLimbs<6>(l, Fp::Modulus()) >= 0) {
    r->MarkBad(common::WireError::kNonCanonical, "Fp element not reduced");
    return Fp::Zero();
  }
  return Fp::FromCanonical(l);
}

void WriteG1(common::ByteWriter* w, const G1& p) {
  if (p.IsInfinity()) {
    w->PutU8(0);
    return;
  }
  w->PutU8(1);
  Fp ax, ay;
  p.ToAffine(&ax, &ay);
  WriteFp(w, ax);
  WriteFp(w, ay);
}

G1 ReadG1(common::ByteReader* r) {
  std::uint8_t flag = r->GetU8();
  if (flag == 0) return G1::Infinity();
  if (flag != 1) {
    r->MarkBad(common::WireError::kNonCanonical, "bad G1 infinity flag");
    return G1::Infinity();
  }
  Fp ax = ReadFp(r);
  Fp ay = ReadFp(r);
  if (!r->ok()) return G1::Infinity();
  G1 p = G1::FromAffine(ax, ay);
  if (!p.OnCurve(G1CurveB())) {
    r->MarkBad(common::WireError::kPointNotOnCurve, "G1 point off curve");
    return G1::Infinity();
  }
  if (!p.InPrimeOrderSubgroup()) {
    r->MarkBad(common::WireError::kPointNotInSubgroup,
               "G1 point outside prime-order subgroup");
    return G1::Infinity();
  }
  return p;
}

void WriteG2(common::ByteWriter* w, const G2& p) {
  if (p.IsInfinity()) {
    w->PutU8(0);
    return;
  }
  w->PutU8(1);
  Fp2 ax, ay;
  p.ToAffine(&ax, &ay);
  WriteFp(w, ax.c0);
  WriteFp(w, ax.c1);
  WriteFp(w, ay.c0);
  WriteFp(w, ay.c1);
}

G2 ReadG2(common::ByteReader* r) {
  std::uint8_t flag = r->GetU8();
  if (flag == 0) return G2::Infinity();
  if (flag != 1) {
    r->MarkBad(common::WireError::kNonCanonical, "bad G2 infinity flag");
    return G2::Infinity();
  }
  Fp c00 = ReadFp(r);
  Fp c01 = ReadFp(r);
  Fp c10 = ReadFp(r);
  Fp c11 = ReadFp(r);
  if (!r->ok()) return G2::Infinity();
  Fp2 ax{c00, c01};
  Fp2 ay{c10, c11};
  G2 p = G2::FromAffine(ax, ay);
  if (!p.OnCurve(G2CurveB())) {
    r->MarkBad(common::WireError::kPointNotOnCurve, "G2 point off curve");
    return G2::Infinity();
  }
  if (!p.InPrimeOrderSubgroup()) {
    r->MarkBad(common::WireError::kPointNotInSubgroup,
               "G2 point outside prime-order subgroup");
    return G2::Infinity();
  }
  return p;
}

void WriteGT(common::ByteWriter* w, const Fp12& v) {
  const Fp* coeffs[12] = {&v.c0.c0.c0, &v.c0.c0.c1, &v.c0.c1.c0, &v.c0.c1.c1,
                          &v.c0.c2.c0, &v.c0.c2.c1, &v.c1.c0.c0, &v.c1.c0.c1,
                          &v.c1.c1.c0, &v.c1.c1.c1, &v.c1.c2.c0, &v.c1.c2.c1};
  for (const Fp* f : coeffs) WriteFp(w, *f);
}

Fp12 ReadGT(common::ByteReader* r) {
  Fp12 v;
  Fp* coeffs[12] = {&v.c0.c0.c0, &v.c0.c0.c1, &v.c0.c1.c0, &v.c0.c1.c1,
                    &v.c0.c2.c0, &v.c0.c2.c1, &v.c1.c0.c0, &v.c1.c0.c1,
                    &v.c1.c1.c0, &v.c1.c1.c1, &v.c1.c2.c0, &v.c1.c2.c1};
  for (Fp* f : coeffs) *f = ReadFp(r);
  return v;
}

Fr HashToFr(const void* data, std::size_t n) {
  Digest d = Sha256::Hash(data, n);
  Limbs<4> l;
  for (int i = 0; i < 4; ++i) {
    u64 v = 0;
    for (int j = 0; j < 8; ++j) v |= static_cast<u64>(d[8 * i + j]) << (8 * j);
    l[i] = v;
  }
  l[3] &= 0x7fffffffffffffffULL;
  return Fr::FromCanonicalReduce(l);
}

Fr HashToFr(const std::string& s) { return HashToFr(s.data(), s.size()); }

}  // namespace apqa::crypto

#include "crypto/fp12.h"

#include <array>

#include "crypto/bigint.h"

namespace apqa::crypto {

namespace {

// Frobenius coefficients gamma_i = xi^(i * (p - 1) / 6) for i in [0, 6).
const std::array<Fp2, 6>& FrobeniusGammas() {
  static const std::array<Fp2, 6> gammas = [] {
    // (p - 1) / 6 as a limb exponent.
    BigInt p = BigInt::FromLimbs(FpTag::kModulus.data(), 6);
    BigInt e = (p - BigInt(1)) / BigInt(6);
    u64 limbs[6];
    e.ToLimbs(limbs, 6);
    std::array<Fp2, 6> g;
    g[0] = Fp2::One();
    g[1] = Fp2::Xi().Pow(std::span<const u64>(limbs, 6));
    for (int i = 2; i < 6; ++i) g[i] = g[i - 1] * g[1];
    return g;
  }();
  return gammas;
}

}  // namespace

Fp12 Fp12::Frobenius() const {
  // View the element as sum_{i=0}^{5} e_i w^i with e_i in Fp2:
  //   e_0 = c0.c0, e_2 = c0.c1, e_4 = c0.c2 (even powers, via v = w^2)
  //   e_1 = c1.c0, e_3 = c1.c1, e_5 = c1.c2 (odd powers)
  // Frobenius maps e_i -> conj(e_i) * gamma_i.
  const auto& g = FrobeniusGammas();
  Fp12 r;
  r.c0.c0 = c0.c0.Conjugate();
  r.c0.c1 = c0.c1.Conjugate() * g[2];
  r.c0.c2 = c0.c2.Conjugate() * g[4];
  r.c1.c0 = c1.c0.Conjugate() * g[1];
  r.c1.c1 = c1.c1.Conjugate() * g[3];
  r.c1.c2 = c1.c2.Conjugate() * g[5];
  return r;
}

namespace {

// Squaring in Fp4 = Fp2[y]/(y^2 - xi): (a + by)^2 = (a^2 + xi b^2) + 2ab y,
// with 2ab computed as (a+b)^2 - a^2 - b^2.
void Fp4Square(const Fp2& a, const Fp2& b, Fp2* c0, Fp2* c1) {
  Fp2 a2 = a.Square();
  Fp2 b2 = b.Square();
  *c1 = (a + b).Square() - a2 - b2;
  *c0 = a2 + b2.MulByXi();
}

}  // namespace

Fp12 Fp12::CyclotomicSquare() const {
  // Granger-Scott, "Faster squaring in the cyclotomic subgroup of sixth
  // degree extensions". Coefficient naming follows the common
  // 2-over-3-over-2 tower implementation:
  //   z0 = c0.c0, z4 = c0.c1, z3 = c0.c2,
  //   z2 = c1.c0, z1 = c1.c1, z5 = c1.c2.
  Fp2 z0 = c0.c0, z4 = c0.c1, z3 = c0.c2;
  Fp2 z2 = c1.c0, z1 = c1.c1, z5 = c1.c2;

  Fp2 t0, t1;
  Fp4Square(z0, z1, &t0, &t1);
  // z0' = 3 t0 - 2 z0 ; z1' = 3 t1 + 2 z1.
  z0 = (t0 - z0).Double() + t0;
  z1 = (t1 + z1).Double() + t1;

  Fp2 t2, t3, t4, t5;
  Fp4Square(z2, z3, &t2, &t3);
  Fp4Square(z4, z5, &t4, &t5);
  // z4' = 3 t2 - 2 z4 ; z5' = 3 t3 + 2 z5.
  z4 = (t2 - z4).Double() + t2;
  z5 = (t3 + z5).Double() + t3;
  // z2' = 3 xi t5 + 2 z2 ; z3' = 3 t4 - 2 z3.
  Fp2 t5x = t5.MulByXi();
  z2 = (t5x + z2).Double() + t5x;
  z3 = (t4 - z3).Double() + t4;

  Fp12 r;
  r.c0.c0 = z0;
  r.c0.c1 = z4;
  r.c0.c2 = z3;
  r.c1.c0 = z2;
  r.c1.c1 = z1;
  r.c1.c2 = z5;
  return r;
}

Fp12 Fp12::PowCyclotomic(std::span<const u64> e) const {
  std::size_t bits = 0;
  for (std::size_t i = e.size(); i-- > 0;) {
    if (e[i] != 0) {
      u64 t = e[i];
      bits = i * 64;
      while (t) {
        t >>= 1;
        ++bits;
      }
      break;
    }
  }
  if (bits == 0) return One();
  // 4-bit window with cyclotomic squarings between windows.
  std::array<Fp12, 16> table;
  table[0] = One();
  table[1] = *this;
  for (int i = 2; i < 16; ++i) table[i] = table[i - 1] * *this;
  std::size_t windows = (bits + 3) / 4;
  Fp12 acc = One();
  bool started = false;
  for (std::size_t wi = windows; wi-- > 0;) {
    if (started) {
      for (int k = 0; k < 4; ++k) acc = acc.CyclotomicSquare();
    }
    std::size_t lo = wi * 4;
    unsigned idx = 0;
    for (int k = 3; k >= 0; --k) {
      std::size_t bit = lo + static_cast<std::size_t>(k);
      idx <<= 1;
      if (bit < bits) {
        idx |= static_cast<unsigned>((e[bit / 64] >> (bit % 64)) & 1);
      }
    }
    if (idx != 0) {
      acc = started ? acc * table[idx] : table[idx];
      started = true;
    }
  }
  return acc;
}

Fp12 Fp12::Pow(std::span<const u64> e) const {
  std::size_t bits = 0;
  for (std::size_t i = e.size(); i-- > 0;) {
    if (e[i] != 0) {
      u64 t = e[i];
      bits = i * 64;
      while (t) {
        t >>= 1;
        ++bits;
      }
      break;
    }
  }
  if (bits == 0) return One();

  // 4-bit fixed window.
  std::array<Fp12, 16> table;
  table[0] = One();
  table[1] = *this;
  for (int i = 2; i < 16; ++i) table[i] = table[i - 1] * *this;

  std::size_t windows = (bits + 3) / 4;
  Fp12 acc = One();
  for (std::size_t wi = windows; wi-- > 0;) {
    for (int k = 0; k < 4; ++k) acc = acc.Square();
    std::size_t lo = wi * 4;
    unsigned idx = 0;
    for (int k = 3; k >= 0; --k) {
      std::size_t bit = lo + static_cast<std::size_t>(k);
      idx <<= 1;
      if (bit < bits) {
        idx |= static_cast<unsigned>((e[bit / 64] >> (bit % 64)) & 1);
      }
    }
    if (idx != 0) acc = acc * table[idx];
  }
  return acc;
}

Fp12 Fp12::PowBlsParam() const {
  u64 e[1] = {kBlsParamAbs};
  return Pow(std::span<const u64>(e, 1));
}

}  // namespace apqa::crypto

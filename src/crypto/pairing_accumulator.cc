#include "crypto/pairing_accumulator.h"

namespace apqa::crypto {

void PairingProductAccumulator::Add(const G2Prepared* base, const G1& p,
                                    const Fr& scalar) {
  if (base == nullptr || base->IsInfinity() || p.IsInfinity() ||
      scalar.IsZero()) {
    return;
  }
  auto [it, inserted] = bucket_index_.try_emplace(base, buckets_.size());
  if (inserted) buckets_.push_back(Bucket{base, {}, {}});
  Bucket& b = buckets_[it->second];
  b.pts.push_back(p);
  b.scalars.push_back(scalar);
  ++terms_;
}

void PairingProductAccumulator::AddFresh(const G1& p, const G2& q) {
  if (p.IsInfinity() || q.IsInfinity()) return;
  fresh_.emplace_back(p, q);
  ++terms_;
}

bool PairingProductAccumulator::IsOne(const ParallelRunner& runner) const {
  const std::size_t nb = buckets_.size();
  std::vector<G1> folded(nb);
  auto fold_one = [&](std::size_t t) {
    const Bucket& b = buckets_[t];
    folded[t] =
        G1Msm(std::span<const G1>(b.pts), std::span<const Fr>(b.scalars));
  };
  // Each task writes one disjoint slot of folded and reads only immutable
  // accumulator state, so the fan-out is race-free by construction; the
  // runner's join publishes the slots.
  if (runner && nb > 1) {
    runner(nb, fold_one);
  } else {
    for (std::size_t t = 0; t < nb; ++t) fold_one(t);
  }

  std::vector<PreparedPair> prepared;
  prepared.reserve(nb);
  for (std::size_t i = 0; i < nb; ++i) {
    prepared.push_back(PreparedPair{folded[i], buckets_[i].base});
  }
  return MultiPairingPrepared(prepared, fresh_).IsOne();
}

}  // namespace apqa::crypto

// Pairing-product accumulator: many pairing equations, one final
// exponentiation.
//
// Whole-VO batched verification folds the pairing equations of every
// signature in a verification object into a single product
//   prod_b e(MSM_b, Q_b) * prod_f e(P_f, R_f) == 1,
// where each Q_b is a long-lived prepared G2 base (master-key component or
// memoized attribute base) shared by many G1-side terms, and the (P_f, R_f)
// are per-call fresh pairs (the caller folds any G2-side MSMs first — see
// abs/batch_verify.h). The accumulator groups (point, scalar) terms by
// their G2Prepared base, folds each group with one G1 Pippenger/Straus
// MSM, and evaluates everything with one MultiPairingPrepared — a single
// shared Miller squaring chain and a single final exponentiation for the
// whole product.
//
// The per-base MSMs are mutually independent, so IsOne() optionally fans
// them out over a caller-provided parallel runner (core's ThreadPool wraps
// into one); the final multi-pairing stays serial.
//
// Soundness is the caller's contract: the terms must already carry the
// random batching weights (Bellare–Garay–Rabin small exponents) that make a
// passing product imply every folded equation holds, up to the weight
// entropy. This layer only does the algebra.
#ifndef APQA_CRYPTO_PAIRING_ACCUMULATOR_H_
#define APQA_CRYPTO_PAIRING_ACCUMULATOR_H_

#include <cstddef>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "crypto/msm.h"
#include "crypto/pairing_prepared.h"

namespace apqa::crypto {

class PairingProductAccumulator {
 public:
  // Runs task(i) for every i in [0, n); tasks are independent. A default
  // (empty) runner executes serially on the calling thread.
  using ParallelRunner =
      std::function<void(std::size_t n,
                         const std::function<void(std::size_t)>& task)>;

  // Multiplies e(p, *base)^scalar into the product. `base` must stay alive
  // until IsOne(); terms sharing a base pointer are folded with one G1 MSM.
  // Zero scalars, infinity points and prepared-infinity bases contribute
  // the neutral element and are dropped.
  void Add(const G2Prepared* base, const G1& p, const Fr& scalar);

  // Multiplies the one-off pair e(p, q) into the product (any weight must
  // already be applied to a side).
  void AddFresh(const G1& p, const G2& q);

  // Number of accumulated terms across all groups and fresh pairs.
  std::size_t TermCount() const { return terms_; }

  // Folds every group and evaluates the product: one G1 MSM per base
  // (fanned out over `runner` when provided), then a single
  // MultiPairingPrepared. An empty accumulator is the empty product and
  // returns true.
  bool IsOne(const ParallelRunner& runner = {}) const;

 private:
  struct Bucket {
    const G2Prepared* base;
    std::vector<G1> pts;
    std::vector<Fr> scalars;
  };

  std::vector<Bucket> buckets_;            // insertion-ordered
  std::map<const G2Prepared*, std::size_t> bucket_index_;
  std::vector<std::pair<G1, G2>> fresh_;
  std::size_t terms_ = 0;
};

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_PAIRING_ACCUMULATOR_H_

// AES-128 in counter (CTR) mode.
//
// Used for the hybrid envelope of §5.1: query results and VOs are encrypted
// under a fresh AES key which is itself wrapped with CP-ABE under the policy
// ∧_{a∈𝒜} a, so only a user genuinely holding the claimed role set can read
// the response.
#ifndef APQA_CRYPTO_AES_H_
#define APQA_CRYPTO_AES_H_

#include <array>
#include <cstdint>
#include <vector>

namespace apqa::crypto {

using AesKey = std::array<std::uint8_t, 16>;
using AesNonce = std::array<std::uint8_t, 12>;

class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  // Encrypts one 16-byte block in place (forward cipher only; CTR mode needs
  // no inverse).
  void EncryptBlock(std::uint8_t block[16]) const;

 private:
  std::array<std::uint32_t, 44> round_keys_;
};

// CTR-mode transform (encrypt == decrypt). Counter starts at 0.
std::vector<std::uint8_t> AesCtr(const AesKey& key, const AesNonce& nonce,
                                 const std::vector<std::uint8_t>& data);

}  // namespace apqa::crypto

#endif  // APQA_CRYPTO_AES_H_

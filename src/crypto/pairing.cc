#include "crypto/pairing.h"

#include "crypto/bigint.h"
#include "crypto/msm.h"

namespace apqa::crypto {

namespace {

// Embeds an Fp element into Fp12 (constant coefficient).
Fp12 EmbedFp(const Fp& a) {
  Fp12 r = Fp12::Zero();
  r.c0.c0.c0 = a;
  return r;
}

// Embeds an Fp2 element into Fp12.
Fp12 EmbedFp2(const Fp2& a) {
  Fp12 r = Fp12::Zero();
  r.c0.c0 = a;
  return r;
}

struct UntwistConsts {
  Fp12 winv2;  // w^-2
  Fp12 winv3;  // w^-3
};

const UntwistConsts& Untwist() {
  static const UntwistConsts c = [] {
    Fp12 w = Fp12::Zero();
    w.c1.c0 = Fp2::One();  // the element w itself
    Fp12 w2 = w.Square();
    UntwistConsts uc;
    uc.winv2 = w2.Inverse();
    uc.winv3 = (w2 * w).Inverse();
    return uc;
  }();
  return c;
}

// Exponent of the final-exponentiation hard part, (p^4 - p^2 + 1) / r,
// derived by exact integer arithmetic at first use.
const std::vector<u64>& HardPartExponent() {
  static const std::vector<u64> e = [] {
    BigInt p = BigInt::FromLimbs(FpTag::kModulus.data(), 6);
    BigInt r = BigInt::FromLimbs(FrTag::kModulus.data(), 4);
    BigInt p2 = p * p;
    BigInt p4 = p2 * p2;
    BigInt num = p4 - p2 + BigInt(1);
    BigInt q, rem;
    BigInt::DivMod(num, r, &q, &rem);
    // The BLS family guarantees exact divisibility; a failure here would
    // mean the curve constants are corrupted.
    if (!rem.IsZero()) std::abort();
    std::vector<u64> limbs((q.BitLength() + 63) / 64);
    q.ToLimbs(limbs.data(), limbs.size());
    return limbs;
  }();
  return e;
}

// Affine point in E(Fp12).
struct Pt {
  Fp12 x, y;
};

// Line through a and b (or tangent at a if a == b) evaluated at the
// (embedded) G1 point (xp, yp); also advances a to a+b (or 2a).
Fp12 LineAndStep(Pt* a, const Pt& b, bool tangent, const Fp12& xp,
                 const Fp12& yp) {
  Fp12 lambda;
  if (tangent) {
    Fp12 x2 = a->x.Square();
    lambda = (x2 + x2 + x2) * (a->y + a->y).Inverse();
  } else {
    lambda = (b.y - a->y) * (b.x - a->x).Inverse();
  }
  Fp12 l = yp - a->y - lambda * (xp - a->x);
  Fp12 x3 = lambda.Square() - a->x - b.x;
  Fp12 y3 = lambda * (a->x - x3) - a->y;
  a->x = x3;
  a->y = y3;
  return l;
}

}  // namespace

GT MillerLoopGeneric(const G1& p, const G2& q) {
  if (p.IsInfinity() || q.IsInfinity()) return GT::One();

  Fp pax, pay;
  p.ToAffine(&pax, &pay);
  Fp12 xp = EmbedFp(pax);
  Fp12 yp = EmbedFp(pay);

  Fp2 qax, qay;
  q.ToAffine(&qax, &qay);
  const auto& ut = Untwist();
  Pt qq{EmbedFp2(qax) * ut.winv2, EmbedFp2(qay) * ut.winv3};
  Pt t = qq;

  Fp12 f = Fp12::One();
  // |u| has 64 bits; iterate from the bit below the MSB down to 0.
  int msb = 63;
  while (!((kBlsParamAbs >> msb) & 1)) --msb;
  for (int i = msb - 1; i >= 0; --i) {
    f = f.Square() * LineAndStep(&t, t, /*tangent=*/true, xp, yp);
    if ((kBlsParamAbs >> i) & 1) {
      f = f * LineAndStep(&t, qq, /*tangent=*/false, xp, yp);
    }
  }
  // u < 0: conjugate (the vertical-line correction dies in the final
  // exponentiation).
  return f.Conjugate();
}

namespace {

// Sparse line value on the M-twist, multiplied through by w^3 (an Fp4
// element, killed by the final exponentiation):
//   l = (lambda*x_T - y_T) + (-lambda*x_P) w^2 + (y_P) w^3
// Tower slots (Fp12 = Fp2[w]/(w^6 - xi) view): w^0 -> c0.c0, w^2 -> c0.c1,
// w^3 -> c1.c1.
Fp12 AssembleLine(const Fp2& l0, const Fp2& l2, const Fp& yp) {
  Fp12 l = Fp12::Zero();
  l.c0.c0 = l0;
  l.c0.c1 = l2;
  l.c1.c1 = Fp2{yp, Fp::Zero()};
  return l;
}

}  // namespace

GT MillerLoop(const G1& p, const G2& q) {
  if (p.IsInfinity() || q.IsInfinity()) return GT::One();

  Fp xp, yp;
  p.ToAffine(&xp, &yp);
  Fp2 xq, yq;
  q.ToAffine(&xq, &yq);

  // Affine twisted-coordinate loop: slopes live in Fp2; lines are sparse.
  Fp2 xt = xq, yt = yq;
  Fp12 f = Fp12::One();
  int msb = 63;
  while (!((kBlsParamAbs >> msb) & 1)) --msb;
  for (int i = msb - 1; i >= 0; --i) {
    // Tangent at T.
    Fp2 xt2 = xt.Square();
    Fp2 lambda = (xt2 + xt2 + xt2) * (yt + yt).Inverse();
    Fp12 l = AssembleLine(lambda * xt - yt, lambda.MulByFp(-xp), yp);
    f = f.Square() * l;
    Fp2 x3 = lambda.Square() - xt - xt;
    yt = lambda * (xt - x3) - yt;
    xt = x3;
    if ((kBlsParamAbs >> i) & 1) {
      // Chord through T and Q.
      Fp2 lam2 = (yq - yt) * (xq - xt).Inverse();
      Fp12 l2 = AssembleLine(lam2 * xt - yt, lam2.MulByFp(-xp), yp);
      f = f * l2;
      Fp2 x3a = lam2.Square() - xt - xq;
      yt = lam2 * (xt - x3a) - yt;
      xt = x3a;
    }
  }
  // u < 0: conjugate.
  return f.Conjugate();
}

GT FinalExponentiation(const GT& f) {
  // Easy part: f^((p^6 - 1)(p^2 + 1)).
  GT t = f.Conjugate() * f.Inverse();
  t = t.Frobenius().Frobenius() * t;
  // Hard part: t^((p^4 - p^2 + 1) / r), with Granger-Scott squarings —
  // valid because t is now in the cyclotomic subgroup.
  const auto& e = HardPartExponent();
  return t.PowCyclotomic(std::span<const u64>(e.data(), e.size()));
}

GT Pairing(const G1& p, const G2& q) {
  return FinalExponentiation(MillerLoop(p, q));
}

GT MultiPairing(const std::vector<std::pair<G1, G2>>& pairs) {
  // Run all Miller loops in lockstep: every pair follows the same
  // doubling/addition schedule (the bits of |u|), so the per-step affine
  // slope denominators — 2*y_T on a doubling, x_Q - x_T on an addition —
  // can be merged into a single Fp2 inversion via Montgomery's trick.
  // Inputs are batch-normalized to affine the same way (one Fp inversion
  // for the G1 side, one Fp2 inversion for the G2 side).
  std::vector<G1> ps;
  std::vector<G2> qs;
  ps.reserve(pairs.size());
  qs.reserve(pairs.size());
  for (const auto& [p, q] : pairs) {
    if (p.IsInfinity() || q.IsInfinity()) continue;  // e(P, O) = e(O, Q) = 1
    ps.push_back(p);
    qs.push_back(q);
  }
  const std::size_t n = ps.size();
  if (n == 0) return GT::One();
  BatchToAffine<Fp>(std::span<G1>(ps));
  BatchToAffine<Fp2>(std::span<G2>(qs));

  std::vector<Fp> neg_xp(n), yp(n);
  std::vector<Fp2> xq(n), yq(n), xt(n), yt(n), den(n);
  for (std::size_t k = 0; k < n; ++k) {
    neg_xp[k] = -ps[k].x;
    yp[k] = ps[k].y;
    xq[k] = qs[k].x;
    yq[k] = qs[k].y;
    xt[k] = xq[k];
    yt[k] = yq[k];
  }

  Fp12 f = Fp12::One();
  int msb = 63;
  while (!((kBlsParamAbs >> msb) & 1)) --msb;
  for (int i = msb - 1; i >= 0; --i) {
    f = f.Square();
    // Doubling step for every running point T.
    for (std::size_t k = 0; k < n; ++k) den[k] = yt[k] + yt[k];
    BatchInverse(den.data(), n);
    for (std::size_t k = 0; k < n; ++k) {
      Fp2 xt2 = xt[k].Square();
      Fp2 lambda = (xt2 + xt2 + xt2) * den[k];
      f = f * AssembleLine(lambda * xt[k] - yt[k], lambda.MulByFp(neg_xp[k]),
                           yp[k]);
      Fp2 x3 = lambda.Square() - xt[k] - xt[k];
      yt[k] = lambda * (xt[k] - x3) - yt[k];
      xt[k] = x3;
    }
    if ((kBlsParamAbs >> i) & 1) {
      // Addition step T += Q for every pair.
      for (std::size_t k = 0; k < n; ++k) den[k] = xq[k] - xt[k];
      BatchInverse(den.data(), n);
      for (std::size_t k = 0; k < n; ++k) {
        Fp2 lambda = (yq[k] - yt[k]) * den[k];
        f = f * AssembleLine(lambda * xt[k] - yt[k], lambda.MulByFp(neg_xp[k]),
                             yp[k]);
        Fp2 x3 = lambda.Square() - xt[k] - xq[k];
        yt[k] = lambda * (xt[k] - x3) - yt[k];
        xt[k] = x3;
      }
    }
  }
  // u < 0: conjugate (the product of per-pair conjugates equals the
  // conjugate of the lockstep product).
  return FinalExponentiation(f.Conjugate());
}

}  // namespace apqa::crypto

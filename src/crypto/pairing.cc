#include "crypto/pairing.h"

#include "crypto/bigint.h"

namespace apqa::crypto {

namespace {

// Embeds an Fp element into Fp12 (constant coefficient).
Fp12 EmbedFp(const Fp& a) {
  Fp12 r = Fp12::Zero();
  r.c0.c0.c0 = a;
  return r;
}

// Embeds an Fp2 element into Fp12.
Fp12 EmbedFp2(const Fp2& a) {
  Fp12 r = Fp12::Zero();
  r.c0.c0 = a;
  return r;
}

struct UntwistConsts {
  Fp12 winv2;  // w^-2
  Fp12 winv3;  // w^-3
};

const UntwistConsts& Untwist() {
  static const UntwistConsts c = [] {
    Fp12 w = Fp12::Zero();
    w.c1.c0 = Fp2::One();  // the element w itself
    Fp12 w2 = w.Square();
    UntwistConsts c;
    c.winv2 = w2.Inverse();
    c.winv3 = (w2 * w).Inverse();
    return c;
  }();
  return c;
}

// Exponent of the final-exponentiation hard part, (p^4 - p^2 + 1) / r,
// derived by exact integer arithmetic at first use.
const std::vector<u64>& HardPartExponent() {
  static const std::vector<u64> e = [] {
    BigInt p = BigInt::FromLimbs(FpTag::kModulus.data(), 6);
    BigInt r = BigInt::FromLimbs(FrTag::kModulus.data(), 4);
    BigInt p2 = p * p;
    BigInt p4 = p2 * p2;
    BigInt num = p4 - p2 + BigInt(1);
    BigInt q, rem;
    BigInt::DivMod(num, r, &q, &rem);
    // The BLS family guarantees exact divisibility; a failure here would
    // mean the curve constants are corrupted.
    if (!rem.IsZero()) std::abort();
    std::vector<u64> limbs((q.BitLength() + 63) / 64);
    q.ToLimbs(limbs.data(), limbs.size());
    return limbs;
  }();
  return e;
}

// Affine point in E(Fp12).
struct Pt {
  Fp12 x, y;
};

// Line through a and b (or tangent at a if a == b) evaluated at the
// (embedded) G1 point (xp, yp); also advances a to a+b (or 2a).
Fp12 LineAndStep(Pt* a, const Pt& b, bool tangent, const Fp12& xp,
                 const Fp12& yp) {
  Fp12 lambda;
  if (tangent) {
    Fp12 x2 = a->x.Square();
    lambda = (x2 + x2 + x2) * (a->y + a->y).Inverse();
  } else {
    lambda = (b.y - a->y) * (b.x - a->x).Inverse();
  }
  Fp12 l = yp - a->y - lambda * (xp - a->x);
  Fp12 x3 = lambda.Square() - a->x - b.x;
  Fp12 y3 = lambda * (a->x - x3) - a->y;
  a->x = x3;
  a->y = y3;
  return l;
}

}  // namespace

GT MillerLoopGeneric(const G1& p, const G2& q) {
  if (p.IsInfinity() || q.IsInfinity()) return GT::One();

  Fp pax, pay;
  p.ToAffine(&pax, &pay);
  Fp12 xp = EmbedFp(pax);
  Fp12 yp = EmbedFp(pay);

  Fp2 qax, qay;
  q.ToAffine(&qax, &qay);
  const auto& ut = Untwist();
  Pt qq{EmbedFp2(qax) * ut.winv2, EmbedFp2(qay) * ut.winv3};
  Pt t = qq;

  Fp12 f = Fp12::One();
  // |u| has 64 bits; iterate from the bit below the MSB down to 0.
  int msb = 63;
  while (!((kBlsParamAbs >> msb) & 1)) --msb;
  for (int i = msb - 1; i >= 0; --i) {
    f = f.Square() * LineAndStep(&t, t, /*tangent=*/true, xp, yp);
    if ((kBlsParamAbs >> i) & 1) {
      f = f * LineAndStep(&t, qq, /*tangent=*/false, xp, yp);
    }
  }
  // u < 0: conjugate (the vertical-line correction dies in the final
  // exponentiation).
  return f.Conjugate();
}

namespace {

// Sparse line value on the M-twist, multiplied through by w^3 (an Fp4
// element, killed by the final exponentiation):
//   l = (lambda*x_T - y_T) + (-lambda*x_P) w^2 + (y_P) w^3
// Tower slots (Fp12 = Fp2[w]/(w^6 - xi) view): w^0 -> c0.c0, w^2 -> c0.c1,
// w^3 -> c1.c1.
Fp12 AssembleLine(const Fp2& l0, const Fp2& l2, const Fp& yp) {
  Fp12 l = Fp12::Zero();
  l.c0.c0 = l0;
  l.c0.c1 = l2;
  l.c1.c1 = Fp2{yp, Fp::Zero()};
  return l;
}

}  // namespace

GT MillerLoop(const G1& p, const G2& q) {
  if (p.IsInfinity() || q.IsInfinity()) return GT::One();

  Fp xp, yp;
  p.ToAffine(&xp, &yp);
  Fp2 xq, yq;
  q.ToAffine(&xq, &yq);

  // Affine twisted-coordinate loop: slopes live in Fp2; lines are sparse.
  Fp2 xt = xq, yt = yq;
  Fp12 f = Fp12::One();
  int msb = 63;
  while (!((kBlsParamAbs >> msb) & 1)) --msb;
  for (int i = msb - 1; i >= 0; --i) {
    // Tangent at T.
    Fp2 xt2 = xt.Square();
    Fp2 lambda = (xt2 + xt2 + xt2) * (yt + yt).Inverse();
    Fp12 l = AssembleLine(lambda * xt - yt, lambda.MulByFp(-xp), yp);
    f = f.Square() * l;
    Fp2 x3 = lambda.Square() - xt - xt;
    yt = lambda * (xt - x3) - yt;
    xt = x3;
    if ((kBlsParamAbs >> i) & 1) {
      // Chord through T and Q.
      Fp2 lam2 = (yq - yt) * (xq - xt).Inverse();
      Fp12 l2 = AssembleLine(lam2 * xt - yt, lam2.MulByFp(-xp), yp);
      f = f * l2;
      Fp2 x3a = lam2.Square() - xt - xq;
      yt = lam2 * (xt - x3a) - yt;
      xt = x3a;
    }
  }
  // u < 0: conjugate.
  return f.Conjugate();
}

GT FinalExponentiation(const GT& f) {
  // Easy part: f^((p^6 - 1)(p^2 + 1)).
  GT t = f.Conjugate() * f.Inverse();
  t = t.Frobenius().Frobenius() * t;
  // Hard part: t^((p^4 - p^2 + 1) / r), with Granger-Scott squarings —
  // valid because t is now in the cyclotomic subgroup.
  const auto& e = HardPartExponent();
  return t.PowCyclotomic(std::span<const u64>(e.data(), e.size()));
}

GT Pairing(const G1& p, const G2& q) {
  return FinalExponentiation(MillerLoop(p, q));
}

GT MultiPairing(const std::vector<std::pair<G1, G2>>& pairs) {
  GT f = GT::One();
  for (const auto& [p, q] : pairs) {
    f = f * MillerLoop(p, q);
  }
  return FinalExponentiation(f);
}

}  // namespace apqa::crypto

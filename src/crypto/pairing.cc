#include "crypto/pairing.h"

#include "crypto/bigint.h"
#include "crypto/msm.h"

namespace apqa::crypto {

namespace {

// Embeds an Fp element into Fp12 (constant coefficient).
Fp12 EmbedFp(const Fp& a) {
  Fp12 r = Fp12::Zero();
  r.c0.c0.c0 = a;
  return r;
}

// Embeds an Fp2 element into Fp12.
Fp12 EmbedFp2(const Fp2& a) {
  Fp12 r = Fp12::Zero();
  r.c0.c0 = a;
  return r;
}

struct UntwistConsts {
  Fp12 winv2;  // w^-2
  Fp12 winv3;  // w^-3
};

const UntwistConsts& Untwist() {
  static const UntwistConsts c = [] {
    Fp12 w = Fp12::Zero();
    w.c1.c0 = Fp2::One();  // the element w itself
    Fp12 w2 = w.Square();
    UntwistConsts uc;
    uc.winv2 = w2.Inverse();
    uc.winv3 = (w2 * w).Inverse();
    return uc;
  }();
  return c;
}

// Exponent of the final-exponentiation hard part, (p^4 - p^2 + 1) / r,
// derived by exact integer arithmetic at first use.
const std::vector<u64>& HardPartExponent() {
  static const std::vector<u64> e = [] {
    BigInt p = BigInt::FromLimbs(FpTag::kModulus.data(), 6);
    BigInt r = BigInt::FromLimbs(FrTag::kModulus.data(), 4);
    BigInt p2 = p * p;
    BigInt p4 = p2 * p2;
    BigInt num = p4 - p2 + BigInt(1);
    BigInt q, rem;
    BigInt::DivMod(num, r, &q, &rem);
    // The BLS family guarantees exact divisibility; a failure here would
    // mean the curve constants are corrupted.
    if (!rem.IsZero()) std::abort();
    std::vector<u64> limbs((q.BitLength() + 63) / 64);
    q.ToLimbs(limbs.data(), limbs.size());
    return limbs;
  }();
  return e;
}

// Affine point in E(Fp12).
struct Pt {
  Fp12 x, y;
};

// Line through a and b (or tangent at a if a == b) evaluated at the
// (embedded) G1 point (xp, yp); also advances a to a+b (or 2a).
Fp12 LineAndStep(Pt* a, const Pt& b, bool tangent, const Fp12& xp,
                 const Fp12& yp) {
  Fp12 lambda;
  if (tangent) {
    Fp12 x2 = a->x.Square();
    lambda = (x2 + x2 + x2) * (a->y + a->y).Inverse();
  } else {
    lambda = (b.y - a->y) * (b.x - a->x).Inverse();
  }
  Fp12 l = yp - a->y - lambda * (xp - a->x);
  Fp12 x3 = lambda.Square() - a->x - b.x;
  Fp12 y3 = lambda * (a->x - x3) - a->y;
  a->x = x3;
  a->y = y3;
  return l;
}

}  // namespace

GT MillerLoopGeneric(const G1& p, const G2& q) {
  if (p.IsInfinity() || q.IsInfinity()) return GT::One();

  Fp pax, pay;
  p.ToAffine(&pax, &pay);
  Fp12 xp = EmbedFp(pax);
  Fp12 yp = EmbedFp(pay);

  Fp2 qax, qay;
  q.ToAffine(&qax, &qay);
  const auto& ut = Untwist();
  Pt qq{EmbedFp2(qax) * ut.winv2, EmbedFp2(qay) * ut.winv3};
  Pt t = qq;

  Fp12 f = Fp12::One();
  // |u| has 64 bits; iterate from the bit below the MSB down to 0.
  int msb = 63;
  while (!((kBlsParamAbs >> msb) & 1)) --msb;
  for (int i = msb - 1; i >= 0; --i) {
    f = f.Square() * LineAndStep(&t, t, /*tangent=*/true, xp, yp);
    if ((kBlsParamAbs >> i) & 1) {
      f = f * LineAndStep(&t, qq, /*tangent=*/false, xp, yp);
    }
  }
  // u < 0: conjugate (the vertical-line correction dies in the final
  // exponentiation).
  return f.Conjugate();
}

GT MillerLoop(const G1& p, const G2& q) {
  if (p.IsInfinity() || q.IsInfinity()) return GT::One();

  Fp xp, yp;
  p.ToAffine(&xp, &yp);
  Fp2 xq, yq;
  q.ToAffine(&xq, &yq);

  // Affine twisted-coordinate loop: slopes live in Fp2; lines are sparse.
  // Each line value on the M-twist, multiplied through by w^3 (an Fp4
  // element, killed by the final exponentiation), is
  //   l = (lambda*x_T - y_T) + (-lambda*x_P) w^2 + (y_P) w^3
  // and is folded into f with the dedicated sparse product.
  Fp2 xt = xq, yt = yq;
  Fp2 yp2{yp, Fp::Zero()};
  Fp12 f = Fp12::One();
  int msb = 63;
  while (!((kBlsParamAbs >> msb) & 1)) --msb;
  for (int i = msb - 1; i >= 0; --i) {
    // Tangent at T.
    Fp2 xt2 = xt.Square();
    Fp2 lambda = (xt2 + xt2 + xt2) * (yt + yt).Inverse();
    f = f.Square().MulBySparseLine(lambda * xt - yt, lambda.MulByFp(-xp), yp2);
    Fp2 x3 = lambda.Square() - xt - xt;
    yt = lambda * (xt - x3) - yt;
    xt = x3;
    if ((kBlsParamAbs >> i) & 1) {
      // Chord through T and Q.
      Fp2 lam2 = (yq - yt) * (xq - xt).Inverse();
      f = f.MulBySparseLine(lam2 * xt - yt, lam2.MulByFp(-xp), yp2);
      Fp2 x3a = lam2.Square() - xt - xq;
      yt = lam2 * (xt - x3a) - yt;
      xt = x3a;
    }
  }
  // u < 0: conjugate.
  return f.Conjugate();
}

namespace {

// f^x for the (negative) BLS parameter x = -kBlsParamAbs, valid only in the
// cyclotomic subgroup where inversion is conjugation.
Fp12 ExpByBlsX(const Fp12& f) {
  u64 e[1] = {kBlsParamAbs};
  return f.PowCyclotomic(std::span<const u64>(e, 1)).Conjugate();
}

// Shared easy part f^((p^6 - 1)(p^2 + 1)); lands in the cyclotomic
// subgroup, where Granger-Scott squarings and conjugation-inverse apply.
Fp12 EasyPart(const Fp12& f) {
  Fp12 t = f.Conjugate() * f.Inverse();
  return t.Frobenius().Frobenius() * t;
}

}  // namespace

GT FinalExponentiation(const GT& f) {
  // Hard part via the BLS12 parameter addition chain (Hayashida-Hayasaka-
  // Teruya): computes r^((x-1)^2 (x+p) (x^2+p^2-1) + 3), which equals
  // r^(3 (p^4-p^2+1)/r). The extra cube is a fixed exponent coprime to the
  // group order, so the map remains a non-degenerate bilinear pairing and
  // IsOne checks are unaffected; this is the same convention production
  // BLS12-381 libraries use. Four exponentiations by the 64-bit |x| replace
  // the generic ~1270-bit windowed exponentiation (FinalExponentiation-
  // Generic below keeps the exact-exponent path as the audit oracle).
  GT r = EasyPart(f);
  GT y0 = r.CyclotomicSquare();             // r^2
  GT y1 = ExpByBlsX(r);                     // r^x
  GT y2 = r.Conjugate();                    // r^-1
  y1 = y1 * y2;                             // r^(x-1)
  y2 = ExpByBlsX(y1);                       // r^(x(x-1))
  y1 = y1.Conjugate();                      // r^-(x-1)
  y1 = y1 * y2;                             // r^((x-1)^2)
  y2 = ExpByBlsX(y1);                       // r^(x(x-1)^2)
  y1 = y1.Frobenius();                      // r^(p(x-1)^2)
  y1 = y1 * y2;                             // r^((x-1)^2 (x+p))
  r = r * y0;                               // r^3
  y0 = ExpByBlsX(y1);                       // r^(x(x-1)^2 (x+p))
  y2 = ExpByBlsX(y0);                       // r^(x^2(x-1)^2 (x+p))
  y0 = y1.Frobenius().Frobenius();          // r^(p^2(x-1)^2 (x+p))
  y1 = y1.Conjugate();                      // r^-((x-1)^2 (x+p))
  y1 = y1 * y2;                             // r^((x^2-1)(x-1)^2 (x+p))
  y1 = y1 * y0;                             // r^((x^2+p^2-1)(x-1)^2 (x+p))
  return r * y1;
}

GT FinalExponentiationGeneric(const GT& f) {
  // Exact exponent (p^4 - p^2 + 1)/r derived by integer arithmetic; the
  // production chain above must equal this raised to the third power.
  GT t = EasyPart(f);
  const auto& e = HardPartExponent();
  return t.PowCyclotomic(std::span<const u64>(e.data(), e.size()));
}

GT Pairing(const G1& p, const G2& q) {
  return FinalExponentiation(MillerLoop(p, q));
}

GT MultiPairing(const std::vector<std::pair<G1, G2>>& pairs) {
  // Run all Miller loops in lockstep: every pair follows the same
  // doubling/addition schedule (the bits of |u|), so the per-step affine
  // slope denominators — 2*y_T on a doubling, x_Q - x_T on an addition —
  // can be merged into a single Fp2 inversion via Montgomery's trick.
  // Inputs are batch-normalized to affine the same way (one Fp inversion
  // for the G1 side, one Fp2 inversion for the G2 side).
  std::vector<G1> ps;
  std::vector<G2> qs;
  ps.reserve(pairs.size());
  qs.reserve(pairs.size());
  for (const auto& [p, q] : pairs) {
    if (p.IsInfinity() || q.IsInfinity()) continue;  // e(P, O) = e(O, Q) = 1
    ps.push_back(p);
    qs.push_back(q);
  }
  const std::size_t n = ps.size();
  if (n == 0) return GT::One();
  BatchToAffine<Fp>(std::span<G1>(ps));
  BatchToAffine<Fp2>(std::span<G2>(qs));

  std::vector<Fp> neg_xp(n);
  std::vector<Fp2> yp2(n), xq(n), yq(n), xt(n), yt(n), den(n);
  for (std::size_t k = 0; k < n; ++k) {
    neg_xp[k] = -ps[k].x;
    yp2[k] = Fp2{ps[k].y, Fp::Zero()};
    xq[k] = qs[k].x;
    yq[k] = qs[k].y;
    xt[k] = xq[k];
    yt[k] = yq[k];
  }

  Fp12 f = Fp12::One();
  int msb = 63;
  while (!((kBlsParamAbs >> msb) & 1)) --msb;
  for (int i = msb - 1; i >= 0; --i) {
    f = f.Square();
    // Doubling step for every running point T.
    for (std::size_t k = 0; k < n; ++k) den[k] = yt[k] + yt[k];
    BatchInverse(den.data(), n);
    for (std::size_t k = 0; k < n; ++k) {
      Fp2 xt2 = xt[k].Square();
      Fp2 lambda = (xt2 + xt2 + xt2) * den[k];
      f = f.MulBySparseLine(lambda * xt[k] - yt[k], lambda.MulByFp(neg_xp[k]),
                            yp2[k]);
      Fp2 x3 = lambda.Square() - xt[k] - xt[k];
      yt[k] = lambda * (xt[k] - x3) - yt[k];
      xt[k] = x3;
    }
    if ((kBlsParamAbs >> i) & 1) {
      // Addition step T += Q for every pair.
      for (std::size_t k = 0; k < n; ++k) den[k] = xq[k] - xt[k];
      BatchInverse(den.data(), n);
      for (std::size_t k = 0; k < n; ++k) {
        Fp2 lambda = (yq[k] - yt[k]) * den[k];
        f = f.MulBySparseLine(lambda * xt[k] - yt[k],
                              lambda.MulByFp(neg_xp[k]), yp2[k]);
        Fp2 x3 = lambda.Square() - xt[k] - xq[k];
        yt[k] = lambda * (xt[k] - x3) - yt[k];
        xt[k] = x3;
      }
    }
  }
  // u < 0: conjugate (the product of per-pair conjugates equals the
  // conjugate of the lockstep product).
  return FinalExponentiation(f.Conjugate());
}

}  // namespace apqa::crypto

#include "net/server.h"

#include <chrono>
#include <exception>

#include "common/serde.h"

namespace apqa::net {

namespace {

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool IsQueryType(MsgType t) {
  return t == MsgType::kEqualityQuery || t == MsgType::kRangeQuery ||
         t == MsgType::kJoinQuery;
}

}  // namespace

SpServer::SpServer(core::ServiceProvider* sp, SpServerOptions opts)
    : sp_(sp),
      opts_(opts),
      pool_(opts.worker_threads, opts.max_queue) {}

SpServer::~SpServer() { Stop(); }

bool SpServer::AttachTransport(std::shared_ptr<Transport> t) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (draining_.load()) return false;
  transports_.push_back(t);
  session_threads_.emplace_back([this, t] { SessionLoop(t); });
  return true;
}

void SpServer::Stop() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    // Second caller (e.g. the destructor after an explicit Stop): wait for
    // the first to finish tearing down.
    while (!stopped_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return;
  }
  // Phase 1: draining_ makes sessions refuse new work; every request
  // already accepted gets answered.
  pool_.WaitAll();
  // Phase 2: wake the sessions out of Recv and join them.
  stopping_.store(true);
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<Transport>> transports;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    threads.swap(session_threads_);
    transports.swap(transports_);
  }
  for (auto& t : transports) t->Close();
  for (auto& th : threads) th.join();
  pool_.Stop();
  stopped_.store(true);
}

ServerStats SpServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.load();
  s.served = served_.load();
  s.expired = expired_.load();
  s.failed = failed_.load();
  s.shed = shed_.load();
  s.refused = refused_.load();
  s.malformed = malformed_.load();
  return s;
}

void SpServer::SessionLoop(const std::shared_ptr<Transport>& t) {
  std::vector<std::uint8_t> buf;
  while (!stopping_.load()) {
    RecvStatus st = t->Recv(&buf, opts_.recv_poll_ms);
    if (st == RecvStatus::kTimeout) continue;
    if (st == RecvStatus::kClosed || st == RecvStatus::kError) return;
    Frame frame;
    if (DecodeFrame(buf, &frame) != FrameDecodeError::kOk ||
        !IsQueryType(frame.type)) {
      malformed_.fetch_add(1);
      continue;
    }
    HandleFrame(t, std::move(frame));
  }
}

void SpServer::HandleFrame(const std::shared_ptr<Transport>& t, Frame frame) {
  if (draining_.load()) {
    refused_.fetch_add(1);
    ReplyError(t, frame.request_id,
               {RpcErrorCode::kShuttingDown, opts_.backoff_hint_ms,
                "server draining"});
    return;
  }
  std::uint64_t arrival_ms = NowMs();
  std::uint64_t request_id = frame.request_id;
  bool queued = pool_.TrySubmit(
      [this, t, frame = std::move(frame), arrival_ms]() mutable {
        Process(t, frame, arrival_ms);
      });
  if (!queued) {
    shed_.fetch_add(1);
    ReplyError(t, request_id,
               {RpcErrorCode::kRetryLater, opts_.backoff_hint_ms,
                "request queue full"});
    return;
  }
  accepted_.fetch_add(1);
}

void SpServer::Process(const std::shared_ptr<Transport>& t, const Frame& frame,
                       std::uint64_t arrival_ms) {
  // A request that outlived its deadline while queued is answered, not
  // executed: the client has moved on, and executing it would only delay
  // requests that are still live.
  if (frame.deadline_ms > 0 && NowMs() - arrival_ms >= frame.deadline_ms) {
    expired_.fetch_add(1);
    ReplyError(t, frame.request_id,
               {RpcErrorCode::kDeadlineExceeded, 0, "expired in queue"});
    return;
  }

  QueryRequest req;
  if (!DecodeQueryPayload(frame.type, frame.payload, &req)) {
    failed_.fetch_add(1);
    ReplyError(t, frame.request_id,
               {RpcErrorCode::kBadRequest, 0, "query payload failed to parse"});
    return;
  }
  const core::Domain& domain = sp_->keys().domain;
  bool in_domain =
      frame.type == MsgType::kEqualityQuery
          ? domain.ContainsPoint(req.key)
          : domain.ContainsPoint(req.range.lo) &&
                domain.ContainsPoint(req.range.hi);
  if (!in_domain) {
    failed_.fetch_add(1);
    ReplyError(t, frame.request_id,
               {RpcErrorCode::kBadRequest, 0, "query outside domain"});
    return;
  }

  Frame resp;
  resp.request_id = frame.request_id;
  try {
    common::ByteWriter w;
    if (frame.type == MsgType::kJoinQuery) {
      core::JoinVo vo;
      {
        std::lock_guard<std::mutex> lock(sp_mu_);
        vo = sp_->JoinQuery(req.range, req.roles);
      }
      vo.Serialize(&w);
      resp.type = MsgType::kJoinVoResponse;
    } else {
      core::Vo vo;
      {
        std::lock_guard<std::mutex> lock(sp_mu_);
        vo = frame.type == MsgType::kEqualityQuery
                 ? sp_->EqualityQuery(req.key, req.roles)
                 : sp_->RangeQuery(req.range, req.roles);
      }
      vo.Serialize(&w);
      resp.type = MsgType::kVoResponse;
    }
    resp.payload = w.Take();
  } catch (const std::exception& e) {
    failed_.fetch_add(1);
    ReplyError(t, frame.request_id, {RpcErrorCode::kInternal, 0, e.what()});
    return;
  }
  served_.fetch_add(1);
  t->Send(EncodeFrame(resp));
}

void SpServer::ReplyError(const std::shared_ptr<Transport>& t,
                          std::uint64_t request_id, const ErrorInfo& info) {
  Frame f;
  f.type = MsgType::kError;
  f.request_id = request_id;
  f.payload = EncodeErrorPayload(info);
  t->Send(EncodeFrame(f));
}

}  // namespace apqa::net

// In-process message pipe: two endpoints connected by a pair of bounded
// frame queues. Deterministic (no sockets, no kernel buffering policy) and
// fast, so the chaos suites can push thousands of frames per second through
// a FaultyTransport decorator without flaking on I/O.
#ifndef APQA_NET_PIPE_TRANSPORT_H_
#define APQA_NET_PIPE_TRANSPORT_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "net/transport.h"

namespace apqa::net {

class PipeTransport : public Transport {
  struct PrivateTag {};  // gates the constructor to CreatePair

 public:
  explicit PipeTransport(PrivateTag) {}

  // Returns the two connected endpoints. Each endpoint may outlive the
  // other; sending to a closed peer fails cleanly.
  static std::pair<std::shared_ptr<PipeTransport>,
                   std::shared_ptr<PipeTransport>>
  CreatePair(std::size_t max_queued_frames = 1024);

  bool Send(const std::vector<std::uint8_t>& frame) override;
  RecvStatus Recv(std::vector<std::uint8_t>* frame,
                  std::uint32_t timeout_ms) override;
  void Close() override;

 private:
  struct Inbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::uint8_t>> frames;
    std::size_t capacity = 1024;
    bool closed = false;
  };

  std::shared_ptr<Inbox> mine_;   // frames addressed to this endpoint
  std::shared_ptr<Inbox> peers_;  // frames addressed to the peer
};

}  // namespace apqa::net

#endif  // APQA_NET_PIPE_TRANSPORT_H_

#include "net/frame.h"

#include <algorithm>

#include "common/serde.h"
#include "core/vo.h"
#include "crypto/sha256.h"

namespace apqa::net {

namespace {

// Caps on the claimed role set of a query: each role must be re-checked
// against signatures anyway, so these only bound allocation and MSP size.
constexpr std::size_t kMaxQueryRoles = 1024;
constexpr std::size_t kMaxRoleBytes = 256;

void AppendChecksum(std::vector<std::uint8_t>* buf) {
  crypto::Digest d = crypto::Sha256::Hash(buf->data(), buf->size());
  buf->insert(buf->end(), d.begin(), d.begin() + kFrameChecksumBytes);
}

bool ValidType(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MsgType::kEqualityQuery) &&
         t <= static_cast<std::uint8_t>(MsgType::kError);
}

}  // namespace

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kEqualityQuery: return "equality-query";
    case MsgType::kRangeQuery: return "range-query";
    case MsgType::kJoinQuery: return "join-query";
    case MsgType::kVoResponse: return "vo-response";
    case MsgType::kJoinVoResponse: return "join-vo-response";
    case MsgType::kError: return "error";
  }
  return "?";
}

const char* RpcErrorCodeName(RpcErrorCode c) {
  switch (c) {
    case RpcErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case RpcErrorCode::kRetryLater: return "retry-later";
    case RpcErrorCode::kShuttingDown: return "shutting-down";
    case RpcErrorCode::kBadRequest: return "bad-request";
    case RpcErrorCode::kInternal: return "internal";
  }
  return "?";
}

bool RpcErrorRetryable(RpcErrorCode c) {
  switch (c) {
    case RpcErrorCode::kDeadlineExceeded:
    case RpcErrorCode::kRetryLater:
    case RpcErrorCode::kShuttingDown:
      return true;
    case RpcErrorCode::kBadRequest:
    case RpcErrorCode::kInternal:
      return false;
  }
  return false;
}

const char* FrameDecodeErrorName(FrameDecodeError e) {
  switch (e) {
    case FrameDecodeError::kOk: return "ok";
    case FrameDecodeError::kTruncated: return "truncated";
    case FrameDecodeError::kBadMagic: return "bad-magic";
    case FrameDecodeError::kBadVersion: return "bad-version";
    case FrameDecodeError::kBadType: return "bad-type";
    case FrameDecodeError::kBadLength: return "bad-length";
    case FrameDecodeError::kBadChecksum: return "bad-checksum";
    case FrameDecodeError::kTrailingBytes: return "trailing-bytes";
  }
  return "?";
}

std::vector<std::uint8_t> EncodeFrame(const Frame& f) {
  common::ByteWriter w;
  w.PutBytes(kFrameMagic, sizeof(kFrameMagic));
  w.PutU8(kFrameVersion);
  w.PutU8(static_cast<std::uint8_t>(f.type));
  w.PutU64(f.request_id);
  w.PutU32(f.deadline_ms);
  w.PutU32(static_cast<std::uint32_t>(f.payload.size()));
  w.PutBytes(f.payload.data(), f.payload.size());
  std::vector<std::uint8_t> buf = w.Take();
  AppendChecksum(&buf);
  return buf;
}

FrameDecodeError DecodeFrame(const std::vector<std::uint8_t>& buf,
                             Frame* out) {
  if (buf.size() < kFrameHeaderBytes + kFrameChecksumBytes) {
    return FrameDecodeError::kTruncated;
  }
  common::ByteReader r(buf);
  std::uint8_t magic[4];
  r.Get(magic, 4);
  if (!std::equal(magic, magic + 4, kFrameMagic)) {
    return FrameDecodeError::kBadMagic;
  }
  if (r.GetU8() != kFrameVersion) return FrameDecodeError::kBadVersion;
  std::uint8_t type = r.GetU8();
  if (!ValidType(type)) return FrameDecodeError::kBadType;
  std::uint64_t request_id = r.GetU64();
  std::uint32_t deadline_ms = r.GetU32();
  std::uint32_t payload_len = r.GetU32();
  if (payload_len > kMaxFramePayloadBytes) return FrameDecodeError::kBadLength;
  std::size_t total =
      kFrameHeaderBytes + payload_len + kFrameChecksumBytes;
  if (buf.size() < total) return FrameDecodeError::kTruncated;
  if (buf.size() > total) return FrameDecodeError::kTrailingBytes;
  crypto::Digest d =
      crypto::Sha256::Hash(buf.data(), kFrameHeaderBytes + payload_len);
  if (!std::equal(d.begin(), d.begin() + kFrameChecksumBytes,
                  buf.begin() + static_cast<std::ptrdiff_t>(
                                    kFrameHeaderBytes + payload_len))) {
    return FrameDecodeError::kBadChecksum;
  }
  out->type = static_cast<MsgType>(type);
  out->request_id = request_id;
  out->deadline_ms = deadline_ms;
  out->payload.assign(buf.begin() + kFrameHeaderBytes,
                      buf.begin() + static_cast<std::ptrdiff_t>(
                                        kFrameHeaderBytes + payload_len));
  return FrameDecodeError::kOk;
}

std::vector<std::uint8_t> EncodeErrorPayload(const ErrorInfo& info) {
  common::ByteWriter w;
  w.PutU8(static_cast<std::uint8_t>(info.code));
  w.PutU32(info.backoff_hint_ms);
  w.PutString(info.detail);
  return w.Take();
}

bool DecodeErrorPayload(const std::vector<std::uint8_t>& payload,
                        ErrorInfo* out) {
  common::ByteReader r(payload);
  std::uint8_t code = r.GetU8();
  if (code < static_cast<std::uint8_t>(RpcErrorCode::kDeadlineExceeded) ||
      code > static_cast<std::uint8_t>(RpcErrorCode::kInternal)) {
    return false;
  }
  out->code = static_cast<RpcErrorCode>(code);
  out->backoff_hint_ms = r.GetU32();
  out->detail = r.GetString();
  return r.ok() && r.AtEnd();
}

std::vector<std::uint8_t> EncodeQueryPayload(const QueryRequest& req) {
  common::ByteWriter w;
  if (req.type == MsgType::kEqualityQuery) {
    core::WritePoint(&w, req.key);
  } else {
    core::WriteBox(&w, req.range);
  }
  w.PutU32(static_cast<std::uint32_t>(req.roles.size()));
  for (const auto& role : req.roles) w.PutString(role);
  return w.Take();
}

bool DecodeQueryPayload(MsgType type, const std::vector<std::uint8_t>& payload,
                        QueryRequest* out) {
  common::ByteReader r(payload);
  out->type = type;
  if (type == MsgType::kEqualityQuery) {
    out->key = core::ReadPoint(&r);
  } else if (type == MsgType::kRangeQuery || type == MsgType::kJoinQuery) {
    out->range = core::ReadBox(&r);  // strict: flags non-well-formed boxes
  } else {
    return false;
  }
  std::uint32_t count = r.GetU32();
  if (count > kMaxQueryRoles || !r.CheckCount(count, 4)) return false;
  out->roles.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    std::string role = r.GetString();
    if (role.empty() || role.size() > kMaxRoleBytes) return false;
    out->roles.insert(std::move(role));
  }
  return r.ok() && r.AtEnd();
}

}  // namespace apqa::net

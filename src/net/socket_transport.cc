#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/frame.h"

namespace apqa::net {

namespace {

std::int64_t NowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The sockaddr_in/sockaddr pun is the POSIX API contract; keeping the cast
// in one helper keeps the rest of the file free of it (lint R4 allowlists
// this file).
sockaddr* AsSockaddr(sockaddr_in* addr) {
  return reinterpret_cast<sockaddr*>(addr);
}

}  // namespace

SocketTransport::~SocketTransport() {
  Close();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::unique_ptr<SocketTransport> SocketTransport::Connect(
    const std::string& host, std::uint16_t port, std::uint32_t timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, AsSockaddr(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketTransport>(fd);
}

bool SocketTransport::Send(const std::vector<std::uint8_t>& frame) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) return false;
  const std::uint8_t* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

RecvStatus SocketTransport::ReadExact(std::uint8_t* out, std::size_t n,
                                      std::int64_t deadline_unix_ms) {
  std::size_t got = 0;
  while (got < n) {
    std::int64_t left = deadline_unix_ms - NowUnixMs();
    if (left <= 0) return RecvStatus::kTimeout;
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int pr = ::poll(&pfd, 1, static_cast<int>(left));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kError;
    }
    if (pr == 0) return RecvStatus::kTimeout;
    ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r == 0) return RecvStatus::kClosed;
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return RecvStatus::kError;
    }
    got += static_cast<std::size_t>(r);
  }
  return RecvStatus::kOk;
}

RecvStatus SocketTransport::Recv(std::vector<std::uint8_t>* frame,
                                 std::uint32_t timeout_ms) {
  std::lock_guard<std::mutex> lock(recv_mu_);
  if (fd_ < 0) return RecvStatus::kClosed;
  std::int64_t deadline = NowUnixMs() + timeout_ms;

  std::vector<std::uint8_t> buf(kFrameHeaderBytes);
  RecvStatus s = ReadExact(buf.data(), kFrameHeaderBytes, deadline);
  if (s != RecvStatus::kOk) return s;

  // Sanity-check the header before trusting the length: a desynchronized
  // stream must not drive a multi-megabyte allocation.
  if (!std::equal(kFrameMagic, kFrameMagic + sizeof(kFrameMagic),
                  buf.begin())) {
    return RecvStatus::kError;
  }
  std::uint32_t payload_len = 0;
  for (int i = 3; i >= 0; --i) {
    payload_len = (payload_len << 8) | buf[18 + static_cast<std::size_t>(i)];
  }
  if (payload_len > kMaxFramePayloadBytes) return RecvStatus::kError;

  std::size_t rest = payload_len + kFrameChecksumBytes;
  buf.resize(kFrameHeaderBytes + rest);
  s = ReadExact(buf.data() + kFrameHeaderBytes, rest, deadline);
  if (s != RecvStatus::kOk) {
    // A half-read frame leaves the stream desynchronized for the caller;
    // timeouts mid-frame are promoted to hard errors.
    return s == RecvStatus::kTimeout ? RecvStatus::kError : s;
  }
  *frame = std::move(buf);
  return RecvStatus::kOk;
}

void SocketTransport::Close() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

TcpListener::TcpListener(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, AsSockaddr(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, AsSockaddr(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  fd_ = fd;
}

TcpListener::~TcpListener() { Close(); }

std::unique_ptr<SocketTransport> TcpListener::Accept(
    std::uint32_t timeout_ms) {
  if (fd_ < 0) return nullptr;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int pr = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (pr <= 0) return nullptr;
  int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return nullptr;
  int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketTransport>(cfd);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace apqa::net

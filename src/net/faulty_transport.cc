#include "net/faulty_transport.h"

#include <utility>

namespace apqa::net {

bool FaultyTransport::Roll(std::uint32_t permille) {
  return permille > 0 && rng_.Below(1000) < permille;
}

bool FaultyTransport::Send(const std::vector<std::uint8_t>& frame) {
  std::vector<std::vector<std::uint8_t>> to_send;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.sent;
    if (Roll(spec_.drop_permille)) {
      ++counters_.dropped;
      return true;  // lost in transit; the link itself is fine
    }
    if (Roll(spec_.hold_permille)) {
      ++counters_.held;
      held_.push_back(frame);
      return true;
    }
    std::vector<std::uint8_t> out = frame;
    bool dup = Roll(spec_.dup_permille);
    if (Roll(spec_.truncate_permille) && out.size() > 1) {
      ++counters_.truncated;
      out.resize(1 + rng_.Below(out.size() - 1));
    } else if (Roll(spec_.corrupt_permille) && !out.empty()) {
      ++counters_.corrupted;
      std::size_t byte = rng_.Below(out.size());
      out[byte] ^= static_cast<std::uint8_t>(1u << rng_.Below(8));
    }
    if (dup) ++counters_.duplicated;
    to_send.push_back(out);
    if (dup) to_send.push_back(std::move(out));
    // Release every parked frame after the current one: the held frame
    // arrives late and out of order.
    for (auto& h : held_) {
      ++counters_.released;
      to_send.push_back(std::move(h));
    }
    held_.clear();
  }
  bool ok = true;
  for (const auto& f : to_send) ok = inner_->Send(f) && ok;
  return ok;
}

RecvStatus FaultyTransport::Recv(std::vector<std::uint8_t>* frame,
                                 std::uint32_t timeout_ms) {
  return inner_->Recv(frame, timeout_ms);
}

void FaultyTransport::Close() {
  {
    // Frames parked on a closing connection are lost, like kernel buffers.
    std::lock_guard<std::mutex> lock(mu_);
    held_.clear();
  }
  inner_->Close();
}

FaultCounters FaultyTransport::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace apqa::net

// POSIX TCP transport: frames over a byte stream.
//
// The stream is parsed incrementally against the frame header (net/frame.h):
// a fixed-size header announces the payload length, which is clamped before
// any allocation. A desynchronized stream (bad magic, oversized length) is
// unrecoverable — Recv reports kError and the connection should be dropped;
// per-frame corruption detection stays with the checksum in DecodeFrame.
#ifndef APQA_NET_SOCKET_TRANSPORT_H_
#define APQA_NET_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.h"

namespace apqa::net {

class SocketTransport : public Transport {
 public:
  // Takes ownership of a connected socket fd.
  explicit SocketTransport(int fd) : fd_(fd) {}
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // Connects to host:port (numeric IPv4, e.g. "127.0.0.1"). Returns null
  // on failure.
  static std::unique_ptr<SocketTransport> Connect(const std::string& host,
                                                  std::uint16_t port,
                                                  std::uint32_t timeout_ms);

  bool Send(const std::vector<std::uint8_t>& frame) override;
  RecvStatus Recv(std::vector<std::uint8_t>* frame,
                  std::uint32_t timeout_ms) override;
  void Close() override;

 private:
  // Reads exactly n bytes into out, polling against the deadline.
  RecvStatus ReadExact(std::uint8_t* out, std::size_t n,
                       std::int64_t deadline_unix_ms);

  int fd_ = -1;
  std::mutex send_mu_;   // serializes concurrent writers (pool workers)
  std::mutex recv_mu_;   // one reader at a time
  std::mutex state_mu_;  // guards fd_ against Close()
};

// Listening socket bound to 127.0.0.1; port 0 picks an ephemeral port
// (readable via port() — tests use this to avoid collisions).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  bool ok() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  // Waits up to timeout_ms for one connection; null on timeout/closed.
  std::unique_ptr<SocketTransport> Accept(std::uint32_t timeout_ms);
  void Close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace apqa::net

#endif  // APQA_NET_SOCKET_TRANSPORT_H_

// SpServer: the fault-tolerant query service wrapped around a
// core::ServiceProvider.
//
// One session thread per attached transport receives frames; request
// handling is pushed onto a bounded ThreadPool queue. The failure story,
// in order of the request path:
//
//   * undecodable frame            → counted, dropped (like a lost datagram;
//                                    replying to garbage ids helps nobody)
//   * server draining              → kShuttingDown error (retryable)
//   * queue full                   → kRetryLater error + backoff hint (shed)
//   * deadline passed in queue     → kDeadlineExceeded error, the query is
//                                    never executed (processing work the
//                                    client has given up on is pure waste)
//   * malformed / out-of-domain    → kBadRequest error (fatal for client)
//   * handler threw                → kInternal error
//   * success                      → kVoResponse / kJoinVoResponse
//
// Stop() is drain-then-stop: new requests are refused, every *accepted*
// request is answered, then sessions are closed and joined. The invariant
// the shutdown tests assert: accepted == served + expired + failed.
#ifndef APQA_NET_SERVER_H_
#define APQA_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/system.h"
#include "core/thread_pool.h"
#include "net/frame.h"
#include "net/transport.h"

namespace apqa::net {

struct SpServerOptions {
  int worker_threads = 2;
  // Bounded request queue; TrySubmit beyond this sheds with kRetryLater.
  std::size_t max_queue = 8;
  // Backoff hint attached to kRetryLater / kShuttingDown responses.
  std::uint32_t backoff_hint_ms = 25;
  // Session-loop poll granularity: how quickly a session notices Stop().
  std::uint32_t recv_poll_ms = 50;
};

// Monotonic counters; `accepted` splits exactly into served+expired+failed.
struct ServerStats {
  std::uint64_t accepted = 0;   // queued for a worker
  std::uint64_t served = 0;     // answered with a VO
  std::uint64_t expired = 0;    // answered kDeadlineExceeded from the queue
  std::uint64_t failed = 0;     // answered kBadRequest / kInternal
  std::uint64_t shed = 0;       // answered kRetryLater (queue full)
  std::uint64_t refused = 0;    // answered kShuttingDown (draining)
  std::uint64_t malformed = 0;  // undecodable frames dropped
};

class SpServer {
 public:
  // `sp` must outlive the server. ServiceProvider is not internally
  // synchronized (shared Rng), so query execution is serialized with a
  // mutex; workers still overlap on framing, checksums, and (de)serialization.
  explicit SpServer(core::ServiceProvider* sp, SpServerOptions opts = {});
  ~SpServer();

  SpServer(const SpServer&) = delete;
  SpServer& operator=(const SpServer&) = delete;

  // Spawns a session thread serving frames from `t` until Stop() or the
  // peer closes. Returns false once Stop() has begun.
  bool AttachTransport(std::shared_ptr<Transport> t);

  // Drain-then-stop. Safe to call once; the destructor calls it.
  void Stop();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  ServerStats stats() const;

 private:
  void SessionLoop(const std::shared_ptr<Transport>& t);
  void HandleFrame(const std::shared_ptr<Transport>& t, Frame frame);
  // Runs on a pool worker: deadline check, decode, execute, reply.
  void Process(const std::shared_ptr<Transport>& t, const Frame& frame,
               std::uint64_t arrival_ms);
  void ReplyError(const std::shared_ptr<Transport>& t,
                  std::uint64_t request_id, const ErrorInfo& info);

  core::ServiceProvider* sp_;
  SpServerOptions opts_;
  core::ThreadPool pool_;
  std::mutex sp_mu_;  // serializes ServiceProvider query execution

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  std::mutex sessions_mu_;
  std::vector<std::thread> session_threads_;
  std::vector<std::shared_ptr<Transport>> transports_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> malformed_{0};
};

}  // namespace apqa::net

#endif  // APQA_NET_SERVER_H_

// Message-oriented transport abstraction for the SP query service.
//
// A Transport moves whole frame buffers (see net/frame.h) between a client
// and a server endpoint. Implementations:
//   * PipeTransport   — in-process queue pair for deterministic tests;
//   * SocketTransport — POSIX TCP, the real deployment shape;
//   * FaultyTransport — chaos decorator injecting drops/corruption/etc.
//
// Send/Recv must be safe to call from different threads (the server answers
// from pool workers while its session thread keeps receiving), and Send must
// be safe to call concurrently from several threads on one endpoint.
#ifndef APQA_NET_TRANSPORT_H_
#define APQA_NET_TRANSPORT_H_

#include <cstdint>
#include <vector>

namespace apqa::net {

enum class RecvStatus : std::uint8_t {
  kOk = 0,
  kTimeout,  // nothing arrived within the deadline; endpoint still usable
  kClosed,   // peer closed; no further frames will arrive
  kError,    // transport-level failure (I/O error, protocol desync)
};

inline const char* RecvStatusName(RecvStatus s) {
  switch (s) {
    case RecvStatus::kOk: return "ok";
    case RecvStatus::kTimeout: return "timeout";
    case RecvStatus::kClosed: return "closed";
    case RecvStatus::kError: return "error";
  }
  return "?";
}

class Transport {
 public:
  virtual ~Transport() = default;

  // Queues one frame buffer for the peer. Returns false when the endpoint
  // is closed or the write fails; a true return is *not* a delivery
  // guarantee (the frame may still be lost — that is what checksums,
  // request ids, and retries are for).
  virtual bool Send(const std::vector<std::uint8_t>& frame) = 0;

  // Blocks up to `timeout_ms` for one frame. On kOk, `*frame` holds the
  // received buffer (which may be corrupt — callers must DecodeFrame).
  virtual RecvStatus Recv(std::vector<std::uint8_t>* frame,
                          std::uint32_t timeout_ms) = 0;

  // Closes both directions; pending and future Recv calls return kClosed.
  virtual void Close() = 0;
};

}  // namespace apqa::net

#endif  // APQA_NET_TRANSPORT_H_

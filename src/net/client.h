// ApqaClient: a verifying query client with deadlines and retries.
//
// Every query runs under a total deadline budget. Attempts are paced by
// decorrelated-jitter backoff (net/backoff.h) and each attempt sends one
// frame and waits for the matching request id, discarding stale or
// corrupt arrivals.
//
// The retry taxonomy is driven by *where* a response fails:
//
//   retryable (transient, the network/server may recover)
//     - send failure, receive timeout, transport error
//     - frames that fail checksum or frame decoding (corruption/truncation)
//     - kError responses with a retryable code (RETRY_LATER, SHUTTING_DOWN,
//       DEADLINE_EXCEEDED) — RETRY_LATER's backoff hint floors the next delay
//
//   fatal (retrying cannot help, or must not happen)
//     - kError responses with kBadRequest/kInternal      → kServerRejected
//     - a response that *parses* but fails VO soundness/ completeness
//       verification                                     → kVerifyRejected
//
// The last rule is the security-critical one: a malicious SP handing out
// forged VOs must surface immediately as a verification failure, not turn
// the client into a retry storm that hammers the service and hides the
// compromise inside timeout noise.
#ifndef APQA_NET_CLIENT_H_
#define APQA_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/system.h"
#include "core/verify_result.h"
#include "net/backoff.h"
#include "net/frame.h"
#include "net/transport.h"

namespace apqa::net {

struct ClientOptions {
  std::uint32_t deadline_ms = 2000;       // total budget per query
  std::uint32_t attempt_timeout_ms = 500; // cap on a single attempt
  int max_attempts = 4;
  BackoffSpec backoff;
  std::uint64_t backoff_seed = 0x5eed;
};

enum class ClientStatus : std::uint8_t {
  kOk = 0,
  kDeadlineExceeded,  // budget exhausted before a verified response
  kRetriesExhausted,  // max_attempts transient failures inside the budget
  kVerifyRejected,    // response parsed but failed verification — FATAL
  kServerRejected,    // server answered with a non-retryable error
  kTransportClosed,   // connection is gone
};
const char* ClientStatusName(ClientStatus s);

struct ClientResult {
  ClientStatus status = ClientStatus::kRetriesExhausted;
  core::VerifyResult verify;  // why verification failed (kVerifyRejected)
  ErrorInfo server_error;     // what the server said (kServerRejected)
  int attempts = 0;
  std::uint32_t backoff_total_ms = 0;
  std::string detail;

  bool ok() const { return status == ClientStatus::kOk; }
  std::string ToString() const;
};

class ApqaClient {
 public:
  ApqaClient(core::SystemKeys keys, core::UserCredentials creds,
             std::shared_ptr<Transport> transport, ClientOptions opts = {});

  // On kOk: `result`/`accessible` as in core::User::VerifyEquality.
  ClientResult Equality(const core::Point& key, core::Record* result,
                        bool* accessible);
  ClientResult Range(const core::Box& range,
                     std::vector<core::Record>* results);
  ClientResult Join(const core::Box& range,
                    std::vector<std::pair<core::Record, core::Record>>* results);

  // Test seams: inject a fake millisecond clock / sleep so deadline and
  // backoff schedules are deterministic in tests. Defaults: steady_clock /
  // this_thread::sleep_for.
  void SetClockForTest(std::function<std::uint64_t()> now_ms);
  void SetSleepForTest(std::function<void(std::uint32_t)> sleep_ms);

 private:
  // wire_ok=false → the payload was not a structurally valid VO (retryable);
  // wire_ok=true → `verify` decides between success and fatal rejection.
  struct PayloadOutcome {
    bool wire_ok = false;
    core::VerifyResult verify;
  };
  using PayloadHandler =
      std::function<PayloadOutcome(const std::vector<std::uint8_t>&)>;

  ClientResult RunQuery(MsgType type,
                        const std::vector<std::uint8_t>& payload,
                        MsgType expected_response,
                        const PayloadHandler& handle);

  core::SystemKeys keys_;
  core::UserCredentials creds_;
  std::shared_ptr<Transport> transport_;
  ClientOptions opts_;
  std::uint64_t next_request_id_ = 1;
  std::function<std::uint64_t()> now_ms_;
  std::function<void(std::uint32_t)> sleep_ms_;
};

}  // namespace apqa::net

#endif  // APQA_NET_CLIENT_H_

// Retry pacing for the query client.
//
// Decorrelated jitter (the AWS architecture-blog variant): each delay is
// drawn uniformly from [base, prev * 3] and clamped to the cap. Compared
// with plain exponential backoff it decorrelates competing clients while
// keeping the expected delay growing geometrically. The driving PRNG is
// the same splitmix64 as common/mutate.h, seeded explicitly, so a retry
// schedule is a pure function of (seed, hint sequence) — CI asserts golden
// sequences instead of sleeping.
//
// DeadlineBudget does the client-side deadline arithmetic against an
// injectable millisecond clock; all remaining-time math saturates at zero
// rather than wrapping.
#ifndef APQA_NET_BACKOFF_H_
#define APQA_NET_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "common/mutate.h"

namespace apqa::net {

struct BackoffSpec {
  std::uint32_t base_ms = 10;
  std::uint32_t cap_ms = 1000;
};

class DecorrelatedJitterBackoff {
 public:
  DecorrelatedJitterBackoff(BackoffSpec spec, std::uint64_t seed)
      : spec_(spec), rng_(seed), prev_ms_(spec.base_ms) {}

  // Next delay. `server_hint_ms` (from a RETRY_LATER response) acts as a
  // floor: the server knows how congested it is better than we do.
  std::uint32_t NextDelayMs(std::uint32_t server_hint_ms = 0) {
    std::uint64_t lo = spec_.base_ms;
    std::uint64_t hi = std::max<std::uint64_t>(
        lo, std::uint64_t{3} * std::max<std::uint64_t>(prev_ms_, 1));
    std::uint64_t draw = lo + rng_.Below(static_cast<std::size_t>(hi - lo + 1));
    std::uint32_t delay = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(draw, spec_.cap_ms));
    delay = std::max(delay, std::min(server_hint_ms, spec_.cap_ms));
    prev_ms_ = delay;
    return delay;
  }

  void Reset() { prev_ms_ = spec_.base_ms; }

 private:
  BackoffSpec spec_;
  common::MutRng rng_;
  std::uint32_t prev_ms_;
};

// Tracks one query's total deadline against a caller-supplied "now"
// (milliseconds on any monotonic scale).
class DeadlineBudget {
 public:
  DeadlineBudget(std::uint32_t budget_ms, std::uint64_t now_ms)
      : start_ms_(now_ms), budget_ms_(budget_ms) {}

  // Remaining budget at `now_ms`; saturates at zero once exhausted. A
  // clock that stepped backwards counts as zero elapsed (full budget)
  // rather than wrapping the subtraction.
  std::uint32_t RemainingMs(std::uint64_t now_ms) const {
    if (now_ms < start_ms_) return budget_ms_;
    std::uint64_t elapsed = now_ms - start_ms_;
    if (elapsed >= budget_ms_) return 0;
    return budget_ms_ - static_cast<std::uint32_t>(elapsed);
  }

  bool Expired(std::uint64_t now_ms) const { return RemainingMs(now_ms) == 0; }

 private:
  std::uint64_t start_ms_;
  std::uint32_t budget_ms_;
};

}  // namespace apqa::net

#endif  // APQA_NET_BACKOFF_H_

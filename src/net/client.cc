#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/serde.h"
#include "core/equality.h"
#include "core/join_query.h"
#include "core/range_query.h"

namespace apqa::net {

namespace {

std::uint64_t SteadyNowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* ClientStatusName(ClientStatus s) {
  switch (s) {
    case ClientStatus::kOk: return "ok";
    case ClientStatus::kDeadlineExceeded: return "deadline-exceeded";
    case ClientStatus::kRetriesExhausted: return "retries-exhausted";
    case ClientStatus::kVerifyRejected: return "verify-rejected";
    case ClientStatus::kServerRejected: return "server-rejected";
    case ClientStatus::kTransportClosed: return "transport-closed";
  }
  return "?";
}

std::string ClientResult::ToString() const {
  std::string s = ClientStatusName(status);
  s += " after " + std::to_string(attempts) + " attempt(s)";
  if (status == ClientStatus::kVerifyRejected) {
    s += ": " + verify.ToString();
  } else if (status == ClientStatus::kServerRejected) {
    s += ": server said ";
    s += RpcErrorCodeName(server_error.code);
    if (!server_error.detail.empty()) s += " (" + server_error.detail + ")";
  }
  if (!detail.empty()) s += " [" + detail + "]";
  return s;
}

ApqaClient::ApqaClient(core::SystemKeys keys, core::UserCredentials creds,
                       std::shared_ptr<Transport> transport,
                       ClientOptions opts)
    : keys_(std::move(keys)),
      creds_(std::move(creds)),
      transport_(std::move(transport)),
      opts_(opts),
      now_ms_(SteadyNowMs),
      sleep_ms_([](std::uint32_t ms) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }) {}

void ApqaClient::SetClockForTest(std::function<std::uint64_t()> now_ms) {
  now_ms_ = std::move(now_ms);
}

void ApqaClient::SetSleepForTest(std::function<void(std::uint32_t)> sleep_ms) {
  sleep_ms_ = std::move(sleep_ms);
}

ClientResult ApqaClient::Equality(const core::Point& key, core::Record* result,
                                  bool* accessible) {
  QueryRequest req;
  req.type = MsgType::kEqualityQuery;
  req.key = key;
  req.roles = creds_.roles;
  auto handle = [&](const std::vector<std::uint8_t>& payload) {
    PayloadOutcome out;
    common::ByteReader r(payload);
    core::Vo vo = core::Vo::Deserialize(&r);
    if (!r.ok() || !r.AtEnd()) return out;
    out.wire_ok = true;
    out.verify = core::VerifyEqualityVoEx(keys_.mvk, keys_.domain, key,
                                          creds_.roles, keys_.universe, vo,
                                          result, accessible);
    return out;
  };
  return RunQuery(MsgType::kEqualityQuery, EncodeQueryPayload(req),
                  MsgType::kVoResponse, handle);
}

ClientResult ApqaClient::Range(const core::Box& range,
                               std::vector<core::Record>* results) {
  QueryRequest req;
  req.type = MsgType::kRangeQuery;
  req.range = range;
  req.roles = creds_.roles;
  auto handle = [&](const std::vector<std::uint8_t>& payload) {
    PayloadOutcome out;
    common::ByteReader r(payload);
    core::Vo vo = core::Vo::Deserialize(&r);
    if (!r.ok() || !r.AtEnd()) return out;
    out.wire_ok = true;
    if (results != nullptr) results->clear();
    out.verify = core::VerifyRangeVoEx(keys_.mvk, keys_.domain, range,
                                       creds_.roles, keys_.universe, vo,
                                       results);
    return out;
  };
  return RunQuery(MsgType::kRangeQuery, EncodeQueryPayload(req),
                  MsgType::kVoResponse, handle);
}

ClientResult ApqaClient::Join(
    const core::Box& range,
    std::vector<std::pair<core::Record, core::Record>>* results) {
  QueryRequest req;
  req.type = MsgType::kJoinQuery;
  req.range = range;
  req.roles = creds_.roles;
  auto handle = [&](const std::vector<std::uint8_t>& payload) {
    PayloadOutcome out;
    common::ByteReader r(payload);
    core::JoinVo vo = core::JoinVo::Deserialize(&r);
    if (!r.ok() || !r.AtEnd()) return out;
    out.wire_ok = true;
    if (results != nullptr) results->clear();
    out.verify = core::VerifyJoinVoEx(keys_.mvk, keys_.domain, range,
                                      creds_.roles, keys_.universe, vo,
                                      results);
    return out;
  };
  return RunQuery(MsgType::kJoinQuery, EncodeQueryPayload(req),
                  MsgType::kJoinVoResponse, handle);
}

ClientResult ApqaClient::RunQuery(MsgType type,
                                  const std::vector<std::uint8_t>& payload,
                                  MsgType expected_response,
                                  const PayloadHandler& handle) {
  ClientResult result;
  DeadlineBudget budget(opts_.deadline_ms, now_ms_());
  DecorrelatedJitterBackoff backoff(opts_.backoff, opts_.backoff_seed);

  for (int attempt = 1; attempt <= opts_.max_attempts; ++attempt) {
    std::uint32_t remaining = budget.RemainingMs(now_ms_());
    if (remaining == 0) {
      result.status = ClientStatus::kDeadlineExceeded;
      return result;
    }
    result.attempts = attempt;
    std::uint32_t attempt_ms = std::min(remaining, opts_.attempt_timeout_ms);

    Frame f;
    f.type = type;
    f.request_id = next_request_id_++;
    f.deadline_ms = attempt_ms;
    f.payload = payload;

    std::uint32_t retry_hint_ms = 0;
    bool transport_closed = false;

    if (!transport_->Send(EncodeFrame(f))) {
      transport_closed = true;
    } else {
      DeadlineBudget attempt_budget(attempt_ms, now_ms_());
      std::vector<std::uint8_t> buf;
      for (;;) {
        std::uint32_t left = attempt_budget.RemainingMs(now_ms_());
        if (left == 0) break;  // attempt timed out → retryable
        RecvStatus st = transport_->Recv(&buf, left);
        if (st == RecvStatus::kTimeout) continue;  // loop re-checks budget
        if (st == RecvStatus::kClosed) {
          transport_closed = true;
          break;
        }
        if (st == RecvStatus::kError) break;  // retryable
        Frame resp;
        if (DecodeFrame(buf, &resp) != FrameDecodeError::kOk) {
          // Corrupt or truncated frame: discard and keep listening — a
          // clean duplicate may still arrive within this attempt.
          continue;
        }
        if (resp.request_id != f.request_id) continue;  // stale attempt
        if (resp.type == MsgType::kError) {
          ErrorInfo info;
          if (!DecodeErrorPayload(resp.payload, &info)) continue;
          if (RpcErrorRetryable(info.code)) {
            retry_hint_ms = info.backoff_hint_ms;
            break;  // retryable server condition
          }
          result.status = ClientStatus::kServerRejected;
          result.server_error = info;
          return result;
        }
        if (resp.type != expected_response) {
          // A well-checksummed frame of the wrong type with our request id
          // is a protocol violation by the SP, not line noise: fatal.
          result.status = ClientStatus::kVerifyRejected;
          result.verify = core::VerifyResult::Fail(
              core::VerifyCode::kMalformedVo, "unexpected response type");
          result.detail = MsgTypeName(resp.type);
          return result;
        }
        PayloadOutcome out = handle(resp.payload);
        if (!out.wire_ok) break;  // mangled VO bytes → retryable
        if (!out.verify.ok()) {
          result.status = ClientStatus::kVerifyRejected;
          result.verify = std::move(out.verify);
          return result;
        }
        result.status = ClientStatus::kOk;
        return result;
      }
    }

    if (transport_closed) {
      result.status = ClientStatus::kTransportClosed;
      return result;
    }
    if (attempt == opts_.max_attempts) break;

    std::uint32_t delay = backoff.NextDelayMs(retry_hint_ms);
    remaining = budget.RemainingMs(now_ms_());
    if (remaining == 0 || delay >= remaining) {
      // Sleeping through the rest of the budget cannot succeed; surface
      // the deadline instead of a doomed final attempt.
      result.status = ClientStatus::kDeadlineExceeded;
      return result;
    }
    sleep_ms_(delay);
    result.backoff_total_ms += delay;
  }

  result.status = ClientStatus::kRetriesExhausted;
  return result;
}

}  // namespace apqa::net

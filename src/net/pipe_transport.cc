#include "net/pipe_transport.h"

#include <chrono>

namespace apqa::net {

std::pair<std::shared_ptr<PipeTransport>, std::shared_ptr<PipeTransport>>
PipeTransport::CreatePair(std::size_t max_queued_frames) {
  auto a_in = std::make_shared<Inbox>();
  auto b_in = std::make_shared<Inbox>();
  a_in->capacity = max_queued_frames;
  b_in->capacity = max_queued_frames;
  auto a = std::make_shared<PipeTransport>(PrivateTag{});
  auto b = std::make_shared<PipeTransport>(PrivateTag{});
  a->mine_ = a_in;
  a->peers_ = b_in;
  b->mine_ = b_in;
  b->peers_ = a_in;
  return {std::move(a), std::move(b)};
}

bool PipeTransport::Send(const std::vector<std::uint8_t>& frame) {
  std::shared_ptr<Inbox> peer = peers_;
  {
    std::unique_lock<std::mutex> lock(peer->mu);
    if (peer->closed) return false;
    // A full peer inbox drops the frame rather than blocking the sender:
    // the pipe models a datagram link, and the retry layer above owns
    // reliability.
    if (peer->frames.size() >= peer->capacity) return true;
    peer->frames.push_back(frame);
  }
  peer->cv.notify_one();
  return true;
}

RecvStatus PipeTransport::Recv(std::vector<std::uint8_t>* frame,
                               std::uint32_t timeout_ms) {
  std::shared_ptr<Inbox> in = mine_;
  std::unique_lock<std::mutex> lock(in->mu);
  bool got = in->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [&] { return in->closed || !in->frames.empty(); });
  if (!in->frames.empty()) {
    *frame = std::move(in->frames.front());
    in->frames.pop_front();
    return RecvStatus::kOk;
  }
  if (in->closed) return RecvStatus::kClosed;
  return got ? RecvStatus::kError : RecvStatus::kTimeout;
}

void PipeTransport::Close() {
  for (const std::shared_ptr<Inbox>& box : {mine_, peers_}) {
    {
      std::unique_lock<std::mutex> lock(box->mu);
      box->closed = true;
    }
    box->cv.notify_all();
  }
}

}  // namespace apqa::net

// Wire format of the SP query service.
//
// Every message is one frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic "APQF"
//        4     1  version (kFrameVersion)
//        5     1  message type (MsgType)
//        6     8  request id (client-chosen, echoed by the server)
//       14     4  deadline_ms (client's remaining budget for this attempt;
//                 0 in responses)
//       18     4  payload length
//       22     n  payload
//     22+n     8  checksum: SHA-256 over bytes [0, 22+n), truncated
//
// The checksum detects accidental corruption (a flaky link, a buggy proxy);
// it is *not* an authenticity mechanism — soundness against a malicious SP
// rests entirely on the VO verification the payload undergoes afterwards.
// Decoding is total: arbitrary bytes yield a typed FrameDecodeError, never
// UB, and the payload is only handed on once the checksum matches.
//
// Payload schemas (all little-endian, via common::ByteWriter/ByteReader):
//   kEqualityQuery            Point key, roles
//   kRangeQuery / kJoinQuery  Box range, roles
//   kVoResponse               core::Vo        (core/vo.h serialization)
//   kJoinVoResponse           core::JoinVo
//   kError                    u8 code, u32 backoff_hint_ms, string detail
#ifndef APQA_NET_FRAME_H_
#define APQA_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/record.h"

namespace apqa::net {

inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::uint8_t kFrameMagic[4] = {'A', 'P', 'Q', 'F'};
inline constexpr std::size_t kFrameHeaderBytes = 22;
inline constexpr std::size_t kFrameChecksumBytes = 8;
// Hard cap on payload size: a hostile or corrupt length field must never
// drive allocation beyond this.
inline constexpr std::size_t kMaxFramePayloadBytes = 16u << 20;

enum class MsgType : std::uint8_t {
  kEqualityQuery = 1,
  kRangeQuery = 2,
  kJoinQuery = 3,
  kVoResponse = 4,
  kJoinVoResponse = 5,
  kError = 6,
};
const char* MsgTypeName(MsgType t);

// Server-side error taxonomy carried in kError payloads. Retryable codes
// describe transient server state; the rest indicate the request itself
// (or the server) is broken and retrying cannot help.
enum class RpcErrorCode : std::uint8_t {
  kDeadlineExceeded = 1,  // request expired in queue before a worker ran it
  kRetryLater = 2,        // queue full (load shed); honor backoff_hint_ms
  kShuttingDown = 3,      // server draining; try again elsewhere/later
  kBadRequest = 4,        // malformed or out-of-domain query
  kInternal = 5,          // handler threw; not the client's fault, not safe
                          // to assume a retry changes anything
};
const char* RpcErrorCodeName(RpcErrorCode c);
bool RpcErrorRetryable(RpcErrorCode c);

struct Frame {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  std::uint32_t deadline_ms = 0;
  std::vector<std::uint8_t> payload;
};

enum class FrameDecodeError : std::uint8_t {
  kOk = 0,
  kTruncated,      // shorter than header + declared payload + checksum
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadLength,      // declared payload length exceeds kMaxFramePayloadBytes
  kBadChecksum,
  kTrailingBytes,  // longer than header + declared payload + checksum
};
const char* FrameDecodeErrorName(FrameDecodeError e);

std::vector<std::uint8_t> EncodeFrame(const Frame& f);
FrameDecodeError DecodeFrame(const std::vector<std::uint8_t>& buf, Frame* out);

// --- kError payload ---------------------------------------------------------

struct ErrorInfo {
  RpcErrorCode code = RpcErrorCode::kInternal;
  std::uint32_t backoff_hint_ms = 0;  // meaningful for kRetryLater
  std::string detail;
};

std::vector<std::uint8_t> EncodeErrorPayload(const ErrorInfo& info);
bool DecodeErrorPayload(const std::vector<std::uint8_t>& payload,
                        ErrorInfo* out);

// --- query payloads ---------------------------------------------------------

// One struct covers the three query types; which geometry field is
// meaningful follows from `type`.
struct QueryRequest {
  MsgType type = MsgType::kEqualityQuery;
  core::Point key;    // kEqualityQuery
  core::Box range;    // kRangeQuery / kJoinQuery
  core::RoleSet roles;
};

std::vector<std::uint8_t> EncodeQueryPayload(const QueryRequest& req);
// Strict: returns false unless the payload parses completely (no trailing
// bytes) into a structurally valid request of the given type.
bool DecodeQueryPayload(MsgType type, const std::vector<std::uint8_t>& payload,
                        QueryRequest* out);

}  // namespace apqa::net

#endif  // APQA_NET_FRAME_H_

// Chaos decorator: wraps any Transport and injects deterministic faults on
// the send path, driven by the same splitmix64 stream as the VO
// fault-injection harness (common/mutate.h) so a failing run reproduces
// from its seed alone.
//
// Fault model (each drawn independently per frame, in this order):
//   * drop       — the frame vanishes; Send still reports success, exactly
//                  like a lost datagram;
//   * hold       — the frame is delayed: parked and released after the
//                  *next* frame goes out (models reordering and responses
//                  arriving after the client's per-attempt deadline);
//   * duplicate  — the frame is delivered twice;
//   * truncate   — a suffix is cut off (partial write / torn message);
//   * corrupt    — exactly one bit is flipped, so the delivered bytes are
//                  guaranteed to differ and the frame checksum MUST reject
//                  them; an accepted corrupt frame is a real bug, never a
//                  test artifact.
//
// To fault both directions of a connection, wrap both endpoints (with
// different seeds — the streams are otherwise identical).
#ifndef APQA_NET_FAULTY_TRANSPORT_H_
#define APQA_NET_FAULTY_TRANSPORT_H_

#include <memory>
#include <mutex>

#include "common/mutate.h"
#include "net/transport.h"

namespace apqa::net {

// Per-fault probabilities in permille (0..1000) of each Send.
struct FaultSpec {
  std::uint32_t drop_permille = 0;
  std::uint32_t hold_permille = 0;
  std::uint32_t dup_permille = 0;
  std::uint32_t truncate_permille = 0;
  std::uint32_t corrupt_permille = 0;
};

// Counters for test assertions ("the suite actually exercised every fault").
struct FaultCounters {
  std::uint64_t sent = 0;  // Send calls observed
  std::uint64_t dropped = 0;
  std::uint64_t held = 0;
  std::uint64_t released = 0;  // held frames later delivered
  std::uint64_t duplicated = 0;
  std::uint64_t truncated = 0;
  std::uint64_t corrupted = 0;
};

class FaultyTransport : public Transport {
 public:
  FaultyTransport(std::shared_ptr<Transport> inner, FaultSpec spec,
                  std::uint64_t seed)
      : inner_(std::move(inner)), spec_(spec), rng_(seed) {}

  bool Send(const std::vector<std::uint8_t>& frame) override;
  RecvStatus Recv(std::vector<std::uint8_t>* frame,
                  std::uint32_t timeout_ms) override;
  void Close() override;

  FaultCounters counters() const;

 private:
  bool Roll(std::uint32_t permille);

  std::shared_ptr<Transport> inner_;
  FaultSpec spec_;
  common::MutRng rng_;
  mutable std::mutex mu_;  // guards rng_, held_, counters_
  std::vector<std::vector<std::uint8_t>> held_;
  FaultCounters counters_;
};

}  // namespace apqa::net

#endif  // APQA_NET_FAULTY_TRANSPORT_H_

#include "db/database.h"

#include <stdexcept>

namespace apqa::db {

OwnerDatabase::OwnerDatabase(const RoleSet& role_universe, std::uint64_t seed)
    : universe_(role_universe), seed_(seed) {
  // The DataOwner's domain member only matters for its BuildAds shortcut;
  // tables carry their own domains and are built directly.
  owner_ = std::make_unique<core::DataOwner>(role_universe, core::Domain{1, 1},
                                             seed);
}

void OwnerDatabase::CreateTable(const TableSchema& schema,
                                const std::vector<Row>& rows) {
  if (tables_.count(schema.name())) {
    throw std::invalid_argument("table exists: " + schema.name());
  }
  std::vector<core::Record> records;
  records.reserve(rows.size());
  for (const Row& row : rows) {
    core::Record r;
    r.key = schema.Discretize(row.attrs);
    r.value = row.value;
    r.policy = core::Policy::Parse(row.policy);
    for (const auto& role : r.policy.Roles()) {
      if (!keys().universe.count(role)) {
        throw std::invalid_argument("policy role outside universe: " + role);
      }
      if (role == core::kPseudoRole) {
        throw std::invalid_argument("Role@NULL is reserved");
      }
    }
    records.push_back(std::move(r));
  }
  core::GridTree tree =
      core::GridTree::Build(keys().mvk, owner_->signing_key(), schema.domain(),
                            records, owner_->rng());
  tables_.emplace(schema.name(), Table{schema, std::move(tree)});
}

bool OwnerDatabase::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const TableSchema& OwnerDatabase::GetSchema(const std::string& name) const {
  return tables_.at(name).schema;
}

std::vector<std::uint8_t> OwnerDatabase::ExportTable(
    const std::string& name) const {
  const Table& table = tables_.at(name);
  common::ByteWriter w;
  table.schema.Serialize(&w);
  table.tree.Serialize(&w);
  return w.Take();
}

bool SpDatabase::ImportTable(const std::vector<std::uint8_t>& bundle) {
  common::ByteReader r(bundle);
  auto schema = TableSchema::Deserialize(&r);
  if (!schema.has_value()) return false;
  auto tree = core::GridTree::Deserialize(&r);
  if (!tree.has_value() || !r.ok()) return false;
  if (tree->domain().dims != schema->domain().dims ||
      tree->domain().bits != schema->domain().bits) {
    return false;
  }
  std::string name = schema->name();
  tables_.insert_or_assign(name, Table{std::move(*schema), std::move(*tree)});
  return true;
}

bool SpDatabase::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const TableSchema& SpDatabase::GetSchema(const std::string& name) const {
  return tables_.at(name).schema;
}

core::Vo SpDatabase::Equality(const std::string& table,
                              const std::vector<double>& attrs,
                              const RoleSet& roles) {
  const Table& t = tables_.at(table);
  return core::BuildEqualityVo(t.tree, keys_.mvk, t.schema.Discretize(attrs),
                               roles, keys_.universe, &rng_);
}

core::Vo SpDatabase::Range(const std::string& table,
                           const std::vector<double>& lo,
                           const std::vector<double>& hi,
                           const RoleSet& roles) {
  const Table& t = tables_.at(table);
  return core::BuildRangeVo(t.tree, keys_.mvk, t.schema.DiscretizeRange(lo, hi),
                            roles, keys_.universe, &rng_);
}

core::JoinVo SpDatabase::Join(const std::string& table_r,
                              const std::string& table_s,
                              const std::vector<double>& lo,
                              const std::vector<double>& hi,
                              const RoleSet& roles) {
  const Table& tr = tables_.at(table_r);
  const Table& ts = tables_.at(table_s);
  if (tr.schema.domain().dims != ts.schema.domain().dims ||
      tr.schema.domain().bits != ts.schema.domain().bits) {
    throw std::invalid_argument("join tables must share a key grid");
  }
  return core::BuildJoinVo(tr.tree, ts.tree, keys_.mvk,
                           tr.schema.DiscretizeRange(lo, hi), roles,
                           keys_.universe, &rng_);
}

namespace {

VerifiedRow ToVerifiedRow(const core::Record& r) {
  return VerifiedRow{r.key, r.value, r.policy.ToString()};
}

}  // namespace

bool ClientSession::VerifyRange(const TableSchema& schema,
                                const std::vector<double>& lo,
                                const std::vector<double>& hi,
                                const core::Vo& vo,
                                std::vector<VerifiedRow>* rows,
                                std::string* error) const {
  std::vector<core::Record> results;
  if (!core::VerifyRangeVo(keys_.mvk, schema.domain(),
                           schema.DiscretizeRange(lo, hi), creds_.roles,
                           keys_.universe, vo, &results, error)) {
    return false;
  }
  if (rows != nullptr) {
    for (const auto& r : results) rows->push_back(ToVerifiedRow(r));
  }
  return true;
}

bool ClientSession::VerifyEquality(const TableSchema& schema,
                                   const std::vector<double>& attrs,
                                   const core::Vo& vo,
                                   std::optional<VerifiedRow>* row,
                                   std::string* error) const {
  core::Record result;
  bool accessible = false;
  if (!core::VerifyEqualityVo(keys_.mvk, schema.domain(),
                              schema.Discretize(attrs), creds_.roles,
                              keys_.universe, vo, &result, &accessible,
                              error)) {
    return false;
  }
  if (row != nullptr) {
    if (accessible) {
      *row = ToVerifiedRow(result);
    } else {
      row->reset();
    }
  }
  return true;
}

bool ClientSession::VerifyJoin(
    const TableSchema& schema_r, const std::vector<double>& lo,
    const std::vector<double>& hi, const core::JoinVo& vo,
    std::vector<std::pair<VerifiedRow, VerifiedRow>>* rows,
    std::string* error) const {
  std::vector<std::pair<core::Record, core::Record>> results;
  if (!core::VerifyJoinVo(keys_.mvk, schema_r.domain(),
                          schema_r.DiscretizeRange(lo, hi), creds_.roles,
                          keys_.universe, vo, &results, error)) {
    return false;
  }
  if (rows != nullptr) {
    for (const auto& [r, s] : results) {
      rows->emplace_back(ToVerifiedRow(r), ToVerifiedRow(s));
    }
  }
  return true;
}

}  // namespace apqa::db

#include "db/schema.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace apqa::db {

TableSchema::TableSchema(std::string table_name,
                         std::vector<AttributeSpec> attributes, int bits)
    : name_(std::move(table_name)),
      attributes_(std::move(attributes)),
      bits_(bits) {
  if (attributes_.empty() || attributes_.size() > 3) {
    throw std::invalid_argument("schema needs 1..3 query attributes");
  }
  if (bits_ < 1 || bits_ > 12) {
    throw std::invalid_argument("grid bits out of range");
  }
  for (const auto& a : attributes_) {
    if (!(a.min < a.max)) {
      throw std::invalid_argument("attribute range empty: " + a.name);
    }
  }
}

core::Domain TableSchema::domain() const {
  return core::Domain{static_cast<int>(attributes_.size()), bits_};
}

std::uint32_t TableSchema::Cell(double v, const AttributeSpec& spec) const {
  std::uint32_t side = std::uint32_t{1} << bits_;
  double t = (v - spec.min) / (spec.max - spec.min);
  t = std::clamp(t, 0.0, 1.0);
  auto cell = static_cast<std::uint32_t>(t * side);
  return std::min(cell, side - 1);
}

core::Point TableSchema::Discretize(const std::vector<double>& values) const {
  if (values.size() != attributes_.size()) {
    throw std::invalid_argument("attribute tuple arity mismatch");
  }
  core::Point p;
  p.reserve(values.size());
  for (std::size_t d = 0; d < values.size(); ++d) {
    p.push_back(Cell(values[d], attributes_[d]));
  }
  return p;
}

core::Box TableSchema::DiscretizeRange(const std::vector<double>& lo,
                                       const std::vector<double>& hi) const {
  if (lo.size() != attributes_.size() || hi.size() != attributes_.size()) {
    throw std::invalid_argument("range arity mismatch");
  }
  core::Box box;
  box.lo.reserve(lo.size());
  box.hi.reserve(hi.size());
  for (std::size_t d = 0; d < lo.size(); ++d) {
    if (lo[d] > hi[d]) throw std::invalid_argument("empty range");
    box.lo.push_back(Cell(lo[d], attributes_[d]));
    box.hi.push_back(Cell(hi[d], attributes_[d]));
  }
  return box;
}

void TableSchema::Serialize(apqa::common::ByteWriter* w) const {
  w->PutString(name_);
  w->PutU32(static_cast<std::uint32_t>(bits_));
  w->PutU32(static_cast<std::uint32_t>(attributes_.size()));
  for (const auto& a : attributes_) {
    w->PutString(a.name);
    static_assert(sizeof(double) == 8);
    std::uint64_t bits;
    std::memcpy(&bits, &a.min, 8);
    w->PutU64(bits);
    std::memcpy(&bits, &a.max, 8);
    w->PutU64(bits);
  }
}

std::optional<TableSchema> TableSchema::Deserialize(apqa::common::ByteReader* r) {
  std::string name = r->GetString();
  int bits = static_cast<int>(r->GetU32());
  std::uint32_t n = r->GetU32();
  if (!r->ok() || n == 0 || n > 3 || bits < 1 || bits > 12) {
    return std::nullopt;
  }
  std::vector<AttributeSpec> attrs;
  for (std::uint32_t i = 0; i < n; ++i) {
    AttributeSpec a;
    a.name = r->GetString();
    std::uint64_t raw = r->GetU64();
    std::memcpy(&a.min, &raw, 8);
    raw = r->GetU64();
    std::memcpy(&a.max, &raw, 8);
    if (!r->ok() || !(a.min < a.max)) return std::nullopt;
    attrs.push_back(std::move(a));
  }
  return TableSchema(std::move(name), std::move(attrs), bits);
}

}  // namespace apqa::db

// Multi-table database facade — the adoption surface for the library.
//
// Wraps the three-party protocol (core/system.h) in the shapes a real
// deployment uses:
//
//   * OwnerDatabase  — the data owner's catalog: create tables over
//     real-valued schemas, enroll users, export each table's signed ADS as
//     bytes for outsourcing;
//   * SpDatabase     — the service provider: import ADS bytes, answer
//     equality/range/join queries by table name;
//   * ClientSession  — a user's verifying client: issues attribute-space
//     queries and returns decoded, verified rows.
//
// Records whose discretized keys collide are rejected at insert (duplicate
// handling lives in core/duplicates.h and can be layered on demand).
#ifndef APQA_DB_DATABASE_H_
#define APQA_DB_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/system.h"
#include "db/schema.h"

namespace apqa::db {

using core::RoleSet;

struct Row {
  std::vector<double> attrs;  // query attribute values, schema order
  std::string value;          // payload
  std::string policy;         // monotone policy text, e.g. "(A & B) | C"
};

// A verified row returned to the client.
struct VerifiedRow {
  core::Point cell;
  std::string value;
  std::string policy;
};

class OwnerDatabase {
 public:
  OwnerDatabase(const RoleSet& role_universe, std::uint64_t seed);

  // Builds and signs the table ADS. Throws on schema violations, unknown
  // policy roles, or key collisions after discretization.
  void CreateTable(const TableSchema& schema, const std::vector<Row>& rows);

  bool HasTable(const std::string& name) const;
  const TableSchema& GetSchema(const std::string& name) const;

  // Serialized (schema + signed ADS) bundle for outsourcing to the SP.
  std::vector<std::uint8_t> ExportTable(const std::string& name) const;

  const core::SystemKeys& keys() const { return owner_->keys(); }
  core::UserCredentials Enroll(const RoleSet& roles) {
    return owner_->EnrollUser(roles);
  }

 private:
  // One DataOwner per table domain is avoided by fixing a single domain per
  // table; the DataOwner only provides key material, which is shared.
  std::unique_ptr<core::DataOwner> owner_;
  struct Table {
    TableSchema schema;
    core::GridTree tree;
  };
  std::map<std::string, Table> tables_;
  RoleSet universe_;
  std::uint64_t seed_;
};

class SpDatabase {
 public:
  explicit SpDatabase(core::SystemKeys keys) : keys_(std::move(keys)) {}

  // Imports an exported table bundle; returns false on malformed input.
  bool ImportTable(const std::vector<std::uint8_t>& bundle);

  bool HasTable(const std::string& name) const;
  const TableSchema& GetSchema(const std::string& name) const;

  core::Vo Equality(const std::string& table, const std::vector<double>& attrs,
                    const RoleSet& roles);
  core::Vo Range(const std::string& table, const std::vector<double>& lo,
                 const std::vector<double>& hi, const RoleSet& roles);
  // Equi-join of two 1-attribute tables on their shared key grid.
  core::JoinVo Join(const std::string& table_r, const std::string& table_s,
                    const std::vector<double>& lo, const std::vector<double>& hi,
                    const RoleSet& roles);

 private:
  core::SystemKeys keys_;
  struct Table {
    TableSchema schema;
    core::GridTree tree;
  };
  std::map<std::string, Table> tables_;
  crypto::Rng rng_;
};

class ClientSession {
 public:
  ClientSession(core::SystemKeys keys, core::UserCredentials creds)
      : keys_(std::move(keys)), creds_(std::move(creds)) {}

  const RoleSet& roles() const { return creds_.roles; }

  // Verifies a range VO produced for [lo, hi] on `schema`. On success fills
  // `rows` with the accessible results.
  bool VerifyRange(const TableSchema& schema, const std::vector<double>& lo,
                   const std::vector<double>& hi, const core::Vo& vo,
                   std::vector<VerifiedRow>* rows,
                   std::string* error = nullptr) const;

  bool VerifyEquality(const TableSchema& schema,
                      const std::vector<double>& attrs, const core::Vo& vo,
                      std::optional<VerifiedRow>* row,
                      std::string* error = nullptr) const;

  bool VerifyJoin(const TableSchema& schema_r, const std::vector<double>& lo,
                  const std::vector<double>& hi, const core::JoinVo& vo,
                  std::vector<std::pair<VerifiedRow, VerifiedRow>>* rows,
                  std::string* error = nullptr) const;

 private:
  core::SystemKeys keys_;
  core::UserCredentials creds_;
};

}  // namespace apqa::db

#endif  // APQA_DB_DATABASE_H_

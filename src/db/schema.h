// Table schemas over real-valued attributes.
//
// The paper's protocol operates on discrete grid keys (footnote 1: real
// attributes are discretized). This module carries the mapping: a schema
// names up to three query attributes with value ranges and a grid
// resolution, and converts rows/query ranges between attribute space and
// the AP²G-tree domain.
#ifndef APQA_DB_SCHEMA_H_
#define APQA_DB_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/serde.h"
#include "core/record.h"

namespace apqa::db {

struct AttributeSpec {
  std::string name;
  double min = 0;
  double max = 1;
};

class TableSchema {
 public:
  TableSchema() = default;
  // `bits` is the per-dimension grid resolution (domain side 2^bits).
  TableSchema(std::string table_name, std::vector<AttributeSpec> attributes,
              int bits);

  const std::string& name() const { return name_; }
  const std::vector<AttributeSpec>& attributes() const { return attributes_; }
  core::Domain domain() const;

  // Maps an attribute tuple to its grid cell (values clamped to
  // [min, max]).
  core::Point Discretize(const std::vector<double>& values) const;

  // Maps a half-open attribute-space range to the smallest covering grid
  // box. Conservative: the verified result may include grid-neighbors of
  // the requested boundary; callers filter on raw values if exact bounds
  // matter.
  core::Box DiscretizeRange(const std::vector<double>& lo,
                            const std::vector<double>& hi) const;

  void Serialize(apqa::common::ByteWriter* w) const;
  static std::optional<TableSchema> Deserialize(apqa::common::ByteReader* r);

 private:
  std::uint32_t Cell(double v, const AttributeSpec& spec) const;

  std::string name_;
  std::vector<AttributeSpec> attributes_;
  int bits_ = 0;
};

}  // namespace apqa::db

#endif  // APQA_DB_SCHEMA_H_

// Differential tests for the scalar-multiplication engine (crypto/msm.h):
// fixed-base tables, Pippenger MSM, batched inversion / affine
// normalization, and the lockstep batched MultiPairing — each checked
// against the generic reference kernels.
#include <gtest/gtest.h>

#include "crypto/msm.h"
#include "crypto/pairing.h"
#include "crypto/rng.h"

namespace apqa::crypto {
namespace {

Fr RMinusOne() { return -Fr::One(); }

TEST(BatchInverseTest, MatchesScalarInverse) {
  Rng rng(1);
  std::vector<Fp> xs(17);
  for (auto& x : xs) x = Fp::FromU64(rng.NextU64() | 1);
  std::vector<Fp> expect(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) expect[i] = xs[i].Inverse();
  BatchInverse(xs.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(xs[i], expect[i]);
}

TEST(BatchInverseTest, ZeroEntriesStayZero) {
  Rng rng(2);
  std::vector<Fp> xs = {Fp::FromU64(7), Fp::Zero(), Fp::FromU64(11),
                        Fp::Zero()};
  std::vector<Fp> expect(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) expect[i] = xs[i].Inverse();
  BatchInverse(xs.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(xs[i], expect[i]);
  EXPECT_TRUE(xs[1].IsZero());
  // All-zero and empty inputs must not divide by zero.
  std::vector<Fp> zeros(3, Fp::Zero());
  BatchInverse(zeros.data(), zeros.size());
  for (const auto& z : zeros) EXPECT_TRUE(z.IsZero());
  BatchInverse(zeros.data(), 0);
}

TEST(BatchToAffineTest, NormalizesMixedPoints) {
  Rng rng(3);
  std::vector<G1> pts;
  for (int i = 0; i < 9; ++i) pts.push_back(G1Mul(rng.NextNonZeroFr()));
  pts.insert(pts.begin() + 4, G1::Infinity());
  std::vector<G1> orig = pts;
  BatchToAffine<Fp>(std::span<G1>(pts));
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i], orig[i]);
    if (!pts[i].IsInfinity()) {
      EXPECT_EQ(pts[i].z, Fp::One());
      Fp ax, ay;
      orig[i].ToAffine(&ax, &ay);
      EXPECT_EQ(pts[i].x, ax);
      EXPECT_EQ(pts[i].y, ay);
    }
  }
  EXPECT_TRUE(pts[4].IsInfinity());
}

TEST(MixedAddTest, MatchesGeneralAddition) {
  Rng rng(4);
  G1 a = G1Mul(rng.NextNonZeroFr());
  G1 b = G1Mul(rng.NextNonZeroFr());
  Fp bx, by;
  b.ToAffine(&bx, &by);
  EXPECT_EQ(a.AddMixed(bx, by), a + b);
  // Infinity + affine, doubling, and inverse edge cases.
  EXPECT_EQ(G1::Infinity().AddMixed(bx, by), b);
  EXPECT_EQ(b.AddMixed(bx, by), b.Double());
  EXPECT_TRUE((-b).AddMixed(bx, by).IsInfinity());
}

TEST(FixedBaseTableTest, G1MatchesScalarMul) {
  Rng rng(5);
  G1 base = G1Mul(rng.NextNonZeroFr());
  FixedBaseTable<Fp> tab(base);
  for (int i = 0; i < 20; ++i) {
    Fr k = rng.NextFr();
    EXPECT_EQ(tab.Mul(k), base.ScalarMul(k));
  }
  // Edge scalars: 0, 1, r-1 (top digit pattern), small powers of 16.
  EXPECT_TRUE(tab.Mul(Fr::Zero()).IsInfinity());
  EXPECT_EQ(tab.Mul(Fr::One()), base);
  EXPECT_EQ(tab.Mul(RMinusOne()), -base);
  EXPECT_EQ(tab.Mul(Fr::FromU64(16)), base.ScalarMul(Fr::FromU64(16)));
  EXPECT_EQ(tab.Mul(Fr::FromU64(15)), base.ScalarMul(Fr::FromU64(15)));
}

TEST(FixedBaseTableTest, G2MatchesScalarMul) {
  Rng rng(6);
  G2 base = G2Mul(rng.NextNonZeroFr());
  FixedBaseTable<Fp2> tab(base);
  for (int i = 0; i < 10; ++i) {
    Fr k = rng.NextFr();
    EXPECT_EQ(tab.Mul(k), base.ScalarMul(k));
  }
  EXPECT_TRUE(tab.Mul(Fr::Zero()).IsInfinity());
  EXPECT_EQ(tab.Mul(Fr::One()), base);
  EXPECT_EQ(tab.Mul(RMinusOne()), -base);
}

TEST(FixedBaseTableTest, InfinityBase) {
  FixedBaseTable<Fp> tab(G1::Infinity());
  EXPECT_TRUE(tab.Initialized());
  EXPECT_TRUE(tab.Mul(Fr::FromU64(123)).IsInfinity());
  FixedBaseTable<Fp> empty;
  EXPECT_FALSE(empty.Initialized());
}

TEST(FixedBaseTableTest, GeneratorTablesMatchGeneratorMul) {
  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    Fr k = rng.NextFr();
    EXPECT_EQ(G1Mul(k), G1Generator().ScalarMul(k));
    EXPECT_EQ(G2Mul(k), G2Generator().ScalarMul(k));
  }
}

G1 NaiveMsmG1(const std::vector<G1>& pts, const std::vector<Fr>& ks) {
  G1 acc = G1::Infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    acc = acc + pts[i].ScalarMul(ks[i]);
  }
  return acc;
}

TEST(MsmTest, G1MatchesNaiveAcrossSizes) {
  Rng rng(8);
  // Spans both the naive fallback (n < 8) and Pippenger windows.
  for (std::size_t n : {0u, 1u, 2u, 7u, 8u, 9u, 33u, 100u}) {
    std::vector<G1> pts(n);
    std::vector<Fr> ks(n);
    for (std::size_t i = 0; i < n; ++i) {
      pts[i] = G1Mul(rng.NextNonZeroFr());
      ks[i] = rng.NextFr();
    }
    EXPECT_EQ(G1Msm(std::span<const G1>(pts), std::span<const Fr>(ks)),
              NaiveMsmG1(pts, ks))
        << "n=" << n;
  }
}

TEST(MsmTest, G1EdgeTerms) {
  Rng rng(9);
  std::vector<G1> pts;
  std::vector<Fr> ks;
  // Mix of zero scalars, infinity points, one, and r-1.
  for (int i = 0; i < 12; ++i) {
    pts.push_back(G1Mul(rng.NextNonZeroFr()));
    ks.push_back(rng.NextFr());
  }
  ks[0] = Fr::Zero();
  ks[1] = Fr::One();
  ks[2] = RMinusOne();
  pts[3] = G1::Infinity();
  EXPECT_EQ(G1Msm(std::span<const G1>(pts), std::span<const Fr>(ks)),
            NaiveMsmG1(pts, ks));
  // All-degenerate input.
  std::vector<G1> inf(3, G1::Infinity());
  std::vector<Fr> zero(3, Fr::Zero());
  EXPECT_TRUE(
      G1Msm(std::span<const G1>(inf), std::span<const Fr>(zero)).IsInfinity());
}

TEST(MsmTest, G2MatchesNaive) {
  Rng rng(10);
  for (std::size_t n : {3u, 9u, 20u}) {
    std::vector<G2> pts(n);
    std::vector<Fr> ks(n);
    for (std::size_t i = 0; i < n; ++i) {
      pts[i] = G2Mul(rng.NextNonZeroFr());
      ks[i] = rng.NextFr();
    }
    G2 naive = G2::Infinity();
    for (std::size_t i = 0; i < n; ++i) {
      naive = naive + pts[i].ScalarMul(ks[i]);
    }
    EXPECT_EQ(G2Msm(std::span<const G2>(pts), std::span<const Fr>(ks)), naive)
        << "n=" << n;
  }
}

TEST(MsmTest, MsmLinearity) {
  // MSM(k1, P; k2, P) == (k1 + k2) * P — exercises bucket collisions.
  Rng rng(11);
  G1 p = G1Mul(rng.NextNonZeroFr());
  Fr k1 = rng.NextFr(), k2 = rng.NextFr();
  std::vector<G1> pts(9, p);
  std::vector<Fr> ks(9, k1);
  ks[8] = k2;
  Fr total = k2;
  for (int i = 0; i < 8; ++i) total = total + k1;
  EXPECT_EQ(G1Msm(std::span<const G1>(pts), std::span<const Fr>(ks)),
            p.ScalarMul(total));
}

TEST(MultiPairingBatchedTest, MatchesPerPairReference) {
  Rng rng(12);
  for (std::size_t n : {1u, 2u, 5u, 9u}) {
    std::vector<std::pair<G1, G2>> pairs;
    GT reference = GT::One();
    for (std::size_t i = 0; i < n; ++i) {
      G1 p = G1Mul(rng.NextNonZeroFr());
      G2 q = G2Mul(rng.NextNonZeroFr());
      pairs.emplace_back(p, q);
      reference = reference * MillerLoop(p, q);
    }
    EXPECT_EQ(MultiPairing(pairs), FinalExponentiation(reference))
        << "n=" << n;
  }
}

TEST(MultiPairingBatchedTest, SkipsInfinityPairs) {
  Rng rng(13);
  G1 p = G1Mul(rng.NextNonZeroFr());
  G2 q = G2Mul(rng.NextNonZeroFr());
  std::vector<std::pair<G1, G2>> pairs = {
      {G1::Infinity(), q}, {p, q}, {p, G2::Infinity()}};
  EXPECT_EQ(MultiPairing(pairs), Pairing(p, q));
  std::vector<std::pair<G1, G2>> all_inf = {{G1::Infinity(), G2::Infinity()}};
  EXPECT_TRUE(MultiPairing(all_inf).IsOne());
  EXPECT_TRUE(MultiPairing({}).IsOne());
}

// Shared-table multi-set MSM (MsmShared): fold the SAME points under
// several scalar vectors off one table build. Must agree with independent
// per-set Msm calls, including degenerate terms and sets of very different
// bit widths (the batch verifier mixes 128-bit weights with full-width
// mu*rho scalars).
TEST(MsmTest, SharedMultiSetMatchesPerSetMsm) {
  Rng rng(15);
  for (std::size_t n : {1u, 2u, 5u, 40u}) {
    std::vector<G1> pts(n);
    std::vector<Fr> narrow(n), wide(n);
    for (std::size_t i = 0; i < n; ++i) {
      pts[i] = G1Mul(rng.NextNonZeroFr());
      narrow[i] = Fr::FromU64(rng.NextU64());  // short scalars
      wide[i] = rng.NextFr();                  // full width
    }
    if (n >= 5) {
      pts[1] = G1::Infinity();
      narrow[2] = Fr::Zero();
      wide[3] = Fr::Zero();
    }
    std::vector<std::vector<Fr>> sets = {narrow, wide};
    std::vector<G1> folded = G1MsmShared(
        std::span<const G1>(pts),
        std::span<const std::vector<Fr>>(sets.data(), sets.size()));
    ASSERT_EQ(folded.size(), 2u);
    EXPECT_EQ(folded[0],
              G1Msm(std::span<const G1>(pts), std::span<const Fr>(narrow)))
        << "n=" << n;
    EXPECT_EQ(folded[1],
              G1Msm(std::span<const G1>(pts), std::span<const Fr>(wide)))
        << "n=" << n;
  }
  // G2 flavour, same contract.
  std::vector<G2> qs(7);
  std::vector<Fr> a(7), b(7);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    qs[i] = G2Mul(rng.NextNonZeroFr());
    a[i] = Fr::FromU64(rng.NextU64());
    b[i] = rng.NextFr();
  }
  qs[4] = G2::Infinity();
  std::vector<std::vector<Fr>> gsets = {a, b};
  std::vector<G2> gf = G2MsmShared(
      std::span<const G2>(qs),
      std::span<const std::vector<Fr>>(gsets.data(), gsets.size()));
  ASSERT_EQ(gf.size(), 2u);
  EXPECT_EQ(gf[0], G2Msm(std::span<const G2>(qs), std::span<const Fr>(a)));
  EXPECT_EQ(gf[1], G2Msm(std::span<const G2>(qs), std::span<const Fr>(b)));
}

TEST(MultiPairingBatchedTest, CancellationStillHolds) {
  Rng rng(14);
  Fr a = rng.NextNonZeroFr();
  std::vector<std::pair<G1, G2>> pairs = {
      {G1Mul(a), G2Generator()},
      {-G1Mul(a), G2Generator()},
  };
  EXPECT_TRUE(MultiPairing(pairs).IsOne());
}

}  // namespace
}  // namespace apqa::crypto

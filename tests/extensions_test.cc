// Tests for the paper's extension features: authenticated aggregation
// (§11 future work) and multi-way joins (§6.2).
#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/system.h"

namespace apqa::core {
namespace {

Record Rec(std::uint32_t key, const std::string& v, const char* pol) {
  return Record{Point{key}, v, Policy::Parse(pol)};
}

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Domain domain{1, 4};
    owner_ = std::make_unique<DataOwner>(RoleSet{"RoleA", "RoleB"}, domain,
                                         515);
    std::vector<Record> records = {
        Rec(1, "10.5", "RoleA"), Rec(3, "2", "RoleA"),
        Rec(5, "100", "RoleB"),  Rec(7, "7.5", "RoleA | RoleB"),
        Rec(9, "oops", "RoleA"),  // non-numeric: skipped by the measure
    };
    sp_ = std::make_unique<ServiceProvider>(owner_->keys(),
                                            owner_->BuildAds(records));
  }
  std::unique_ptr<DataOwner> owner_;
  std::unique_ptr<ServiceProvider> sp_;
};

TEST_F(AggregateTest, AggregatesAccessibleRecordsOnly) {
  RoleSet roles = {"RoleA"};
  Box range{Point{0}, Point{15}};
  Vo vo = sp_->RangeQuery(range, roles);
  std::string error;
  auto agg = VerifyAndAggregate(owner_->keys().mvk, owner_->keys().domain,
                                range, roles, owner_->keys().universe, vo,
                                NumericValueMeasure, &error);
  ASSERT_TRUE(agg.has_value()) << error;
  EXPECT_EQ(agg->count, 3u);  // 10.5, 2, 7.5 ("oops" skipped, 100 is RoleB)
  EXPECT_DOUBLE_EQ(agg->sum, 20.0);
  EXPECT_DOUBLE_EQ(*agg->min, 2.0);
  EXPECT_DOUBLE_EQ(*agg->max, 10.5);
  EXPECT_NEAR(*agg->Avg(), 20.0 / 3, 1e-9);
}

TEST_F(AggregateTest, FailsOnTamperedVo) {
  RoleSet roles = {"RoleA"};
  Box range{Point{0}, Point{15}};
  Vo vo = sp_->RangeQuery(range, roles);
  Vo bad = vo;
  bad.entries.pop_back();
  std::string error;
  EXPECT_FALSE(VerifyAndAggregate(owner_->keys().mvk, owner_->keys().domain,
                                  range, roles, owner_->keys().universe, bad,
                                  NumericValueMeasure, &error)
                   .has_value());
}

TEST_F(AggregateTest, EmptyRangeAggregatesToZero) {
  RoleSet roles = {"RoleB"};
  Box range{Point{10}, Point{15}};
  Vo vo = sp_->RangeQuery(range, roles);
  std::string error;
  auto agg = VerifyAndAggregate(owner_->keys().mvk, owner_->keys().domain,
                                range, roles, owner_->keys().universe, vo,
                                NumericValueMeasure, &error);
  ASSERT_TRUE(agg.has_value()) << error;
  EXPECT_EQ(agg->count, 0u);
  EXPECT_FALSE(agg->Avg().has_value());
}

class MultiJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Domain domain{1, 4};
    owner_ = std::make_unique<DataOwner>(RoleSet{"RoleA", "RoleB"}, domain,
                                         616);
    trees_.push_back(owner_->BuildAds({
        Rec(1, "r1", "RoleA"), Rec(5, "r5", "RoleA"), Rec(9, "r9", "RoleB"),
    }));
    trees_.push_back(owner_->BuildAds({
        Rec(1, "s1", "RoleA"), Rec(5, "s5", "RoleB"), Rec(9, "s9", "RoleA"),
    }));
    trees_.push_back(owner_->BuildAds({
        Rec(1, "t1", "RoleA"), Rec(9, "t9", "RoleA"), Rec(12, "t12", "RoleA"),
    }));
    for (const auto& t : trees_) tree_ptrs_.push_back(&t);
  }
  std::unique_ptr<DataOwner> owner_;
  std::vector<GridTree> trees_;
  std::vector<const GridTree*> tree_ptrs_;
  Rng rng_{99};
};

TEST_F(MultiJoinTest, ThreeWayJoin) {
  RoleSet roles = {"RoleA"};
  Box range{Point{0}, Point{15}};
  MultiJoinVo vo = BuildMultiJoinVo(tree_ptrs_, owner_->keys().mvk, range,
                                    roles, owner_->keys().universe, &rng_);
  std::vector<std::vector<Record>> results;
  std::string error;
  ASSERT_TRUE(VerifyMultiJoinVo(owner_->keys().mvk, owner_->keys().domain,
                                range, roles, owner_->keys().universe, 3, vo,
                                &results, &error))
      << error;
  // Key 1 joins in all three tables and is RoleA-accessible everywhere.
  // Key 5: t-table has no record. Key 9: s-table ok but r-table is RoleB.
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0][0].value, "r1");
  EXPECT_EQ(results[0][1].value, "s1");
  EXPECT_EQ(results[0][2].value, "t1");
}

TEST_F(MultiJoinTest, AllRolesSeeMore) {
  RoleSet roles = {"RoleA", "RoleB"};
  Box range{Point{0}, Point{15}};
  MultiJoinVo vo = BuildMultiJoinVo(tree_ptrs_, owner_->keys().mvk, range,
                                    roles, owner_->keys().universe, &rng_);
  std::vector<std::vector<Record>> results;
  std::string error;
  ASSERT_TRUE(VerifyMultiJoinVo(owner_->keys().mvk, owner_->keys().domain,
                                range, roles, owner_->keys().universe, 3, vo,
                                &results, &error))
      << error;
  // Keys 1 and 9 join across all three tables.
  ASSERT_EQ(results.size(), 2u);
}

TEST_F(MultiJoinTest, RejectsDroppedTuple) {
  RoleSet roles = {"RoleA", "RoleB"};
  Box range{Point{0}, Point{15}};
  MultiJoinVo vo = BuildMultiJoinVo(tree_ptrs_, owner_->keys().mvk, range,
                                    roles, owner_->keys().universe, &rng_);
  MultiJoinVo bad = vo;
  ASSERT_FALSE(bad.tuples.empty());
  bad.tuples.pop_back();
  EXPECT_FALSE(VerifyMultiJoinVo(owner_->keys().mvk, owner_->keys().domain,
                                 range, roles, owner_->keys().universe, 3, bad,
                                 nullptr, nullptr));
}

TEST_F(MultiJoinTest, RejectsWrongArity) {
  RoleSet roles = {"RoleA"};
  Box range{Point{0}, Point{15}};
  MultiJoinVo vo = BuildMultiJoinVo(tree_ptrs_, owner_->keys().mvk, range,
                                    roles, owner_->keys().universe, &rng_);
  EXPECT_FALSE(VerifyMultiJoinVo(owner_->keys().mvk, owner_->keys().domain,
                                 range, roles, owner_->keys().universe, 2, vo,
                                 nullptr, nullptr));
}

TEST_F(MultiJoinTest, TwoTableMultiJoinMatchesPairJoin) {
  RoleSet roles = {"RoleA"};
  Box range{Point{0}, Point{15}};
  std::vector<const GridTree*> two = {tree_ptrs_[0], tree_ptrs_[1]};
  MultiJoinVo mvo = BuildMultiJoinVo(two, owner_->keys().mvk, range, roles,
                                     owner_->keys().universe, &rng_);
  JoinVo jvo = BuildJoinVo(trees_[0], trees_[1], owner_->keys().mvk, range,
                           roles, owner_->keys().universe, &rng_);
  std::vector<std::vector<Record>> mresults;
  std::vector<std::pair<Record, Record>> jresults;
  ASSERT_TRUE(VerifyMultiJoinVo(owner_->keys().mvk, owner_->keys().domain,
                                range, roles, owner_->keys().universe, 2, mvo,
                                &mresults, nullptr));
  ASSERT_TRUE(VerifyJoinVo(owner_->keys().mvk, owner_->keys().domain, range,
                           roles, owner_->keys().universe, jvo, &jresults,
                           nullptr));
  EXPECT_EQ(mresults.size(), jresults.size());
}

}  // namespace
}  // namespace apqa::core

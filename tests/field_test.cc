// Unit and property tests for the prime fields and the Fp2/Fp6/Fp12 tower.
#include <gtest/gtest.h>

#include "crypto/bigint.h"
#include "crypto/fp12.h"
#include "crypto/rng.h"

namespace apqa::crypto {
namespace {

Fp RandomFp(Rng* rng) {
  Limbs<6> l;
  rng->Fill(l.data(), sizeof(l));
  l[5] &= (u64{1} << 57) - 1;  // keep below 2^377 < p
  return Fp::FromCanonicalReduce(l);
}

Fp2 RandomFp2(Rng* rng) { return {RandomFp(rng), RandomFp(rng)}; }

Fp6 RandomFp6(Rng* rng) {
  return {RandomFp2(rng), RandomFp2(rng), RandomFp2(rng)};
}

Fp12 RandomFp12(Rng* rng) { return {RandomFp6(rng), RandomFp6(rng)}; }

TEST(BigIntTest, BasicArithmetic) {
  BigInt a(0xffffffffffffffffULL);
  BigInt b(2);
  BigInt c = a * b;
  EXPECT_EQ(c.ToHex(), "1fffffffffffffffe");
  EXPECT_EQ((c - a).ToHex(), "ffffffffffffffff");
  EXPECT_EQ((c / b).ToHex(), "ffffffffffffffff");
  EXPECT_TRUE((c % b).IsZero());
  EXPECT_EQ((c + BigInt(1)).ToHex(), "1ffffffffffffffff");
}

TEST(BigIntTest, DivModRandom) {
  Rng rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    u64 al[4], bl[2];
    rng.Fill(al, sizeof(al));
    rng.Fill(bl, sizeof(bl));
    BigInt a = BigInt::FromLimbs(al, 4);
    BigInt b = BigInt::FromLimbs(bl, 2);
    if (b.IsZero()) continue;
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_TRUE(r.Compare(b) < 0);
    EXPECT_TRUE(q * b + r == a);
  }
}

TEST(FieldConstantsTest, DerivedFromCurveParameter) {
  // BLS12 family: r = u^4 - u^2 + 1 and p = (u-1)^2 * r / 3 + u with
  // u = -0xd201000000010000. Guards against typos in the hardcoded limbs.
  BigInt u(kBlsParamAbs);
  BigInt u2 = u * u;
  BigInt r = u2 * u2 - u2 + BigInt(1);
  BigInt p = (u + BigInt(1)) * (u + BigInt(1)) * r / BigInt(3) - u;
  EXPECT_TRUE(r == BigInt::FromLimbs(FrTag::kModulus.data(), 4));
  EXPECT_TRUE(p == BigInt::FromLimbs(FpTag::kModulus.data(), 6));
}

TEST(FpTest, AdditiveGroup) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    Fp a = RandomFp(&rng), b = RandomFp(&rng), c = RandomFp(&rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a - a, Fp::Zero());
    EXPECT_EQ(a + Fp::Zero(), a);
    EXPECT_EQ(a + (-a), Fp::Zero());
  }
}

TEST(FpTest, MultiplicativeGroup) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    Fp a = RandomFp(&rng), b = RandomFp(&rng), c = RandomFp(&rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * Fp::One(), a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.Square(), a * a);
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), Fp::One());
    }
  }
}

TEST(FpTest, FermatLittleTheorem) {
  // a^(p-1) == 1 for a != 0.
  Rng rng(3);
  Fp a = RandomFp(&rng);
  Limbs<6> pm1 = FpTag::kModulus;
  pm1[0] -= 1;  // p is odd, no borrow
  EXPECT_EQ(a.Pow(std::span<const u64>(pm1.data(), 6)), Fp::One());
}

TEST(FpTest, CanonicalRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    Fp a = RandomFp(&rng);
    EXPECT_EQ(Fp::FromCanonical(a.ToCanonical()), a);
  }
  EXPECT_EQ(Fp::FromU64(7) + Fp::FromU64(8), Fp::FromU64(15));
  EXPECT_EQ(Fp::FromU64(6) * Fp::FromU64(7), Fp::FromU64(42));
}

TEST(FrTest, FieldLaws) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Fr a = rng.NextFr(), b = rng.NextFr();
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a + b, b + a);
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), Fr::One());
    }
    EXPECT_EQ(a - b, -(b - a));
  }
}

TEST(Fp2Test, FieldLaws) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    Fp2 a = RandomFp2(&rng), b = RandomFp2(&rng), c = RandomFp2(&rng);
    EXPECT_EQ(a * (b * c), (a * b) * c);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.Square(), a * a);
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), Fp2::One());
    }
  }
}

TEST(Fp2Test, IsQuadraticExtension) {
  // i^2 == -1.
  Fp2 i{Fp::Zero(), Fp::One()};
  Fp2 minus_one{-Fp::One(), Fp::Zero()};
  EXPECT_EQ(i * i, minus_one);
  // Conjugation is the p-power Frobenius: (a+bi)^p == a-bi.
  Rng rng(7);
  Fp2 a = RandomFp2(&rng);
  EXPECT_EQ(a.Pow(std::span<const u64>(FpTag::kModulus.data(), 6)),
            a.Conjugate());
}

TEST(Fp6Test, FieldLaws) {
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    Fp6 a = RandomFp6(&rng), b = RandomFp6(&rng), c = RandomFp6(&rng);
    EXPECT_EQ(a * (b * c), (a * b) * c);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), Fp6::One());
    }
  }
}

TEST(Fp6Test, VCubesToXi) {
  Fp6 v{Fp2::Zero(), Fp2::One(), Fp2::Zero()};
  Fp6 xi{Fp2::Xi(), Fp2::Zero(), Fp2::Zero()};
  EXPECT_EQ(v * v * v, xi);
  Rng rng(9);
  Fp6 a = RandomFp6(&rng);
  EXPECT_EQ(a.MulByV(), a * v);
}

TEST(Fp12Test, FieldLaws) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    Fp12 a = RandomFp12(&rng), b = RandomFp12(&rng), c = RandomFp12(&rng);
    EXPECT_EQ(a * (b * c), (a * b) * c);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.Square(), a * a);
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), Fp12::One());
    }
  }
}

TEST(Fp12Test, FrobeniusIsPPower) {
  Rng rng(11);
  Fp12 a = RandomFp12(&rng);
  EXPECT_EQ(a.Frobenius(),
            a.Pow(std::span<const u64>(FpTag::kModulus.data(), 6)));
}

TEST(Fp12Test, ConjugateIsP6Power) {
  Rng rng(12);
  Fp12 a = RandomFp12(&rng);
  Fp12 f = a;
  for (int i = 0; i < 6; ++i) f = f.Frobenius();
  EXPECT_EQ(f, a.Conjugate());
}

TEST(Fp12Test, PowMatchesRepeatedMul) {
  Rng rng(13);
  Fp12 a = RandomFp12(&rng);
  u64 e[1] = {23};
  Fp12 expect = Fp12::One();
  for (int i = 0; i < 23; ++i) expect = expect * a;
  EXPECT_EQ(a.Pow(std::span<const u64>(e, 1)), expect);
}

}  // namespace
}  // namespace apqa::crypto

// Tests for the §8.2 thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/thread_pool.h"

namespace apqa::core {
namespace {

TEST(ThreadPoolTest, SynchronousFallback) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 0);
  int x = 0;
  pool.Submit([&] { x = 42; });
  pool.WaitAll();
  EXPECT_EQ(x, 42);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.WaitAll();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitAllIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.Submit([&] { count.fetch_add(1); });
    pool.WaitAll();
    EXPECT_EQ(count.load(), 10 * (round + 1));
  }
}

TEST(ThreadPoolTest, DestructionWithPendingWaiters) {
  // Destroying a pool after WaitAll must join cleanly.
  auto pool = std::make_unique<ThreadPool>(3);
  std::atomic<int> count{0};
  pool->ParallelFor(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
  pool.reset();
}

}  // namespace
}  // namespace apqa::core

// Tests for the §8.2 thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>

#include "core/thread_pool.h"

namespace apqa::core {
namespace {

TEST(ThreadPoolTest, SynchronousFallback) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 0);
  int x = 0;
  pool.Submit([&] { x = 42; });
  pool.WaitAll();
  EXPECT_EQ(x, 42);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.WaitAll();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitAllIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.Submit([&] { count.fetch_add(1); });
    pool.WaitAll();
    EXPECT_EQ(count.load(), 10 * (round + 1));
  }
}

TEST(ThreadPoolTest, DestructionWithPendingWaiters) {
  // Destroying a pool after WaitAll must join cleanly.
  auto pool = std::make_unique<ThreadPool>(3);
  std::atomic<int> count{0};
  pool->ParallelFor(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
  pool.reset();
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  // Tasks already queued when the destructor runs are executed, not lost.
  std::atomic<int> count{0};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  {
    ThreadPool pool(2);
    // Occupy every worker so the remaining submits stay queued.
    for (int i = 0; i < 2; ++i) {
      pool.Submit([gate] { gate.wait(); });
    }
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
    release.set_value();
  }  // ~ThreadPool → Stop(): drain then join
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, TrySubmitShedsWhenQueueIsFull) {
  ThreadPool pool(2, /*max_queue=*/3);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> count{0};
  // Fill the workers, then the queue.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.TrySubmit([gate] { gate.wait(); }));
  }
  int accepted = 0, shed = 0;
  for (int i = 0; i < 10; ++i) {
    if (pool.TrySubmit([&] { count.fetch_add(1); })) {
      ++accepted;
    } else {
      ++shed;
    }
  }
  EXPECT_GT(shed, 0) << "bounded queue never rejected";
  EXPECT_LE(pool.queued(), 3u);
  release.set_value();
  pool.WaitAll();
  EXPECT_EQ(count.load(), accepted);
  // With the workers idle again, TrySubmit succeeds once more.
  EXPECT_TRUE(pool.TrySubmit([&] { count.fetch_add(1); }));
  pool.WaitAll();
  EXPECT_EQ(count.load(), accepted + 1);
}

TEST(ThreadPoolTest, TrySubmitSynchronousFallbackRunsInline) {
  ThreadPool pool(1, /*max_queue=*/1);  // 0 workers → inline execution
  int x = 0;
  EXPECT_TRUE(pool.TrySubmit([&] { x = 7; }));
  EXPECT_EQ(x, 7);
}

TEST(ThreadPoolTest, SubmitAfterStopHasDefinedBehavior) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] { count.fetch_add(1); });
  pool.WaitAll();
  pool.Stop();
  EXPECT_THROW(pool.Submit([&] { count.fetch_add(1); }), std::runtime_error);
  EXPECT_FALSE(pool.TrySubmit([&] { count.fetch_add(1); }));
  EXPECT_EQ(count.load(), 1);
  pool.Stop();  // idempotent
}

TEST(ThreadPoolTest, SubmitAfterStopOnSynchronousPoolAlsoThrows) {
  ThreadPool pool(1);  // 0 workers
  pool.Stop();
  EXPECT_THROW(pool.Submit([] {}), std::runtime_error);
  EXPECT_FALSE(pool.TrySubmit([] {}));
}

}  // namespace
}  // namespace apqa::core

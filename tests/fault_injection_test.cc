// Fault-injection harness for the untrusted SP → user path.
//
// For each of the six query-type VOs (equality, range, join, kd, dup,
// continuous) the harness serializes a known-good VO, then replays hundreds
// of seeded byte-level mutations (common/mutate.h) through the full
// deserialize + verify pipeline, asserting two invariants:
//
//   1. No crash: every mutation either verifies or is rejected; nothing
//      throws, over-allocates, or trips a sanitizer (scripts/check.sh runs
//      this suite under ASan).
//   2. No false accept: a mutation that still verifies must yield exactly
//      the baseline accessible result set. Anything else is a forgery.
//
// A structural tamper matrix then checks that *specific* corruptions map
// to *specific* VerifyResult codes, so diagnostics stay precise.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/mutate.h"
#include "core/continuous.h"
#include "core/duplicates.h"
#include "core/equality.h"
#include "core/join_query.h"
#include "core/kd_tree.h"
#include "core/range_query.h"
#include "crypto/serde.h"
#include "test_hostile_points.h"

namespace apqa::core {
namespace {

constexpr int kMutationsPerCase = 200;  // x6 cases >= 1000 total

struct FaultEnv {
  abs::MasterKey msk;
  VerifyKey mvk;
  RoleSet universe{"RoleA", "RoleB", "RoleC"};
  RoleSet user{"RoleA"};
  Domain grid_domain{1, 3};  // keys 0..7
  Domain dup_domain{1, 2};   // keys 0..3
  Box grid_range{Point{0}, Point{7}};
  Box dup_range{Point{0}, Point{3}};
  std::optional<GridTree> tree_r, tree_s;
  std::optional<KdTree> kd;
  std::optional<DupGridTree> dup;
  std::optional<ContinuousAds> cont;
  // Baseline VOs kept in object form for the structural tamper matrix.
  Vo eq_vo, range_vo;
  JoinVo join_vo;
  KdVo kd_vo;
  DupVo dup_vo;
  ContinuousVo cont_vo;
};

FaultEnv* GetEnv() {
  static FaultEnv* s = [] {
    auto* st = new FaultEnv;
    Rng rng(20260807);
    abs::Abs::Setup(&rng, &st->msk, &st->mvk);
    RoleSet all = st->universe;
    all.insert(kPseudoRole);
    abs::SigningKey sk = abs::Abs::KeyGen(st->msk, all, &rng);

    std::vector<Record> recs_r = {
        Record{Point{1}, "v1", Policy::Parse("RoleA")},
        Record{Point{3}, "v3", Policy::Parse("RoleB")},
        Record{Point{5}, "v5", Policy::Parse("RoleA | RoleC")},
    };
    std::vector<Record> recs_s = {
        Record{Point{1}, "s1", Policy::Parse("RoleA")},
        Record{Point{5}, "s5", Policy::Parse("RoleB")},
        Record{Point{6}, "s6", Policy::Parse("RoleA")},
    };
    st->tree_r = GridTree::Build(st->mvk, sk, st->grid_domain, recs_r, &rng);
    st->tree_s = GridTree::Build(st->mvk, sk, st->grid_domain, recs_s, &rng);
    st->kd = KdTree::Build(st->mvk, sk, st->grid_domain, recs_r, &rng);
    st->dup = DupGridTree::Build(
        st->mvk, sk, st->dup_domain,
        {
            Record{Point{1}, "a", Policy::Parse("RoleA")},
            Record{Point{1}, "b", Policy::Parse("RoleB")},
            Record{Point{2}, "c", Policy::Parse("RoleA")},
        },
        &rng);
    st->cont = ContinuousAds::Build(
        st->mvk, sk,
        {
            ContinuousRecord{100, "c100", Policy::Parse("RoleA")},
            ContinuousRecord{200, "c200", Policy::Parse("RoleB")},
            ContinuousRecord{300, "c300", Policy::Parse("RoleA")},
        },
        &rng);

    st->eq_vo = BuildEqualityVo(*st->tree_r, st->mvk, Point{1}, st->user,
                                st->universe, &rng);
    st->range_vo = BuildRangeVo(*st->tree_r, st->mvk, st->grid_range, st->user,
                                st->universe, &rng);
    st->join_vo = BuildJoinVo(*st->tree_r, *st->tree_s, st->mvk,
                              st->grid_range, st->user, st->universe, &rng);
    st->kd_vo = BuildKdRangeVo(*st->kd, st->mvk, st->grid_range, st->user,
                               st->universe, &rng);
    st->dup_vo = BuildDupRangeVo(*st->dup, st->mvk, st->dup_range, st->user,
                                 st->universe, &rng);
    st->cont_vo = BuildContinuousRangeVo(*st->cont, st->mvk, 50, 350, st->user,
                                         st->universe, &rng);
    return st;
  }();
  return s;
}

std::string CanonRecords(const std::vector<Record>& rs) {
  std::vector<std::string> items;
  for (const Record& r : rs) {
    std::string s;
    for (auto c : r.key) s += std::to_string(c) + ",";
    items.push_back(s + ":" + r.value);
  }
  std::sort(items.begin(), items.end());
  std::string out;
  for (const auto& i : items) out += i + ";";
  return out;
}

struct QueryCase {
  const char* name;
  std::vector<std::uint8_t> bytes;
  // Deserializes + verifies `buf`; on acceptance fills the canonical
  // accessible-result string and returns true.
  std::function<bool(const std::vector<std::uint8_t>&, std::string*)> run;
};

template <typename VoT>
std::vector<std::uint8_t> Ser(const VoT& vo) {
  common::ByteWriter w;
  vo.Serialize(&w);
  return w.data();
}

// Deserializes a VoT from buf; nullopt if the reader flags an error or
// trailing bytes remain.
template <typename VoT>
std::optional<VoT> Deser(const std::vector<std::uint8_t>& buf) {
  common::ByteReader r(buf.data(), buf.size());
  VoT vo = VoT::Deserialize(&r);
  if (!r.ok() || !r.AtEnd()) return std::nullopt;
  return vo;
}

std::vector<QueryCase>& Cases() {
  static std::vector<QueryCase>* cases = [] {
    FaultEnv* s = GetEnv();
    auto* cs = new std::vector<QueryCase>;

    cs->push_back({"equality", Ser(s->eq_vo),
                   [s](const std::vector<std::uint8_t>& buf, std::string* out) {
                     auto vo = Deser<Vo>(buf);
                     if (!vo) return false;
                     Record rec;
                     bool acc = false;
                     if (!VerifyEqualityVoEx(s->mvk, s->grid_domain, Point{1},
                                             s->user, s->universe, *vo, &rec,
                                             &acc)
                              .ok()) {
                       return false;
                     }
                     *out = acc ? "acc:" + rec.value : "inacc";
                     return true;
                   }});

    cs->push_back({"range", Ser(s->range_vo),
                   [s](const std::vector<std::uint8_t>& buf, std::string* out) {
                     auto vo = Deser<Vo>(buf);
                     if (!vo) return false;
                     std::vector<Record> rs;
                     if (!VerifyRangeVoEx(s->mvk, s->grid_domain,
                                          s->grid_range, s->user, s->universe,
                                          *vo, &rs)
                              .ok()) {
                       return false;
                     }
                     *out = CanonRecords(rs);
                     return true;
                   }});

    cs->push_back({"join", Ser(s->join_vo),
                   [s](const std::vector<std::uint8_t>& buf, std::string* out) {
                     auto vo = Deser<JoinVo>(buf);
                     if (!vo) return false;
                     std::vector<std::pair<Record, Record>> ps;
                     if (!VerifyJoinVoEx(s->mvk, s->grid_domain, s->grid_range,
                                         s->user, s->universe, *vo, &ps)
                              .ok()) {
                       return false;
                     }
                     std::vector<std::string> items;
                     for (const auto& [r, t] : ps) {
                       items.push_back(r.value + "|" + t.value);
                     }
                     std::sort(items.begin(), items.end());
                     out->clear();
                     for (const auto& i : items) *out += i + ";";
                     return true;
                   }});

    cs->push_back({"kd", Ser(s->kd_vo),
                   [s](const std::vector<std::uint8_t>& buf, std::string* out) {
                     auto vo = Deser<KdVo>(buf);
                     if (!vo) return false;
                     std::vector<Record> rs;
                     if (!VerifyKdRangeVoEx(s->mvk, s->grid_domain,
                                            s->grid_range, s->user,
                                            s->universe, *vo, &rs)
                              .ok()) {
                       return false;
                     }
                     *out = CanonRecords(rs);
                     return true;
                   }});

    cs->push_back({"dup", Ser(s->dup_vo),
                   [s](const std::vector<std::uint8_t>& buf, std::string* out) {
                     auto vo = Deser<DupVo>(buf);
                     if (!vo) return false;
                     std::vector<Record> rs;
                     if (!VerifyDupRangeVoEx(s->mvk, s->dup_domain,
                                             s->dup_range, s->user,
                                             s->universe, *vo, &rs)
                              .ok()) {
                       return false;
                     }
                     *out = CanonRecords(rs);
                     return true;
                   }});

    cs->push_back({"continuous", Ser(s->cont_vo),
                   [s](const std::vector<std::uint8_t>& buf, std::string* out) {
                     auto vo = Deser<ContinuousVo>(buf);
                     if (!vo) return false;
                     std::vector<ContinuousRecord> rs;
                     if (!VerifyContinuousRangeVoEx(s->mvk, 50, 350, s->user,
                                                    s->universe, *vo, &rs)
                              .ok()) {
                       return false;
                     }
                     std::vector<std::string> items;
                     for (const auto& r : rs) {
                       items.push_back(std::to_string(r.key) + ":" + r.value);
                     }
                     std::sort(items.begin(), items.end());
                     out->clear();
                     for (const auto& i : items) *out += i + ";";
                     return true;
                   }});

    return cs;
  }();
  return *cases;
}

// --- The corpus ------------------------------------------------------------

TEST(FaultInjectionTest, BaselinesVerify) {
  for (auto& qc : Cases()) {
    std::string canon;
    EXPECT_TRUE(qc.run(qc.bytes, &canon)) << qc.name;
    EXPECT_FALSE(canon.empty()) << qc.name;
  }
}

TEST(FaultInjectionTest, SeededMutationCorpusNeverForges) {
  auto& cases = Cases();
  int total = 0;
  int accepted = 0;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    QueryCase& qc = cases[ci];
    std::string baseline;
    ASSERT_TRUE(qc.run(qc.bytes, &baseline)) << qc.name;
    // Donor buffer from a *different* query type: splice mutations model a
    // hostile SP answering with bytes from the wrong VO kind.
    const auto& donor = cases[(ci + 1) % cases.size()].bytes;
    common::MutRng rng(0xA59CA11Full ^ ci);
    for (int i = 0; i < kMutationsPerCase; ++i) {
      std::vector<std::uint8_t> buf = qc.bytes;
      common::MutationKind kind = common::Mutate(&buf, &rng, &donor);
      std::string canon;
      if (qc.run(buf, &canon)) {
        ++accepted;
        EXPECT_EQ(canon, baseline)
            << qc.name << " mutation " << i << " ("
            << common::MutationKindName(kind)
            << ") was accepted with a different result set";
      }
      ++total;
    }
  }
  EXPECT_GE(total, 1000);
  // Most mutations must actually be rejected; if nearly everything is
  // accepted the mutator is broken, not the verifier strong.
  EXPECT_LT(accepted, total / 2);
}

TEST(FaultInjectionTest, TruncationAtEveryBoundaryRejected) {
  for (auto& qc : Cases()) {
    for (std::size_t n = 0; n < qc.bytes.size(); ++n) {
      std::vector<std::uint8_t> buf(qc.bytes.begin(), qc.bytes.begin() + n);
      std::string canon;
      EXPECT_FALSE(qc.run(buf, &canon)) << qc.name << " prefix " << n;
    }
  }
}

// --- Structural tamper matrix: specific corruption -> specific code --------

TEST(TamperMatrixTest, EqualityWrongKeyIsKeyMismatch) {
  FaultEnv* s = GetEnv();
  VerifyResult r = VerifyEqualityVoEx(s->mvk, s->grid_domain, Point{2},
                                      s->user, s->universe, s->eq_vo, nullptr,
                                      nullptr);
  EXPECT_EQ(r.code, VerifyCode::kKeyMismatch) << r.ToString();
}

TEST(TamperMatrixTest, EqualityDuplicatedEntryIsWrongEntryCount) {
  FaultEnv* s = GetEnv();
  Vo vo = s->eq_vo;
  vo.entries.push_back(vo.entries[0]);
  VerifyResult r = VerifyEqualityVoEx(s->mvk, s->grid_domain, Point{1},
                                      s->user, s->universe, vo, nullptr,
                                      nullptr);
  EXPECT_EQ(r.code, VerifyCode::kWrongEntryCount) << r.ToString();
}

TEST(TamperMatrixTest, RangeDroppedEntryIsCoverageGap) {
  FaultEnv* s = GetEnv();
  Vo vo = s->range_vo;
  ASSERT_GT(vo.entries.size(), 1u);
  vo.entries.pop_back();
  VerifyResult r = VerifyRangeVoEx(s->mvk, s->grid_domain, s->grid_range,
                                   s->user, s->universe, vo, nullptr);
  EXPECT_EQ(r.code, VerifyCode::kCoverageGap) << r.ToString();
}

TEST(TamperMatrixTest, RangeDuplicatedEntryIsOverlap) {
  FaultEnv* s = GetEnv();
  Vo vo = s->range_vo;
  vo.entries.push_back(vo.entries[0]);
  VerifyResult r = VerifyRangeVoEx(s->mvk, s->grid_domain, s->grid_range,
                                   s->user, s->universe, vo, nullptr);
  EXPECT_EQ(r.code, VerifyCode::kOverlap) << r.ToString();
}

TEST(TamperMatrixTest, RangeTamperedValueIsBadSignature) {
  FaultEnv* s = GetEnv();
  Vo vo = s->range_vo;
  bool tampered = false;
  for (auto& e : vo.entries) {
    if (auto* res = std::get_if<ResultEntry>(&e)) {
      res->value += "x";
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  VerifyResult r = VerifyRangeVoEx(s->mvk, s->grid_domain, s->grid_range,
                                   s->user, s->universe, vo, nullptr);
  EXPECT_EQ(r.code, VerifyCode::kBadSignature) << r.ToString();
  EXPECT_GE(r.entry_index, 0);
}

TEST(TamperMatrixTest, RangeInvertedQueryIsBadQuery) {
  FaultEnv* s = GetEnv();
  Box inverted{Point{7}, Point{0}};
  VerifyResult r = VerifyRangeVoEx(s->mvk, s->grid_domain, inverted, s->user,
                                   s->universe, s->range_vo, nullptr);
  EXPECT_EQ(r.code, VerifyCode::kBadQuery) << r.ToString();
}

TEST(TamperMatrixTest, JoinTamperedPairKeyIsKeyMismatch) {
  FaultEnv* s = GetEnv();
  JoinVo vo = s->join_vo;
  ASSERT_FALSE(vo.pairs.empty());
  vo.pairs[0].s.key = Point{static_cast<std::uint32_t>(
      vo.pairs[0].s.key[0] == 0 ? 1 : vo.pairs[0].s.key[0] - 1)};
  VerifyResult r = VerifyJoinVoEx(s->mvk, s->grid_domain, s->grid_range,
                                  s->user, s->universe, vo, nullptr);
  EXPECT_EQ(r.code, VerifyCode::kKeyMismatch) << r.ToString();
}

TEST(TamperMatrixTest, JoinDroppedPairIsCoverageGap) {
  FaultEnv* s = GetEnv();
  JoinVo vo = s->join_vo;
  ASSERT_FALSE(vo.pairs.empty());
  vo.pairs.clear();
  VerifyResult r = VerifyJoinVoEx(s->mvk, s->grid_domain, s->grid_range,
                                  s->user, s->universe, vo, nullptr);
  EXPECT_EQ(r.code, VerifyCode::kCoverageGap) << r.ToString();
}

TEST(TamperMatrixTest, KdDroppedEntryIsCoverageGap) {
  FaultEnv* s = GetEnv();
  KdVo vo = s->kd_vo;
  ASSERT_FALSE(vo.boxes.empty() && vo.leaves.empty());
  if (!vo.boxes.empty()) {
    vo.boxes.pop_back();
  } else {
    vo.leaves.pop_back();
  }
  VerifyResult r = VerifyKdRangeVoEx(s->mvk, s->grid_domain, s->grid_range,
                                     s->user, s->universe, vo, nullptr);
  EXPECT_EQ(r.code, VerifyCode::kCoverageGap) << r.ToString();
}

TEST(TamperMatrixTest, KdTamperedValueIsBadSignature) {
  FaultEnv* s = GetEnv();
  KdVo vo = s->kd_vo;
  ASSERT_FALSE(vo.results.empty());
  vo.results[0].value += "x";
  VerifyResult r = VerifyKdRangeVoEx(s->mvk, s->grid_domain, s->grid_range,
                                     s->user, s->universe, vo, nullptr);
  EXPECT_EQ(r.code, VerifyCode::kBadSignature) << r.ToString();
}

TEST(TamperMatrixTest, DupDroppedGroupMemberIsDuplicateBookkeeping) {
  FaultEnv* s = GetEnv();
  DupVo vo = s->dup_vo;
  // Key 1 has a two-record group; user {RoleA} sees "a" as a result and "b"
  // as inaccessible. Dropping the inaccessible half leaves the group
  // incomplete while the accessible half still covers the key's cell, so
  // this is bookkeeping-specific, not a coverage gap.
  auto it = std::find_if(vo.inaccessible.begin(), vo.inaccessible.end(),
                         [](const DupVo::DupInaccessibleEntry& e) {
                           return e.dup_num >= 2;
                         });
  ASSERT_NE(it, vo.inaccessible.end());
  vo.inaccessible.erase(it);
  VerifyResult r = VerifyDupRangeVoEx(s->mvk, s->dup_domain, s->dup_range,
                                      s->user, s->universe, vo, nullptr);
  EXPECT_EQ(r.code, VerifyCode::kDuplicateBookkeeping) << r.ToString();
}

TEST(TamperMatrixTest, ContinuousInvertedQueryIsBadQuery) {
  FaultEnv* s = GetEnv();
  std::vector<ContinuousRecord> rs;
  VerifyResult r = VerifyContinuousRangeVoEx(s->mvk, 350, 50, s->user,
                                             s->universe, s->cont_vo, &rs);
  EXPECT_EQ(r.code, VerifyCode::kBadQuery) << r.ToString();
}

TEST(TamperMatrixTest, ContinuousDroppedEntryIsGapOrMalformed) {
  FaultEnv* s = GetEnv();
  ContinuousVo vo = s->cont_vo;
  ASSERT_FALSE(vo.gaps.empty());
  vo.gaps.pop_back();
  std::vector<ContinuousRecord> rs;
  VerifyResult r = VerifyContinuousRangeVoEx(s->mvk, 50, 350, s->user,
                                             s->universe, vo, &rs);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.code == VerifyCode::kCoverageGap ||
              r.code == VerifyCode::kMalformedVo)
      << r.ToString();
}

TEST(TamperMatrixTest, ContinuousTamperedValueIsBadSignature) {
  FaultEnv* s = GetEnv();
  ContinuousVo vo = s->cont_vo;
  ASSERT_FALSE(vo.results.empty());
  vo.results[0].value += "x";
  std::vector<ContinuousRecord> rs;
  VerifyResult r = VerifyContinuousRangeVoEx(s->mvk, 50, 350, s->user,
                                             s->universe, vo, &rs);
  EXPECT_EQ(r.code, VerifyCode::kBadSignature) << r.ToString();
}

// --- Byte-level corruptions map through VerifyResult::FromReader -----------

TEST(TamperMatrixTest, UnknownEntryTagGetsDistinctCode) {
  FaultEnv* s = GetEnv();
  std::vector<std::uint8_t> buf = Ser(s->range_vo);
  buf[4] = 0xee;  // first entry's tag byte follows the u32 entry count
  common::ByteReader r(buf.data(), buf.size());
  (void)Vo::Deserialize(&r);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), common::WireError::kUnknownTag);
  VerifyResult vr = VerifyResult::FromReader(r);
  EXPECT_EQ(vr.code, VerifyCode::kUnknownEntryTag);
}

TEST(TamperMatrixTest, NonSubgroupG2InSignatureGetsDistinctCode) {
  abs::Signature sig;  // infinity y/w, empty s — structurally valid
  sig.p.push_back(crypto::hostile::NonSubgroupG2());
  common::ByteWriter w;
  sig.Serialize(&w);
  common::ByteReader r(w.data());
  (void)abs::Signature::Deserialize(&r);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), common::WireError::kPointNotInSubgroup);
  VerifyResult vr = VerifyResult::FromReader(r);
  EXPECT_EQ(vr.code, VerifyCode::kPointNotInSubgroup);
  // The acceptance bar: subgroup violations and tag confusion are
  // distinguishable failure modes, not a shared "bad VO" bucket.
  EXPECT_NE(VerifyCode::kPointNotInSubgroup, VerifyCode::kUnknownEntryTag);
}

TEST(TamperMatrixTest, GarbagePolicyGetsBadPolicyEncoding) {
  // Hand-crafted single-entry VO whose ResultEntry carries an unparseable
  // policy string.
  common::ByteWriter w;
  w.PutU32(1);  // entry count
  w.PutU8(0);   // ResultEntry tag
  WritePoint(&w, Point{1});
  w.PutString("v");
  w.PutString("((((");  // does not parse
  abs::Signature{}.Serialize(&w);
  common::ByteReader r(w.data());
  (void)Vo::Deserialize(&r);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), common::WireError::kBadPolicy);
  VerifyResult vr = VerifyResult::FromReader(r);
  EXPECT_EQ(vr.code, VerifyCode::kBadPolicyEncoding);
}

TEST(TamperMatrixTest, LengthInflationRejectedWithoutAllocating) {
  FaultEnv* s = GetEnv();
  std::vector<std::uint8_t> buf = Ser(s->range_vo);
  // Claim ~16M entries in a few-KB buffer; CheckCount must refuse before
  // any allocation happens.
  buf[0] = 0xff;
  buf[1] = 0xff;
  buf[2] = 0xff;
  buf[3] = 0x00;
  common::ByteReader r(buf.data(), buf.size());
  Vo vo = Vo::Deserialize(&r);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), common::WireError::kLengthOverflow);
  EXPECT_TRUE(vo.entries.empty());
}

}  // namespace
}  // namespace apqa::core

// Tests for the multi-table database facade (schemas, discretization,
// export/import, attribute-space queries).
#include <gtest/gtest.h>

#include "db/database.h"

namespace apqa::db {
namespace {

TEST(TableSchemaTest, DiscretizeMapsAndClamps) {
  TableSchema schema("t", {{"price", 0.0, 100.0}, {"qty", 0.0, 8.0}}, 3);
  core::Domain d = schema.domain();
  EXPECT_EQ(d.dims, 2);
  EXPECT_EQ(d.SideLength(), 8u);
  EXPECT_EQ(schema.Discretize({0.0, 0.0}), (core::Point{0, 0}));
  EXPECT_EQ(schema.Discretize({99.99, 7.99}), (core::Point{7, 7}));
  EXPECT_EQ(schema.Discretize({50.0, 4.0}), (core::Point{4, 4}));
  // Clamped outside the declared range.
  EXPECT_EQ(schema.Discretize({-5.0, 100.0}), (core::Point{0, 7}));
}

TEST(TableSchemaTest, DiscretizeRangeCoversRequest) {
  TableSchema schema("t", {{"x", 0.0, 16.0}}, 4);
  core::Box box = schema.DiscretizeRange({3.2}, {7.9});
  EXPECT_LE(box.lo[0], schema.Discretize({3.2})[0]);
  EXPECT_GE(box.hi[0], schema.Discretize({7.9})[0]);
}

TEST(TableSchemaTest, Validation) {
  EXPECT_THROW(TableSchema("t", {}, 3), std::invalid_argument);
  EXPECT_THROW(TableSchema("t", {{"a", 1.0, 1.0}}, 3), std::invalid_argument);
  EXPECT_THROW(TableSchema("t", {{"a", 0.0, 1.0}}, 0), std::invalid_argument);
  std::vector<AttributeSpec> four(4, AttributeSpec{"a", 0.0, 1.0});
  EXPECT_THROW(TableSchema("t", four, 3), std::invalid_argument);
}

TEST(TableSchemaTest, SerializationRoundTrip) {
  TableSchema schema("orders", {{"price", -3.5, 99.25}, {"qty", 0, 50}}, 5);
  common::ByteWriter w;
  schema.Serialize(&w);
  common::ByteReader r(w.data());
  auto back = TableSchema::Deserialize(&r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name(), "orders");
  EXPECT_EQ(back->attributes()[0].min, -3.5);
  EXPECT_EQ(back->domain().bits, 5);
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    owner_ = std::make_unique<OwnerDatabase>(
        RoleSet{"Analyst", "Admin", "Intern"}, 2024);
    TableSchema schema("trades", {{"price", 0.0, 100.0}}, 4);
    std::vector<Row> rows = {
        {{12.0}, "trade-a", "Analyst | Admin"},
        {{33.0}, "trade-b", "Admin"},
        {{57.0}, "trade-c", "Analyst"},
        {{90.0}, "trade-d", "Intern | Analyst"},
    };
    owner_->CreateTable(schema, rows);
    sp_ = std::make_unique<SpDatabase>(owner_->keys());
    ASSERT_TRUE(sp_->ImportTable(owner_->ExportTable("trades")));
    client_ = std::make_unique<ClientSession>(owner_->keys(),
                                              owner_->Enroll({"Analyst"}));
  }

  std::unique_ptr<OwnerDatabase> owner_;
  std::unique_ptr<SpDatabase> sp_;
  std::unique_ptr<ClientSession> client_;
};

TEST_F(DatabaseTest, AttributeSpaceRangeQuery) {
  core::Vo vo = sp_->Range("trades", {10.0}, {60.0}, client_->roles());
  std::vector<VerifiedRow> rows;
  std::string error;
  ASSERT_TRUE(client_->VerifyRange(sp_->GetSchema("trades"), {10.0}, {60.0},
                                   vo, &rows, &error))
      << error;
  std::set<std::string> values;
  for (const auto& r : rows) values.insert(r.value);
  // Analyst sees trade-a and trade-c; trade-b is Admin-only; trade-d is
  // outside [10, 60].
  EXPECT_EQ(values, (std::set<std::string>{"trade-a", "trade-c"}));
}

TEST_F(DatabaseTest, AttributeSpaceEqualityQuery) {
  core::Vo vo = sp_->Equality("trades", {33.0}, client_->roles());
  std::optional<VerifiedRow> row;
  std::string error;
  ASSERT_TRUE(client_->VerifyEquality(sp_->GetSchema("trades"), {33.0}, vo,
                                      &row, &error))
      << error;
  EXPECT_FALSE(row.has_value());  // Admin-only: hidden

  vo = sp_->Equality("trades", {57.0}, client_->roles());
  ASSERT_TRUE(client_->VerifyEquality(sp_->GetSchema("trades"), {57.0}, vo,
                                      &row, &error))
      << error;
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->value, "trade-c");
}

TEST_F(DatabaseTest, JoinAcrossTables) {
  TableSchema schema_s("limits", {{"price", 0.0, 100.0}}, 4);
  std::vector<Row> limits = {
      {{12.0}, "limit-low", "Analyst"},
      {{57.0}, "limit-mid", "Analyst | Admin"},
  };
  owner_->CreateTable(schema_s, limits);
  ASSERT_TRUE(sp_->ImportTable(owner_->ExportTable("limits")));

  core::JoinVo vo =
      sp_->Join("trades", "limits", {0.0}, {99.0}, client_->roles());
  std::vector<std::pair<VerifiedRow, VerifiedRow>> rows;
  std::string error;
  ASSERT_TRUE(client_->VerifyJoin(sp_->GetSchema("trades"), {0.0}, {99.0}, vo,
                                  &rows, &error))
      << error;
  std::set<std::string> pairs;
  for (const auto& [r, s] : rows) pairs.insert(r.value + "+" + s.value);
  EXPECT_EQ(pairs, (std::set<std::string>{"trade-a+limit-low",
                                          "trade-c+limit-mid"}));
}

TEST_F(DatabaseTest, ImportRejectsCorruptBundle) {
  auto bundle = owner_->ExportTable("trades");
  bundle.resize(bundle.size() / 3);
  SpDatabase sp2(owner_->keys());
  EXPECT_FALSE(sp2.ImportTable(bundle));
  EXPECT_FALSE(sp2.HasTable("trades"));
}

TEST_F(DatabaseTest, CreateTableValidation) {
  TableSchema schema("bad", {{"x", 0.0, 1.0}}, 3);
  // Unknown policy role.
  EXPECT_THROW(owner_->CreateTable(schema, {{{0.5}, "v", "Stranger"}}),
               std::invalid_argument);
  // Key collision after discretization.
  TableSchema schema2("bad2", {{"x", 0.0, 1.0}}, 2);
  std::vector<Row> colliding = {
      {{0.10}, "v1", "Analyst"},
      {{0.12}, "v2", "Analyst"},  // same cell at 2-bit resolution
  };
  EXPECT_THROW(owner_->CreateTable(schema2, colliding), std::invalid_argument);
  // Duplicate table name.
  TableSchema dup("trades", {{"x", 0.0, 1.0}}, 3);
  EXPECT_THROW(owner_->CreateTable(dup, {}), std::invalid_argument);
}

TEST_F(DatabaseTest, TamperedImportedAdsFailsVerification) {
  // The SP imports a bundle, then flips one byte of a signature in a
  // re-exported copy; queries over the tampered tree must not verify.
  auto bundle = owner_->ExportTable("trades");
  // Flip a byte every 50 bytes: every signature (~1.5 KB each) is hit.
  for (std::size_t i = 25; i < bundle.size(); i += 50) bundle[i] ^= 0x01;
  SpDatabase evil(owner_->keys());
  if (!evil.ImportTable(bundle)) {
    SUCCEED();  // corruption already detected at parse time
    return;
  }
  core::Vo vo = evil.Range("trades", {0.0}, {99.0}, client_->roles());
  std::string error;
  EXPECT_FALSE(client_->VerifyRange(sp_->GetSchema("trades"), {0.0}, {99.0},
                                    vo, nullptr, &error));
}

}  // namespace
}  // namespace apqa::db

// Tests for duplicate-key handling (Appendix E): super-record merging, the
// zero-knowledge virtual dimension, and the non-ZK dup-embedding grid tree.
#include <gtest/gtest.h>

#include "core/duplicates.h"
#include "core/range_query.h"
#include "core/system.h"

namespace apqa::core {
namespace {

Record Rec(std::uint32_t key, const std::string& v, const char* pol) {
  return Record{Point{key}, v, Policy::Parse(pol)};
}

TEST(MergeSuperRecordsTest, MergesSameKeySamePolicy) {
  std::vector<Record> records = {
      Rec(3, "a", "RoleA"), Rec(3, "b", "RoleA"), Rec(3, "c", "RoleB"),
      Rec(5, "d", "RoleA"),
  };
  auto merged = MergeSuperRecords(records);
  EXPECT_EQ(merged.size(), 3u);  // (3,RoleA) merged; (3,RoleB); (5,RoleA)
  for (const auto& r : merged) {
    if (r.key == Point{3} && r.policy.ToString() == "RoleA") {
      // Two length-prefixed member values.
      EXPECT_EQ(r.value.size(), 4 + 1 + 4 + 1u);
    }
  }
}

TEST(VirtualDimensionTest, MakesKeysDistinct) {
  Rng rng(9);
  Domain domain{1, 4};
  std::vector<Record> records = {
      Rec(3, "a", "RoleA"), Rec(3, "b", "RoleB"), Rec(3, "c", "RoleA | RoleB"),
      Rec(7, "d", "RoleA"),
  };
  auto result = AddVirtualDimension(domain, records, /*vdim_bits=*/4, &rng);
  EXPECT_EQ(result.extended_domain.dims, 2);
  EXPECT_EQ(result.records.size(), 4u);
  std::set<Point> keys;
  for (const auto& r : result.records) {
    EXPECT_EQ(r.key.size(), 2u);
    EXPECT_TRUE(keys.insert(r.key).second) << "duplicate extended key";
  }
}

TEST(VirtualDimensionTest, RejectsTooManyDuplicates) {
  Rng rng(9);
  Domain domain{1, 2};
  std::vector<Record> records;
  for (int i = 0; i < 5; ++i) records.push_back(Rec(1, "v", "RoleA"));
  EXPECT_THROW(AddVirtualDimension(domain, records, /*vdim_bits=*/2, &rng),
               std::invalid_argument);
}

TEST(VirtualDimensionTest, EndToEndZkRangeQuery) {
  // Full Appendix E ZK pipeline: merge, extend, build AP²G-tree, query with
  // an extended range, verify.
  Domain domain{1, 3};  // keys 0..7
  std::vector<Record> records = {
      Rec(2, "a", "RoleA"), Rec(2, "b", "RoleA"),  // same key+policy: merged
      Rec(2, "c", "RoleB"),                        // same key, other policy
      Rec(5, "d", "RoleA"),
  };
  auto merged = MergeSuperRecords(records);
  DataOwner owner({"RoleA", "RoleB"}, domain, 2026);
  Rng vrng(7);
  auto extended = AddVirtualDimension(domain, merged, domain.bits, &vrng);
  // Build the tree over the extended domain via a dedicated owner.
  DataOwner owner2({"RoleA", "RoleB"}, extended.extended_domain, 2027);
  ServiceProvider sp(owner2.keys(), owner2.BuildAds(extended.records));
  User user(owner2.keys(), owner2.EnrollUser({"RoleA"}));

  Box range{Point{0}, Point{6}};
  Box extended_range = ExtendRangeToVirtualDim(range, extended.extended_domain);
  Vo vo = sp.RangeQuery(extended_range, user.roles());
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(user.VerifyRange(extended_range, vo, &results, &error)) << error;
  // RoleA sees the merged (a,b) super-record and d.
  std::set<std::uint32_t> keys;
  for (const auto& r : results) keys.insert(r.key[0]);
  EXPECT_EQ(keys, (std::set<std::uint32_t>{2, 5}));
}

class DupTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(888);
    abs::Abs::Setup(rng_.get(), &msk_, &mvk_);
    universe_ = {"RoleA", "RoleB"};
    RoleSet all = universe_;
    all.insert(kPseudoRole);
    sk_ = abs::Abs::KeyGen(msk_, all, rng_.get());
    domain_ = Domain{1, 3};
    std::vector<Record> records = {
        Rec(2, "a", "RoleA"), Rec(2, "b", "RoleB"), Rec(2, "c", "RoleA"),
        Rec(5, "d", "RoleA"), Rec(6, "e", "RoleB"),
    };
    tree_ = std::make_unique<DupGridTree>(
        DupGridTree::Build(mvk_, sk_, domain_, records, rng_.get()));
  }

  std::unique_ptr<Rng> rng_;
  abs::MasterKey msk_;
  abs::VerifyKey mvk_;
  RoleSet universe_;
  abs::SigningKey sk_;
  Domain domain_;
  std::unique_ptr<DupGridTree> tree_;
};

TEST_F(DupTreeTest, RangeReturnsAllAccessibleDuplicates) {
  RoleSet user = {"RoleA"};
  Box range{Point{0}, Point{7}};
  DupVo vo = BuildDupRangeVo(*tree_, mvk_, range, user, universe_, rng_.get());
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(VerifyDupRangeVo(mvk_, domain_, range, user, universe_, vo,
                               &results, &error))
      << error;
  std::multiset<std::string> values;
  for (const auto& r : results) values.insert(r.value);
  EXPECT_EQ(values, (std::multiset<std::string>{"a", "c", "d"}));
}

TEST_F(DupTreeTest, RejectsHiddenDuplicate) {
  RoleSet user = {"RoleA"};
  Box range{Point{0}, Point{7}};
  DupVo vo = BuildDupRangeVo(*tree_, mvk_, range, user, universe_, rng_.get());
  DupVo bad = vo;
  // Drop one accessible duplicate of key 2: dup_num bookkeeping must catch it.
  ASSERT_GE(bad.results.size(), 2u);
  bad.results.erase(bad.results.begin());
  EXPECT_FALSE(
      VerifyDupRangeVo(mvk_, domain_, range, user, universe_, bad, nullptr, nullptr));
}

TEST_F(DupTreeTest, RejectsForgedDupNum) {
  RoleSet user = {"RoleA"};
  Box range{Point{0}, Point{7}};
  DupVo vo = BuildDupRangeVo(*tree_, mvk_, range, user, universe_, rng_.get());
  DupVo bad = vo;
  ASSERT_FALSE(bad.results.empty());
  // Claim the group is smaller than it is: the signature binds dup_num.
  for (auto& e : bad.results) {
    if (e.key == Point{2}) e.dup_num = 1;
  }
  for (auto& e : bad.inaccessible) {
    if (e.key == Point{2}) e.dup_num = 1;
  }
  EXPECT_FALSE(
      VerifyDupRangeVo(mvk_, domain_, range, user, universe_, bad, nullptr, nullptr));
}

TEST_F(DupTreeTest, InaccessibleGroupsAggregated) {
  RoleSet user = {};  // no roles: everything inaccessible
  Box range{Point{0}, Point{7}};
  DupVo vo = BuildDupRangeVo(*tree_, mvk_, range, user, universe_, rng_.get());
  std::string error;
  ASSERT_TRUE(VerifyDupRangeVo(mvk_, domain_, range, user, universe_, vo,
                               nullptr, &error))
      << error;
  EXPECT_TRUE(vo.results.empty());
  // The whole domain should collapse to a single root APS box.
  EXPECT_EQ(vo.boxes.size(), 1u);
  EXPECT_TRUE(vo.inaccessible.empty());
}

}  // namespace
}  // namespace apqa::core

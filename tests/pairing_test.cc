// Bilinearity and non-degeneracy tests for the BLS12-381 ate pairing.
#include <gtest/gtest.h>

#include "crypto/pairing.h"
#include "crypto/pairing_prepared.h"
#include "crypto/rng.h"

namespace apqa::crypto {
namespace {

TEST(PairingTest, NonDegenerate) {
  GT e = Pairing(G1Generator(), G2Generator());
  EXPECT_FALSE(e.IsOne());
  EXPECT_FALSE(e.IsZero());
}

TEST(PairingTest, Bilinearity) {
  Rng rng(100);
  Fr a = rng.NextNonZeroFr();
  Fr b = rng.NextNonZeroFr();
  GT base = Pairing(G1Generator(), G2Generator());
  // e(g^a, h^b) == e(g,h)^(ab)
  GT lhs = Pairing(G1Mul(a), G2Mul(b));
  Limbs<4> ab = (a * b).ToCanonical();
  GT rhs = base.Pow(std::span<const u64>(ab.data(), 4));
  EXPECT_EQ(lhs, rhs);
}

TEST(PairingTest, LinearInFirstArgument) {
  Rng rng(101);
  Fr a = rng.NextNonZeroFr(), b = rng.NextNonZeroFr();
  // e(g^a * g^b, h) == e(g^a, h) * e(g^b, h)
  GT lhs = Pairing(G1Mul(a) + G1Mul(b), G2Generator());
  GT rhs = Pairing(G1Mul(a), G2Generator()) * Pairing(G1Mul(b), G2Generator());
  EXPECT_EQ(lhs, rhs);
}

TEST(PairingTest, LinearInSecondArgument) {
  Rng rng(102);
  Fr a = rng.NextNonZeroFr(), b = rng.NextNonZeroFr();
  GT lhs = Pairing(G1Generator(), G2Mul(a) + G2Mul(b));
  GT rhs = Pairing(G1Generator(), G2Mul(a)) * Pairing(G1Generator(), G2Mul(b));
  EXPECT_EQ(lhs, rhs);
}

TEST(PairingTest, InfinityMapsToOne) {
  EXPECT_TRUE(Pairing(G1::Infinity(), G2Generator()).IsOne());
  EXPECT_TRUE(Pairing(G1Generator(), G2::Infinity()).IsOne());
}

TEST(PairingTest, MultiPairingMatchesProduct) {
  Rng rng(103);
  std::vector<std::pair<G1, G2>> pairs;
  GT expect = GT::One();
  for (int i = 0; i < 3; ++i) {
    G1 p = G1Mul(rng.NextNonZeroFr());
    G2 q = G2Mul(rng.NextNonZeroFr());
    pairs.emplace_back(p, q);
    expect = expect * Pairing(p, q);
  }
  EXPECT_EQ(MultiPairing(pairs), expect);
}

TEST(PairingTest, PairingProductCancellation) {
  // e(g^a, h) * e(g^-a, h) == 1 — the pattern used throughout ABS.Verify.
  Rng rng(104);
  Fr a = rng.NextNonZeroFr();
  std::vector<std::pair<G1, G2>> pairs = {
      {G1Mul(a), G2Generator()},
      {-G1Mul(a), G2Generator()},
  };
  EXPECT_TRUE(MultiPairing(pairs).IsOne());
}

TEST(PairingTest, CyclotomicSquareMatchesGenericSquare) {
  // Granger-Scott squaring is only valid in the cyclotomic subgroup; every
  // pairing output lives there.
  Rng rng(105);
  GT f = Pairing(G1Mul(rng.NextNonZeroFr()), G2Mul(rng.NextNonZeroFr()));
  GT by_cyc = f.CyclotomicSquare();
  GT by_generic = f.Square();
  EXPECT_EQ(by_cyc, by_generic);
  // Iterate a few times to catch drift.
  for (int i = 0; i < 5; ++i) {
    f = f.CyclotomicSquare();
  }
  GT g = Pairing(G1Mul(rng.NextNonZeroFr()), G2Mul(rng.NextNonZeroFr()));
  (void)g;
}

TEST(PairingTest, PowCyclotomicMatchesPow) {
  Rng rng(106);
  GT f = Pairing(G1Mul(rng.NextNonZeroFr()), G2Mul(rng.NextNonZeroFr()));
  Limbs<4> e = rng.NextFr().ToCanonical();
  std::span<const u64> es(e.data(), 4);
  EXPECT_EQ(f.PowCyclotomic(es), f.Pow(es));
  u64 small[1] = {1};
  EXPECT_EQ(f.PowCyclotomic(std::span<const u64>(small, 1)), f);
  u64 zero[1] = {0};
  EXPECT_TRUE(f.PowCyclotomic(std::span<const u64>(zero, 1)).IsOne());
}

TEST(PairingTest, TwistedMillerLoopMatchesGeneric) {
  // The production Miller loop works on the twist with sparse Fp2 lines
  // (each line carries an extra w^3 in Fp4, killed by the final
  // exponentiation); the generic loop over E(Fp12) is the reference.
  Rng rng(107);
  for (int i = 0; i < 3; ++i) {
    G1 p = G1Mul(rng.NextNonZeroFr());
    G2 q = G2Mul(rng.NextNonZeroFr());
    EXPECT_EQ(FinalExponentiation(MillerLoop(p, q)),
              FinalExponentiation(MillerLoopGeneric(p, q)));
  }
  EXPECT_TRUE(MillerLoopGeneric(G1::Infinity(), G2Generator()).IsOne());
}

TEST(PairingTest, FinalExponentiationMatchesGenericCubed) {
  // The production chain computes f^(3 (p^4-p^2+1)/r) after the easy part;
  // the generic path computes the exact exponent. Cube the oracle.
  Rng rng(108);
  for (int i = 0; i < 3; ++i) {
    GT f = MillerLoop(G1Mul(rng.NextNonZeroFr()), G2Mul(rng.NextNonZeroFr()));
    GT generic = FinalExponentiationGeneric(f);
    EXPECT_EQ(FinalExponentiation(f), generic * generic * generic);
  }
  EXPECT_TRUE(FinalExponentiation(GT::One()).IsOne());
}

TEST(PairingPreparedTest, MatchesOnTheFlyMillerLoop) {
  // Cached homogeneous-projective lines differ from the affine lines only
  // by Fp2 scale factors, so equality holds after final exponentiation.
  Rng rng(109);
  for (int i = 0; i < 3; ++i) {
    G1 p = G1Mul(rng.NextNonZeroFr());
    G2 q = G2Mul(rng.NextNonZeroFr());
    G2Prepared qp(q);
    EXPECT_EQ(FinalExponentiation(MillerLoopPrepared(p, qp)),
              FinalExponentiation(MillerLoop(p, q)));
    EXPECT_EQ(PairWith(p, qp), Pairing(p, q));
    EXPECT_EQ(FinalExponentiation(MillerLoopPrepared(p, qp)),
              FinalExponentiation(MillerLoopGeneric(p, q)));
  }
}

TEST(PairingPreparedTest, OneTableManyG1s) {
  Rng rng(110);
  G2 q = G2Mul(rng.NextNonZeroFr());
  G2Prepared qp(q);
  for (int i = 0; i < 4; ++i) {
    G1 p = G1Mul(rng.NextNonZeroFr());
    EXPECT_EQ(PairWith(p, qp), Pairing(p, q));
  }
}

TEST(PairingPreparedTest, SameScalarBothSides) {
  // "P == Q"-style edge: both sides derived from the same scalar.
  Rng rng(111);
  Fr a = rng.NextNonZeroFr();
  G2Prepared qp(G2Mul(a));
  EXPECT_EQ(PairWith(G1Mul(a), qp), Pairing(G1Mul(a), G2Mul(a)));
}

TEST(PairingPreparedTest, IdentitySemantics) {
  // Documented skip-pair semantics: identity on either side is neutral.
  Rng rng(112);
  G1 p = G1Mul(rng.NextNonZeroFr());
  G2 q = G2Mul(rng.NextNonZeroFr());
  G2Prepared q_inf;  // default: prepared infinity
  EXPECT_TRUE(q_inf.IsInfinity());
  EXPECT_TRUE(G2Prepared(G2::Infinity()).IsInfinity());
  EXPECT_TRUE(PairWith(p, q_inf).IsOne());
  EXPECT_TRUE(PairWith(G1::Infinity(), G2Prepared(q)).IsOne());
  EXPECT_TRUE(MillerLoopPrepared(G1::Infinity(), G2Prepared(q)).IsOne());
  // All pairs skipped -> One.
  G2Prepared qp(q);
  EXPECT_TRUE(MultiPairingPrepared({{G1::Infinity(), &qp}, {p, &q_inf}},
                                   {{p, G2::Infinity()}, {G1::Infinity(), q}})
                  .IsOne());
  EXPECT_TRUE(MultiPairingPrepared({}).IsOne());
  // A skipped pair among live ones drops out of the product.
  GT with_skips = MultiPairingPrepared({{p, &qp}, {G1::Infinity(), &qp}},
                                       {{G1::Infinity(), q}});
  EXPECT_EQ(with_skips, Pairing(p, q));
}

TEST(PairingPreparedTest, MultiPairingPreparedMatchesMultiPairing) {
  Rng rng(113);
  std::vector<std::pair<G1, G2>> pairs;
  std::vector<G2Prepared> tabs;
  for (int i = 0; i < 3; ++i) {
    pairs.emplace_back(G1Mul(rng.NextNonZeroFr()), G2Mul(rng.NextNonZeroFr()));
  }
  tabs.reserve(pairs.size());
  for (const auto& [p, q] : pairs) tabs.emplace_back(q);

  GT want = MultiPairing(pairs);
  // All prepared.
  std::vector<PreparedPair> prepped;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    prepped.push_back({pairs[i].first, &tabs[i]});
  }
  EXPECT_EQ(MultiPairingPrepared(prepped), want);
  // Mixed prepared + fresh.
  EXPECT_EQ(MultiPairingPrepared({prepped[0]}, {pairs[1], pairs[2]}), want);
  // All fresh.
  EXPECT_EQ(MultiPairingPrepared({}, pairs), want);
}

TEST(PairingTest, MultiPairingIdentityPairsSkipped) {
  // MultiPairing documents e(P, O) = e(O, Q) = 1; pairs with an identity
  // side must drop out of the product rather than poison it.
  Rng rng(114);
  G1 p = G1Mul(rng.NextNonZeroFr());
  G2 q = G2Mul(rng.NextNonZeroFr());
  EXPECT_TRUE(MultiPairing({{G1::Infinity(), q}, {p, G2::Infinity()}}).IsOne());
  EXPECT_TRUE(MultiPairing({}).IsOne());
  EXPECT_EQ(MultiPairing({{p, q}, {G1::Infinity(), q}}), Pairing(p, q));
}

TEST(PairingTest, SparseLineMulMatchesFullMul) {
  Rng rng(115);
  auto rand_fp = [&rng] {
    Limbs<6> l;
    rng.Fill(l.data(), sizeof(l));
    l[5] &= (u64{1} << 57) - 1;  // keep below 2^377 < p
    return Fp::FromCanonicalReduce(l);
  };
  auto rand_fp2 = [&rand_fp] { return Fp2{rand_fp(), rand_fp()}; };
  for (int i = 0; i < 4; ++i) {
    // A random dense element times a random sparse line, both ways.
    Fp12 dense;
    dense.c0 = Fp6{rand_fp2(), rand_fp2(), rand_fp2()};
    dense.c1 = Fp6{rand_fp2(), rand_fp2(), rand_fp2()};
    Fp2 a0 = rand_fp2(), a2 = rand_fp2(), a3 = rand_fp2();
    EXPECT_EQ(dense.MulBySparseLine(a0, a2, a3),
              dense * Fp12::FromSparseLine(a0, a2, a3));
  }
  // Degenerate slots.
  Fp12 dense = Fp12::One();
  EXPECT_EQ(dense.MulBySparseLine(Fp2::Zero(), Fp2::Zero(), Fp2::Zero()),
            Fp12::Zero());
  Fp2 a0 = rand_fp2();
  EXPECT_EQ(dense.MulBySparseLine(a0, Fp2::Zero(), Fp2::Zero()),
            Fp12::FromSparseLine(a0, Fp2::Zero(), Fp2::Zero()));
}

TEST(PairingTest, GTElementHasOrderR) {
  // e(g,h)^r == 1.
  GT e = Pairing(G1Generator(), G2Generator());
  Limbs<4> r = FrTag::kModulus;
  EXPECT_TRUE(e.Pow(std::span<const u64>(r.data(), 4)).IsOne());
}

}  // namespace
}  // namespace apqa::crypto

// Bilinearity and non-degeneracy tests for the BLS12-381 ate pairing.
#include <gtest/gtest.h>

#include "crypto/pairing.h"
#include "crypto/rng.h"

namespace apqa::crypto {
namespace {

TEST(PairingTest, NonDegenerate) {
  GT e = Pairing(G1Generator(), G2Generator());
  EXPECT_FALSE(e.IsOne());
  EXPECT_FALSE(e.IsZero());
}

TEST(PairingTest, Bilinearity) {
  Rng rng(100);
  Fr a = rng.NextNonZeroFr();
  Fr b = rng.NextNonZeroFr();
  GT base = Pairing(G1Generator(), G2Generator());
  // e(g^a, h^b) == e(g,h)^(ab)
  GT lhs = Pairing(G1Mul(a), G2Mul(b));
  Limbs<4> ab = (a * b).ToCanonical();
  GT rhs = base.Pow(std::span<const u64>(ab.data(), 4));
  EXPECT_EQ(lhs, rhs);
}

TEST(PairingTest, LinearInFirstArgument) {
  Rng rng(101);
  Fr a = rng.NextNonZeroFr(), b = rng.NextNonZeroFr();
  // e(g^a * g^b, h) == e(g^a, h) * e(g^b, h)
  GT lhs = Pairing(G1Mul(a) + G1Mul(b), G2Generator());
  GT rhs = Pairing(G1Mul(a), G2Generator()) * Pairing(G1Mul(b), G2Generator());
  EXPECT_EQ(lhs, rhs);
}

TEST(PairingTest, LinearInSecondArgument) {
  Rng rng(102);
  Fr a = rng.NextNonZeroFr(), b = rng.NextNonZeroFr();
  GT lhs = Pairing(G1Generator(), G2Mul(a) + G2Mul(b));
  GT rhs = Pairing(G1Generator(), G2Mul(a)) * Pairing(G1Generator(), G2Mul(b));
  EXPECT_EQ(lhs, rhs);
}

TEST(PairingTest, InfinityMapsToOne) {
  EXPECT_TRUE(Pairing(G1::Infinity(), G2Generator()).IsOne());
  EXPECT_TRUE(Pairing(G1Generator(), G2::Infinity()).IsOne());
}

TEST(PairingTest, MultiPairingMatchesProduct) {
  Rng rng(103);
  std::vector<std::pair<G1, G2>> pairs;
  GT expect = GT::One();
  for (int i = 0; i < 3; ++i) {
    G1 p = G1Mul(rng.NextNonZeroFr());
    G2 q = G2Mul(rng.NextNonZeroFr());
    pairs.emplace_back(p, q);
    expect = expect * Pairing(p, q);
  }
  EXPECT_EQ(MultiPairing(pairs), expect);
}

TEST(PairingTest, PairingProductCancellation) {
  // e(g^a, h) * e(g^-a, h) == 1 — the pattern used throughout ABS.Verify.
  Rng rng(104);
  Fr a = rng.NextNonZeroFr();
  std::vector<std::pair<G1, G2>> pairs = {
      {G1Mul(a), G2Generator()},
      {-G1Mul(a), G2Generator()},
  };
  EXPECT_TRUE(MultiPairing(pairs).IsOne());
}

TEST(PairingTest, CyclotomicSquareMatchesGenericSquare) {
  // Granger-Scott squaring is only valid in the cyclotomic subgroup; every
  // pairing output lives there.
  Rng rng(105);
  GT f = Pairing(G1Mul(rng.NextNonZeroFr()), G2Mul(rng.NextNonZeroFr()));
  GT by_cyc = f.CyclotomicSquare();
  GT by_generic = f.Square();
  EXPECT_EQ(by_cyc, by_generic);
  // Iterate a few times to catch drift.
  for (int i = 0; i < 5; ++i) {
    f = f.CyclotomicSquare();
  }
  GT g = Pairing(G1Mul(rng.NextNonZeroFr()), G2Mul(rng.NextNonZeroFr()));
  (void)g;
}

TEST(PairingTest, PowCyclotomicMatchesPow) {
  Rng rng(106);
  GT f = Pairing(G1Mul(rng.NextNonZeroFr()), G2Mul(rng.NextNonZeroFr()));
  Limbs<4> e = rng.NextFr().ToCanonical();
  std::span<const u64> es(e.data(), 4);
  EXPECT_EQ(f.PowCyclotomic(es), f.Pow(es));
  u64 small[1] = {1};
  EXPECT_EQ(f.PowCyclotomic(std::span<const u64>(small, 1)), f);
  u64 zero[1] = {0};
  EXPECT_TRUE(f.PowCyclotomic(std::span<const u64>(zero, 1)).IsOne());
}

TEST(PairingTest, TwistedMillerLoopMatchesGeneric) {
  // The production Miller loop works on the twist with sparse Fp2 lines
  // (each line carries an extra w^3 in Fp4, killed by the final
  // exponentiation); the generic loop over E(Fp12) is the reference.
  Rng rng(107);
  for (int i = 0; i < 3; ++i) {
    G1 p = G1Mul(rng.NextNonZeroFr());
    G2 q = G2Mul(rng.NextNonZeroFr());
    EXPECT_EQ(FinalExponentiation(MillerLoop(p, q)),
              FinalExponentiation(MillerLoopGeneric(p, q)));
  }
  EXPECT_TRUE(MillerLoopGeneric(G1::Infinity(), G2Generator()).IsOne());
}

TEST(PairingTest, GTElementHasOrderR) {
  // e(g,h)^r == 1.
  GT e = Pairing(G1Generator(), G2Generator());
  Limbs<4> r = FrTag::kModulus;
  EXPECT_TRUE(e.Pow(std::span<const u64>(r.data(), 4)).IsOne());
}

}  // namespace
}  // namespace apqa::crypto

// Security-property tests (paper §7): zero-knowledge indistinguishability
// at the protocol level and unforgeability-style negative tests.
//
// The formal zero-knowledge game (Definition 7.5) says a user cannot
// distinguish the real database from an "ideal" database where every
// inaccessible record is replaced by ⟨o, random, Role_∅⟩. We test the
// observable consequences: VOs produced against the two databases have the
// same structure (entry kinds, signature component counts, byte sizes) and
// both verify, while the relaxed signatures are re-randomized (never
// repeating across queries).
#include <gtest/gtest.h>

#include "core/system.h"

namespace apqa::core {
namespace {

Record Rec(std::uint32_t key, const std::string& v, const char* pol) {
  return Record{Point{key}, v, Policy::Parse(pol)};
}

// Structural fingerprint of a VO as seen by the user: entry kinds in order
// of region, plus the (l, t) shape of every signature.
std::vector<std::string> VoShape(const Vo& vo) {
  std::vector<std::string> shape;
  for (const auto& e : vo.entries) {
    if (const auto* res = std::get_if<ResultEntry>(&e)) {
      shape.push_back("result(l=" + std::to_string(res->app_sig.s.size()) +
                      ",t=" + std::to_string(res->app_sig.p.size()) + ")");
    } else if (const auto* rec = std::get_if<InaccessibleRecordEntry>(&e)) {
      shape.push_back("hidden-rec(l=" + std::to_string(rec->aps_sig.s.size()) +
                      ",t=" + std::to_string(rec->aps_sig.p.size()) + ")");
    } else {
      const auto& b = std::get<InaccessibleBoxEntry>(e);
      shape.push_back("hidden-box(l=" + std::to_string(b.aps_sig.s.size()) +
                      ",t=" + std::to_string(b.aps_sig.p.size()) + ")");
    }
  }
  return shape;
}

class ZeroKnowledgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    domain_ = Domain{1, 4};
    universe_ = {"RoleA", "RoleB", "RoleC"};
  }
  Domain domain_;
  RoleSet universe_;
};

TEST_F(ZeroKnowledgeTest, RealAndIdealDatabasesProduceSameVoShapes) {
  // Real database: user {RoleA} can access keys 1, 7; keys 4, 9 are
  // inaccessible with *different, secret* policies.
  std::vector<Record> real_db = {
      Rec(1, "v1", "RoleA"),
      Rec(4, "v4", "RoleB & RoleC"),
      Rec(7, "v7", "RoleA | RoleB"),
      Rec(9, "v9", "RoleC"),
  };
  // Ideal database (Definition 7.5): inaccessible records replaced by
  // pseudo records. Note keys 4 and 9 are simply absent — the grid tree
  // fills them with Role_∅ pseudo records automatically.
  std::vector<Record> ideal_db = {
      Rec(1, "v1", "RoleA"),
      Rec(7, "v7", "RoleA | RoleB"),
  };
  DataOwner owner_real(universe_, domain_, 111);
  DataOwner owner_ideal(universe_, domain_, 111);
  ServiceProvider sp_real(owner_real.keys(), owner_real.BuildAds(real_db));
  ServiceProvider sp_ideal(owner_ideal.keys(), owner_ideal.BuildAds(ideal_db));
  RoleSet roles = {"RoleA"};

  for (const Box& range : {Box{{0}, {15}}, Box{{3}, {10}}, Box{{8}, {9}}}) {
    Vo vo_real = sp_real.RangeQuery(range, roles);
    Vo vo_ideal = sp_ideal.RangeQuery(range, roles);
    EXPECT_EQ(VoShape(vo_real), VoShape(vo_ideal))
        << "range [" << range.lo[0] << "," << range.hi[0] << "]";
    EXPECT_EQ(vo_real.SerializedSize(), vo_ideal.SerializedSize());
    // Both verify for their respective users.
    User u_real(owner_real.keys(), owner_real.EnrollUser(roles));
    User u_ideal(owner_ideal.keys(), owner_ideal.EnrollUser(roles));
    EXPECT_TRUE(u_real.VerifyRange(range, vo_real, nullptr, nullptr));
    EXPECT_TRUE(u_ideal.VerifyRange(range, vo_ideal, nullptr, nullptr));
  }
}

TEST_F(ZeroKnowledgeTest, EqualityVoIdenticalShapeForHiddenAndAbsent) {
  std::vector<Record> db = {Rec(4, "secret", "RoleB & RoleC")};
  DataOwner owner(universe_, domain_, 222);
  ServiceProvider sp(owner.keys(), owner.BuildAds(db));
  RoleSet roles = {"RoleA"};
  Vo hidden = sp.EqualityQuery({4}, roles);   // record exists, inaccessible
  Vo absent = sp.EqualityQuery({5}, roles);   // no record
  EXPECT_EQ(VoShape(hidden), VoShape(absent));
  EXPECT_EQ(hidden.SerializedSize(), absent.SerializedSize());
}

TEST_F(ZeroKnowledgeTest, ApsSignaturesAreRerandomizedPerQuery) {
  std::vector<Record> db = {Rec(4, "secret", "RoleB")};
  DataOwner owner(universe_, domain_, 333);
  ServiceProvider sp(owner.keys(), owner.BuildAds(db));
  RoleSet roles = {"RoleA"};
  Vo a = sp.EqualityQuery({4}, roles);
  Vo b = sp.EqualityQuery({4}, roles);
  const auto& ea = std::get<InaccessibleRecordEntry>(a.entries[0]);
  const auto& eb = std::get<InaccessibleRecordEntry>(b.entries[0]);
  // Fresh randomness every time: no signature component repeats.
  EXPECT_FALSE(ea.aps_sig.y == eb.aps_sig.y);
  EXPECT_FALSE(ea.aps_sig.s[0] == eb.aps_sig.s[0]);
  EXPECT_FALSE(ea.aps_sig.p[0] == eb.aps_sig.p[0]);
}

class UnforgeabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    domain_ = Domain{1, 4};
    universe_ = {"RoleA", "RoleB"};
    owner_ = std::make_unique<DataOwner>(universe_, domain_, 444);
    db_ = {Rec(2, "v2", "RoleA"), Rec(6, "v6", "RoleB"),
           Rec(11, "v11", "RoleA & RoleB")};
    sp_ = std::make_unique<ServiceProvider>(owner_->keys(),
                                            owner_->BuildAds(db_));
  }
  Domain domain_;
  RoleSet universe_;
  std::unique_ptr<DataOwner> owner_;
  std::vector<Record> db_;
  std::unique_ptr<ServiceProvider> sp_;
};

TEST_F(UnforgeabilityTest, CannotPresentAccessibleRecordAsHidden) {
  // Definition 7.4 case 3: the SP tries to hide record 2 from a RoleA user
  // by fabricating an "inaccessible" entry. ABS.Relax fails (the policy is
  // satisfied avoiding the lacked roles), so the SP must reuse a signature
  // it cannot have — simulate the best it can do: reuse the APP signature
  // verbatim as an APS signature.
  RoleSet roles = {"RoleA"};
  Box range{{0}, {15}};
  Vo vo = sp_->RangeQuery(range, roles);
  Vo forged;
  for (const auto& e : vo.entries) {
    if (const auto* res = std::get_if<ResultEntry>(&e);
        res != nullptr && res->key == Point{2}) {
      InaccessibleRecordEntry fake;
      fake.key = res->key;
      fake.value_hash = crypto::Sha256::Hash(res->value.data(),
                                             res->value.size());
      fake.aps_sig = res->app_sig;  // wrong predicate shape
      forged.entries.push_back(fake);
      continue;
    }
    forged.entries.push_back(e);
  }
  User user(owner_->keys(), owner_->EnrollUser(roles));
  EXPECT_FALSE(user.VerifyRange(range, forged, nullptr, nullptr));
}

TEST_F(UnforgeabilityTest, CannotReplayVoForDifferentRange) {
  RoleSet roles = {"RoleA"};
  Box range{{0}, {7}};
  Vo vo = sp_->RangeQuery(range, roles);
  User user(owner_->keys(), owner_->EnrollUser(roles));
  ASSERT_TRUE(user.VerifyRange(range, vo, nullptr, nullptr));
  // Same VO against a wider range: coverage fails (record 11 would be
  // silently omitted).
  EXPECT_FALSE(user.VerifyRange(Box{{0}, {15}}, vo, nullptr, nullptr));
  // And against a narrower range: out-of-range regions.
  EXPECT_FALSE(user.VerifyRange(Box{{0}, {5}}, vo, nullptr, nullptr));
}

TEST_F(UnforgeabilityTest, CannotSpliceEntriesAcrossUsers) {
  // An APS signature derived for user {RoleB} embeds a different super
  // policy; replaying it to user {RoleA} must fail.
  Box range{{0}, {15}};
  Vo vo_b = sp_->RangeQuery(range, {"RoleB"});
  User user_a(owner_->keys(), owner_->EnrollUser({"RoleA"}));
  EXPECT_FALSE(user_a.VerifyRange(range, vo_b, nullptr, nullptr));
}

TEST_F(UnforgeabilityTest, CannotSubstituteValueUnderSameKey) {
  // Swap the values of two result entries (keys keep their signatures): the
  // signatures bind hash(o)|hash(v), so both entries must fail.
  RoleSet roles = {"RoleA", "RoleB"};  // sees all three records
  Box range{{0}, {15}};
  Vo vo = sp_->RangeQuery(range, roles);
  Vo forged = vo;
  ResultEntry* first = nullptr;
  bool swapped = false;
  for (auto& e : forged.entries) {
    if (auto* res = std::get_if<ResultEntry>(&e)) {
      if (first == nullptr) {
        first = res;
      } else {
        std::swap(first->value, res->value);
        swapped = true;
        break;
      }
    }
  }
  ASSERT_TRUE(swapped);
  User user(owner_->keys(), owner_->EnrollUser(roles));
  EXPECT_FALSE(user.VerifyRange(range, forged, nullptr, nullptr));
}

}  // namespace
}  // namespace apqa::core

// Tests for the AP²kd-tree (§9.1): Algorithm 7 split selection, tree
// construction, and authenticated range queries under the relaxed model.
#include <gtest/gtest.h>

#include "abs/abs.h"
#include "core/kd_tree.h"

namespace apqa::core {
namespace {

class KdTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(555);
    abs::Abs::Setup(rng_.get(), &msk_, &mvk_);
    universe_ = {"RoleA", "RoleB", "RoleC"};
    RoleSet all = universe_;
    all.insert(kPseudoRole);
    sk_ = abs::Abs::KeyGen(msk_, all, rng_.get());
  }

  Record Rec(std::uint32_t key, const std::string& v, const char* pol) {
    return Record{Point{key}, v, Policy::Parse(pol)};
  }

  std::unique_ptr<Rng> rng_;
  abs::MasterKey msk_;
  abs::VerifyKey mvk_;
  RoleSet universe_;
  abs::SigningKey sk_;
};

TEST_F(KdTreeTest, SplitPositionPrefersDisjointPolicies) {
  // Policies: A, A, B — splitting after the two A's shares no clauses.
  std::vector<Policy> ps = {Policy::Parse("RoleA"), Policy::Parse("RoleA"),
                            Policy::Parse("RoleB")};
  EXPECT_EQ(KdTree::SplitPosition(ps), 2u);
  // Policies: A, B, B — best split is after the first.
  std::vector<Policy> ps2 = {Policy::Parse("RoleA"), Policy::Parse("RoleB"),
                             Policy::Parse("RoleB")};
  EXPECT_EQ(KdTree::SplitPosition(ps2), 1u);
  std::vector<Policy> ps3 = {Policy::Parse("RoleA"), Policy::Parse("RoleB")};
  EXPECT_EQ(KdTree::SplitPosition(ps3), 1u);
}

TEST_F(KdTreeTest, SplitPositionObjective) {
  // The paper's objective f = |X_l ∩ X_r| evaluated on the returned split
  // is no worse than splitting in the middle.
  std::vector<Policy> ps = {
      Policy::Parse("RoleA"),          Policy::Parse("RoleA"),
      Policy::Parse("RoleA & RoleB"),  Policy::Parse("RoleC"),
      Policy::Parse("RoleC | RoleA"),  Policy::Parse("RoleC"),
  };
  std::size_t split = KdTree::SplitPosition(ps);
  ASSERT_GE(split, 1u);
  ASSERT_LT(split, ps.size());
}

TEST_F(KdTreeTest, BuildPartitionsSpace) {
  Domain domain{1, 5};  // keys 0..31
  std::vector<Record> records = {
      Rec(2, "a", "RoleA"),  Rec(5, "b", "RoleA"),  Rec(9, "c", "RoleB"),
      Rec(17, "d", "RoleB"), Rec(21, "e", "RoleC"), Rec(30, "f", "RoleC"),
  };
  KdTree tree = KdTree::Build(mvk_, sk_, domain, records, rng_.get());
  EXPECT_EQ(tree.LeafCount(), records.size());
  // Leaves partition the domain.
  std::uint64_t total = 0;
  for (const auto& node : tree.nodes()) {
    if (node.is_leaf) total += node.region.Volume();
  }
  EXPECT_EQ(total, domain.CellCount());
}

TEST_F(KdTreeTest, RangeQueryRoundTrip) {
  Domain domain{1, 5};
  std::vector<Record> records = {
      Rec(2, "a", "RoleA"),  Rec(5, "b", "RoleA"),  Rec(9, "c", "RoleB"),
      Rec(17, "d", "RoleB"), Rec(21, "e", "RoleC"), Rec(30, "f", "RoleC"),
  };
  KdTree tree = KdTree::Build(mvk_, sk_, domain, records, rng_.get());
  RoleSet user = {"RoleA", "RoleB"};
  Box range{Point{3}, Point{22}};
  KdVo vo = BuildKdRangeVo(tree, mvk_, range, user, universe_, rng_.get());
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(VerifyKdRangeVo(mvk_, domain, range, user, universe_, vo,
                              &results, &error))
      << error;
  std::set<std::uint32_t> keys;
  for (const auto& r : results) keys.insert(r.key[0]);
  EXPECT_EQ(keys, (std::set<std::uint32_t>{5, 9, 17}));
}

TEST_F(KdTreeTest, RangeRejectsDroppedEntry) {
  Domain domain{1, 5};
  std::vector<Record> records = {Rec(2, "a", "RoleA"), Rec(9, "c", "RoleB"),
                                 Rec(21, "e", "RoleC")};
  KdTree tree = KdTree::Build(mvk_, sk_, domain, records, rng_.get());
  RoleSet user = {"RoleA"};
  Box range{Point{0}, Point{31}};
  KdVo vo = BuildKdRangeVo(tree, mvk_, range, user, universe_, rng_.get());
  std::string error;
  ASSERT_TRUE(VerifyKdRangeVo(mvk_, domain, range, user, universe_, vo,
                              nullptr, &error))
      << error;
  KdVo bad = vo;
  if (!bad.boxes.empty()) {
    bad.boxes.pop_back();
  } else if (!bad.leaves.empty()) {
    bad.leaves.pop_back();
  } else {
    bad.results.pop_back();
  }
  EXPECT_FALSE(
      VerifyKdRangeVo(mvk_, domain, range, user, universe_, bad, nullptr, nullptr));
}

TEST_F(KdTreeTest, RangeRejectsTamperedLeafRegion) {
  Domain domain{1, 5};
  std::vector<Record> records = {Rec(2, "a", "RoleA"), Rec(9, "c", "RoleB"),
                                 Rec(20, "e", "RoleA")};
  KdTree tree = KdTree::Build(mvk_, sk_, domain, records, rng_.get());
  RoleSet user = {"RoleA"};
  Box range{Point{0}, Point{31}};
  KdVo vo = BuildKdRangeVo(tree, mvk_, range, user, universe_, rng_.get());
  ASSERT_FALSE(vo.results.empty());
  KdVo bad = vo;
  // Perturb a result's claimed region: the leaf signature binds the region,
  // so verification must fail even if coverage still works out.
  if (bad.results[0].region.hi[0] < 31) {
    bad.results[0].region.hi[0] += 1;
  } else {
    bad.results[0].region.lo[0] -= 1;
  }
  EXPECT_FALSE(
      VerifyKdRangeVo(mvk_, domain, range, user, universe_, bad, nullptr, nullptr));
}

TEST_F(KdTreeTest, EmptyDatabaseStillVerifies) {
  Domain domain{1, 4};
  KdTree tree = KdTree::Build(mvk_, sk_, domain, {}, rng_.get());
  RoleSet user = {"RoleA"};
  Box range{Point{2}, Point{10}};
  KdVo vo = BuildKdRangeVo(tree, mvk_, range, user, universe_, rng_.get());
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(VerifyKdRangeVo(mvk_, domain, range, user, universe_, vo,
                              &results, &error))
      << error;
  EXPECT_TRUE(results.empty());
}

TEST_F(KdTreeTest, DenseClusteredBuildRegression) {
  // Regression: deeply unbalanced policy-aware splits push past the
  // midpoint-fallback depth with runs of equal coordinates; the fallback
  // once indexed past the end of the record span (segfault in the Fig. 14
  // bench). Clustered keys in a 1-D domain reproduce the shape cheaply.
  Domain domain{1, 5};
  std::vector<Record> records;
  // A long run of consecutive keys plus duplicit-coordinate pressure in a
  // tight cluster forces repeated one-off splits.
  for (std::uint32_t k = 8; k < 24; ++k) {
    records.push_back(Rec(k, "v" + std::to_string(k), "RoleA"));
  }
  records.push_back(Rec(30, "tail", "RoleB"));
  KdTree tree = KdTree::Build(mvk_, sk_, domain, records, rng_.get());
  EXPECT_EQ(tree.LeafCount(), records.size());
  RoleSet user = {"RoleA"};
  Box range{Point{0}, Point{31}};
  KdVo vo = BuildKdRangeVo(tree, mvk_, range, user, universe_, rng_.get());
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(VerifyKdRangeVo(mvk_, domain, range, user, universe_, vo,
                              &results, &error))
      << error;
  EXPECT_EQ(results.size(), 16u);
}

TEST_F(KdTreeTest, TwoDimensionalBuild) {
  Domain domain{2, 3};  // 8x8
  std::vector<Record> records = {
      Record{Point{1, 1}, "a", Policy::Parse("RoleA")},
      Record{Point{2, 6}, "b", Policy::Parse("RoleB")},
      Record{Point{5, 3}, "c", Policy::Parse("RoleA")},
      Record{Point{7, 7}, "d", Policy::Parse("RoleC")},
  };
  KdTree tree = KdTree::Build(mvk_, sk_, domain, records, rng_.get());
  RoleSet user = {"RoleA"};
  Box range{Point{0, 0}, Point{7, 7}};
  KdVo vo = BuildKdRangeVo(tree, mvk_, range, user, universe_, rng_.get());
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(VerifyKdRangeVo(mvk_, domain, range, user, universe_, vo,
                              &results, &error))
      << error;
  std::set<std::string> values;
  for (const auto& r : results) values.insert(r.value);
  EXPECT_EQ(values, (std::set<std::string>{"a", "c"}));
}

}  // namespace
}  // namespace apqa::core

// Tests for monotone policies, DNF normalization, and the monotone span
// program construction (Algorithms 5/6), including the Purge invariant that
// underpins ABS.Relax.
#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "policy/msp.h"
#include "policy/policy.h"

namespace apqa::policy {
namespace {

using crypto::Rng;

TEST(PolicyTest, ParseAndPrintRoundTrip) {
  Policy p = Policy::Parse("(RoleA & RoleB) | RoleC");
  EXPECT_EQ(p.ToString(), "((RoleA & RoleB) | RoleC)");
  EXPECT_EQ(Policy::Parse(p.ToString()).ToString(), p.ToString());
  EXPECT_EQ(Policy::Parse("A").ToString(), "A");
  EXPECT_EQ(Policy::Parse("A & B & C").ToString(), "(A & B & C)");
  EXPECT_EQ(Policy::Parse("  A |(B& C)").ToString(), "(A | (B & C))");
}

TEST(PolicyTest, ParseErrors) {
  EXPECT_THROW(Policy::Parse(""), std::invalid_argument);
  EXPECT_THROW(Policy::Parse("A &"), std::invalid_argument);
  EXPECT_THROW(Policy::Parse("(A | B"), std::invalid_argument);
  EXPECT_THROW(Policy::Parse("A B"), std::invalid_argument);
  EXPECT_THROW(Policy::Parse("&A"), std::invalid_argument);
}

TEST(PolicyTest, Evaluate) {
  Policy p = Policy::Parse("(RoleA & RoleC) | RoleB");
  EXPECT_FALSE(p.Evaluate({"RoleA"}));
  EXPECT_TRUE(p.Evaluate({"RoleB", "RoleC"}));
  EXPECT_TRUE(p.Evaluate({"RoleA", "RoleC"}));
  EXPECT_FALSE(p.Evaluate({}));
  EXPECT_TRUE(p.Evaluate({"RoleA", "RoleB", "RoleC"}));
}

TEST(PolicyTest, Monotonicity) {
  // Adding roles never flips a policy from 1 to 0.
  Rng rng(1);
  std::vector<std::string> universe = {"A", "B", "C", "D", "E"};
  Policy p = Policy::Parse("(A & B) | (C & D & E) | (A & E)");
  for (int iter = 0; iter < 100; ++iter) {
    RoleSet small, big;
    for (const auto& r : universe) {
      bool in_small = rng.NextU64() % 2 == 0;
      bool in_big = in_small || rng.NextU64() % 2 == 0;
      if (in_small) small.insert(r);
      if (in_big) big.insert(r);
    }
    EXPECT_LE(p.Evaluate(small), p.Evaluate(big));
  }
}

TEST(PolicyTest, DnfClausesAbsorption) {
  Policy p = Policy::Parse("A | (A & B) | (C & D) | (C & D)");
  auto clauses = p.DnfClauses();
  // (A & B) absorbed by A; duplicate (C & D) deduplicated.
  ASSERT_EQ(clauses.size(), 2u);
  EXPECT_EQ(clauses[0], (Clause{"A"}));
  EXPECT_EQ(clauses[1], (Clause{"C", "D"}));
}

TEST(PolicyTest, DnfEquivalence) {
  // DNF normalization preserves semantics on the full role lattice.
  Policy p = Policy::Parse("(A | B) & (C | (D & E)) & (A | E)");
  Policy dnf = p.ToDnf();
  std::vector<std::string> universe = {"A", "B", "C", "D", "E"};
  for (unsigned mask = 0; mask < 32; ++mask) {
    RoleSet roles;
    for (int i = 0; i < 5; ++i) {
      if (mask & (1u << i)) roles.insert(universe[i]);
    }
    EXPECT_EQ(p.Evaluate(roles), dnf.Evaluate(roles)) << "mask=" << mask;
  }
}

TEST(PolicyTest, OrCombineDnf) {
  Policy a = Policy::Parse("A & B");
  Policy b = Policy::Parse("A | C");
  Policy c = OrCombineDnf(a, b);
  // (A&B) absorbed by A.
  EXPECT_EQ(c.ToString(), "(A | C)");
}

TEST(PolicyTest, LengthAndRoles) {
  Policy p = Policy::Parse("(A & B) | (A & C & D)");
  EXPECT_EQ(p.Length(), 5u);
  EXPECT_EQ(p.Roles(), (RoleSet{"A", "B", "C", "D"}));
}

// ---------------------------------------------------------------------------
// Monotone span programs.

// Checks the defining MSP property on every subset of the policy's roles:
// rows labeled by satisfied attributes span e1 iff the policy evaluates true.
// Uses the 0/1 satisfying vector produced by SatisfyingVector as the witness
// and brute-force row reduction for the negative direction.
void CheckMspAgainstPolicy(const Policy& p) {
  Msp msp = BuildMsp(p);
  RoleSet role_set = p.Roles();
  std::vector<std::string> universe(role_set.begin(), role_set.end());
  ASSERT_LE(universe.size(), 16u);
  for (unsigned mask = 0; mask < (1u << universe.size()); ++mask) {
    RoleSet roles;
    for (std::size_t i = 0; i < universe.size(); ++i) {
      if (mask & (1u << i)) roles.insert(universe[i]);
    }
    auto v = SatisfyingVector(p, roles);
    EXPECT_EQ(v.has_value(), p.Evaluate(roles));
    if (v.has_value()) {
      ASSERT_EQ(v->size(), msp.Rows());
      // v * M == e1, support only on satisfied rows.
      for (std::size_t j = 0; j < msp.Cols(); ++j) {
        int sum = 0;
        for (std::size_t i = 0; i < msp.Rows(); ++i) {
          sum += static_cast<int>((*v)[i]) * msp.m[i][j];
        }
        EXPECT_EQ(sum, j == 0 ? 1 : 0) << p.ToString() << " col " << j;
      }
      for (std::size_t i = 0; i < msp.Rows(); ++i) {
        if ((*v)[i] != 0) {
          EXPECT_TRUE(roles.count(msp.row_labels[i]));
        }
      }
    }
  }
}

TEST(MspTest, DefiningPropertyOnFixedPolicies) {
  for (const char* text : {
           "A",
           "A & B",
           "A | B",
           "(A & B) | C",
           "(A & B) | (C & D)",
           "A & (B | C)",
           "A & (B | (C & D)) & (E | F)",
           "((A | B) & (C | D)) | (E & F & G)",
           "(A & B & C) | (A & D) | (B & D)",
       }) {
    SCOPED_TRACE(text);
    CheckMspAgainstPolicy(Policy::Parse(text));
  }
}

Policy RandomPolicy(Rng* rng, const std::vector<std::string>& universe,
                    int depth) {
  if (depth == 0 || rng->NextU64() % 3 == 0) {
    return Policy::Var(universe[rng->NextU64() % universe.size()]);
  }
  std::size_t n = 2 + rng->NextU64() % 2;
  std::vector<Policy> children;
  for (std::size_t i = 0; i < n; ++i) {
    children.push_back(RandomPolicy(rng, universe, depth - 1));
  }
  return rng->NextU64() % 2 == 0 ? Policy::And(std::move(children))
                                 : Policy::Or(std::move(children));
}

TEST(MspTest, DefiningPropertyOnRandomPolicies) {
  Rng rng(99);
  std::vector<std::string> universe = {"A", "B", "C", "D", "E", "F"};
  for (int iter = 0; iter < 30; ++iter) {
    Policy p = RandomPolicy(&rng, universe, 3);
    SCOPED_TRACE(p.ToString());
    CheckMspAgainstPolicy(p);
  }
}

TEST(MspTest, EntriesAreTernary) {
  Rng rng(98);
  std::vector<std::string> universe = {"A", "B", "C", "D"};
  for (int iter = 0; iter < 20; ++iter) {
    Msp msp = BuildMsp(RandomPolicy(&rng, universe, 3));
    for (const auto& row : msp.m) {
      for (auto e : row) {
        EXPECT_TRUE(e == -1 || e == 0 || e == 1);
      }
    }
  }
}

// The Purge invariant: with x = indicator(kept_cols), M x = indicator(
// kept_rows), kept row labels lie in `keep`, and ok iff policy(U \ keep)=0.
void CheckPurge(const Policy& p, const RoleSet& universe) {
  Msp msp = BuildMsp(p);
  std::vector<std::string> uni(universe.begin(), universe.end());
  ASSERT_LE(uni.size(), 12u);
  for (unsigned mask = 0; mask < (1u << uni.size()); ++mask) {
    RoleSet keep;
    for (std::size_t i = 0; i < uni.size(); ++i) {
      if (mask & (1u << i)) keep.insert(uni[i]);
    }
    RoleSet complement;
    for (const auto& r : universe) {
      if (!keep.count(r)) complement.insert(r);
    }
    PurgeResult purge = Purge(p, keep);
    EXPECT_EQ(purge.ok, !p.Evaluate(complement))
        << p.ToString() << " keep mask=" << mask;
    if (!purge.ok) continue;
    std::vector<int> x(msp.Cols(), 0);
    for (std::size_t j : purge.kept_cols) {
      ASSERT_LT(j, msp.Cols());
      x[j] = 1;
    }
    EXPECT_EQ(x[0], 1);
    std::vector<int> want(msp.Rows(), 0);
    for (std::size_t i : purge.kept_rows) {
      ASSERT_LT(i, msp.Rows());
      want[i] = 1;
      EXPECT_TRUE(keep.count(msp.row_labels[i]));
    }
    for (std::size_t i = 0; i < msp.Rows(); ++i) {
      int sum = 0;
      for (std::size_t j = 0; j < msp.Cols(); ++j) sum += msp.m[i][j] * x[j];
      EXPECT_EQ(sum, want[i]) << p.ToString() << " row " << i;
    }
  }
}

TEST(MspTest, PurgeInvariantFixedPolicies) {
  RoleSet universe = {"A", "B", "C", "D", "E"};
  for (const char* text : {
           "A & B",
           "A | B",
           "(A & B) | C",
           "(A & B) | (C & D)",
           "A & (B | C)",
           "(A | B) & (C | D)",
           "(A & B & C) | (D & E)",
       }) {
    SCOPED_TRACE(text);
    CheckPurge(Policy::Parse(text), universe);
  }
}

TEST(MspTest, PurgeInvariantRandomPolicies) {
  Rng rng(97);
  std::vector<std::string> universe = {"A", "B", "C", "D", "E"};
  RoleSet uniset(universe.begin(), universe.end());
  for (int iter = 0; iter < 25; ++iter) {
    Policy p = RandomPolicy(&rng, universe, 3);
    SCOPED_TRACE(p.ToString());
    CheckPurge(p, uniset);
  }
}

TEST(MspTest, PurgeFailsWhenStillSatisfiable) {
  Policy p = Policy::Parse("(RoleA & RoleB) | RoleC");
  // keep = {RoleC}: policy is satisfiable by {RoleA, RoleB} avoiding RoleC.
  EXPECT_FALSE(Purge(p, {"RoleC"}).ok);
  // keep = {RoleA, RoleC}: every satisfying set hits the kept roles.
  EXPECT_TRUE(Purge(p, {"RoleA", "RoleC"}).ok);
}

}  // namespace
}  // namespace apqa::policy

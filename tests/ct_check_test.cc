// Secret-taint and constant-time checks (crypto/ct.h).
//
// Four layers of assurance:
//
//   1. Compile-time: static detection idioms prove that the variable-time
//      scalar entry points (wNAF ScalarMul, FixedBaseTable::Mul, generator
//      G1Mul/G2Mul) reject SecretFr — the taint cannot reach a fast path
//      without an explicit Declassify().
//   2. Differential: the constant-time primitives (CtEqBytes, CtSelect*,
//      CtCondAssignObj) match naive semantics on adversarial edge cases,
//      and every constant-pattern ladder matches its variable-time twin on
//      edge scalars (0, 1, 2, r-1) and random scalars.
//   3. Trace equivalence (runs under any compiler): the ct_trace hook
//      records the ladder step sequence; distinct secrets must produce
//      byte-identical traces, all the way up through ABS.Sign and
//      CP-ABE KeyGen. A data-dependent skip, extra add, or reordering
//      fails the comparison.
//   4. MSan poisoning (clang + -DAPQA_SANITIZE=memory only): secret scalars
//      are poisoned as uninitialized memory; any secret-dependent branch or
//      table index inside the ladders aborts the test. Compiled out
//      elsewhere.
#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "abs/abs.h"
#include "cpabe/cpabe.h"
#include "crypto/ct.h"
#include "crypto/msm.h"
#include "crypto/pairing.h"

namespace apqa {
namespace {

using crypto::CtCompleteAdd;
using crypto::CtCondAssignObj;
using crypto::CtEq;
using crypto::CtEqBytes;
using crypto::CtEqMask64;
using crypto::CtG1Mul;
using crypto::CtG2Mul;
using crypto::CtInverse;
using crypto::CtPoint;
using crypto::CtPow;
using crypto::CtScalarMul;
using crypto::CtSelectLimbs;
using crypto::CtSelectU64;
using crypto::Fp;
using crypto::Fp2;
using crypto::Fr;
using crypto::G1;
using crypto::G2;
using crypto::GT;
using crypto::Limbs;
using crypto::Rng;
using crypto::SecretFr;
using crypto::u64;

// --- 1. Compile-time taint enforcement --------------------------------------

template <typename P, typename K, typename = void>
struct CanScalarMul : std::false_type {};
template <typename P, typename K>
struct CanScalarMul<
    P, K,
    std::void_t<decltype(std::declval<const P&>().ScalarMul(
        std::declval<const K&>()))>> : std::true_type {};

template <typename T, typename K, typename = void>
struct CanTableMul : std::false_type {};
template <typename T, typename K>
struct CanTableMul<T, K,
                   std::void_t<decltype(std::declval<const T&>().Mul(
                       std::declval<const K&>()))>> : std::true_type {};

template <typename K, typename = void>
struct CanG1Mul : std::false_type {};
template <typename K>
struct CanG1Mul<K, std::void_t<decltype(crypto::G1Mul(
                       std::declval<const K&>()))>> : std::true_type {};

// Public scalars still flow everywhere...
static_assert(CanScalarMul<G1, Fr>::value);
static_assert(CanScalarMul<G2, Fr>::value);
static_assert(CanTableMul<crypto::FixedBaseTable<Fp>, Fr>::value);
static_assert(CanG1Mul<Fr>::value);
// ...but a SecretFr at a variable-time entry point is a compile error.
static_assert(!CanScalarMul<G1, SecretFr>::value);
static_assert(!CanScalarMul<G2, SecretFr>::value);
static_assert(!CanTableMul<crypto::FixedBaseTable<Fp>, SecretFr>::value);
static_assert(!CanTableMul<crypto::FixedBaseTable<Fp2>, SecretFr>::value);
static_assert(!CanG1Mul<SecretFr>::value);
// And the wrapper never converts back implicitly.
static_assert(!std::is_convertible_v<SecretFr, Fr>);
static_assert(!std::is_constructible_v<Fr, SecretFr>);

// --- 2a. Constant-time primitive differential tests -------------------------

TEST(CtPrimitives, EqBytesMatchesMemcmpOnEdgeCases) {
  constexpr std::size_t kN = 32;
  std::array<std::uint8_t, kN> base{}, other{};

  auto check = [&](const std::array<std::uint8_t, kN>& a,
                   const std::array<std::uint8_t, kN>& b) {
    EXPECT_EQ(CtEqBytes(a.data(), b.data(), kN),
              std::memcmp(a.data(), b.data(), kN) == 0);
    EXPECT_EQ(CtEq(a, b), std::memcmp(a.data(), b.data(), kN) == 0);
  };

  // All-zero vs all-zero, all-ones vs all-ones, zero vs ones.
  check(base, other);
  base.fill(0xff);
  other.fill(0xff);
  check(base, other);
  other.fill(0x00);
  check(base, other);

  // Single-bit differences at both extremes of the buffer.
  base.fill(0x00);
  other.fill(0x00);
  other[0] = 0x01;  // lowest bit of first byte
  check(base, other);
  other[0] = 0x00;
  other[kN - 1] = 0x80;  // highest bit of last byte
  check(base, other);

  // Difference only in the middle.
  other[kN - 1] = 0x00;
  other[kN / 2] = 0x10;
  check(base, other);
}

TEST(CtPrimitives, SelectAndCondAssignMatchNaive) {
  const u64 kOnes = ~u64{0};
  EXPECT_EQ(CtSelectU64(kOnes, 7, 9), u64{7});
  EXPECT_EQ(CtSelectU64(0, 7, 9), u64{9});
  EXPECT_EQ(CtEqMask64(0, 0), kOnes);
  EXPECT_EQ(CtEqMask64(~u64{0}, ~u64{0}), kOnes);
  EXPECT_EQ(CtEqMask64(1, 2), u64{0});
  EXPECT_EQ(CtEqMask64(u64{1} << 63, 0), u64{0});

  Limbs<4> a{1, 2, 3, 4}, b{5, 6, 7, 8}, r{};
  CtSelectLimbs<4>(kOnes, a, b, &r);
  EXPECT_EQ(r, a);
  CtSelectLimbs<4>(0, a, b, &r);
  EXPECT_EQ(r, b);
  // Aliasing: output may be one of the inputs.
  r = a;
  CtSelectLimbs<4>(0, r, b, &r);
  EXPECT_EQ(r, b);

  Fr x = Fr::FromU64(42), y = Fr::FromU64(1337);
  Fr z = x;
  CtCondAssignObj(&z, y, 0);
  EXPECT_EQ(z, x);
  CtCondAssignObj(&z, y, kOnes);
  EXPECT_EQ(z, y);
}

TEST(CtPrimitives, FieldComparisonsStillCorrect) {
  // The branch-free IsZero/== rewrites in prime_field.h must keep exact
  // semantics.
  EXPECT_TRUE(Fr::Zero().IsZero());
  EXPECT_FALSE(Fr::One().IsZero());
  EXPECT_TRUE(Fr::One() == Fr::FromU64(1));
  EXPECT_FALSE(Fr::One() == Fr::Zero());
  Fr r_minus_1 = Fr::Zero() - Fr::One();
  EXPECT_TRUE(r_minus_1 + Fr::One() == Fr::Zero());
}

// --- 2b. Ladder vs variable-time differential -------------------------------

std::vector<Fr> EdgeAndRandomScalars() {
  Rng rng(0x5ec7e7);
  std::vector<Fr> ks = {Fr::Zero(), Fr::One(), Fr::FromU64(2),
                        Fr::Zero() - Fr::One()};  // r - 1
  for (int i = 0; i < 6; ++i) ks.push_back(rng.NextFr());
  return ks;
}

TEST(CtKernels, FixedBaseMulCtMatchesVariableTimeMul) {
  const auto& g1_tab = crypto::G1GeneratorTable();
  const auto& g2_tab = crypto::G2GeneratorTable();
  for (const Fr& k : EdgeAndRandomScalars()) {
    EXPECT_EQ(g1_tab.MulCt(SecretFr(k)), g1_tab.Mul(k));
    EXPECT_EQ(g2_tab.MulCt(SecretFr(k)), g2_tab.Mul(k));
  }
}

TEST(CtKernels, VariableBaseCtScalarMulMatchesWnaf) {
  Rng rng(0xba5e);
  G1 p1 = crypto::G1Mul(rng.NextNonZeroFr());
  G2 p2 = crypto::G2Mul(rng.NextNonZeroFr());
  for (const Fr& k : EdgeAndRandomScalars()) {
    EXPECT_EQ(CtScalarMul(p1, SecretFr(k)), p1.ScalarMul(k));
    EXPECT_EQ(CtScalarMul(p2, SecretFr(k)), p2.ScalarMul(k));
  }
  // Identity base: k * O == O for every k.
  EXPECT_TRUE(CtScalarMul(G1::Infinity(), SecretFr(Fr::FromU64(5)))
                  .IsInfinity());
}

TEST(CtKernels, GeneratorCtMulsMatch) {
  for (const Fr& k : EdgeAndRandomScalars()) {
    EXPECT_EQ(CtG1Mul(SecretFr(k)), crypto::G1Mul(k));
    EXPECT_EQ(CtG2Mul(SecretFr(k)), crypto::G2Mul(k));
  }
}

TEST(CtKernels, CtPowMatchesVariableTimePow) {
  Rng rng(0x6e57);
  GT base = crypto::Pairing(crypto::G1Mul(rng.NextNonZeroFr()),
                            crypto::G2Mul(rng.NextNonZeroFr()));
  for (const Fr& k : EdgeAndRandomScalars()) {
    Limbs<4> e = k.ToCanonical();
    GT expected = base.Pow(std::span<const u64>(e.data(), 4));
    EXPECT_EQ(CtPow(base, SecretFr(k)), expected);
  }
}

TEST(CtKernels, CtInverseMatchesEgcdInverse) {
  Rng rng(0x111e);
  for (const Fr& k : EdgeAndRandomScalars()) {
    // declassify: test-only comparison of a public differential result
    EXPECT_EQ(CtInverse(SecretFr(k)).Declassify(), k.Inverse());
  }
  EXPECT_TRUE(CtInverse(SecretFr(Fr::Zero())).Declassify().IsZero());
  Fr k = rng.NextNonZeroFr();
  // declassify: test-only check that k * k^-1 == 1
  EXPECT_EQ(CtInverse(SecretFr(k)).Declassify() * k, Fr::One());
}

TEST(CtKernels, CompleteAdditionHandlesExceptionalInputs) {
  Rng rng(0xadd);
  G1 p = crypto::G1Mul(rng.NextNonZeroFr());
  const Fp& b3 = crypto::CtCurveB3<Fp>::Get();
  CtPoint<Fp> cp = crypto::CtFromJacobian(p);
  CtPoint<Fp> id = CtPoint<Fp>::Identity();

  // P + P (the doubling case that breaks incomplete formulas).
  EXPECT_EQ(crypto::CtToJacobian(CtCompleteAdd(cp, cp, b3)), p.Double());
  // P + (-P) = O.
  CtPoint<Fp> neg = {cp.x, -cp.y, cp.z};
  EXPECT_TRUE(crypto::CtToJacobian(CtCompleteAdd(cp, neg, b3)).IsInfinity());
  // P + O = P, O + P = P, O + O = O.
  EXPECT_EQ(crypto::CtToJacobian(CtCompleteAdd(cp, id, b3)), p);
  EXPECT_EQ(crypto::CtToJacobian(CtCompleteAdd(id, cp, b3)), p);
  EXPECT_TRUE(crypto::CtToJacobian(CtCompleteAdd(id, id, b3)).IsInfinity());
}

TEST(CtKernels, SecretArithmeticMatchesPlain) {
  Rng rng(0xa51);
  Fr a = rng.NextFr(), b = rng.NextFr();
  SecretFr sa(a), sb(b);
  // declassify: test-only differential checks of wrapper arithmetic
  EXPECT_EQ((sa + sb).Declassify(), a + b);
  EXPECT_EQ((sa - sb).Declassify(), a - b);
  EXPECT_EQ((sa * sb).Declassify(), a * b);
  EXPECT_EQ((sa * b).Declassify(), a * b);
  EXPECT_EQ((b * sa).Declassify(), b * a);
  EXPECT_EQ((-sa).Declassify(), -a);
}

TEST(CtKernels, SecretRngDrawsMatchPlainStream) {
  Rng plain(99), secret(99);
  for (int i = 0; i < 8; ++i) {
    // declassify: test-only check that the taint-typed draws consume the
    // identical ChaCha stream
    EXPECT_EQ(secret.NextSecretFr().Declassify(), plain.NextFr());
  }
  Rng plain2(7), secret2(7);
  for (int i = 0; i < 8; ++i) {
    // declassify: as above, for the non-zero variant
    EXPECT_EQ(secret2.NextNonZeroSecretFr().Declassify(),
              plain2.NextNonZeroFr());
  }
}

// --- 3. Trace-equivalence oracle --------------------------------------------

std::vector<std::pair<char, unsigned>>& Trace() {
  static std::vector<std::pair<char, unsigned>> t;
  return t;
}

void RecordTrace(char op, unsigned step) { Trace().emplace_back(op, step); }

struct TraceCapture {
  TraceCapture() {
    Trace().clear();
    crypto::ct_trace::hook = &RecordTrace;
  }
  ~TraceCapture() { crypto::ct_trace::hook = nullptr; }
  std::vector<std::pair<char, unsigned>> Take() {
    auto t = std::move(Trace());
    Trace().clear();
    return t;
  }
};

TEST(CtTrace, FixedBaseLadderTraceIsScalarIndependent) {
  TraceCapture cap;
  const auto& tab = crypto::G1GeneratorTable();
  std::vector<std::pair<char, unsigned>> reference;
  bool first = true;
  for (const Fr& k : EdgeAndRandomScalars()) {
    (void)tab.MulCt(SecretFr(k));
    auto t = cap.Take();
    EXPECT_FALSE(t.empty());
    if (first) {
      reference = std::move(t);
      first = false;
    } else {
      EXPECT_EQ(t, reference) << "fixed-base ladder trace depends on scalar";
    }
  }
}

TEST(CtTrace, VariableBaseLadderTraceIsScalarIndependent) {
  TraceCapture cap;
  Rng rng(0x7ace);
  G1 p = crypto::G1Mul(rng.NextNonZeroFr());
  std::vector<std::pair<char, unsigned>> reference;
  bool first = true;
  for (const Fr& k : EdgeAndRandomScalars()) {
    (void)CtScalarMul(p, SecretFr(k));
    auto t = cap.Take();
    EXPECT_FALSE(t.empty());
    if (first) {
      reference = std::move(t);
      first = false;
    } else {
      EXPECT_EQ(t, reference) << "variable-base ladder trace depends on scalar";
    }
  }
}

TEST(CtTrace, GtPowTraceIsExponentIndependent) {
  TraceCapture cap;
  Rng rng(0x9077);
  GT base = crypto::Pairing(crypto::G1Mul(rng.NextNonZeroFr()),
                            crypto::G2Mul(rng.NextNonZeroFr()));
  std::vector<std::pair<char, unsigned>> reference;
  bool first = true;
  for (const Fr& k : EdgeAndRandomScalars()) {
    (void)CtPow(base, SecretFr(k));
    auto t = cap.Take();
    EXPECT_EQ(t.size(), 255u);
    if (first) {
      reference = std::move(t);
      first = false;
    } else {
      EXPECT_EQ(t, reference) << "GT ladder trace depends on exponent";
    }
  }
}

// End-to-end: two independently keyed signers producing a signature over
// the same predicate/attribute structure must drive the ladders
// identically — only key material and blinding scalars differ between the
// runs, so any trace divergence is a secret-dependent pattern.
TEST(CtTrace, AbsSignTraceIsKeyAndBlindingIndependent) {
  using abs::Abs;
  const policy::Policy pred =
      policy::Policy::Parse("(doctor & cardiology) | admin");
  const policy::RoleSet roles = {"doctor", "cardiology"};
  const std::vector<std::uint8_t> msg = {1, 2, 3};

  auto trace_one_signer = [&](u64 seed) {
    Rng rng(seed);
    abs::MasterKey msk;
    abs::VerifyKey mvk;
    Abs::Setup(&rng, &msk, &mvk);
    abs::SigningKey sk = Abs::KeyGen(msk, roles, &rng);
    TraceCapture cap;
    auto sig = Abs::Sign(mvk, sk, msg, pred, &rng);
    EXPECT_TRUE(sig.has_value());
    return cap.Take();
  };

  auto t1 = trace_one_signer(101);
  auto t2 = trace_one_signer(20202);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2) << "ABS.Sign ladder trace depends on key material";
}

TEST(CtTrace, CpabeKeyGenTraceIsKeyIndependent) {
  using cpabe::CpAbe;
  const policy::RoleSet attrs = {"doctor", "nurse"};
  auto trace_one = [&](u64 seed) {
    Rng rng(seed);
    cpabe::MasterKey mk;
    cpabe::PublicKey pk;
    CpAbe::Setup(&rng, &mk, &pk);
    TraceCapture cap;
    (void)CpAbe::KeyGen(mk, pk, attrs, &rng);
    return cap.Take();
  };
  auto t1 = trace_one(31337);
  auto t2 = trace_one(4242);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2) << "CP-ABE KeyGen ladder trace depends on key material";
}

// --- 4. MSan poisoning harness (clang -fsanitize=memory builds only) --------

#ifdef APQA_CT_MSAN

TEST(CtMsan, PoisonedSecretSurvivesFieldArithmetic) {
  Rng rng(1);
  Fr k = rng.NextFr();
  Fr pub = rng.NextFr();
  SecretFr sk(k);
  CtPoison(&sk, sizeof(sk));
  SecretFr combined = sk * pub + sk;
  SecretFr inv = CtInverse(combined);
  CtDeclassifyMem(&inv, sizeof(inv));
  // declassify: MSan oracle — compare against the unpoisoned reference
  EXPECT_EQ(inv.Declassify(), (k * pub + k).CtInverse());
}

TEST(CtMsan, PoisonedScalarFixedBaseLadderIsBranchAndIndexClean) {
  Rng rng(2);
  Fr k = rng.NextFr();
  SecretFr sk(k);
  CtPoison(&sk, sizeof(sk));
  G1 r = crypto::G1GeneratorTable().MulCt(sk);
  CtDeclassifyMem(&r, sizeof(r));
  EXPECT_EQ(r, crypto::G1Mul(k));
}

TEST(CtMsan, PoisonedScalarVariableBaseLadderIsBranchAndIndexClean) {
  Rng rng(3);
  G1 base = crypto::G1Mul(rng.NextNonZeroFr());
  Fr k = rng.NextFr();
  SecretFr sk(k);
  CtPoison(&sk, sizeof(sk));
  G1 r = CtScalarMul(base, sk);
  CtDeclassifyMem(&r, sizeof(r));
  EXPECT_EQ(r, base.ScalarMul(k));
}

TEST(CtMsan, PoisonedExponentGtLadderIsBranchClean) {
  Rng rng(4);
  GT base = crypto::Pairing(crypto::G1Mul(rng.NextNonZeroFr()),
                            crypto::G2Mul(rng.NextNonZeroFr()));
  Fr k = rng.NextFr();
  SecretFr sk(k);
  CtPoison(&sk, sizeof(sk));
  GT r = CtPow(base, sk);
  CtDeclassifyMem(&r, sizeof(r));
  Limbs<4> e = k.ToCanonical();
  EXPECT_EQ(r, base.Pow(std::span<const u64>(e.data(), 4)));
}

#endif  // APQA_CT_MSAN

}  // namespace
}  // namespace apqa

// End-to-end protocol tests: DO → SP → User for equality, range, and join
// query authentication over the AP²G-tree, including soundness (tamper
// rejection), completeness, and the zero-knowledge indistinguishability of
// inaccessible vs. non-existent records.
#include <gtest/gtest.h>

#include "core/kd_tree.h"
#include "core/parallel_verify.h"
#include "core/system.h"

namespace apqa::core {
namespace {

Record Rec(std::uint32_t key, const std::string& value, const char* pol) {
  return Record{Point{key}, value, Policy::Parse(pol)};
}

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Domain domain{/*dims=*/1, /*bits=*/4};  // keys 0..15
    owner_ = std::make_unique<DataOwner>(RoleSet{"RoleA", "RoleB", "RoleC"},
                                         domain, 4242);
    records_ = {
        Rec(1, "v1", "RoleA"),
        Rec(3, "v3", "RoleA & RoleB"),
        Rec(4, "v4", "RoleC"),
        Rec(7, "v7", "(RoleA & RoleB) | RoleC"),
        Rec(9, "v9", "RoleB"),
        Rec(12, "v12", "RoleC & RoleB"),
    };
    sp_ = std::make_unique<ServiceProvider>(owner_->keys(),
                                            owner_->BuildAds(records_));
    user_ab_ = std::make_unique<User>(owner_->keys(),
                                      owner_->EnrollUser({"RoleA", "RoleB"}));
    user_c_ = std::make_unique<User>(owner_->keys(),
                                     owner_->EnrollUser({"RoleC"}));
  }

  std::unique_ptr<DataOwner> owner_;
  std::vector<Record> records_;
  std::unique_ptr<ServiceProvider> sp_;
  std::unique_ptr<User> user_ab_, user_c_;
};

TEST_F(SystemTest, EqualityAccessible) {
  Vo vo = sp_->EqualityQuery(Point{1}, user_ab_->roles());
  Record result;
  bool accessible = false;
  std::string error;
  ASSERT_TRUE(user_ab_->VerifyEquality(Point{1}, vo, &result, &accessible,
                                       &error))
      << error;
  EXPECT_TRUE(accessible);
  EXPECT_EQ(result.value, "v1");
}

TEST_F(SystemTest, EqualityInaccessibleAndAbsentLookAlike) {
  // Key 4 exists but needs RoleC; key 5 does not exist. For user {A,B} both
  // must verify as "inaccessible" with the same entry shape.
  for (std::uint32_t key : {4u, 5u}) {
    Vo vo = sp_->EqualityQuery(Point{key}, user_ab_->roles());
    ASSERT_EQ(vo.entries.size(), 1u);
    EXPECT_TRUE(
        std::holds_alternative<InaccessibleRecordEntry>(vo.entries[0]));
    bool accessible = true;
    std::string error;
    ASSERT_TRUE(user_ab_->VerifyEquality(Point{key}, vo, nullptr, &accessible,
                                         &error))
        << "key " << key << ": " << error;
    EXPECT_FALSE(accessible);
  }
}

TEST_F(SystemTest, EqualityVoDoesNotMatchOtherKey) {
  Vo vo = sp_->EqualityQuery(Point{1}, user_ab_->roles());
  bool accessible;
  EXPECT_FALSE(user_ab_->VerifyEquality(Point{2}, vo, nullptr, &accessible));
}

TEST_F(SystemTest, RangeQueryReturnsAccessibleRecords) {
  Box range{Point{1}, Point{9}};
  Vo vo = sp_->RangeQuery(range, user_ab_->roles());
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(user_ab_->VerifyRange(range, vo, &results, &error)) << error;
  // user {A,B} can access: 1 (A), 3 (A&B), 7 ((A&B)|C), 9 (B) — not 4 (C).
  std::set<std::uint32_t> keys;
  for (const auto& r : results) keys.insert(r.key[0]);
  EXPECT_EQ(keys, (std::set<std::uint32_t>{1, 3, 7, 9}));
}

TEST_F(SystemTest, RangeQueryOtherUser) {
  Box range{Point{1}, Point{9}};
  Vo vo = sp_->RangeQuery(range, user_c_->roles());
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(user_c_->VerifyRange(range, vo, &results, &error)) << error;
  std::set<std::uint32_t> keys;
  for (const auto& r : results) keys.insert(r.key[0]);
  EXPECT_EQ(keys, (std::set<std::uint32_t>{4, 7}));
}

TEST_F(SystemTest, RangeAggregatesInaccessibleSubtrees) {
  // Full-domain query: inaccessible regions should be summarized by
  // internal-node APS entries, so the VO has fewer entries than cells.
  Box range{Point{0}, Point{15}};
  Vo vo = sp_->RangeQuery(range, user_ab_->roles());
  EXPECT_LT(vo.entries.size(), 16u);
  std::string error;
  ASSERT_TRUE(user_ab_->VerifyRange(range, vo, nullptr, &error)) << error;
  bool has_box_entry = false;
  for (const auto& e : vo.entries) {
    has_box_entry |= std::holds_alternative<InaccessibleBoxEntry>(e);
  }
  EXPECT_TRUE(has_box_entry);
}

TEST_F(SystemTest, RangeRejectsDroppedEntry) {
  Box range{Point{1}, Point{9}};
  Vo vo = sp_->RangeQuery(range, user_ab_->roles());
  Vo bad = vo;
  bad.entries.pop_back();  // incomplete coverage
  EXPECT_FALSE(user_ab_->VerifyRange(range, bad, nullptr));
}

TEST_F(SystemTest, RangeRejectsDroppedResult) {
  Box range{Point{1}, Point{9}};
  Vo vo = sp_->RangeQuery(range, user_ab_->roles());
  Vo bad;
  for (const auto& e : vo.entries) {
    if (const auto* res = std::get_if<ResultEntry>(&e);
        res != nullptr && res->key == Point{3}) {
      continue;  // SP tries to hide record 3
    }
    bad.entries.push_back(e);
  }
  EXPECT_FALSE(user_ab_->VerifyRange(range, bad, nullptr));
}

TEST_F(SystemTest, RangeRejectsTamperedValue) {
  Box range{Point{1}, Point{9}};
  Vo vo = sp_->RangeQuery(range, user_ab_->roles());
  Vo bad = vo;
  for (auto& e : bad.entries) {
    if (auto* res = std::get_if<ResultEntry>(&e)) {
      res->value = "forged";
      break;
    }
  }
  EXPECT_FALSE(user_ab_->VerifyRange(range, bad, nullptr));
}

TEST_F(SystemTest, RangeRejectsResultPresentedAsInaccessible) {
  // The SP derives an APS signature for an accessible record and presents
  // the record as inaccessible — unforgeability must prevent this, since
  // Relax fails when the user's roles satisfy the policy.
  Box range{Point{1}, Point{9}};
  Vo vo = sp_->RangeQuery(range, user_ab_->roles());
  // Swap a result entry for a record-APS entry faked from another user's
  // view: query as RoleC user and splice their entry for key 3 (which is
  // inaccessible to them but accessible to {A,B}).
  Vo vo_c = sp_->RangeQuery(range, user_c_->roles());
  Vo bad;
  for (const auto& e : vo.entries) {
    if (const auto* res = std::get_if<ResultEntry>(&e);
        res != nullptr && res->key == Point{3}) {
      for (const auto& ec : vo_c.entries) {
        if (EntryRegion(ec).Contains(Point{3}) &&
            std::holds_alternative<InaccessibleRecordEntry>(ec)) {
          bad.entries.push_back(ec);
        }
      }
      continue;
    }
    bad.entries.push_back(e);
  }
  // Either coverage breaks (RoleC view aggregated differently) or the APS
  // signature fails under user_ab's super policy. It must not verify.
  EXPECT_FALSE(user_ab_->VerifyRange(range, bad, nullptr));
}

TEST_F(SystemTest, BasicRangeMatchesTreeRange) {
  Box range{Point{2}, Point{8}};
  Vo tree_vo = sp_->RangeQuery(range, user_ab_->roles());
  Vo basic_vo = sp_->BasicRangeQuery(range, user_ab_->roles());
  EXPECT_EQ(basic_vo.entries.size(), 7u);  // one per cell
  std::vector<Record> r1, r2;
  std::string error;
  ASSERT_TRUE(user_ab_->VerifyRange(range, tree_vo, &r1, &error)) << error;
  ASSERT_TRUE(user_ab_->VerifyRange(range, basic_vo, &r2, &error)) << error;
  auto key_of = [](const Record& r) { return r.key[0]; };
  std::set<std::uint32_t> k1, k2;
  for (const auto& r : r1) k1.insert(key_of(r));
  for (const auto& r : r2) k2.insert(key_of(r));
  EXPECT_EQ(k1, k2);
  // The tree VO is no larger than the basic VO.
  EXPECT_LE(tree_vo.entries.size(), basic_vo.entries.size());
}

TEST_F(SystemTest, VoSerializationRoundTrip) {
  Box range{Point{1}, Point{9}};
  Vo vo = sp_->RangeQuery(range, user_ab_->roles());
  common::ByteWriter w;
  vo.Serialize(&w);
  common::ByteReader r(w.data());
  Vo back = Vo::Deserialize(&r);
  ASSERT_TRUE(r.ok());
  std::string error;
  EXPECT_TRUE(user_ab_->VerifyRange(range, back, nullptr, &error)) << error;
}

TEST_F(SystemTest, SealedEqualityQuery) {
  cpabe::Envelope env = sp_->SealedEqualityQuery(Point{1}, user_ab_->roles());
  Record result;
  bool accessible = false;
  std::string error;
  ASSERT_TRUE(user_ab_->OpenAndVerifyEquality(Point{1}, env, &result,
                                              &accessible, &error))
      << error;
  EXPECT_TRUE(accessible);
  EXPECT_EQ(result.value, "v1");
  EXPECT_FALSE(
      user_c_->OpenAndVerifyEquality(Point{1}, env, nullptr, nullptr));
  EXPECT_GT(env.SerializedSize(), 0u);
}

TEST_F(SystemTest, SealedRangeOnlyOpensForClaimedRoles) {
  Box range{Point{1}, Point{6}};
  cpabe::Envelope env = sp_->SealedRangeQuery(range, user_ab_->roles());
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(user_ab_->OpenAndVerifyRange(range, env, &results, &error))
      << error;
  // A RoleC user impersonating {A,B} cannot open the response.
  EXPECT_FALSE(user_c_->OpenAndVerifyRange(range, env, nullptr));
}

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Domain domain{1, 4};
    owner_ = std::make_unique<DataOwner>(RoleSet{"RoleA", "RoleB"}, domain,
                                         777);
    std::vector<Record> r_records = {
        Rec(1, "r1", "RoleA"),
        Rec(3, "r3", "RoleA"),
        Rec(5, "r5", "RoleB"),
        Rec(9, "r9", "RoleA & RoleB"),
    };
    std::vector<Record> s_records = {
        Rec(1, "s1", "RoleA"),
        Rec(4, "s4", "RoleB"),
        Rec(9, "s9", "RoleB"),
        Rec(11, "s11", "RoleA"),
    };
    sp_ = std::make_unique<ServiceProvider>(owner_->keys(),
                                            owner_->BuildAds(r_records));
    sp_->AttachJoinTable(owner_->BuildAds(s_records));
    user_a_ = std::make_unique<User>(owner_->keys(),
                                     owner_->EnrollUser({"RoleA"}));
    user_ab_ = std::make_unique<User>(owner_->keys(),
                                      owner_->EnrollUser({"RoleA", "RoleB"}));
  }

  std::unique_ptr<DataOwner> owner_;
  std::unique_ptr<ServiceProvider> sp_;
  std::unique_ptr<User> user_a_, user_ab_;
};

TEST_F(JoinTest, JoinReturnsAccessiblePairs) {
  Box range{Point{0}, Point{15}};
  JoinVo vo = sp_->JoinQuery(range, user_ab_->roles());
  std::vector<std::pair<Record, Record>> results;
  std::string error;
  ASSERT_TRUE(user_ab_->VerifyJoin(range, vo, &results, &error)) << error;
  // Matching keys with both sides real: 1 and 9; both accessible to {A,B}.
  std::set<std::uint32_t> keys;
  for (const auto& [r, s] : results) keys.insert(r.key[0]);
  EXPECT_EQ(keys, (std::set<std::uint32_t>{1, 9}));
}

TEST_F(JoinTest, JoinFiltersInaccessibleSides) {
  Box range{Point{0}, Point{15}};
  JoinVo vo = sp_->JoinQuery(range, user_a_->roles());
  std::vector<std::pair<Record, Record>> results;
  std::string error;
  ASSERT_TRUE(user_a_->VerifyJoin(range, vo, &results, &error)) << error;
  // Key 9 pair exists but R side needs RoleB: only key 1 joins for RoleA.
  std::set<std::uint32_t> keys;
  for (const auto& [r, s] : results) keys.insert(r.key[0]);
  EXPECT_EQ(keys, (std::set<std::uint32_t>{1}));
}

TEST_F(JoinTest, JoinRejectsDroppedPair) {
  Box range{Point{0}, Point{15}};
  JoinVo vo = sp_->JoinQuery(range, user_ab_->roles());
  JoinVo bad = vo;
  ASSERT_FALSE(bad.pairs.empty());
  bad.pairs.pop_back();
  EXPECT_FALSE(user_ab_->VerifyJoin(range, bad, nullptr));
}

TEST_F(JoinTest, JoinRejectsMismatchedPairKeys) {
  Box range{Point{0}, Point{15}};
  JoinVo vo = sp_->JoinQuery(range, user_ab_->roles());
  ASSERT_GE(vo.pairs.size(), 2u);
  JoinVo bad = vo;
  std::swap(bad.pairs[0].s, bad.pairs[1].s);
  EXPECT_FALSE(user_ab_->VerifyJoin(range, bad, nullptr));
}

TEST_F(JoinTest, JoinSerializationRoundTrip) {
  Box range{Point{0}, Point{15}};
  JoinVo vo = sp_->JoinQuery(range, user_ab_->roles());
  common::ByteWriter w;
  vo.Serialize(&w);
  common::ByteReader r(w.data());
  JoinVo back = JoinVo::Deserialize(&r);
  std::string error;
  EXPECT_TRUE(user_ab_->VerifyJoin(range, back, nullptr, &error)) << error;
  EXPECT_EQ(vo.SerializedSize(), w.size());
}

TEST_F(JoinTest, BasicJoinMatchesTreeJoin) {
  Box range{Point{0}, Point{15}};
  JoinVo tree_vo = sp_->JoinQuery(range, user_ab_->roles());
  JoinVo basic_vo = sp_->BasicJoinQuery(range, user_ab_->roles());
  std::vector<std::pair<Record, Record>> r1, r2;
  std::string error;
  ASSERT_TRUE(user_ab_->VerifyJoin(range, tree_vo, &r1, &error)) << error;
  ASSERT_TRUE(user_ab_->VerifyJoin(range, basic_vo, &r2, &error)) << error;
  EXPECT_EQ(r1.size(), r2.size());
  EXPECT_LE(tree_vo.SerializedSize(), basic_vo.SerializedSize());
}

class MultiDimTest : public ::testing::Test {};

TEST_F(MultiDimTest, TwoDimensionalRange) {
  Domain domain{2, 2};  // 4x4 grid
  DataOwner owner({"RoleA", "RoleB"}, domain, 99);
  std::vector<Record> records = {
      Record{Point{0, 0}, "a", Policy::Parse("RoleA")},
      Record{Point{1, 2}, "b", Policy::Parse("RoleB")},
      Record{Point{2, 1}, "c", Policy::Parse("RoleA & RoleB")},
      Record{Point{3, 3}, "d", Policy::Parse("RoleA | RoleB")},
  };
  ServiceProvider sp(owner.keys(), owner.BuildAds(records));
  User user(owner.keys(), owner.EnrollUser({"RoleA"}));

  Box range{Point{0, 0}, Point{2, 2}};
  Vo vo = sp.RangeQuery(range, user.roles());
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(user.VerifyRange(range, vo, &results, &error)) << error;
  std::set<std::string> values;
  for (const auto& r : results) values.insert(r.value);
  EXPECT_EQ(values, (std::set<std::string>{"a"}));

  // Records b (RoleB) and c (A&B) are inside but inaccessible; d outside.
  Box range2{Point{0, 0}, Point{3, 3}};
  Vo vo2 = sp.RangeQuery(range2, user.roles());
  results.clear();
  ASSERT_TRUE(user.VerifyRange(range2, vo2, &results, &error)) << error;
  values.clear();
  for (const auto& r : results) values.insert(r.value);
  EXPECT_EQ(values, (std::set<std::string>{"a", "d"}));
}

// The §8.2 parallel path: ADS construction and SP-side relaxation run on a
// thread pool. Results must be interchangeable with the serial path, and
// the test doubles as the TSan workload in scripts/check.sh.
TEST(ParallelPathTest, ThreadedBuildAndQueriesMatchSerial) {
  Domain domain{/*dims=*/1, /*bits=*/5};
  DataOwner owner(RoleSet{"RoleA", "RoleB"}, domain, 777);
  std::vector<Record> records;
  for (std::uint32_t k = 0; k < 24; ++k) {
    records.push_back(Rec(k, "v" + std::to_string(k),
                          (k % 3 == 0) ? "RoleA" : "RoleA & RoleB"));
  }

  ThreadPool pool(4);
  ServiceProvider sp_par(owner.keys(), owner.BuildAds(records, &pool),
                         /*threads=*/4);
  User user(owner.keys(), owner.EnrollUser({"RoleA"}));

  Box range{Point{2}, Point{19}};
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(user.VerifyRange(range, sp_par.RangeQuery(range, user.roles()),
                               &results, &error))
      << error;
  std::set<std::string> got;
  for (const auto& r : results) got.insert(r.value);

  ServiceProvider sp_ser(owner.keys(), owner.BuildAds(records),
                         /*threads=*/1);
  results.clear();
  ASSERT_TRUE(user.VerifyRange(range, sp_ser.RangeQuery(range, user.roles()),
                               &results, &error))
      << error;
  std::set<std::string> want;
  for (const auto& r : results) want.insert(r.value);
  EXPECT_EQ(got, want);

  // Equality through the pool-backed SP as well.
  Record rec;
  bool accessible = false;
  ASSERT_TRUE(user.VerifyEquality(
      Point{3}, sp_par.EqualityQuery(Point{3}, user.roles()), &rec,
      &accessible, &error))
      << error;
  EXPECT_TRUE(accessible);
  EXPECT_EQ(rec.value, "v3");
}

// User-side fan-out: the same VO verified serially and over a pool must
// yield an identical VerifyResult (code, entry index, detail) and identical
// emitted records, both for valid and tampered VOs. Also part of the TSan
// workload in scripts/check.sh.
TEST(ParallelPathTest, ParallelVerifyMatchesSerialByteForByte) {
  Domain domain{/*dims=*/1, /*bits=*/5};
  DataOwner owner(RoleSet{"RoleA", "RoleB"}, domain, 4321);
  std::vector<Record> records;
  for (std::uint32_t k = 0; k < 24; ++k) {
    records.push_back(Rec(k, "v" + std::to_string(k),
                          (k % 3 == 0) ? "RoleA" : "RoleA & RoleB"));
  }
  ServiceProvider sp(owner.keys(), owner.BuildAds(records));
  UserCredentials creds = owner.EnrollUser({"RoleA"});
  const SystemKeys& keys = owner.keys();

  Box range{Point{1}, Point{20}};
  Vo vo = sp.RangeQuery(range, creds.roles);
  ThreadPool pool(4);

  auto run = [&](const Vo& v, ThreadPool* p, std::vector<Record>* out) {
    return VerifyRangeVoEx(keys.mvk, keys.domain, range, creds.roles,
                           keys.universe, v, out, /*exact_pairings=*/false, p);
  };
  auto same = [](const VerifyResult& a, const VerifyResult& b) {
    return a.code == b.code && a.entry_index == b.entry_index &&
           a.detail == b.detail;
  };
  auto same_records = [](const std::vector<Record>& a,
                         const std::vector<Record>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].key != b[i].key || a[i].value != b[i].value) return false;
    }
    return true;
  };

  std::vector<Record> serial_out, pooled_out;
  VerifyResult serial = run(vo, nullptr, &serial_out);
  VerifyResult pooled = run(vo, &pool, &pooled_out);
  EXPECT_TRUE(serial.ok()) << serial.ToString();
  EXPECT_TRUE(same(serial, pooled))
      << serial.ToString() << " vs " << pooled.ToString();
  EXPECT_TRUE(same_records(serial_out, pooled_out));
  EXPECT_FALSE(serial_out.empty());

  // Tamper with one accessible record's value: the APP signature check for
  // that entry fails, and both paths must report the same entry with the
  // same partial results.
  Vo bad = vo;
  for (auto& entry : bad.entries) {
    if (auto* res = std::get_if<ResultEntry>(&entry)) {
      res->value += "-tampered";
      break;
    }
  }
  serial_out.clear();
  pooled_out.clear();
  VerifyResult serial_bad = run(bad, nullptr, &serial_out);
  VerifyResult pooled_bad = run(bad, &pool, &pooled_out);
  EXPECT_FALSE(serial_bad.ok());
  EXPECT_EQ(serial_bad.code, VerifyCode::kBadSignature);
  EXPECT_TRUE(same(serial_bad, pooled_bad))
      << serial_bad.ToString() << " vs " << pooled_bad.ToString();
  EXPECT_TRUE(same_records(serial_out, pooled_out));

  // The User facade with threads > 1 agrees with the serial facade.
  User user_par(owner.keys(), creds, /*threads=*/4);
  User user_ser(owner.keys(), creds);
  std::vector<Record> par_results, ser_results;
  std::string error;
  ASSERT_TRUE(user_par.VerifyRange(range, vo, &par_results, &error)) << error;
  ASSERT_TRUE(user_ser.VerifyRange(range, vo, &ser_results, &error)) << error;
  EXPECT_TRUE(same_records(par_results, ser_results));
  EXPECT_FALSE(user_par.VerifyRange(range, bad, nullptr, &error));
}

// Join verification over a pool: diagnostics and emitted pairs must match
// the serial path, including after tampering with one side of a pair.
TEST(ParallelPathTest, ParallelJoinVerifyMatchesSerial) {
  Domain domain{/*dims=*/1, /*bits=*/4};
  DataOwner owner(RoleSet{"RoleA", "RoleB"}, domain, 99);
  std::vector<Record> r_records, s_records;
  for (std::uint32_t k = 0; k < 12; ++k) {
    r_records.push_back(Rec(k, "r" + std::to_string(k),
                            (k % 4 == 1) ? "RoleB" : "RoleA"));
    s_records.push_back(Rec(k, "s" + std::to_string(k), "RoleA"));
  }
  ServiceProvider sp(owner.keys(), owner.BuildAds(r_records));
  sp.AttachJoinTable(owner.BuildAds(s_records));
  UserCredentials creds = owner.EnrollUser({"RoleA"});
  const SystemKeys& keys = owner.keys();

  Box range{Point{0}, Point{11}};
  JoinVo vo = sp.JoinQuery(range, creds.roles);
  ThreadPool pool(4);

  auto run = [&](const JoinVo& v, ThreadPool* p,
                 std::vector<std::pair<Record, Record>>* out) {
    return VerifyJoinVoEx(keys.mvk, keys.domain, range, creds.roles,
                          keys.universe, v, out, /*exact_pairings=*/false, p);
  };

  std::vector<std::pair<Record, Record>> serial_out, pooled_out;
  VerifyResult serial = run(vo, nullptr, &serial_out);
  VerifyResult pooled = run(vo, &pool, &pooled_out);
  EXPECT_TRUE(serial.ok()) << serial.ToString();
  EXPECT_EQ(serial.code, pooled.code);
  EXPECT_EQ(serial.entry_index, pooled.entry_index);
  EXPECT_EQ(serial.detail, pooled.detail);
  ASSERT_EQ(serial_out.size(), pooled_out.size());
  EXPECT_FALSE(serial_out.empty());

  ASSERT_FALSE(vo.pairs.empty());
  JoinVo bad = vo;
  bad.pairs.back().s.value += "-tampered";
  serial_out.clear();
  pooled_out.clear();
  VerifyResult serial_bad = run(bad, nullptr, &serial_out);
  VerifyResult pooled_bad = run(bad, &pool, &pooled_out);
  EXPECT_FALSE(serial_bad.ok());
  EXPECT_EQ(serial_bad.code, VerifyCode::kBadSignature);
  EXPECT_EQ(serial_bad.code, pooled_bad.code);
  EXPECT_EQ(serial_bad.entry_index, pooled_bad.entry_index);
  EXPECT_EQ(serial_bad.detail, pooled_bad.detail);
  EXPECT_EQ(serial_out.size(), pooled_out.size());
}

// --- Whole-VO batched verification vs the retained per-signature path ---

bool SameResult(const VerifyResult& a, const VerifyResult& b) {
  return a.code == b.code && a.entry_index == b.entry_index &&
         a.detail == b.detail;
}

bool SameRecords(const std::vector<Record>& a, const std::vector<Record>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key || a[i].value != b[i].value) return false;
  }
  return true;
}

// The default verify path now folds every ABS check of a VO into one batch
// (core/parallel_verify.h). It must be observationally identical to the
// retained per-signature path — same VerifyResult (code, entry index,
// detail) and same emitted records — on valid AND tampered VOs, for every
// VO shape. ScopedPerSignatureVerify forces the old path for comparison.
TEST(ParallelPathTest, BatchedMatchesPerSignatureByteForByte) {
  Domain domain{/*dims=*/1, /*bits=*/5};
  DataOwner owner(RoleSet{"RoleA", "RoleB"}, domain, 31337);
  std::vector<Record> records;
  for (std::uint32_t k = 0; k < 20; ++k) {
    records.push_back(Rec(k, "v" + std::to_string(k),
                          (k % 3 == 0) ? "RoleA" : "RoleA & RoleB"));
  }
  ServiceProvider sp(owner.keys(), owner.BuildAds(records));
  UserCredentials creds = owner.EnrollUser({"RoleA"});
  const SystemKeys& keys = owner.keys();
  Box range{Point{1}, Point{18}};

  auto run_range = [&](const Vo& v, std::vector<Record>* out,
                       bool per_sig) -> VerifyResult {
    if (per_sig) {
      ScopedPerSignatureVerify guard;
      return VerifyRangeVoEx(keys.mvk, keys.domain, range, creds.roles,
                             keys.universe, v, out);
    }
    return VerifyRangeVoEx(keys.mvk, keys.domain, range, creds.roles,
                           keys.universe, v, out);
  };

  // Range: valid, then one tampered ResultEntry (first / middle / last).
  Vo vo = sp.RangeQuery(range, creds.roles);
  std::vector<std::size_t> result_positions;
  for (std::size_t i = 0; i < vo.entries.size(); ++i) {
    if (std::holds_alternative<ResultEntry>(vo.entries[i])) {
      result_positions.push_back(i);
    }
  }
  ASSERT_GE(result_positions.size(), 3u);

  std::vector<Record> batched_out, per_sig_out;
  VerifyResult batched = run_range(vo, &batched_out, false);
  VerifyResult sequential = run_range(vo, &per_sig_out, true);
  EXPECT_TRUE(batched.ok()) << batched.ToString();
  EXPECT_TRUE(SameResult(batched, sequential))
      << batched.ToString() << " vs " << sequential.ToString();
  EXPECT_TRUE(SameRecords(batched_out, per_sig_out));
  EXPECT_FALSE(batched_out.empty());

  for (std::size_t pos : {result_positions.front(),
                          result_positions[result_positions.size() / 2],
                          result_positions.back()}) {
    Vo bad = vo;
    std::get<ResultEntry>(bad.entries[pos]).value += "-tampered";
    batched_out.clear();
    per_sig_out.clear();
    VerifyResult b = run_range(bad, &batched_out, false);
    VerifyResult s = run_range(bad, &per_sig_out, true);
    EXPECT_FALSE(b.ok());
    EXPECT_EQ(b.code, VerifyCode::kBadSignature);
    EXPECT_TRUE(SameResult(b, s))
        << "entry " << pos << ": " << b.ToString() << " vs " << s.ToString();
    EXPECT_TRUE(SameRecords(batched_out, per_sig_out)) << "entry " << pos;
  }

  // Equality: accessible record, valid and tampered.
  Vo evo = sp.EqualityQuery(Point{3}, creds.roles);
  Record brec, srec;
  bool bacc = false, sacc = false;
  VerifyResult be, se;
  {
    be = VerifyEqualityVoEx(keys.mvk, keys.domain, Point{3}, creds.roles,
                            keys.universe, evo, &brec, &bacc);
    ScopedPerSignatureVerify guard;
    se = VerifyEqualityVoEx(keys.mvk, keys.domain, Point{3}, creds.roles,
                            keys.universe, evo, &srec, &sacc);
  }
  EXPECT_TRUE(be.ok()) << be.ToString();
  EXPECT_TRUE(SameResult(be, se));
  EXPECT_EQ(bacc, sacc);
  EXPECT_EQ(brec.value, srec.value);
  Vo ebad = evo;
  for (auto& entry : ebad.entries) {
    if (auto* res = std::get_if<ResultEntry>(&entry)) res->value += "x";
  }
  {
    be = VerifyEqualityVoEx(keys.mvk, keys.domain, Point{3}, creds.roles,
                            keys.universe, ebad, nullptr, &bacc);
    ScopedPerSignatureVerify guard;
    se = VerifyEqualityVoEx(keys.mvk, keys.domain, Point{3}, creds.roles,
                            keys.universe, ebad, nullptr, &sacc);
  }
  EXPECT_FALSE(be.ok());
  EXPECT_TRUE(SameResult(be, se))
      << be.ToString() << " vs " << se.ToString();

  // Join: valid and tampered pair.
  ServiceProvider spj(owner.keys(), owner.BuildAds(records));
  spj.AttachJoinTable(owner.BuildAds(records));
  JoinVo jvo = spj.JoinQuery(range, creds.roles);
  auto run_join = [&](const JoinVo& v,
                      std::vector<std::pair<Record, Record>>* out,
                      bool per_sig) -> VerifyResult {
    if (per_sig) {
      ScopedPerSignatureVerify guard;
      return VerifyJoinVoEx(keys.mvk, keys.domain, range, creds.roles,
                            keys.universe, v, out);
    }
    return VerifyJoinVoEx(keys.mvk, keys.domain, range, creds.roles,
                          keys.universe, v, out);
  };
  std::vector<std::pair<Record, Record>> bjout, sjout;
  VerifyResult bj = run_join(jvo, &bjout, false);
  VerifyResult sj = run_join(jvo, &sjout, true);
  EXPECT_TRUE(bj.ok()) << bj.ToString();
  EXPECT_TRUE(SameResult(bj, sj));
  EXPECT_EQ(bjout.size(), sjout.size());
  ASSERT_FALSE(jvo.pairs.empty());
  JoinVo jbad = jvo;
  jbad.pairs.front().r.value += "-tampered";
  bjout.clear();
  sjout.clear();
  bj = run_join(jbad, &bjout, false);
  sj = run_join(jbad, &sjout, true);
  EXPECT_FALSE(bj.ok());
  EXPECT_TRUE(SameResult(bj, sj))
      << bj.ToString() << " vs " << sj.ToString();
  EXPECT_EQ(bjout.size(), sjout.size());
}

// Same equivalence for the kd-tree verifier, which batches through the same
// SigBatch.
TEST(ParallelPathTest, KdBatchedMatchesPerSignature) {
  Rng rng(808);
  abs::MasterKey msk;
  abs::VerifyKey mvk;
  abs::Abs::Setup(&rng, &msk, &mvk);
  RoleSet universe = {"RoleA", "RoleB", "RoleC"};
  RoleSet all = universe;
  all.insert(kPseudoRole);
  abs::SigningKey sk = abs::Abs::KeyGen(msk, all, &rng);

  Domain domain{1, 5};
  std::vector<Record> records;
  for (std::uint32_t k = 0; k < 12; ++k) {
    records.push_back(Rec(2 * k + 1, "v" + std::to_string(k),
                          (k % 2 == 0) ? "RoleA" : "RoleB"));
  }
  KdTree tree = KdTree::Build(mvk, sk, domain, records, &rng);
  RoleSet user = {"RoleA"};
  Box range{Point{2}, Point{27}};
  KdVo vo = BuildKdRangeVo(tree, mvk, range, user, universe, &rng);

  auto run = [&](const KdVo& v, std::vector<Record>* out,
                 bool per_sig) -> VerifyResult {
    if (per_sig) {
      ScopedPerSignatureVerify guard;
      return VerifyKdRangeVoEx(mvk, domain, range, user, universe, v, out);
    }
    return VerifyKdRangeVoEx(mvk, domain, range, user, universe, v, out);
  };

  std::vector<Record> bout, sout;
  VerifyResult b = run(vo, &bout, false);
  VerifyResult s = run(vo, &sout, true);
  EXPECT_TRUE(b.ok()) << b.ToString();
  EXPECT_TRUE(SameResult(b, s)) << b.ToString() << " vs " << s.ToString();
  EXPECT_TRUE(SameRecords(bout, sout));
  EXPECT_FALSE(bout.empty());

  ASSERT_FALSE(vo.results.empty());
  KdVo bad = vo;
  bad.results[vo.results.size() / 2].value += "-tampered";
  bout.clear();
  sout.clear();
  b = run(bad, &bout, false);
  s = run(bad, &sout, true);
  EXPECT_FALSE(b.ok());
  EXPECT_TRUE(SameResult(b, s)) << b.ToString() << " vs " << s.ToString();
  EXPECT_TRUE(SameRecords(bout, sout));
}

// Bisect blame recovery: when the whole-VO batch fails, SigBatch bisects to
// the LOWEST failing job, so blame and partial-record emission must equal
// the sequential verifier's with 1, 2, and all signatures tampered.
TEST(ParallelPathTest, BisectRecoversLowestFailingIndex) {
  Domain domain{/*dims=*/1, /*bits=*/5};
  DataOwner owner(RoleSet{"RoleA", "RoleB"}, domain, 60606);
  std::vector<Record> records;
  for (std::uint32_t k = 0; k < 16; ++k) {
    records.push_back(Rec(k, "v" + std::to_string(k),
                          (k % 2 == 0) ? "RoleA" : "RoleA & RoleB"));
  }
  ServiceProvider sp(owner.keys(), owner.BuildAds(records));
  UserCredentials creds = owner.EnrollUser({"RoleA"});
  const SystemKeys& keys = owner.keys();
  Box range{Point{0}, Point{15}};
  Vo vo = sp.RangeQuery(range, creds.roles);

  std::vector<std::size_t> result_positions;
  for (std::size_t i = 0; i < vo.entries.size(); ++i) {
    if (std::holds_alternative<ResultEntry>(vo.entries[i])) {
      result_positions.push_back(i);
    }
  }
  ASSERT_GE(result_positions.size(), 3u);

  auto run = [&](const Vo& v, std::vector<Record>* out,
                 bool per_sig) -> VerifyResult {
    if (per_sig) {
      ScopedPerSignatureVerify guard;
      return VerifyRangeVoEx(keys.mvk, keys.domain, range, creds.roles,
                             keys.universe, v, out);
    }
    return VerifyRangeVoEx(keys.mvk, keys.domain, range, creds.roles,
                           keys.universe, v, out);
  };

  auto check_case = [&](const Vo& bad, const char* what) {
    std::vector<Record> bout, sout;
    VerifyResult b = run(bad, &bout, false);
    VerifyResult s = run(bad, &sout, true);
    EXPECT_FALSE(b.ok()) << what;
    EXPECT_TRUE(SameResult(b, s))
        << what << ": " << b.ToString() << " vs " << s.ToString();
    EXPECT_TRUE(SameRecords(bout, sout)) << what;
  };

  // One tampered signature, somewhere in the middle.
  Vo one = vo;
  std::get<ResultEntry>(one.entries[result_positions[1]]).value += "x";
  check_case(one, "one tampered");

  // Two tampered signatures: blame must land on the lower one.
  Vo two = vo;
  std::get<ResultEntry>(two.entries[result_positions[1]]).value += "x";
  std::get<ResultEntry>(two.entries[result_positions.back()]).value += "x";
  check_case(two, "two tampered");

  // Every accessible record tampered: blame is the first job, no records.
  Vo all = vo;
  for (auto& entry : all.entries) {
    if (auto* res = std::get_if<ResultEntry>(&entry)) res->value += "x";
  }
  check_case(all, "all tampered");
}

}  // namespace
}  // namespace apqa::core

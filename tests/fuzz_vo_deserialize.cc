// Fuzz target for the Vo deserialize + verify pipeline.
//
// Two build modes share one TestOneInput body:
//
//   * -DAPQA_LIBFUZZER=ON compiles with -fsanitize=fuzzer and libFuzzer
//     drives the input generation (`./fuzz_vo_deserialize corpus/`).
//   * By default a main() replays a deterministic seeded-mutation corpus
//     derived from a valid range VO, so the target exercises the same code
//     paths under plain ctest (and under ASan via scripts/check.sh) without
//     any fuzzing infrastructure.
//
// The property under test is purely "no crash / no sanitizer report": the
// pipeline must treat arbitrary bytes as a hostile SP's answer and either
// verify or reject them, never fault. Result-set soundness is covered by
// fault_injection_test.cc.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <vector>

#include "common/mutate.h"
#include "common/serde.h"
#include "core/range_query.h"

namespace {

using namespace apqa;  // NOLINT: tiny fuzz driver

struct FuzzContext {
  abs::MasterKey msk;
  core::VerifyKey mvk;
  core::RoleSet universe{"RoleA", "RoleB"};
  core::RoleSet user{"RoleA"};
  core::Domain domain{1, 3};
  core::Box range{core::Point{0}, core::Point{7}};
  std::vector<std::uint8_t> baseline;
};

FuzzContext* Context() {
  static FuzzContext* ctx = [] {
    auto* c = new FuzzContext;
    core::Rng rng(0xF022);
    abs::Abs::Setup(&rng, &c->msk, &c->mvk);
    core::RoleSet all = c->universe;
    all.insert(core::kPseudoRole);
    abs::SigningKey sk = abs::Abs::KeyGen(c->msk, all, &rng);
    core::GridTree tree = core::GridTree::Build(
        c->mvk, sk, c->domain,
        {
            core::Record{core::Point{2}, "v2", core::Policy::Parse("RoleA")},
            core::Record{core::Point{6}, "v6", core::Policy::Parse("RoleB")},
        },
        &rng);
    core::Vo vo = core::BuildRangeVo(tree, c->mvk, c->range, c->user,
                                     c->universe, &rng);
    common::ByteWriter w;
    vo.Serialize(&w);
    c->baseline = w.data();
    return c;
  }();
  return ctx;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzContext* c = Context();
  common::ByteReader r(data, size);
  core::Vo vo = core::Vo::Deserialize(&r);
  if (!r.ok() || !r.AtEnd()) return 0;
  std::vector<core::Record> results;
  (void)core::VerifyRangeVoEx(c->mvk, c->domain, c->range, c->user,
                              c->universe, vo, &results);
  return 0;
}

#ifndef APQA_USE_LIBFUZZER
int main() {
  FuzzContext* c = Context();
  // The untouched baseline plus a seeded mutation sweep; every input must
  // come back without a crash.
  LLVMFuzzerTestOneInput(c->baseline.data(), c->baseline.size());
  common::MutRng rng(0xC0FFEE);
  constexpr int kIterations = 2000;
  for (int i = 0; i < kIterations; ++i) {
    std::vector<std::uint8_t> buf = c->baseline;
    // Stack up to three mutations so inputs drift further from valid
    // encodings than the single-step fault-injection corpus.
    int steps = 1 + static_cast<int>(rng.Below(3));
    for (int s = 0; s < steps; ++s) common::Mutate(&buf, &rng, &c->baseline);
    LLVMFuzzerTestOneInput(buf.data(), buf.size());
  }
  std::printf("fuzz_vo_deserialize: %d corpus inputs, no crashes\n",
              kIterations + 1);
  return 0;
}
#endif

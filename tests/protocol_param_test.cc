// Parameterized property tests: across domain shapes, policy mixes and user
// role sets, the authenticated range/equality protocol must return exactly
// the brute-force accessible filter and always verify.
#include <gtest/gtest.h>

#include "core/kd_tree.h"
#include "core/system.h"
#include "tpch/tpch.h"

namespace apqa::core {
namespace {

struct ParamCase {
  int dims;
  int bits;
  int num_records;
  int num_policies;
  int num_roles;
  double access_fraction;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const ParamCase& c) {
    return os << c.dims << "d_b" << c.bits << "_n" << c.num_records << "_p"
              << c.num_policies << "_r" << c.num_roles << "_s" << c.seed;
  }
};

class RangeProtocolP : public ::testing::TestWithParam<ParamCase> {};

TEST_P(RangeProtocolP, ResultsMatchBruteForceAndVerify) {
  const ParamCase& pc = GetParam();
  Domain domain{pc.dims, pc.bits};
  tpch::PolicyGen pgen(pc.num_policies, pc.num_roles, 3, 2, pc.seed);
  crypto::Rng rng(pc.seed);

  // Random records on distinct keys.
  std::set<Point> keys;
  std::vector<Record> records;
  while (static_cast<int>(records.size()) < pc.num_records) {
    Point key;
    for (int d = 0; d < pc.dims; ++d) {
      key.push_back(static_cast<std::uint32_t>(rng.NextU64()) %
                    domain.SideLength());
    }
    if (!keys.insert(key).second) continue;
    Record r;
    r.key = key;
    r.value = "val" + std::to_string(records.size());
    r.policy = pgen.PolicyForKey(key);
    records.push_back(std::move(r));
  }

  DataOwner owner(pgen.universe(), domain, pc.seed);
  ServiceProvider sp(owner.keys(), owner.BuildAds(records));
  RoleSet roles = pgen.RolesForAccessFraction(pc.access_fraction);
  User user(owner.keys(), owner.EnrollUser(roles));

  for (int q = 0; q < 3; ++q) {
    Box range = tpch::RandomRangeQuery(domain, 0.3, &rng);
    Vo vo = sp.RangeQuery(range, roles);
    std::vector<Record> results;
    std::string error;
    ASSERT_TRUE(user.VerifyRange(range, vo, &results, &error)) << error;

    std::set<Point> expect;
    for (const Record& r : records) {
      if (range.Contains(r.key) && r.policy.Evaluate(roles)) {
        expect.insert(r.key);
      }
    }
    std::set<Point> got;
    for (const Record& r : results) got.insert(r.key);
    EXPECT_EQ(got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeProtocolP,
    ::testing::Values(ParamCase{1, 3, 4, 4, 5, 0.3, 1},
                      ParamCase{1, 4, 8, 6, 6, 0.2, 2},
                      ParamCase{2, 2, 6, 4, 5, 0.3, 3},
                      ParamCase{2, 3, 10, 8, 8, 0.2, 4},
                      ParamCase{3, 2, 12, 6, 6, 0.25, 5},
                      ParamCase{1, 4, 0, 4, 5, 0.3, 6},   // empty database
                      ParamCase{1, 3, 8, 1, 3, 0.9, 7}),  // single policy
    [](const ::testing::TestParamInfo<ParamCase>& pinfo) {
      std::ostringstream os;
      os << pinfo.param;
      return os.str();
    });

// The zero-knowledge AP²G-tree and the relaxed-model AP²kd-tree must return
// identical result sets for the same queries.
class GridKdEquivalenceP : public ::testing::TestWithParam<ParamCase> {};

TEST_P(GridKdEquivalenceP, SameResultsBothVerify) {
  const ParamCase& pc = GetParam();
  Domain domain{pc.dims, pc.bits};
  tpch::PolicyGen pgen(pc.num_policies, pc.num_roles, 3, 2, pc.seed);
  crypto::Rng rng(pc.seed);
  std::set<Point> keys;
  std::vector<Record> records;
  while (static_cast<int>(records.size()) < pc.num_records) {
    Point key;
    for (int d = 0; d < pc.dims; ++d) {
      key.push_back(static_cast<std::uint32_t>(rng.NextU64()) %
                    domain.SideLength());
    }
    if (!keys.insert(key).second) continue;
    records.push_back(
        Record{key, "v" + std::to_string(records.size()),
               pgen.PolicyForKey(key)});
  }
  DataOwner owner(pgen.universe(), domain, pc.seed);
  ServiceProvider sp(owner.keys(), owner.BuildAds(records));
  KdTree kd = KdTree::Build(owner.keys().mvk, owner.signing_key(), domain,
                            records, owner.rng());
  RoleSet roles = pgen.RolesForAccessFraction(pc.access_fraction);
  User user(owner.keys(), owner.EnrollUser(roles));

  for (int q = 0; q < 2; ++q) {
    Box range = tpch::RandomRangeQuery(domain, 0.4, &rng);
    Vo gvo = sp.RangeQuery(range, roles);
    KdVo kvo = BuildKdRangeVo(kd, owner.keys().mvk, range, roles,
                              owner.keys().universe, &rng);
    std::vector<Record> r1, r2;
    std::string e1, e2;
    ASSERT_TRUE(user.VerifyRange(range, gvo, &r1, &e1)) << e1;
    ASSERT_TRUE(VerifyKdRangeVo(owner.keys().mvk, domain, range, roles,
                                owner.keys().universe, kvo, &r2, &e2))
        << e2;
    std::set<Point> k1, k2;
    for (const auto& r : r1) k1.insert(r.key);
    for (const auto& r : r2) k2.insert(r.key);
    EXPECT_EQ(k1, k2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridKdEquivalenceP,
    ::testing::Values(ParamCase{1, 4, 6, 4, 5, 0.3, 21},
                      ParamCase{2, 3, 8, 6, 6, 0.25, 22},
                      ParamCase{2, 2, 5, 4, 5, 0.4, 23}),
    [](const ::testing::TestParamInfo<ParamCase>& pinfo) {
      std::ostringstream os;
      os << pinfo.param;
      return os.str();
    });

class EqualityProtocolP : public ::testing::TestWithParam<ParamCase> {};

TEST_P(EqualityProtocolP, EveryKeyVerifiesWithCorrectOutcome) {
  const ParamCase& pc = GetParam();
  Domain domain{pc.dims, pc.bits};
  tpch::PolicyGen pgen(pc.num_policies, pc.num_roles, 3, 2, pc.seed);
  crypto::Rng rng(pc.seed);
  std::map<Point, Record> by_key;
  while (static_cast<int>(by_key.size()) < pc.num_records) {
    Point key{static_cast<std::uint32_t>(rng.NextU64()) % domain.SideLength()};
    Record r{key, "v", pgen.PolicyForKey(key)};
    by_key.emplace(key, std::move(r));
  }
  std::vector<Record> records;
  for (auto& [k, r] : by_key) records.push_back(r);

  DataOwner owner(pgen.universe(), domain, pc.seed);
  ServiceProvider sp(owner.keys(), owner.BuildAds(records));
  RoleSet roles = pgen.RolesForAccessFraction(pc.access_fraction);
  User user(owner.keys(), owner.EnrollUser(roles));

  for (std::uint32_t k = 0; k < domain.SideLength(); ++k) {
    Point key{k};
    Vo vo = sp.EqualityQuery(key, roles);
    bool accessible = false;
    Record result;
    std::string error;
    ASSERT_TRUE(user.VerifyEquality(key, vo, &result, &accessible, &error))
        << "key " << k << ": " << error;
    auto it = by_key.find(key);
    bool expect_accessible =
        it != by_key.end() && it->second.policy.Evaluate(roles);
    EXPECT_EQ(accessible, expect_accessible) << "key " << k;
    if (expect_accessible) {
      EXPECT_EQ(result.value, it->second.value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EqualityProtocolP,
    ::testing::Values(ParamCase{1, 3, 4, 4, 5, 0.3, 11},
                      ParamCase{1, 4, 10, 6, 6, 0.2, 12},
                      ParamCase{1, 3, 0, 4, 5, 0.5, 13}),
    [](const ::testing::TestParamInfo<ParamCase>& pinfo) {
      std::ostringstream os;
      os << pinfo.param;
      return os.str();
    });

}  // namespace
}  // namespace apqa::core

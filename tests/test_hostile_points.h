// Constructors for hostile curve points used by deserialization-rejection
// and fault-injection tests: points that satisfy the curve equation but lie
// OUTSIDE the prime-order subgroup. Both BLS12-381 curves have composite
// order h·r (cofactor h ≈ 2^125 for G1, ≈ 2^250 for G2), so such points
// exist in abundance; a verifier that only checks the curve equation will
// happily run pairings on them, which is exactly the small-subgroup
// confusion these tests lock out.
#ifndef APQA_TESTS_TEST_HOSTILE_POINTS_H_
#define APQA_TESTS_TEST_HOSTILE_POINTS_H_

#include <span>

#include "crypto/curve.h"

namespace apqa::crypto::hostile {

// Square root in Fp. BLS12-381's p ≡ 3 (mod 4), so a^((p+1)/4) is a root
// exactly when one exists; returns false for non-residues.
inline bool FpSqrt(const Fp& a, Fp* out) {
  Limbs<6> e = Fp::Modulus();
  Limbs<6> one{};
  one[0] = 1;
  AddLimbs<6>(e, one, &e);  // p + 1; p < 2^381, no carry out
  Shr1Limbs<6>(&e);
  Shr1Limbs<6>(&e);  // (p+1)/4
  Fp cand = a.Pow(std::span<const u64>(e.data(), e.size()));
  if (cand.Square() != a) return false;
  *out = cand;
  return true;
}

// Square root in Fp2 = Fp[i]/(i^2+1) via the norm map: for a = a0 + a1·i,
// N(a) = a0^2 + a1^2 and sqrt(a) = x0 + x1·i with x0^2 = (a0 ± sqrt(N))/2,
// x1 = a1 / (2·x0). Returns false for non-residues.
inline bool Fp2Sqrt(const Fp2& a, Fp2* out) {
  if (a.c1.IsZero()) {
    Fp r;
    if (FpSqrt(a.c0, &r)) {
      *out = {r, Fp::Zero()};
      return true;
    }
    if (FpSqrt(-a.c0, &r)) {
      *out = {Fp::Zero(), r};  // (r·i)^2 = -r^2 = a0
      return true;
    }
    return false;
  }
  Fp sigma;
  if (!FpSqrt(a.c0.Square() + a.c1.Square(), &sigma)) return false;
  Fp half = (Fp::One() + Fp::One()).Inverse();
  Fp x0;
  if (!FpSqrt((a.c0 + sigma) * half, &x0)) {
    if (!FpSqrt((a.c0 - sigma) * half, &x0)) return false;
  }
  if (x0.IsZero()) return false;
  Fp x1 = a.c1 * half * x0.Inverse();
  Fp2 cand{x0, x1};
  if (cand.Square() != a) return false;
  *out = cand;
  return true;
}

// First curve point at small x that is NOT in the r-torsion. A uniform
// curve point lands in the prime-order subgroup with probability 1/h
// (≈ 2^-125), so the very first liftable x essentially always works; the
// explicit InPrimeOrderSubgroup filter makes it deterministic regardless.
inline G1 NonSubgroupG1() {
  for (u64 xi = 1;; ++xi) {
    Limbs<6> l{};
    l[0] = xi;
    Fp x = Fp::FromCanonical(l);
    Fp y;
    if (!FpSqrt(x.Square() * x + G1CurveB(), &y)) continue;
    G1 p = G1::FromAffine(x, y);
    if (!p.InPrimeOrderSubgroup()) return p;
  }
}

inline G2 NonSubgroupG2() {
  for (u64 xi = 1;; ++xi) {
    Limbs<6> l{};
    l[0] = xi;
    Fp2 x{Fp::FromCanonical(l), Fp::Zero()};
    Fp2 y;
    if (!Fp2Sqrt(x.Square() * x + G2CurveB(), &y)) continue;
    G2 p = G2::FromAffine(x, y);
    if (!p.InPrimeOrderSubgroup()) return p;
  }
}

}  // namespace apqa::crypto::hostile

#endif  // APQA_TESTS_TEST_HOSTILE_POINTS_H_

// Tests for hierarchical role assignment (§8.1).
#include <gtest/gtest.h>

#include "abs/abs.h"
#include "core/app_signature.h"
#include "core/hierarchy.h"

namespace apqa::core {
namespace {

RoleHierarchy UniversityHierarchy() {
  // §8.1 example: universities A and B with student/professor sub-roles.
  RoleHierarchy h;
  h.AddEdge("RoleA", "RoleA.S");
  h.AddEdge("RoleA", "RoleA.P");
  h.AddEdge("RoleB", "RoleB.S");
  h.AddEdge("RoleB", "RoleB.P");
  return h;
}

TEST(HierarchyTest, AncestorsAndClosure) {
  RoleHierarchy h = UniversityHierarchy();
  EXPECT_EQ(h.Ancestors("RoleA.S"), (policy::RoleSet{"RoleA"}));
  EXPECT_TRUE(h.Ancestors("RoleA").empty());
  EXPECT_EQ(h.Close({"RoleB.S"}), (policy::RoleSet{"RoleB", "RoleB.S"}));
}

TEST(HierarchyTest, RejectsCyclesAndDoubleParents) {
  RoleHierarchy h;
  h.AddEdge("A", "B");
  h.AddEdge("B", "C");
  EXPECT_THROW(h.AddEdge("C", "A"), std::invalid_argument);
  EXPECT_THROW(h.AddEdge("X", "B"), std::invalid_argument);
  EXPECT_THROW(h.AddEdge("A", "A"), std::invalid_argument);
}

TEST(HierarchyTest, AugmentAddsAncestorChain) {
  RoleHierarchy h = UniversityHierarchy();
  // §8.1: a professors-of-A policy becomes RoleA ∧ RoleA.P.
  policy::Policy p = policy::Policy::Parse("RoleA.P");
  policy::Policy aug = h.Augment(p);
  EXPECT_EQ(aug.ToString(), "(RoleA & RoleA.P)");
}

TEST(HierarchyTest, ReduceLackedSetKeepsTopMost) {
  RoleHierarchy h = UniversityHierarchy();
  // §8.1: user with RoleB.S lacks {RoleA, RoleA.S, RoleA.P, RoleB.P}; the
  // reduced inaccessible predicate is RoleA ∨ RoleB.P.
  policy::RoleSet lacked = {"RoleA", "RoleA.S", "RoleA.P", "RoleB.P"};
  EXPECT_EQ(h.ReduceLackedSet(lacked),
            (policy::RoleSet{"RoleA", "RoleB.P"}));
}

TEST(HierarchyTest, ReducedRelaxationVerifies) {
  // End-to-end: sign with an augmented policy, relax to the *reduced*
  // lacked set, verify under the reduced super policy.
  crypto::Rng rng(1212);
  abs::MasterKey msk;
  abs::VerifyKey mvk;
  abs::Abs::Setup(&rng, &msk, &mvk);
  RoleHierarchy h = UniversityHierarchy();
  policy::RoleSet universe = {"RoleA",   "RoleA.S", "RoleA.P",
                              "RoleB",   "RoleB.S", "RoleB.P",
                              kPseudoRole};
  abs::SigningKey sk = abs::Abs::KeyGen(msk, universe, &rng);

  policy::Policy original = policy::Policy::Parse("RoleA.P");
  policy::Policy augmented = h.Augment(original);
  std::vector<std::uint8_t> msg = {'m'};
  auto sig = abs::Abs::Sign(mvk, sk, msg, augmented, &rng);
  ASSERT_TRUE(sig.has_value());

  // User: student of B. Closed roles {RoleB, RoleB.S}.
  policy::RoleSet user = h.Close({"RoleB.S"});
  EXPECT_FALSE(augmented.Evaluate(user));
  policy::RoleSet lacked = SuperPolicyRoles(universe, user);
  policy::RoleSet reduced = h.ReduceLackedSet(lacked);
  EXPECT_LT(reduced.size(), lacked.size());

  auto aps = abs::Abs::Relax(mvk, *sig, augmented, msg, reduced, &rng);
  ASSERT_TRUE(aps.has_value());
  EXPECT_TRUE(abs::Abs::Verify(mvk, msg, policy::Policy::OrOfRoles(reduced),
                               *aps));
  // The APS signature is smaller than under the unreduced lack set.
  auto aps_full = abs::Abs::Relax(mvk, *sig, augmented, msg, lacked, &rng);
  ASSERT_TRUE(aps_full.has_value());
  EXPECT_LT(aps->SerializedSize(), aps_full->SerializedSize());
}

TEST(HierarchyTest, ReductionUnsoundWithoutAugmentation) {
  // Sanity check of why Augment matters: with the raw policy RoleA.P, the
  // reduced set {RoleA, RoleB.P} is not a valid relaxation target because
  // 𝔸 \ reduced still contains RoleA.P.
  crypto::Rng rng(1313);
  abs::MasterKey msk;
  abs::VerifyKey mvk;
  abs::Abs::Setup(&rng, &msk, &mvk);
  RoleHierarchy h = UniversityHierarchy();
  policy::RoleSet universe = {"RoleA",   "RoleA.S", "RoleA.P",
                              "RoleB",   "RoleB.S", "RoleB.P",
                              kPseudoRole};
  abs::SigningKey sk = abs::Abs::KeyGen(msk, universe, &rng);
  policy::Policy original = policy::Policy::Parse("RoleA.P");
  std::vector<std::uint8_t> msg = {'m'};
  auto sig = abs::Abs::Sign(mvk, sk, msg, original, &rng);
  policy::RoleSet user = h.Close({"RoleB.S"});
  policy::RoleSet reduced = h.ReduceLackedSet(SuperPolicyRoles(universe, user));
  EXPECT_FALSE(abs::Abs::Relax(mvk, *sig, original, msg, reduced, &rng)
                   .has_value());
}

}  // namespace
}  // namespace apqa::core

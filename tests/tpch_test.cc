// Tests for the TPC-H-style workload substrate.
#include <gtest/gtest.h>

#include "tpch/tpch.h"

namespace apqa::tpch {
namespace {

TEST(TpchGenTest, DeterministicAndScaled) {
  TpchGen g1(0.1, 42), g2(0.1, 42), g3(0.3, 42);
  auto r1 = g1.Lineitem();
  auto r2 = g2.Lineitem();
  auto r3 = g3.Lineitem();
  EXPECT_EQ(r1.size(), 600u);
  EXPECT_EQ(r3.size(), 1800u);
  ASSERT_EQ(r1.size(), r2.size());
  EXPECT_EQ(r1[0].orderkey, r2[0].orderkey);
  EXPECT_EQ(r1[7].shipdate, r2[7].shipdate);
}

TEST(TpchGenTest, AttributeRanges) {
  TpchGen gen(0.1, 7);
  for (const auto& row : gen.Lineitem()) {
    EXPECT_LT(row.shipdate, 2526u);
    EXPECT_LT(row.discount, 11u);
    EXPECT_GE(row.quantity, 1u);
    EXPECT_LE(row.quantity, 50u);
  }
}

TEST(TpchGenTest, OrdersHaveUniqueKeys) {
  TpchGen gen(0.3, 5);
  auto orders = gen.Orders();
  std::set<std::uint64_t> keys;
  for (const auto& o : orders) {
    EXPECT_TRUE(keys.insert(o.orderkey).second);
  }
}

TEST(DiscretizeTest, MapsIntoDomain) {
  Domain domain{3, 4};
  TpchGen gen(0.1, 11);
  for (const auto& row : gen.Lineitem()) {
    core::Point p = DiscretizeLineitem(row, domain);
    ASSERT_EQ(p.size(), 3u);
    EXPECT_TRUE(domain.ContainsPoint(p));
  }
}

TEST(LineitemRecordsTest, DistinctKeysSamePolicyPerKey) {
  Domain domain{2, 4};
  TpchGen gen(0.1, 13);
  PolicyGen pgen(10, 10, 3, 2, 99);
  auto records = LineitemRecords(gen.Lineitem(), domain, pgen.policies());
  std::set<core::Point> keys;
  for (const auto& r : records) {
    EXPECT_TRUE(keys.insert(r.key).second);
    EXPECT_TRUE(domain.ContainsPoint(r.key));
  }
  EXPECT_GT(records.size(), 50u);
}

TEST(PolicyGenTest, RespectsShapeParameters) {
  PolicyGen gen(10, 10, 3, 2, 7);
  EXPECT_EQ(gen.policies().size(), 10u);
  EXPECT_EQ(gen.universe().size(), 10u);
  for (const auto& p : gen.policies()) {
    auto clauses = p.DnfClauses();
    EXPECT_LE(clauses.size(), 3u);
    for (const auto& c : clauses) EXPECT_LE(c.size(), 2u);
    // Max policy length 6 = 3 clauses x 2 roles.
    EXPECT_LE(p.Length(), 6u);
  }
}

TEST(PolicyGenTest, PoliciesAreDistinct) {
  PolicyGen gen(20, 10, 3, 2, 8);
  std::set<std::string> texts;
  for (const auto& p : gen.policies()) {
    EXPECT_TRUE(texts.insert(p.ToString()).second);
  }
}

TEST(PolicyGenTest, AccessFractionRoughlyMet) {
  PolicyGen gen(50, 10, 3, 2, 3);
  auto roles = gen.RolesForAccessFraction(0.2);
  std::size_t accessible = 0;
  for (const auto& p : gen.policies()) {
    accessible += p.Evaluate(roles) ? 1 : 0;
  }
  double f = static_cast<double>(accessible) / gen.policies().size();
  EXPECT_GE(f, 0.2);
  EXPECT_LE(f, 0.75);  // greedy overshoot is bounded
}

TEST(PolicyGenTest, PolicyForKeyDeterministic) {
  PolicyGen gen(10, 10, 3, 2, 5);
  core::Point key{3, 7};
  EXPECT_EQ(gen.PolicyForKey(key).ToString(), gen.PolicyForKey(key).ToString());
}

TEST(RandomRangeQueryTest, SelectivityApproximate) {
  Domain domain{2, 5};  // 32x32 = 1024 cells
  crypto::Rng rng(4);
  for (double sel : {0.01, 0.1, 0.5}) {
    double total = 0;
    for (int i = 0; i < 50; ++i) {
      core::Box box = RandomRangeQuery(domain, sel, &rng);
      EXPECT_TRUE(domain.FullBox().ContainsBox(box));
      total += static_cast<double>(box.Volume()) / domain.CellCount();
    }
    double avg = total / 50;
    EXPECT_GT(avg, sel / 4);
    EXPECT_LT(avg, sel * 4 + 0.01);
  }
}

}  // namespace
}  // namespace apqa::tpch

// Tests for the ABS scheme with predicate relaxation (§5.2).
#include <gtest/gtest.h>

#include "abs/abs.h"
#include "abs/batch_verify.h"
#include "crypto/serde.h"

namespace apqa::abs {
namespace {

using crypto::Rng;

std::vector<std::uint8_t> Msg(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

class AbsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(2024);
    Abs::Setup(rng_.get(), &msk_, &mvk_);
    universe_ = {"Role0", "RoleA", "RoleB", "RoleC", "RoleD"};
    sk_all_ = Abs::KeyGen(msk_, universe_, rng_.get());
  }

  std::unique_ptr<Rng> rng_;
  MasterKey msk_;
  VerifyKey mvk_;
  RoleSet universe_;
  SigningKey sk_all_;
};

TEST_F(AbsTest, SignVerifyRoundTrip) {
  Policy pred = Policy::Parse("(RoleA & RoleB) | RoleC");
  auto sig = Abs::Sign(mvk_, sk_all_, Msg("hello"), pred, rng_.get());
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(Abs::Verify(mvk_, Msg("hello"), pred, *sig));
  EXPECT_TRUE(Abs::Verify(mvk_, Msg("hello"), pred, *sig, /*exact=*/true));
}

TEST_F(AbsTest, VerifyRejectsWrongMessage) {
  Policy pred = Policy::Parse("RoleA & RoleB");
  auto sig = Abs::Sign(mvk_, sk_all_, Msg("hello"), pred, rng_.get());
  ASSERT_TRUE(sig.has_value());
  EXPECT_FALSE(Abs::Verify(mvk_, Msg("hellO"), pred, *sig));
  EXPECT_FALSE(Abs::Verify(mvk_, Msg(""), pred, *sig));
}

TEST_F(AbsTest, VerifyRejectsWrongPredicate) {
  Policy pred = Policy::Parse("RoleA & RoleB");
  auto sig = Abs::Sign(mvk_, sk_all_, Msg("m"), pred, rng_.get());
  ASSERT_TRUE(sig.has_value());
  // Same shape, different role.
  EXPECT_FALSE(Abs::Verify(mvk_, Msg("m"), Policy::Parse("RoleA & RoleC"), *sig));
}

TEST_F(AbsTest, VerifyRejectsTamperedSignature) {
  Policy pred = Policy::Parse("(RoleA & RoleB) | RoleC");
  auto sig = Abs::Sign(mvk_, sk_all_, Msg("m"), pred, rng_.get());
  ASSERT_TRUE(sig.has_value());
  Signature bad = *sig;
  bad.y = bad.y + crypto::G1Generator();
  EXPECT_FALSE(Abs::Verify(mvk_, Msg("m"), pred, bad));
  bad = *sig;
  bad.s[0] = bad.s[0].Double();
  EXPECT_FALSE(Abs::Verify(mvk_, Msg("m"), pred, bad));
  bad = *sig;
  bad.p[0] = bad.p[0] + crypto::G2Generator();
  EXPECT_FALSE(Abs::Verify(mvk_, Msg("m"), pred, bad));
  bad = *sig;
  bad.tau[0] ^= 1;
  EXPECT_FALSE(Abs::Verify(mvk_, Msg("m"), pred, bad));
}

TEST_F(AbsTest, SignFailsWithoutSatisfyingAttributes) {
  SigningKey sk_c = Abs::KeyGen(msk_, {"RoleC"}, rng_.get());
  Policy pred = Policy::Parse("RoleA & RoleB");
  EXPECT_FALSE(Abs::Sign(mvk_, sk_c, Msg("m"), pred, rng_.get()).has_value());
  // But a predicate it satisfies works, even mentioning foreign roles.
  Policy pred2 = Policy::Parse("(RoleA & RoleB) | RoleC");
  auto sig = Abs::Sign(mvk_, sk_c, Msg("m"), pred2, rng_.get());
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(Abs::Verify(mvk_, Msg("m"), pred2, *sig));
}

TEST_F(AbsTest, RelaxProducesVerifiableSignature) {
  // Predicate RoleA & RoleB; user owns only RoleC, so the super policy is
  // the OR of everything they lack.
  Policy pred = Policy::Parse("RoleA & RoleB");
  auto sig = Abs::Sign(mvk_, sk_all_, Msg("m"), pred, rng_.get());
  ASSERT_TRUE(sig.has_value());
  RoleSet lacks = {"Role0", "RoleA", "RoleB", "RoleD"};  // universe \ {RoleC}
  auto relaxed = Abs::Relax(mvk_, *sig, pred, Msg("m"), lacks, rng_.get());
  ASSERT_TRUE(relaxed.has_value());
  Policy super = Policy::OrOfRoles(lacks);
  EXPECT_TRUE(Abs::Verify(mvk_, Msg("m"), super, *relaxed));
  EXPECT_TRUE(Abs::Verify(mvk_, Msg("m"), super, *relaxed, /*exact=*/true));
  // The relaxed signature does not verify under the original predicate.
  EXPECT_FALSE(Abs::Verify(mvk_, Msg("m"), pred, *relaxed));
}

TEST_F(AbsTest, RelaxFailsWhenUserCouldAccess) {
  // Paper's running example: predicate RoleA & RoleB cannot be relaxed to
  // Role0 | RoleC because {RoleA, RoleB} avoids that set and still satisfies.
  Policy pred = Policy::Parse("RoleA & RoleB");
  auto sig = Abs::Sign(mvk_, sk_all_, Msg("m"), pred, rng_.get());
  ASSERT_TRUE(sig.has_value());
  EXPECT_FALSE(
      Abs::Relax(mvk_, *sig, pred, Msg("m"), {"Role0", "RoleC"}, rng_.get())
          .has_value());
}

TEST_F(AbsTest, RelaxedSignatureBindsMessage) {
  Policy pred = Policy::Parse("RoleA & RoleB");
  auto sig = Abs::Sign(mvk_, sk_all_, Msg("m"), pred, rng_.get());
  RoleSet lacks = {"Role0", "RoleA", "RoleB", "RoleD"};
  auto relaxed = Abs::Relax(mvk_, *sig, pred, Msg("m"), lacks, rng_.get());
  ASSERT_TRUE(relaxed.has_value());
  Policy super = Policy::OrOfRoles(lacks);
  EXPECT_FALSE(Abs::Verify(mvk_, Msg("x"), super, *relaxed));
}

TEST_F(AbsTest, RelaxHandlesDuplicateAttributesInPredicate) {
  // RoleA appears in two clauses; purge keeps multiple rows with the same
  // label which must be merged (Algorithm 2, step 2).
  Policy pred = Policy::Parse("(RoleA & RoleB) | (RoleA & RoleC)");
  auto sig = Abs::Sign(mvk_, sk_all_, Msg("m"), pred, rng_.get());
  ASSERT_TRUE(sig.has_value());
  // User owns RoleD only: lacks everything else.
  RoleSet lacks = {"Role0", "RoleA", "RoleB", "RoleC"};
  auto relaxed = Abs::Relax(mvk_, *sig, pred, Msg("m"), lacks, rng_.get());
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_TRUE(Abs::Verify(mvk_, Msg("m"), Policy::OrOfRoles(lacks), *relaxed));
}

TEST_F(AbsTest, RelaxOnComplexPredicates) {
  Rng rng(31337);
  Policy pred = Policy::Parse("(RoleA & (RoleB | RoleC)) | (RoleC & RoleD)");
  auto sig = Abs::Sign(mvk_, sk_all_, Msg("m"), pred, &rng);
  ASSERT_TRUE(sig.has_value());
  // User owns {RoleB}: complement {Role0, RoleA, RoleC, RoleD}; the
  // predicate is not satisfiable by {RoleB} alone, so relaxation succeeds.
  RoleSet lacks = {"Role0", "RoleA", "RoleC", "RoleD"};
  auto relaxed = Abs::Relax(mvk_, *sig, pred, Msg("m"), lacks, &rng);
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_TRUE(Abs::Verify(mvk_, Msg("m"), Policy::OrOfRoles(lacks), *relaxed));
  // User owns {RoleA, RoleB}: predicate satisfied, relaxation must fail.
  RoleSet lacks2 = {"Role0", "RoleC", "RoleD"};
  EXPECT_FALSE(Abs::Relax(mvk_, *sig, pred, Msg("m"), lacks2, &rng).has_value());
}

TEST_F(AbsTest, SignatureSerializationRoundTrip) {
  Policy pred = Policy::Parse("(RoleA & RoleB) | RoleC");
  auto sig = Abs::Sign(mvk_, sk_all_, Msg("m"), pred, rng_.get());
  ASSERT_TRUE(sig.has_value());
  common::ByteWriter w;
  sig->Serialize(&w);
  EXPECT_EQ(w.size(), sig->SerializedSize());
  common::ByteReader r(w.data());
  Signature back = Signature::Deserialize(&r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(Abs::Verify(mvk_, Msg("m"), pred, back));
}

TEST_F(AbsTest, VerifyKeySerializationRoundTrip) {
  common::ByteWriter w;
  mvk_.Serialize(&w);
  common::ByteReader r(w.data());
  VerifyKey back = VerifyKey::Deserialize(&r);
  EXPECT_TRUE(r.AtEnd());
  Policy pred = Policy::Parse("RoleA");
  auto sig = Abs::Sign(back, sk_all_, Msg("m"), pred, rng_.get());
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(Abs::Verify(back, Msg("m"), pred, *sig));
}

TEST_F(AbsTest, SignatureSizeGrowsWithPredicateLength) {
  auto s1 = Abs::Sign(mvk_, sk_all_, Msg("m"), Policy::Parse("RoleA"), rng_.get());
  auto s4 = Abs::Sign(mvk_, sk_all_, Msg("m"),
                      Policy::Parse("(RoleA & RoleB) | (RoleC & RoleD)"),
                      rng_.get());
  ASSERT_TRUE(s1.has_value() && s4.has_value());
  EXPECT_LT(s1->SerializedSize(), s4->SerializedSize());
}

TEST_F(AbsTest, KeyGenCovers) {
  SigningKey sk = Abs::KeyGen(msk_, {"RoleA", "RoleB"}, rng_.get());
  EXPECT_TRUE(sk.Covers({"RoleA"}));
  EXPECT_TRUE(sk.Covers({"RoleA", "RoleB"}));
  EXPECT_FALSE(sk.Covers({"RoleC"}));
}

// --- Whole-VO batched verification (abs/batch_verify.h) ---

TEST_F(AbsTest, BatchAcceptsValidSignatures) {
  std::vector<Policy> preds = {
      Policy::Parse("RoleA"),
      Policy::Parse("RoleA & RoleB"),
      Policy::Parse("(RoleA & RoleB) | RoleC"),
  };
  BatchAccumulator acc(mvk_);
  std::vector<std::pair<std::vector<std::uint8_t>, Signature>> sigs;
  for (std::size_t k = 0; k < 9; ++k) {
    auto msg = Msg("m" + std::to_string(k));
    auto sig = Abs::Sign(mvk_, sk_all_, msg, preds[k % preds.size()],
                         rng_.get());
    ASSERT_TRUE(sig.has_value());
    ASSERT_TRUE(Abs::AccumulateVerify(mvk_, msg, preds[k % preds.size()],
                                      *sig, rng_.get(), &acc));
  }
  EXPECT_EQ(acc.Size(), 9u);
  EXPECT_TRUE(acc.Check());
}

TEST_F(AbsTest, BatchRejectsOneTamperedSignature) {
  Policy pred = Policy::Parse("RoleA & RoleB");
  for (int tampered = 0; tampered < 3; ++tampered) {
    BatchAccumulator acc(mvk_);
    for (int k = 0; k < 3; ++k) {
      auto msg = Msg("m" + std::to_string(k));
      auto sig = Abs::Sign(mvk_, sk_all_, msg, pred, rng_.get());
      ASSERT_TRUE(sig.has_value());
      if (k == tampered) sig->s[0] = sig->s[0].Double();
      ASSERT_TRUE(
          Abs::AccumulateVerify(mvk_, msg, pred, *sig, rng_.get(), &acc));
    }
    EXPECT_FALSE(acc.Check()) << "tampered index " << tampered;
  }
}

TEST_F(AbsTest, BatchStructuralFailureLeavesBatchUntouched) {
  Policy pred = Policy::Parse("RoleA");
  auto good = Abs::Sign(mvk_, sk_all_, Msg("ok"), pred, rng_.get());
  ASSERT_TRUE(good.has_value());
  BatchAccumulator acc(mvk_);
  ASSERT_TRUE(
      Abs::AccumulateVerify(mvk_, Msg("ok"), pred, *good, rng_.get(), &acc));

  Signature wrong_shape = *good;
  wrong_shape.s.push_back(crypto::G1Generator());
  EXPECT_FALSE(Abs::AccumulateVerify(mvk_, Msg("ok"), pred, wrong_shape,
                                     rng_.get(), &acc));
  Signature y_inf = *good;
  y_inf.y = G1::Infinity();
  EXPECT_FALSE(
      Abs::AccumulateVerify(mvk_, Msg("ok"), pred, y_inf, rng_.get(), &acc));

  // The rejected signatures contributed nothing: the batch still passes.
  EXPECT_EQ(acc.Size(), 1u);
  EXPECT_TRUE(acc.Check());
}

// Adversarial pair cancellation: two individually invalid signatures whose
// errors are equal and opposite group elements. If the batch reused one
// fixed weight across signatures, the errors would cancel inside the shared
// per-base MSMs and the forged pair would slip through. Fresh per-verify
// 128-bit weights make the combined error delta_1*T - delta_2*T vanish only
// when delta_1 == delta_2 (probability 2^-128), so every trial must reject.
TEST_F(AbsTest, BatchRejectsForgedPairCancellation) {
  Policy pred = Policy::Parse("RoleA & RoleB");
  auto s1 = Abs::Sign(mvk_, sk_all_, Msg("p1"), pred, rng_.get());
  auto s2 = Abs::Sign(mvk_, sk_all_, Msg("p2"), pred, rng_.get());
  ASSERT_TRUE(s1.has_value() && s2.has_value());
  G1 t = crypto::G1Generator().ScalarMul(Fr::FromU64(0xD00DFEED));

  for (int trial = 0; trial < 4; ++trial) {
    // W-equation cancellation: W1 += T, W2 -= T hits the shared a0 bucket.
    Signature bad1 = *s1, bad2 = *s2;
    bad1.w = bad1.w + t;
    bad2.w = bad2.w + (-t);
    ASSERT_FALSE(Abs::Verify(mvk_, Msg("p1"), pred, bad1));
    ASSERT_FALSE(Abs::Verify(mvk_, Msg("p2"), pred, bad2));
    BatchAccumulator acc(mvk_);
    ASSERT_TRUE(
        Abs::AccumulateVerify(mvk_, Msg("p1"), pred, bad1, rng_.get(), &acc));
    ASSERT_TRUE(
        Abs::AccumulateVerify(mvk_, Msg("p2"), pred, bad2, rng_.get(), &acc));
    EXPECT_FALSE(acc.Check()) << "W cancellation survived, trial " << trial;

    // Y-side cancellation: hits the shared h and h0 folds instead.
    bad1 = *s1;
    bad2 = *s2;
    bad1.y = bad1.y + t;
    bad2.y = bad2.y + (-t);
    ASSERT_FALSE(Abs::Verify(mvk_, Msg("p1"), pred, bad1));
    ASSERT_FALSE(Abs::Verify(mvk_, Msg("p2"), pred, bad2));
    BatchAccumulator acc2(mvk_);
    ASSERT_TRUE(
        Abs::AccumulateVerify(mvk_, Msg("p1"), pred, bad1, rng_.get(), &acc2));
    ASSERT_TRUE(
        Abs::AccumulateVerify(mvk_, Msg("p2"), pred, bad2, rng_.get(), &acc2));
    EXPECT_FALSE(acc2.Check()) << "Y cancellation survived, trial " << trial;
  }
}

}  // namespace
}  // namespace apqa::abs

// Tests for the fault-tolerant SP query service (src/net/): frame format
// totality, transport behavior, retry/backoff/deadline math, server load
// shedding and drain-then-stop shutdown, the malicious-SP fatal path, and
// seeded chaos suites over a FaultyTransport.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <thread>

#include "common/serde.h"
#include "core/system.h"
#include "net/backoff.h"
#include "net/client.h"
#include "net/faulty_transport.h"
#include "net/frame.h"
#include "net/pipe_transport.h"
#include "net/server.h"
#include "net/socket_transport.h"

namespace apqa::net {
namespace {

using core::Box;
using core::Point;
using core::Policy;
using core::Record;
using core::RoleSet;

// --- frame format -----------------------------------------------------------

Frame MakeTestFrame() {
  Frame f;
  f.type = MsgType::kRangeQuery;
  f.request_id = 0x1122334455667788ULL;
  f.deadline_ms = 250;
  f.payload = {1, 2, 3, 4, 5, 6, 7};
  return f;
}

TEST(FrameTest, Roundtrip) {
  Frame f = MakeTestFrame();
  std::vector<std::uint8_t> wire = EncodeFrame(f);
  EXPECT_EQ(wire.size(),
            kFrameHeaderBytes + f.payload.size() + kFrameChecksumBytes);
  Frame out;
  ASSERT_EQ(DecodeFrame(wire, &out), FrameDecodeError::kOk);
  EXPECT_EQ(out.type, f.type);
  EXPECT_EQ(out.request_id, f.request_id);
  EXPECT_EQ(out.deadline_ms, f.deadline_ms);
  EXPECT_EQ(out.payload, f.payload);
}

TEST(FrameTest, DecodeErrorTaxonomy) {
  Frame f = MakeTestFrame();
  std::vector<std::uint8_t> wire = EncodeFrame(f);
  Frame out;

  std::vector<std::uint8_t> shorter(wire.begin(), wire.begin() + 10);
  EXPECT_EQ(DecodeFrame(shorter, &out), FrameDecodeError::kTruncated);

  std::vector<std::uint8_t> bad = wire;
  bad[0] = 'X';
  EXPECT_EQ(DecodeFrame(bad, &out), FrameDecodeError::kBadMagic);

  bad = wire;
  bad[4] = 99;  // version
  EXPECT_EQ(DecodeFrame(bad, &out), FrameDecodeError::kBadVersion);

  bad = wire;
  bad[5] = 0;  // type below range
  EXPECT_EQ(DecodeFrame(bad, &out), FrameDecodeError::kBadType);
  bad[5] = 200;
  EXPECT_EQ(DecodeFrame(bad, &out), FrameDecodeError::kBadType);

  bad = wire;
  bad[18] = 0xff;  // payload length far beyond the buffer
  bad[19] = 0xff;
  bad[20] = 0xff;
  bad[21] = 0xff;
  EXPECT_EQ(DecodeFrame(bad, &out), FrameDecodeError::kBadLength);

  bad = wire;
  bad.resize(bad.size() - 3);  // cut into the checksum
  EXPECT_EQ(DecodeFrame(bad, &out), FrameDecodeError::kTruncated);

  bad = wire;
  bad.push_back(0);
  EXPECT_EQ(DecodeFrame(bad, &out), FrameDecodeError::kTrailingBytes);

  bad = wire;
  bad[kFrameHeaderBytes] ^= 1;  // payload bit
  EXPECT_EQ(DecodeFrame(bad, &out), FrameDecodeError::kBadChecksum);
}

TEST(FrameTest, EverySingleBitFlipIsRejected) {
  // The checksum (or a header check) must catch any single-bit corruption:
  // this is the wire-level half of "no corruption is ever accepted".
  Frame f = MakeTestFrame();
  std::vector<std::uint8_t> wire = EncodeFrame(f);
  Frame out;
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = wire;
      bad[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(DecodeFrame(bad, &out), FrameDecodeError::kOk)
          << "accepted flip of bit " << bit << " in byte " << byte;
    }
  }
}

TEST(FrameTest, ErrorPayloadRoundtripAndStrictness) {
  ErrorInfo info{RpcErrorCode::kRetryLater, 75, "queue full"};
  std::vector<std::uint8_t> payload = EncodeErrorPayload(info);
  ErrorInfo out;
  ASSERT_TRUE(DecodeErrorPayload(payload, &out));
  EXPECT_EQ(out.code, RpcErrorCode::kRetryLater);
  EXPECT_EQ(out.backoff_hint_ms, 75u);
  EXPECT_EQ(out.detail, "queue full");

  std::vector<std::uint8_t> truncated(payload.begin(), payload.end() - 1);
  EXPECT_FALSE(DecodeErrorPayload(truncated, &out));
  std::vector<std::uint8_t> trailing = payload;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeErrorPayload(trailing, &out));
  std::vector<std::uint8_t> bad_code = payload;
  bad_code[0] = 77;
  EXPECT_FALSE(DecodeErrorPayload(bad_code, &out));
}

TEST(FrameTest, QueryPayloadRoundtripAndStrictness) {
  QueryRequest req;
  req.type = MsgType::kRangeQuery;
  req.range = Box{Point{1, 2}, Point{5, 6}};
  req.roles = {"RoleA", "RoleB"};
  std::vector<std::uint8_t> payload = EncodeQueryPayload(req);

  QueryRequest out;
  ASSERT_TRUE(DecodeQueryPayload(MsgType::kRangeQuery, payload, &out));
  EXPECT_EQ(out.range, req.range);
  EXPECT_EQ(out.roles, req.roles);

  // Wrong type for the bytes, truncation, and trailing garbage all fail.
  EXPECT_FALSE(DecodeQueryPayload(MsgType::kVoResponse, payload, &out));
  std::vector<std::uint8_t> truncated(payload.begin(), payload.end() - 2);
  EXPECT_FALSE(DecodeQueryPayload(MsgType::kRangeQuery, truncated, &out));
  std::vector<std::uint8_t> trailing = payload;
  trailing.push_back(7);
  EXPECT_FALSE(DecodeQueryPayload(MsgType::kRangeQuery, trailing, &out));

  // Inverted boxes are rejected at the payload boundary.
  QueryRequest inverted = req;
  inverted.range = Box{Point{5, 6}, Point{1, 2}};
  std::vector<std::uint8_t> bad = EncodeQueryPayload(inverted);
  EXPECT_FALSE(DecodeQueryPayload(MsgType::kRangeQuery, bad, &out));

  QueryRequest eq;
  eq.type = MsgType::kEqualityQuery;
  eq.key = Point{9};
  eq.roles = {"RoleC"};
  std::vector<std::uint8_t> eq_payload = EncodeQueryPayload(eq);
  ASSERT_TRUE(DecodeQueryPayload(MsgType::kEqualityQuery, eq_payload, &out));
  EXPECT_EQ(out.key, eq.key);
  EXPECT_EQ(out.roles, eq.roles);
}

// --- backoff & deadline math ------------------------------------------------

TEST(BackoffTest, GoldenSequenceUnderFixedSeed) {
  // Retry schedules must be reproducible from the seed alone; this pins the
  // exact sequence so any change to the jitter math is a conscious one.
  DecorrelatedJitterBackoff b({/*base_ms=*/10, /*cap_ms=*/1000}, /*seed=*/42);
  const std::uint32_t kGolden[] = {29, 11, 28, 49, 74, 148, 80, 177};
  for (std::uint32_t expect : kGolden) {
    EXPECT_EQ(b.NextDelayMs(), expect);
  }
}

TEST(BackoffTest, SaturatesAtCapAndStaysInRange) {
  DecorrelatedJitterBackoff b({/*base_ms=*/10, /*cap_ms=*/25}, /*seed=*/7);
  std::uint32_t max_seen = 0;
  for (int i = 0; i < 50; ++i) {
    std::uint32_t d = b.NextDelayMs();
    EXPECT_GE(d, 10u);
    EXPECT_LE(d, 25u);
    max_seen = std::max(max_seen, d);
  }
  EXPECT_EQ(max_seen, 25u);
}

TEST(BackoffTest, ServerHintFloorsTheDelay) {
  DecorrelatedJitterBackoff b({10, 1000}, 42);
  EXPECT_EQ(b.NextDelayMs(), 29u);       // same stream as the golden test
  EXPECT_EQ(b.NextDelayMs(200), 200u);   // hint floors the 11ms draw
  DecorrelatedJitterBackoff capped({10, 50}, 42);
  capped.NextDelayMs();
  // A hint above the cap is clamped to the cap.
  EXPECT_EQ(capped.NextDelayMs(500), 50u);
}

TEST(DeadlineBudgetTest, EdgeCases) {
  DeadlineBudget zero(0, 1000);
  EXPECT_EQ(zero.RemainingMs(1000), 0u);
  EXPECT_TRUE(zero.Expired(1000));

  DeadlineBudget b(100, 1000);
  EXPECT_EQ(b.RemainingMs(1000), 100u);
  EXPECT_EQ(b.RemainingMs(1050), 50u);
  EXPECT_EQ(b.RemainingMs(1100), 0u);   // exactly exhausted
  EXPECT_EQ(b.RemainingMs(5000), 0u);   // long past: saturates, no wrap
  EXPECT_EQ(b.RemainingMs(900), 100u);  // clock stepped backwards
}

// --- pipe transport ---------------------------------------------------------

TEST(PipeTransportTest, SendRecvCloseTimeout) {
  auto [a, b] = PipeTransport::CreatePair();
  std::vector<std::uint8_t> msg = {1, 2, 3};
  ASSERT_TRUE(a->Send(msg));
  std::vector<std::uint8_t> got;
  ASSERT_EQ(b->Recv(&got, 100), RecvStatus::kOk);
  EXPECT_EQ(got, msg);

  EXPECT_EQ(b->Recv(&got, 10), RecvStatus::kTimeout);

  a->Close();
  EXPECT_EQ(b->Recv(&got, 10), RecvStatus::kClosed);
  EXPECT_FALSE(b->Send(msg));
}

TEST(PipeTransportTest, FullInboxDropsLikeADatagramLink) {
  auto [a, b] = PipeTransport::CreatePair(/*max_queued_frames=*/2);
  std::vector<std::uint8_t> msg = {9};
  EXPECT_TRUE(a->Send(msg));
  EXPECT_TRUE(a->Send(msg));
  EXPECT_TRUE(a->Send(msg));  // dropped, not an error
  std::vector<std::uint8_t> got;
  EXPECT_EQ(b->Recv(&got, 10), RecvStatus::kOk);
  EXPECT_EQ(b->Recv(&got, 10), RecvStatus::kOk);
  EXPECT_EQ(b->Recv(&got, 10), RecvStatus::kTimeout);
}

// --- faulty transport -------------------------------------------------------

// Inner transport that records every delivered buffer.
class RecordingTransport : public Transport {
 public:
  bool Send(const std::vector<std::uint8_t>& frame) override {
    delivered.push_back(frame);
    return true;
  }
  RecvStatus Recv(std::vector<std::uint8_t>*, std::uint32_t) override {
    return RecvStatus::kTimeout;
  }
  void Close() override {}

  std::vector<std::vector<std::uint8_t>> delivered;
};

TEST(FaultyTransportTest, DeterministicUnderFixedSeed) {
  FaultSpec spec;
  spec.drop_permille = 150;
  spec.hold_permille = 100;
  spec.dup_permille = 100;
  spec.truncate_permille = 100;
  spec.corrupt_permille = 150;

  auto run = [&](std::uint64_t seed) {
    auto inner = std::make_shared<RecordingTransport>();
    FaultyTransport faulty(inner, spec, seed);
    for (std::uint8_t i = 0; i < 200; ++i) {
      std::vector<std::uint8_t> frame(16, i);
      faulty.Send(frame);
    }
    return std::make_pair(inner->delivered, faulty.counters());
  };

  auto [frames1, c1] = run(1234);
  auto [frames2, c2] = run(1234);
  EXPECT_EQ(frames1, frames2);
  EXPECT_EQ(c1.dropped, c2.dropped);
  EXPECT_EQ(c1.corrupted, c2.corrupted);
  // The spec actually exercised every fault at these rates.
  EXPECT_GT(c1.dropped, 0u);
  EXPECT_GT(c1.held, 0u);
  EXPECT_GT(c1.duplicated, 0u);
  EXPECT_GT(c1.truncated, 0u);
  EXPECT_GT(c1.corrupted, 0u);
  EXPECT_EQ(c1.sent, 200u);

  auto [frames3, c3] = run(99);
  EXPECT_NE(frames1, frames3);  // a different seed is a different world
}

TEST(FaultyTransportTest, CorruptedFramesNeverDecode) {
  // corrupt flips exactly one bit, so every corrupted delivery must fail
  // DecodeFrame (checksum), and every clean delivery must succeed.
  FaultSpec spec;
  spec.corrupt_permille = 500;
  auto inner = std::make_shared<RecordingTransport>();
  FaultyTransport faulty(inner, spec, 7);
  Frame f = MakeTestFrame();
  std::vector<std::uint8_t> wire = EncodeFrame(f);
  for (int i = 0; i < 100; ++i) faulty.Send(wire);

  std::size_t ok = 0, rejected = 0;
  Frame out;
  for (const auto& buf : inner->delivered) {
    if (DecodeFrame(buf, &out) == FrameDecodeError::kOk) {
      ++ok;
    } else {
      ++rejected;
    }
  }
  FaultCounters c = faulty.counters();
  EXPECT_EQ(rejected, c.corrupted);
  EXPECT_EQ(ok + rejected, c.sent);
  EXPECT_GT(c.corrupted, 10u);
}

// --- client deadline math against a fake clock ------------------------------

// Transport that never answers; Recv consumes fake time, so the client's
// whole schedule (attempts, backoffs, deadline) runs in zero real time.
class BlackHoleTransport : public Transport {
 public:
  explicit BlackHoleTransport(std::uint64_t* fake_now) : now_(fake_now) {}
  bool Send(const std::vector<std::uint8_t>&) override {
    ++sends;
    return true;
  }
  RecvStatus Recv(std::vector<std::uint8_t>*, std::uint32_t timeout_ms) override {
    *now_ += timeout_ms;
    return RecvStatus::kTimeout;
  }
  void Close() override {}

  int sends = 0;

 private:
  std::uint64_t* now_;
};

core::SystemKeys DummyKeys();  // defined below, after the service fixture

TEST(ClientDeadlineTest, ZeroBudgetFailsBeforeAnySend) {
  std::uint64_t now = 1000;
  auto transport = std::make_shared<BlackHoleTransport>(&now);
  ClientOptions opts;
  opts.deadline_ms = 0;
  ApqaClient client(DummyKeys(), core::UserCredentials{}, transport, opts);
  client.SetClockForTest([&] { return now; });
  client.SetSleepForTest([&](std::uint32_t ms) { now += ms; });

  ClientResult r = client.Equality(Point{1}, nullptr, nullptr);
  EXPECT_EQ(r.status, ClientStatus::kDeadlineExceeded);
  EXPECT_EQ(r.attempts, 0);
  EXPECT_EQ(transport->sends, 0);
}

TEST(ClientDeadlineTest, BudgetBoundsAttemptsAndNeverOversleeps) {
  std::uint64_t now = 0;
  auto transport = std::make_shared<BlackHoleTransport>(&now);
  ClientOptions opts;
  opts.deadline_ms = 1000;
  opts.attempt_timeout_ms = 300;
  opts.max_attempts = 50;
  opts.backoff = {50, 400};
  opts.backoff_seed = 42;
  ApqaClient client(DummyKeys(), core::UserCredentials{}, transport, opts);
  client.SetClockForTest([&] { return now; });
  client.SetSleepForTest([&](std::uint32_t ms) { now += ms; });

  ClientResult r = client.Range(Box{Point{0}, Point{3}}, nullptr);
  EXPECT_EQ(r.status, ClientStatus::kDeadlineExceeded);
  EXPECT_EQ(transport->sends, r.attempts);
  EXPECT_GE(r.attempts, 2);
  EXPECT_LT(r.attempts, 50);
  // The client gave up without sleeping past its deadline.
  EXPECT_LE(now, 1000u + 300u);
  // Deterministic schedule: same seed, same fake clock → same trace.
  std::uint64_t now2 = 0;
  auto transport2 = std::make_shared<BlackHoleTransport>(&now2);
  ApqaClient client2(DummyKeys(), core::UserCredentials{}, transport2, opts);
  client2.SetClockForTest([&] { return now2; });
  client2.SetSleepForTest([&](std::uint32_t ms) { now2 += ms; });
  ClientResult r2 = client2.Range(Box{Point{0}, Point{3}}, nullptr);
  EXPECT_EQ(r2.attempts, r.attempts);
  EXPECT_EQ(r2.backoff_total_ms, r.backoff_total_ms);
  EXPECT_EQ(now2, now);
}

TEST(ClientDeadlineTest, RetriesExhaustedWithinAmpleBudget) {
  std::uint64_t now = 0;
  auto transport = std::make_shared<BlackHoleTransport>(&now);
  ClientOptions opts;
  opts.deadline_ms = 1u << 30;  // effectively unlimited
  opts.attempt_timeout_ms = 100;
  opts.max_attempts = 3;
  opts.backoff = {10, 50};
  ApqaClient client(DummyKeys(), core::UserCredentials{}, transport, opts);
  client.SetClockForTest([&] { return now; });
  client.SetSleepForTest([&](std::uint32_t ms) { now += ms; });

  ClientResult r = client.Equality(Point{1}, nullptr, nullptr);
  EXPECT_EQ(r.status, ClientStatus::kRetriesExhausted);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(transport->sends, 3);
}

// --- shared service fixture -------------------------------------------------

Record Rec(std::uint32_t key, const std::string& value, const char* pol) {
  return Record{Point{key}, value, Policy::Parse(pol)};
}

// One signed deployment for every service-level test (ADS signing is the
// expensive part; the tests only differ in transports and options).
struct ServiceEnv {
  std::unique_ptr<core::DataOwner> owner;
  std::unique_ptr<core::ServiceProvider> sp;
  core::UserCredentials creds_ab;  // {RoleA, RoleB}
  core::UserCredentials creds_c;   // {RoleC}

  static ServiceEnv& Get() {
    static ServiceEnv* env = [] {
      auto* e = new ServiceEnv();  // intentionally leaked test singleton
      core::Domain domain{/*dims=*/1, /*bits=*/4};
      e->owner = std::make_unique<core::DataOwner>(
          RoleSet{"RoleA", "RoleB", "RoleC"}, domain, 20260807);
      std::vector<Record> records = {
          Rec(1, "v1", "RoleA"),
          Rec(3, "v3", "RoleA & RoleB"),
          Rec(4, "v4", "RoleC"),
          Rec(7, "v7", "(RoleA & RoleB) | RoleC"),
          Rec(9, "v9", "RoleB"),
          Rec(12, "v12", "RoleC & RoleB"),
      };
      std::vector<Record> records_s = {
          Rec(3, "s3", "RoleA"),
          Rec(7, "s7", "RoleB"),
          Rec(9, "s9", "RoleC"),
      };
      e->sp = std::make_unique<core::ServiceProvider>(
          e->owner->keys(), e->owner->BuildAds(records));
      e->sp->AttachJoinTable(e->owner->BuildAds(records_s));
      e->creds_ab = e->owner->EnrollUser({"RoleA", "RoleB"});
      e->creds_c = e->owner->EnrollUser({"RoleC"});
      return e;
    }();
    return *env;
  }
};

core::SystemKeys DummyKeys() { return ServiceEnv::Get().owner->keys(); }

ClientOptions FastClientOptions() {
  ClientOptions opts;
  opts.deadline_ms = 20000;  // generous: sanitizer builds are slow
  opts.attempt_timeout_ms = 5000;
  opts.max_attempts = 8;
  opts.backoff = {1, 20};  // short real sleeps keep the suite fast
  return opts;
}

// --- end-to-end over the pipe transport -------------------------------------

TEST(SpServiceTest, EqualityRangeAndJoinOverPipe) {
  ServiceEnv& env = ServiceEnv::Get();
  auto [server_end, client_end] = PipeTransport::CreatePair();
  SpServer server(env.sp.get());
  ASSERT_TRUE(server.AttachTransport(server_end));
  ApqaClient client(env.owner->keys(), env.creds_ab, client_end,
                    FastClientOptions());

  Record rec;
  bool accessible = false;
  ClientResult r = client.Equality(Point{1}, &rec, &accessible);
  ASSERT_TRUE(r.ok()) << r.ToString();
  EXPECT_EQ(r.attempts, 1);
  EXPECT_TRUE(accessible);
  EXPECT_EQ(rec.value, "v1");

  // Inaccessible key: verifies, not accessible.
  r = client.Equality(Point{4}, &rec, &accessible);
  ASSERT_TRUE(r.ok()) << r.ToString();
  EXPECT_FALSE(accessible);

  std::vector<Record> rows;
  r = client.Range(Box{Point{1}, Point{9}}, &rows);
  ASSERT_TRUE(r.ok()) << r.ToString();
  std::vector<std::string> values;
  for (const auto& row : rows) values.push_back(row.value);
  EXPECT_EQ(values, (std::vector<std::string>{"v1", "v3", "v7", "v9"}));

  std::vector<std::pair<Record, Record>> pairs;
  r = client.Join(Box{Point{0}, Point{15}}, &pairs);
  ASSERT_TRUE(r.ok()) << r.ToString();
  ASSERT_EQ(pairs.size(), 2u);  // keys 3 and 7 accessible on both sides
  EXPECT_EQ(pairs[0].first.value, "v3");
  EXPECT_EQ(pairs[0].second.value, "s3");

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.served, 4u);
  EXPECT_EQ(stats.accepted, 4u);
  server.Stop();
}

TEST(SpServiceTest, OutOfDomainQueryIsFatalNotRetried) {
  ServiceEnv& env = ServiceEnv::Get();
  auto [server_end, client_end] = PipeTransport::CreatePair();
  SpServer server(env.sp.get());
  ASSERT_TRUE(server.AttachTransport(server_end));
  ApqaClient client(env.owner->keys(), env.creds_ab, client_end,
                    FastClientOptions());

  Record rec;
  // Key 99 is outside the 4-bit domain: the server answers kBadRequest and
  // the client must not burn retries on it.
  ClientResult r = client.Equality(Point{99}, &rec, nullptr);
  EXPECT_EQ(r.status, ClientStatus::kServerRejected);
  EXPECT_EQ(r.server_error.code, RpcErrorCode::kBadRequest);
  EXPECT_EQ(r.attempts, 1);
  server.Stop();
}

TEST(SpServiceTest, LoadSheddingAnswersEveryFrameAndRecovers) {
  ServiceEnv& env = ServiceEnv::Get();
  auto [server_end, client_end] = PipeTransport::CreatePair(
      /*max_queued_frames=*/4096);
  SpServerOptions opts;
  opts.worker_threads = 2;
  opts.max_queue = 2;  // tiny queue: the flood must shed
  opts.backoff_hint_ms = 5;
  SpServer server(env.sp.get(), opts);
  ASSERT_TRUE(server.AttachTransport(server_end));

  // Flood raw equality frames faster than the SP can execute them.
  constexpr int kFlood = 40;
  QueryRequest req;
  req.type = MsgType::kEqualityQuery;
  req.key = Point{1};
  req.roles = {"RoleA", "RoleB"};
  std::vector<std::uint8_t> payload = EncodeQueryPayload(req);
  for (int i = 0; i < kFlood; ++i) {
    Frame f;
    f.type = MsgType::kEqualityQuery;
    f.request_id = 1000 + static_cast<std::uint64_t>(i);
    f.deadline_ms = 0;  // no deadline: only shedding is under test
    f.payload = payload;
    ASSERT_TRUE(client_end->Send(EncodeFrame(f)));
  }

  // Every decodable query frame gets exactly one response.
  int vo_responses = 0, retry_later = 0;
  std::uint32_t hint = 0;
  for (int i = 0; i < kFlood; ++i) {
    std::vector<std::uint8_t> buf;
    ASSERT_EQ(client_end->Recv(&buf, 30000), RecvStatus::kOk)
        << "response " << i << " never arrived";
    Frame resp;
    ASSERT_EQ(DecodeFrame(buf, &resp), FrameDecodeError::kOk);
    if (resp.type == MsgType::kVoResponse) {
      ++vo_responses;
    } else {
      ASSERT_EQ(resp.type, MsgType::kError);
      ErrorInfo info;
      ASSERT_TRUE(DecodeErrorPayload(resp.payload, &info));
      ASSERT_EQ(info.code, RpcErrorCode::kRetryLater);
      hint = info.backoff_hint_ms;
      ++retry_later;
    }
  }
  EXPECT_GT(retry_later, 0) << "flood never overflowed the queue";
  EXPECT_GT(vo_responses, 0);
  EXPECT_EQ(hint, 5u);  // the server's configured backoff hint came through

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(retry_later));
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(vo_responses));
  EXPECT_EQ(stats.served, stats.accepted);

  // The shed server is not wedged: a verifying client still succeeds.
  ApqaClient client(env.owner->keys(), env.creds_ab, client_end,
                    FastClientOptions());
  Record rec;
  ClientResult r = client.Equality(Point{1}, &rec, nullptr);
  EXPECT_TRUE(r.ok()) << r.ToString();
  server.Stop();
}

TEST(SpServiceTest, QueuedRequestsPastDeadlineAreExpiredNotExecuted) {
  ServiceEnv& env = ServiceEnv::Get();
  auto [server_end, client_end] = PipeTransport::CreatePair(4096);
  SpServerOptions opts;
  opts.worker_threads = 2;
  opts.max_queue = 0;  // unbounded: everything is accepted, some must expire
  SpServer server(env.sp.get(), opts);
  ASSERT_TRUE(server.AttachTransport(server_end));

  constexpr int kBurst = 20;
  QueryRequest req;
  req.type = MsgType::kRangeQuery;
  req.range = Box{Point{0}, Point{15}};
  req.roles = {"RoleA", "RoleB"};
  std::vector<std::uint8_t> payload = EncodeQueryPayload(req);
  for (int i = 0; i < kBurst; ++i) {
    Frame f;
    f.type = MsgType::kRangeQuery;
    f.request_id = 2000 + static_cast<std::uint64_t>(i);
    f.deadline_ms = 1;  // expires while waiting behind earlier queries
    f.payload = payload;
    ASSERT_TRUE(client_end->Send(EncodeFrame(f)));
  }

  int served = 0, expired = 0;
  for (int i = 0; i < kBurst; ++i) {
    std::vector<std::uint8_t> buf;
    ASSERT_EQ(client_end->Recv(&buf, 60000), RecvStatus::kOk);
    Frame resp;
    ASSERT_EQ(DecodeFrame(buf, &resp), FrameDecodeError::kOk);
    if (resp.type == MsgType::kVoResponse) {
      ++served;
    } else {
      ASSERT_EQ(resp.type, MsgType::kError);
      ErrorInfo info;
      ASSERT_TRUE(DecodeErrorPayload(resp.payload, &info));
      ASSERT_EQ(info.code, RpcErrorCode::kDeadlineExceeded);
      ++expired;
    }
  }
  EXPECT_GT(expired, 0) << "no queued request outlived its 1ms deadline";

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(stats.served + stats.expired, stats.accepted);
  EXPECT_EQ(stats.served, static_cast<std::uint64_t>(served));
  EXPECT_EQ(stats.expired, static_cast<std::uint64_t>(expired));
  server.Stop();
}

// --- malicious SP -----------------------------------------------------------

// A scripted "SP" speaking the frame protocol on the server end of a pipe.
class ScriptedSp {
 public:
  using Responder = std::function<std::optional<Frame>(const Frame&)>;

  ScriptedSp(std::shared_ptr<Transport> end, Responder responder)
      : end_(std::move(end)), responder_(std::move(responder)) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~ScriptedSp() {
    stop_.store(true);
    end_->Close();
    thread_.join();
  }

 private:
  void Loop() {
    std::vector<std::uint8_t> buf;
    while (!stop_.load()) {
      RecvStatus st = end_->Recv(&buf, 20);
      if (st == RecvStatus::kClosed) return;
      if (st != RecvStatus::kOk) continue;
      Frame frame;
      if (DecodeFrame(buf, &frame) != FrameDecodeError::kOk) continue;
      std::optional<Frame> resp = responder_(frame);
      if (resp.has_value()) {
        resp->request_id = frame.request_id;
        end_->Send(EncodeFrame(*resp));
      }
    }
  }

  std::shared_ptr<Transport> end_;
  Responder responder_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(MaliciousSpTest, ForgedVoIsFatalOnFirstAttempt) {
  ServiceEnv& env = ServiceEnv::Get();
  // The forged response: a *valid* VO for key 1, served for whatever was
  // asked. It parses cleanly; verification must kill it, and the client
  // must not retry (a malicious SP is not a transient fault).
  core::Vo wrong_vo =
      env.sp->EqualityQuery(Point{1}, env.creds_ab.roles);
  common::ByteWriter w;
  wrong_vo.Serialize(&w);
  std::vector<std::uint8_t> wrong_payload = w.Take();

  auto [server_end, client_end] = PipeTransport::CreatePair();
  ScriptedSp sp(server_end, [&](const Frame&) {
    Frame resp;
    resp.type = MsgType::kVoResponse;
    resp.payload = wrong_payload;
    return resp;
  });
  ApqaClient client(env.owner->keys(), env.creds_ab, client_end,
                    FastClientOptions());
  Record rec;
  ClientResult r = client.Equality(Point{3}, &rec, nullptr);
  EXPECT_EQ(r.status, ClientStatus::kVerifyRejected);
  EXPECT_EQ(r.attempts, 1) << "verification failure must not trigger retries";
  EXPECT_FALSE(r.verify.ok());
}

TEST(MaliciousSpTest, TruncatedVoInsideValidFrameIsRetryable) {
  ServiceEnv& env = ServiceEnv::Get();
  core::Vo vo = env.sp->EqualityQuery(Point{1}, env.creds_ab.roles);
  common::ByteWriter w;
  vo.Serialize(&w);
  std::vector<std::uint8_t> payload = w.Take();
  payload.resize(payload.size() / 2);  // torn VO, re-framed with a good
                                       // checksum: parse fails, not verify

  auto [server_end, client_end] = PipeTransport::CreatePair();
  ScriptedSp sp(server_end, [&](const Frame&) {
    Frame resp;
    resp.type = MsgType::kVoResponse;
    resp.payload = payload;
    return resp;
  });
  ClientOptions opts = FastClientOptions();
  opts.attempt_timeout_ms = 100;
  opts.max_attempts = 3;
  ApqaClient client(env.owner->keys(), env.creds_ab, client_end, opts);
  ClientResult r = client.Equality(Point{1}, nullptr, nullptr);
  EXPECT_EQ(r.status, ClientStatus::kRetriesExhausted);
  EXPECT_EQ(r.attempts, 3);
}

TEST(MaliciousSpTest, WrongResponseTypeIsFatal) {
  ServiceEnv& env = ServiceEnv::Get();
  auto [server_end, client_end] = PipeTransport::CreatePair();
  ScriptedSp sp(server_end, [&](const Frame&) {
    Frame resp;
    resp.type = MsgType::kJoinVoResponse;  // equality query, join response
    resp.payload = {};
    return resp;
  });
  ApqaClient client(env.owner->keys(), env.creds_ab, client_end,
                    FastClientOptions());
  ClientResult r = client.Equality(Point{1}, nullptr, nullptr);
  EXPECT_EQ(r.status, ClientStatus::kVerifyRejected);
  EXPECT_EQ(r.attempts, 1);
}

// --- chaos suite ------------------------------------------------------------

TEST(ChaosTest, QueriesSurviveFaultsAndNoCorruptionIsAccepted) {
  ServiceEnv& env = ServiceEnv::Get();
  auto [server_pipe, client_pipe] = PipeTransport::CreatePair(4096);

  FaultSpec spec;
  spec.drop_permille = 20;
  spec.hold_permille = 10;
  spec.dup_permille = 10;
  spec.truncate_permille = 10;
  spec.corrupt_permille = 20;

  // Fault both directions with independent seeded streams.
  auto server_end =
      std::make_shared<FaultyTransport>(server_pipe, spec, /*seed=*/101);
  auto client_end =
      std::make_shared<FaultyTransport>(client_pipe, spec, /*seed=*/202);

  SpServer server(env.sp.get());
  ASSERT_TRUE(server.AttachTransport(server_end));
  // A lost frame costs a whole attempt timeout, so the chaos budget trades
  // differently from the clean tests: shorter attempts (still far above the
  // sanitizer-slowed query compute time) and room for all 8 of them.
  ClientOptions copts = FastClientOptions();
  copts.attempt_timeout_ms = 4000;
  copts.deadline_ms = 36000;
  ApqaClient client(env.owner->keys(), env.creds_ab, client_end, copts);

  constexpr int kQueries = 20;
  int ok = 0, typed_failures = 0;
  for (int i = 0; i < kQueries; ++i) {
    ClientResult r;
    if (i % 4 == 3) {
      std::vector<Record> rows;
      r = client.Range(Box{Point{1}, Point{9}}, &rows);
      if (r.ok()) {
        ASSERT_EQ(rows.size(), 4u) << "verified range returned wrong rows";
      }
    } else {
      Record rec;
      bool accessible = false;
      r = client.Equality(Point{static_cast<std::uint32_t>(i % 16)}, &rec,
                          &accessible);
    }
    if (r.ok()) {
      ++ok;
    } else {
      // Faults may exhaust a retry budget, but they must never look like
      // anything other than a transient failure: corruption is caught by
      // checksum + strict parsing, so kVerifyRejected here would mean a
      // corrupted response was accepted as authoritative.
      ASSERT_TRUE(r.status == ClientStatus::kRetriesExhausted ||
                  r.status == ClientStatus::kDeadlineExceeded)
          << r.ToString();
      ++typed_failures;
    }
  }
  // With ≤2% per-fault rates and all 8 attempts fitting in the deadline,
  // the per-query failure probability is ~1e-8: every query must succeed.
  EXPECT_EQ(ok, kQueries) << typed_failures << " typed failures";

  FaultCounters sc = server_end->counters();
  FaultCounters cc = client_end->counters();
  EXPECT_GT(sc.sent + cc.sent, static_cast<std::uint64_t>(kQueries));

  // Server is not wedged after the chaos: clean transport, clean query.
  auto [srv2, cli2] = PipeTransport::CreatePair();
  ASSERT_TRUE(server.AttachTransport(srv2));
  ApqaClient clean(env.owner->keys(), env.creds_ab, cli2,
                   FastClientOptions());
  Record rec;
  ClientResult r = clean.Equality(Point{1}, &rec, nullptr);
  ASSERT_TRUE(r.ok()) << r.ToString();
  EXPECT_EQ(rec.value, "v1");

  server.Stop();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, stats.served + stats.expired + stats.failed);
}

TEST(ChaosTest, IdenticalSeedsGiveIdenticalFaultDecisions) {
  // The fault schedule is a pure function of the seed: two runs over the
  // same frame sequence make byte-identical deliveries (full determinism
  // of the e2e suite additionally depends on thread interleaving, which
  // only shifts *when* retries happen, never whether corruption can pass).
  FaultSpec spec;
  spec.drop_permille = 80;
  spec.hold_permille = 40;
  spec.dup_permille = 40;
  spec.truncate_permille = 40;
  spec.corrupt_permille = 80;
  Frame f = MakeTestFrame();
  std::vector<std::uint8_t> wire = EncodeFrame(f);

  std::vector<std::vector<std::uint8_t>> first;
  for (int run = 0; run < 2; ++run) {
    auto inner = std::make_shared<RecordingTransport>();
    FaultyTransport faulty(inner, spec, /*seed=*/4242);
    for (int i = 0; i < 300; ++i) faulty.Send(wire);
    if (run == 0) {
      first = inner->delivered;
    } else {
      EXPECT_EQ(first, inner->delivered);
    }
  }
}

// --- shutdown under load ----------------------------------------------------

TEST(ShutdownTest, DrainThenStopLosesNoAcceptedRequest) {
  ServiceEnv& env = ServiceEnv::Get();
  SpServerOptions opts;
  opts.worker_threads = 2;
  opts.max_queue = 4;
  auto server = std::make_unique<SpServer>(env.sp.get(), opts);

  constexpr int kClients = 2;
  constexpr int kQueriesEach = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0}, transient{0}, unexpected{0};
  for (int c = 0; c < kClients; ++c) {
    auto [server_end, client_end] = PipeTransport::CreatePair();
    ASSERT_TRUE(server->AttachTransport(server_end));
    threads.emplace_back([&, client_end = client_end] {
      ClientOptions copts = FastClientOptions();
      copts.deadline_ms = 3000;
      copts.attempt_timeout_ms = 1000;
      copts.max_attempts = 2;
      ApqaClient client(env.owner->keys(), env.creds_ab, client_end, copts);
      for (int q = 0; q < kQueriesEach; ++q) {
        Record rec;
        ClientResult r =
            client.Equality(Point{static_cast<std::uint32_t>(q % 16)}, &rec,
                            nullptr);
        switch (r.status) {
          case ClientStatus::kOk:
            ++ok;
            break;
          case ClientStatus::kRetriesExhausted:
          case ClientStatus::kDeadlineExceeded:
          case ClientStatus::kTransportClosed:
            ++transient;  // shutdown raced the query: typed, not hung
            break;
          default:
            ++unexpected;
        }
      }
    });
  }
  // Let some queries through, then stop under load.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server->Stop();
  for (auto& t : threads) t.join();

  ServerStats stats = server->stats();
  // The shutdown contract: every accepted request was answered one way.
  EXPECT_EQ(stats.accepted, stats.served + stats.expired + stats.failed);
  EXPECT_EQ(ok.load() + transient.load() + unexpected.load(),
            kClients * kQueriesEach);
  EXPECT_EQ(unexpected.load(), 0);
  // Post-stop attachments are refused.
  auto [a, b] = PipeTransport::CreatePair();
  EXPECT_FALSE(server->AttachTransport(a));
  server.reset();  // double-Stop via destructor is safe
}

// --- TCP transport ----------------------------------------------------------

TEST(TcpTransportTest, QueryOverRealSockets) {
  ServiceEnv& env = ServiceEnv::Get();
  TcpListener listener(/*port=*/0);  // ephemeral
  ASSERT_TRUE(listener.ok());
  ASSERT_NE(listener.port(), 0);

  SpServer server(env.sp.get());
  std::thread acceptor([&] {
    auto conn = listener.Accept(10000);
    if (conn != nullptr) server.AttachTransport(std::move(conn));
  });

  auto transport =
      SocketTransport::Connect("127.0.0.1", listener.port(), 2000);
  ASSERT_NE(transport, nullptr);
  acceptor.join();

  ApqaClient client(env.owner->keys(), env.creds_c,
                    std::shared_ptr<Transport>(std::move(transport)),
                    FastClientOptions());
  Record rec;
  bool accessible = false;
  ClientResult r = client.Equality(Point{4}, &rec, &accessible);
  ASSERT_TRUE(r.ok()) << r.ToString();
  EXPECT_TRUE(accessible);
  EXPECT_EQ(rec.value, "v4");

  std::vector<Record> rows;
  r = client.Range(Box{Point{0}, Point{15}}, &rows);
  ASSERT_TRUE(r.ok()) << r.ToString();
  EXPECT_EQ(rows.size(), 2u);  // v4 and v7; v12 needs RoleB too
  server.Stop();
}

TEST(TcpTransportTest, ClosedConnectionSurfacesAsTransportClosed) {
  ServiceEnv& env = ServiceEnv::Get();
  TcpListener listener(0);
  ASSERT_TRUE(listener.ok());
  std::unique_ptr<SocketTransport> server_side;
  std::thread acceptor([&] { server_side = listener.Accept(10000); });
  auto transport = SocketTransport::Connect("127.0.0.1", listener.port(), 2000);
  ASSERT_NE(transport, nullptr);
  acceptor.join();
  ASSERT_NE(server_side, nullptr);
  server_side->Close();  // server vanishes without answering

  ClientOptions opts = FastClientOptions();
  opts.attempt_timeout_ms = 200;
  ApqaClient client(env.owner->keys(), env.creds_ab,
                    std::shared_ptr<Transport>(std::move(transport)), opts);
  ClientResult r = client.Equality(Point{1}, nullptr, nullptr);
  EXPECT_EQ(r.status, ClientStatus::kTransportClosed);
}

}  // namespace
}  // namespace apqa::net

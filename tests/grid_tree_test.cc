// Unit tests for the AP²G-tree structure itself (navigation, policies,
// pseudo records, and the DO → SP serialization of the outsourced ADS).
#include <gtest/gtest.h>

#include "core/range_query.h"
#include "core/system.h"

namespace apqa::core {
namespace {

class GridTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(777);
    abs::Abs::Setup(rng_.get(), &msk_, &mvk_);
    universe_ = {"RoleA", "RoleB"};
    RoleSet all = universe_;
    all.insert(kPseudoRole);
    sk_ = abs::Abs::KeyGen(msk_, all, rng_.get());
  }

  GridTree BuildSmall() {
    Domain domain{2, 2};  // 4x4
    std::vector<Record> records = {
        Record{Point{0, 1}, "a", Policy::Parse("RoleA")},
        Record{Point{3, 2}, "b", Policy::Parse("RoleB")},
    };
    return GridTree::Build(mvk_, sk_, domain, records, rng_.get());
  }

  std::unique_ptr<Rng> rng_;
  abs::MasterKey msk_;
  abs::VerifyKey mvk_;
  RoleSet universe_;
  abs::SigningKey sk_;
};

TEST_F(GridTreeTest, FullTreeShape) {
  GridTree tree = BuildSmall();
  EXPECT_EQ(tree.LeafCount(), 16u);
  EXPECT_EQ(tree.NodeCount(), 16u + 4u + 1u);
  EXPECT_EQ(tree.depth(), 2);
  const auto& root = tree.GetNode(tree.Root());
  EXPECT_FALSE(root.is_leaf);
  EXPECT_EQ(root.box, (Box{Point{0, 0}, Point{3, 3}}));
}

TEST_F(GridTreeTest, ChildrenPartitionParent) {
  GridTree tree = BuildSmall();
  auto children = tree.Children(tree.Root());
  ASSERT_EQ(children.size(), 4u);
  std::uint64_t vol = 0;
  for (auto c : children) {
    const auto& node = tree.GetNode(c);
    EXPECT_TRUE(tree.GetNode(tree.Root()).box.ContainsBox(node.box));
    vol += node.box.Volume();
  }
  EXPECT_EQ(vol, 16u);
}

TEST_F(GridTreeTest, LeafAtFindsCell) {
  GridTree tree = BuildSmall();
  auto id = tree.LeafAt(Point{3, 2});
  const auto& leaf = tree.GetNode(id);
  EXPECT_TRUE(leaf.is_leaf);
  EXPECT_FALSE(leaf.is_pseudo);
  EXPECT_EQ(leaf.record.value, "b");
  const auto& empty = tree.GetNode(tree.LeafAt(Point{2, 2}));
  EXPECT_TRUE(empty.is_pseudo);
  EXPECT_EQ(empty.record.policy.ToString(), kPseudoRole);
}

TEST_F(GridTreeTest, InternalPolicyIsOrOfChildren) {
  GridTree tree = BuildSmall();
  const auto& root = tree.GetNode(tree.Root());
  // Root must be satisfiable by any role that reaches some record and by no
  // empty role set.
  EXPECT_TRUE(root.policy.Evaluate({"RoleA"}));
  EXPECT_TRUE(root.policy.Evaluate({"RoleB"}));
  EXPECT_FALSE(root.policy.Evaluate({}));
}

TEST_F(GridTreeTest, RejectsDuplicateKeys) {
  Domain domain{1, 2};
  std::vector<Record> dup = {
      Record{Point{1}, "x", Policy::Parse("RoleA")},
      Record{Point{1}, "y", Policy::Parse("RoleB")},
  };
  EXPECT_THROW(GridTree::Build(mvk_, sk_, domain, dup, rng_.get()),
               std::invalid_argument);
}

TEST_F(GridTreeTest, RejectsOutOfDomainKeys) {
  Domain domain{1, 2};
  std::vector<Record> bad = {Record{Point{7}, "x", Policy::Parse("RoleA")}};
  EXPECT_THROW(GridTree::Build(mvk_, sk_, domain, bad, rng_.get()),
               std::invalid_argument);
  std::vector<Record> wrong_dims = {
      Record{Point{1, 1}, "x", Policy::Parse("RoleA")}};
  EXPECT_THROW(GridTree::Build(mvk_, sk_, domain, wrong_dims, rng_.get()),
               std::invalid_argument);
}

TEST_F(GridTreeTest, SerializationRoundTripServesQueries) {
  GridTree tree = BuildSmall();
  common::ByteWriter w;
  tree.Serialize(&w);
  common::ByteReader r(w.data());
  auto back = GridTree::Deserialize(&r);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back->NodeCount(), tree.NodeCount());

  // The deserialized ADS answers verifiable queries.
  RoleSet roles = {"RoleA"};
  Box range{Point{0, 0}, Point{3, 3}};
  Rng qrng(5);
  Vo vo = BuildRangeVo(*back, mvk_, range, roles, universe_, &qrng);
  std::vector<Record> results;
  std::string error;
  ASSERT_TRUE(VerifyRangeVo(mvk_, back->domain(), range, roles, universe_, vo,
                            &results, &error))
      << error;
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].value, "a");
}

TEST_F(GridTreeTest, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> garbage = {0xff, 0xff, 0xff, 0xff, 1, 2, 3};
  common::ByteReader r(garbage);
  EXPECT_FALSE(GridTree::Deserialize(&r).has_value());

  GridTree tree = BuildSmall();
  common::ByteWriter w;
  tree.Serialize(&w);
  auto bytes = w.data();
  common::ByteReader r2(bytes.data(), bytes.size() / 2);
  EXPECT_FALSE(GridTree::Deserialize(&r2).has_value());
}

}  // namespace
}  // namespace apqa::core

// Tests for G1/G2 group law and the standard BLS12-381 generators.
#include <gtest/gtest.h>

#include "crypto/curve.h"
#include "crypto/rng.h"

namespace apqa::crypto {
namespace {

TEST(G1Test, GeneratorOnCurve) {
  EXPECT_TRUE(G1Generator().OnCurve(G1CurveB()));
  EXPECT_FALSE(G1Generator().IsInfinity());
}

TEST(G1Test, GeneratorHasOrderR) {
  // r * G == infinity validates both the subgroup order constant and the
  // generator coordinates.
  Limbs<4> r = FrTag::kModulus;
  G1 acc = G1::Infinity();
  const G1& g = G1Generator();
  for (std::size_t i = BitLengthLimbs<4>(r); i-- > 0;) {
    acc = acc.Double();
    if (BitLimbs<4>(r, i)) acc = acc + g;
  }
  EXPECT_TRUE(acc.IsInfinity());
}

TEST(G2Test, GeneratorOnCurve) {
  EXPECT_TRUE(G2Generator().OnCurve(G2CurveB()));
}

TEST(G2Test, GeneratorHasOrderR) {
  Limbs<4> r = FrTag::kModulus;
  G2 acc = G2::Infinity();
  const G2& g = G2Generator();
  for (std::size_t i = BitLengthLimbs<4>(r); i-- > 0;) {
    acc = acc.Double();
    if (BitLimbs<4>(r, i)) acc = acc + g;
  }
  EXPECT_TRUE(acc.IsInfinity());
}

TEST(G1Test, GroupLaws) {
  Rng rng(42);
  G1 a = G1Mul(rng.NextFr());
  G1 b = G1Mul(rng.NextFr());
  G1 c = G1Mul(rng.NextFr());
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a + G1::Infinity(), a);
  EXPECT_TRUE((a - a).IsInfinity());
  EXPECT_EQ(a.Double(), a + a);
  EXPECT_TRUE(a.OnCurve(G1CurveB()));
  EXPECT_TRUE((a + b).OnCurve(G1CurveB()));
}

TEST(G1Test, ScalarMulDistributes) {
  Rng rng(43);
  Fr x = rng.NextFr(), y = rng.NextFr();
  // g^(x+y) == g^x * g^y
  EXPECT_EQ(G1Mul(x + y), G1Mul(x) + G1Mul(y));
  // (g^x)^y == g^(xy)
  EXPECT_EQ(G1Mul(x).ScalarMul(y), G1Mul(x * y));
}

TEST(G2Test, ScalarMulDistributes) {
  Rng rng(44);
  Fr x = rng.NextFr(), y = rng.NextFr();
  EXPECT_EQ(G2Mul(x + y), G2Mul(x) + G2Mul(y));
  EXPECT_EQ(G2Mul(x).ScalarMul(y), G2Mul(x * y));
}

TEST(G1Test, AffineRoundTrip) {
  Rng rng(45);
  G1 a = G1Mul(rng.NextFr());
  Fp ax, ay;
  a.ToAffine(&ax, &ay);
  EXPECT_EQ(G1::FromAffine(ax, ay), a);
}

TEST(G1Test, ScalarMulByZeroAndOne) {
  EXPECT_TRUE(G1Mul(Fr::Zero()).IsInfinity());
  EXPECT_EQ(G1Mul(Fr::One()), G1Generator());
}

TEST(G1Test, WnafMatchesBinaryScalarMul) {
  Rng rng(47);
  const G1& g = G1Generator();
  for (int i = 0; i < 20; ++i) {
    Fr k = rng.NextFr();
    EXPECT_EQ(g.ScalarMul(k), g.ScalarMulBinary(k));
  }
  // Edge scalars.
  EXPECT_TRUE(g.ScalarMul(Fr::Zero()).IsInfinity());
  EXPECT_EQ(g.ScalarMul(Fr::One()), g);
  EXPECT_EQ(g.ScalarMul(-Fr::One()), -g);
  EXPECT_EQ(g.ScalarMul(Fr::FromU64(15)), g.ScalarMulBinary(Fr::FromU64(15)));
  EXPECT_EQ(g.ScalarMul(Fr::FromU64(16)), g.ScalarMulBinary(Fr::FromU64(16)));
}

TEST(G2Test, WnafMatchesBinaryScalarMul) {
  Rng rng(48);
  const G2& g = G2Generator();
  for (int i = 0; i < 10; ++i) {
    Fr k = rng.NextFr();
    EXPECT_EQ(g.ScalarMul(k), g.ScalarMulBinary(k));
  }
}

TEST(G1Test, AddInverseEdgeCases) {
  Rng rng(46);
  G1 a = G1Mul(rng.NextFr());
  EXPECT_TRUE((a + (-a)).IsInfinity());
  EXPECT_EQ(G1::Infinity() + a, a);
  EXPECT_TRUE(G1::Infinity().Double().IsInfinity());
}

}  // namespace
}  // namespace apqa::crypto

// Known-answer tests for SHA-256 (FIPS 180-4 vectors) and sanity tests for
// the ChaCha20 RNG.
#include <gtest/gtest.h>

#include <set>

#include "crypto/rng.h"
#include "crypto/sha256.h"

namespace apqa::crypto {
namespace {

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(DigestToHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg(317, 'x');
  for (std::size_t split = 0; split <= msg.size(); split += 63) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finish(), Sha256::Hash(msg));
  }
}

TEST(RngTest, DeterministicWithSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, FrInRange) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    Fr f = rng.NextFr();
    Limbs<4> c = f.ToCanonical();
    EXPECT_LT(CompareLimbs<4>(c, FrTag::kModulus), 0);
  }
}

TEST(RngTest, NoObviousRepeats) {
  Rng rng(10);
  std::set<u64> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(rng.NextU64()).second);
  }
}

TEST(RngTest, NonZeroFrIsNonZero) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextNonZeroFr().IsZero());
  }
}

}  // namespace
}  // namespace apqa::crypto

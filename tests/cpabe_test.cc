// Tests for CP-ABE and the hybrid AES envelope, plus AES-128 known-answer
// vectors (FIPS 197 / NIST SP 800-38A).
#include <gtest/gtest.h>

#include "cpabe/cpabe.h"

namespace apqa::cpabe {
namespace {

using crypto::Rng;

TEST(Aes128Test, Fips197Vector) {
  // FIPS 197 Appendix B.
  crypto::AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  std::uint8_t block[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                            0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  crypto::Aes128 aes(key);
  aes.EncryptBlock(block);
  const std::uint8_t want[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                 0x19, 0x6a, 0x0b, 0x32};
  EXPECT_EQ(0, std::memcmp(block, want, 16));
}

TEST(Aes128Test, CtrRoundTripAndLengths) {
  crypto::AesKey key{};
  crypto::AesNonce nonce{};
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 4096u}) {
    std::vector<std::uint8_t> msg(len);
    for (std::size_t i = 0; i < len; ++i) msg[i] = static_cast<std::uint8_t>(i);
    auto ct = crypto::AesCtr(key, nonce, msg);
    EXPECT_EQ(ct.size(), len);
    EXPECT_EQ(crypto::AesCtr(key, nonce, ct), msg);
    if (len >= 16) {
      EXPECT_NE(ct, msg);
    }
  }
}

class CpAbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(77);
    CpAbe::Setup(rng_.get(), &mk_, &pk_);
  }
  std::unique_ptr<Rng> rng_;
  MasterKey mk_;
  PublicKey pk_;
};

TEST_F(CpAbeTest, EncryptDecryptSatisfied) {
  Policy pol = Policy::Parse("(Doctor & Cancer) | SeniorResearcher");
  GT m = crypto::Pairing(crypto::G1Mul(rng_->NextNonZeroFr()),
                         crypto::G2Mul(rng_->NextNonZeroFr()));
  Ciphertext ct = CpAbe::Encrypt(pk_, m, pol, rng_.get());

  SecretKey sk1 = CpAbe::KeyGen(mk_, pk_, {"Doctor", "Cancer"}, rng_.get());
  auto out1 = CpAbe::Decrypt(pk_, sk1, ct);
  ASSERT_TRUE(out1.has_value());
  EXPECT_EQ(*out1, m);

  SecretKey sk2 = CpAbe::KeyGen(mk_, pk_, {"SeniorResearcher"}, rng_.get());
  auto out2 = CpAbe::Decrypt(pk_, sk2, ct);
  ASSERT_TRUE(out2.has_value());
  EXPECT_EQ(*out2, m);
}

TEST_F(CpAbeTest, DecryptFailsUnsatisfied) {
  Policy pol = Policy::Parse("Doctor & Cancer");
  GT m = crypto::Pairing(crypto::G1Generator(), crypto::G2Generator());
  Ciphertext ct = CpAbe::Encrypt(pk_, m, pol, rng_.get());
  SecretKey sk = CpAbe::KeyGen(mk_, pk_, {"Doctor"}, rng_.get());
  EXPECT_FALSE(CpAbe::Decrypt(pk_, sk, ct).has_value());
  SecretKey sk_other = CpAbe::KeyGen(mk_, pk_, {"Nurse", "Cancer"}, rng_.get());
  EXPECT_FALSE(CpAbe::Decrypt(pk_, sk_other, ct).has_value());
}

TEST_F(CpAbeTest, WrongUsersKeyYieldsGarbage) {
  // A key for a different attribute set that still satisfies the policy
  // decrypts correctly; two independent keys must agree.
  Policy pol = Policy::Parse("A | B");
  GT m = crypto::Pairing(crypto::G1Generator(), crypto::G2Generator());
  Ciphertext ct = CpAbe::Encrypt(pk_, m, pol, rng_.get());
  SecretKey ska = CpAbe::KeyGen(mk_, pk_, {"A"}, rng_.get());
  SecretKey skb = CpAbe::KeyGen(mk_, pk_, {"B"}, rng_.get());
  auto outa = CpAbe::Decrypt(pk_, ska, ct);
  auto outb = CpAbe::Decrypt(pk_, skb, ct);
  ASSERT_TRUE(outa.has_value() && outb.has_value());
  EXPECT_EQ(*outa, *outb);
  EXPECT_EQ(*outa, m);
}

TEST_F(CpAbeTest, EnvelopeSealOpen) {
  Policy pol = Policy::Parse("RoleA & RoleB");
  std::vector<std::uint8_t> msg = {'s', 'e', 'c', 'r', 'e', 't', '!', 0x00,
                                   0xff, 0x80};
  Envelope env = Seal(pk_, pol, msg, rng_.get());
  EXPECT_NE(env.body, msg);

  SecretKey good = CpAbe::KeyGen(mk_, pk_, {"RoleA", "RoleB", "RoleC"}, rng_.get());
  auto open = Open(pk_, good, env);
  ASSERT_TRUE(open.has_value());
  EXPECT_EQ(*open, msg);

  SecretKey bad = CpAbe::KeyGen(mk_, pk_, {"RoleA"}, rng_.get());
  EXPECT_FALSE(Open(pk_, bad, env).has_value());
}

TEST_F(CpAbeTest, EnvelopeEmptyPayload) {
  Policy pol = Policy::Parse("RoleA");
  Envelope env = Seal(pk_, pol, {}, rng_.get());
  SecretKey sk = CpAbe::KeyGen(mk_, pk_, {"RoleA"}, rng_.get());
  auto open = Open(pk_, sk, env);
  ASSERT_TRUE(open.has_value());
  EXPECT_TRUE(open->empty());
}

TEST_F(CpAbeTest, CiphertextSerializationRoundTrip) {
  Policy pol = Policy::Parse("(A & B) | C");
  GT m = crypto::Pairing(crypto::G1Generator(), crypto::G2Generator());
  Ciphertext ct = CpAbe::Encrypt(pk_, m, pol, rng_.get());
  common::ByteWriter w;
  ct.Serialize(&w);
  EXPECT_EQ(w.size(), ct.SerializedSize());
  common::ByteReader r(w.data());
  Ciphertext back = Ciphertext::Deserialize(&r);
  ASSERT_TRUE(r.ok());
  SecretKey sk = CpAbe::KeyGen(mk_, pk_, {"C"}, rng_.get());
  auto out = CpAbe::Decrypt(pk_, sk, back);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST_F(CpAbeTest, EnvelopeSerializationRoundTrip) {
  Policy pol = Policy::Parse("RoleA");
  std::vector<std::uint8_t> msg = {1, 2, 3, 4, 5};
  Envelope env = Seal(pk_, pol, msg, rng_.get());
  common::ByteWriter w;
  env.Serialize(&w);
  common::ByteReader r(w.data());
  Envelope back = Envelope::Deserialize(&r);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  SecretKey sk = CpAbe::KeyGen(mk_, pk_, {"RoleA"}, rng_.get());
  auto open = Open(pk_, sk, back);
  ASSERT_TRUE(open.has_value());
  EXPECT_EQ(*open, msg);
}

TEST_F(CpAbeTest, TruncatedEnvelopeFailsGracefully) {
  Policy pol = Policy::Parse("RoleA");
  Envelope env = Seal(pk_, pol, {9, 9, 9}, rng_.get());
  common::ByteWriter w;
  env.Serialize(&w);
  // Truncate at various points: deserialization must not crash and the
  // reader must flag the error.
  auto bytes = w.data();
  for (std::size_t cut : {std::size_t{0}, std::size_t{10}, bytes.size() / 2,
                          bytes.size() - 1}) {
    common::ByteReader r(bytes.data(), cut);
    Envelope back = Envelope::Deserialize(&r);
    EXPECT_FALSE(r.ok() && r.AtEnd());
  }
}

TEST_F(CpAbeTest, ComplexPolicyAcrossLattice) {
  Policy pol = Policy::Parse("(A & B) | (C & D & E) | (A & E)");
  GT m = crypto::Pairing(crypto::G1Generator(), crypto::G2Generator());
  Ciphertext ct = CpAbe::Encrypt(pk_, m, pol, rng_.get());
  std::vector<std::string> uni = {"A", "B", "C", "D", "E"};
  for (unsigned mask = 0; mask < 32; ++mask) {
    RoleSet roles;
    for (int i = 0; i < 5; ++i) {
      if (mask & (1u << i)) roles.insert(uni[i]);
    }
    SecretKey sk = CpAbe::KeyGen(mk_, pk_, roles, rng_.get());
    auto out = CpAbe::Decrypt(pk_, sk, ct);
    EXPECT_EQ(out.has_value(), pol.Evaluate(roles)) << "mask=" << mask;
    if (out.has_value()) {
      EXPECT_EQ(*out, m);
    }
  }
}

}  // namespace
}  // namespace apqa::cpabe

// Tests for binary serialization: primitives, group elements, and
// robustness of readers against truncated or corrupt input.
#include <gtest/gtest.h>

#include "common/serde.h"
#include "crypto/rng.h"
#include "crypto/pairing.h"
#include "crypto/serde.h"
#include "test_hostile_points.h"

namespace apqa {
namespace {

using common::ByteReader;
using common::ByteWriter;

TEST(ByteIoTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutString("hello");
  w.PutString("");
  ByteReader r(w.data());
  EXPECT_EQ(r.GetU8(), 0xab);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_EQ(r.GetString(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteIoTest, TruncationFlagsError) {
  ByteWriter w;
  w.PutU64(42);
  ByteReader r(w.data().data(), 3);
  EXPECT_EQ(r.GetU64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ByteIoTest, OversizedStringLengthFlagsError) {
  ByteWriter w;
  w.PutU32(1000000);  // claims a huge string with no payload
  ByteReader r(w.data());
  EXPECT_EQ(r.GetString(), "");
  EXPECT_FALSE(r.ok());
}

TEST(GroupSerdeTest, FrRoundTrip) {
  crypto::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    crypto::Fr v = rng.NextFr();
    ByteWriter w;
    crypto::WriteFr(&w, v);
    EXPECT_EQ(w.size(), 32u);
    ByteReader r(w.data());
    EXPECT_EQ(crypto::ReadFr(&r), v);
  }
}

TEST(GroupSerdeTest, G1RoundTripIncludingInfinity) {
  crypto::Rng rng(2);
  ByteWriter w;
  crypto::G1 p = crypto::G1Mul(rng.NextNonZeroFr());
  crypto::WriteG1(&w, p);
  crypto::WriteG1(&w, crypto::G1::Infinity());
  ByteReader r(w.data());
  EXPECT_EQ(crypto::ReadG1(&r), p);
  EXPECT_TRUE(crypto::ReadG1(&r).IsInfinity());
  EXPECT_TRUE(r.AtEnd());
}

TEST(GroupSerdeTest, G2RoundTrip) {
  crypto::Rng rng(3);
  crypto::G2 p = crypto::G2Mul(rng.NextNonZeroFr());
  ByteWriter w;
  crypto::WriteG2(&w, p);
  EXPECT_EQ(w.size(), 1u + 4 * 48);
  ByteReader r(w.data());
  EXPECT_EQ(crypto::ReadG2(&r), p);
}

TEST(GroupSerdeTest, GTRoundTrip) {
  crypto::Rng rng(4);
  crypto::GT f = crypto::Pairing(crypto::G1Mul(rng.NextNonZeroFr()),
                                 crypto::G2Mul(rng.NextNonZeroFr()));
  ByteWriter w;
  crypto::WriteGT(&w, f);
  EXPECT_EQ(w.size(), 12u * 48);
  ByteReader r(w.data());
  EXPECT_EQ(crypto::ReadGT(&r), f);
}

TEST(GroupSerdeTest, HashToFrDeterministicAndDomainSeparated) {
  EXPECT_EQ(crypto::HashToFr("abc"), crypto::HashToFr("abc"));
  EXPECT_NE(crypto::HashToFr("abc"), crypto::HashToFr("abd"));
  EXPECT_NE(crypto::HashToFr(""), crypto::HashToFr("x"));
}

// --- Hostile-input rejection ----------------------------------------------
//
// Every reader on the untrusted path must flag precise WireErrors rather
// than silently coercing bad bytes into some valid-looking element.

TEST(HostileSerdeTest, NonCanonicalFrRejected) {
  std::vector<std::uint8_t> buf(32, 0xff);  // 2^256 - 1 >= r
  ByteReader r(buf.data(), buf.size());
  EXPECT_TRUE(crypto::ReadFr(&r).IsZero());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), common::WireError::kNonCanonical);
}

TEST(HostileSerdeTest, NonCanonicalFpRejected) {
  std::vector<std::uint8_t> buf(48, 0xff);
  ByteReader r(buf.data(), buf.size());
  EXPECT_TRUE(crypto::ReadFp(&r).IsZero());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), common::WireError::kNonCanonical);
}

TEST(HostileSerdeTest, BadInfinityFlagRejected) {
  ByteWriter w;
  w.PutU8(2);  // only 0 (infinity) and 1 (affine) are legal
  ByteReader r(w.data());
  EXPECT_TRUE(crypto::ReadG1(&r).IsInfinity());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), common::WireError::kNonCanonical);
}

TEST(HostileSerdeTest, OffCurveG1Rejected) {
  crypto::Rng rng(6);
  crypto::G1 p = crypto::G1Mul(rng.NextNonZeroFr());
  crypto::Fp ax, ay;
  p.ToAffine(&ax, &ay);
  ByteWriter w;
  w.PutU8(1);
  crypto::WriteFp(&w, ax);
  crypto::WriteFp(&w, ay + crypto::Fp::One());  // y' != ±y: off curve
  ByteReader r(w.data());
  EXPECT_TRUE(crypto::ReadG1(&r).IsInfinity());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), common::WireError::kPointNotOnCurve);
}

TEST(HostileSerdeTest, NonSubgroupG1Rejected) {
  crypto::G1 p = crypto::hostile::NonSubgroupG1();
  ASSERT_TRUE(p.OnCurve(crypto::G1CurveB()));
  ASSERT_FALSE(p.InPrimeOrderSubgroup());
  crypto::Fp ax, ay;
  p.ToAffine(&ax, &ay);
  ByteWriter w;
  w.PutU8(1);
  crypto::WriteFp(&w, ax);
  crypto::WriteFp(&w, ay);
  ByteReader r(w.data());
  EXPECT_TRUE(crypto::ReadG1(&r).IsInfinity());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), common::WireError::kPointNotInSubgroup);
}

TEST(HostileSerdeTest, NonSubgroupG2Rejected) {
  crypto::G2 p = crypto::hostile::NonSubgroupG2();
  ASSERT_TRUE(p.OnCurve(crypto::G2CurveB()));
  ASSERT_FALSE(p.InPrimeOrderSubgroup());
  crypto::Fp2 ax, ay;
  p.ToAffine(&ax, &ay);
  ByteWriter w;
  w.PutU8(1);
  crypto::WriteFp(&w, ax.c0);
  crypto::WriteFp(&w, ax.c1);
  crypto::WriteFp(&w, ay.c0);
  crypto::WriteFp(&w, ay.c1);
  ByteReader r(w.data());
  EXPECT_TRUE(crypto::ReadG2(&r).IsInfinity());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), common::WireError::kPointNotInSubgroup);
}

TEST(HostileSerdeTest, TruncatedG2AtEveryBoundaryFlagsError) {
  crypto::Rng rng(7);
  crypto::G2 p = crypto::G2Mul(rng.NextNonZeroFr());
  ByteWriter w;
  crypto::WriteG2(&w, p);
  for (std::size_t n = 0; n < w.size(); ++n) {
    ByteReader r(w.data().data(), n);
    crypto::ReadG2(&r);
    EXPECT_FALSE(r.ok()) << "prefix length " << n;
  }
}

TEST(GroupSerdeTest, SerializationIsCanonical) {
  // Two different Jacobian representations of the same point serialize
  // identically (affine normalization).
  crypto::Rng rng(5);
  crypto::Fr k = rng.NextNonZeroFr();
  crypto::G1 a = crypto::G1Mul(k);
  crypto::G1 b = crypto::G1Mul(k).Double() - crypto::G1Mul(k);
  ASSERT_EQ(a, b);
  ByteWriter wa, wb;
  crypto::WriteG1(&wa, a);
  crypto::WriteG1(&wb, b);
  EXPECT_EQ(wa.data(), wb.data());
}

}  // namespace
}  // namespace apqa

// Tests for continuous query attributes under the relaxed model (§9.2).
#include <gtest/gtest.h>

#include "core/continuous.h"

namespace apqa::core {
namespace {

class ContinuousTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(321);
    abs::Abs::Setup(rng_.get(), &msk_, &mvk_);
    universe_ = {"RoleA", "RoleB"};
    RoleSet all = universe_;
    all.insert(kPseudoRole);
    sk_ = abs::Abs::KeyGen(msk_, all, rng_.get());
    std::vector<ContinuousRecord> records = {
        {100, "v100", Policy::Parse("RoleA")},
        {250, "v250", Policy::Parse("RoleB")},
        {251, "v251", Policy::Parse("RoleA & RoleB")},
        {900, "v900", Policy::Parse("RoleA | RoleB")},
    };
    ads_ = std::make_unique<ContinuousAds>(
        ContinuousAds::Build(mvk_, sk_, records, rng_.get()));
  }

  std::unique_ptr<Rng> rng_;
  abs::MasterKey msk_;
  abs::VerifyKey mvk_;
  RoleSet universe_;
  abs::SigningKey sk_;
  std::unique_ptr<ContinuousAds> ads_;
};

TEST_F(ContinuousTest, AdsHasGapsAroundEveryRecord) {
  EXPECT_EQ(ads_->records().size(), 4u);
  EXPECT_EQ(ads_->gaps().size(), 5u);
  EXPECT_EQ(ads_->gaps().front().gap.lo, 0u);
  EXPECT_EQ(ads_->gaps().back().gap.hi, UINT64_MAX);
}

TEST_F(ContinuousTest, RangeQueryRoundTrip) {
  RoleSet user = {"RoleA"};
  ContinuousVo vo = BuildContinuousRangeVo(*ads_, mvk_, 50, 500, user,
                                           universe_, rng_.get());
  std::vector<ContinuousRecord> results;
  std::string error;
  ASSERT_TRUE(VerifyContinuousRangeVo(mvk_, 50, 500, user, universe_, vo,
                                      &results, &error))
      << error;
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].key, 100u);
  // 250 (RoleB) and 251 (A&B) are inaccessible entries.
  EXPECT_EQ(vo.inaccessible.size(), 2u);
}

TEST_F(ContinuousTest, AdjacentKeysNoGapBetween) {
  // Keys 250 and 251 are adjacent: the gap (250, 251) is empty and should
  // never be required for coverage.
  RoleSet user = {"RoleA", "RoleB"};
  ContinuousVo vo = BuildContinuousRangeVo(*ads_, mvk_, 249, 252, user,
                                           universe_, rng_.get());
  std::string error;
  ASSERT_TRUE(VerifyContinuousRangeVo(mvk_, 249, 252, user, universe_, vo,
                                      nullptr, &error))
      << error;
}

TEST_F(ContinuousTest, RangeRejectsDroppedRecord) {
  RoleSet user = {"RoleA"};
  ContinuousVo vo = BuildContinuousRangeVo(*ads_, mvk_, 50, 500, user,
                                           universe_, rng_.get());
  ContinuousVo bad = vo;
  bad.results.clear();  // hide the accessible record
  EXPECT_FALSE(
      VerifyContinuousRangeVo(mvk_, 50, 500, user, universe_, bad, nullptr, nullptr));
}

TEST_F(ContinuousTest, RangeRejectsDroppedGap) {
  RoleSet user = {"RoleA"};
  ContinuousVo vo = BuildContinuousRangeVo(*ads_, mvk_, 50, 500, user,
                                           universe_, rng_.get());
  ContinuousVo bad = vo;
  ASSERT_FALSE(bad.gaps.empty());
  bad.gaps.pop_back();
  EXPECT_FALSE(
      VerifyContinuousRangeVo(mvk_, 50, 500, user, universe_, bad, nullptr, nullptr));
}

TEST_F(ContinuousTest, EqualityOnExistingAccessibleKey) {
  RoleSet user = {"RoleA"};
  ContinuousVo vo =
      BuildContinuousEqualityVo(*ads_, mvk_, 100, user, universe_, rng_.get());
  std::optional<ContinuousRecord> result;
  std::string error;
  ASSERT_TRUE(VerifyContinuousEqualityVo(mvk_, 100, user, universe_, vo,
                                         &result, &error))
      << error;
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->value, "v100");
}

TEST_F(ContinuousTest, EqualityOnInaccessibleKey) {
  RoleSet user = {"RoleA"};
  ContinuousVo vo =
      BuildContinuousEqualityVo(*ads_, mvk_, 250, user, universe_, rng_.get());
  std::optional<ContinuousRecord> result;
  std::string error;
  ASSERT_TRUE(VerifyContinuousEqualityVo(mvk_, 250, user, universe_, vo,
                                         &result, &error))
      << error;
  EXPECT_FALSE(result.has_value());
}

TEST_F(ContinuousTest, EqualityOnAbsentKeyProvenByGap) {
  RoleSet user = {"RoleA"};
  ContinuousVo vo =
      BuildContinuousEqualityVo(*ads_, mvk_, 500, user, universe_, rng_.get());
  ASSERT_EQ(vo.gaps.size(), 1u);
  std::optional<ContinuousRecord> result;
  std::string error;
  ASSERT_TRUE(VerifyContinuousEqualityVo(mvk_, 500, user, universe_, vo,
                                         &result, &error))
      << error;
  EXPECT_FALSE(result.has_value());
  // The gap VO for key 500 does not prove absence of key 2000.
  EXPECT_FALSE(VerifyContinuousEqualityVo(mvk_, 2000, user, universe_, vo,
                                          nullptr, nullptr));
}

TEST_F(ContinuousTest, GapVoCannotHideRecord) {
  // SP returns the gap (251, 900) for a query on key 500 — valid. But for a
  // query on key 900 (existing record) the same gap is rejected.
  RoleSet user = {"RoleA"};
  ContinuousVo vo =
      BuildContinuousEqualityVo(*ads_, mvk_, 500, user, universe_, rng_.get());
  EXPECT_FALSE(
      VerifyContinuousEqualityVo(mvk_, 900, user, universe_, vo, nullptr, nullptr));
}

}  // namespace
}  // namespace apqa::core

// Figure 10: range query performance vs. total number of roles / max policy
// length (the two grow together, as in the paper's sweep).
#include "bench_util.h"

using namespace apqa;
using namespace apqa::bench;

int main() {
  PrintHeader("Figure 10",
              "range query cost vs. number of roles / max policy length");
  std::printf("%-7s | %-12s | %-14s | %-16s | %-12s\n", "#Roles", "MaxPolLen",
              "SP CPU (ms)", "User CPU (ms)", "VO (KB)");

  int queries = QueriesPerRow();
  double sel = 0.04;
  struct Config {
    int roles, or_fan, and_fan;
  };
  std::vector<Config> configs = FastMode()
                                    ? std::vector<Config>{{5, 2, 2}, {10, 3, 2}}
                                    : std::vector<Config>{{5, 2, 2},
                                                          {10, 3, 2},
                                                          {15, 3, 3},
                                                          {20, 4, 3}};
  for (const Config& c : configs) {
    DeployConfig cfg;
    cfg.num_roles = c.roles;
    cfg.or_fan = c.or_fan;
    cfg.and_fan = c.and_fan;
    Deployment d = Deploy(cfg);
    QueryCosts tree = MeasureRange(d, sel, queries, /*basic=*/false);
    std::printf("%-7d | %-12d | %-14.0f | %-16.0f | %-12.0f\n", c.roles,
                c.or_fan * c.and_fan, tree.sp_ms, tree.user_ms, tree.vo_kb);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper Fig 10): all costs grow with the role\n"
              "space and policy length — predicates and super policies get\n"
              "longer, so relaxation and verification get slower.\n");
  return 0;
}

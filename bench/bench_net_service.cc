// Micro-benchmark: what the service runtime (src/net/) costs on top of the
// protocol itself.
//
//   frame         — EncodeFrame/DecodeFrame (checksum included) at VO-sized
//                   payloads; this is the per-message tax of the wire format.
//   rpc_overhead  — the same equality/range query issued (a) as a direct
//                   core::ServiceProvider call with local verification and
//                   (b) through SpServer + ApqaClient over an in-process
//                   PipeTransport. The difference is queueing + framing +
//                   (de)serialization, not crypto.
//
// Every row is also emitted through the JSON trajectory sink (bench_util.h):
//   APQA_BENCH_JSON=BENCH_net.json ./bench_net_service   (or --json=PATH)
#include <memory>

#include "bench_util.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/pipe_transport.h"
#include "net/server.h"

namespace {

using namespace apqa;
using apqa::bench::RecordJson;
using apqa::bench::Timer;

constexpr const char* kBench = "net_service";

template <typename T>
void Sink(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

template <typename Fn>
double TimeMs(int iters, Fn&& fn) {
  Timer t;
  for (int i = 0; i < iters; ++i) fn();
  return t.ElapsedMs() / iters;
}

void Report(const char* row, double ms) {
  std::printf("  %-28s %10.3f ms\n", row, ms);
  RecordJson(kBench, row, ms);
}

void BenchFraming(int iters) {
  std::printf("frame encode/decode (%d iters)\n", iters);
  for (std::size_t payload_bytes : {64u, 4096u, 262144u}) {
    net::Frame f;
    f.type = net::MsgType::kVoResponse;
    f.request_id = 42;
    f.payload.assign(payload_bytes, 0xa5);
    std::vector<std::uint8_t> wire = net::EncodeFrame(f);
    char row[64];
    std::snprintf(row, sizeof(row), "encode_%zuB", payload_bytes);
    Report(row, TimeMs(iters, [&] { Sink(net::EncodeFrame(f)); }));
    std::snprintf(row, sizeof(row), "decode_%zuB", payload_bytes);
    net::Frame out;
    Report(row, TimeMs(iters, [&] { Sink(net::DecodeFrame(wire, &out)); }));
  }
}

void BenchRpcOverhead(int queries) {
  std::printf("direct call vs RPC over pipe (%d queries averaged)\n", queries);
  bench::DeployConfig cfg;
  bench::Deployment d = bench::Deploy(cfg);
  const core::SystemKeys& keys = d.owner->keys();
  core::UserCredentials creds = d.owner->EnrollUser(d.user_roles);
  core::User user(keys, creds);
  crypto::Rng rng(7);

  std::vector<core::Box> ranges;
  for (int q = 0; q < queries; ++q) {
    ranges.push_back(tpch::RandomRangeQuery(keys.domain, 0.05, &rng));
  }

  double direct = TimeMs(queries, [&, i = 0]() mutable {
    const core::Box& range = ranges[static_cast<std::size_t>(i++)];
    core::Vo vo = d.sp->RangeQuery(range, d.user_roles);
    std::vector<core::Record> rows;
    bool ok = user.VerifyRange(range, vo, &rows, nullptr);
    Sink(ok);
  });
  Report("range_direct", direct);

  auto [server_end, client_end] = net::PipeTransport::CreatePair();
  net::SpServer server(d.sp.get());
  if (!server.AttachTransport(server_end)) return;
  net::ClientOptions copts;
  copts.deadline_ms = 60000;
  copts.attempt_timeout_ms = 30000;
  net::ApqaClient client(keys, creds, client_end, copts);

  double rpc = TimeMs(queries, [&, i = 0]() mutable {
    std::vector<core::Record> rows;
    net::ClientResult r =
        client.Range(ranges[static_cast<std::size_t>(i++)], &rows);
    if (!r.ok()) {
      std::fprintf(stderr, "BENCH BUG: %s\n", r.ToString().c_str());
      std::abort();
    }
  });
  Report("range_rpc_pipe", rpc);
  Report("range_rpc_tax", rpc - direct);
  server.Stop();
}

}  // namespace

int main(int argc, char** argv) {
  bench::EnableJsonFromArgs(argc, argv);
  bench::PrintHeader("net_service",
                     "service runtime overhead: framing + RPC vs direct calls");
  int iters = bench::FastMode() ? 200 : 2000;
  BenchFraming(iters);
  BenchRpcOverhead(bench::QueriesPerRow());
  return 0;
}

// Figure 12: effect of hierarchical role assignment (§8.1) on range query
// performance. A two-level hierarchy is simulated: two global parent roles
// are attached to the existing roles, policies are augmented with ancestor
// chains, and the user's inaccessible predicate is reduced to its top-most
// lacked roles.
#include "bench_util.h"
#include "core/hierarchy.h"

using namespace apqa;
using namespace apqa::bench;

int main() {
  PrintHeader("Figure 12", "flat vs hierarchical role assignment");
  DeployConfig cfg;
  int queries = QueriesPerRow();
  double sel = 0.04;

  // --- Flat baseline. ------------------------------------------------------
  Deployment flat = Deploy(cfg);
  QueryCosts flat_costs = MeasureRange(flat, sel, queries, /*basic=*/false);
  std::size_t flat_pred =
      core::SuperPolicyRoles(flat.owner->keys().universe, flat.user_roles)
          .size();

  // --- Hierarchical deployment. -------------------------------------------
  tpch::PolicyGen pgen(cfg.num_policies, cfg.num_roles, cfg.or_fan,
                       cfg.and_fan, cfg.seed);
  core::RoleHierarchy hierarchy;
  // Two global parents; every base role hangs under one of them.
  std::vector<std::string> base_roles(pgen.universe().begin(),
                                      pgen.universe().end());
  for (std::size_t i = 0; i < base_roles.size(); ++i) {
    hierarchy.AddEdge(i % 2 == 0 ? "RoleH0" : "RoleH1", base_roles[i]);
  }
  std::vector<policy::Policy> augmented;
  for (const auto& p : pgen.policies()) {
    augmented.push_back(hierarchy.Augment(p));
  }
  policy::RoleSet universe = pgen.universe();
  universe.insert("RoleH0");
  universe.insert("RoleH1");

  tpch::TpchGen gen(cfg.tpch_scale, cfg.seed);
  auto records = tpch::LineitemRecords(gen.Lineitem(), cfg.domain, augmented);
  core::DataOwner owner(universe, cfg.domain, cfg.seed);
  Timer build;
  core::GridTree tree = owner.BuildAds(records);
  double build_ms = build.ElapsedMs();
  core::ServiceProvider sp(owner.keys(), std::move(tree));

  policy::RoleSet user = hierarchy.Close(flat.user_roles);
  policy::RoleSet full_lacked =
      core::SuperPolicyRoles(owner.keys().universe, user);
  policy::RoleSet reduced = hierarchy.ReduceLackedSet(full_lacked);

  crypto::Rng qrng(7);
  core::User huser(owner.keys(), owner.EnrollUser(user));
  QueryCosts h_costs;
  crypto::Rng sp_rng(31);
  for (int q = 0; q < queries; ++q) {
    core::Box range =
        tpch::RandomRangeQuery(owner.keys().domain, sel, &qrng);
    Timer t;
    core::Vo vo = core::BuildRangeVoWithLacked(sp.tree(), owner.keys().mvk,
                                               range, user, reduced, &sp_rng);
    h_costs.sp_ms += t.ElapsedMs();
    h_costs.vo_kb += vo.SerializedSize() / 1024.0;
    t.Reset();
    bool ok = core::VerifyRangeVoWithLacked(owner.keys().mvk,
                                            owner.keys().domain, range, user,
                                            reduced, vo, nullptr, nullptr);
    h_costs.user_ms += t.ElapsedMs();
    if (!ok) {
      std::fprintf(stderr, "BENCH BUG: hierarchical VO failed\n");
      return 1;
    }
  }
  h_costs.sp_ms /= queries;
  h_costs.user_ms /= queries;
  h_costs.vo_kb /= queries;

  std::printf("%-14s | %-14s | %-14s | %-16s | %-10s\n", "Variant",
              "Pred length", "SP CPU (ms)", "User CPU (ms)", "VO (KB)");
  std::printf("%-14s | %-14zu | %-14.0f | %-16.0f | %-10.0f\n", "Flat",
              flat_pred, flat_costs.sp_ms, flat_costs.user_ms,
              flat_costs.vo_kb);
  std::printf("%-14s | %-14zu | %-14.0f | %-16.0f | %-10.0f\n", "Hierarchical",
              reduced.size(), h_costs.sp_ms, h_costs.user_ms, h_costs.vo_kb);
  std::printf("\n(hierarchical DO build: %.0f ms — slightly above flat due to\n"
              " larger per-record policies, as the paper notes)\n", build_ms);
  std::printf("\nExpected shape (paper Fig 12): the reduced inaccessible\n"
              "predicate lowers SP/user CPU time and VO size.\n");
  return 0;
}

// Micro-benchmark (ablation): the scalar-multiplication engine vs. the
// generic kernels it replaced.
//
//   fixed-base    — FixedBaseTable::Mul vs. a fresh width-4 wNAF ScalarMul
//                   on the same generator (the seed behavior of G1Mul/G2Mul).
//   msm           — Pippenger G1Msm/G2Msm vs. the naive ScalarMul-and-add
//                   loop, n = 4..256.
//   multipairing  — lockstep batched-inversion MultiPairing vs. the per-pair
//                   reference (N Miller loops, one final exponentiation).
//   abs           — end-to-end ABS sign/verify at a fixed predicate length.
//
// Every row is also emitted through the JSON trajectory sink (bench_util.h):
//   APQA_BENCH_JSON=BENCH_msm.json ./bench_msm_micro   (or --json=PATH)
#include <cinttypes>

#include "abs/abs.h"
#include "bench_util.h"
#include "crypto/msm.h"

namespace {

using namespace apqa;
using namespace apqa::crypto;
using apqa::bench::RecordJson;
using apqa::bench::Timer;

constexpr const char* kBench = "msm_micro";

// Keeps results alive without pulling in google-benchmark.
template <typename T>
void Sink(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

// Runs fn `iters` times and returns mean milliseconds per call.
template <typename Fn>
double TimeMs(int iters, Fn&& fn) {
  Timer t;
  for (int i = 0; i < iters; ++i) fn();
  return t.ElapsedMs() / iters;
}

void Report(const char* row, double ms) {
  std::printf("  %-28s %10.3f ms\n", row, ms);
  RecordJson(kBench, row, ms);
}

void BenchFixedBase(Rng* rng, int iters) {
  std::printf("fixed-base vs fresh-wNAF (generator, %d iters)\n", iters);
  std::vector<Fr> ks(static_cast<std::size_t>(iters));
  for (auto& k : ks) k = rng->NextNonZeroFr();
  int i = 0;
  const G1& g1 = G1Generator();
  double wnaf1 = TimeMs(iters, [&] {
    Sink(g1.ScalarMul(ks[static_cast<std::size_t>(i++ % iters)]));
  });
  Report("g1_wnaf", wnaf1);
  i = 0;
  const FixedBaseTable<Fp>& t1 = G1GeneratorTable();
  double fixed1 = TimeMs(iters, [&] {
    Sink(t1.Mul(ks[static_cast<std::size_t>(i++ % iters)]));
  });
  Report("g1_fixed_base", fixed1);
  std::printf("  %-28s %10.2fx\n", "g1_speedup", wnaf1 / fixed1);
  RecordJson(kBench, "g1_fixed_base_speedup", wnaf1 / fixed1);

  i = 0;
  const G2& g2 = G2Generator();
  double wnaf2 = TimeMs(iters, [&] {
    Sink(g2.ScalarMul(ks[static_cast<std::size_t>(i++ % iters)]));
  });
  Report("g2_wnaf", wnaf2);
  i = 0;
  const FixedBaseTable<Fp2>& t2 = G2GeneratorTable();
  double fixed2 = TimeMs(iters, [&] {
    Sink(t2.Mul(ks[static_cast<std::size_t>(i++ % iters)]));
  });
  Report("g2_fixed_base", fixed2);
  std::printf("  %-28s %10.2fx\n", "g2_speedup", wnaf2 / fixed2);
  RecordJson(kBench, "g2_fixed_base_speedup", wnaf2 / fixed2);
}

void BenchMsm(Rng* rng, bool fast) {
  std::printf("Pippenger MSM vs naive sum\n");
  for (std::size_t n : {4u, 16u, 64u, 256u}) {
    if (fast && n > 64) break;
    std::vector<G1> pts(n);
    std::vector<Fr> ks(n);
    for (std::size_t j = 0; j < n; ++j) {
      pts[j] = G1Mul(rng->NextNonZeroFr());
      ks[j] = rng->NextNonZeroFr();
    }
    int iters = n <= 16 ? 20 : 5;
    double naive = TimeMs(iters, [&] {
      G1 acc = G1::Infinity();
      for (std::size_t j = 0; j < n; ++j) acc = acc + pts[j].ScalarMul(ks[j]);
      Sink(acc);
    });
    double pip = TimeMs(iters, [&] {
      Sink(G1Msm(std::span<const G1>(pts),
                              std::span<const Fr>(ks)));
    });
    char row[64];
    std::snprintf(row, sizeof(row), "g1_msm_naive_n%zu", n);
    Report(row, naive);
    std::snprintf(row, sizeof(row), "g1_msm_pippenger_n%zu", n);
    Report(row, pip);
    std::printf("  %-28s %10.2fx\n", "speedup", naive / pip);
  }
}

void BenchMultiPairing(Rng* rng, bool fast) {
  std::printf("MultiPairing: lockstep batched inversion vs per-pair\n");
  for (std::size_t n : {2u, 8u, 16u}) {
    if (fast && n > 8) break;
    std::vector<std::pair<G1, G2>> pairs;
    for (std::size_t j = 0; j < n; ++j) {
      pairs.emplace_back(G1Mul(rng->NextNonZeroFr()),
                         G2Mul(rng->NextNonZeroFr()));
    }
    int iters = 5;
    double per_pair = TimeMs(iters, [&] {
      GT f = GT::One();
      for (const auto& [p, q] : pairs) f = f * MillerLoop(p, q);
      Sink(FinalExponentiation(f));
    });
    double batched = TimeMs(iters, [&] {
      Sink(MultiPairing(pairs));
    });
    char row[64];
    std::snprintf(row, sizeof(row), "multipairing_perpair_n%zu", n);
    Report(row, per_pair);
    std::snprintf(row, sizeof(row), "multipairing_batched_n%zu", n);
    Report(row, batched);
    std::printf("  %-28s %10.2fx\n", "speedup", per_pair / batched);
  }
}

void BenchAbs(bool fast) {
  std::printf("ABS end-to-end (predicate length 12)\n");
  crypto::Rng rng(11);
  abs::MasterKey msk;
  abs::VerifyKey mvk;
  abs::Abs::Setup(&rng, &msk, &mvk);
  policy::RoleSet universe;
  for (int i = 0; i < 16; ++i) universe.insert("Role" + std::to_string(i));
  abs::SigningKey sk = abs::Abs::KeyGen(msk, universe, &rng);
  std::vector<policy::Clause> clauses;
  for (int i = 0; i + 1 < 12; i += 2) {
    clauses.push_back({"Role" + std::to_string(i),
                       "Role" + std::to_string(i + 1)});
  }
  policy::Policy pred = policy::Policy::FromDnfClauses(clauses);
  std::vector<std::uint8_t> msg = {'m', 's', 'm'};

  int iters = fast ? 2 : 5;
  double sign_ms = TimeMs(iters, [&] {
    Sink(*abs::Abs::Sign(mvk, sk, msg, pred, &rng));
  });
  Report("abs_sign_len12", sign_ms);
  auto sig = abs::Abs::Sign(mvk, sk, msg, pred, &rng);
  double verify_ms = TimeMs(iters, [&] {
    Sink(abs::Abs::Verify(mvk, msg, pred, *sig));
  });
  Report("abs_verify_len12", verify_ms);
}

}  // namespace

int main(int argc, char** argv) {
  apqa::bench::EnableJsonFromArgs(argc, argv);
  apqa::bench::PrintHeader("MSM micro",
                           "scalar-multiplication engine ablation");
  bool fast = apqa::bench::FastMode();
  Rng rng(20260807);
  BenchFixedBase(&rng, fast ? 50 : 400);
  BenchMsm(&rng, fast);
  BenchMultiPairing(&rng, fast);
  BenchAbs(fast);
  return 0;
}

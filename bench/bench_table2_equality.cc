// Table 2: equality query performance — accessible-record costs vs. max
// policy length, and inaccessible-record costs vs. inaccessible predicate
// length.
#include "bench_util.h"

using namespace apqa;
using namespace apqa::bench;

namespace {

// A policy of exactly `length` leaves: OR of AND-pairs.
policy::Policy PolicyOfLength(int length) {
  std::vector<policy::Clause> clauses;
  for (int i = 0; i < length / 2; ++i) {
    clauses.push_back({"RoleP" + std::to_string(2 * i),
                       "RoleP" + std::to_string(2 * i + 1)});
  }
  if (clauses.empty()) clauses.push_back({"RoleP0"});
  return policy::Policy::FromDnfClauses(clauses);
}

}  // namespace

int main() {
  int reps = QueriesPerRow();
  PrintHeader("Table 2", "equality query performance (single APP/APS op)");

  // --- Accessible record: vary max policy length. -------------------------
  std::printf("\nAccessible record:\n");
  std::printf("%-18s | %-18s | %s\n", "Max Policy Length", "User CPU (ms)",
              "VO Size (KB)");
  std::vector<int> lengths =
      FastMode() ? std::vector<int>{6, 24} : std::vector<int>{6, 24, 96, 384};
  for (int length : lengths) {
    policy::Policy pol = PolicyOfLength(length);
    policy::RoleSet universe = pol.Roles();
    universe.insert(core::kPseudoRole);
    crypto::Rng rng(1);
    abs::MasterKey msk;
    abs::VerifyKey mvk;
    abs::Abs::Setup(&rng, &msk, &mvk);
    abs::SigningKey sk = abs::Abs::KeyGen(msk, universe, &rng);
    core::Record rec{core::Point{1}, "value", pol};
    auto sig = core::SignRecord(mvk, sk, rec, &rng);

    // User roles satisfying the first clause.
    policy::RoleSet user = {"RoleP0", "RoleP1"};
    double user_ms = 0, vo_kb = 0;
    auto msg = core::RecordMessage(rec.key, rec.value);
    for (int i = 0; i < reps; ++i) {
      Timer t;
      bool ok = abs::Abs::Verify(mvk, msg, pol, *sig);
      user_ms += t.ElapsedMs();
      if (!ok) return 1;
    }
    vo_kb = static_cast<double>(sig->SerializedSize() + rec.value.size() +
                                pol.ToString().size()) /
            1024.0;
    (void)user;
    std::printf("%-18d | %-18.1f | %.1f\n", length, user_ms / reps, vo_kb);
    std::fflush(stdout);
  }

  // --- Inaccessible record: vary inaccessible predicate length. -----------
  std::printf("\nInaccessible record:\n");
  std::printf("%-18s | %-14s | %-16s | %s\n", "Predicate Length",
              "SP CPU (ms)", "User CPU (ms)", "VO Size (KB)");
  std::vector<int> pred_lengths =
      FastMode() ? std::vector<int>{10, 20} : std::vector<int>{10, 20, 40, 80};
  for (int plen : pred_lengths) {
    // Universe sized so that |A \ user| = plen; the record needs a role the
    // user lacks.
    // |lacked| = (plen-1 roles the user lacks) + Role_∅ = plen.
    policy::RoleSet universe;
    for (int i = 0; i < plen; ++i) {
      universe.insert("RoleU" + std::to_string(i));
    }
    universe.insert(core::kPseudoRole);  // part of the lacked set
    crypto::Rng rng(2);
    abs::MasterKey msk;
    abs::VerifyKey mvk;
    abs::Abs::Setup(&rng, &msk, &mvk);
    abs::SigningKey sk = abs::Abs::KeyGen(msk, universe, &rng);
    policy::Policy pol = policy::Policy::Parse("RoleU0 & RoleU1");
    core::Record rec{core::Point{1}, "value", pol};
    auto sig = core::SignRecord(mvk, sk, rec, &rng);
    policy::RoleSet user = {"RoleU" + std::to_string(plen - 1)};
    policy::RoleSet lacked = core::SuperPolicyRoles(universe, user);
    if (static_cast<int>(lacked.size()) != plen) {
      std::fprintf(stderr, "predicate sizing bug: %zu\n", lacked.size());
    }

    double sp_ms = 0, user_ms = 0, vo_kb = 0;
    auto msg = core::RecordMessage(rec.key, rec.value);
    policy::Policy super_policy = policy::Policy::OrOfRoles(lacked);
    for (int i = 0; i < reps; ++i) {
      Timer t;
      auto aps = core::DeriveAps(mvk, *sig, pol, msg, lacked, &rng);
      sp_ms += t.ElapsedMs();
      t.Reset();
      bool ok = abs::Abs::Verify(mvk, msg, super_policy, *aps);
      user_ms += t.ElapsedMs();
      if (!ok) return 1;
      vo_kb = static_cast<double>(aps->SerializedSize() + 32) / 1024.0;
    }
    std::printf("%-18d | %-14.1f | %-16.1f | %.1f\n",
                static_cast<int>(lacked.size()),
                sp_ms / reps, user_ms / reps, vo_kb);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper): every cost column grows roughly\n"
              "linearly with the policy/predicate length.\n");
  return 0;
}

// Table 1: DO setup overhead — APP signing time, index build time, and
// index size (tree structure + signatures) vs. database scale.
#include "bench_util.h"

using namespace apqa;
using namespace apqa::bench;

int main() {
  PrintHeader("Table 1", "DO setup overhead for generating the AP2G-tree");
  std::printf("%-8s | %-8s | %-13s | %-15s | %s\n", "Scale", "Records",
              "Sign APPs (s)", "Build Index (s)", "Index Size MB (tree+sigs)");

  std::vector<double> scales = FastMode()
                                   ? std::vector<double>{0.1, 0.3}
                                   : std::vector<double>{0.1, 0.3, 1.0, 3.0};
  for (double scale : scales) {
    DeployConfig cfg;
    cfg.tpch_scale = scale;
    tpch::PolicyGen pgen(cfg.num_policies, cfg.num_roles, cfg.or_fan,
                         cfg.and_fan, cfg.seed);
    tpch::TpchGen gen(scale, cfg.seed);
    auto records =
        tpch::LineitemRecords(gen.Lineitem(), cfg.domain, pgen.policies());
    core::DataOwner owner(pgen.universe(), cfg.domain, cfg.seed);

    // Isolate APP signing (leaves) from index construction (internal node
    // policies + signatures) by building the tree and splitting per-node
    // costs: we sign records standalone first, then build the full index.
    Timer sign_timer;
    crypto::Rng sign_rng(cfg.seed + 1);
    for (const auto& r : records) {
      auto sig = core::SignRecord(owner.keys().mvk, owner.signing_key(), r,
                                  &sign_rng);
      if (!sig.has_value()) return 1;
    }
    double sign_s = sign_timer.ElapsedMs() / 1000.0;

    Timer build_timer;
    core::GridTree tree = owner.BuildAds(records);
    double build_s = build_timer.ElapsedMs() / 1000.0;

    std::size_t structure = 0, sigs = 0;
    tree.SerializedSize(&structure, &sigs);
    std::printf("%-8.1f | %-8zu | %-13.2f | %-15.2f | %.2f (%.2f + %.2f)\n",
                scale, records.size(), sign_s, build_s,
                static_cast<double>(structure + sigs) / (1024 * 1024),
                static_cast<double>(structure) / (1024 * 1024),
                static_cast<double>(sigs) / (1024 * 1024));
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper): both CPU time and index size grow\n"
              "sublinearly with scale — the fixed-size full grid saturates.\n");
  return 0;
}

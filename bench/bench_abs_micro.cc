// Micro-benchmark (ablation): per-operation ABS costs vs. predicate length
// — Sign, Verify (batched vs exact), and Relax. Shows (i) linear growth in
// the predicate length and (ii) the win of the random-weight batched
// verifier over per-column pairing checks.
#include <benchmark/benchmark.h>

#include "abs/abs.h"

namespace {

using namespace apqa;
using namespace apqa::abs;

struct Fixture {
  crypto::Rng rng{11};
  MasterKey msk;
  VerifyKey mvk;
  SigningKey sk;
  RoleSet universe;

  explicit Fixture(int roles) {
    Abs::Setup(&rng, &msk, &mvk);
    for (int i = 0; i < roles; ++i) {
      universe.insert("Role" + std::to_string(i));
    }
    sk = Abs::KeyGen(msk, universe, &rng);
  }

  // OR of AND-pairs with `length` leaves.
  Policy PolicyOfLength(int length) {
    std::vector<policy::Clause> clauses;
    for (int i = 0; i + 1 < length; i += 2) {
      clauses.push_back({"Role" + std::to_string(i % universe.size()),
                         "Role" + std::to_string((i + 1) % universe.size())});
    }
    if (clauses.empty()) clauses.push_back({"Role0"});
    return Policy::FromDnfClauses(clauses);
  }
};

std::vector<std::uint8_t> Msg() { return {'b', 'e', 'n', 'c', 'h'}; }

void BM_AbsSign(benchmark::State& state) {
  Fixture f(64);
  Policy pred = f.PolicyOfLength(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Abs::Sign(f.mvk, f.sk, Msg(), pred, &f.rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AbsSign)->Arg(2)->Arg(6)->Arg(12)->Arg(24)->Complexity();

void BM_AbsVerifyBatched(benchmark::State& state) {
  Fixture f(64);
  Policy pred = f.PolicyOfLength(static_cast<int>(state.range(0)));
  auto sig = Abs::Sign(f.mvk, f.sk, Msg(), pred, &f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Abs::Verify(f.mvk, Msg(), pred, *sig));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AbsVerifyBatched)->Arg(2)->Arg(6)->Arg(12)->Arg(24)->Complexity();

// Same-run baseline: the pre-engine verifier (on-the-fly MultiPairing, no
// cached G2 line tables). The ratio to BM_AbsVerifyBatched is the
// prepared-pairing engine's end-to-end win.
void BM_AbsVerifyUnprepared(benchmark::State& state) {
  Fixture f(64);
  Policy pred = f.PolicyOfLength(static_cast<int>(state.range(0)));
  auto sig = Abs::Sign(f.mvk, f.sk, Msg(), pred, &f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Abs::VerifyUnprepared(f.mvk, Msg(), pred, *sig));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AbsVerifyUnprepared)
    ->Arg(2)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Complexity();

void BM_AbsVerifyExact(benchmark::State& state) {
  Fixture f(64);
  Policy pred = f.PolicyOfLength(static_cast<int>(state.range(0)));
  auto sig = Abs::Sign(f.mvk, f.sk, Msg(), pred, &f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Abs::Verify(f.mvk, Msg(), pred, *sig, /*exact=*/true));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AbsVerifyExact)->Arg(2)->Arg(6)->Arg(12)->Arg(24)->Complexity();

void BM_AbsRelax(benchmark::State& state) {
  // Relax a fixed two-role conjunction to a super policy of size N.
  int n = static_cast<int>(state.range(0));
  Fixture f(n + 2);
  Policy pred = Policy::Parse("Role0 & Role1");
  auto sig = Abs::Sign(f.mvk, f.sk, Msg(), pred, &f.rng);
  RoleSet lacked;
  for (int i = 0; i < n; ++i) lacked.insert("Role" + std::to_string(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Abs::Relax(f.mvk, *sig, pred, Msg(), lacked, &f.rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AbsRelax)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_AbsVerifyRelaxed(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Fixture f(n + 2);
  Policy pred = Policy::Parse("Role0 & Role1");
  auto sig = Abs::Sign(f.mvk, f.sk, Msg(), pred, &f.rng);
  RoleSet lacked;
  for (int i = 0; i < n; ++i) lacked.insert("Role" + std::to_string(i));
  auto aps = Abs::Relax(f.mvk, *sig, pred, Msg(), lacked, &f.rng);
  Policy super_policy = Policy::OrOfRoles(lacked);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Abs::Verify(f.mvk, Msg(), super_policy, *aps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AbsVerifyRelaxed)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

}  // namespace

BENCHMARK_MAIN();

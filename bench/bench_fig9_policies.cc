// Figure 9: range query performance vs. number of distinct access policies.
#include "bench_util.h"

using namespace apqa;
using namespace apqa::bench;

int main() {
  PrintHeader("Figure 9", "range query cost vs. number of distinct policies");
  std::printf("%-10s | %-14s | %-16s | %-12s\n", "#Policies", "SP CPU (ms)",
              "User CPU (ms)", "VO (KB)");

  int queries = QueriesPerRow();
  double sel = 0.04;
  std::vector<int> counts =
      FastMode() ? std::vector<int>{5, 10} : std::vector<int>{5, 10, 20, 40};
  for (int n : counts) {
    DeployConfig cfg;
    cfg.num_policies = n;
    Deployment d = Deploy(cfg);
    QueryCosts tree = MeasureRange(d, sel, queries, /*basic=*/false);
    std::printf("%-10d | %-14.0f | %-16.0f | %-12.0f\n", n, tree.sp_ms,
                tree.user_ms, tree.vo_kb);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper Fig 9): costs are nearly flat — policy\n"
              "diversity does not change predicate sizes, only which records\n"
              "are accessible.\n");
  return 0;
}

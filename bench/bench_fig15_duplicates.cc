// Figure 15 (Appendix E): handling duplicate records — the zero-knowledge
// virtual-dimension AP2G-tree vs. the non-ZK dup-embedding AP2G-tree vs. the
// Basic approach, over data with duplicate query keys.
#include "bench_util.h"
#include "core/duplicates.h"

using namespace apqa;
using namespace apqa::bench;

int main() {
  PrintHeader("Figure 15", "duplicate records: ZK vs non-ZK vs Basic");
  DeployConfig cfg;
  cfg.domain = core::Domain{1, 5};  // 1-D keys 0..31 with duplicates

  tpch::PolicyGen pgen(cfg.num_policies, cfg.num_roles, cfg.or_fan,
                       cfg.and_fan, cfg.seed);
  // Duplicate-heavy data: several records per key (policies vary per
  // record, unlike the main benches).
  crypto::Rng data_rng(cfg.seed);
  std::vector<core::Record> records;
  for (std::uint32_t key = 0; key < cfg.domain.SideLength(); ++key) {
    if (data_rng.NextU64() % 4 == 0) continue;  // some keys absent
    int dups = 1 + static_cast<int>(data_rng.NextU64() % 3);
    for (int d = 0; d < dups; ++d) {
      core::Record r;
      r.key = {key};
      r.value = "v" + std::to_string(key) + "#" + std::to_string(d);
      r.policy = pgen.policies()[data_rng.NextU64() % pgen.policies().size()];
      records.push_back(std::move(r));
    }
  }
  std::printf("records=%zu over %u keys\n\n", records.size(),
              cfg.domain.SideLength());

  policy::RoleSet roles = pgen.RolesForAccessFraction(0.2);

  // --- ZK: merge + virtual dimension + standard AP2G-tree. ----------------
  auto merged = core::MergeSuperRecords(records);
  core::DataOwner zk_owner(pgen.universe(), core::Domain{2, cfg.domain.bits},
                           cfg.seed);
  crypto::Rng vrng(3);
  auto extended =
      core::AddVirtualDimension(cfg.domain, merged, cfg.domain.bits, &vrng);
  Timer t_zk;
  core::GridTree zk_tree = zk_owner.BuildAds(extended.records);
  double zk_build = t_zk.ElapsedMs();
  std::size_t zs, zsig;
  zk_tree.SerializedSize(&zs, &zsig);
  core::ServiceProvider zk_sp(zk_owner.keys(), std::move(zk_tree));
  core::User zk_user(zk_owner.keys(), zk_owner.EnrollUser(roles));

  // --- Non-ZK: dup-embedding grid tree. ------------------------------------
  core::DataOwner nz_owner(pgen.universe(), cfg.domain, cfg.seed + 1);
  Timer t_nz;
  core::DupGridTree nz_tree = core::DupGridTree::Build(
      nz_owner.keys().mvk, nz_owner.signing_key(), cfg.domain, records,
      nz_owner.rng());
  double nz_build = t_nz.ElapsedMs();
  std::size_t ns, nsig;
  nz_tree.SerializedSize(&ns, &nsig);

  std::printf("Index: ZK %.2f MB (%.2f + %.2f), built %.0f ms | "
              "non-ZK %.2f MB (%.2f + %.2f), built %.0f ms\n\n",
              (zs + zsig) / 1048576.0, zs / 1048576.0, zsig / 1048576.0,
              zk_build, (ns + nsig) / 1048576.0, ns / 1048576.0,
              nsig / 1048576.0, nz_build);

  int queries = QueriesPerRow();
  std::printf("%-10s | %-28s | %-28s | %-24s\n", "Range",
              "SP CPU (ms) B/ZK/nZK", "User CPU (ms) B/ZK/nZK",
              "VO (KB) B/ZK/nZK");
  std::vector<double> sels = FastMode()
                                 ? std::vector<double>{0.2}
                                 : std::vector<double>{0.1, 0.2, 0.4};
  crypto::Rng nz_rng(17);
  for (double sel : sels) {
    crypto::Rng qrng(7);
    double sp[3] = {0, 0, 0}, us[3] = {0, 0, 0}, kb[3] = {0, 0, 0};
    for (int q = 0; q < queries; ++q) {
      core::Box range = tpch::RandomRangeQuery(cfg.domain, sel, &qrng);
      core::Box zk_range =
          core::ExtendRangeToVirtualDim(range, extended.extended_domain);

      // Basic (ZK, per-cell equality over the extended domain).
      Timer t;
      core::Vo bvo = zk_sp.BasicRangeQuery(zk_range, roles);
      sp[0] += t.ElapsedMs();
      kb[0] += bvo.SerializedSize() / 1024.0;
      t.Reset();
      bool ok0 = zk_user.VerifyRange(zk_range, bvo, nullptr, nullptr);
      us[0] += t.ElapsedMs();

      // ZK AP2G-tree over the virtual dimension.
      t.Reset();
      core::Vo zvo = zk_sp.RangeQuery(zk_range, roles);
      sp[1] += t.ElapsedMs();
      kb[1] += zvo.SerializedSize() / 1024.0;
      t.Reset();
      bool ok1 = zk_user.VerifyRange(zk_range, zvo, nullptr, nullptr);
      us[1] += t.ElapsedMs();

      // Non-ZK dup-embedding tree.
      t.Reset();
      core::DupVo nvo = core::BuildDupRangeVo(nz_tree, nz_owner.keys().mvk,
                                              range, roles,
                                              nz_owner.keys().universe,
                                              &nz_rng);
      sp[2] += t.ElapsedMs();
      kb[2] += nvo.SerializedSize() / 1024.0;
      t.Reset();
      bool ok2 = core::VerifyDupRangeVo(nz_owner.keys().mvk, cfg.domain,
                                        range, roles,
                                        nz_owner.keys().universe, nvo,
                                        nullptr, nullptr);
      us[2] += t.ElapsedMs();
      if (!ok0 || !ok1 || !ok2) {
        std::fprintf(stderr, "BENCH BUG: duplicate VO failed (%d/%d/%d)\n",
                     ok0, ok1, ok2);
        return 1;
      }
    }
    std::printf("%-9.1f%% | %7.0f/%7.0f/%-10.0f | %7.0f/%7.0f/%-10.0f |"
                " %6.0f/%6.0f/%-8.0f\n",
                sel * 100, sp[0] / queries, sp[1] / queries, sp[2] / queries,
                us[0] / queries, us[1] / queries, us[2] / queries,
                kb[0] / queries, kb[1] / queries, kb[2] / queries);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper Fig 15): the ZK virtual-dimension\n"
              "index costs ~3x the non-ZK variant (and ~3-4x its size), and\n"
              "the ZK AP2G-tree stays about half the cost of Basic.\n");
  return 0;
}

// Figure 8: range query performance vs. database scale (fixed range size).
#include "bench_util.h"

using namespace apqa;
using namespace apqa::bench;

int main() {
  PrintHeader("Figure 8", "range query cost vs. database scale");
  std::printf("%-7s | %-8s | %-22s | %-22s | %-20s\n", "Scale", "Records",
              "SP CPU (ms) B/T", "User CPU (ms) B/T", "VO (KB) B/T");

  int queries = QueriesPerRow();
  double sel = 0.02;
  std::vector<double> scales = FastMode()
                                   ? std::vector<double>{0.1, 0.3}
                                   : std::vector<double>{0.1, 0.3, 1.0, 3.0};
  for (double scale : scales) {
    DeployConfig cfg;
    cfg.tpch_scale = scale;
    Deployment d = Deploy(cfg);
    QueryCosts basic = MeasureRange(d, sel, queries, /*basic=*/true);
    QueryCosts tree = MeasureRange(d, sel, queries, /*basic=*/false);
    std::printf("%-7.1f | %-8zu | %8.0f / %-11.0f | %8.0f / %-11.0f | %7.0f / %-10.0f\n",
                scale, d.record_count, basic.sp_ms, tree.sp_ms, basic.user_ms,
                tree.user_ms, basic.vo_kb, tree.vo_kb);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper Fig 8): AP2G-tree costs grow steadily\n"
              "and stay below Basic; Basic fluctuates as denser data turns\n"
              "pseudo records into (in)accessible ones.\n");
  return 0;
}

// Figure 11: join query performance (TPC-H Q12 shape: Lineitem ⋈ Orders on
// orderkey) vs. query range — Basic vs. AP2G-tree.
#include "bench_util.h"

using namespace apqa;
using namespace apqa::bench;

int main() {
  PrintHeader("Figure 11", "join query cost vs. query range (Basic vs AP2G)");
  DeployConfig cfg;
  cfg.domain = core::Domain{1, 8};  // 1-D orderkey domain, 256 keys

  tpch::PolicyGen pgen(cfg.num_policies, cfg.num_roles, cfg.or_fan,
                       cfg.and_fan, cfg.seed);
  tpch::TpchGen gen(cfg.tpch_scale, cfg.seed);
  auto lineitem =
      tpch::LineitemByOrderKey(gen.Lineitem(), cfg.domain, pgen.policies());
  auto orders =
      tpch::OrdersByOrderKey(gen.Orders(), cfg.domain, pgen.policies());

  core::DataOwner owner(pgen.universe(), cfg.domain, cfg.seed);
  core::ServiceProvider sp(owner.keys(), owner.BuildAds(lineitem));
  sp.AttachJoinTable(owner.BuildAds(orders));
  policy::RoleSet roles = pgen.RolesForAccessFraction(0.2);
  core::User user(owner.keys(), owner.EnrollUser(roles));
  std::printf("lineitem keys=%zu orders keys=%zu\n\n", lineitem.size(),
              orders.size());
  std::printf("%-10s | %-22s | %-22s | %-20s\n", "Range",
              "SP CPU (ms) B/T", "User CPU (ms) B/T", "VO (KB) B/T");

  int queries = QueriesPerRow();
  std::vector<double> sels = FastMode()
                                 ? std::vector<double>{0.05}
                                 : std::vector<double>{0.025, 0.05, 0.1, 0.2};
  crypto::Rng rng(99);
  for (double sel : sels) {
    double sp_b = 0, sp_t = 0, u_b = 0, u_t = 0, kb_b = 0, kb_t = 0;
    for (int q = 0; q < queries; ++q) {
      core::Box range = tpch::RandomRangeQuery(cfg.domain, sel, &rng);
      Timer t;
      core::JoinVo basic = sp.BasicJoinQuery(range, roles);
      sp_b += t.ElapsedMs();
      t.Reset();
      core::JoinVo tree = sp.JoinQuery(range, roles);
      sp_t += t.ElapsedMs();
      kb_b += basic.SerializedSize() / 1024.0;
      kb_t += tree.SerializedSize() / 1024.0;
      std::vector<std::pair<core::Record, core::Record>> r1, r2;
      t.Reset();
      bool ok1 = user.VerifyJoin(range, basic, &r1, nullptr);
      u_b += t.ElapsedMs();
      t.Reset();
      bool ok2 = user.VerifyJoin(range, tree, &r2, nullptr);
      u_t += t.ElapsedMs();
      if (!ok1 || !ok2 || r1.size() != r2.size()) {
        std::fprintf(stderr, "BENCH BUG: join mismatch\n");
        return 1;
      }
    }
    std::printf("%-9.1f%% | %8.0f / %-11.0f | %8.0f / %-11.0f | %7.0f / %-10.0f\n",
                sel * 100, sp_b / queries, sp_t / queries, u_b / queries,
                u_t / queries, kb_b / queries, kb_t / queries);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper Fig 11): AP2G-tree substantially lower\n"
              "than Basic on all metrics.\n");
  return 0;
}

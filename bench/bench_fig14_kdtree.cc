// Figure 14: relaxing zero-knowledge confidentiality (§9.1) — AP2kd-tree
// vs. AP2G-tree range query performance on the same data.
#include "bench_util.h"
#include "core/kd_tree.h"

using namespace apqa;
using namespace apqa::bench;

int main() {
  PrintHeader("Figure 14", "AP2G-tree (zero-knowledge) vs AP2kd-tree (relaxed)");
  DeployConfig cfg;
  tpch::PolicyGen pgen(cfg.num_policies, cfg.num_roles, cfg.or_fan,
                       cfg.and_fan, cfg.seed);
  tpch::TpchGen gen(cfg.tpch_scale, cfg.seed);
  auto records =
      tpch::LineitemRecords(gen.Lineitem(), cfg.domain, pgen.policies());
  core::DataOwner owner(pgen.universe(), cfg.domain, cfg.seed);

  Timer t_grid;
  core::GridTree grid = owner.BuildAds(records);
  double grid_build = t_grid.ElapsedMs();
  Timer t_kd;
  core::KdTree kd = core::KdTree::Build(owner.keys().mvk, owner.signing_key(),
                                        cfg.domain, records, owner.rng());
  double kd_build = t_kd.ElapsedMs();
  std::size_t gs, gsig, ks, ksig;
  grid.SerializedSize(&gs, &gsig);
  kd.SerializedSize(&ks, &ksig);
  std::printf("records=%zu  grid: build %.0f ms, %zu nodes, %.2f MB |"
              " kd: build %.0f ms, %zu nodes, %.2f MB\n\n",
              records.size(), grid_build, grid.NodeCount(),
              (gs + gsig) / 1048576.0, kd_build, kd.nodes().size(),
              (ks + ksig) / 1048576.0);

  core::ServiceProvider sp(owner.keys(), grid);
  policy::RoleSet roles = pgen.RolesForAccessFraction(0.2);
  core::User user(owner.keys(), owner.EnrollUser(roles));

  int queries = QueriesPerRow();
  std::printf("%-10s | %-22s | %-22s | %-20s\n", "Range",
              "SP CPU (ms) G/kd", "User CPU (ms) G/kd", "VO (KB) G/kd");
  std::vector<double> sels = FastMode()
                                 ? std::vector<double>{0.04}
                                 : std::vector<double>{0.01, 0.02, 0.04, 0.08,
                                                       0.16};
  crypto::Rng sp_rng(41);
  for (double sel : sels) {
    crypto::Rng qrng(7);
    double sp_g = 0, sp_k = 0, u_g = 0, u_k = 0, kb_g = 0, kb_k = 0;
    for (int q = 0; q < queries; ++q) {
      core::Box range =
          tpch::RandomRangeQuery(owner.keys().domain, sel, &qrng);
      Timer t;
      core::Vo gvo = sp.RangeQuery(range, roles);
      sp_g += t.ElapsedMs();
      kb_g += gvo.SerializedSize() / 1024.0;
      t.Reset();
      core::KdVo kvo = core::BuildKdRangeVo(kd, owner.keys().mvk, range,
                                            roles, owner.keys().universe,
                                            &sp_rng);
      sp_k += t.ElapsedMs();
      kb_k += kvo.SerializedSize() / 1024.0;
      std::vector<core::Record> r1, r2;
      t.Reset();
      bool ok1 = user.VerifyRange(range, gvo, &r1, nullptr);
      u_g += t.ElapsedMs();
      t.Reset();
      bool ok2 = core::VerifyKdRangeVo(owner.keys().mvk, owner.keys().domain,
                                       range, roles, owner.keys().universe,
                                       kvo, &r2, nullptr);
      u_k += t.ElapsedMs();
      if (!ok1 || !ok2 || r1.size() != r2.size()) {
        std::fprintf(stderr, "BENCH BUG: grid/kd result mismatch (%zu/%zu)\n",
                     r1.size(), r2.size());
        return 1;
      }
    }
    std::printf("%-9.1f%% | %8.0f / %-11.0f | %8.0f / %-11.0f | %7.0f / %-10.0f\n",
                sel * 100, sp_g / queries, sp_k / queries, u_g / queries,
                u_k / queries, kb_g / queries, kb_k / queries);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper Fig 14): the AP2kd-tree substantially\n"
              "outperforms the AP2G-tree on all metrics — empty space costs\n"
              "nothing and policy-aware splits improve pruning.\n");
  return 0;
}

// Shared helpers for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints the same rows/series the paper reports (absolute numbers differ —
// the substrate is a from-scratch BLS12-381 implementation on one core; the
// *shape* is what must hold, see EXPERIMENTS.md).
//
// Scales are reduced relative to the paper (see tpch/tpch.h). Environment
// overrides: APQA_BENCH_QUERIES (queries averaged per row, default 5),
// APQA_BENCH_FAST (=1 shrinks sweeps for smoke-testing).
#ifndef APQA_BENCH_BENCH_UTIL_H_
#define APQA_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "core/system.h"
#include "tpch/tpch.h"

namespace apqa::bench {

// --- JSON perf-trajectory output -------------------------------------------
//
// When a path is configured (APQA_BENCH_JSON=path in the environment, or a
// `--json=path` argument passed to EnableJsonFromArgs), every RecordJson call
// appends one `{"bench":...,"row":...,"ms":...}` line to that file, so a
// sequence of PRs can track absolute numbers in BENCH_*.json files without
// scraping stdout.

inline std::string& JsonPath() {
  static std::string path = [] {
    const char* env = std::getenv("APQA_BENCH_JSON");
    return std::string(env != nullptr ? env : "");
  }();
  return path;
}

// Scans argv for --json=PATH (removing nothing; benches ignore unknown args).
inline void EnableJsonFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) JsonPath() = argv[i] + 7;
  }
}

inline void RecordJson(const std::string& bench, const std::string& row,
                       double ms) {
  const std::string& path = JsonPath();
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(f, "{\"bench\":\"%s\",\"row\":\"%s\",\"ms\":%.6f}\n",
               bench.c_str(), row.c_str(), ms);
  std::fclose(f);
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline int QueriesPerRow() {
  const char* v = std::getenv("APQA_BENCH_QUERIES");
  return v != nullptr ? std::atoi(v) : 3;
}

inline bool FastMode() {
  const char* v = std::getenv("APQA_BENCH_FAST");
  return v != nullptr && std::atoi(v) != 0;
}

// A ready-to-query deployment over TPC-H-style data.
struct Deployment {
  std::unique_ptr<core::DataOwner> owner;
  std::unique_ptr<core::ServiceProvider> sp;
  std::unique_ptr<tpch::PolicyGen> policy_gen;
  policy::RoleSet user_roles;
  std::size_t record_count = 0;
  double build_sign_ms = 0;  // DO signing cost (Table 1)

  core::Vo RangeQuery(const core::Box& range) {
    return sp->RangeQuery(range, user_roles);
  }
};

struct DeployConfig {
  // 16^3 grid: sparse relative to the ~500 records of scale 0.1-1, so
  // inaccessible/pseudo space aggregates in the tree as in the paper.
  core::Domain domain{3, 4};
  double tpch_scale = 0.1;
  int num_policies = 10;
  int num_roles = 10;
  int or_fan = 3;
  int and_fan = 2;
  double user_access_fraction = 0.2;
  int sp_threads = 1;
  std::uint64_t seed = 20180610;  // SIGMOD'18 :)
};

inline Deployment Deploy(const DeployConfig& cfg) {
  Deployment d;
  d.policy_gen = std::make_unique<tpch::PolicyGen>(
      cfg.num_policies, cfg.num_roles, cfg.or_fan, cfg.and_fan, cfg.seed);
  tpch::TpchGen gen(cfg.tpch_scale, cfg.seed);
  auto records = tpch::LineitemRecords(gen.Lineitem(), cfg.domain,
                                       d.policy_gen->policies());
  d.record_count = records.size();
  d.owner = std::make_unique<core::DataOwner>(d.policy_gen->universe(),
                                              cfg.domain, cfg.seed);
  Timer t;
  core::GridTree tree = d.owner->BuildAds(records);
  d.build_sign_ms = t.ElapsedMs();
  d.sp = std::make_unique<core::ServiceProvider>(d.owner->keys(),
                                                 std::move(tree),
                                                 cfg.sp_threads);
  d.user_roles =
      d.policy_gen->RolesForAccessFraction(cfg.user_access_fraction);
  return d;
}

// Measured costs of one authenticated range query, averaged over
// `queries` random Q6-shaped ranges of the given selectivity.
struct QueryCosts {
  double sp_ms = 0;
  double user_ms = 0;
  double vo_kb = 0;
  double results = 0;
};

inline QueryCosts MeasureRange(Deployment& d, double selectivity, int queries,
                               bool basic, std::uint64_t query_seed = 7) {
  crypto::Rng rng(query_seed);
  const core::SystemKeys& keys = d.owner->keys();
  core::User user(keys, d.owner->EnrollUser(d.user_roles));
  QueryCosts costs;
  for (int q = 0; q < queries; ++q) {
    core::Box range = tpch::RandomRangeQuery(keys.domain, selectivity, &rng);
    Timer t;
    core::Vo vo = basic ? d.sp->BasicRangeQuery(range, d.user_roles)
                        : d.sp->RangeQuery(range, d.user_roles);
    costs.sp_ms += t.ElapsedMs();
    costs.vo_kb += static_cast<double>(vo.SerializedSize()) / 1024.0;
    std::vector<core::Record> results;
    t.Reset();
    bool ok = user.VerifyRange(range, vo, &results, nullptr);
    costs.user_ms += t.ElapsedMs();
    if (!ok) {
      std::fprintf(stderr, "BENCH BUG: VO failed verification\n");
      std::abort();
    }
    costs.results += static_cast<double>(results.size());
  }
  costs.sp_ms /= queries;
  costs.user_ms /= queries;
  costs.vo_kb /= queries;
  costs.results /= queries;
  return costs;
}

inline void PrintHeader(const char* exhibit, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", exhibit, description);
  std::printf("(reduced scale reproduction; see EXPERIMENTS.md for the\n");
  std::printf(" paper-vs-measured shape comparison)\n");
  std::printf("==============================================================\n");
}

}  // namespace apqa::bench

#endif  // APQA_BENCH_BENCH_UTIL_H_

// Micro-benchmark (ablation): pairing-layer primitive costs. Justifies the
// shared-final-exponentiation design of ABS verification — a multi-pairing
// of n pairs costs n Miller loops plus ONE final exponentiation.
#include <benchmark/benchmark.h>

#include "crypto/pairing.h"
#include "crypto/rng.h"

namespace {

using namespace apqa::crypto;

void BM_G1ScalarMul(benchmark::State& state) {
  Rng rng(1);
  G1 p = G1Mul(rng.NextNonZeroFr());
  Fr k = rng.NextNonZeroFr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.ScalarMul(k));
  }
}
BENCHMARK(BM_G1ScalarMul);

void BM_G2ScalarMul(benchmark::State& state) {
  Rng rng(2);
  G2 p = G2Mul(rng.NextNonZeroFr());
  Fr k = rng.NextNonZeroFr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.ScalarMul(k));
  }
}
BENCHMARK(BM_G2ScalarMul);

void BM_MillerLoop(benchmark::State& state) {
  Rng rng(3);
  G1 p = G1Mul(rng.NextNonZeroFr());
  G2 q = G2Mul(rng.NextNonZeroFr());
  for (auto _ : state) {
    benchmark::DoNotOptimize(MillerLoop(p, q));
  }
}
BENCHMARK(BM_MillerLoop);

void BM_MillerLoopGeneric(benchmark::State& state) {
  Rng rng(3);
  G1 p = G1Mul(rng.NextNonZeroFr());
  G2 q = G2Mul(rng.NextNonZeroFr());
  for (auto _ : state) {
    benchmark::DoNotOptimize(MillerLoopGeneric(p, q));
  }
}
BENCHMARK(BM_MillerLoopGeneric);

void BM_FinalExponentiation(benchmark::State& state) {
  Rng rng(4);
  GT f = MillerLoop(G1Mul(rng.NextNonZeroFr()), G2Mul(rng.NextNonZeroFr()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FinalExponentiation(f));
  }
}
BENCHMARK(BM_FinalExponentiation);

void BM_FullPairing(benchmark::State& state) {
  Rng rng(5);
  G1 p = G1Mul(rng.NextNonZeroFr());
  G2 q = G2Mul(rng.NextNonZeroFr());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Pairing(p, q));
  }
}
BENCHMARK(BM_FullPairing);

void BM_MultiPairing(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::pair<G1, G2>> pairs;
  for (int i = 0; i < state.range(0); ++i) {
    pairs.emplace_back(G1Mul(rng.NextNonZeroFr()), G2Mul(rng.NextNonZeroFr()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiPairing(pairs));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MultiPairing)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Complexity();

void BM_Fp12Mul(benchmark::State& state) {
  Rng rng(7);
  GT a = Pairing(G1Mul(rng.NextNonZeroFr()), G2Mul(rng.NextNonZeroFr()));
  GT b = a * a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_Fp12Mul);

}  // namespace

BENCHMARK_MAIN();

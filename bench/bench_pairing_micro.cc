// Micro-benchmark (ablation): the prepared-pairing verification engine vs.
// the paths it replaced.
//
//   miller loop   — sparse-line MillerLoop vs. the affine audit oracle
//                   MillerLoopGeneric, and MillerLoopPrepared on a cached
//                   G2Prepared coefficient table.
//   final exp     — the cyclotomic BLS12 chain vs. the exact
//                   FinalExponentiationGeneric square-and-multiply ladder.
//   pairing       — Pairing(p, q) vs. PairWith(p, prepared) plus the
//                   pre-engine baseline (generic Miller loop + generic FE),
//                   and the one-off G2Prepared construction cost.
//   fp12          — full Fp12 mul vs. MulBySparseLine on line-shaped operands.
//   multipairing  — on-the-fly MultiPairing vs. MultiPairingPrepared with
//                   every G2 input served from a cached table.
//   abs           — end-to-end ABS verify: the prepared engine (Abs::Verify)
//                   vs. the pre-engine path (Abs::VerifyUnprepared), same
//                   signature, same run.
//   abs batch     — whole-batch BatchAccumulator verification of n
//                   signatures sharing one final exponentiation.
//   range vo      — user-side range-VO verification: the retained
//                   per-signature path (serial and 4-thread pool) vs. the
//                   whole-VO batch, plus the tampered-VO bisect blame path.
//
// Every row is also emitted through the JSON trajectory sink (bench_util.h):
//   APQA_BENCH_JSON=BENCH_pairing.json ./bench_pairing_micro  (or --json=PATH)
#include <cinttypes>

#include "abs/abs.h"
#include "abs/batch_verify.h"
#include "bench_util.h"
#include "core/parallel_verify.h"
#include "crypto/pairing.h"
#include "crypto/pairing_prepared.h"

namespace {

using namespace apqa;
using namespace apqa::crypto;
using apqa::bench::RecordJson;
using apqa::bench::Timer;

constexpr const char* kBench = "pairing_micro";

// Keeps results alive without pulling in google-benchmark.
template <typename T>
void Sink(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

// Runs fn `iters` times and returns the fastest call in milliseconds. The
// minimum is the standard low-noise estimator for single-core microbenches:
// scheduler preemption and frequency excursions only ever add time, so the
// fastest observation is the closest to the true cost.
template <typename Fn>
double TimeMs(int iters, Fn&& fn) {
  double best = 0;
  for (int i = 0; i < iters; ++i) {
    Timer t;
    fn();
    double ms = t.ElapsedMs();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

void Report(const char* row, double ms) {
  std::printf("  %-32s %10.3f ms\n", row, ms);
  RecordJson(kBench, row, ms);
}

void Speedup(const char* row, double baseline, double engine) {
  std::printf("  %-32s %10.2fx\n", row, baseline / engine);
  RecordJson(kBench, row, baseline / engine);
}

void BenchMillerLoop(Rng* rng, int iters) {
  std::printf("Miller loop: generic vs sparse-line vs prepared\n");
  G1 p = G1Mul(rng->NextNonZeroFr());
  G2 q = G2Mul(rng->NextNonZeroFr());
  G2Prepared prep(q);
  double generic = TimeMs(iters, [&] { Sink(MillerLoopGeneric(p, q)); });
  Report("miller_generic", generic);
  double sparse = TimeMs(iters, [&] { Sink(MillerLoop(p, q)); });
  Report("miller_sparse", sparse);
  double prepared = TimeMs(iters, [&] { Sink(MillerLoopPrepared(p, prep)); });
  Report("miller_prepared", prepared);
  Speedup("miller_prepared_vs_generic", generic, prepared);
}

void BenchFinalExp(Rng* rng, int iters) {
  std::printf("final exponentiation: generic ladder vs cyclotomic chain\n");
  GT f = MillerLoop(G1Mul(rng->NextNonZeroFr()), G2Mul(rng->NextNonZeroFr()));
  double generic = TimeMs(iters, [&] { Sink(FinalExponentiationGeneric(f)); });
  Report("final_exp_generic", generic);
  double fast = TimeMs(iters, [&] { Sink(FinalExponentiation(f)); });
  Report("final_exp_cyclotomic", fast);
  Speedup("final_exp_speedup", generic, fast);
}

void BenchPairing(Rng* rng, int iters) {
  std::printf("single pairing: pre-engine vs on-the-fly vs prepared\n");
  G1 p = G1Mul(rng->NextNonZeroFr());
  G2 q = G2Mul(rng->NextNonZeroFr());
  // The seed pairing: affine Miller loop + exact-ladder final exponentiation
  // (what Pairing(p, q) cost before the engine landed).
  double seed = TimeMs(iters, [&] {
    Sink(FinalExponentiationGeneric(MillerLoopGeneric(p, q)));
  });
  Report("pairing_pre_engine", seed);
  double onthefly = TimeMs(iters, [&] { Sink(Pairing(p, q)); });
  Report("pairing_onthefly", onthefly);
  double prepare = TimeMs(iters, [&] { Sink(G2Prepared(q)); });
  Report("g2_prepare", prepare);
  G2Prepared prep(q);
  double prepared = TimeMs(iters, [&] { Sink(PairWith(p, prep)); });
  Report("pairing_prepared", prepared);
  Speedup("pairing_prepared_vs_pre_engine", seed, prepared);
  Speedup("pairing_prepared_vs_onthefly", onthefly, prepared);
}

void BenchFp12Mul(Rng* rng, int iters) {
  std::printf("Fp12 line fold: full mul vs sparse-line mul\n");
  GT a = MillerLoop(G1Mul(rng->NextNonZeroFr()), G2Mul(rng->NextNonZeroFr()));
  // Line-shaped operand: only the w^0, w^2, w^3 slots are non-zero.
  Fp2 a0 = a.c0.c0, a2 = a.c0.c1, a3 = a.c1.c1;
  GT line = Fp12::FromSparseLine(a0, a2, a3);
  double full = TimeMs(iters, [&] { Sink(a * line); });
  Report("fp12_mul_full", full);
  double sparse = TimeMs(iters, [&] { Sink(a.MulBySparseLine(a0, a2, a3)); });
  Report("fp12_mul_sparse_line", sparse);
  Speedup("fp12_sparse_speedup", full, sparse);
}

void BenchMultiPairing(Rng* rng, bool fast) {
  std::printf("multi-pairing: on-the-fly vs prepared tables\n");
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    if (fast && n > 4) break;
    std::vector<std::pair<G1, G2>> pairs;
    std::vector<G2Prepared> tables;
    tables.reserve(n);
    std::vector<PreparedPair> prepared;
    for (std::size_t j = 0; j < n; ++j) {
      pairs.emplace_back(G1Mul(rng->NextNonZeroFr()),
                         G2Mul(rng->NextNonZeroFr()));
      tables.emplace_back(pairs.back().second);
      prepared.push_back(PreparedPair{pairs.back().first, &tables.back()});
    }
    int iters = fast ? 2 : 5;
    double fresh = TimeMs(iters, [&] { Sink(MultiPairing(pairs)); });
    char row[64];
    std::snprintf(row, sizeof(row), "multipairing_onthefly_n%zu", n);
    Report(row, fresh);
    double prep = TimeMs(iters, [&] { Sink(MultiPairingPrepared(prepared)); });
    std::snprintf(row, sizeof(row), "multipairing_prepared_n%zu", n);
    Report(row, prep);
    std::snprintf(row, sizeof(row), "multipairing_speedup_n%zu", n);
    Speedup(row, fresh, prep);
  }
}

void BenchAbsVerify(bool fast) {
  std::printf("ABS verify end-to-end: prepared engine vs pre-engine path\n");
  crypto::Rng rng(11);
  abs::MasterKey msk;
  abs::VerifyKey mvk;
  abs::Abs::Setup(&rng, &msk, &mvk);
  policy::RoleSet universe;
  for (int i = 0; i < 16; ++i) universe.insert("Role" + std::to_string(i));
  abs::SigningKey sk = abs::Abs::KeyGen(msk, universe, &rng);
  std::vector<policy::Clause> clauses;
  for (int i = 0; i + 1 < 12; i += 2) {
    clauses.push_back({"Role" + std::to_string(i),
                       "Role" + std::to_string(i + 1)});
  }
  policy::Policy pred = policy::Policy::FromDnfClauses(clauses);
  std::vector<std::uint8_t> msg = {'p', 'a', 'i', 'r'};
  auto sig = abs::Abs::Sign(mvk, sk, msg, pred, &rng);

  // Warm both paths once so table construction is not billed to either row.
  Sink(abs::Abs::Verify(mvk, msg, pred, *sig));
  Sink(abs::Abs::VerifyUnprepared(mvk, msg, pred, *sig));

  int iters = fast ? 2 : 8;
  double unprepared = TimeMs(iters, [&] {
    Sink(abs::Abs::VerifyUnprepared(mvk, msg, pred, *sig));
  });
  Report("abs_verify_unprepared_len12", unprepared);
  double prepared = TimeMs(iters, [&] {
    Sink(abs::Abs::Verify(mvk, msg, pred, *sig));
  });
  Report("abs_verify_prepared_len12", prepared);
  Speedup("abs_verify_speedup", unprepared, prepared);
}

void BenchAbsBatchVerify(bool fast) {
  std::printf("ABS batch verify: n signatures, one final exponentiation\n");
  crypto::Rng rng(13);
  abs::MasterKey msk;
  abs::VerifyKey mvk;
  abs::Abs::Setup(&rng, &msk, &mvk);
  policy::RoleSet universe;
  for (int i = 0; i < 16; ++i) universe.insert("Role" + std::to_string(i));
  abs::SigningKey sk = abs::Abs::KeyGen(msk, universe, &rng);
  std::vector<policy::Clause> clauses;
  for (int i = 0; i + 1 < 12; i += 2) {
    clauses.push_back({"Role" + std::to_string(i),
                       "Role" + std::to_string(i + 1)});
  }
  policy::Policy pred = policy::Policy::FromDnfClauses(clauses);

  std::size_t max_n = fast ? 8 : 128;
  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<abs::Signature> sigs;
  for (std::size_t k = 0; k < max_n; ++k) {
    std::string m = "m" + std::to_string(k);
    msgs.emplace_back(m.begin(), m.end());
    sigs.push_back(*abs::Abs::Sign(mvk, sk, msgs.back(), pred, &rng));
  }
  Sink(abs::Abs::Verify(mvk, msgs[0], pred, sigs[0]));  // warm the tables

  for (std::size_t n : {std::size_t{8}, std::size_t{32}, std::size_t{128}}) {
    if (n > max_n) break;
    int iters = fast ? 1 : 3;
    double ms = TimeMs(iters, [&] {
      abs::BatchAccumulator acc(mvk);
      crypto::Rng wrng;
      for (std::size_t k = 0; k < n; ++k) {
        abs::Abs::AccumulateVerify(mvk, msgs[k], pred, sigs[k], &wrng, &acc);
      }
      Sink(acc.Check());
    });
    char row[64];
    std::snprintf(row, sizeof(row), "abs_batch_verify_n%zu", n);
    Report(row, ms);
  }
}

void BenchRangeVoVerify(bool fast) {
  std::printf("range-VO verification: per-signature vs whole-VO batch\n");
  core::Domain domain{/*dims=*/1, /*bits=*/6};
  core::DataOwner owner(policy::RoleSet{"RoleA", "RoleB"}, domain, 20260807);
  std::vector<core::Record> records;
  int n = fast ? 12 : 48;
  for (int k = 0; k < n; ++k) {
    records.push_back(core::Record{
        core::Point{static_cast<std::uint32_t>(k)}, "v" + std::to_string(k),
        policy::Policy::Parse((k % 3 == 0) ? "RoleA" : "RoleA & RoleB")});
  }
  core::ServiceProvider sp(owner.keys(), owner.BuildAds(records));
  core::UserCredentials creds = owner.EnrollUser({"RoleA"});
  const core::SystemKeys& keys = owner.keys();
  core::Box range{core::Point{0}, core::Point{static_cast<std::uint32_t>(n - 1)}};
  core::Vo vo = sp.RangeQuery(range, creds.roles);
  core::ThreadPool pool(4);

  auto verify = [&](const core::Vo& v, core::ThreadPool* p) {
    Sink(core::VerifyRangeVoEx(keys.mvk, keys.domain, range, creds.roles,
                               keys.universe, v, nullptr,
                               /*exact_pairings=*/false, p));
  };

  // The serial/pool rows pin the retained per-signature path so the batched
  // row below has a same-run baseline (and the trajectory keeps its
  // pre-batching series).
  int iters = fast ? 1 : 5;
  double serial, pooled;
  {
    core::ScopedPerSignatureVerify per_signature;
    serial = TimeMs(iters, [&] { verify(vo, nullptr); });
    Report("range_vo_verify_serial", serial);
    pooled = TimeMs(iters, [&] { verify(vo, &pool); });
    Report("range_vo_verify_pool4", pooled);
  }
  Speedup("range_vo_pool_speedup", serial, pooled);

  double batched = TimeMs(iters, [&] { verify(vo, nullptr); });
  Report("range_vo_verify_batched", batched);
  Speedup("range_vo_batch_speedup", serial, batched);

  // Failure path: one tampered record forces the whole-batch check to fail
  // and the prefix bisection to recover the blamed index.
  core::Vo tampered = vo;
  for (auto& entry : tampered.entries) {
    if (auto* res = std::get_if<core::ResultEntry>(&entry)) {
      res->value += "-tampered";
      break;
    }
  }
  double bisect = TimeMs(iters, [&] { verify(tampered, nullptr); });
  Report("batch_bisect_tamper_1", bisect);
}

}  // namespace

int main(int argc, char** argv) {
  apqa::bench::EnableJsonFromArgs(argc, argv);
  apqa::bench::PrintHeader("Pairing micro",
                           "prepared-pairing verification engine ablation");
  bool fast = apqa::bench::FastMode();
  Rng rng(20260807);
  int iters = fast ? 2 : 10;
  BenchMillerLoop(&rng, iters);
  BenchFinalExp(&rng, iters);
  BenchPairing(&rng, iters);
  BenchFp12Mul(&rng, fast ? 100 : 2000);
  BenchMultiPairing(&rng, fast);
  BenchAbsVerify(fast);
  BenchAbsBatchVerify(fast);
  BenchRangeVoVerify(fast);
  return 0;
}

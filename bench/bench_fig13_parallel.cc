// Figure 13: acceleration by parallelism (§8.2) — SP range query time vs.
// number of worker threads mapping the independent ABS.Relax jobs.
//
// NOTE: the container this reproduction runs in exposes a single CPU core,
// so unlike the paper's 24-thread blade server the wall-clock speedup here
// is bounded by 1; the bench still exercises the parallel code path and
// reports per-thread-count wall time (see EXPERIMENTS.md).
#include <thread>

#include "bench_util.h"

using namespace apqa;
using namespace apqa::bench;

int main() {
  PrintHeader("Figure 13", "SP query time vs. number of threads");
  std::printf("hardware_concurrency=%u\n\n",
              std::thread::hardware_concurrency());
  DeployConfig cfg;
  tpch::PolicyGen pgen(cfg.num_policies, cfg.num_roles, cfg.or_fan,
                       cfg.and_fan, cfg.seed);
  tpch::TpchGen gen(cfg.tpch_scale, cfg.seed);
  auto records =
      tpch::LineitemRecords(gen.Lineitem(), cfg.domain, pgen.policies());
  core::DataOwner owner(pgen.universe(), cfg.domain, cfg.seed);
  core::GridTree tree = owner.BuildAds(records);
  policy::RoleSet roles = pgen.RolesForAccessFraction(0.2);

  int queries = QueriesPerRow();
  double sel = 0.08;
  std::printf("%-8s | %-16s\n", "Threads", "SP CPU wall (ms)");
  std::vector<int> thread_counts =
      FastMode() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16};
  for (int threads : thread_counts) {
    core::ServiceProvider sp(owner.keys(), tree, threads);
    crypto::Rng qrng(7);
    double sp_ms = 0;
    for (int q = 0; q < queries; ++q) {
      core::Box range =
          tpch::RandomRangeQuery(owner.keys().domain, sel, &qrng);
      Timer t;
      core::Vo vo = sp.RangeQuery(range, roles);
      sp_ms += t.ElapsedMs();
      (void)vo;
    }
    std::printf("%-8d | %-16.0f\n", threads, sp_ms / queries);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper Fig 13, on multi-core hardware):\n"
              "near-linear speedup up to ~16 threads, flattening beyond as\n"
              "the serial fraction and I/O dominate. On this 1-core\n"
              "container the curve is flat and only scheduling overhead\n"
              "is visible.\n");
  return 0;
}

// Micro-benchmark (ablation): monotone span program construction and purge
// costs vs. formula size — confirms the non-cryptographic protocol parts are
// negligible next to group operations.
#include <benchmark/benchmark.h>

#include "policy/msp.h"

namespace {

using namespace apqa::policy;

Policy WidePolicy(int clauses, int width) {
  std::vector<Clause> dnf;
  for (int c = 0; c < clauses; ++c) {
    Clause clause;
    for (int w = 0; w < width; ++w) {
      clause.insert("Role" + std::to_string(c * width + w));
    }
    dnf.push_back(std::move(clause));
  }
  return Policy::FromDnfClauses(dnf);
}

void BM_BuildMsp(benchmark::State& state) {
  Policy p = WidePolicy(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildMsp(p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildMsp)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_SatisfyingVector(benchmark::State& state) {
  Policy p = WidePolicy(static_cast<int>(state.range(0)), 3);
  RoleSet roles = {"Role0", "Role1", "Role2"};  // satisfies the first clause
  for (auto _ : state) {
    benchmark::DoNotOptimize(SatisfyingVector(p, roles));
  }
}
BENCHMARK(BM_SatisfyingVector)->Arg(4)->Arg(64)->Arg(256);

void BM_Purge(benchmark::State& state) {
  int clauses = static_cast<int>(state.range(0));
  Policy p = WidePolicy(clauses, 3);
  // Keep one role of every clause so the purge succeeds.
  RoleSet keep;
  for (int c = 0; c < clauses; ++c) keep.insert("Role" + std::to_string(c * 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Purge(p, keep));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Purge)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_DnfNormalize(benchmark::State& state) {
  Policy p = WidePolicy(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.DnfClauses());
  }
}
BENCHMARK(BM_DnfNormalize)->Arg(4)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();

// Figure 7: range query performance vs. query range size — Basic
// (repeat-equality) vs. AP2G-tree. Series: SP CPU time, user CPU time,
// VO size.
#include "bench_util.h"

using namespace apqa;
using namespace apqa::bench;

int main() {
  PrintHeader("Figure 7", "range query cost vs. query range (Basic vs AP2G)");
  DeployConfig cfg;
  Deployment d = Deploy(cfg);
  std::printf("records=%zu domain=%d^%d user accesses ~20%%\n\n",
              d.record_count, 1 << cfg.domain.bits, cfg.domain.dims);
  std::printf("%-10s | %-22s | %-22s | %-20s\n", "Range",
              "SP CPU (ms) B/T", "User CPU (ms) B/T", "VO (KB) B/T");

  int queries = QueriesPerRow();
  std::vector<double> sels = FastMode()
                                 ? std::vector<double>{0.02, 0.08}
                                 : std::vector<double>{0.005, 0.01, 0.02, 0.04,
                                                       0.08};
  for (double sel : sels) {
    QueryCosts basic = MeasureRange(d, sel, queries, /*basic=*/true);
    QueryCosts tree = MeasureRange(d, sel, queries, /*basic=*/false);
    std::printf("%-9.1f%% | %8.0f / %-11.0f | %8.0f / %-11.0f | %7.0f / %-10.0f\n",
                sel * 100, basic.sp_ms, tree.sp_ms, basic.user_ms,
                tree.user_ms, basic.vo_kb, tree.vo_kb);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper Fig 7): AP2G-tree beats Basic on every\n"
              "metric; the gap widens with the range size because APS\n"
              "signatures of internal nodes summarize inaccessible subtrees.\n");
  return 0;
}

# Empty dependencies file for apqa.
# This may be replaced when dependencies are built.

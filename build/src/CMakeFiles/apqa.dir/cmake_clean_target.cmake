file(REMOVE_RECURSE
  "libapqa.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abs/abs.cc" "src/CMakeFiles/apqa.dir/abs/abs.cc.o" "gcc" "src/CMakeFiles/apqa.dir/abs/abs.cc.o.d"
  "/root/repo/src/core/aggregate.cc" "src/CMakeFiles/apqa.dir/core/aggregate.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/aggregate.cc.o.d"
  "/root/repo/src/core/app_signature.cc" "src/CMakeFiles/apqa.dir/core/app_signature.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/app_signature.cc.o.d"
  "/root/repo/src/core/continuous.cc" "src/CMakeFiles/apqa.dir/core/continuous.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/continuous.cc.o.d"
  "/root/repo/src/core/duplicates.cc" "src/CMakeFiles/apqa.dir/core/duplicates.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/duplicates.cc.o.d"
  "/root/repo/src/core/equality.cc" "src/CMakeFiles/apqa.dir/core/equality.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/equality.cc.o.d"
  "/root/repo/src/core/grid_tree.cc" "src/CMakeFiles/apqa.dir/core/grid_tree.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/grid_tree.cc.o.d"
  "/root/repo/src/core/hierarchy.cc" "src/CMakeFiles/apqa.dir/core/hierarchy.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/hierarchy.cc.o.d"
  "/root/repo/src/core/join_query.cc" "src/CMakeFiles/apqa.dir/core/join_query.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/join_query.cc.o.d"
  "/root/repo/src/core/kd_tree.cc" "src/CMakeFiles/apqa.dir/core/kd_tree.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/kd_tree.cc.o.d"
  "/root/repo/src/core/range_query.cc" "src/CMakeFiles/apqa.dir/core/range_query.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/range_query.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/apqa.dir/core/system.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/system.cc.o.d"
  "/root/repo/src/core/thread_pool.cc" "src/CMakeFiles/apqa.dir/core/thread_pool.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/thread_pool.cc.o.d"
  "/root/repo/src/core/vo.cc" "src/CMakeFiles/apqa.dir/core/vo.cc.o" "gcc" "src/CMakeFiles/apqa.dir/core/vo.cc.o.d"
  "/root/repo/src/cpabe/cpabe.cc" "src/CMakeFiles/apqa.dir/cpabe/cpabe.cc.o" "gcc" "src/CMakeFiles/apqa.dir/cpabe/cpabe.cc.o.d"
  "/root/repo/src/crypto/aes.cc" "src/CMakeFiles/apqa.dir/crypto/aes.cc.o" "gcc" "src/CMakeFiles/apqa.dir/crypto/aes.cc.o.d"
  "/root/repo/src/crypto/bigint.cc" "src/CMakeFiles/apqa.dir/crypto/bigint.cc.o" "gcc" "src/CMakeFiles/apqa.dir/crypto/bigint.cc.o.d"
  "/root/repo/src/crypto/curve.cc" "src/CMakeFiles/apqa.dir/crypto/curve.cc.o" "gcc" "src/CMakeFiles/apqa.dir/crypto/curve.cc.o.d"
  "/root/repo/src/crypto/fp12.cc" "src/CMakeFiles/apqa.dir/crypto/fp12.cc.o" "gcc" "src/CMakeFiles/apqa.dir/crypto/fp12.cc.o.d"
  "/root/repo/src/crypto/pairing.cc" "src/CMakeFiles/apqa.dir/crypto/pairing.cc.o" "gcc" "src/CMakeFiles/apqa.dir/crypto/pairing.cc.o.d"
  "/root/repo/src/crypto/rng.cc" "src/CMakeFiles/apqa.dir/crypto/rng.cc.o" "gcc" "src/CMakeFiles/apqa.dir/crypto/rng.cc.o.d"
  "/root/repo/src/crypto/serde.cc" "src/CMakeFiles/apqa.dir/crypto/serde.cc.o" "gcc" "src/CMakeFiles/apqa.dir/crypto/serde.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/apqa.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/apqa.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/apqa.dir/db/database.cc.o" "gcc" "src/CMakeFiles/apqa.dir/db/database.cc.o.d"
  "/root/repo/src/db/schema.cc" "src/CMakeFiles/apqa.dir/db/schema.cc.o" "gcc" "src/CMakeFiles/apqa.dir/db/schema.cc.o.d"
  "/root/repo/src/policy/msp.cc" "src/CMakeFiles/apqa.dir/policy/msp.cc.o" "gcc" "src/CMakeFiles/apqa.dir/policy/msp.cc.o.d"
  "/root/repo/src/policy/policy.cc" "src/CMakeFiles/apqa.dir/policy/policy.cc.o" "gcc" "src/CMakeFiles/apqa.dir/policy/policy.cc.o.d"
  "/root/repo/src/tpch/tpch.cc" "src/CMakeFiles/apqa.dir/tpch/tpch.cc.o" "gcc" "src/CMakeFiles/apqa.dir/tpch/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

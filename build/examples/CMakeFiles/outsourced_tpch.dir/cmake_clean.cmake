file(REMOVE_RECURSE
  "CMakeFiles/outsourced_tpch.dir/outsourced_tpch.cpp.o"
  "CMakeFiles/outsourced_tpch.dir/outsourced_tpch.cpp.o.d"
  "outsourced_tpch"
  "outsourced_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outsourced_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for outsourced_tpch.
# This may be replaced when dependencies are built.

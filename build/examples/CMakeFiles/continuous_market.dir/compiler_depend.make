# Empty compiler generated dependencies file for continuous_market.
# This may be replaced when dependencies are built.

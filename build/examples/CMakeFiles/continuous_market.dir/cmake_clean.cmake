file(REMOVE_RECURSE
  "CMakeFiles/continuous_market.dir/continuous_market.cpp.o"
  "CMakeFiles/continuous_market.dir/continuous_market.cpp.o.d"
  "continuous_market"
  "continuous_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

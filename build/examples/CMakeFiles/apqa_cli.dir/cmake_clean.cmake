file(REMOVE_RECURSE
  "CMakeFiles/apqa_cli.dir/apqa_cli.cpp.o"
  "CMakeFiles/apqa_cli.dir/apqa_cli.cpp.o.d"
  "apqa_cli"
  "apqa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apqa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for apqa_cli.
# This may be replaced when dependencies are built.

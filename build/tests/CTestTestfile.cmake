# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/field_test[1]_include.cmake")
include("/root/repo/build/tests/curve_test[1]_include.cmake")
include("/root/repo/build/tests/pairing_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/abs_test[1]_include.cmake")
include("/root/repo/build/tests/cpabe_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/kd_tree_test[1]_include.cmake")
include("/root/repo/build/tests/continuous_test[1]_include.cmake")
include("/root/repo/build/tests/duplicates_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_param_test[1]_include.cmake")
include("/root/repo/build/tests/grid_tree_test[1]_include.cmake")
include("/root/repo/build/tests/serde_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")

# Empty dependencies file for duplicates_test.
# This may be replaced when dependencies are built.

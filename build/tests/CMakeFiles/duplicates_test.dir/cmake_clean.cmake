file(REMOVE_RECURSE
  "CMakeFiles/duplicates_test.dir/duplicates_test.cc.o"
  "CMakeFiles/duplicates_test.dir/duplicates_test.cc.o.d"
  "duplicates_test"
  "duplicates_test.pdb"
  "duplicates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplicates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

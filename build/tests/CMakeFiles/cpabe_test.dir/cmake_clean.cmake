file(REMOVE_RECURSE
  "CMakeFiles/cpabe_test.dir/cpabe_test.cc.o"
  "CMakeFiles/cpabe_test.dir/cpabe_test.cc.o.d"
  "cpabe_test"
  "cpabe_test.pdb"
  "cpabe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpabe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

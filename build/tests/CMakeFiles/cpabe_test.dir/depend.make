# Empty dependencies file for cpabe_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/protocol_param_test.dir/protocol_param_test.cc.o"
  "CMakeFiles/protocol_param_test.dir/protocol_param_test.cc.o.d"
  "protocol_param_test"
  "protocol_param_test.pdb"
  "protocol_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for protocol_param_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for abs_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abs_test.dir/abs_test.cc.o"
  "CMakeFiles/abs_test.dir/abs_test.cc.o.d"
  "abs_test"
  "abs_test.pdb"
  "abs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/grid_tree_test.dir/grid_tree_test.cc.o"
  "CMakeFiles/grid_tree_test.dir/grid_tree_test.cc.o.d"
  "grid_tree_test"
  "grid_tree_test.pdb"
  "grid_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

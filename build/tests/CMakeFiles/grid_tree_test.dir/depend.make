# Empty dependencies file for grid_tree_test.
# This may be replaced when dependencies are built.

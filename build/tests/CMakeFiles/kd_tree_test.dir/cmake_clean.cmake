file(REMOVE_RECURSE
  "CMakeFiles/kd_tree_test.dir/kd_tree_test.cc.o"
  "CMakeFiles/kd_tree_test.dir/kd_tree_test.cc.o.d"
  "kd_tree_test"
  "kd_tree_test.pdb"
  "kd_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for kd_tree_test.
# This may be replaced when dependencies are built.

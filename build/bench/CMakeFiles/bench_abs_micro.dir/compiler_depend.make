# Empty compiler generated dependencies file for bench_abs_micro.
# This may be replaced when dependencies are built.

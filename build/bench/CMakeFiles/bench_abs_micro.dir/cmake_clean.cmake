file(REMOVE_RECURSE
  "CMakeFiles/bench_abs_micro.dir/bench_abs_micro.cc.o"
  "CMakeFiles/bench_abs_micro.dir/bench_abs_micro.cc.o.d"
  "bench_abs_micro"
  "bench_abs_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abs_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_duplicates.dir/bench_fig15_duplicates.cc.o"
  "CMakeFiles/bench_fig15_duplicates.dir/bench_fig15_duplicates.cc.o.d"
  "bench_fig15_duplicates"
  "bench_fig15_duplicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_duplicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

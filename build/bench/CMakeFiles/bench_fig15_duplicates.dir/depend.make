# Empty dependencies file for bench_fig15_duplicates.
# This may be replaced when dependencies are built.

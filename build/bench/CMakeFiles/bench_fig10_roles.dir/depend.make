# Empty dependencies file for bench_fig10_roles.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_hierarchy.dir/bench_fig12_hierarchy.cc.o"
  "CMakeFiles/bench_fig12_hierarchy.dir/bench_fig12_hierarchy.cc.o.d"
  "bench_fig12_hierarchy"
  "bench_fig12_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig12_hierarchy.
# This may be replaced when dependencies are built.

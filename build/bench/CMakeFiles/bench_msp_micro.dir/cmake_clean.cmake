file(REMOVE_RECURSE
  "CMakeFiles/bench_msp_micro.dir/bench_msp_micro.cc.o"
  "CMakeFiles/bench_msp_micro.dir/bench_msp_micro.cc.o.d"
  "bench_msp_micro"
  "bench_msp_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msp_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_msp_micro.
# This may be replaced when dependencies are built.

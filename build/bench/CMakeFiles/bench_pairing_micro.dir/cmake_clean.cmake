file(REMOVE_RECURSE
  "CMakeFiles/bench_pairing_micro.dir/bench_pairing_micro.cc.o"
  "CMakeFiles/bench_pairing_micro.dir/bench_pairing_micro.cc.o.d"
  "bench_pairing_micro"
  "bench_pairing_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pairing_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

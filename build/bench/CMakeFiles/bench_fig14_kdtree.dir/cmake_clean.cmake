file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_kdtree.dir/bench_fig14_kdtree.cc.o"
  "CMakeFiles/bench_fig14_kdtree.dir/bench_fig14_kdtree.cc.o.d"
  "bench_fig14_kdtree"
  "bench_fig14_kdtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_kdtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

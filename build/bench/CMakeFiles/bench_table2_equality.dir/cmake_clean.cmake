file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_equality.dir/bench_table2_equality.cc.o"
  "CMakeFiles/bench_table2_equality.dir/bench_table2_equality.cc.o.d"
  "bench_table2_equality"
  "bench_table2_equality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_equality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_parallel.dir/bench_fig13_parallel.cc.o"
  "CMakeFiles/bench_fig13_parallel.dir/bench_fig13_parallel.cc.o.d"
  "bench_fig13_parallel"
  "bench_fig13_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

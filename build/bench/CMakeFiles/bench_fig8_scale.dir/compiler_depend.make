# Empty compiler generated dependencies file for bench_fig8_scale.
# This may be replaced when dependencies are built.

// Scenario from the paper's introduction: an outsourced medical-records
// database with fine-grained, cryptographically-enforced access control.
//
// A patient authorizes access to their record "only to senior researchers
// or doctors specializing in cancer" — the policy
// (Doctor & Cancer) | SeniorResearcher. The example demonstrates:
//
//   * per-record CP-ABE-style policies enforced during authenticated query
//     processing;
//   * the enumeration-attack resistance of zero-knowledge VOs: a curious
//     user sweeping the key space learns nothing about inaccessible or
//     absent records (both look identical);
//   * hierarchical roles (§8.1) shrinking the inaccessible predicates;
//   * sealed transport: responses opened only by users who truly hold the
//     claimed roles.
#include <cstdio>

#include "core/hierarchy.h"
#include "core/system.h"

using namespace apqa;
using namespace apqa::core;

int main() {
  // Role hierarchy: Staff is the root; doctors/nurses are staff; a cancer
  // specialization hangs under Doctor.
  RoleHierarchy hierarchy;
  hierarchy.AddEdge("Staff", "Doctor");
  hierarchy.AddEdge("Staff", "Nurse");
  hierarchy.AddEdge("Doctor", "Cancer");
  hierarchy.AddEdge("Staff", "SeniorResearcher");

  RoleSet universe = {"Staff", "Doctor", "Nurse", "Cancer",
                      "SeniorResearcher"};
  Domain domain{/*dims=*/1, /*bits=*/5};  // patient ids 0..31
  DataOwner owner(universe, domain, /*seed=*/777);

  auto policy = [&](const char* text) {
    return hierarchy.Augment(Policy::Parse(text));
  };
  std::vector<Record> records = {
      {{4}, "alice: oncology chart", policy("(Doctor & Cancer) | SeniorResearcher")},
      {{7}, "bob: routine checkup", policy("Doctor | Nurse")},
      {{11}, "carol: oncology chart", policy("(Doctor & Cancer) | SeniorResearcher")},
      {{15}, "dave: lab results", policy("Doctor")},
      {{23}, "erin: nursing notes", policy("Nurse")},
  };
  std::printf("DO: signing %zu medical records...\n", records.size());
  ServiceProvider sp(owner.keys(), owner.BuildAds(records));

  // A general practitioner: Doctor but no Cancer specialization. Holding
  // Doctor implies holding Staff (role closure).
  RoleSet gp_roles = hierarchy.Close({"Doctor"});
  User gp(owner.keys(), owner.EnrollUser(gp_roles));
  // An oncologist.
  RoleSet onc_roles = hierarchy.Close({"Cancer"});
  User oncologist(owner.keys(), owner.EnrollUser(onc_roles));

  Box all{{0}, {31}};
  std::string error;

  auto report = [&](const char* who, User& user) {
    Vo vo = sp.RangeQuery(all, user.roles());
    std::vector<Record> results;
    if (!user.VerifyRange(all, vo, &results, &error)) {
      std::printf("VERIFICATION FAILED: %s\n", error.c_str());
      std::exit(1);
    }
    std::printf("%s sees %zu records (VO %zu bytes, %zu entries):\n", who,
                results.size(), vo.SerializedSize(), vo.entries.size());
    for (const auto& r : results) {
      std::printf("    id=%-3u %s\n", r.key[0], r.value.c_str());
    }
  };
  report("general practitioner", gp);
  report("oncologist          ", oncologist);

  // Enumeration attack: the GP probes every patient id with equality
  // queries. For ids 4 and 11 (oncology charts, inaccessible) and for
  // absent ids, the VOs are structurally identical — the GP cannot tell
  // which patients exist.
  std::printf("\nGP enumeration sweep over ids 0..31:\n  inaccessible-or-absent ids: ");
  int hidden = 0;
  for (std::uint32_t id = 0; id < 32; ++id) {
    Vo vo = sp.EqualityQuery({id}, gp.roles());
    bool accessible = false;
    if (!gp.VerifyEquality({id}, vo, nullptr, &accessible, &error)) {
      std::printf("VERIFICATION FAILED at id %u: %s\n", id, error.c_str());
      return 1;
    }
    if (!accessible) {
      ++hidden;
      if (std::holds_alternative<InaccessibleRecordEntry>(vo.entries[0])) {
        // Every such VO is one InaccessibleRecordEntry — indistinguishable
        // whether the id belongs to an oncology chart or to nobody.
      }
    }
  }
  std::printf("%d of 32 — all proven with identical-shape VOs\n", hidden);

  // The sealed-transport path: an oncologist's response cannot be opened by
  // the GP even if intercepted.
  cpabe::Envelope env = sp.SealedRangeQuery(all, oncologist.roles());
  std::vector<Record> results;
  bool onc_ok = oncologist.OpenAndVerifyRange(all, env, &results, &error);
  bool gp_blocked = !gp.OpenAndVerifyRange(all, env, nullptr, nullptr);
  std::printf("\nsealed response: oncologist opens=%s, GP blocked=%s\n",
              onc_ok ? "yes" : "NO!", gp_blocked ? "yes" : "NO!");
  return onc_ok && gp_blocked ? 0 : 1;
}

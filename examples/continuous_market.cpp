// Continuous query attributes under the relaxed model (§9.2): an outsourced
// trade log keyed by (continuous) timestamps.
//
// Under access-policy confidentiality (zero-knowledge relaxed), the DO signs
// pseudo *regions* for the gaps between trades instead of one pseudo record
// per possible timestamp — the ADS is data-sized, not domain-sized. Gap APS
// signatures prove "no trade in (t1, t2)", record APS signatures prove
// "there is a trade here you may not see" without revealing why.
#include <cstdio>

#include "core/continuous.h"

using namespace apqa;
using namespace apqa::core;

int main() {
  crypto::Rng rng(99);
  abs::MasterKey msk;
  abs::VerifyKey mvk;
  abs::Abs::Setup(&rng, &msk, &mvk);

  policy::RoleSet universe = {"Trader", "Compliance", "Auditor"};
  policy::RoleSet key_universe = universe;
  key_universe.insert(kPseudoRole);
  abs::SigningKey sk_do = abs::Abs::KeyGen(msk, key_universe, &rng);

  // Trades at microsecond timestamps; compliance-only entries interleaved.
  std::vector<ContinuousRecord> trades = {
      {1'000'001, "BUY 100 ACME @ 17.20", Policy::Parse("Trader | Auditor")},
      {1'000'047, "SELL 40 ACME @ 17.25", Policy::Parse("Trader | Auditor")},
      {1'000'048, "FLAG wash-trade suspect", Policy::Parse("Compliance")},
      {1'002'130, "BUY 5000 ACME @ 17.90", Policy::Parse("Compliance | Auditor")},
      {1'009'999, "SELL 100 ACME @ 18.01", Policy::Parse("Trader | Auditor")},
  };
  std::printf("DO: signing %zu trades + %zu gap regions...\n", trades.size(),
              trades.size() + 1);
  ContinuousAds ads = ContinuousAds::Build(mvk, sk_do, trades, &rng);
  std::printf("ADS size: %.1f KB\n\n", ads.SerializedSizeBytes() / 1024.0);

  policy::RoleSet trader = {"Trader"};
  std::string error;

  // Range query over the first millisecond.
  ContinuousVo vo = BuildContinuousRangeVo(ads, mvk, 1'000'000, 1'001'000,
                                           trader, universe, &rng);
  std::vector<ContinuousRecord> results;
  if (!VerifyContinuousRangeVo(mvk, 1'000'000, 1'001'000, trader, universe,
                               vo, &results, &error)) {
    std::printf("VERIFICATION FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("trader range [1000000, 1001000]: verified\n");
  for (const auto& r : results) {
    std::printf("    t=%llu  %s\n", static_cast<unsigned long long>(r.key),
                r.value.c_str());
  }
  std::printf("    + %zu hidden trades, %zu empty-gap proofs\n\n",
              vo.inaccessible.size(), vo.gaps.size());

  // Equality query on an exact timestamp with no trade: the gap region
  // proves absence (the relaxed model discloses distribution knowledge).
  ContinuousVo evo =
      BuildContinuousEqualityVo(ads, mvk, 1'005'000, trader, universe, &rng);
  std::optional<ContinuousRecord> result;
  if (!VerifyContinuousEqualityVo(mvk, 1'005'000, trader, universe, evo,
                                  &result, &error)) {
    std::printf("VERIFICATION FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("equality t=1005000: verified, %s\n",
              result.has_value() ? "trade found" : "proven absent (gap)");

  // The compliance flag at t=1000048 is invisible to the trader but its
  // *presence in the timeline* is provable — that is exactly the §9.2
  // trade-off versus the zero-knowledge grid.
  ContinuousVo fvo =
      BuildContinuousEqualityVo(ads, mvk, 1'000'048, trader, universe, &rng);
  if (!VerifyContinuousEqualityVo(mvk, 1'000'048, trader, universe, fvo,
                                  &result, &error)) {
    std::printf("VERIFICATION FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("equality t=1000048: verified, %s\n",
              result.has_value() ? "trade visible"
                                 : "a record exists but is inaccessible");
  return 0;
}

// apqa_cli — a scriptable command-line front end over the db:: facade.
//
// Reads commands from a script file (or runs the built-in demo with no
// arguments). One command per line; '#' starts a comment:
//
//   roles <r1> <r2> ...                      define the role universe
//   table <name> bits=<n> <attr:min:max>...  declare a table schema
//   row <table> <v1,v2,..> <policy> <value>  stage a row
//   build <table>                            sign + outsource the table
//   enroll <user> <r1,r2,...>                create a verifying client
//   range <user> <table> <lo,..> <hi,..>     authenticated range query
//   eq <user> <table> <v1,..>                authenticated equality query
//
// Every query is verified client-side; the tool prints the verified rows
// and the VO size.
//
// Two extra subcommands run the demo deployment as a real TCP service
// (src/net/). Keys are derived deterministically from --seed, so a server
// and any number of clients rebuild the same trust anchors independently —
// no key files change hands:
//
//   apqa_cli serve [--port=N] [--seed=N] [--workers=N] [--queue=N]
//   apqa_cli query [--port=N] [--seed=N] [--roles=r1,r2]
//                  [--deadline-ms=N] [--retries=N]
//                  eq <v1,v2,..> | range <lo,..> <hi,..>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "db/database.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket_transport.h"

using namespace apqa;
using namespace apqa::db;

namespace {

std::vector<std::string> Split(const std::string& s, char sep = ' ') {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<double> ParseDoubles(const std::string& s) {
  std::vector<double> out;
  for (const auto& tok : Split(s, ',')) out.push_back(std::stod(tok));
  return out;
}

const char* kDemoScript = R"(# Built-in demo: a hospital data mart.
roles Doctor Nurse Researcher
table vitals bits=4 heart_rate:30:220 temp:34:43
row vitals 72,36.6 Doctor|Nurse ward-A/patient-1
row vitals 95,38.2 Doctor ward-A/patient-2
row vitals 120,39.5 (Doctor&Researcher)|Nurse icu/patient-3
row vitals 61,36.1 Researcher cohort/anon-17
build vitals
enroll alice Nurse
enroll bob Researcher
range alice vitals 60,36 100,39
range bob vitals 60,36 130,40
eq alice vitals 95,38.2
)";

struct Cli {
  std::unique_ptr<OwnerDatabase> owner;
  std::unique_ptr<SpDatabase> sp;
  std::map<std::string, TableSchema> schemas;
  std::map<std::string, std::vector<Row>> staged;
  std::map<std::string, std::unique_ptr<ClientSession>> clients;

  int Run(std::istream& in) {
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      auto tokens = Split(line);
      if (tokens.empty()) continue;
      try {
        if (!Dispatch(tokens)) {
          std::fprintf(stderr, "line %d: unknown command '%s'\n", lineno,
                       tokens[0].c_str());
          return 1;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "line %d: %s\n", lineno, e.what());
        return 1;
      }
    }
    return 0;
  }

  bool Dispatch(const std::vector<std::string>& t) {
    const std::string& cmd = t[0];
    if (cmd == "roles") {
      RoleSet universe(t.begin() + 1, t.end());
      owner = std::make_unique<OwnerDatabase>(universe, /*seed=*/2018);
      sp = std::make_unique<SpDatabase>(owner->keys());
      std::printf("universe: %zu roles, keys generated\n", universe.size());
      return true;
    }
    if (cmd == "table") {
      int bits = 4;
      std::vector<AttributeSpec> attrs;
      for (std::size_t i = 2; i < t.size(); ++i) {
        if (t[i].rfind("bits=", 0) == 0) {
          bits = std::stoi(t[i].substr(5));
          continue;
        }
        auto parts = Split(t[i], ':');
        if (parts.size() != 3) throw std::invalid_argument("attr:min:max");
        attrs.push_back({parts[0], std::stod(parts[1]), std::stod(parts[2])});
      }
      schemas.emplace(t[1], TableSchema(t[1], attrs, bits));
      std::printf("table %s: %zu attrs, %d-bit grid\n", t[1].c_str(),
                  attrs.size(), bits);
      return true;
    }
    if (cmd == "row") {
      Row row;
      row.attrs = ParseDoubles(t[2]);
      row.policy = t[3];
      for (std::size_t i = 4; i < t.size(); ++i) {
        if (i > 4) row.value += ' ';
        row.value += t[i];
      }
      staged[t[1]].push_back(std::move(row));
      return true;
    }
    if (cmd == "build") {
      owner->CreateTable(schemas.at(t[1]), staged[t[1]]);
      auto bundle = owner->ExportTable(t[1]);
      if (!sp->ImportTable(bundle)) throw std::runtime_error("import failed");
      std::printf("built %s: %zu rows signed, ADS %.1f KB outsourced\n",
                  t[1].c_str(), staged[t[1]].size(), bundle.size() / 1024.0);
      return true;
    }
    if (cmd == "enroll") {
      auto roles_list = Split(t[2], ',');
      RoleSet roles(roles_list.begin(), roles_list.end());
      clients[t[1]] = std::make_unique<ClientSession>(owner->keys(),
                                                      owner->Enroll(roles));
      std::printf("enrolled %s with {%s}\n", t[1].c_str(), t[2].c_str());
      return true;
    }
    if (cmd == "range") {
      auto& client = *clients.at(t[1]);
      auto lo = ParseDoubles(t[3]), hi = ParseDoubles(t[4]);
      core::Vo vo = sp->Range(t[2], lo, hi, client.roles());
      std::vector<VerifiedRow> rows;
      std::string error;
      if (!client.VerifyRange(sp->GetSchema(t[2]), lo, hi, vo, &rows,
                              &error)) {
        throw std::runtime_error("VERIFICATION FAILED: " + error);
      }
      std::printf("%s range %s [%s..%s]: VERIFIED, %zu rows, VO %.1f KB\n",
                  t[1].c_str(), t[2].c_str(), t[3].c_str(), t[4].c_str(),
                  rows.size(), vo.SerializedSize() / 1024.0);
      for (const auto& r : rows) {
        std::printf("    %s\n", r.value.c_str());
      }
      return true;
    }
    if (cmd == "eq") {
      auto& client = *clients.at(t[1]);
      auto attrs = ParseDoubles(t[3]);
      core::Vo vo = sp->Equality(t[2], attrs, client.roles());
      std::optional<VerifiedRow> row;
      std::string error;
      if (!client.VerifyEquality(sp->GetSchema(t[2]), attrs, vo, &row,
                                 &error)) {
        throw std::runtime_error("VERIFICATION FAILED: " + error);
      }
      std::printf("%s eq %s (%s): VERIFIED, %s\n", t[1].c_str(), t[2].c_str(),
                  t[3].c_str(),
                  row.has_value() ? row->value.c_str()
                                  : "inaccessible or absent");
      return true;
    }
    return false;
  }
};

// --- TCP service mode -------------------------------------------------------

// The served deployment: the same hospital data mart as the script demo,
// rebuilt identically by every process that knows the seed.
const std::uint64_t kDefaultSeed = 2018;

TableSchema DemoSchema() {
  return TableSchema("vitals",
                     {{"heart_rate", 30, 220}, {"temp", 34, 43}},
                     /*bits=*/4);
}

RoleSet DemoUniverse() { return {"Doctor", "Nurse", "Researcher"}; }

std::vector<core::Record> DemoRecords(const TableSchema& schema) {
  struct DemoRow {
    std::vector<double> attrs;
    const char* policy;
    const char* value;
  };
  const DemoRow rows[] = {
      {{72, 36.6}, "Doctor|Nurse", "ward-A/patient-1"},
      {{95, 38.2}, "Doctor", "ward-A/patient-2"},
      {{120, 39.5}, "(Doctor&Researcher)|Nurse", "icu/patient-3"},
      {{61, 36.1}, "Researcher", "cohort/anon-17"},
  };
  std::vector<core::Record> records;
  for (const auto& r : rows) {
    records.push_back(core::Record{schema.Discretize(r.attrs), r.value,
                                   core::Policy::Parse(r.policy)});
  }
  return records;
}

// Minimal --key=value parser; positional arguments pass through.
struct Flags {
  std::map<std::string, std::string> kv;
  std::vector<std::string> positional;

  static Flags Parse(int argc, char** argv, int from) {
    Flags f;
    for (int i = from; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        auto eq = a.find('=');
        std::string key = a.substr(2, eq == std::string::npos ? a.size() : eq - 2);
        std::string value = eq == std::string::npos ? std::string("1")
                                                    : a.substr(eq + 1);
        f.kv.emplace(std::move(key), std::move(value));
      } else {
        f.positional.push_back(a);
      }
    }
    return f;
  }

  std::uint64_t U64(const std::string& key, std::uint64_t def) const {
    auto it = kv.find(key);
    return it == kv.end() ? def : std::stoull(it->second);
  }
  std::string Str(const std::string& key, const std::string& def) const {
    auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
  }
};

volatile std::sig_atomic_t g_interrupted = 0;
void HandleSigint(int) { g_interrupted = 1; }

int RunServe(const Flags& flags) {
  std::uint64_t seed = flags.U64("seed", kDefaultSeed);
  TableSchema schema = DemoSchema();
  std::printf("deriving keys and signing the demo ADS (seed %llu)...\n",
              static_cast<unsigned long long>(seed));
  core::DataOwner owner(DemoUniverse(), schema.domain(), seed);
  core::ServiceProvider sp(owner.keys(), owner.BuildAds(DemoRecords(schema)));

  net::SpServerOptions opts;
  opts.worker_threads = static_cast<int>(flags.U64("workers", 2));
  opts.max_queue = flags.U64("queue", 8);
  net::SpServer server(&sp, opts);

  net::TcpListener listener(
      static_cast<std::uint16_t>(flags.U64("port", 4720)));
  if (!listener.ok()) {
    std::fprintf(stderr, "cannot bind 127.0.0.1 (try --port=0)\n");
    return 1;
  }
  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);
  std::printf("serving '%s' on 127.0.0.1:%u — Ctrl-C for graceful drain\n",
              schema.name().c_str(), listener.port());
  std::fflush(stdout);

  while (g_interrupted == 0) {
    auto conn = listener.Accept(/*timeout_ms=*/250);
    if (conn != nullptr && !server.AttachTransport(std::move(conn))) break;
  }
  listener.Close();
  std::printf("\ndraining...\n");
  server.Stop();
  net::ServerStats s = server.stats();
  std::printf("served %llu  expired %llu  failed %llu  shed %llu  "
              "refused %llu  malformed %llu\n",
              static_cast<unsigned long long>(s.served),
              static_cast<unsigned long long>(s.expired),
              static_cast<unsigned long long>(s.failed),
              static_cast<unsigned long long>(s.shed),
              static_cast<unsigned long long>(s.refused),
              static_cast<unsigned long long>(s.malformed));
  return 0;
}

int RunQuery(const Flags& flags) {
  if (flags.positional.empty()) {
    std::fprintf(stderr, "query needs a subcommand: eq <vals> | "
                         "range <lo> <hi>\n");
    return 2;
  }
  std::uint64_t seed = flags.U64("seed", kDefaultSeed);
  TableSchema schema = DemoSchema();
  // Same seed → same master keys as the server; enrollment only needs the
  // (deterministic) master secret, not the server's cooperation.
  core::DataOwner owner(DemoUniverse(), schema.domain(), seed);
  auto roles_list = Split(flags.Str("roles", "Nurse"), ',');
  core::UserCredentials creds =
      owner.EnrollUser(RoleSet(roles_list.begin(), roles_list.end()));

  auto transport = net::SocketTransport::Connect(
      "127.0.0.1", static_cast<std::uint16_t>(flags.U64("port", 4720)),
      /*timeout_ms=*/2000);
  if (transport == nullptr) {
    std::fprintf(stderr, "cannot connect (is `apqa_cli serve` running?)\n");
    return 1;
  }
  net::ClientOptions opts;
  opts.deadline_ms = static_cast<std::uint32_t>(flags.U64("deadline-ms", 5000));
  opts.max_attempts = static_cast<int>(flags.U64("retries", 4));
  opts.attempt_timeout_ms = opts.deadline_ms / 2 + 1;
  net::ApqaClient client(owner.keys(), creds,
                         std::shared_ptr<net::Transport>(std::move(transport)),
                         opts);

  const std::string& op = flags.positional[0];
  net::ClientResult r;
  if (op == "eq" && flags.positional.size() == 2) {
    core::Record rec;
    bool accessible = false;
    r = client.Equality(schema.Discretize(ParseDoubles(flags.positional[1])),
                        &rec, &accessible);
    if (r.ok()) {
      std::printf("VERIFIED eq (%s): %s\n", flags.positional[1].c_str(),
                  accessible ? rec.value.c_str() : "inaccessible or absent");
    }
  } else if (op == "range" && flags.positional.size() == 3) {
    std::vector<core::Record> rows;
    r = client.Range(schema.DiscretizeRange(ParseDoubles(flags.positional[1]),
                                            ParseDoubles(flags.positional[2])),
                     &rows);
    if (r.ok()) {
      std::printf("VERIFIED range [%s..%s]: %zu rows\n",
                  flags.positional[1].c_str(), flags.positional[2].c_str(),
                  rows.size());
      for (const auto& row : rows) std::printf("    %s\n", row.value.c_str());
    }
  } else {
    std::fprintf(stderr, "usage: query ... eq <v1,v2> | range <lo,..> "
                         "<hi,..>\n");
    return 2;
  }
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.ToString().c_str());
    return 1;
  }
  std::printf("(%d attempt(s), %u ms in backoff)\n", r.attempts,
              r.backoff_total_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "serve") {
    return RunServe(Flags::Parse(argc, argv, 2));
  }
  if (argc > 1 && std::string(argv[1]) == "query") {
    return RunQuery(Flags::Parse(argc, argv, 2));
  }
  Cli cli;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    return cli.Run(f);
  }
  std::printf("(running built-in demo; pass a script file to customize)\n\n");
  std::istringstream demo(kDemoScript);
  return cli.Run(demo);
}

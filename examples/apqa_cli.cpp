// apqa_cli — a scriptable command-line front end over the db:: facade.
//
// Reads commands from a script file (or runs the built-in demo with no
// arguments). One command per line; '#' starts a comment:
//
//   roles <r1> <r2> ...                      define the role universe
//   table <name> bits=<n> <attr:min:max>...  declare a table schema
//   row <table> <v1,v2,..> <policy> <value>  stage a row
//   build <table>                            sign + outsource the table
//   enroll <user> <r1,r2,...>                create a verifying client
//   range <user> <table> <lo,..> <hi,..>     authenticated range query
//   eq <user> <table> <v1,..>                authenticated equality query
//
// Every query is verified client-side; the tool prints the verified rows
// and the VO size.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "db/database.h"

using namespace apqa;
using namespace apqa::db;

namespace {

std::vector<std::string> Split(const std::string& s, char sep = ' ') {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<double> ParseDoubles(const std::string& s) {
  std::vector<double> out;
  for (const auto& tok : Split(s, ',')) out.push_back(std::stod(tok));
  return out;
}

const char* kDemoScript = R"(# Built-in demo: a hospital data mart.
roles Doctor Nurse Researcher
table vitals bits=4 heart_rate:30:220 temp:34:43
row vitals 72,36.6 Doctor|Nurse ward-A/patient-1
row vitals 95,38.2 Doctor ward-A/patient-2
row vitals 120,39.5 (Doctor&Researcher)|Nurse icu/patient-3
row vitals 61,36.1 Researcher cohort/anon-17
build vitals
enroll alice Nurse
enroll bob Researcher
range alice vitals 60,36 100,39
range bob vitals 60,36 130,40
eq alice vitals 95,38.2
)";

struct Cli {
  std::unique_ptr<OwnerDatabase> owner;
  std::unique_ptr<SpDatabase> sp;
  std::map<std::string, TableSchema> schemas;
  std::map<std::string, std::vector<Row>> staged;
  std::map<std::string, std::unique_ptr<ClientSession>> clients;

  int Run(std::istream& in) {
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      auto tokens = Split(line);
      if (tokens.empty()) continue;
      try {
        if (!Dispatch(tokens)) {
          std::fprintf(stderr, "line %d: unknown command '%s'\n", lineno,
                       tokens[0].c_str());
          return 1;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "line %d: %s\n", lineno, e.what());
        return 1;
      }
    }
    return 0;
  }

  bool Dispatch(const std::vector<std::string>& t) {
    const std::string& cmd = t[0];
    if (cmd == "roles") {
      RoleSet universe(t.begin() + 1, t.end());
      owner = std::make_unique<OwnerDatabase>(universe, /*seed=*/2018);
      sp = std::make_unique<SpDatabase>(owner->keys());
      std::printf("universe: %zu roles, keys generated\n", universe.size());
      return true;
    }
    if (cmd == "table") {
      int bits = 4;
      std::vector<AttributeSpec> attrs;
      for (std::size_t i = 2; i < t.size(); ++i) {
        if (t[i].rfind("bits=", 0) == 0) {
          bits = std::stoi(t[i].substr(5));
          continue;
        }
        auto parts = Split(t[i], ':');
        if (parts.size() != 3) throw std::invalid_argument("attr:min:max");
        attrs.push_back({parts[0], std::stod(parts[1]), std::stod(parts[2])});
      }
      schemas.emplace(t[1], TableSchema(t[1], attrs, bits));
      std::printf("table %s: %zu attrs, %d-bit grid\n", t[1].c_str(),
                  attrs.size(), bits);
      return true;
    }
    if (cmd == "row") {
      Row row;
      row.attrs = ParseDoubles(t[2]);
      row.policy = t[3];
      for (std::size_t i = 4; i < t.size(); ++i) {
        if (i > 4) row.value += ' ';
        row.value += t[i];
      }
      staged[t[1]].push_back(std::move(row));
      return true;
    }
    if (cmd == "build") {
      owner->CreateTable(schemas.at(t[1]), staged[t[1]]);
      auto bundle = owner->ExportTable(t[1]);
      if (!sp->ImportTable(bundle)) throw std::runtime_error("import failed");
      std::printf("built %s: %zu rows signed, ADS %.1f KB outsourced\n",
                  t[1].c_str(), staged[t[1]].size(), bundle.size() / 1024.0);
      return true;
    }
    if (cmd == "enroll") {
      auto roles_list = Split(t[2], ',');
      RoleSet roles(roles_list.begin(), roles_list.end());
      clients[t[1]] = std::make_unique<ClientSession>(owner->keys(),
                                                      owner->Enroll(roles));
      std::printf("enrolled %s with {%s}\n", t[1].c_str(), t[2].c_str());
      return true;
    }
    if (cmd == "range") {
      auto& client = *clients.at(t[1]);
      auto lo = ParseDoubles(t[3]), hi = ParseDoubles(t[4]);
      core::Vo vo = sp->Range(t[2], lo, hi, client.roles());
      std::vector<VerifiedRow> rows;
      std::string error;
      if (!client.VerifyRange(sp->GetSchema(t[2]), lo, hi, vo, &rows,
                              &error)) {
        throw std::runtime_error("VERIFICATION FAILED: " + error);
      }
      std::printf("%s range %s [%s..%s]: VERIFIED, %zu rows, VO %.1f KB\n",
                  t[1].c_str(), t[2].c_str(), t[3].c_str(), t[4].c_str(),
                  rows.size(), vo.SerializedSize() / 1024.0);
      for (const auto& r : rows) {
        std::printf("    %s\n", r.value.c_str());
      }
      return true;
    }
    if (cmd == "eq") {
      auto& client = *clients.at(t[1]);
      auto attrs = ParseDoubles(t[3]);
      core::Vo vo = sp->Equality(t[2], attrs, client.roles());
      std::optional<VerifiedRow> row;
      std::string error;
      if (!client.VerifyEquality(sp->GetSchema(t[2]), attrs, vo, &row,
                                 &error)) {
        throw std::runtime_error("VERIFICATION FAILED: " + error);
      }
      std::printf("%s eq %s (%s): VERIFIED, %s\n", t[1].c_str(), t[2].c_str(),
                  t[3].c_str(),
                  row.has_value() ? row->value.c_str()
                                  : "inaccessible or absent");
      return true;
    }
    return false;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    return cli.Run(f);
  }
  std::printf("(running built-in demo; pass a script file to customize)\n\n");
  std::istringstream demo(kDemoScript);
  return cli.Run(demo);
}

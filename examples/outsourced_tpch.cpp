// Outsourced analytics: the paper's evaluation workload in miniature.
//
// A TPC-H-style Lineitem table with three query attributes
// (shipdate, discount, quantity) is outsourced with randomly generated DNF
// access policies. The example runs:
//
//   * a Q6-shaped authenticated range query over the 3-D grid,
//   * a Q12-shaped authenticated equi-join (Lineitem ⋈ Orders on orderkey),
//   * the relaxed-model AP²kd-tree alternative for comparison.
#include <cstdio>

#include "core/kd_tree.h"
#include "core/system.h"
#include "tpch/tpch.h"

using namespace apqa;

int main() {
  // --- Generate the workload ----------------------------------------------
  core::Domain domain{/*dims=*/3, /*bits=*/3};  // 8x8x8 grid
  tpch::PolicyGen pgen(/*num_policies=*/10, /*num_roles=*/10, /*or_fan=*/3,
                       /*and_fan=*/2, /*seed=*/42);
  tpch::TpchGen gen(/*scale=*/0.1, /*seed=*/42);
  auto rows = gen.Lineitem();
  auto records = tpch::LineitemRecords(rows, domain, pgen.policies());
  std::printf("generated %zu lineitem rows -> %zu distinct grid records\n",
              rows.size(), records.size());

  core::DataOwner owner(pgen.universe(), domain, /*seed=*/42);
  std::printf("DO: building AP2G-tree over %llu cells...\n",
              static_cast<unsigned long long>(domain.CellCount()));
  core::ServiceProvider sp(owner.keys(), owner.BuildAds(records));

  policy::RoleSet roles = pgen.RolesForAccessFraction(0.2);
  core::User analyst(owner.keys(), owner.EnrollUser(roles));
  std::printf("analyst roles: ");
  for (const auto& r : roles) std::printf("%s ", r.c_str());
  std::printf("\n\n");

  // --- Q6-shaped range query -----------------------------------------------
  // SELECT * FROM lineitem WHERE shipdate BETWEEN ? AND ?
  //   AND discount BETWEEN ? AND ? AND quantity BETWEEN ? AND ?
  crypto::Rng qrng(7);
  core::Box q6 = tpch::RandomRangeQuery(domain, 0.1, &qrng);
  core::Vo vo = sp.RangeQuery(q6, roles);
  std::vector<core::Record> results;
  std::string error;
  if (!analyst.VerifyRange(q6, vo, &results, &error)) {
    std::printf("Q6 VERIFICATION FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("Q6 range [%u..%u]x[%u..%u]x[%u..%u]: verified, "
              "%zu accessible rows, VO %.1f KB (%zu entries)\n",
              q6.lo[0], q6.hi[0], q6.lo[1], q6.hi[1], q6.lo[2], q6.hi[2],
              results.size(), vo.SerializedSize() / 1024.0,
              vo.entries.size());

  // --- Q12-shaped join query -----------------------------------------------
  // SELECT * FROM orders, lineitem WHERE o.orderkey = l.orderkey
  //   AND l.orderkey BETWEEN ? AND ?
  core::Domain key_domain{/*dims=*/1, /*bits=*/6};
  auto l_by_key = tpch::LineitemByOrderKey(rows, key_domain, pgen.policies());
  auto o_by_key =
      tpch::OrdersByOrderKey(gen.Orders(), key_domain, pgen.policies());
  core::DataOwner join_owner(pgen.universe(), key_domain, /*seed=*/43);
  core::ServiceProvider join_sp(join_owner.keys(),
                                join_owner.BuildAds(l_by_key));
  join_sp.AttachJoinTable(join_owner.BuildAds(o_by_key));
  core::User join_user(join_owner.keys(), join_owner.EnrollUser(roles));

  core::Box q12{{8}, {47}};
  core::JoinVo jvo = join_sp.JoinQuery(q12, roles);
  std::vector<std::pair<core::Record, core::Record>> pairs;
  if (!join_user.VerifyJoin(q12, jvo, &pairs, &error)) {
    std::printf("Q12 VERIFICATION FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("Q12 join on orderkey in [8,47]: verified, %zu pairs, "
              "VO %.1f KB\n", pairs.size(), jvo.SerializedSize() / 1024.0);
  for (std::size_t i = 0; i < std::min<std::size_t>(pairs.size(), 3); ++i) {
    std::printf("    orderkey=%u  %s  <->  %s\n", pairs[i].first.key[0],
                pairs[i].first.value.c_str(), pairs[i].second.value.c_str());
  }

  // --- Relaxed model: AP2kd-tree -------------------------------------------
  core::KdTree kd = core::KdTree::Build(owner.keys().mvk, owner.signing_key(),
                                        domain, records, owner.rng());
  crypto::Rng krng(9);
  core::KdVo kvo = core::BuildKdRangeVo(kd, owner.keys().mvk, q6, roles,
                                        owner.keys().universe, &krng);
  std::vector<core::Record> kd_results;
  if (!core::VerifyKdRangeVo(owner.keys().mvk, domain, q6, roles,
                             owner.keys().universe, kvo, &kd_results,
                             &error)) {
    std::printf("KD VERIFICATION FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("\nAP2kd-tree (relaxed model), same Q6 range: verified, "
              "%zu rows, VO %.1f KB (%zu entries, vs %zu for AP2G)\n",
              kd_results.size(), kvo.SerializedSize() / 1024.0,
              kvo.EntryCount(), vo.entries.size());
  if (kd_results.size() != results.size()) {
    std::printf("RESULT MISMATCH between AP2G and AP2kd!\n");
    return 1;
  }
  return 0;
}

// Quickstart: the minimal end-to-end APQA flow.
//
//   1. The data owner (DO) sets up keys and signs an access-controlled
//      table into the AP²G-tree ADS.
//   2. The service provider (SP) answers an equality and a range query,
//      attaching verification objects (VOs).
//   3. The user verifies soundness and completeness — and learns *nothing*
//      about records it may not access, not even whether they exist.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/system.h"

using namespace apqa;
using namespace apqa::core;

int main() {
  // --- 1. Data owner setup -------------------------------------------------
  Domain domain{/*dims=*/1, /*bits=*/4};  // keys 0..15
  DataOwner owner(/*role_universe=*/{"Doctor", "Nurse", "Researcher"}, domain,
                  /*seed=*/2018);

  std::vector<Record> table = {
      {{3}, "patient:alice,diagnosis:flu", Policy::Parse("Doctor | Nurse")},
      {{5}, "patient:bob,diagnosis:cancer", Policy::Parse("Doctor")},
      {{9}, "aggregate:cohort-7", Policy::Parse("Researcher | Doctor")},
      {{12}, "patient:carol,diagnosis:cold", Policy::Parse("Nurse")},
  };
  std::printf("DO: signing %zu records into the AP2G-tree...\n", table.size());
  ServiceProvider sp(owner.keys(), owner.BuildAds(table));

  // --- 2. Enroll users -----------------------------------------------------
  User nurse(owner.keys(), owner.EnrollUser({"Nurse"}));
  User doctor(owner.keys(), owner.EnrollUser({"Doctor"}));

  // --- 3. Equality query ---------------------------------------------------
  // The nurse asks for key 5 (Doctor-only record): the VO proves the query
  // has no accessible answer without revealing whether a record exists.
  Vo vo = sp.EqualityQuery({5}, nurse.roles());
  bool accessible = false;
  Record result;
  std::string error;
  if (!nurse.VerifyEquality({5}, vo, &result, &accessible, &error)) {
    std::printf("VERIFICATION FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("nurse  key=5  -> verified, accessible=%s\n",
              accessible ? "yes" : "no (existence hidden)");

  vo = sp.EqualityQuery({5}, doctor.roles());
  if (!doctor.VerifyEquality({5}, vo, &result, &accessible, &error)) {
    std::printf("VERIFICATION FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("doctor key=5  -> verified, accessible=%s, value=\"%s\"\n",
              accessible ? "yes" : "no", result.value.c_str());

  // --- 4. Range query ------------------------------------------------------
  Box range{{2}, {12}};
  Vo range_vo = sp.RangeQuery(range, nurse.roles());
  std::vector<Record> results;
  if (!nurse.VerifyRange(range, range_vo, &results, &error)) {
    std::printf("VERIFICATION FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("nurse  range [2,12] -> verified, %zu accessible records:\n",
              results.size());
  for (const auto& r : results) {
    std::printf("    key=%u  %s\n", r.key[0], r.value.c_str());
  }
  std::printf("    (VO: %zu entries, %zu bytes)\n", range_vo.entries.size(),
              range_vo.SerializedSize());

  // --- 5. Tamper detection -------------------------------------------------
  Vo tampered = range_vo;
  for (auto& e : tampered.entries) {
    if (auto* res = std::get_if<ResultEntry>(&e)) {
      res->value = "patient:alice,diagnosis:ALTERED";
      break;
    }
  }
  bool caught = !nurse.VerifyRange(range, tampered, nullptr, &error);
  std::printf("tampered VO rejected: %s (%s)\n", caught ? "yes" : "NO!",
              error.c_str());
  return caught ? 0 : 1;
}

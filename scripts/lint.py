#!/usr/bin/env python3
"""Repo lint: secret-handling and hostile-input discipline for src/.

Rules (each can name an allowlist of files where the construct is the
implementation itself, not a violation):

  R1  no libc randomness (rand/srand/random/rand_r) — all randomness goes
      through crypto::Rng (ChaCha20, /dev/urandom-seeded).
  R2  no memcmp/bcmp in the crypto/abs/cpabe layers — byte comparisons on
      key or MAC material early-exit; use crypto::CtEqBytes / CtEq.
  R3  no assert() on request-path code — SP-supplied bytes must fail
      gracefully (ByteReader::ok()), not abort in release builds where
      NDEBUG strips the check entirely.
  R4  reinterpret_cast only inside the ByteReader/Writer implementation and
      the urandom seed read — everywhere else it is a sign that SP-supplied
      bytes are being reinterpreted without bounds discipline.
  R5  no naked new/delete — containers and smart pointers only.
  R6  Secret<T>::Declassify() call sites carry a `// declassify:` reason on
      the same or the preceding line, so `--list-declassify` is a complete
      audit of every point where taint leaves the type system.
  R7  Secret<T>::ct_ref() only in src/crypto/ — it hands the raw value to
      the constant-pattern kernels and must not leak into protocol code.

Usage:
  scripts/lint.py                  lint src/ (exit 1 on violations)
  scripts/lint.py --list-declassify   print the declassification audit table
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

# (rule id, regex, message, allowlist of repo-relative files, path prefix
# restricting where the rule applies; None = all of src/)
RULES = [
    ("R1", re.compile(r"\b(?:s?rand|random|rand_r)\s*\("),
     "libc randomness; use crypto::Rng", [], None),
    ("R2", re.compile(r"\b(?:memcmp|bcmp)\s*\("),
     "early-exit compare on potential key material; use crypto::CtEqBytes",
     [], ("src/crypto/", "src/abs/", "src/cpabe/")),
    ("R3", re.compile(r"\bassert\s*\("),
     "assert() on request-path code; signal failure via return values", [],
     None),
    ("R4", re.compile(r"\breinterpret_cast\s*<"),
     "reinterpret_cast outside the serialization boundary",
     # socket_transport.cc: the sockaddr_in/sockaddr pun demanded by the
     # POSIX socket API, confined to one helper.
     ["src/common/serde.h", "src/crypto/rng.cc",
      "src/net/socket_transport.cc"], None),
    ("R5", re.compile(r"(?:^|[^_\w.])(?:new\s+[A-Za-z_:][\w:<>]*\s*[({[]|"
                      r"delete\s*(?:\[\s*\])?\s+[A-Za-z_])"),
     "naked new/delete; use containers or smart pointers", [], None),
    ("R7", re.compile(r"\.ct_ref\s*\(\)"),
     "ct_ref() outside src/crypto/ — the raw secret value must stay inside "
     "the constant-pattern kernels",
     [], None),
]

DECLASSIFY = re.compile(r"\.Declassify\s*\(\)")
DECLASSIFY_REASON = re.compile(r"//\s*declassify:")
LINE_COMMENT = re.compile(r"//.*$")


def strip_comments_and_strings(line):
    """Removes // comments and string/char literal contents (keeps quotes)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def source_files(roots):
    for root in roots:
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".h", ".cc", ".cpp")):
                    yield os.path.join(dirpath, name)


def lint_file(path, violations, declassify_sites):
    rel = os.path.relpath(path, REPO)
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    prev_raw = ""
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        for rule, pattern, message, allow, prefixes in RULES:
            if rel in allow:
                continue
            if prefixes is not None and not rel.startswith(prefixes):
                continue
            if rule == "R7" and rel.startswith("src/crypto/"):
                continue
            if pattern.search(code):
                violations.append((rel, lineno, rule, message, raw.strip()))
        if DECLASSIFY.search(code):
            justified = bool(
                DECLASSIFY_REASON.search(raw)
                or DECLASSIFY_REASON.search(prev_raw))
            declassify_sites.append((rel, lineno, raw.strip(), justified))
        prev_raw = raw


def main(argv):
    list_mode = "--list-declassify" in argv
    violations = []
    declassify_sites = []
    for path in source_files([SRC]):
        lint_file(path, violations, declassify_sites)

    if list_mode:
        print("# Declassification audit (src/)")
        if not declassify_sites:
            print("no Declassify() call sites")
        for rel, lineno, text, justified in declassify_sites:
            mark = "ok " if justified else "BAD"
            print(f"{mark} {rel}:{lineno}: {text}")
        return 0

    failed = False
    for rel, lineno, rule, message, text in violations:
        print(f"{rel}:{lineno}: [{rule}] {message}\n    {text}",
              file=sys.stderr)
        failed = True
    for rel, lineno, text, justified in declassify_sites:
        if not justified:
            print(
                f"{rel}:{lineno}: [R6] Declassify() without a "
                f"'// declassify: <reason>' comment\n    {text}",
                file=sys.stderr)
            failed = True
    if failed:
        return 1
    print(f"lint: OK ({sum(1 for _ in source_files([SRC]))} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

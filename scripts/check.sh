#!/usr/bin/env bash
# Full local check: regular build + ctest, then a UBSan build of the crypto
# stack (curve / msm / pairing / abs tests run directly; field arithmetic is
# where unsigned-overflow-adjacent bugs would hide), then an ASan build of
# the fault-injection suite (hostile-bytes handling is where heap bugs would
# hide).
#
# Usage: scripts/check.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SANITIZE=0
[[ "${1:-}" == "--skip-sanitize" ]] && SKIP_SANITIZE=1

echo "=== build (Release) ==="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "=== ctest ==="
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "$SKIP_SANITIZE" == 1 ]]; then
  echo "=== sanitizer pass skipped ==="
  exit 0
fi

echo "=== build (UBSan) ==="
cmake -B build-ubsan -S . -DAPQA_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j --target \
  curve_test msm_test pairing_test abs_test

echo "=== crypto tests under UBSan ==="
for t in curve_test msm_test pairing_test abs_test; do
  echo "--- $t ---"
  ./build-ubsan/tests/"$t" --gtest_brief=1
done

echo "=== build (ASan) ==="
cmake -B build-asan -S . -DAPQA_SANITIZE=address >/dev/null
cmake --build build-asan -j --target \
  fault_injection_test serde_test fuzz_vo_deserialize

echo "=== hostile-input tests under ASan ==="
./build-asan/tests/serde_test --gtest_brief=1
./build-asan/tests/fault_injection_test --gtest_brief=1
./build-asan/tests/fuzz_vo_deserialize

echo "=== all checks passed ==="

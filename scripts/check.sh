#!/usr/bin/env bash
# Full local check: regular build + ctest, then a UBSan build of the crypto
# stack (curve / msm / pairing / abs tests run directly; field arithmetic is
# where unsigned-overflow-adjacent bugs would hide).
#
# Usage: scripts/check.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SANITIZE=0
[[ "${1:-}" == "--skip-sanitize" ]] && SKIP_SANITIZE=1

echo "=== build (Release) ==="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "=== ctest ==="
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "$SKIP_SANITIZE" == 1 ]]; then
  echo "=== sanitizer pass skipped ==="
  exit 0
fi

echo "=== build (UBSan) ==="
cmake -B build-ubsan -S . -DAPQA_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j --target \
  curve_test msm_test pairing_test abs_test

echo "=== crypto tests under UBSan ==="
for t in curve_test msm_test pairing_test abs_test; do
  echo "--- $t ---"
  ./build-ubsan/tests/"$t" --gtest_brief=1
done

echo "=== all checks passed ==="

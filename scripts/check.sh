#!/usr/bin/env bash
# Full local check:
#
#   1. repo lint (scripts/lint.py): secret-handling / hostile-input rules
#   2. Release build with -Werror + full ctest
#   3. clang-format diff + clang-tidy on the crypto layer (skipped with a
#      notice when the clang tools are not installed — the default
#      toolchain here is GCC)
#   4. UBSan build of the crypto stack (curve / msm / pairing / abs / ct)
#   5. ASan build of the hostile-bytes suite (serde / fault injection / fuzz)
#   6. TSan build of the thread pool and the parallel SP/ADS paths
#   7. MSan constant-time oracle (tests/ct_check_test.cc with poisoned
#      secrets) — clang-only; skipped with a notice under GCC, where the
#      trace-equivalence tests in ct_check_test (already run in step 2)
#      cover the same ladders
#   8. perf smoke: one fast-mode run of bench_pairing_micro with the JSON
#      sink enabled; fails if the expected rows never reach the file or if
#      whole-VO batched verification is not at least 2x the retained
#      per-signature path (range_vo_verify_batched <= 0.5x
#      range_vo_verify_serial)
#
# Usage: scripts/check.sh [--quick|--skip-sanitize]
#   --quick          lint + Release build + ctest only
#   --skip-sanitize  like --quick, kept for compatibility
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
case "${1:-}" in
  --quick|--skip-sanitize) QUICK=1 ;;
esac

echo "=== lint ==="
python3 scripts/lint.py

echo "=== build (Release) ==="
cmake -B build -S . -DAPQA_WERROR=ON >/dev/null
cmake --build build -j

echo "=== ctest ==="
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "$QUICK" == 1 ]]; then
  echo "=== quick mode: sanitizer and clang-tool stages skipped ==="
  exit 0
fi

echo "=== clang-format / clang-tidy ==="
if command -v clang-format >/dev/null 2>&1; then
  # Diff-only: fails if the tree is not formatted.
  find src tests bench -name '*.cc' -o -name '*.h' | \
    xargs clang-format --dry-run -Werror
else
  echo "clang-format not installed; skipping format check"
fi
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  clang-tidy -p build --quiet src/crypto/*.cc src/abs/*.cc src/cpabe/*.cc
else
  echo "clang-tidy not installed; skipping tidy pass"
fi

echo "=== build (UBSan) ==="
cmake -B build-ubsan -S . -DAPQA_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j --target \
  curve_test msm_test pairing_test abs_test ct_check_test

echo "=== crypto tests under UBSan ==="
for t in curve_test msm_test pairing_test abs_test ct_check_test; do
  echo "--- $t ---"
  ./build-ubsan/tests/"$t" --gtest_brief=1
done

echo "=== build (ASan) ==="
cmake -B build-asan -S . -DAPQA_SANITIZE=address >/dev/null
cmake --build build-asan -j --target \
  fault_injection_test serde_test fuzz_vo_deserialize

echo "=== hostile-input tests under ASan ==="
./build-asan/tests/serde_test --gtest_brief=1
./build-asan/tests/fault_injection_test --gtest_brief=1
./build-asan/tests/fuzz_vo_deserialize

echo "=== build (TSan) ==="
cmake -B build-tsan -S . -DAPQA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target thread_pool_test core_test net_test

echo "=== threaded paths under TSan ==="
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/thread_pool_test \
  --gtest_brief=1
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/core_test \
  --gtest_filter='ParallelPathTest.*' --gtest_brief=1
# The query service is the most thread-shaped code in the tree: session
# threads, a bounded pool, chaos-injected retries, drain-then-stop.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/net_test --gtest_brief=1

echo "=== constant-time oracle (MSan) ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-msan -S . -DAPQA_SANITIZE=memory \
    -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-msan -j --target ct_check_test
  ./build-msan/tests/ct_check_test --gtest_brief=1
else
  echo "clang++ not installed; MSan CtPoison oracle skipped" \
       "(trace-equivalence tests in ct_check_test already ran)"
fi

echo "=== perf smoke (bench_pairing_micro, fast mode) ==="
cmake --build build -j --target bench_pairing_micro >/dev/null
PERF_JSON=$(mktemp /tmp/BENCH_pairing_smoke.XXXXXX.json)
rm -f "$PERF_JSON"
APQA_BENCH_FAST=1 APQA_BENCH_JSON="$PERF_JSON" \
  ./build/bench/bench_pairing_micro >/dev/null
for row in pairing_prepared abs_verify_prepared_len12 range_vo_verify_pool4 \
           range_vo_verify_serial range_vo_verify_batched \
           abs_batch_verify_n8 batch_bisect_tamper_1; do
  if ! grep -q "\"row\":\"$row\"" "$PERF_JSON"; then
    echo "perf smoke: row '$row' missing from $PERF_JSON" >&2
    exit 1
  fi
done
# Whole-VO batching must beat the retained per-signature path by >= 2x even
# in the fast configuration (the full bench measures >= ~9x; the loose gate
# keeps the smoke robust to noisy single-iteration timings).
python3 - "$PERF_JSON" <<'EOF'
import json, sys
rows = {}
with open(sys.argv[1]) as f:
    for line in f:
        r = json.loads(line)
        rows[r["row"]] = r["ms"]  # last write wins
serial, batched = rows["range_vo_verify_serial"], rows["range_vo_verify_batched"]
if batched > 0.5 * serial:
    sys.exit(f"perf smoke: batched {batched:.1f} ms > 0.5 * serial {serial:.1f} ms")
print(f"perf smoke: batched {batched:.1f} ms vs serial {serial:.1f} ms "
      f"({serial / batched:.1f}x)")
EOF
rm -f "$PERF_JSON"

echo "=== all checks passed ==="
